#include "net/wire.h"

#include <cstring>

#include "util/string_util.h"

namespace qreg {
namespace net {
namespace {

// ------------------------------------------------- little-endian primitives --

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t DoubleBits(double d) {
  uint64_t v;
  static_assert(sizeof(v) == sizeof(d), "IEEE-754 double expected");
  std::memcpy(&v, &d, sizeof(v));
  return v;
}

double BitsToDouble(uint64_t v) {
  double d;
  std::memcpy(&d, &v, sizeof(d));
  return d;
}

util::Status ProtocolError(std::string msg) {
  return util::Status::InvalidArgument("wire protocol: " + std::move(msg));
}

// ------------------------------------------------------------ tagged fields --
//
// A payload is a flat sequence of [u16 tag][u32 len][len bytes] fields;
// nested messages are a field whose bytes are themselves such a sequence.
// Decoders skip unknown tags (forward compatibility) and treat any length
// that overruns the buffer as a typed protocol error.

constexpr size_t kFieldHeaderBytes = 6;

class FieldWriter {
 public:
  void PutBytes(uint16_t tag, const uint8_t* data, size_t n) {
    PutU16(&buf_, tag);
    PutU32(&buf_, static_cast<uint32_t>(n));
    buf_.insert(buf_.end(), data, data + n);
  }
  void PutString(uint16_t tag, const std::string& s) {
    PutBytes(tag, reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  void PutVarU64(uint16_t tag, uint64_t v) {
    std::vector<uint8_t> tmp;
    PutU64(&tmp, v);
    PutBytes(tag, tmp.data(), tmp.size());
  }
  void PutVarU32(uint16_t tag, uint32_t v) {
    std::vector<uint8_t> tmp;
    PutU32(&tmp, v);
    PutBytes(tag, tmp.data(), tmp.size());
  }
  void PutF64(uint16_t tag, double d) { PutVarU64(tag, DoubleBits(d)); }
  void PutF64Array(uint16_t tag, const std::vector<double>& v) {
    std::vector<uint8_t> tmp;
    tmp.reserve(v.size() * 8);
    for (double d : v) PutU64(&tmp, DoubleBits(d));
    PutBytes(tag, tmp.data(), tmp.size());
  }
  void PutNested(uint16_t tag, const FieldWriter& nested) {
    PutBytes(tag, nested.buf_.data(), nested.buf_.size());
  }

  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Iterates the fields of one payload. Usage:
///   while (r.Next()) switch (r.tag()) { ... }
///   QREG_RETURN_NOT_OK(r.status());
class FieldReader {
 public:
  FieldReader(const uint8_t* data, size_t n) : data_(data), end_(n) {}

  bool Next() {
    if (!status_.ok() || pos_ == end_) return false;
    if (end_ - pos_ < kFieldHeaderBytes) {
      status_ = ProtocolError("truncated field header");
      return false;
    }
    tag_ = GetU16(data_ + pos_);
    const uint32_t len = GetU32(data_ + pos_ + 2);
    pos_ += kFieldHeaderBytes;
    if (end_ - pos_ < len) {
      status_ = ProtocolError(
          util::Format("field %u overruns payload (len %u, %zu left)", tag_,
                       len, end_ - pos_));
      return false;
    }
    field_ = data_ + pos_;
    field_len_ = len;
    pos_ += len;
    return true;
  }

  uint16_t tag() const { return tag_; }
  const uint8_t* data() const { return field_; }
  size_t size() const { return field_len_; }
  const util::Status& status() const { return status_; }

  util::Result<uint64_t> AsU64() {
    if (field_len_ != 8) return Fail("expected 8-byte field");
    return GetU64(field_);
  }
  util::Result<uint32_t> AsU32() {
    if (field_len_ != 4) return Fail("expected 4-byte field");
    return GetU32(field_);
  }
  util::Result<double> AsF64() {
    QREG_ASSIGN_OR_RETURN(uint64_t bits, AsU64());
    return BitsToDouble(bits);
  }
  util::Result<std::string> AsString() {
    return std::string(reinterpret_cast<const char*>(field_), field_len_);
  }
  util::Result<std::vector<double>> AsF64Array() {
    if (field_len_ % 8 != 0) return Fail("f64 array length not a multiple of 8");
    std::vector<double> v;
    v.reserve(field_len_ / 8);
    for (size_t i = 0; i < field_len_; i += 8) {
      v.push_back(BitsToDouble(GetU64(field_ + i)));
    }
    return v;
  }

 private:
  util::Status Fail(const char* what) {
    status_ = ProtocolError(
        util::Format("field %u: %s (got %zu bytes)", tag_, what, field_len_));
    return status_;
  }

  const uint8_t* data_;
  size_t end_;
  size_t pos_ = 0;
  uint16_t tag_ = 0;
  const uint8_t* field_ = nullptr;
  size_t field_len_ = 0;
  util::Status status_;
};

// Field tags. New fields must take fresh tags; retiring a field retires its
// tag forever (a v1 decoder skips what it does not know).
enum RequestTag : uint16_t {
  kReqDataset = 1,
  kReqKind = 2,
  kReqCenter = 3,
  kReqTheta = 4,
  kReqDeadlineBudget = 5,
};
enum AnswerTag : uint16_t {
  kAnsKind = 1,
  kAnsSource = 2,
  kAnsMean = 3,
  kAnsPiece = 4,  // Repeated; one nested message per local linear model.
  kAnsCacheDelta = 5,
  kAnsUsedFallback = 6,
  kAnsExec = 7,
};
enum PieceTag : uint16_t {
  kPieceIntercept = 1,
  kPieceSlope = 2,
  kPiecePrototypeId = 3,
  kPieceWeight = 4,
};
enum ExecTag : uint16_t {
  kExecTuplesExamined = 1,
  kExecTuplesMatched = 2,
  kExecNanos = 3,
  kExecChunksCompleted = 4,
  kExecChunksTotal = 5,
};
enum StatusTag : uint16_t {
  kStatusCode = 1,
  kStatusMessage = 2,
};

}  // namespace

// ------------------------------------------------------------------ frames --

uint32_t FrameChecksum(const uint8_t* header20, const uint8_t* payload,
                       size_t payload_len) {
  uint32_t h = 2166136261u;  // FNV-1a.
  for (size_t i = 0; i < kHeaderBytes - 4; ++i) {
    h = (h ^ header20[i]) * 16777619u;
  }
  for (size_t i = 0; i < payload_len; ++i) {
    h = (h ^ payload[i]) * 16777619u;
  }
  return h;
}

void AppendFrame(std::vector<uint8_t>* out, FrameType type, uint64_t request_id,
                 const uint8_t* payload, size_t payload_len) {
  const size_t header_at = out->size();
  PutU32(out, kMagic);
  PutU16(out, kWireVersion);
  PutU16(out, static_cast<uint16_t>(type));
  PutU64(out, request_id);
  PutU32(out, static_cast<uint32_t>(payload_len));
  PutU32(out, FrameChecksum(out->data() + header_at, payload, payload_len));
  out->insert(out->end(), payload, payload + payload_len);
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (poisoned()) return;
  // Compact the consumed prefix before growing, so a long-lived connection's
  // buffer stays proportional to its unread bytes.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

void FrameDecoder::Poison(util::Status status) {
  error_ = std::move(status);
  buf_.clear();
  pos_ = 0;
}

FrameDecoder::Event FrameDecoder::Next(Frame* frame) {
  if (poisoned()) return Event::kError;
  const size_t avail = buf_.size() - pos_;
  const uint8_t* h = buf_.data() + pos_;
  // Reject garbage as early as the bytes allow: a prefix that cannot start a
  // frame poisons the stream at 4 (magic) or 6 (version) buffered bytes, not
  // after a full 24-byte header — so a resumed byte-at-a-time read never
  // sits on input already known to be bad.
  if (avail >= 4 && GetU32(h) != kMagic) {
    Poison(ProtocolError("bad frame magic"));
    return Event::kError;
  }
  if (avail >= 6 && GetU16(h + 4) != kWireVersion) {
    Poison(util::Status::NotImplemented(
        util::Format("wire protocol: unsupported version %u (peer speaks %u)",
                     GetU16(h + 4), kWireVersion)));
    return Event::kError;
  }
  if (avail < kHeaderBytes) return Event::kNeedMore;
  const uint16_t version = GetU16(h + 4);
  const uint32_t payload_len = GetU32(h + 16);
  if (payload_len > max_payload_) {
    // Rejected from the header alone: the oversized payload is never buffered.
    Poison(util::Status::OutOfRange(
        util::Format("wire protocol: frame payload %u exceeds limit %zu",
                     payload_len, max_payload_)));
    return Event::kError;
  }
  if (buf_.size() - pos_ < kHeaderBytes + payload_len) return Event::kNeedMore;
  const uint8_t* payload = h + kHeaderBytes;
  if (GetU32(h + 20) != FrameChecksum(h, payload, payload_len)) {
    Poison(ProtocolError("frame checksum mismatch"));
    return Event::kError;
  }
  frame->header.version = version;
  frame->header.type = static_cast<FrameType>(GetU16(h + 6));
  frame->header.request_id = GetU64(h + 8);
  frame->header.payload_len = payload_len;
  frame->header.checksum = GetU32(h + 20);
  frame->payload.assign(payload, payload + payload_len);
  pos_ += kHeaderBytes + payload_len;
  return Event::kFrame;
}

// ---------------------------------------------------------------- messages --

std::vector<uint8_t> EncodeRequest(const WireRequest& request) {
  FieldWriter w;
  w.PutString(kReqDataset, request.dataset);
  w.PutVarU32(kReqKind, static_cast<uint32_t>(request.kind));
  w.PutF64Array(kReqCenter, request.q.center);
  w.PutF64(kReqTheta, request.q.theta);
  if (request.deadline_budget_nanos > 0) {
    w.PutVarU64(kReqDeadlineBudget, request.deadline_budget_nanos);
  }
  return w.Take();
}

util::Result<WireRequest> DecodeRequest(const uint8_t* data, size_t n) {
  WireRequest req;
  bool have_dataset = false;
  FieldReader r(data, n);
  while (r.Next()) {
    switch (r.tag()) {
      case kReqDataset: {
        QREG_ASSIGN_OR_RETURN(req.dataset, r.AsString());
        have_dataset = true;
        break;
      }
      case kReqKind: {
        QREG_ASSIGN_OR_RETURN(uint32_t kind, r.AsU32());
        if (kind > static_cast<uint32_t>(service::QueryKind::kQ2Regression)) {
          return ProtocolError(util::Format("unknown query kind %u", kind));
        }
        req.kind = static_cast<service::QueryKind>(kind);
        break;
      }
      case kReqCenter: {
        QREG_ASSIGN_OR_RETURN(req.q.center, r.AsF64Array());
        break;
      }
      case kReqTheta: {
        QREG_ASSIGN_OR_RETURN(req.q.theta, r.AsF64());
        break;
      }
      case kReqDeadlineBudget: {
        QREG_ASSIGN_OR_RETURN(req.deadline_budget_nanos, r.AsU64());
        break;
      }
      default:
        break;  // Unknown tag from a newer peer: skip.
    }
  }
  QREG_RETURN_NOT_OK(r.status());
  if (!have_dataset) return ProtocolError("request missing dataset field");
  return req;
}

std::vector<uint8_t> EncodeAnswer(const service::Answer& answer) {
  FieldWriter w;
  w.PutVarU32(kAnsKind, static_cast<uint32_t>(answer.kind));
  w.PutVarU32(kAnsSource, static_cast<uint32_t>(answer.source));
  w.PutF64(kAnsMean, answer.mean);
  for (const core::LocalLinearModel& piece : answer.pieces) {
    FieldWriter pw;
    pw.PutF64(kPieceIntercept, piece.intercept);
    pw.PutF64Array(kPieceSlope, piece.slope);
    pw.PutVarU32(kPiecePrototypeId, static_cast<uint32_t>(piece.prototype_id));
    pw.PutF64(kPieceWeight, piece.weight);
    w.PutNested(kAnsPiece, pw);
  }
  w.PutF64(kAnsCacheDelta, answer.cache_delta);
  w.PutVarU32(kAnsUsedFallback, answer.used_fallback ? 1 : 0);
  FieldWriter ew;
  ew.PutVarU64(kExecTuplesExamined,
               static_cast<uint64_t>(answer.exec.tuples_examined));
  ew.PutVarU64(kExecTuplesMatched,
               static_cast<uint64_t>(answer.exec.tuples_matched));
  ew.PutVarU64(kExecNanos, static_cast<uint64_t>(answer.exec.nanos));
  ew.PutVarU64(kExecChunksCompleted,
               static_cast<uint64_t>(answer.exec.chunks_completed));
  ew.PutVarU64(kExecChunksTotal, static_cast<uint64_t>(answer.exec.chunks_total));
  w.PutNested(kAnsExec, ew);
  return w.Take();
}

namespace {

util::Result<core::LocalLinearModel> DecodePiece(const uint8_t* data, size_t n) {
  core::LocalLinearModel piece;
  FieldReader r(data, n);
  while (r.Next()) {
    switch (r.tag()) {
      case kPieceIntercept: {
        QREG_ASSIGN_OR_RETURN(piece.intercept, r.AsF64());
        break;
      }
      case kPieceSlope: {
        QREG_ASSIGN_OR_RETURN(piece.slope, r.AsF64Array());
        break;
      }
      case kPiecePrototypeId: {
        QREG_ASSIGN_OR_RETURN(uint32_t id, r.AsU32());
        piece.prototype_id = static_cast<int32_t>(id);
        break;
      }
      case kPieceWeight: {
        QREG_ASSIGN_OR_RETURN(piece.weight, r.AsF64());
        break;
      }
      default:
        break;
    }
  }
  QREG_RETURN_NOT_OK(r.status());
  return piece;
}

util::Result<query::ExecStats> DecodeExec(const uint8_t* data, size_t n) {
  query::ExecStats exec;
  FieldReader r(data, n);
  while (r.Next()) {
    uint64_t v = 0;
    switch (r.tag()) {
      case kExecTuplesExamined:
      case kExecTuplesMatched:
      case kExecNanos:
      case kExecChunksCompleted:
      case kExecChunksTotal: {
        QREG_ASSIGN_OR_RETURN(v, r.AsU64());
        break;
      }
      default:
        continue;
    }
    switch (r.tag()) {
      case kExecTuplesExamined: exec.tuples_examined = static_cast<int64_t>(v); break;
      case kExecTuplesMatched: exec.tuples_matched = static_cast<int64_t>(v); break;
      case kExecNanos: exec.nanos = static_cast<int64_t>(v); break;
      case kExecChunksCompleted: exec.chunks_completed = static_cast<int64_t>(v); break;
      case kExecChunksTotal: exec.chunks_total = static_cast<int64_t>(v); break;
    }
  }
  QREG_RETURN_NOT_OK(r.status());
  return exec;
}

}  // namespace

util::Result<service::Answer> DecodeAnswer(const uint8_t* data, size_t n) {
  service::Answer answer;
  FieldReader r(data, n);
  while (r.Next()) {
    switch (r.tag()) {
      case kAnsKind: {
        QREG_ASSIGN_OR_RETURN(uint32_t kind, r.AsU32());
        if (kind > static_cast<uint32_t>(service::QueryKind::kQ2Regression)) {
          return ProtocolError(util::Format("unknown answer kind %u", kind));
        }
        answer.kind = static_cast<service::QueryKind>(kind);
        break;
      }
      case kAnsSource: {
        QREG_ASSIGN_OR_RETURN(uint32_t source, r.AsU32());
        if (source > static_cast<uint32_t>(service::AnswerSource::kCache)) {
          return ProtocolError(util::Format("unknown answer source %u", source));
        }
        answer.source = static_cast<service::AnswerSource>(source);
        break;
      }
      case kAnsMean: {
        QREG_ASSIGN_OR_RETURN(answer.mean, r.AsF64());
        break;
      }
      case kAnsPiece: {
        QREG_ASSIGN_OR_RETURN(core::LocalLinearModel piece,
                              DecodePiece(r.data(), r.size()));
        answer.pieces.push_back(std::move(piece));
        break;
      }
      case kAnsCacheDelta: {
        QREG_ASSIGN_OR_RETURN(answer.cache_delta, r.AsF64());
        break;
      }
      case kAnsUsedFallback: {
        QREG_ASSIGN_OR_RETURN(uint32_t v, r.AsU32());
        answer.used_fallback = v != 0;
        break;
      }
      case kAnsExec: {
        QREG_ASSIGN_OR_RETURN(answer.exec, DecodeExec(r.data(), r.size()));
        break;
      }
      default:
        break;
    }
  }
  QREG_RETURN_NOT_OK(r.status());
  return answer;
}

std::vector<uint8_t> EncodeStatus(const util::Status& status) {
  FieldWriter w;
  w.PutVarU32(kStatusCode, static_cast<uint32_t>(status.code()));
  w.PutString(kStatusMessage, status.message());
  return w.Take();
}

// ------------------------------------------------------------ arena encode --

std::vector<uint8_t> WireArena::Acquire() {
  ++acquired_;
  if (!pool_.empty()) {
    std::vector<uint8_t> buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();  // Keeps capacity — that is the whole point.
    ++reused_;
    return buf;
  }
  return {};
}

void WireArena::Release(std::vector<uint8_t> buf) {
  ++released_;
  if (pool_.size() >= options_.max_pooled_buffers ||
      buf.capacity() > options_.max_retained_bytes) {
    return;  // Over the caps: let it free here.
  }
  pool_.push_back(std::move(buf));
}

namespace {

void PatchU32(std::vector<uint8_t>* out, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out)[at + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

// Starts a frame with payload_len and checksum left as zero placeholders;
// EndFrame backpatches both once the payload has been appended in place.
size_t BeginFrame(std::vector<uint8_t>* out, FrameType type,
                  uint64_t request_id) {
  const size_t header_at = out->size();
  PutU32(out, kMagic);
  PutU16(out, kWireVersion);
  PutU16(out, static_cast<uint16_t>(type));
  PutU64(out, request_id);
  PutU32(out, 0);  // payload_len — backpatched.
  PutU32(out, 0);  // checksum — backpatched.
  return header_at;
}

void EndFrame(std::vector<uint8_t>* out, size_t header_at) {
  const size_t payload_len = out->size() - header_at - kHeaderBytes;
  PatchU32(out, header_at + 16, static_cast<uint32_t>(payload_len));
  // The checksum covers the first 20 header bytes (payload_len included, so
  // it must be patched first) plus the payload.
  PatchU32(out, header_at + 20,
           FrameChecksum(out->data() + header_at,
                         out->data() + header_at + kHeaderBytes, payload_len));
}

// Tagged-field writer that appends straight onto a caller-owned buffer —
// same wire bytes as FieldWriter, zero intermediate buffers. Nested messages
// backpatch their length instead of being built separately and copied.
class InplaceFieldWriter {
 public:
  explicit InplaceFieldWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutBytes(uint16_t tag, const uint8_t* data, size_t n) {
    PutU16(out_, tag);
    PutU32(out_, static_cast<uint32_t>(n));
    out_->insert(out_->end(), data, data + n);
  }
  void PutString(uint16_t tag, const std::string& s) {
    PutBytes(tag, reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  void PutVarU64(uint16_t tag, uint64_t v) {
    PutU16(out_, tag);
    PutU32(out_, 8);
    PutU64(out_, v);
  }
  void PutVarU32(uint16_t tag, uint32_t v) {
    PutU16(out_, tag);
    PutU32(out_, 4);
    PutU32(out_, v);
  }
  void PutF64(uint16_t tag, double d) { PutVarU64(tag, DoubleBits(d)); }
  void PutF64Array(uint16_t tag, const std::vector<double>& v) {
    PutU16(out_, tag);
    PutU32(out_, static_cast<uint32_t>(v.size() * 8));
    for (double d : v) PutU64(out_, DoubleBits(d));
  }

  /// Opens a nested-message field; returns the mark EndNested() patches.
  size_t BeginNested(uint16_t tag) {
    PutU16(out_, tag);
    PutU32(out_, 0);  // Length — backpatched by EndNested.
    return out_->size();
  }
  void EndNested(size_t mark) {
    PatchU32(out_, mark - 4, static_cast<uint32_t>(out_->size() - mark));
  }

 private:
  std::vector<uint8_t>* out_;
};

}  // namespace

void AppendAnswerFrame(std::vector<uint8_t>* out, uint64_t request_id,
                       const service::Answer& answer) {
  // Field order mirrors EncodeAnswer exactly: the in-place frame must be
  // bit-for-bit what AppendFrame(out, ..., EncodeAnswer(answer)) produces
  // (net_wire_test pins this).
  const size_t frame = BeginFrame(out, FrameType::kAnswer, request_id);
  InplaceFieldWriter w(out);
  w.PutVarU32(kAnsKind, static_cast<uint32_t>(answer.kind));
  w.PutVarU32(kAnsSource, static_cast<uint32_t>(answer.source));
  w.PutF64(kAnsMean, answer.mean);
  for (const core::LocalLinearModel& piece : answer.pieces) {
    const size_t nested = w.BeginNested(kAnsPiece);
    w.PutF64(kPieceIntercept, piece.intercept);
    w.PutF64Array(kPieceSlope, piece.slope);
    w.PutVarU32(kPiecePrototypeId, static_cast<uint32_t>(piece.prototype_id));
    w.PutF64(kPieceWeight, piece.weight);
    w.EndNested(nested);
  }
  w.PutF64(kAnsCacheDelta, answer.cache_delta);
  w.PutVarU32(kAnsUsedFallback, answer.used_fallback ? 1 : 0);
  const size_t exec = w.BeginNested(kAnsExec);
  w.PutVarU64(kExecTuplesExamined,
              static_cast<uint64_t>(answer.exec.tuples_examined));
  w.PutVarU64(kExecTuplesMatched,
              static_cast<uint64_t>(answer.exec.tuples_matched));
  w.PutVarU64(kExecNanos, static_cast<uint64_t>(answer.exec.nanos));
  w.PutVarU64(kExecChunksCompleted,
              static_cast<uint64_t>(answer.exec.chunks_completed));
  w.PutVarU64(kExecChunksTotal,
              static_cast<uint64_t>(answer.exec.chunks_total));
  w.EndNested(exec);
  EndFrame(out, frame);
}

void AppendStatusFrame(std::vector<uint8_t>* out, uint64_t request_id,
                       const util::Status& status) {
  const size_t frame = BeginFrame(out, FrameType::kError, request_id);
  InplaceFieldWriter w(out);
  w.PutVarU32(kStatusCode, static_cast<uint32_t>(status.code()));
  w.PutString(kStatusMessage, status.message());
  EndFrame(out, frame);
}

util::Status DecodeStatus(const uint8_t* data, size_t n, util::Status* decoded) {
  uint32_t code = 0;
  std::string message;
  FieldReader r(data, n);
  while (r.Next()) {
    switch (r.tag()) {
      case kStatusCode: {
        QREG_ASSIGN_OR_RETURN(code, r.AsU32());
        break;
      }
      case kStatusMessage: {
        QREG_ASSIGN_OR_RETURN(message, r.AsString());
        break;
      }
      default:
        break;
    }
  }
  QREG_RETURN_NOT_OK(r.status());
  if (code > static_cast<uint32_t>(util::StatusCode::kUnavailable)) {
    return ProtocolError(util::Format("unknown status code %u", code));
  }
  *decoded = util::Status(static_cast<util::StatusCode>(code), std::move(message));
  return util::Status::OK();
}

}  // namespace net
}  // namespace qreg
