// SimBackend: a deterministic in-memory transport behind the EventBackend
// seam (DESIGN.md §12.6). No real sockets — a SimTransport is the "network",
// tests are the peer, and every connection carries a scripted FaultSchedule
// that decides, call by call, what the server's reads and writes observe:
// short lengths, EAGAIN at byte k, ECONNRESET mid-frame, reordered
// readiness. Every connection-teardown and partial-frame path in the server
// becomes reachable on demand, byte-for-byte reproducibly.
//
// Fault-schedule grammar: two op lists, consumed one op per server-side
// Read / Write call on that connection.
//
//   Deliver(k)    the call transfers at most k bytes (a short read/write)
//   WouldBlock()  the call returns EAGAIN — the connection was "spuriously
//                 ready"; the loop must park it and resume cleanly
//   Reset()       the call fails ECONNRESET and the connection is dead to
//                 the server from then on (mid-frame resets: schedule a
//                 Deliver(k) first)
//
// When a list runs out, `default_read_cap` / `default_write_cap` cap every
// further call (0 = unlimited) — so "byte-at-a-time forever" is just
// `default_read_cap = 1`. `readiness_rank` orders simultaneous readiness
// across connections: Wait() reports ready handles sorted by (rank, handle),
// so a test scripts readiness reordering by giving a later connection a
// smaller rank.
//
// Determinism: all transport state sits behind one mutex; per-connection op
// streams are consumed in call order by the single owning loop thread, so a
// schedule yields the same byte trace on every run — under ASan, TSan, and
// --gtest_repeat alike (net-fault-gate in CI).

#ifndef QREG_NET_BACKEND_SIM_H_
#define QREG_NET_BACKEND_SIM_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "net/backend.h"

namespace qreg {
namespace net {

/// \brief Per-connection script of what the server's I/O calls observe.
struct FaultSchedule {
  struct Op {
    enum class Kind { kDeliver, kWouldBlock, kReset };
    Kind kind = Kind::kDeliver;
    size_t max_bytes = std::numeric_limits<size_t>::max();
  };

  static Op Deliver(size_t max_bytes) {
    return Op{Op::Kind::kDeliver, max_bytes == 0 ? 1 : max_bytes};
  }
  static Op WouldBlock() { return Op{Op::Kind::kWouldBlock, 0}; }
  static Op Reset() { return Op{Op::Kind::kReset, 0}; }

  /// Consumed one per server-side Read call on this connection.
  std::vector<Op> reads;
  /// Consumed one per server-side Write call on this connection.
  std::vector<Op> writes;

  /// Cap applied to every Read/Write after its op list is exhausted
  /// (0 = unlimited).
  size_t default_read_cap = 0;
  size_t default_write_cap = 0;

  /// After the write op list is exhausted, every server Write returns
  /// EAGAIN — the scripted "reader that stopped reading", held until
  /// SimConn::ResumeWrites(). (Unlike default_write_cap, which can slow
  /// writes but never park them forever.)
  bool stall_writes = false;

  /// Wait() reports simultaneously-ready connections sorted by
  /// (readiness_rank, handle): smaller rank = reported (and thus served)
  /// first.
  int readiness_rank = 0;
};

class SimTransport;

/// \brief The test's (client's) end of one simulated connection. Created by
/// SimTransport::Connect and owned by the transport; pointers stay valid for
/// the transport's lifetime. All methods are thread-safe.
class SimConn {
 public:
  /// Queues bytes for the server to read (per its fault schedule).
  void SendToServer(const std::vector<uint8_t>& bytes);
  void SendToServer(const uint8_t* data, size_t n);

  /// Half-close: after already-queued bytes drain, the server reads EOF.
  void CloseWrite();

  /// Hard reset: every further server I/O on this connection fails
  /// ECONNRESET (the client-initiated RST a reset storm is made of).
  void Reset();

  /// Clears FaultSchedule::stall_writes, letting parked server writes flow
  /// again — how a test observes a best-effort goodbye frame.
  void ResumeWrites();

  /// Drains everything the server has flushed to this connection so far.
  std::vector<uint8_t> TakeFromServer();

  /// Bytes flushed by the server and not yet taken.
  size_t from_server_bytes() const;

  /// Blocks until the server has flushed ≥ `min_bytes` not-yet-taken bytes.
  /// Returns false on timeout.
  bool WaitForFromServer(size_t min_bytes, int timeout_ms = 2000);

  /// Blocks until the server closes (or resets) its side of the connection.
  bool WaitForServerClose(int timeout_ms = 2000);

  bool server_closed() const;

  /// The server-side handle (for cross-checking against counters/logs).
  int handle() const { return handle_; }

 private:
  friend class SimTransport;
  SimConn(SimTransport* transport, int handle)
      : transport_(transport), handle_(handle) {}

  SimTransport* transport_;
  int handle_;
};

/// \brief The in-memory "network" a kSim server runs on: hand one to
/// ServerConfig::sim, Start() the server, then script connections from the
/// test thread. One transport serves all of a server's loops (CreateBackend
/// is called once per loop); new connections are assigned to listeners
/// round-robin in listener-creation order, so with SO_REUSEPORT-style
/// multi-listener setups the accept sharding is deterministic too.
class SimTransport {
 public:
  SimTransport();
  ~SimTransport();

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  /// One per-loop backend view onto this transport.
  std::unique_ptr<EventBackend> CreateBackend();

  /// Opens a client connection with the given fault schedule; it appears in
  /// a listener's accept queue immediately. Requires a started server (at
  /// least one listener); returns nullptr otherwise.
  SimConn* Connect(FaultSchedule schedule = FaultSchedule());

  /// Number of listeners currently open (diagnostics).
  size_t num_listeners() const;

  /// Forces every loop's next (or current) Wait() to return, even with no
  /// I/O ready. The virtual-time idiom: advance the FakeClock, then Poke()
  /// so each loop re-reads the clock and fires its due lifecycle timers —
  /// deterministically, with no real sleeps.
  void Poke();

 private:
  friend class SimConn;
  friend class SimBackend;
  struct Shared;
  std::unique_ptr<Shared> shared_;
  std::vector<std::unique_ptr<SimConn>> conns_;
};

}  // namespace net
}  // namespace qreg

#endif  // QREG_NET_BACKEND_SIM_H_
