#include "net/backend_sim.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qreg {
namespace net {

// All transport state behind one mutex. std::map (not unordered) for the
// listener/connection tables: iteration order is handle order, so accept
// round-robin and readiness reporting are deterministic by construction.
struct SimTransport::Shared {
  util::Mutex mu;
  util::CondVar cv;

  int next_handle QREG_GUARDED_BY(mu) = 1;
  // Assigned by the first listener; 0 until then.
  uint16_t port QREG_GUARDED_BY(mu) = 0;

  struct Listener {
    std::deque<int> accept_queue;  // Connection handles awaiting Accept().
  };

  struct Conn {
    FaultSchedule sched;
    size_t next_read_op = 0;
    size_t next_write_op = 0;

    std::deque<uint8_t> to_server;  // Client → server, not yet read.
    std::vector<uint8_t> to_client;  // Server → client, not yet taken.
    bool client_write_closed = false;
    bool reset = false;          // ECONNRESET on every further server I/O.
    bool server_closed = false;  // Server called Close() on its handle.
  };

  std::map<int, Listener> listeners QREG_GUARDED_BY(mu);
  std::map<int, Conn> conns QREG_GUARDED_BY(mu);
  // Round-robin cursor over listeners for Connect().
  size_t accept_rr QREG_GUARDED_BY(mu) = 0;
  // Bumped by SimTransport::Poke(); every backend whose last-seen value
  // differs returns from Wait() immediately (virtual-time wakeup).
  uint64_t poke_seq QREG_GUARDED_BY(mu) = 0;
};

namespace {

using Op = FaultSchedule::Op;

// Pops the next scheduled op for a read or write call, if any.
const Op* NextOp(const std::vector<Op>& ops, size_t* cursor) {
  if (*cursor >= ops.size()) return nullptr;
  return &ops[(*cursor)++];
}

size_t IovTotal(const iovec* iov, int iovcnt) {
  size_t total = 0;
  for (int i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
  return total;
}

}  // namespace

// ------------------------------------------------------------- SimBackend --

// One per-loop view onto the shared transport: its own interest table and
// wake flag, everything else in Shared. Methods other than Wake() run only
// on the owning loop thread (the EventBackend contract), but all state is
// mutex-guarded anyway because the test thread is the peer.
class SimBackend final : public EventBackend {
  using Shared = SimTransport::Shared;

 public:
  explicit SimBackend(Shared* shared) : shared_(shared) {}

  BackendKind kind() const override { return BackendKind::kSim; }

  util::Status Init() override { return util::Status::OK(); }

  util::Result<int> OpenListener(const std::string& address, uint16_t port,
                                 bool /*reuse_port*/) override {
    // Every backend of one transport may listen on "the" port — that is the
    // SO_REUSEPORT-sharding analogue, so no shared-listener fallback fires.
    (void)address;
    util::MutexLock lock(&shared_->mu);
    if (shared_->port == 0) {
      shared_->port = port != 0 ? port : 42000;  // Deterministic fake port.
    }
    const int handle = shared_->next_handle++;
    shared_->listeners.emplace(handle, Shared::Listener{});
    return handle;
  }

  util::Result<uint16_t> ListenerPort(int /*listener*/) override {
    util::MutexLock lock(&shared_->mu);
    return shared_->port;
  }

  int Accept(int listener) override {
    util::MutexLock lock(&shared_->mu);
    auto it = shared_->listeners.find(listener);
    if (it == shared_->listeners.end() || it->second.accept_queue.empty()) {
      return -1;
    }
    const int handle = it->second.accept_queue.front();
    it->second.accept_queue.pop_front();
    return handle;
  }

  void UpdateInterest(int handle, bool want_read, bool want_write) override {
    util::MutexLock lock(&shared_->mu);
    interests_[handle] = {want_read, want_write};
  }

  void Deregister(int handle) override {
    util::MutexLock lock(&shared_->mu);
    interests_.erase(handle);
  }

  util::Status Wait(int timeout_ms, std::vector<ReadyEvent>* events) override {
    events->clear();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    util::MutexLock lock(&shared_->mu);
    for (;;) {
      Collect(events);
      if (!events->empty()) return util::Status::OK();
      if (wake_flag_) {
        wake_flag_ = false;
        return util::Status::OK();
      }
      if (seen_poke_ != shared_->poke_seq) {
        seen_poke_ = shared_->poke_seq;
        return util::Status::OK();  // Empty events: the loop re-reads time.
      }
      // Re-derived each pass so spurious wakeups never extend the deadline.
      const int64_t remaining_nanos =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (timeout_ms <= 0 || remaining_nanos <= 0 ||
          !shared_->cv.WaitFor(&shared_->mu, remaining_nanos)) {
        return util::Status::OK();
      }
    }
  }

  void Wake() override {
    util::MutexLock lock(&shared_->mu);
    wake_flag_ = true;
    shared_->cv.NotifyAll();
  }

  IoResult Read(int handle, const iovec* iov, int iovcnt) override {
    util::MutexLock lock(&shared_->mu);
    auto it = shared_->conns.find(handle);
    if (it == shared_->conns.end()) return IoResult::Error(EBADF);
    Shared::Conn& c = it->second;
    if (c.reset) return IoResult::Error(ECONNRESET);

    size_t cap = c.sched.default_read_cap != 0
                     ? c.sched.default_read_cap
                     : std::numeric_limits<size_t>::max();
    if (const Op* op = NextOp(c.sched.reads, &c.next_read_op)) {
      switch (op->kind) {
        case Op::Kind::kWouldBlock:
          return IoResult::WouldBlock();
        case Op::Kind::kReset:
          c.reset = true;
          shared_->cv.NotifyAll();
          return IoResult::Error(ECONNRESET);
        case Op::Kind::kDeliver:
          cap = op->max_bytes;
          break;
      }
    }

    const size_t n =
        std::min({cap, c.to_server.size(), IovTotal(iov, iovcnt)});
    if (n == 0) {
      return c.client_write_closed ? IoResult::Eof() : IoResult::WouldBlock();
    }
    size_t copied = 0;
    for (int i = 0; i < iovcnt && copied < n; ++i) {
      uint8_t* dst = static_cast<uint8_t*>(iov[i].iov_base);
      const size_t take = std::min(n - copied, iov[i].iov_len);
      std::copy_n(c.to_server.begin(), take, dst);
      c.to_server.erase(c.to_server.begin(),
                        c.to_server.begin() + static_cast<ptrdiff_t>(take));
      copied += take;
    }
    return IoResult::Ok(copied);
  }

  IoResult Write(int handle, const iovec* iov, int iovcnt) override {
    util::MutexLock lock(&shared_->mu);
    auto it = shared_->conns.find(handle);
    if (it == shared_->conns.end()) return IoResult::Error(EBADF);
    Shared::Conn& c = it->second;
    if (c.reset) return IoResult::Error(ECONNRESET);

    size_t cap = c.sched.default_write_cap != 0
                     ? c.sched.default_write_cap
                     : std::numeric_limits<size_t>::max();
    if (const Op* op = NextOp(c.sched.writes, &c.next_write_op)) {
      switch (op->kind) {
        case Op::Kind::kWouldBlock:
          return IoResult::WouldBlock();
        case Op::Kind::kReset:
          c.reset = true;
          shared_->cv.NotifyAll();
          return IoResult::Error(ECONNRESET);
        case Op::Kind::kDeliver:
          cap = op->max_bytes;
          break;
      }
    } else if (c.sched.stall_writes) {
      // The scripted reader stopped reading: park every write until the
      // test calls ResumeWrites().
      return IoResult::WouldBlock();
    }

    const size_t n = std::min(cap, IovTotal(iov, iovcnt));
    if (n == 0) return IoResult::WouldBlock();
    size_t copied = 0;
    for (int i = 0; i < iovcnt && copied < n; ++i) {
      const uint8_t* src = static_cast<const uint8_t*>(iov[i].iov_base);
      const size_t take = std::min(n - copied, iov[i].iov_len);
      c.to_client.insert(c.to_client.end(), src, src + take);
      copied += take;
    }
    shared_->cv.NotifyAll();  // Wake a test blocked in WaitForFromServer.
    return IoResult::Ok(copied);
  }

  void Close(int handle) override {
    util::MutexLock lock(&shared_->mu);
    if (shared_->listeners.erase(handle) > 0) {
      shared_->cv.NotifyAll();
      return;
    }
    auto it = shared_->conns.find(handle);
    if (it != shared_->conns.end()) {
      it->second.server_closed = true;
      shared_->cv.NotifyAll();  // Wake a test blocked in WaitForServerClose.
    }
  }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  // Readiness under the lock. A connection is readable when bytes (or EOF,
  // or a reset) are observable, or when its next scheduled read op is a
  // fault that must fire (kWouldBlock/kReset) — spurious readiness is the
  // whole point of those ops. Writable is simply "the loop wants to write":
  // the write call itself consumes the scheduled fault. Results are sorted
  // listeners-first, then by (readiness_rank, handle) — the scripted
  // readiness reorder.
  void Collect(std::vector<ReadyEvent>* events) QREG_REQUIRES(shared_->mu) {
    struct Ranked {
      int rank;
      ReadyEvent ev;
    };
    std::vector<Ranked> ranked;
    for (const auto& entry : interests_) {
      const int handle = entry.first;
      const Interest& want = entry.second;
      auto lit = shared_->listeners.find(handle);
      if (lit != shared_->listeners.end()) {
        if (want.read && !lit->second.accept_queue.empty()) {
          ReadyEvent ev;
          ev.handle = handle;
          ev.readable = true;
          ranked.push_back({std::numeric_limits<int>::min(), ev});
        }
        continue;
      }
      auto cit = shared_->conns.find(handle);
      if (cit == shared_->conns.end()) continue;
      const Shared::Conn& c = cit->second;
      ReadyEvent ev;
      ev.handle = handle;
      if (want.read) {
        const bool fault_pending =
            c.next_read_op < c.sched.reads.size() &&
            c.sched.reads[c.next_read_op].kind != Op::Kind::kDeliver;
        ev.readable = !c.to_server.empty() || c.client_write_closed ||
                      c.reset || fault_pending;
      }
      if (want.write) {
        // A stalled peer mirrors a full kernel socket buffer: the
        // connection is *not* writable until ResumeWrites(), exactly as
        // epoll would withhold EPOLLOUT — otherwise a parked writer would
        // busy-spin the loop.
        const bool stalled = c.sched.stall_writes &&
                             c.next_write_op >= c.sched.writes.size() &&
                             !c.reset;
        ev.writable = !stalled;
      }
      if (ev.readable || ev.writable) {
        ranked.push_back({c.sched.readiness_rank, ev});
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) {
                if (a.rank != b.rank) return a.rank < b.rank;
                return a.ev.handle < b.ev.handle;
              });
    for (Ranked& r : ranked) events->push_back(r.ev);
  }

  Shared* shared_;
  std::unordered_map<int, Interest> interests_ QREG_GUARDED_BY(shared_->mu);
  bool wake_flag_ QREG_GUARDED_BY(shared_->mu) = false;
  uint64_t seen_poke_ QREG_GUARDED_BY(shared_->mu) = 0;
};

// ------------------------------------------------------------ SimTransport --

SimTransport::SimTransport() : shared_(std::make_unique<Shared>()) {}
SimTransport::~SimTransport() = default;

std::unique_ptr<EventBackend> SimTransport::CreateBackend() {
  return std::make_unique<SimBackend>(shared_.get());
}

SimConn* SimTransport::Connect(FaultSchedule schedule) {
  util::MutexLock lock(&shared_->mu);
  if (shared_->listeners.empty()) return nullptr;
  const int handle = shared_->next_handle++;
  Shared::Conn conn;
  conn.sched = std::move(schedule);
  shared_->conns.emplace(handle, std::move(conn));
  // Deterministic accept sharding: round-robin over listeners in handle
  // order.
  auto lit = shared_->listeners.begin();
  std::advance(lit, static_cast<ptrdiff_t>(shared_->accept_rr++ %
                                           shared_->listeners.size()));
  lit->second.accept_queue.push_back(handle);
  shared_->cv.NotifyAll();
  conns_.push_back(std::unique_ptr<SimConn>(new SimConn(this, handle)));
  return conns_.back().get();
}

size_t SimTransport::num_listeners() const {
  util::MutexLock lock(&shared_->mu);
  return shared_->listeners.size();
}

void SimTransport::Poke() {
  util::MutexLock lock(&shared_->mu);
  ++shared_->poke_seq;
  shared_->cv.NotifyAll();
}

// ---------------------------------------------------------------- SimConn --

void SimConn::SendToServer(const std::vector<uint8_t>& bytes) {
  SendToServer(bytes.data(), bytes.size());
}

void SimConn::SendToServer(const uint8_t* data, size_t n) {
  SimTransport::Shared* shared = transport_->shared_.get();
  util::MutexLock lock(&shared->mu);
  auto it = shared->conns.find(handle_);
  if (it == shared->conns.end() || it->second.reset ||
      it->second.client_write_closed) {
    return;  // Writing into a dead or half-closed connection: bytes vanish.
  }
  it->second.to_server.insert(it->second.to_server.end(), data, data + n);
  shared->cv.NotifyAll();
}

void SimConn::CloseWrite() {
  SimTransport::Shared* shared = transport_->shared_.get();
  util::MutexLock lock(&shared->mu);
  auto it = shared->conns.find(handle_);
  if (it == shared->conns.end()) return;
  it->second.client_write_closed = true;
  shared->cv.NotifyAll();
}

void SimConn::Reset() {
  SimTransport::Shared* shared = transport_->shared_.get();
  util::MutexLock lock(&shared->mu);
  auto it = shared->conns.find(handle_);
  if (it == shared->conns.end()) return;
  it->second.reset = true;
  shared->cv.NotifyAll();
}

void SimConn::ResumeWrites() {
  SimTransport::Shared* shared = transport_->shared_.get();
  util::MutexLock lock(&shared->mu);
  auto it = shared->conns.find(handle_);
  if (it == shared->conns.end()) return;
  it->second.sched.stall_writes = false;
  shared->cv.NotifyAll();
}

std::vector<uint8_t> SimConn::TakeFromServer() {
  SimTransport::Shared* shared = transport_->shared_.get();
  util::MutexLock lock(&shared->mu);
  auto it = shared->conns.find(handle_);
  if (it == shared->conns.end()) return {};
  std::vector<uint8_t> out;
  out.swap(it->second.to_client);
  return out;
}

size_t SimConn::from_server_bytes() const {
  SimTransport::Shared* shared = transport_->shared_.get();
  util::MutexLock lock(&shared->mu);
  auto it = shared->conns.find(handle_);
  return it == shared->conns.end() ? 0 : it->second.to_client.size();
}

bool SimConn::WaitForFromServer(size_t min_bytes, int timeout_ms) {
  SimTransport::Shared* shared = transport_->shared_.get();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::MutexLock lock(&shared->mu);
  for (;;) {
    auto it = shared->conns.find(handle_);
    if (it != shared->conns.end() && it->second.to_client.size() >= min_bytes) {
      return true;
    }
    const int64_t remaining_nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining_nanos <= 0) return false;
    shared->cv.WaitFor(&shared->mu, remaining_nanos);
  }
}

bool SimConn::WaitForServerClose(int timeout_ms) {
  SimTransport::Shared* shared = transport_->shared_.get();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::MutexLock lock(&shared->mu);
  for (;;) {
    auto it = shared->conns.find(handle_);
    if (it != shared->conns.end() && it->second.server_closed) return true;
    const int64_t remaining_nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining_nanos <= 0) return false;
    shared->cv.WaitFor(&shared->mu, remaining_nanos);
  }
}

bool SimConn::server_closed() const {
  SimTransport::Shared* shared = transport_->shared_.get();
  util::MutexLock lock(&shared->mu);
  auto it = shared->conns.find(handle_);
  return it != shared->conns.end() && it->second.server_closed;
}

}  // namespace net
}  // namespace qreg
