#include "net/backend_sim.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>

namespace qreg {
namespace net {

// All transport state behind one mutex. std::map (not unordered) for the
// listener/connection tables: iteration order is handle order, so accept
// round-robin and readiness reporting are deterministic by construction.
struct SimTransport::Shared {
  std::mutex mu;
  std::condition_variable cv;

  int next_handle = 1;
  uint16_t port = 0;  // Assigned by the first listener; 0 until then.

  struct Listener {
    std::deque<int> accept_queue;  // Connection handles awaiting Accept().
  };

  struct Conn {
    FaultSchedule sched;
    size_t next_read_op = 0;
    size_t next_write_op = 0;

    std::deque<uint8_t> to_server;  // Client → server, not yet read.
    std::vector<uint8_t> to_client;  // Server → client, not yet taken.
    bool client_write_closed = false;
    bool reset = false;          // ECONNRESET on every further server I/O.
    bool server_closed = false;  // Server called Close() on its handle.
  };

  std::map<int, Listener> listeners;
  std::map<int, Conn> conns;
  size_t accept_rr = 0;  // Round-robin cursor over listeners for Connect().
};

namespace {

using Op = FaultSchedule::Op;

// Pops the next scheduled op for a read or write call, if any.
const Op* NextOp(const std::vector<Op>& ops, size_t* cursor) {
  if (*cursor >= ops.size()) return nullptr;
  return &ops[(*cursor)++];
}

size_t IovTotal(const iovec* iov, int iovcnt) {
  size_t total = 0;
  for (int i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
  return total;
}

}  // namespace

// ------------------------------------------------------------- SimBackend --

// One per-loop view onto the shared transport: its own interest table and
// wake flag, everything else in Shared. Methods other than Wake() run only
// on the owning loop thread (the EventBackend contract), but all state is
// mutex-guarded anyway because the test thread is the peer.
class SimBackend final : public EventBackend {
  using Shared = SimTransport::Shared;

 public:
  explicit SimBackend(Shared* shared) : shared_(shared) {}

  BackendKind kind() const override { return BackendKind::kSim; }

  util::Status Init() override { return util::Status::OK(); }

  util::Result<int> OpenListener(const std::string& address, uint16_t port,
                                 bool /*reuse_port*/) override {
    // Every backend of one transport may listen on "the" port — that is the
    // SO_REUSEPORT-sharding analogue, so no shared-listener fallback fires.
    (void)address;
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->port == 0) {
      shared_->port = port != 0 ? port : 42000;  // Deterministic fake port.
    }
    const int handle = shared_->next_handle++;
    shared_->listeners.emplace(handle, Shared::Listener{});
    return handle;
  }

  util::Result<uint16_t> ListenerPort(int /*listener*/) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    return shared_->port;
  }

  int Accept(int listener) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    auto it = shared_->listeners.find(listener);
    if (it == shared_->listeners.end() || it->second.accept_queue.empty()) {
      return -1;
    }
    const int handle = it->second.accept_queue.front();
    it->second.accept_queue.pop_front();
    return handle;
  }

  void UpdateInterest(int handle, bool want_read, bool want_write) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    interests_[handle] = {want_read, want_write};
  }

  void Deregister(int handle) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    interests_.erase(handle);
  }

  util::Status Wait(int timeout_ms, std::vector<ReadyEvent>* events) override {
    events->clear();
    std::unique_lock<std::mutex> lock(shared_->mu);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      Collect(events);
      if (!events->empty()) return util::Status::OK();
      if (wake_flag_) {
        wake_flag_ = false;
        return util::Status::OK();
      }
      if (timeout_ms <= 0 ||
          shared_->cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        return util::Status::OK();
      }
    }
  }

  void Wake() override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    wake_flag_ = true;
    shared_->cv.notify_all();
  }

  IoResult Read(int handle, const iovec* iov, int iovcnt) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    auto it = shared_->conns.find(handle);
    if (it == shared_->conns.end()) return IoResult::Error(EBADF);
    Shared::Conn& c = it->second;
    if (c.reset) return IoResult::Error(ECONNRESET);

    size_t cap = c.sched.default_read_cap != 0
                     ? c.sched.default_read_cap
                     : std::numeric_limits<size_t>::max();
    if (const Op* op = NextOp(c.sched.reads, &c.next_read_op)) {
      switch (op->kind) {
        case Op::Kind::kWouldBlock:
          return IoResult::WouldBlock();
        case Op::Kind::kReset:
          c.reset = true;
          shared_->cv.notify_all();
          return IoResult::Error(ECONNRESET);
        case Op::Kind::kDeliver:
          cap = op->max_bytes;
          break;
      }
    }

    const size_t n =
        std::min({cap, c.to_server.size(), IovTotal(iov, iovcnt)});
    if (n == 0) {
      return c.client_write_closed ? IoResult::Eof() : IoResult::WouldBlock();
    }
    size_t copied = 0;
    for (int i = 0; i < iovcnt && copied < n; ++i) {
      uint8_t* dst = static_cast<uint8_t*>(iov[i].iov_base);
      const size_t take = std::min(n - copied, iov[i].iov_len);
      std::copy_n(c.to_server.begin(), take, dst);
      c.to_server.erase(c.to_server.begin(),
                        c.to_server.begin() + static_cast<ptrdiff_t>(take));
      copied += take;
    }
    return IoResult::Ok(copied);
  }

  IoResult Write(int handle, const iovec* iov, int iovcnt) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    auto it = shared_->conns.find(handle);
    if (it == shared_->conns.end()) return IoResult::Error(EBADF);
    Shared::Conn& c = it->second;
    if (c.reset) return IoResult::Error(ECONNRESET);

    size_t cap = c.sched.default_write_cap != 0
                     ? c.sched.default_write_cap
                     : std::numeric_limits<size_t>::max();
    if (const Op* op = NextOp(c.sched.writes, &c.next_write_op)) {
      switch (op->kind) {
        case Op::Kind::kWouldBlock:
          return IoResult::WouldBlock();
        case Op::Kind::kReset:
          c.reset = true;
          shared_->cv.notify_all();
          return IoResult::Error(ECONNRESET);
        case Op::Kind::kDeliver:
          cap = op->max_bytes;
          break;
      }
    }

    const size_t n = std::min(cap, IovTotal(iov, iovcnt));
    if (n == 0) return IoResult::WouldBlock();
    size_t copied = 0;
    for (int i = 0; i < iovcnt && copied < n; ++i) {
      const uint8_t* src = static_cast<const uint8_t*>(iov[i].iov_base);
      const size_t take = std::min(n - copied, iov[i].iov_len);
      c.to_client.insert(c.to_client.end(), src, src + take);
      copied += take;
    }
    shared_->cv.notify_all();  // Wake a test blocked in WaitForFromServer.
    return IoResult::Ok(copied);
  }

  void Close(int handle) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->listeners.erase(handle) > 0) {
      shared_->cv.notify_all();
      return;
    }
    auto it = shared_->conns.find(handle);
    if (it != shared_->conns.end()) {
      it->second.server_closed = true;
      shared_->cv.notify_all();  // Wake a test blocked in WaitForServerClose.
    }
  }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  // Readiness under the lock. A connection is readable when bytes (or EOF,
  // or a reset) are observable, or when its next scheduled read op is a
  // fault that must fire (kWouldBlock/kReset) — spurious readiness is the
  // whole point of those ops. Writable is simply "the loop wants to write":
  // the write call itself consumes the scheduled fault. Results are sorted
  // listeners-first, then by (readiness_rank, handle) — the scripted
  // readiness reorder.
  void Collect(std::vector<ReadyEvent>* events) {
    struct Ranked {
      int rank;
      ReadyEvent ev;
    };
    std::vector<Ranked> ranked;
    for (const auto& entry : interests_) {
      const int handle = entry.first;
      const Interest& want = entry.second;
      auto lit = shared_->listeners.find(handle);
      if (lit != shared_->listeners.end()) {
        if (want.read && !lit->second.accept_queue.empty()) {
          ReadyEvent ev;
          ev.handle = handle;
          ev.readable = true;
          ranked.push_back({std::numeric_limits<int>::min(), ev});
        }
        continue;
      }
      auto cit = shared_->conns.find(handle);
      if (cit == shared_->conns.end()) continue;
      const Shared::Conn& c = cit->second;
      ReadyEvent ev;
      ev.handle = handle;
      if (want.read) {
        const bool fault_pending =
            c.next_read_op < c.sched.reads.size() &&
            c.sched.reads[c.next_read_op].kind != Op::Kind::kDeliver;
        ev.readable = !c.to_server.empty() || c.client_write_closed ||
                      c.reset || fault_pending;
      }
      if (want.write) ev.writable = true;
      if (ev.readable || ev.writable) {
        ranked.push_back({c.sched.readiness_rank, ev});
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) {
                if (a.rank != b.rank) return a.rank < b.rank;
                return a.ev.handle < b.ev.handle;
              });
    for (Ranked& r : ranked) events->push_back(r.ev);
  }

  Shared* shared_;
  std::unordered_map<int, Interest> interests_;
  bool wake_flag_ = false;  // Guarded by shared_->mu.
};

// ------------------------------------------------------------ SimTransport --

SimTransport::SimTransport() : shared_(std::make_unique<Shared>()) {}
SimTransport::~SimTransport() = default;

std::unique_ptr<EventBackend> SimTransport::CreateBackend() {
  return std::make_unique<SimBackend>(shared_.get());
}

SimConn* SimTransport::Connect(FaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (shared_->listeners.empty()) return nullptr;
  const int handle = shared_->next_handle++;
  Shared::Conn conn;
  conn.sched = std::move(schedule);
  shared_->conns.emplace(handle, std::move(conn));
  // Deterministic accept sharding: round-robin over listeners in handle
  // order.
  auto lit = shared_->listeners.begin();
  std::advance(lit, static_cast<ptrdiff_t>(shared_->accept_rr++ %
                                           shared_->listeners.size()));
  lit->second.accept_queue.push_back(handle);
  shared_->cv.notify_all();
  conns_.push_back(std::unique_ptr<SimConn>(new SimConn(this, handle)));
  return conns_.back().get();
}

size_t SimTransport::num_listeners() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->listeners.size();
}

// ---------------------------------------------------------------- SimConn --

void SimConn::SendToServer(const std::vector<uint8_t>& bytes) {
  SendToServer(bytes.data(), bytes.size());
}

void SimConn::SendToServer(const uint8_t* data, size_t n) {
  SimTransport::Shared* shared = transport_->shared_.get();
  std::lock_guard<std::mutex> lock(shared->mu);
  auto it = shared->conns.find(handle_);
  if (it == shared->conns.end() || it->second.reset ||
      it->second.client_write_closed) {
    return;  // Writing into a dead or half-closed connection: bytes vanish.
  }
  it->second.to_server.insert(it->second.to_server.end(), data, data + n);
  shared->cv.notify_all();
}

void SimConn::CloseWrite() {
  SimTransport::Shared* shared = transport_->shared_.get();
  std::lock_guard<std::mutex> lock(shared->mu);
  auto it = shared->conns.find(handle_);
  if (it == shared->conns.end()) return;
  it->second.client_write_closed = true;
  shared->cv.notify_all();
}

std::vector<uint8_t> SimConn::TakeFromServer() {
  SimTransport::Shared* shared = transport_->shared_.get();
  std::lock_guard<std::mutex> lock(shared->mu);
  auto it = shared->conns.find(handle_);
  if (it == shared->conns.end()) return {};
  std::vector<uint8_t> out;
  out.swap(it->second.to_client);
  return out;
}

size_t SimConn::from_server_bytes() const {
  SimTransport::Shared* shared = transport_->shared_.get();
  std::lock_guard<std::mutex> lock(shared->mu);
  auto it = shared->conns.find(handle_);
  return it == shared->conns.end() ? 0 : it->second.to_client.size();
}

bool SimConn::WaitForFromServer(size_t min_bytes, int timeout_ms) {
  SimTransport::Shared* shared = transport_->shared_.get();
  std::unique_lock<std::mutex> lock(shared->mu);
  return shared->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [&] {
                               auto it = shared->conns.find(handle_);
                               return it != shared->conns.end() &&
                                      it->second.to_client.size() >= min_bytes;
                             });
}

bool SimConn::WaitForServerClose(int timeout_ms) {
  SimTransport::Shared* shared = transport_->shared_.get();
  std::unique_lock<std::mutex> lock(shared->mu);
  return shared->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [&] {
                               auto it = shared->conns.find(handle_);
                               return it != shared->conns.end() &&
                                      it->second.server_closed;
                             });
}

bool SimConn::server_closed() const {
  SimTransport::Shared* shared = transport_->shared_.get();
  std::lock_guard<std::mutex> lock(shared->mu);
  auto it = shared->conns.find(handle_);
  return it != shared->conns.end() && it->second.server_closed;
}

}  // namespace net
}  // namespace qreg
