// epoll(7) backend: one level-triggered epoll instance per event loop.
//
// Interest changes are incremental epoll_ctl calls and Wait() returns only
// the ready handles — O(ready) dispatch per wakeup where poll() pays O(n)
// rebuilding and scanning its pollfd array. Level-triggered on purpose: the
// server's loop logic (drain-on-short-read, retry-flush-on-next-readiness)
// was written against poll semantics and must behave identically here; the
// wire bytes are pinned bit-for-bit against the poll backend by
// net_socket_test.

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_set>

#include "net/backend.h"
#include "net/backend_socket.h"
#include "util/string_util.h"

namespace qreg {
namespace net {
namespace {

constexpr int kMaxEpollEvents = 256;

class EpollBackend final : public EventBackend {
 public:
  ~EpollBackend() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  BackendKind kind() const override { return BackendKind::kEpoll; }

  util::Status Init() override {
    QREG_RETURN_NOT_OK(wake_.Open());
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) {
      return util::Status::IoError(
          util::Format("epoll_create1(): %s", strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_.read_fd();
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_.read_fd(), &ev) != 0) {
      return util::Status::IoError(
          util::Format("epoll_ctl(wake): %s", strerror(errno)));
    }
    return util::Status::OK();
  }

  util::Result<int> OpenListener(const std::string& address, uint16_t port,
                                 bool reuse_port) override {
    return SocketOpenListener(address, port, reuse_port);
  }

  util::Result<uint16_t> ListenerPort(int listener) override {
    return SocketListenerPort(listener);
  }

  int Accept(int listener) override { return SocketAccept(listener); }

  void UpdateInterest(int handle, bool want_read, bool want_write) override {
    epoll_event ev{};
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    ev.data.fd = handle;
    // A parked handle (no interest) keeps its registration with an empty
    // event mask: level-triggered epoll then reports only EPOLLERR/EPOLLHUP,
    // which the loop treats as a close signal either way.
    const auto it = registered_.find(handle);
    if (it == registered_.end()) {
      if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, handle, &ev) == 0) {
        registered_.insert(handle);
      }
      return;
    }
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, handle, &ev);
  }

  void Deregister(int handle) override {
    if (registered_.erase(handle) > 0) {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, handle, nullptr);
    }
  }

  util::Status Wait(int timeout_ms, std::vector<ReadyEvent>* events) override {
    events->clear();
    epoll_event ready[kMaxEpollEvents];
    const int n = ::epoll_wait(epfd_, ready, kMaxEpollEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return util::Status::OK();
      return util::Status::IoError(
          util::Format("epoll_wait(): %s", strerror(errno)));
    }
    for (int i = 0; i < n; ++i) {
      if (ready[i].data.fd == wake_.read_fd()) {
        wake_.Drain();
        continue;
      }
      ReadyEvent ev;
      ev.handle = ready[i].data.fd;
      ev.readable = (ready[i].events & EPOLLIN) != 0;
      ev.writable = (ready[i].events & EPOLLOUT) != 0;
      ev.error = (ready[i].events & EPOLLERR) != 0;
      ev.hangup = (ready[i].events & (EPOLLHUP | EPOLLRDHUP)) != 0;
      events->push_back(ev);
    }
    return util::Status::OK();
  }

  void Wake() override { wake_.Wake(); }

  IoResult Read(int handle, const iovec* iov, int iovcnt) override {
    return SocketRead(handle, iov, iovcnt);
  }

  IoResult Write(int handle, const iovec* iov, int iovcnt) override {
    return SocketWrite(handle, iov, iovcnt);
  }

  void Close(int handle) override { ::close(handle); }

 private:
  WakePipe wake_;
  int epfd_ = -1;
  std::unordered_set<int> registered_;
};

}  // namespace

std::unique_ptr<EventBackend> CreateEpollBackend() {
  return std::make_unique<EpollBackend>();
}

}  // namespace net
}  // namespace qreg
