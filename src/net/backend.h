// Pluggable event backends for net::Server (DESIGN.md §12.6).
//
// An EventBackend is the seam between the server's per-loop state machine
// (connection table, decoder, dispatch, drain) and the mechanism that moves
// bytes: readiness demultiplexing, accept, scatter reads, gather writes.
// The loop logic is written once against this interface; what plugs in
// underneath is chosen per ServerConfig:
//
//   kPoll   poll(2). The interest set is rebuilt into a pollfd array on
//           every Wait — O(n) per wakeup in the number of registered
//           handles. Portable baseline.
//   kEpoll  epoll(7), level-triggered, one epoll instance per loop.
//           Interest changes are incremental (epoll_ctl) and Wait returns
//           only ready handles — O(ready) dispatch, the regime for large
//           connection counts.
//   kSim    A deterministic in-memory transport (backend_sim.h). No real
//           sockets: tests script per-connection fault schedules (short
//           reads, EAGAIN at byte k, ECONNRESET mid-frame, reordered
//           readiness) and every teardown / partial-frame path in the
//           server becomes reachable on demand.
//
// Threading contract: every method except Wake() is called only by the
// owning event-loop thread (or by Start()/Shutdown() while that thread is
// not running). Wake() is thread-safe and interrupts a concurrent — or the
// next — Wait().
//
// Handles are plain ints. For the real backends they are file descriptors;
// for the sim they are transport-assigned ids. Server code never does I/O
// on a handle directly — always through the backend that produced it.

#ifndef QREG_NET_BACKEND_H_
#define QREG_NET_BACKEND_H_

#include <sys/uio.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace qreg {
namespace net {

/// \brief Which event backend a server runs its loops on.
enum class BackendKind : int {
  kPoll = 0,
  kEpoll = 1,
  kSim = 2,
};

/// "poll" / "epoll" / "sim".
const char* BackendKindName(BackendKind kind);

/// Parses "poll"/"epoll"/"sim" (exact match). Returns false — leaving *kind
/// untouched — for anything else.
bool ParseBackendKind(const std::string& name, BackendKind* kind);

/// \brief Readiness report for one registered handle.
struct ReadyEvent {
  int handle = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;   ///< POLLERR/POLLNVAL class: unusable, close it.
  bool hangup = false;  ///< Peer closed its write side; drain, then close.
};

/// \brief Outcome of one Read/Write call through the backend.
struct IoResult {
  enum class Kind {
    kOk,          ///< `bytes` transferred.
    kWouldBlock,  ///< EAGAIN/EWOULDBLOCK: retry after the next readiness.
    kEof,         ///< Read side only: orderly peer shutdown.
    kError,       ///< Hard failure (`error` holds errno); close the handle.
  };
  Kind kind = Kind::kOk;
  size_t bytes = 0;
  int error = 0;

  static IoResult Ok(size_t n) { return {Kind::kOk, n, 0}; }
  static IoResult WouldBlock() { return {Kind::kWouldBlock, 0, 0}; }
  static IoResult Eof() { return {Kind::kEof, 0, 0}; }
  static IoResult Error(int err) { return {Kind::kError, 0, err}; }
};

/// \brief The event-demultiplexing + socket-I/O seam one event loop runs on.
class EventBackend {
 public:
  virtual ~EventBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Allocates the backend's internal resources (wakeup channel, epoll fd).
  /// Must be called — and must succeed — before any other method.
  virtual util::Status Init() = 0;

  /// Opens a non-blocking listener on address:port (port 0 = ephemeral).
  /// `reuse_port` asks for kernel accept sharding (SO_REUSEPORT); a backend
  /// that cannot honor it returns kNotImplemented so Start() can fall back
  /// to the shared-listener handoff path.
  virtual util::Result<int> OpenListener(const std::string& address,
                                         uint16_t port, bool reuse_port) = 0;

  /// The concrete port `listener` is bound to (resolves an ephemeral bind).
  virtual util::Result<uint16_t> ListenerPort(int listener) = 0;

  /// Accepts one pending connection, already non-blocking (and TCP_NODELAY
  /// on real sockets). Returns the new handle, or -1 when nothing is
  /// pending / the attempt should simply be retried after the next
  /// readiness.
  virtual int Accept(int listener) = 0;

  /// Declares (or updates — upsert semantics) what Wait() should watch
  /// `handle` for. No interest at all parks the handle: it stays known to
  /// the backend but produces no events.
  virtual void UpdateInterest(int handle, bool want_read, bool want_write) = 0;

  /// Forgets `handle`. Must precede Close().
  virtual void Deregister(int handle) = 0;

  /// Blocks up to `timeout_ms` for readiness or a Wake(). `*events` is
  /// cleared and filled with the ready handles; wakeups are consumed
  /// internally and produce no event (the loop re-checks its queues every
  /// iteration regardless). A non-OK status means the wait mechanism itself
  /// failed and the loop should exit.
  virtual util::Status Wait(int timeout_ms, std::vector<ReadyEvent>* events) = 0;

  /// Thread-safe: interrupts a concurrent (or the next) Wait().
  virtual void Wake() = 0;

  /// Scatter read into `iov[0..iovcnt)` — one call fills all iovecs (readv
  /// input batching: a deep kernel buffer drains in one syscall instead of
  /// one per buffer).
  virtual IoResult Read(int handle, const iovec* iov, int iovcnt) = 0;

  /// Gather write of `iov[0..iovcnt)` (sendmsg + MSG_NOSIGNAL on real
  /// sockets: one syscall per flush burst and no SIGPIPE).
  virtual IoResult Write(int handle, const iovec* iov, int iovcnt) = 0;

  /// Closes `handle` (fd close / sim-side teardown).
  virtual void Close(int handle) = 0;
};

/// Real-socket backends. A kSim backend is created by its SimTransport
/// (backend_sim.h) — the server reaches it through ServerConfig::sim.
std::unique_ptr<EventBackend> CreatePollBackend();
std::unique_ptr<EventBackend> CreateEpollBackend();

}  // namespace net
}  // namespace qreg

#endif  // QREG_NET_BACKEND_H_
