// Blocking wire-protocol client for net::Server — the reference peer the
// tests, benches, and example demo use. One TCP connection, synchronous
// Execute/ExecuteBatch, plus the split Send/Read primitives an open-loop
// load generator needs (send from one thread, read from another).
//
// Thread model: at most one sender thread and one reader thread. SendRequest
// and ReadResponse touch disjoint socket directions, so a sender/reader pair
// may run concurrently; two concurrent senders (or readers) may not.

#ifndef QREG_NET_CLIENT_H_
#define QREG_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/query_router.h"
#include "util/status.h"

namespace qreg {
namespace net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (IPv4 dotted quad or resolvable name).
  util::Status Connect(const std::string& host, uint16_t port);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One request, one response (a batch of one).
  util::Result<service::Answer> Execute(const WireRequest& request);

  /// Pipelines the whole batch onto the socket, then collects responses.
  /// Results are positionally aligned with `batch`; per-request failures
  /// (typed kError frames, e.g. kResourceExhausted under shed) come back
  /// in-slot. A transport failure poisons the remaining slots with kIoError.
  std::vector<util::Result<service::Answer>> ExecuteBatch(
      const std::vector<WireRequest>& batch);

  /// Round-trips a kPing/kPong pair (also flushes pipelined traffic).
  util::Status Ping();

  // --- split-phase API (open-loop load generation) ---

  /// Writes one request frame tagged `request_id` (caller-chosen, non-zero).
  util::Status SendRequest(const WireRequest& request, uint64_t request_id);

  /// Blocks for the next response frame; `*request_id` reports which request
  /// it answers. A kError frame becomes the returned (typed) error status;
  /// transport failures surface as kIoError.
  util::Result<service::Answer> ReadResponse(uint64_t* request_id);

 private:
  util::Status WriteAll(const uint8_t* data, size_t n);
  /// Reads until the decoder yields a frame (or fails).
  util::Status ReadFrame(Frame* frame);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameDecoder decoder_;
};

/// \brief M independent connections to one server — the client-side fan-out
/// a multi-loop server needs, since one connection lands on exactly one
/// event loop and can never exercise the others.
///
/// ExecuteBatch stripes the batch round-robin across the connections
/// (request i rides connection i % size()), pipelines every stripe
/// concurrently on its own thread, and scatters the responses back into
/// batch order. The per-connection split-phase primitives stay reachable
/// through client(i) for open-loop load generators that manage their own
/// sender/reader threads.
class ClientPool {
 public:
  ClientPool() = default;
  ~ClientPool();

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// Opens `connections` (≥ 1) sockets to host:port. All-or-nothing: on any
  /// failure every already-open connection is closed again.
  util::Status Connect(const std::string& host, uint16_t port,
                       size_t connections);

  void Close();
  size_t size() const { return clients_.size(); }
  bool connected() const { return !clients_.empty(); }

  /// The i-th connection (0 ≤ i < size()).
  Client* client(size_t i) { return clients_[i].get(); }

  /// Pipelines `batch` across all connections; results are positionally
  /// aligned with `batch`, exactly as Client::ExecuteBatch.
  std::vector<util::Result<service::Answer>> ExecuteBatch(
      const std::vector<WireRequest>& batch);

 private:
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace net
}  // namespace qreg

#endif  // QREG_NET_CLIENT_H_
