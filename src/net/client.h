// Blocking wire-protocol client for net::Server — the reference peer the
// tests, benches, and example demo use. One TCP connection, synchronous
// Execute/ExecuteBatch, plus the split Send/Read primitives an open-loop
// load generator needs (send from one thread, read from another).
//
// Thread model: at most one sender thread and one reader thread. SendRequest
// and ReadResponse touch disjoint socket directions, so a sender/reader pair
// may run concurrently; two concurrent senders (or readers) may not.

#ifndef QREG_NET_CLIENT_H_
#define QREG_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/query_router.h"
#include "util/status.h"

namespace qreg {
namespace net {

/// \brief Client-side failure-recovery policy: how many times to re-issue a
/// failed request, how long to wait between attempts, and how much total
/// retry traffic one batch may generate.
///
/// The wire protocol is read-only (every request is an idempotent query), so
/// re-issuing a request is always safe — *except* when it carried a deadline
/// budget: the server may still be racing the first attempt against that
/// budget, and a retry would silently grant the query a fresh one. ClientPool
/// therefore never retries a request with `deadline_budget_nanos > 0`, and
/// only retries failures whose status `util::IsRetryable()` classifies as
/// transient (kUnavailable goodbye frames, kResourceExhausted shed, kIoError
/// transport death).
struct RetryPolicy {
  /// Total attempts per request, first try included (1 = never retry).
  int max_attempts = 1;

  /// Retry k (k ≥ 1) backs off `base_backoff_nanos * 2^(k-1)`, capped at
  /// `max_backoff_nanos`, with deterministic jitter in [backoff/2, backoff].
  int64_t base_backoff_nanos = 1000000;     // 1 ms
  int64_t max_backoff_nanos = 100000000;    // 100 ms

  /// Seeds the jitter hash: the same (seed, retry-number) pair always yields
  /// the same backoff, so a test with a fixed seed sees one exact schedule.
  uint64_t jitter_seed = 0;

  /// Total request re-issues allowed across one ExecuteBatch call — a batch
  /// of N failures cannot multiply into max_attempts × N extra traffic.
  int retry_budget = 64;

  /// The deterministic backoff for the k-th retry (k ≥ 1), in nanoseconds.
  int64_t BackoffNanos(int retry) const;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (IPv4 dotted quad or resolvable name). The
  /// endpoint is remembered (even on failure) so Reconnect() can redial it.
  util::Status Connect(const std::string& host, uint16_t port);

  /// Closes any current socket and redials the endpoint of the last
  /// Connect(); kFailedPrecondition if Connect() was never called.
  util::Status Reconnect();

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Receive progress timeout for the read path: when > 0, any wait for
  /// response bytes that sees no arrivals for this long fails with a typed
  /// kDeadlineExceeded instead of blocking forever on a stalled server.
  /// 0 (the default) preserves the original block-forever behavior. The
  /// window re-arms on every arriving chunk — it bounds silence, not total
  /// response time.
  void set_recv_timeout_millis(int millis) { recv_timeout_millis_ = millis; }
  int recv_timeout_millis() const { return recv_timeout_millis_; }

  /// One request, one response (a batch of one).
  util::Result<service::Answer> Execute(const WireRequest& request);

  /// Pipelines the whole batch onto the socket, then collects responses.
  /// Results are positionally aligned with `batch`; per-request failures
  /// (typed kError frames, e.g. kResourceExhausted under shed) come back
  /// in-slot. A transport failure (socket death, poisoned stream, receive
  /// timeout) poisons the remaining slots and Close()s the connection — the
  /// stream is unusable past that point, so `connected()` becomes a truthful
  /// liveness signal for a pool deciding whether to redial this stripe.
  std::vector<util::Result<service::Answer>> ExecuteBatch(
      const std::vector<WireRequest>& batch);

  /// Round-trips a kPing/kPong pair (also flushes pipelined traffic).
  util::Status Ping();

  // --- split-phase API (open-loop load generation) ---

  /// Writes one request frame tagged `request_id` (caller-chosen, non-zero).
  util::Status SendRequest(const WireRequest& request, uint64_t request_id);

  /// Blocks for the next response frame; `*request_id` reports which request
  /// it answers. A kError frame becomes the returned (typed) error status;
  /// transport failures surface as kIoError.
  util::Result<service::Answer> ReadResponse(uint64_t* request_id);

 private:
  util::Status WriteAll(const uint8_t* data, size_t n);
  /// Reads until the decoder yields a frame (or fails).
  util::Status ReadFrame(Frame* frame);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  int recv_timeout_millis_ = 0;
  std::string host_;
  uint16_t port_ = 0;
  bool endpoint_set_ = false;
  FrameDecoder decoder_;
};

/// \brief M independent connections to one server — the client-side fan-out
/// a multi-loop server needs, since one connection lands on exactly one
/// event loop and can never exercise the others.
///
/// ExecuteBatch stripes the batch round-robin across the *live* connections,
/// pipelines every stripe concurrently on its own thread, and scatters the
/// responses back into batch order. With a RetryPolicy installed it then
/// re-issues the retryable failures (see RetryPolicy) on later passes,
/// backing off between passes; a dead stripe is redialed lazily — gated by
/// its own exponential backoff — and routed around while it stays down, so
/// one dead connection degrades throughput instead of failing the batch.
/// The per-connection split-phase primitives stay reachable through
/// client(i) for open-loop load generators that manage their own
/// sender/reader threads.
class ClientPool {
 public:
  ClientPool() = default;
  ~ClientPool();

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// Opens `connections` (≥ 1) sockets to host:port. All-or-nothing: on any
  /// failure every already-open connection is closed again.
  util::Status Connect(const std::string& host, uint16_t port,
                       size_t connections);

  void Close();
  size_t size() const { return clients_.size(); }
  bool connected() const { return !clients_.empty(); }

  /// The i-th connection (0 ≤ i < size()).
  Client* client(size_t i) { return clients_[i].get(); }

  /// Failure-recovery policy applied by ExecuteBatch. The default (one
  /// attempt, no retries) reproduces the original fail-fast behavior.
  void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }
  const RetryPolicy& retry_policy() const { return policy_; }

  /// Sets the receive progress timeout on every pooled connection (and on
  /// later reconnects). See Client::set_recv_timeout_millis.
  void set_recv_timeout_millis(int millis);

  /// Pipelines `batch` across the live connections; results are positionally
  /// aligned with `batch`, exactly as Client::ExecuteBatch. Retries per the
  /// installed RetryPolicy.
  std::vector<util::Result<service::Answer>> ExecuteBatch(
      const std::vector<WireRequest>& batch);

 private:
  /// Per-stripe reconnect gate: failures push the next redial attempt out
  /// exponentially (via policy_.BackoffNanos), so a hard-down server costs
  /// one connect() per backoff window, not one per batch pass.
  struct StripeState {
    int consecutive_failures = 0;
    int64_t next_redial_nanos = 0;  // Monotonic; 0 = no gate.
  };

  /// True if stripe i is connected, redialing it first if its gate allows.
  bool EnsureLive(size_t i);

  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<StripeState> stripes_;
  RetryPolicy policy_;
  int recv_timeout_millis_ = 0;
};

}  // namespace net
}  // namespace qreg

#endif  // QREG_NET_CLIENT_H_
