// Blocking wire-protocol client for net::Server — the reference peer the
// tests, benches, and example demo use. One TCP connection, synchronous
// Execute/ExecuteBatch, plus the split Send/Read primitives an open-loop
// load generator needs (send from one thread, read from another).
//
// Thread model: at most one sender thread and one reader thread. SendRequest
// and ReadResponse touch disjoint socket directions, so a sender/reader pair
// may run concurrently; two concurrent senders (or readers) may not.

#ifndef QREG_NET_CLIENT_H_
#define QREG_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/query_router.h"
#include "util/status.h"

namespace qreg {
namespace net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (IPv4 dotted quad or resolvable name).
  util::Status Connect(const std::string& host, uint16_t port);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One request, one response (a batch of one).
  util::Result<service::Answer> Execute(const WireRequest& request);

  /// Pipelines the whole batch onto the socket, then collects responses.
  /// Results are positionally aligned with `batch`; per-request failures
  /// (typed kError frames, e.g. kResourceExhausted under shed) come back
  /// in-slot. A transport failure poisons the remaining slots with kIoError.
  std::vector<util::Result<service::Answer>> ExecuteBatch(
      const std::vector<WireRequest>& batch);

  /// Round-trips a kPing/kPong pair (also flushes pipelined traffic).
  util::Status Ping();

  // --- split-phase API (open-loop load generation) ---

  /// Writes one request frame tagged `request_id` (caller-chosen, non-zero).
  util::Status SendRequest(const WireRequest& request, uint64_t request_id);

  /// Blocks for the next response frame; `*request_id` reports which request
  /// it answers. A kError frame becomes the returned (typed) error status;
  /// transport failures surface as kIoError.
  util::Result<service::Answer> ReadResponse(uint64_t* request_id);

 private:
  util::Status WriteAll(const uint8_t* data, size_t n);
  /// Reads until the decoder yields a frame (or fails).
  util::Status ReadFrame(Frame* frame);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace qreg

#endif  // QREG_NET_CLIENT_H_
