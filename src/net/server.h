// Framed-binary TCP front-end over service::QueryRouter (DESIGN.md §12).
//
// Architecture: one poll()-based event-loop thread owns every socket
// (non-blocking accept/read/write, a self-pipe for cross-thread wakeups) and
// a fixed pool of batch-executor threads runs the router. The event loop
// never executes a query and the executors never touch a socket, so a slow
// scan cannot stall frame decoding on other connections and a slow client
// cannot stall the router.
//
// Pipelining: frames a client sends back-to-back are decoded into a
// per-connection pending list; the whole list is handed to one
// QueryRouter::ExecuteBatch call (the router's existing fan-out does the
// parallelism), and frames arriving while that batch is in flight coalesce
// into the next one. Responses echo each request's id, one kAnswer or kError
// frame per request — a saturated router sheds with a typed
// kResourceExhausted *frame*, never a dropped connection.
//
// Deadlines: a WireRequest's relative budget is bound to a util::Deadline at
// decode time (on the server's — possibly injected — clock), so
// admission-time rejection and the mid-scan degrade ladder behave exactly as
// in-process.
//
// Shutdown: Shutdown() stops accepting, lets in-flight and already-decoded
// requests finish, flushes every response, then closes connections and joins
// all threads (bounded by drain_timeout_millis against stuck peers).

#ifndef QREG_NET_SERVER_H_
#define QREG_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "service/query_router.h"
#include "util/clock.h"
#include "util/status.h"

namespace qreg {
namespace net {

/// \brief Server configuration.
struct ServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (see Server::port()).
  uint16_t port = 0;

  /// Listen address. Defaults to loopback: exposing the service beyond the
  /// host is an explicit operator decision.
  std::string bind_address = "127.0.0.1";

  /// Batch-executor threads running QueryRouter::ExecuteBatch. Fixed at
  /// Start(); the router's own pools provide per-batch parallelism.
  size_t executor_threads = 2;

  /// Per-connection ceiling on decoded-but-unanswered requests. Frames
  /// beyond it are answered immediately with kResourceExhausted (server-side
  /// admission shed) instead of buffering without bound.
  size_t max_pipeline = 1024;

  /// Frames whose payload exceeds this are rejected as malformed before any
  /// buffering.
  size_t max_payload_bytes = kMaxPayloadBytes;

  /// Accepted connections beyond this are closed immediately after accept.
  size_t max_connections = 1024;

  /// Shutdown(): how long to wait for in-flight batches and unflushed
  /// responses before force-closing connections.
  int64_t drain_timeout_millis = 5000;

  /// Clock that decode-time deadline mapping uses (null = system clock).
  /// Borrowed; must outlive the server. Tests inject a FakeClock.
  const util::Clock* clock = nullptr;
};

/// \brief The wire-level front door: accepts framed-binary connections and
/// serves them from a borrowed QueryRouter (which must outlive the server).
///
/// Wire-level activity is recorded into the router's ServiceStats
/// (net_* counters), so Stats() on the router covers the whole stack.
class Server {
 public:
  Server(service::QueryRouter* router, ServerConfig config = ServerConfig());

  /// Shuts down (gracefully) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event-loop + executor threads. A server
  /// is single-use: Start() after Shutdown() is an error.
  util::Status Start();

  /// The bound port (useful with config.port = 0). 0 before Start().
  uint16_t port() const { return port_; }

  bool running() const { return state_.load() == State::kRunning; }

  /// Graceful stop: stop accepting, drain in-flight work, flush responses,
  /// close connections, join threads. Idempotent; safe from any thread
  /// (including concurrently with itself, not from server threads).
  void Shutdown();

 private:
  enum class State : int { kIdle = 0, kRunning = 1, kStopped = 2 };

  struct Connection;
  struct BatchJob;
  struct Completion;

  void EventLoop();
  void ExecutorLoop();

  // Event-loop helpers (only called on the event-loop thread).
  void AcceptNew();
  void HandleReadable(Connection* conn);
  void HandleFrame(Connection* conn, Frame frame);
  void DispatchIfReady(Connection* conn);
  void FlushWrites(Connection* conn);
  void CloseConnection(uint64_t id, bool count_as_drop);
  void Wakeup();

  service::QueryRouter* router_;
  ServerConfig config_;
  service::ServiceStats* stats_;  // The router's collector (net_* counters).

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // Self-pipe: [0] polled, [1] written.
  uint16_t port_ = 0;

  std::atomic<State> state_{State::kIdle};
  std::atomic<bool> shutdown_requested_{false};

  std::thread event_thread_;
  std::vector<std::thread> executors_;

  // Event-loop-owned connection table (never touched by executors).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  // Executor work queue and completion queue (event loop <-> executors).
  std::mutex job_mu_;
  std::condition_variable job_cv_;
  std::deque<BatchJob> jobs_;
  bool executors_stop_ = false;

  std::mutex done_mu_;
  std::deque<Completion> done_;

  std::mutex shutdown_mu_;  // Serializes Shutdown() callers.
};

}  // namespace net
}  // namespace qreg

#endif  // QREG_NET_SERVER_H_
