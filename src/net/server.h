// Framed-binary TCP front-end over service::QueryRouter (DESIGN.md §12).
//
// Architecture: N independent event loops (config.event_loops), each owning
// its *own* EventBackend (the demultiplexer/I-O seam — poll, epoll, or the
// deterministic SimBackend, selected by config.backend), listener,
// connection table, arena, and completion queue — no socket is ever touched
// by two threads — plus one shared fixed pool of batch-executor threads
// running the router. A loop never executes a query and the executors never
// touch a socket, so a slow scan cannot stall frame decoding on any
// connection and a slow client cannot stall the router.
//
// Accept sharding: every loop binds its own SO_REUSEPORT listener to the
// same address, and the kernel spreads incoming connections across them.
// When the platform refuses SO_REUSEPORT (or the test hook
// `force_shared_listener` is set), loop 0 keeps the sole listener and hands
// accepted fds to the other loops round-robin through per-loop handoff
// queues — same ownership invariant, software sharding.
//
// Pipelining: frames a client sends back-to-back are decoded into a
// per-connection pending list; the whole list is handed to one
// QueryRouter::ExecuteBatch call, and frames arriving while that batch is in
// flight coalesce into the next one. Responses echo each request's id, one
// kAnswer or kError frame per request — a saturated router sheds with a
// typed kResourceExhausted *frame*, never a dropped connection.
//
// Response path: the owning loop Acquire()s a buffer from its WireArena at
// dispatch time; the executor encodes every response frame of the batch
// in place (AppendAnswerFrame/AppendStatusFrame — no per-frame allocation)
// and the buffer rides the completion back to its loop, is queued as one
// output chunk, flushed with one scatter-gather backend Write per
// writability burst (not one per frame), and finally Release()d to the
// arena.
//
// Shutdown: Shutdown() stops every listener, lets in-flight and
// already-decoded requests finish, flushes every response on every loop,
// then closes connections and joins all threads (each loop bounded by
// drain_timeout_millis against stuck peers).

#ifndef QREG_NET_SERVER_H_
#define QREG_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/backend.h"
#include "net/wire.h"
#include "service/query_router.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qreg {
namespace net {

class SimTransport;

/// Hard ceiling on ServerConfig::event_loops — far past any sane core count;
/// a bigger request is a typo, rejected by Validate().
constexpr size_t kMaxEventLoops = 64;

/// \brief Where a started server is actually listening — what Start()
/// returns, so "bind then ask for the port" is one step, not two.
struct Endpoint {
  std::string address;
  uint16_t port = 0;

  std::string ToString() const;  ///< "127.0.0.1:8080".
};

/// \brief Server configuration.
struct ServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (reported by the
  /// Endpoint Start() returns).
  uint16_t port = 0;

  /// Listen address. Defaults to loopback: exposing the service beyond the
  /// host is an explicit operator decision.
  std::string bind_address = "127.0.0.1";

  /// Event loops (each with its own listener and connection table). The
  /// loops are the frame-pumping capacity; scale this with cores when the
  /// measured knee is loop-bound (bench_load_curve's loop ladder).
  size_t event_loops = 1;

  /// Batch-executor threads running QueryRouter::ExecuteBatch, shared by
  /// all loops. Must be ≥ 1 (Validate enforces it).
  size_t executor_threads = 2;

  /// Per-connection ceiling on decoded-but-unanswered requests. Frames
  /// beyond it are answered immediately with kResourceExhausted (server-side
  /// admission shed) instead of buffering without bound.
  size_t max_pipeline = 1024;

  /// Frames whose payload exceeds this are rejected as malformed before any
  /// buffering.
  size_t max_payload_bytes = kMaxPayloadBytes;

  /// Global cap across *all* loops (one shared atomic count, so N loops
  /// cannot collectively accept N× the limit). Connections beyond it are
  /// closed immediately after accept.
  size_t max_connections = 1024;

  /// Shutdown(): how long each loop waits for in-flight batches and
  /// unflushed responses before force-closing its connections. Measured on
  /// `clock`, like every other lifecycle timeout.
  int64_t drain_timeout_millis = 5000;

  /// Idle timeout: a connection with no partial frame buffered, no
  /// outstanding requests, and nothing left to flush is closed
  /// (NetActivity::idle_closed) after this long without traffic, so an
  /// abandoned peer cannot pin a connection-table slot forever. 0 disables.
  int64_t idle_timeout_millis = 60000;

  /// Read-progress timeout: once the first byte of a frame arrives, the
  /// whole frame (header and payload) must complete within this window or
  /// the connection is closed (NetActivity::read_timeout_closed). The window
  /// anchors at frame *start*, not at the last byte, so a slow-loris peer
  /// dripping one byte per interval cannot extend it. 0 disables.
  int64_t read_progress_timeout_millis = 10000;

  /// Per-connection cap on pending (queued, unflushed) response bytes. A
  /// peer that stops reading past this point is evicted: its queued
  /// responses are released back to the arena, one typed kUnavailable
  /// "going away" frame is staged best-effort, and the connection closes
  /// (NetActivity::backpressure_closed). 0 disables.
  size_t max_conn_pending_write_bytes = 64u << 20;

  /// Aggregate pending-write cap across all connections of one loop.
  /// Exceeding it evicts the connection(s) with the most pending bytes until
  /// the loop is back under the cap — one stalled reader cannot starve its
  /// loop's arena. Must be >= the per-connection cap when both are set
  /// (Validate). 0 disables.
  size_t max_loop_pending_write_bytes = 0;

  /// Event demultiplexer per loop: kPoll (portable baseline), kEpoll
  /// (level-triggered, O(ready) dispatch), or kSim (the deterministic
  /// in-memory transport in `sim` — tests only). The wire bytes are
  /// backend-independent; net_socket_test pins epoll bit-for-bit against
  /// poll.
  BackendKind backend = BackendKind::kPoll;

  /// The transport a kSim server runs on. Borrowed; must outlive the
  /// server. Required (Validate) iff backend == kSim.
  SimTransport* sim = nullptr;

  /// Per-loop WireArena pooling caps (response-buffer reuse).
  WireArena::Options arena;

  /// Clock that decode-time deadline mapping *and* every connection
  /// lifecycle timeout (idle, read-progress, drain) read (null = system
  /// clock). Borrowed; must outlive the server. Tests inject a FakeClock and
  /// drive expiries with SimTransport::Poke() — no real sleeps.
  const util::Clock* clock = nullptr;

  /// Test hook: pretend the platform lacks SO_REUSEPORT, forcing the
  /// shared-listener round-robin handoff path even where the kernel would
  /// shard accepts natively.
  bool force_shared_listener = false;

  /// Typed kInvalidArgument for a config no socket syscall should ever see:
  /// zero executor threads, zero or > kMaxEventLoops event loops, a bind
  /// address inet_pton rejects, a zero connection cap, a negative drain /
  /// idle / read-progress timeout, a per-connection pending-write cap above
  /// the per-loop aggregate cap, zero-capacity arena pooling, or
  /// backend == kSim without a transport. Start() calls this before touching
  /// the network.
  util::Status Validate() const;
};

/// \brief The wire-level front door: accepts framed-binary connections and
/// serves them from a borrowed QueryRouter (which must outlive the server).
///
/// Wire-level activity is recorded into the router's ServiceStats — both the
/// aggregate net_* counters and the per-loop breakdown (net_loops), so one
/// snapshot shows a skewed accept shard or a starving loop.
class Server {
 public:
  Server(service::QueryRouter* router, ServerConfig config = ServerConfig());

  /// Shuts down (gracefully) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validates the config, binds every loop's listener, and starts the
  /// event-loop + executor threads. Returns the bound endpoint (with the
  /// kernel-chosen port when config.port == 0). A server is single-use:
  /// Start() after Shutdown() is an error.
  util::Result<Endpoint> Start();

  bool running() const { return state_.load() == State::kRunning; }

  /// Number of event loops actually running (0 before Start()).
  size_t num_loops() const { return loops_.size(); }

  /// True when Start() fell back to the shared-listener handoff path
  /// instead of per-loop SO_REUSEPORT listeners.
  bool using_shared_listener() const { return shared_listener_; }

  /// Loop `i`'s arena, for post-Shutdown() leak-invariant checks
  /// (acquired() == released() no matter how each connection died).
  /// Requires i < num_loops(); call only while the server is not running.
  const WireArena& loop_arena(size_t i) const { return loops_[i]->arena; }

  /// Graceful stop: stop accepting, drain in-flight work, flush responses,
  /// close connections, join threads. Idempotent; safe from any thread
  /// (including concurrently with itself, not from server threads).
  void Shutdown();

 private:
  enum class State : int { kIdle = 0, kRunning = 1, kStopped = 2 };

  struct Connection;
  struct BatchJob;
  struct Completion;

  /// One armed connection deadline in a loop's timer wheel. Entries are
  /// never removed eagerly: each carries the generation its connection had
  /// when armed, and a popped entry whose generation no longer matches (the
  /// connection rearmed, or died) is dropped — lazy invalidation keeps
  /// arming O(log n) with no multimap searches.
  struct TimerEntry {
    uint64_t conn_id = 0;
    uint64_t gen = 0;
  };

  /// Everything one event loop owns. Only the loop's thread touches the
  /// connection table, arena, or backend (Wake() excepted — it is the one
  /// thread-safe backend call); the mutex-guarded queues are the only
  /// cross-thread seams (executors push completions, the accepting loop
  /// pushes handoff handles in shared-listener mode).
  struct Loop {
    // Out-of-line (Connection/Completion are incomplete here).
    explicit Loop(WireArena::Options arena_options);
    ~Loop();

    size_t index = 0;
    std::unique_ptr<EventBackend> backend;
    int listen_h = -1;  // Backend listener handle; -1 on non-accepting loops.
    std::thread thread;

    // --- loop-thread-only state ---
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    std::unordered_map<int, uint64_t> by_handle;  // Backend handle → conn id.
    uint64_t next_conn_id = 1;
    WireArena arena;

    // Timer wheel: connection deadlines ordered by expiry (config clock
    // nanos). The loop's Wait() sleeps exactly until the earliest entry —
    // there is no polling tick. Loop-thread-only.
    std::multimap<int64_t, TimerEntry> timers;
    // Sum of every connection's pending (unflushed) response bytes — the
    // quantity max_loop_pending_write_bytes bounds.
    size_t pending_out_total = 0;

    // Executors → loop: finished batches.
    util::Mutex done_mu;
    std::deque<Completion> done QREG_GUARDED_BY(done_mu);

    // Accepting loop → loop: round-robin handle handoff (shared-listener
    // mode).
    util::Mutex handoff_mu;
    std::deque<int> handoff QREG_GUARDED_BY(handoff_mu);
  };

  void EventLoop(Loop* loop);
  void ExecutorLoop();
  void WakeLoop(Loop* loop);

  // Event-loop helpers (only called on `loop`'s own thread).
  void AcceptNew(Loop* loop);
  void AdoptHandoffs(Loop* loop);
  void RegisterConnection(Loop* loop, int fd);
  void HandleReadable(Loop* loop, Connection* conn);
  void HandleFrame(Loop* loop, Connection* conn, Frame frame);
  void DispatchIfReady(Loop* loop, Connection* conn);
  void FlushWrites(Loop* loop, Connection* conn);
  void CloseConnection(Loop* loop, uint64_t id);

  // --- connection lifecycle (timer wheel + write backpressure) ---

  /// The lifecycle clock: config.clock, or the system clock when none was
  /// injected. Every timeout in this file reads time through here.
  int64_t Now() const;

  /// The connection's next deadline on the lifecycle clock, derived from its
  /// current state (mid-frame → read-progress window from frame start;
  /// otherwise idle window from last activity; evicted → goodbye grace).
  /// Returns -1 when no timeout applies.
  int64_t NextDeadline(const Connection& conn, int64_t now) const;

  void ArmTimer(Loop* loop, Connection* conn, int64_t deadline);

  /// Arms (or tightens) the connection's wheel entry to its current
  /// NextDeadline. A looser desired deadline is left alone: the armed entry
  /// fires early, recomputes, and rearms — monotone and lazy.
  void RescheduleTimer(Loop* loop, Connection* conn, int64_t now);

  /// Pops and handles every expired wheel entry: stale entries are dropped,
  /// still-early ones rearmed, true expiries closed with the right
  /// NetActivity counter (idle_closed / read_timeout_closed).
  void ProcessTimers(Loop* loop, int64_t now);

  static size_t PendingBytes(const Connection& conn);
  void UpdatePendingAccounting(Loop* loop, Connection* conn);

  /// Enforces both pending-write caps; may Evict `conn` (per-connection
  /// cap) and/or the loop's heaviest writers (aggregate cap).
  void MaybeEvict(Loop* loop, Connection* conn);

  /// Backpressure eviction: drop the undeliverable queue back to the arena,
  /// stage one typed kUnavailable goodbye, count backpressure_closed, and
  /// close as soon as the goodbye flushes (or the grace timer fires).
  void Evict(Loop* loop, Connection* conn);

  service::QueryRouter* router_;
  ServerConfig config_;
  service::ServiceStats* stats_;  // The router's collector (net_* counters).

  std::vector<std::unique_ptr<Loop>> loops_;
  bool shared_listener_ = false;
  size_t handoff_next_ = 0;  // Round-robin cursor (accepting loop only).

  // Shared across loops: the global connection count behind
  // config.max_connections (satellite fix — one cap, not one per loop).
  std::atomic<size_t> open_conns_{0};

  std::atomic<State> state_{State::kIdle};
  std::atomic<bool> shutdown_requested_{false};

  std::vector<std::thread> executors_;

  // Executor work queue (all loops → shared executor pool).
  util::Mutex job_mu_;
  util::CondVar job_cv_;
  std::deque<BatchJob> jobs_ QREG_GUARDED_BY(job_mu_);
  bool executors_stop_ QREG_GUARDED_BY(job_mu_) = false;

  util::Mutex shutdown_mu_;  // Serializes Shutdown() callers.
};

}  // namespace net
}  // namespace qreg

#endif  // QREG_NET_SERVER_H_
