#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"
#include "util/timer.h"

namespace qreg {
namespace net {

namespace {

// One decoded, admission-mapped request awaiting execution.
struct PendingRequest {
  uint64_t request_id = 0;
  service::Request request;
};

}  // namespace

struct Server::Connection {
  uint64_t id = 0;
  int fd = -1;
  FrameDecoder decoder;
  std::vector<uint8_t> outbuf;
  size_t out_pos = 0;  // Flushed prefix of outbuf.
  std::vector<PendingRequest> pending;
  size_t in_flight = 0;  // Requests inside the currently-executing batch.
  bool read_closed = false;
  bool close_after_flush = false;

  Connection(uint64_t id_in, int fd_in, size_t max_payload)
      : id(id_in), fd(fd_in), decoder(max_payload) {}

  size_t outstanding() const { return pending.size() + in_flight; }
  bool flushed() const { return out_pos == outbuf.size(); }
};

struct Server::BatchJob {
  uint64_t conn_id = 0;
  std::vector<PendingRequest> items;
};

struct Server::Completion {
  uint64_t conn_id = 0;
  size_t num_requests = 0;
  std::vector<uint8_t> bytes;  // Encoded kAnswer/kError response frames.
};

Server::Server(service::QueryRouter* router, ServerConfig config)
    : router_(router), config_(std::move(config)), stats_(router->stats_sink()) {}

Server::~Server() { Shutdown(); }

util::Status Server::Start() {
  if (state_.load() != State::kIdle) {
    return util::Status::FailedPrecondition("net::Server is single-use");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("bad bind address: " +
                                         config_.bind_address);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(util::Format("socket(): %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const util::Status st =
        util::Status::IoError(util::Format("bind/listen %s:%u: %s",
                                           config_.bind_address.c_str(),
                                           config_.port, strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(util::Format("pipe2(): %s", strerror(errno)));
  }

  state_.store(State::kRunning);
  const size_t executors = config_.executor_threads > 0 ? config_.executor_threads : 1;
  executors_.reserve(executors);
  for (size_t i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  event_thread_ = std::thread([this] { EventLoop(); });
  return util::Status::OK();
}

void Server::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (state_.load() == State::kIdle) {
    state_.store(State::kStopped);
    return;
  }
  if (state_.load() == State::kStopped) return;

  shutdown_requested_.store(true);
  Wakeup();
  if (event_thread_.joinable()) event_thread_.join();

  {
    std::lock_guard<std::mutex> job_lock(job_mu_);
    executors_stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  state_.store(State::kStopped);
}

void Server::Wakeup() {
  if (wake_fds_[1] < 0) return;
  const uint8_t byte = 1;
  // EAGAIN means the pipe already holds a pending wakeup — good enough.
  (void)!::write(wake_fds_[1], &byte, 1);
}

// --------------------------------------------------------------- executors --

void Server::ExecutorLoop() {
  for (;;) {
    BatchJob job;
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      job_cv_.wait(lock, [this] { return executors_stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // executors_stop_ and nothing left.
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }

    std::vector<service::Request> batch;
    batch.reserve(job.items.size());
    for (PendingRequest& item : job.items) batch.push_back(std::move(item.request));
    const std::vector<util::Result<service::Answer>> results =
        router_->ExecuteBatch(batch);

    Completion done;
    done.conn_id = job.conn_id;
    done.num_requests = job.items.size();
    for (size_t i = 0; i < results.size() && i < job.items.size(); ++i) {
      const uint64_t id = job.items[i].request_id;
      if (results[i].ok()) {
        AppendFrame(&done.bytes, FrameType::kAnswer, id,
                    EncodeAnswer(*results[i]));
      } else {
        AppendFrame(&done.bytes, FrameType::kError, id,
                    EncodeStatus(results[i].status()));
      }
    }
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(std::move(done));
    }
    Wakeup();
  }
}

// -------------------------------------------------------------- event loop --

void Server::EventLoop() {
  bool draining = false;
  int64_t drain_start_nanos = 0;

  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // Parallel to pfds; 0 = not a connection.

  for (;;) {
    // Enter drain mode once: stop accepting and stop reading new frames;
    // everything already decoded still gets executed and flushed.
    if (!draining && shutdown_requested_.load()) {
      draining = true;
      drain_start_nanos = util::NowNanos();
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      for (auto& entry : conns_) {
        entry.second->read_closed = true;
        entry.second->close_after_flush = true;
        DispatchIfReady(entry.second.get());
      }
    }

    // Reap connections that are finished: nothing pending, nothing in
    // flight, every response flushed.
    {
      std::vector<uint64_t> done_ids;
      for (auto& entry : conns_) {
        Connection* c = entry.second.get();
        if ((c->read_closed || c->close_after_flush) && c->pending.empty() &&
            c->in_flight == 0 && c->flushed()) {
          done_ids.push_back(c->id);
        }
      }
      for (uint64_t id : done_ids) CloseConnection(id, /*count_as_drop=*/false);
    }

    if (draining) {
      const bool timed_out =
          util::NowNanos() - drain_start_nanos >
          config_.drain_timeout_millis * 1000000;
      if (conns_.empty()) break;
      if (timed_out) {
        std::vector<uint64_t> ids;
        ids.reserve(conns_.size());
        for (auto& entry : conns_) ids.push_back(entry.first);
        for (uint64_t id : ids) CloseConnection(id, /*count_as_drop=*/true);
        break;
      }
    }

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    pfd_conn.push_back(0);
    if (listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& entry : conns_) {
      Connection* c = entry.second.get();
      short events = 0;
      if (!c->read_closed) events |= POLLIN;
      if (!c->flushed()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({c->fd, events, 0});
      pfd_conn.push_back(c->id);
    }

    const int timeout_ms = draining ? 20 : 500;
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) break;  // Poll failure: bail out.

    // Self-pipe: drain pending wakeup bytes.
    if (pfds[0].revents & POLLIN) {
      uint8_t buf[256];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // Completed batches → connection output buffers.
    {
      std::deque<Completion> finished;
      {
        std::lock_guard<std::mutex> lock(done_mu_);
        finished.swap(done_);
      }
      for (Completion& done : finished) {
        auto it = conns_.find(done.conn_id);
        if (it == conns_.end()) continue;  // Connection died mid-batch.
        Connection* c = it->second.get();
        c->in_flight -= std::min(c->in_flight, done.num_requests);
        c->outbuf.insert(c->outbuf.end(), done.bytes.begin(), done.bytes.end());
        DispatchIfReady(c);
      }
    }

    if (listen_fd_ >= 0) {
      for (size_t i = 1; i < pfds.size(); ++i) {
        if (pfd_conn[i] == 0 && pfds[i].fd == listen_fd_ &&
            (pfds[i].revents & POLLIN)) {
          AcceptNew();
          break;
        }
      }
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      const uint64_t id = pfd_conn[i];
      if (id == 0 || pfds[i].revents == 0) continue;
      if (pfds[i].revents & (POLLERR | POLLNVAL)) {
        CloseConnection(id, /*count_as_drop=*/true);
        continue;
      }
      if (pfds[i].revents & (POLLIN | POLLHUP)) {
        auto it = conns_.find(id);
        if (it != conns_.end()) HandleReadable(it->second.get());
      }
      auto it = conns_.find(id);
      if (it != conns_.end() && !it->second->flushed()) {
        FlushWrites(it->second.get());
      }
    }
  }
}

void Server::AcceptNew() {
  service::NetActivity activity;
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or transient accept failure: poll again.
    }
    if (conns_.size() >= config_.max_connections) {
      // Connection-count cap: refuse at the door (the per-request overload
      // story — typed kResourceExhausted frames — applies to accepted
      // connections; the fd table itself must stay bounded).
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    conns_.emplace(id, std::make_unique<Connection>(id, fd,
                                                    config_.max_payload_bytes));
    ++activity.connections_accepted;
  }
  if (!activity.empty()) stats_->RecordNet(activity);
}

void Server::HandleReadable(Connection* conn) {
  service::NetActivity activity;
  uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      activity.bytes_in += n;
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      conn->read_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // Hard read error: the peer is gone; drop what cannot be delivered.
    stats_->RecordNet(activity);
    CloseConnection(conn->id, /*count_as_drop=*/true);
    return;
  }

  Frame frame;
  for (;;) {
    const FrameDecoder::Event event = conn->decoder.Next(&frame);
    if (event == FrameDecoder::Event::kFrame) {
      ++activity.frames_decoded;
      HandleFrame(conn, std::move(frame));
      continue;
    }
    if (event == FrameDecoder::Event::kError) {
      // Defined protocol-error state: report the typed error on request_id 0,
      // flush everything already owed, then close. Never resync on garbage.
      ++activity.protocol_errors;
      AppendFrame(&conn->outbuf, FrameType::kError, 0,
                  EncodeStatus(conn->decoder.error()));
      conn->read_closed = true;
      conn->close_after_flush = true;
    }
    break;  // kNeedMore or kError.
  }

  if (!activity.empty()) stats_->RecordNet(activity);
  DispatchIfReady(conn);
  FlushWrites(conn);
}

void Server::HandleFrame(Connection* conn, Frame frame) {
  switch (frame.header.type) {
    case FrameType::kPing: {
      AppendFrame(&conn->outbuf, FrameType::kPong, frame.header.request_id,
                  nullptr, 0);
      return;
    }
    case FrameType::kRequest: {
      util::Result<WireRequest> decoded =
          DecodeRequest(frame.payload.data(), frame.payload.size());
      if (!decoded.ok()) {
        // Payload-level error on an intact frame boundary: answer it and
        // keep the connection (the stream itself is still well-formed).
        service::NetActivity activity;
        ++activity.protocol_errors;
        stats_->RecordNet(activity);
        AppendFrame(&conn->outbuf, FrameType::kError, frame.header.request_id,
                    EncodeStatus(decoded.status()));
        return;
      }
      if (conn->outstanding() >= config_.max_pipeline) {
        // Server-side admission shed: bound the per-connection backlog with a
        // typed rejection, never an unbounded buffer or a closed socket.
        service::QueryOutcome outcome;
        outcome.ok = false;
        outcome.shed = true;
        stats_->Record(outcome);
        AppendFrame(&conn->outbuf, FrameType::kError, frame.header.request_id,
                    EncodeStatus(util::Status::ResourceExhausted(
                        util::Format("connection pipeline full (%zu in flight)",
                                     conn->outstanding()))));
        return;
      }
      PendingRequest pending;
      pending.request_id = frame.header.request_id;
      pending.request.dataset = std::move(decoded->dataset);
      pending.request.kind = decoded->kind;
      pending.request.q = std::move(decoded->q);
      if (decoded->deadline_budget_nanos > 0) {
        // Decode-time deadline mapping: the client's relative budget starts
        // ticking here, so admission rejection and the shed/degrade ladder
        // see exactly what an in-process caller would have passed.
        pending.request.deadline = util::Deadline::AfterNanos(
            static_cast<int64_t>(decoded->deadline_budget_nanos), config_.clock);
      }
      conn->pending.push_back(std::move(pending));
      return;
    }
    default: {
      service::NetActivity activity;
      ++activity.protocol_errors;
      stats_->RecordNet(activity);
      AppendFrame(
          &conn->outbuf, FrameType::kError, frame.header.request_id,
          EncodeStatus(util::Status::InvalidArgument(util::Format(
              "wire protocol: unexpected frame type %u from client",
              static_cast<unsigned>(frame.header.type)))));
      return;
    }
  }
}

void Server::DispatchIfReady(Connection* conn) {
  if (conn->in_flight > 0 || conn->pending.empty()) return;
  BatchJob job;
  job.conn_id = conn->id;
  job.items = std::move(conn->pending);
  conn->pending.clear();
  conn->in_flight = job.items.size();
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    jobs_.push_back(std::move(job));
  }
  job_cv_.notify_one();
}

void Server::FlushWrites(Connection* conn) {
  service::NetActivity activity;
  while (conn->out_pos < conn->outbuf.size()) {
    const ssize_t n = ::write(conn->fd, conn->outbuf.data() + conn->out_pos,
                              conn->outbuf.size() - conn->out_pos);
    if (n > 0) {
      activity.bytes_out += n;
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (!activity.empty()) stats_->RecordNet(activity);
    CloseConnection(conn->id, /*count_as_drop=*/true);
    return;
  }
  if (conn->flushed() && conn->out_pos > 0) {
    conn->outbuf.clear();
    conn->out_pos = 0;
  }
  if (!activity.empty()) stats_->RecordNet(activity);
}

void Server::CloseConnection(uint64_t id, bool count_as_drop) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
  service::NetActivity activity;
  ++activity.connections_closed;
  (void)count_as_drop;  // Both paths count as closed; drops show up client-side.
  stats_->RecordNet(activity);
}

}  // namespace net
}  // namespace qreg
