#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/uio.h>

#include <utility>

#include "net/backend_sim.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace qreg {
namespace net {

namespace {

// One decoded, admission-mapped request awaiting execution.
struct PendingRequest {
  uint64_t request_id = 0;
  service::Request request;
};

// Chunks gathered into one flush call. Well under IOV_MAX everywhere.
constexpr size_t kMaxIov = 64;

}  // namespace

std::string Endpoint::ToString() const {
  return util::Format("%s:%u", address.c_str(), port);
}

util::Status ServerConfig::Validate() const {
  if (executor_threads == 0) {
    return util::Status::InvalidArgument(
        "ServerConfig: executor_threads must be >= 1 (the event loops never "
        "run queries themselves)");
  }
  if (event_loops == 0 || event_loops > kMaxEventLoops) {
    return util::Status::InvalidArgument(
        util::Format("ServerConfig: event_loops must be in [1, %zu] (got %zu)",
                     kMaxEventLoops, event_loops));
  }
  sockaddr_in probe{};
  if (inet_pton(AF_INET, bind_address.c_str(), &probe.sin_addr) != 1) {
    return util::Status::InvalidArgument("ServerConfig: bad bind address: " +
                                         bind_address);
  }
  if (max_connections == 0) {
    return util::Status::InvalidArgument(
        "ServerConfig: max_connections must be >= 1");
  }
  if (drain_timeout_millis < 0) {
    return util::Status::InvalidArgument(
        util::Format("ServerConfig: drain_timeout_millis must be >= 0 "
                     "(got %lld)",
                     static_cast<long long>(drain_timeout_millis)));
  }
  if (idle_timeout_millis < 0) {
    return util::Status::InvalidArgument(
        util::Format("ServerConfig: idle_timeout_millis must be >= 0 "
                     "(0 disables; got %lld)",
                     static_cast<long long>(idle_timeout_millis)));
  }
  if (read_progress_timeout_millis < 0) {
    return util::Status::InvalidArgument(util::Format(
        "ServerConfig: read_progress_timeout_millis must be >= 0 "
        "(0 disables; got %lld)",
        static_cast<long long>(read_progress_timeout_millis)));
  }
  if (max_loop_pending_write_bytes > 0 &&
      max_conn_pending_write_bytes > max_loop_pending_write_bytes) {
    return util::Status::InvalidArgument(util::Format(
        "ServerConfig: max_conn_pending_write_bytes (%zu) must not exceed "
        "max_loop_pending_write_bytes (%zu) when both caps are set — one "
        "connection could otherwise never hit its own cap",
        max_conn_pending_write_bytes, max_loop_pending_write_bytes));
  }
  if (arena.max_pooled_buffers == 0 || arena.max_retained_bytes == 0) {
    return util::Status::InvalidArgument(
        "ServerConfig: arena pooling caps must be >= 1 (a zero-buffer "
        "WireArena would defeat the arena encode path entirely)");
  }
  if (backend == BackendKind::kSim && sim == nullptr) {
    return util::Status::InvalidArgument(
        "ServerConfig: backend == kSim requires a SimTransport in `sim`");
  }
  return util::Status::OK();
}

struct Server::Connection {
  uint64_t id = 0;  // Loop-local (each loop numbers its own connections).
  int handle = -1;  // Backend handle (an fd for the real backends).
  FrameDecoder decoder;

  // Output: a queue of encoded response chunks (arena buffers from executor
  // completions, plus the loop's own staging buffer once committed), flushed
  // with one scatter-gather backend Write per burst. out_pos is the
  // already-flushed prefix of the *front* chunk.
  std::deque<std::vector<uint8_t>> outq;
  size_t out_pos = 0;
  std::vector<uint8_t> loop_out;  // Loop-side frames (pongs, error frames).

  std::vector<PendingRequest> pending;
  size_t in_flight = 0;  // Requests inside the currently-executing batch.
  bool read_closed = false;
  bool close_after_flush = false;

  // Interest last pushed to the backend (so the loop upserts only changes).
  bool want_read = false;
  bool want_write = false;

  // --- lifecycle state (all on the config clock) ---
  int64_t last_activity_nanos = 0;  // Last byte in/out or batch completion.
  int64_t frame_start_nanos = 0;    // When the buffered partial frame began.
  bool mid_frame = false;           // Decoder holds an incomplete frame.
  bool evicted = false;             // Backpressure eviction in progress.
  int64_t evicted_nanos = 0;
  uint64_t timer_gen = 0;       // Bumped on every arm (lazy invalidation).
  int64_t armed_deadline = -1;  // Live wheel-entry key; -1 = not armed.
  size_t pending_out = 0;       // Cached pending write bytes (accounting).

  Connection(uint64_t id_in, int handle_in, size_t max_payload)
      : id(id_in), handle(handle_in), decoder(max_payload) {}

  size_t outstanding() const { return pending.size() + in_flight; }
  bool flushed() const { return outq.empty() && loop_out.empty(); }
};

struct Server::BatchJob {
  size_t loop_index = 0;
  uint64_t conn_id = 0;
  std::vector<PendingRequest> items;
  std::vector<uint8_t> buf;  // Arena buffer the executor encodes into.
};

struct Server::Completion {
  uint64_t conn_id = 0;
  size_t num_requests = 0;
  std::vector<uint8_t> bytes;  // The job's arena buffer, now full of frames.
};

Server::Loop::Loop(WireArena::Options arena_options) : arena(arena_options) {}
Server::Loop::~Loop() = default;

Server::Server(service::QueryRouter* router, ServerConfig config)
    : router_(router), config_(std::move(config)), stats_(router->stats_sink()) {}

Server::~Server() { Shutdown(); }

util::Result<Endpoint> Server::Start() {
  if (state_.load() != State::kIdle) {
    return util::Status::FailedPrecondition("net::Server is single-use");
  }
  // Typed config errors before any socket syscall.
  QREG_RETURN_NOT_OK(config_.Validate());

  const size_t nloops = config_.event_loops;
  loops_.clear();
  loops_.reserve(nloops);
  for (size_t i = 0; i < nloops; ++i) {
    loops_.push_back(std::make_unique<Loop>(config_.arena));
    loops_.back()->index = i;
  }

  auto cleanup = [this] {
    for (auto& loop : loops_) {
      if (loop->listen_h >= 0 && loop->backend) {
        loop->backend->Close(loop->listen_h);
      }
    }
    loops_.clear();
  };

  for (auto& loop : loops_) {
    switch (config_.backend) {
      case BackendKind::kPoll:
        loop->backend = CreatePollBackend();
        break;
      case BackendKind::kEpoll:
        loop->backend = CreateEpollBackend();
        break;
      case BackendKind::kSim:
        loop->backend = config_.sim->CreateBackend();
        break;
    }
    const util::Status st = loop->backend->Init();
    if (!st.ok()) {
      cleanup();
      return st;
    }
  }

  // Listener topology: every loop gets its own SO_REUSEPORT listener on the
  // same endpoint (kernel accept sharding). If the platform refuses — or the
  // test hook forces it — loop 0 keeps a sole plain listener and hands
  // accepted connections round-robin to the other loops.
  shared_listener_ = config_.force_shared_listener;
  const bool want_reuseport = !config_.force_shared_listener && nloops > 1;
  util::Result<int> first = loops_[0]->backend->OpenListener(
      config_.bind_address, config_.port, want_reuseport);
  if (!first.ok() && want_reuseport) {
    // Kernel without SO_REUSEPORT: shared-listener fallback.
    shared_listener_ = true;
    first = loops_[0]->backend->OpenListener(config_.bind_address,
                                             config_.port,
                                             /*reuse_port=*/false);
  }
  if (!first.ok()) {
    cleanup();
    return first.status();
  }
  loops_[0]->listen_h = *first;

  util::Result<uint16_t> bound =
      loops_[0]->backend->ListenerPort(loops_[0]->listen_h);
  if (!bound.ok()) {
    cleanup();
    return bound.status();
  }
  const uint16_t bound_port = *bound;

  if (!shared_listener_) {
    for (size_t i = 1; i < nloops; ++i) {
      // Ephemeral first bind resolved the port; siblings bind it concretely.
      util::Result<int> h = loops_[i]->backend->OpenListener(
          config_.bind_address, bound_port, /*reuse_port=*/true);
      if (!h.ok()) {
        // Mid-way refusal: close the sibling listeners and fall back.
        for (size_t j = 1; j < i; ++j) {
          loops_[j]->backend->Close(loops_[j]->listen_h);
          loops_[j]->listen_h = -1;
        }
        shared_listener_ = true;
        break;
      }
      loops_[i]->listen_h = *h;
    }
  }

  state_.store(State::kRunning);
  executors_.reserve(config_.executor_threads);
  for (size_t i = 0; i < config_.executor_threads; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    l->thread = std::thread([this, l] { EventLoop(l); });
  }
  return Endpoint{config_.bind_address, bound_port};
}

void Server::Shutdown() {
  util::MutexLock lock(&shutdown_mu_);
  if (state_.load() == State::kIdle) {
    state_.store(State::kStopped);
    return;
  }
  if (state_.load() == State::kStopped) return;

  shutdown_requested_.store(true);
  for (auto& loop : loops_) WakeLoop(loop.get());
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }

  {
    util::MutexLock job_lock(&job_mu_);
    executors_stop_ = true;
  }
  job_cv_.NotifyAll();
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();

  for (auto& loop : loops_) {
    if (loop->listen_h >= 0) {
      loop->backend->Deregister(loop->listen_h);
      loop->backend->Close(loop->listen_h);
      loop->listen_h = -1;
    }
    // Handoff handles never adopted by the exiting loop: close and un-count.
    {
      util::MutexLock hlock(&loop->handoff_mu);
      for (int h : loop->handoff) {
        loop->backend->Close(h);
        open_conns_.fetch_sub(1, std::memory_order_relaxed);
      }
      loop->handoff.clear();
    }
    // Completions that arrived after the loop exited (executors drain every
    // queued job before stopping): their buffers still go home to the arena,
    // preserving acquired() == released() no matter how shutdown raced.
    util::MutexLock done_lock(&loop->done_mu);
    for (Completion& done : loop->done) {
      loop->arena.Release(std::move(done.bytes));
    }
    loop->done.clear();
  }
  state_.store(State::kStopped);
}

void Server::WakeLoop(Loop* loop) {
  if (loop->backend) loop->backend->Wake();
}

// --------------------------------------------------------------- executors --

void Server::ExecutorLoop() {
  for (;;) {
    BatchJob job;
    {
      util::MutexLock lock(&job_mu_);
      while (!executors_stop_ && jobs_.empty()) job_cv_.Wait(&job_mu_);
      if (jobs_.empty()) return;  // executors_stop_ and nothing left.
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }

    std::vector<service::Request> batch;
    batch.reserve(job.items.size());
    for (PendingRequest& item : job.items) batch.push_back(std::move(item.request));
    const std::vector<service::ExecResult> results =
        router_->ExecuteBatch(batch);

    // Arena encode: every response frame of the batch lands in place in the
    // job's connection-owned buffer — no per-frame payload allocations. The
    // buffer rides the completion back to the loop that lent it.
    Completion done;
    done.conn_id = job.conn_id;
    done.num_requests = job.items.size();
    done.bytes = std::move(job.buf);
    for (size_t i = 0; i < results.size() && i < job.items.size(); ++i) {
      const uint64_t id = job.items[i].request_id;
      if (results[i].ok()) {
        AppendAnswerFrame(&done.bytes, id, *results[i]);
      } else {
        AppendStatusFrame(&done.bytes, id, results[i].status());
      }
    }
    Loop* loop = loops_[job.loop_index].get();
    {
      util::MutexLock lock(&loop->done_mu);
      loop->done.push_back(std::move(done));
    }
    WakeLoop(loop);
  }
}

// -------------------------------------------------------------- event loop --

void Server::EventLoop(Loop* loop) {
  bool draining = false;
  int64_t drain_start_nanos = 0;

  if (loop->listen_h >= 0) {
    loop->backend->UpdateInterest(loop->listen_h, /*want_read=*/true,
                                  /*want_write=*/false);
  }

  std::vector<ReadyEvent> events;
  for (;;) {
    // Enter drain mode once: stop accepting and stop reading new frames;
    // everything already decoded still gets executed and flushed. Each loop
    // drains independently — there is no cross-loop barrier to stall on.
    if (!draining && shutdown_requested_.load()) {
      draining = true;
      drain_start_nanos = Now();
      if (loop->listen_h >= 0) {
        loop->backend->Deregister(loop->listen_h);
        loop->backend->Close(loop->listen_h);
        loop->listen_h = -1;
      }
      for (auto& entry : loop->conns) {
        entry.second->read_closed = true;
        entry.second->close_after_flush = true;
        DispatchIfReady(loop, entry.second.get());
      }
    }

    // Adopt connections the accepting loop handed over (shared-listener
    // mode). During drain a handed-off connection has never been read —
    // close it.
    AdoptHandoffs(loop);

    // Reap connections that are finished: nothing pending, nothing in
    // flight, every response flushed.
    {
      std::vector<uint64_t> done_ids;
      for (auto& entry : loop->conns) {
        Connection* c = entry.second.get();
        if ((c->read_closed || c->close_after_flush) && c->pending.empty() &&
            c->in_flight == 0 && c->flushed()) {
          done_ids.push_back(c->id);
        }
      }
      for (uint64_t id : done_ids) CloseConnection(loop, id);
    }

    if (draining) {
      const bool timed_out =
          Now() - drain_start_nanos > config_.drain_timeout_millis * 1000000;
      if (loop->conns.empty()) break;
      if (timed_out) {
        std::vector<uint64_t> ids;
        ids.reserve(loop->conns.size());
        for (auto& entry : loop->conns) ids.push_back(entry.first);
        for (uint64_t id : ids) CloseConnection(loop, id);
        break;
      }
    }

    // Lifecycle timers: close every connection whose deadline (idle,
    // read-progress, or eviction grace) has passed on the config clock.
    // Skipped while draining — drain has its own timeout and force-close.
    const int64_t now_nanos = Now();
    if (!draining) ProcessTimers(loop, now_nanos);

    // Interest maintenance: push only *changes* to the backend (for epoll
    // that keeps the epoll_ctl traffic proportional to state transitions,
    // not to the connection count).
    for (auto& entry : loop->conns) {
      Connection* c = entry.second.get();
      const bool want_read = !c->read_closed;
      const bool want_write = !c->flushed();
      if (want_read != c->want_read || want_write != c->want_write) {
        c->want_read = want_read;
        c->want_write = want_write;
        loop->backend->UpdateInterest(c->handle, want_read, want_write);
      }
    }

    // Sleep exactly until the next timer expiry (no polling tick); 500ms is
    // only the fallback when no deadline is armed. Stale wheel entries can
    // only wake us *early* — ProcessTimers drops them and rearms.
    int timeout_ms = draining ? 20 : 500;
    if (!draining && !loop->timers.empty()) {
      const int64_t remaining = loop->timers.begin()->first - now_nanos;
      int64_t ms = remaining <= 0 ? 0 : (remaining + 999999) / 1000000;
      if (ms > 3600000) ms = 3600000;  // Bound the int conversion.
      timeout_ms = static_cast<int>(ms);
    }
    if (!loop->backend->Wait(timeout_ms, &events).ok()) break;

    // Completed batches → connection output queues (the arena buffer each
    // executor filled comes home here), flushed eagerly while the socket is
    // almost certainly writable.
    {
      std::deque<Completion> finished;
      {
        util::MutexLock lock(&loop->done_mu);
        finished.swap(loop->done);
      }
      const int64_t done_nanos = Now();
      for (Completion& done : finished) {
        auto it = loop->conns.find(done.conn_id);
        if (it == loop->conns.end()) {
          // Connection died mid-batch: the response is undeliverable, but
          // the buffer still goes home (acquired() == released()).
          loop->arena.Release(std::move(done.bytes));
          continue;
        }
        Connection* c = it->second.get();
        c->in_flight -= std::min(c->in_flight, done.num_requests);
        if (!done.bytes.empty() && !c->evicted) {
          c->outq.push_back(std::move(done.bytes));
        } else {
          // Empty batch, or an evicted peer that will never read it.
          loop->arena.Release(std::move(done.bytes));
        }
        c->last_activity_nanos = done_nanos;
        DispatchIfReady(loop, c);
        FlushWrites(loop, c);  // May close c.
        it = loop->conns.find(done.conn_id);
        if (it != loop->conns.end()) MaybeEvict(loop, it->second.get());
        it = loop->conns.find(done.conn_id);
        if (it != loop->conns.end()) {
          RescheduleTimer(loop, it->second.get(), done_nanos);
        }
      }
    }

    for (const ReadyEvent& ev : events) {
      if (loop->listen_h >= 0 && ev.handle == loop->listen_h) {
        if (ev.readable) AcceptNew(loop);
        continue;
      }
      auto hit = loop->by_handle.find(ev.handle);
      if (hit == loop->by_handle.end()) continue;
      const uint64_t id = hit->second;
      if (ev.error) {
        CloseConnection(loop, id);
        continue;
      }
      if (ev.readable || ev.hangup) {
        auto it = loop->conns.find(id);
        if (it != loop->conns.end()) HandleReadable(loop, it->second.get());
      }
      auto it = loop->conns.find(id);
      if (it != loop->conns.end() && !it->second->flushed()) {
        FlushWrites(loop, it->second.get());
      }
    }
  }
}

void Server::AdoptHandoffs(Loop* loop) {
  std::deque<int> handles;
  {
    util::MutexLock lock(&loop->handoff_mu);
    if (loop->handoff.empty()) return;
    handles.swap(loop->handoff);
  }
  service::NetActivity activity;
  for (int h : handles) {
    if (shutdown_requested_.load()) {
      // Drain began before this connection was ever read; refuse it.
      loop->backend->Close(h);
      open_conns_.fetch_sub(1, std::memory_order_relaxed);
      ++activity.connections_closed;
      continue;
    }
    RegisterConnection(loop, h);
  }
  if (!activity.empty()) stats_->RecordNet(loop->index, activity);
}

void Server::RegisterConnection(Loop* loop, int handle) {
  const uint64_t id = loop->next_conn_id++;
  auto conn =
      std::make_unique<Connection>(id, handle, config_.max_payload_bytes);
  conn->last_activity_nanos = Now();
  Connection* raw = conn.get();
  loop->conns.emplace(id, std::move(conn));
  loop->by_handle[handle] = id;
  RescheduleTimer(loop, raw, raw->last_activity_nanos);  // Arm the idle timer.
}

void Server::AcceptNew(Loop* loop) {
  service::NetActivity activity;
  for (;;) {
    const int h = loop->backend->Accept(loop->listen_h);
    if (h < 0) break;  // Nothing pending: wait for the next readiness.
    // Global connection cap: one shared atomic across all loops, so N loops
    // cannot collectively accept N× the limit. fetch_add claims a slot;
    // losing the claim means refuse at the door.
    if (open_conns_.fetch_add(1, std::memory_order_relaxed) >=
        config_.max_connections) {
      open_conns_.fetch_sub(1, std::memory_order_relaxed);
      loop->backend->Close(h);
      continue;
    }
    ++activity.connections_accepted;
    if (shared_listener_ && loops_.size() > 1) {
      // Software accept sharding: round-robin across every loop (self
      // included) through the per-loop handoff queues.
      Loop* target = loops_[handoff_next_++ % loops_.size()].get();
      if (target == loop) {
        RegisterConnection(loop, h);
      } else {
        {
          util::MutexLock lock(&target->handoff_mu);
          target->handoff.push_back(h);
        }
        WakeLoop(target);
      }
    } else {
      RegisterConnection(loop, h);
    }
  }
  if (!activity.empty()) stats_->RecordNet(loop->index, activity);
}

// The loop-side staging buffer for small frames the loop itself emits
// (pongs, protocol-error frames); committed into the output queue by
// FlushWrites so it rides the same scatter-gather path as batch responses.
static std::vector<uint8_t>* StagedOut(WireArena* arena,
                                       std::vector<uint8_t>* staged) {
  if (staged->empty()) *staged = arena->Acquire();
  return staged;
}

void Server::HandleReadable(Loop* loop, Connection* conn) {
  const uint64_t conn_id = conn->id;
  const int64_t now = Now();
  service::NetActivity activity;
  // Two scatter segments per backend Read (readv on the real backends): a
  // burst larger than one buffer still lands in a single call.
  uint8_t buf_a[65536];
  uint8_t buf_b[65536];
  for (;;) {
    iovec iov[2] = {{buf_a, sizeof(buf_a)}, {buf_b, sizeof(buf_b)}};
    const IoResult r = loop->backend->Read(conn->handle, iov, 2);
    if (r.kind == IoResult::Kind::kOk) {
      activity.bytes_in += r.bytes;
      conn->last_activity_nanos = now;
      conn->decoder.Feed(buf_a, std::min(r.bytes, sizeof(buf_a)));
      if (r.bytes > sizeof(buf_a)) {
        conn->decoder.Feed(buf_b, r.bytes - sizeof(buf_a));
      }
      // A short read means the input is drained for now.
      if (r.bytes < sizeof(buf_a) + sizeof(buf_b)) break;
      continue;
    }
    if (r.kind == IoResult::Kind::kEof) {
      conn->read_closed = true;
      break;
    }
    if (r.kind == IoResult::Kind::kWouldBlock) break;
    // Hard read error: the peer is gone; drop what cannot be delivered.
    if (!activity.empty()) stats_->RecordNet(loop->index, activity);
    CloseConnection(loop, conn->id);
    return;
  }

  Frame frame;
  size_t frames_this_call = 0;
  for (;;) {
    const FrameDecoder::Event event = conn->decoder.Next(&frame);
    if (event == FrameDecoder::Event::kFrame) {
      ++activity.frames_decoded;
      ++frames_this_call;
      HandleFrame(loop, conn, std::move(frame));
      continue;
    }
    if (event == FrameDecoder::Event::kError) {
      // Defined protocol-error state: report the typed error on request_id 0,
      // flush everything already owed, then close. Never resync on garbage.
      ++activity.protocol_errors;
      AppendStatusFrame(StagedOut(&loop->arena, &conn->loop_out), 0,
                        conn->decoder.error());
      conn->read_closed = true;
      conn->close_after_flush = true;
    }
    break;  // kNeedMore or kError.
  }

  // Read-progress tracking: the window anchors at the *start* of the
  // buffered partial frame. A frame decoded this call means any leftover
  // partial belongs to a new frame, so the anchor resets; a byte-drip that
  // completes nothing does not move it.
  const bool was_mid = conn->mid_frame;
  conn->mid_frame = !conn->read_closed && !conn->decoder.poisoned() &&
                    conn->decoder.buffered_bytes() > 0;
  if (conn->mid_frame && (!was_mid || frames_this_call > 0)) {
    conn->frame_start_nanos = now;
  }

  if (!activity.empty()) stats_->RecordNet(loop->index, activity);
  DispatchIfReady(loop, conn);
  FlushWrites(loop, conn);  // May close conn.
  auto it = loop->conns.find(conn_id);
  if (it != loop->conns.end()) MaybeEvict(loop, it->second.get());
  it = loop->conns.find(conn_id);
  if (it != loop->conns.end()) RescheduleTimer(loop, it->second.get(), now);
}

void Server::HandleFrame(Loop* loop, Connection* conn, Frame frame) {
  switch (frame.header.type) {
    case FrameType::kPing: {
      AppendFrame(StagedOut(&loop->arena, &conn->loop_out), FrameType::kPong,
                  frame.header.request_id, nullptr, 0);
      return;
    }
    case FrameType::kRequest: {
      util::Result<WireRequest> decoded =
          DecodeRequest(frame.payload.data(), frame.payload.size());
      if (!decoded.ok()) {
        // Payload-level error on an intact frame boundary: answer it and
        // keep the connection (the stream itself is still well-formed).
        service::NetActivity activity;
        ++activity.protocol_errors;
        stats_->RecordNet(loop->index, activity);
        AppendStatusFrame(StagedOut(&loop->arena, &conn->loop_out),
                          frame.header.request_id, decoded.status());
        return;
      }
      if (conn->outstanding() >= config_.max_pipeline) {
        // Server-side admission shed: bound the per-connection backlog with a
        // typed rejection, never an unbounded buffer or a closed socket.
        service::QueryOutcome outcome;
        outcome.ok = false;
        outcome.shed = true;
        stats_->Record(outcome);
        AppendStatusFrame(StagedOut(&loop->arena, &conn->loop_out),
                          frame.header.request_id,
                          util::Status::ResourceExhausted(util::Format(
                              "connection pipeline full (%zu in flight)",
                              conn->outstanding())));
        return;
      }
      PendingRequest pending;
      pending.request_id = frame.header.request_id;
      pending.request.dataset = std::move(decoded->dataset);
      pending.request.kind = decoded->kind;
      pending.request.q = std::move(decoded->q);
      if (decoded->deadline_budget_nanos > 0) {
        // Decode-time deadline mapping: the client's relative budget starts
        // ticking here, so admission rejection and the shed/degrade ladder
        // see exactly what an in-process caller would have passed.
        pending.request.deadline = util::Deadline::AfterNanos(
            static_cast<int64_t>(decoded->deadline_budget_nanos), config_.clock);
      }
      conn->pending.push_back(std::move(pending));
      return;
    }
    default: {
      service::NetActivity activity;
      ++activity.protocol_errors;
      stats_->RecordNet(loop->index, activity);
      AppendStatusFrame(
          StagedOut(&loop->arena, &conn->loop_out), frame.header.request_id,
          util::Status::InvalidArgument(util::Format(
              "wire protocol: unexpected frame type %u from client",
              static_cast<unsigned>(frame.header.type))));
      return;
    }
  }
}

void Server::DispatchIfReady(Loop* loop, Connection* conn) {
  if (conn->evicted || conn->in_flight > 0 || conn->pending.empty()) return;
  BatchJob job;
  job.loop_index = loop->index;
  job.conn_id = conn->id;
  job.items = std::move(conn->pending);
  conn->pending.clear();
  conn->in_flight = job.items.size();
  // The response buffer is lent to the executor here and comes back with
  // the completion; after the flush it returns to this loop's arena.
  job.buf = loop->arena.Acquire();
  {
    util::MutexLock lock(&job_mu_);
    jobs_.push_back(std::move(job));
  }
  job_cv_.NotifyOne();
}

void Server::FlushWrites(Loop* loop, Connection* conn) {
  // Commit the loop's staged frames so they flush in arrival order with the
  // batch responses.
  if (!conn->loop_out.empty()) {
    conn->outq.push_back(std::move(conn->loop_out));
    conn->loop_out.clear();
  }

  service::NetActivity activity;
  while (!conn->outq.empty()) {
    // Scatter-gather: one backend Write drains up to kMaxIov queued chunks —
    // a whole pipelined batch of response frames — instead of one write per
    // frame (sendmsg(MSG_NOSIGNAL) on the real backends).
    iovec iov[kMaxIov];
    size_t niov = 0;
    size_t skip = conn->out_pos;
    for (auto& chunk : conn->outq) {
      if (niov == kMaxIov) break;
      iov[niov].iov_base = chunk.data() + skip;
      iov[niov].iov_len = chunk.size() - skip;
      ++niov;
      skip = 0;
    }
    const IoResult r =
        loop->backend->Write(conn->handle, iov, static_cast<int>(niov));
    if (r.kind == IoResult::Kind::kOk) {
      activity.bytes_out += r.bytes;
      size_t left = r.bytes;
      while (left > 0) {
        std::vector<uint8_t>& front = conn->outq.front();
        const size_t avail = front.size() - conn->out_pos;
        if (left >= avail) {
          left -= avail;
          conn->out_pos = 0;
          loop->arena.Release(std::move(front));
          conn->outq.pop_front();
        } else {
          conn->out_pos += left;
          left = 0;
        }
      }
      continue;
    }
    if (r.kind == IoResult::Kind::kWouldBlock) break;
    // Write error (or a nonsensical EOF): the peer is unreachable.
    if (!activity.empty()) stats_->RecordNet(loop->index, activity);
    CloseConnection(loop, conn->id);
    return;
  }
  if (!activity.empty()) {
    stats_->RecordNet(loop->index, activity);
    conn->last_activity_nanos = Now();
  }
  UpdatePendingAccounting(loop, conn);
}

void Server::CloseConnection(Loop* loop, uint64_t id) {
  auto it = loop->conns.find(id);
  if (it == loop->conns.end()) return;
  Connection* c = it->second.get();
  loop->backend->Deregister(c->handle);
  loop->backend->Close(c->handle);
  loop->by_handle.erase(c->handle);
  // Unflushed chunks — the committed queue *and* the uncommitted staging
  // buffer — go home to the arena, not to the allocator.
  for (std::vector<uint8_t>& chunk : c->outq) {
    loop->arena.Release(std::move(chunk));
  }
  if (!c->loop_out.empty()) {
    loop->arena.Release(std::move(c->loop_out));
  }
  loop->pending_out_total -= c->pending_out;
  loop->conns.erase(it);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  service::NetActivity activity;
  ++activity.connections_closed;
  stats_->RecordNet(loop->index, activity);
}

// --------------------------------------------- lifecycle timers & eviction --

int64_t Server::Now() const {
  return (config_.clock != nullptr ? *config_.clock
                                   : util::SystemClock::Default())
      .NowNanos();
}

int64_t Server::NextDeadline(const Connection& c, int64_t now) const {
  if (c.evicted) {
    // Goodbye grace: a reader slow enough to be evicted may never take the
    // going-away frame; bound how long we hold the slot open for it.
    const int64_t grace_millis = config_.read_progress_timeout_millis > 0
                                     ? config_.read_progress_timeout_millis
                                     : config_.idle_timeout_millis;
    return grace_millis > 0 ? c.evicted_nanos + grace_millis * 1000000 : -1;
  }
  if (c.read_closed || c.close_after_flush) {
    // Finishing: the reap loop closes it once flushed. The idle window still
    // bounds a peer that never drains its last responses.
    return config_.idle_timeout_millis > 0
               ? c.last_activity_nanos + config_.idle_timeout_millis * 1000000
               : -1;
  }
  if (c.mid_frame && config_.read_progress_timeout_millis > 0) {
    return c.frame_start_nanos + config_.read_progress_timeout_millis * 1000000;
  }
  if (config_.idle_timeout_millis > 0) {
    const int64_t idle = config_.idle_timeout_millis * 1000000;
    // Busy connections are not idle; re-examine one window from now.
    if (c.outstanding() > 0 || !c.flushed()) return now + idle;
    return c.last_activity_nanos + idle;
  }
  return -1;
}

void Server::ArmTimer(Loop* loop, Connection* conn, int64_t deadline) {
  conn->armed_deadline = deadline;
  loop->timers.emplace(deadline, TimerEntry{conn->id, ++conn->timer_gen});
}

void Server::RescheduleTimer(Loop* loop, Connection* conn, int64_t now) {
  const int64_t desired = NextDeadline(*conn, now);
  if (desired < 0) return;  // A stale armed entry no-ops at pop time.
  if (conn->armed_deadline < 0 || desired < conn->armed_deadline) {
    ArmTimer(loop, conn, desired);
  }
}

void Server::ProcessTimers(Loop* loop, int64_t now) {
  service::NetActivity activity;
  while (!loop->timers.empty() && loop->timers.begin()->first <= now) {
    const TimerEntry entry = loop->timers.begin()->second;
    loop->timers.erase(loop->timers.begin());
    auto it = loop->conns.find(entry.conn_id);
    if (it == loop->conns.end()) continue;    // Connection already gone.
    Connection* c = it->second.get();
    if (entry.gen != c->timer_gen) continue;  // Rearmed since; stale.
    c->armed_deadline = -1;
    const int64_t desired = NextDeadline(*c, now);
    if (desired < 0) continue;
    if (desired > now) {
      // The connection made progress since arming; push the deadline out.
      ArmTimer(loop, c, desired);
      continue;
    }
    // A real expiry: count the specific limit that fired, then close.
    if (c->evicted) {
      // Already counted backpressure_closed at eviction; the grace ran out.
    } else if (c->mid_frame && config_.read_progress_timeout_millis > 0) {
      ++activity.read_timeout_closed;
    } else {
      ++activity.idle_closed;
    }
    CloseConnection(loop, c->id);
  }
  if (!activity.empty()) stats_->RecordNet(loop->index, activity);
}

size_t Server::PendingBytes(const Connection& c) {
  size_t total = c.loop_out.size();
  for (const std::vector<uint8_t>& chunk : c.outq) total += chunk.size();
  return total - c.out_pos;
}

void Server::UpdatePendingAccounting(Loop* loop, Connection* conn) {
  const size_t fresh = PendingBytes(*conn);
  loop->pending_out_total += fresh;
  loop->pending_out_total -= conn->pending_out;
  conn->pending_out = fresh;
}

void Server::MaybeEvict(Loop* loop, Connection* conn) {
  const size_t conn_cap = config_.max_conn_pending_write_bytes;
  if (conn_cap > 0 && !conn->evicted && conn->pending_out > conn_cap) {
    Evict(loop, conn);  // May close conn; do not touch it again below.
  }
  const size_t loop_cap = config_.max_loop_pending_write_bytes;
  if (loop_cap == 0) return;
  // Aggregate cap: shed the heaviest writers until the loop fits again.
  // Already-evicted connections hold only their goodbye frame and are never
  // picked twice.
  while (loop->pending_out_total > loop_cap) {
    Connection* worst = nullptr;
    for (auto& entry : loop->conns) {
      Connection* c = entry.second.get();
      if (c->evicted) continue;
      if (worst == nullptr || c->pending_out > worst->pending_out) worst = c;
    }
    if (worst == nullptr || worst->pending_out == 0) break;
    Evict(loop, worst);
  }
}

void Server::Evict(Loop* loop, Connection* conn) {
  service::NetActivity activity;
  ++activity.backpressure_closed;
  stats_->RecordNet(loop->index, activity);

  // The queued responses are undeliverable — this peer is not reading. They
  // go home to the arena *now*, so eviction caps memory immediately instead
  // of when the socket finally dies.
  for (std::vector<uint8_t>& chunk : conn->outq) {
    loop->arena.Release(std::move(chunk));
  }
  conn->outq.clear();
  conn->out_pos = 0;
  if (!conn->loop_out.empty()) {
    loop->arena.Release(std::move(conn->loop_out));
    conn->loop_out.clear();
  }
  conn->pending.clear();  // Undispatched requests die with the connection.

  // One typed goodbye so a recovering peer learns *why* (and that a retry
  // elsewhere is safe), then close as soon as it flushes — or when the
  // grace timer fires, for a reader that never resumes.
  AppendStatusFrame(
      StagedOut(&loop->arena, &conn->loop_out), 0,
      util::Status::Unavailable(
          "write backpressure: pending responses exceeded the server cap"));
  conn->evicted = true;
  conn->evicted_nanos = Now();
  conn->read_closed = true;
  conn->close_after_flush = true;
  UpdatePendingAccounting(loop, conn);

  const uint64_t id = conn->id;
  const int64_t evicted_nanos = conn->evicted_nanos;
  FlushWrites(loop, conn);  // Best effort; may close the connection.
  auto it = loop->conns.find(id);
  if (it != loop->conns.end()) {
    RescheduleTimer(loop, it->second.get(), evicted_nanos);
  }
}

}  // namespace net
}  // namespace qreg
