// poll(2) backend plus the socket plumbing shared with the epoll backend
// (listener setup, accept, readv/sendmsg I/O, self-pipe wakeup).

#include "net/backend.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "net/backend_socket.h"
#include "util/string_util.h"

namespace qreg {
namespace net {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPoll: return "poll";
    case BackendKind::kEpoll: return "epoll";
    case BackendKind::kSim: return "sim";
  }
  return "?";
}

bool ParseBackendKind(const std::string& name, BackendKind* kind) {
  if (name == "poll") { *kind = BackendKind::kPoll; return true; }
  if (name == "epoll") { *kind = BackendKind::kEpoll; return true; }
  if (name == "sim") { *kind = BackendKind::kSim; return true; }
  return false;
}

// ---------------------------------------------------- shared socket helpers --

util::Status SyscallIoError(const std::string& what) {
  return util::Status::IoError(
      util::Format("%s: %s", what.c_str(), strerror(errno)));
}

bool SyscallInterrupted() { return errno == EINTR; }

util::Result<int> SocketOpenListener(const std::string& address, uint16_t port,
                                     bool reuse_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("bad bind address: " + address);
  }

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return util::Status::IoError(util::Format("socket(): %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      const util::Status st = util::Status::NotImplemented(
          util::Format("SO_REUSEPORT: %s", strerror(errno)));
      ::close(fd);
      return st;
    }
#else
    ::close(fd);
    return util::Status::NotImplemented("SO_REUSEPORT not available");
#endif
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    const util::Status st = util::Status::IoError(
        util::Format("bind/listen port %u: %s", port, strerror(errno)));
    ::close(fd);
    return st;
  }
  return fd;
}

util::Result<uint16_t> SocketListenerPort(int listener) {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return util::Status::IoError(
        util::Format("getsockname(): %s", strerror(errno)));
  }
  return ntohs(bound.sin_port);
}

int SocketAccept(int listener) {
  for (;;) {
    const int fd =
        ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;  // EAGAIN or transient accept failure: poll again.
  }
}

IoResult SocketRead(int fd, const iovec* iov, int iovcnt) {
  for (;;) {
    const ssize_t n = ::readv(fd, iov, iovcnt);
    if (n > 0) return IoResult::Ok(static_cast<size_t>(n));
    if (n == 0) return IoResult::Eof();
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::WouldBlock();
    return IoResult::Error(errno);
  }
}

IoResult SocketWrite(int fd, const iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  for (;;) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n >= 0) return IoResult::Ok(static_cast<size_t>(n));
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::WouldBlock();
    return IoResult::Error(errno);
  }
}

util::Result<bool> SocketWaitReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return true;
    if (n == 0) return false;
    // EINTR restarts with the full window again — acceptable slop for a
    // progress timeout.
    if (SyscallInterrupted()) continue;
    return SyscallIoError("poll()");
  }
}

util::Status WakePipe::Open() {
  if (::pipe2(fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    return util::Status::IoError(util::Format("pipe2(): %s", strerror(errno)));
  }
  return util::Status::OK();
}

WakePipe::~WakePipe() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void WakePipe::Wake() {
  if (fds_[1] < 0) return;
  const uint8_t byte = 1;
  // EAGAIN means the pipe already holds a pending wakeup — good enough.
  (void)!::write(fds_[1], &byte, 1);
}

void WakePipe::Drain() {
  uint8_t buf[256];
  while (::read(fds_[0], buf, sizeof(buf)) > 0) {
  }
}

// ------------------------------------------------------------ poll backend --

namespace {

// The interest set lives in a map the backend rebuilds into a pollfd array
// on every Wait — the O(n)-per-wakeup cost that is poll's signature (and
// the reason the epoll backend exists).
class PollBackend final : public EventBackend {
 public:
  BackendKind kind() const override { return BackendKind::kPoll; }

  util::Status Init() override { return wake_.Open(); }

  util::Result<int> OpenListener(const std::string& address, uint16_t port,
                                 bool reuse_port) override {
    return SocketOpenListener(address, port, reuse_port);
  }

  util::Result<uint16_t> ListenerPort(int listener) override {
    return SocketListenerPort(listener);
  }

  int Accept(int listener) override { return SocketAccept(listener); }

  void UpdateInterest(int handle, bool want_read, bool want_write) override {
    interests_[handle] = {want_read, want_write};
  }

  void Deregister(int handle) override { interests_.erase(handle); }

  util::Status Wait(int timeout_ms, std::vector<ReadyEvent>* events) override {
    events->clear();
    pfds_.clear();
    pfds_.push_back({wake_.read_fd(), POLLIN, 0});
    for (const auto& entry : interests_) {
      short want = 0;
      if (entry.second.read) want |= POLLIN;
      if (entry.second.write) want |= POLLOUT;
      if (want == 0) continue;  // Parked: no events, matching the contract.
      pfds_.push_back({entry.first, want, 0});
    }
    const int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    if (n < 0 && errno != EINTR) {
      return util::Status::IoError(util::Format("poll(): %s", strerror(errno)));
    }
    if (n <= 0) return util::Status::OK();
    if (pfds_[0].revents & POLLIN) wake_.Drain();
    for (size_t i = 1; i < pfds_.size(); ++i) {
      const short got = pfds_[i].revents;
      if (got == 0) continue;
      ReadyEvent ev;
      ev.handle = pfds_[i].fd;
      ev.readable = (got & POLLIN) != 0;
      ev.writable = (got & POLLOUT) != 0;
      ev.error = (got & (POLLERR | POLLNVAL)) != 0;
      ev.hangup = (got & POLLHUP) != 0;
      events->push_back(ev);
    }
    return util::Status::OK();
  }

  void Wake() override { wake_.Wake(); }

  IoResult Read(int handle, const iovec* iov, int iovcnt) override {
    return SocketRead(handle, iov, iovcnt);
  }

  IoResult Write(int handle, const iovec* iov, int iovcnt) override {
    return SocketWrite(handle, iov, iovcnt);
  }

  void Close(int handle) override { ::close(handle); }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  WakePipe wake_;
  std::unordered_map<int, Interest> interests_;
  std::vector<pollfd> pfds_;  // Scratch, rebuilt every Wait.
};

}  // namespace

std::unique_ptr<EventBackend> CreatePollBackend() {
  return std::make_unique<PollBackend>();
}

}  // namespace net
}  // namespace qreg
