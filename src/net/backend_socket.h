// Socket plumbing shared by the poll and epoll backends: listener setup,
// accept, readv/sendmsg I/O, and the self-pipe wakeup channel. Internal to
// src/net/ — server code talks to EventBackend, never to these directly.

#ifndef QREG_NET_BACKEND_SOCKET_H_
#define QREG_NET_BACKEND_SOCKET_H_

#include <sys/uio.h>

#include <cstdint>
#include <string>

#include "net/backend.h"
#include "util/status.h"

namespace qreg {
namespace net {

/// Formats "<what>: <strerror(errno)>" as a typed IoError. Call immediately
/// after the failing syscall, before anything (even ::close) can clobber
/// errno. Lives here so `errno` itself stays confined to the backend files —
/// tools/lint_invariants.py rejects it anywhere else in src/.
util::Status SyscallIoError(const std::string& what);

/// True when the last syscall failed with EINTR (restart the call).
bool SyscallInterrupted();

/// Opens a non-blocking CLOEXEC listener; kNotImplemented when `reuse_port`
/// is asked for but refused (the Start() fallback trigger).
util::Result<int> SocketOpenListener(const std::string& address, uint16_t port,
                                     bool reuse_port);

util::Result<uint16_t> SocketListenerPort(int listener);

/// accept4 + TCP_NODELAY; -1 when nothing is pending.
int SocketAccept(int listener);

IoResult SocketRead(int fd, const iovec* iov, int iovcnt);
IoResult SocketWrite(int fd, const iovec* iov, int iovcnt);

/// Blocks until `fd` is readable (true), the timeout expires (false), or the
/// wait itself fails (typed IoError). `timeout_ms < 0` waits forever. Lives
/// here because poll(2) is confined to the backend files by the invariant
/// linter — this is the client's receive-timeout primitive.
util::Result<bool> SocketWaitReadable(int fd, int timeout_ms);

/// \brief Self-pipe wakeup: Wake() from any thread makes the read end
/// readable, interrupting a demultiplexer wait that watches it.
class WakePipe {
 public:
  WakePipe() = default;
  ~WakePipe();

  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  util::Status Open();
  int read_fd() const { return fds_[0]; }

  void Wake();   // Thread-safe.
  void Drain();  // Owning loop only: consume pending wakeup bytes.

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace net
}  // namespace qreg

#endif  // QREG_NET_BACKEND_SOCKET_H_
