#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

#include "net/backend_socket.h"
#include "util/string_util.h"

namespace qreg {
namespace net {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

util::Status Client::Connect(const std::string& host, uint16_t port) {
  if (connected()) return util::Status::FailedPrecondition("already connected");

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* addrs = nullptr;
  const std::string service = util::Format("%u", port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &addrs);
  if (rc != 0) {
    return util::Status::IoError(
        util::Format("resolve %s: %s", host.c_str(), gai_strerror(rc)));
  }

  util::Status last = util::Status::IoError("no address resolved");
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) {
      last = SyscallIoError("socket()");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      ::freeaddrinfo(addrs);
      return util::Status::OK();
    }
    // Built before ::close(), which may clobber errno.
    last = SyscallIoError(util::Format("connect %s:%u", host.c_str(), port));
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  return last;
}

util::Status Client::WriteAll(const uint8_t* data, size_t n) {
  if (!connected()) return util::Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && SyscallInterrupted()) continue;
    return SyscallIoError("send()");
  }
  return util::Status::OK();
}

util::Status Client::ReadFrame(Frame* frame) {
  if (!connected()) return util::Status::FailedPrecondition("not connected");
  uint8_t buf[65536];
  for (;;) {
    switch (decoder_.Next(frame)) {
      case FrameDecoder::Event::kFrame:
        return util::Status::OK();
      case FrameDecoder::Event::kError:
        return decoder_.error();
      case FrameDecoder::Event::kNeedMore:
        break;
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return util::Status::IoError("connection closed by server");
    }
    if (SyscallInterrupted()) continue;
    return SyscallIoError("read()");
  }
}

util::Status Client::SendRequest(const WireRequest& request,
                                 uint64_t request_id) {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kRequest, request_id, EncodeRequest(request));
  return WriteAll(out.data(), out.size());
}

util::Result<service::Answer> Client::ReadResponse(uint64_t* request_id) {
  for (;;) {
    Frame frame;
    QREG_RETURN_NOT_OK(ReadFrame(&frame));
    if (request_id != nullptr) *request_id = frame.header.request_id;
    switch (frame.header.type) {
      case FrameType::kAnswer:
        return DecodeAnswer(frame.payload.data(), frame.payload.size());
      case FrameType::kError: {
        util::Status transported;
        QREG_RETURN_NOT_OK(DecodeStatus(frame.payload.data(),
                                        frame.payload.size(), &transported));
        if (transported.ok()) {
          return util::Status::Internal("server sent an OK error frame");
        }
        return transported;
      }
      case FrameType::kPong:
        continue;  // A stale Ping answer interleaved with responses.
      default:
        return util::Status::InvalidArgument(util::Format(
            "wire protocol: unexpected frame type %u from server",
            static_cast<unsigned>(frame.header.type)));
    }
  }
}

util::Result<service::Answer> Client::Execute(const WireRequest& request) {
  std::vector<util::Result<service::Answer>> results = ExecuteBatch({request});
  return std::move(results.front());
}

std::vector<util::Result<service::Answer>> Client::ExecuteBatch(
    const std::vector<WireRequest>& batch) {
  std::vector<util::Result<service::Answer>> results(
      batch.size(), util::Status::IoError("no response received"));
  if (batch.empty()) return results;

  // Pipelining: every frame goes out before the first response is read; the
  // server coalesces what it finds in flight into ExecuteBatch calls.
  std::vector<uint8_t> out;
  const uint64_t first_id = next_id_;
  for (const WireRequest& request : batch) {
    AppendFrame(&out, FrameType::kRequest, next_id_++, EncodeRequest(request));
  }
  const util::Status sent = WriteAll(out.data(), out.size());
  if (!sent.ok()) {
    for (auto& slot : results) slot = sent;
    return results;
  }

  size_t received = 0;
  while (received < batch.size()) {
    uint64_t id = 0;
    util::Result<service::Answer> response = ReadResponse(&id);
    const bool fatal =
        !response.ok() &&
        (response.status().code() == util::StatusCode::kIoError ||
         decoder_.poisoned() || id == 0);
    if (fatal) {
      // Transport death or an unparseable stream: poison every still-empty
      // slot and stop reading.
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok() &&
            results[i].status().code() == util::StatusCode::kIoError) {
          results[i] = response.status();
        }
      }
      break;
    }
    if (id < first_id || id >= first_id + batch.size()) continue;  // Not ours.
    results[id - first_id] = std::move(response);
    ++received;
  }
  return results;
}

util::Status Client::Ping() {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kPing, next_id_++, nullptr, 0);
  QREG_RETURN_NOT_OK(WriteAll(out.data(), out.size()));
  Frame frame;
  do {
    QREG_RETURN_NOT_OK(ReadFrame(&frame));
  } while (frame.header.type != FrameType::kPong);
  return util::Status::OK();
}

// ------------------------------------------------------------- client pool --

ClientPool::~ClientPool() { Close(); }

void ClientPool::Close() { clients_.clear(); }

util::Status ClientPool::Connect(const std::string& host, uint16_t port,
                                 size_t connections) {
  if (connections == 0) {
    return util::Status::InvalidArgument("ClientPool needs >= 1 connection");
  }
  if (connected()) return util::Status::FailedPrecondition("already connected");
  clients_.reserve(connections);
  for (size_t i = 0; i < connections; ++i) {
    auto client = std::make_unique<Client>();
    const util::Status st = client->Connect(host, port);
    if (!st.ok()) {
      Close();  // All-or-nothing.
      return st;
    }
    clients_.push_back(std::move(client));
  }
  return util::Status::OK();
}

std::vector<util::Result<service::Answer>> ClientPool::ExecuteBatch(
    const std::vector<WireRequest>& batch) {
  std::vector<util::Result<service::Answer>> results(
      batch.size(), util::Status::IoError("no response received"));
  if (batch.empty()) return results;
  if (!connected()) {
    for (auto& slot : results) {
      slot = util::Status::FailedPrecondition("not connected");
    }
    return results;
  }

  // Stripe round-robin: request i rides connection i % size(). Each stripe
  // pipelines independently on its own thread, so a multi-loop server sees
  // concurrent traffic on every connection it sharded across its loops.
  const size_t fan = std::min(clients_.size(), batch.size());
  std::vector<std::vector<WireRequest>> stripes(fan);
  for (size_t i = 0; i < batch.size(); ++i) {
    stripes[i % fan].push_back(batch[i]);
  }
  std::vector<std::vector<util::Result<service::Answer>>> stripe_results(fan);
  std::vector<std::thread> threads;
  threads.reserve(fan);
  for (size_t c = 0; c < fan; ++c) {
    threads.emplace_back([this, c, &stripes, &stripe_results] {
      stripe_results[c] = clients_[c]->ExecuteBatch(stripes[c]);
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t i = 0; i < batch.size(); ++i) {
    const size_t c = i % fan;
    const size_t slot = i / fan;
    if (slot < stripe_results[c].size()) {
      results[i] = std::move(stripe_results[c][slot]);
    }
  }
  return results;
}

}  // namespace net
}  // namespace qreg
