#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/backend_socket.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace qreg {
namespace net {

namespace {

// SplitMix64: a tiny, well-mixed hash — plenty for backoff jitter.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int64_t RetryPolicy::BackoffNanos(int retry) const {
  if (retry < 1) retry = 1;
  int64_t backoff = std::max<int64_t>(base_backoff_nanos, 0);
  const int64_t cap = std::max<int64_t>(max_backoff_nanos, backoff);
  for (int k = 1; k < retry && backoff < cap; ++k) backoff *= 2;
  backoff = std::min(backoff, cap);
  // Jitter in [backoff/2, backoff]: deterministic in (seed, retry), so a
  // fixed seed yields one exact, assertable schedule.
  const int64_t half = backoff / 2;
  if (half > 0) {
    const uint64_t h = Mix64(jitter_seed ^ (static_cast<uint64_t>(retry) *
                                            0x9e3779b97f4a7c15ull));
    backoff = (backoff - half) +
              static_cast<int64_t>(h % static_cast<uint64_t>(half + 1));
  }
  return backoff;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

util::Status Client::Connect(const std::string& host, uint16_t port) {
  if (connected()) return util::Status::FailedPrecondition("already connected");
  // Remembered even when the dial fails, so Reconnect() can keep trying an
  // endpoint that is merely down right now.
  host_ = host;
  port_ = port;
  endpoint_set_ = true;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* addrs = nullptr;
  const std::string service = util::Format("%u", port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &addrs);
  if (rc != 0) {
    return util::Status::IoError(
        util::Format("resolve %s: %s", host.c_str(), gai_strerror(rc)));
  }

  util::Status last = util::Status::IoError("no address resolved");
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) {
      last = SyscallIoError("socket()");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      ::freeaddrinfo(addrs);
      return util::Status::OK();
    }
    // Built before ::close(), which may clobber errno.
    last = SyscallIoError(util::Format("connect %s:%u", host.c_str(), port));
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  return last;
}

util::Status Client::Reconnect() {
  if (!endpoint_set_) {
    return util::Status::FailedPrecondition(
        "Reconnect() before any Connect(): no endpoint to redial");
  }
  Close();
  return Connect(host_, port_);
}

util::Status Client::WriteAll(const uint8_t* data, size_t n) {
  if (!connected()) return util::Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && SyscallInterrupted()) continue;
    return SyscallIoError("send()");
  }
  return util::Status::OK();
}

util::Status Client::ReadFrame(Frame* frame) {
  if (!connected()) return util::Status::FailedPrecondition("not connected");
  uint8_t buf[65536];
  for (;;) {
    switch (decoder_.Next(frame)) {
      case FrameDecoder::Event::kFrame:
        return util::Status::OK();
      case FrameDecoder::Event::kError:
        return decoder_.error();
      case FrameDecoder::Event::kNeedMore:
        break;
    }
    if (recv_timeout_millis_ > 0) {
      // Poll-with-timeout receive: a stalled server (accepted but never
      // answering) used to park this read forever. The timeout bounds each
      // silent gap; any arriving chunk re-arms it.
      util::Result<bool> readable =
          SocketWaitReadable(fd_, recv_timeout_millis_);
      if (!readable.ok()) return readable.status();
      if (!readable.value()) {
        return util::Status::DeadlineExceeded(
            util::Format("no response bytes from server within %d ms",
                         recv_timeout_millis_));
      }
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return util::Status::IoError("connection closed by server");
    }
    if (SyscallInterrupted()) continue;
    return SyscallIoError("read()");
  }
}

util::Status Client::SendRequest(const WireRequest& request,
                                 uint64_t request_id) {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kRequest, request_id, EncodeRequest(request));
  return WriteAll(out.data(), out.size());
}

util::Result<service::Answer> Client::ReadResponse(uint64_t* request_id) {
  for (;;) {
    Frame frame;
    QREG_RETURN_NOT_OK(ReadFrame(&frame));
    if (request_id != nullptr) *request_id = frame.header.request_id;
    switch (frame.header.type) {
      case FrameType::kAnswer:
        return DecodeAnswer(frame.payload.data(), frame.payload.size());
      case FrameType::kError: {
        util::Status transported;
        QREG_RETURN_NOT_OK(DecodeStatus(frame.payload.data(),
                                        frame.payload.size(), &transported));
        if (transported.ok()) {
          return util::Status::Internal("server sent an OK error frame");
        }
        return transported;
      }
      case FrameType::kPong:
        continue;  // A stale Ping answer interleaved with responses.
      default:
        return util::Status::InvalidArgument(util::Format(
            "wire protocol: unexpected frame type %u from server",
            static_cast<unsigned>(frame.header.type)));
    }
  }
}

util::Result<service::Answer> Client::Execute(const WireRequest& request) {
  std::vector<util::Result<service::Answer>> results = ExecuteBatch({request});
  return std::move(results.front());
}

std::vector<util::Result<service::Answer>> Client::ExecuteBatch(
    const std::vector<WireRequest>& batch) {
  std::vector<util::Result<service::Answer>> results(
      batch.size(), util::Status::IoError("no response received"));
  if (batch.empty()) return results;

  // Pipelining: every frame goes out before the first response is read; the
  // server coalesces what it finds in flight into ExecuteBatch calls.
  std::vector<uint8_t> out;
  const uint64_t first_id = next_id_;
  for (const WireRequest& request : batch) {
    AppendFrame(&out, FrameType::kRequest, next_id_++, EncodeRequest(request));
  }
  const util::Status sent = WriteAll(out.data(), out.size());
  if (!sent.ok()) {
    for (auto& slot : results) slot = sent;
    Close();  // The stream is dead; make connected() say so.
    return results;
  }

  size_t received = 0;
  while (received < batch.size()) {
    uint64_t id = 0;
    util::Result<service::Answer> response = ReadResponse(&id);
    const bool fatal =
        !response.ok() &&
        (response.status().code() == util::StatusCode::kIoError ||
         decoder_.poisoned() || id == 0);
    if (fatal) {
      // Transport death, receive timeout, or an unparseable stream: poison
      // every still-empty slot, close the now-desynced connection, and stop.
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok() &&
            results[i].status().code() == util::StatusCode::kIoError) {
          results[i] = response.status();
        }
      }
      Close();
      break;
    }
    if (id < first_id || id >= first_id + batch.size()) continue;  // Not ours.
    results[id - first_id] = std::move(response);
    ++received;
  }
  return results;
}

util::Status Client::Ping() {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kPing, next_id_++, nullptr, 0);
  QREG_RETURN_NOT_OK(WriteAll(out.data(), out.size()));
  Frame frame;
  do {
    QREG_RETURN_NOT_OK(ReadFrame(&frame));
  } while (frame.header.type != FrameType::kPong);
  return util::Status::OK();
}

// ------------------------------------------------------------- client pool --

ClientPool::~ClientPool() { Close(); }

void ClientPool::Close() {
  clients_.clear();
  stripes_.clear();
}

util::Status ClientPool::Connect(const std::string& host, uint16_t port,
                                 size_t connections) {
  if (connections == 0) {
    return util::Status::InvalidArgument("ClientPool needs >= 1 connection");
  }
  if (connected()) return util::Status::FailedPrecondition("already connected");
  clients_.reserve(connections);
  for (size_t i = 0; i < connections; ++i) {
    auto client = std::make_unique<Client>();
    client->set_recv_timeout_millis(recv_timeout_millis_);
    const util::Status st = client->Connect(host, port);
    if (!st.ok()) {
      Close();  // All-or-nothing.
      return st;
    }
    clients_.push_back(std::move(client));
  }
  stripes_.assign(clients_.size(), StripeState());
  return util::Status::OK();
}

void ClientPool::set_recv_timeout_millis(int millis) {
  recv_timeout_millis_ = millis;
  for (auto& client : clients_) client->set_recv_timeout_millis(millis);
}

bool ClientPool::EnsureLive(size_t i) {
  Client* client = clients_[i].get();
  if (client->connected()) return true;
  StripeState& stripe = stripes_[i];
  const int64_t now = util::NowNanos();
  if (stripe.next_redial_nanos != 0 && now < stripe.next_redial_nanos) {
    return false;  // Still inside this stripe's redial backoff window.
  }
  if (client->Reconnect().ok()) {
    stripe = StripeState();
    return true;
  }
  ++stripe.consecutive_failures;
  stripe.next_redial_nanos =
      now + policy_.BackoffNanos(stripe.consecutive_failures);
  return false;
}

std::vector<util::Result<service::Answer>> ClientPool::ExecuteBatch(
    const std::vector<WireRequest>& batch) {
  std::vector<util::Result<service::Answer>> results(
      batch.size(), util::Status::IoError("no response received"));
  if (batch.empty()) return results;
  if (!connected()) {
    for (auto& slot : results) {
      slot = util::Status::FailedPrecondition("not connected");
    }
    return results;
  }

  // Pass 1 carries the whole batch; each later pass backs off, then carries
  // only the slots whose failure is worth re-issuing: IsRetryable() status,
  // no deadline budget (a retry would silently grant a fresh one), and
  // retry_budget not yet exhausted.
  std::vector<size_t> todo(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) todo[i] = i;
  int budget = policy_.retry_budget;
  const int max_attempts = std::max(1, policy_.max_attempts);

  for (int attempt = 1; attempt <= max_attempts && !todo.empty(); ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(policy_.BackoffNanos(attempt - 1)));
    }

    // Route around dead stripes: only live (possibly just-redialed)
    // connections carry this pass. All dead → back off and try the redials
    // again next pass.
    std::vector<size_t> live;
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (EnsureLive(i)) live.push_back(i);
    }
    if (live.empty()) continue;

    // Stripe round-robin over the live connections: pending request j rides
    // live[j % fan]. Each stripe pipelines independently on its own thread,
    // so a multi-loop server sees concurrent traffic on every connection it
    // sharded across its loops.
    const size_t fan = std::min(live.size(), todo.size());
    std::vector<std::vector<WireRequest>> stripes(fan);
    for (size_t j = 0; j < todo.size(); ++j) {
      stripes[j % fan].push_back(batch[todo[j]]);
    }
    std::vector<std::vector<util::Result<service::Answer>>> stripe_results(
        fan);
    std::vector<std::thread> threads;
    threads.reserve(fan);
    for (size_t s = 0; s < fan; ++s) {
      threads.emplace_back([this, s, &live, &stripes, &stripe_results] {
        stripe_results[s] = clients_[live[s]]->ExecuteBatch(stripes[s]);
      });
    }
    for (std::thread& t : threads) t.join();

    for (size_t j = 0; j < todo.size(); ++j) {
      const size_t s = j % fan;
      const size_t slot = j / fan;
      if (slot < stripe_results[s].size()) {
        results[todo[j]] = std::move(stripe_results[s][slot]);
      }
    }

    std::vector<size_t> next_todo;
    for (size_t idx : todo) {
      if (results[idx].ok()) continue;
      if (!util::IsRetryable(results[idx].status().code())) continue;
      if (batch[idx].deadline_budget_nanos > 0) continue;  // Never retried.
      if (budget <= 0) continue;
      --budget;
      next_todo.push_back(idx);
    }
    todo = std::move(next_todo);
  }
  return results;
}

}  // namespace net
}  // namespace qreg
