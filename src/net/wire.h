// Wire protocol v1 for the network front-end (DESIGN.md §12).
//
// Every message on the socket is one length-prefixed *frame*:
//
//   ┌────────┬─────────┬──────┬────────────┬─────────────┬──────────┐
//   │ magic  │ version │ type │ request_id │ payload_len │ checksum │ payload…
//   │ u32    │ u16     │ u16  │ u64        │ u32         │ u32      │
//   └────────┴─────────┴──────┴────────────┴─────────────┴──────────┘
//     24-byte little-endian header; checksum = FNV-1a over the first 20
//     header bytes plus the payload.
//
// Payloads are sequences of explicitly-tagged fields
// ([u16 tag][u32 len][len bytes], recursively for nested messages) — never a
// raw struct memcpy — so decoders skip unknown tags and a v1 reader stays
// compatible with payloads that grow new fields. Doubles travel as their
// IEEE-754 bit patterns: a decoded Answer is bit-for-bit the encoded one.
//
// Malformed input (bad magic, unsupported version, oversized length, bad
// checksum, truncated or overrunning fields) yields a *typed* protocol error
// — a util::Status a server can echo back as a kError frame — and pins the
// FrameDecoder in a poisoned state; it never crashes, hangs, or resyncs on
// garbage.

#ifndef QREG_NET_WIRE_H_
#define QREG_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"
#include "service/query_router.h"
#include "util/status.h"

namespace qreg {
namespace net {

// ------------------------------------------------------------------ frames --

/// First four header bytes: "QREG" read as a little-endian u32.
constexpr uint32_t kMagic = 0x47455251u;

/// Current protocol version; a decoder rejects anything newer or older.
constexpr uint16_t kWireVersion = 1;

/// Frame header size on the wire.
constexpr size_t kHeaderBytes = 24;

/// Default ceiling on payload_len: a header announcing more is malformed and
/// rejected *before* any payload buffering, so a hostile length can never
/// drive an allocation.
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

/// \brief What a frame carries.
enum class FrameType : uint16_t {
  kRequest = 1,  ///< Client → server: an encoded WireRequest.
  kAnswer = 2,   ///< Server → client: an encoded service::Answer.
  kError = 3,    ///< Server → client: an encoded non-OK util::Status.
  kPing = 4,     ///< Client → server: liveness / pipeline-flush probe.
  kPong = 5,     ///< Server → client: answer to kPing.
};

/// \brief Decoded frame header (host byte order).
struct FrameHeader {
  uint16_t version = kWireVersion;
  FrameType type = FrameType::kRequest;
  uint64_t request_id = 0;  ///< Client-chosen; responses echo it (pipelining).
  uint32_t payload_len = 0;
  uint32_t checksum = 0;
};

/// \brief A complete decoded frame.
struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

/// FNV-1a over the first 20 bytes of the encoded header plus the payload —
/// cheap, dependency-free corruption detection (not cryptographic).
uint32_t FrameChecksum(const uint8_t* header20, const uint8_t* payload,
                       size_t payload_len);

/// Appends one encoded frame (header + payload, checksummed) to `out`.
void AppendFrame(std::vector<uint8_t>* out, FrameType type, uint64_t request_id,
                 const uint8_t* payload, size_t payload_len);
inline void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                        uint64_t request_id,
                        const std::vector<uint8_t>& payload) {
  AppendFrame(out, type, request_id, payload.data(), payload.size());
}

/// \brief Incremental frame decoder: feed raw socket bytes, pop frames.
///
/// Any protocol violation poisons the decoder: the typed error is latched,
/// every later Next() returns kError, and Feed() discards input. The owner's
/// defined recovery is "report the error and close the connection" — there is
/// no resynchronization on a corrupted stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload_bytes = kMaxPayloadBytes)
      : max_payload_(max_payload_bytes) {}

  enum class Event {
    kNeedMore,  ///< No complete frame buffered; feed more bytes.
    kFrame,     ///< `*frame` holds the next complete, checksum-verified frame.
    kError,     ///< Poisoned; error() has the typed protocol error.
  };

  /// Buffers `n` bytes from the socket (no-op once poisoned).
  void Feed(const uint8_t* data, size_t n);

  /// Pops the next complete frame, or reports kNeedMore / kError.
  Event Next(Frame* frame);

  const util::Status& error() const { return error_; }
  bool poisoned() const { return !error_.ok(); }

  /// Bytes buffered but not yet consumed (tests assert bounded buffering).
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  void Poison(util::Status status);

  size_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // Consumed prefix of buf_.
  util::Status error_;
};

// ---------------------------------------------------------------- messages --

/// \brief A client's view of one query: service::Request minus the process-
/// local lifecycle handles, plus a relative deadline budget. The server maps
/// `deadline_budget_nanos` onto a util::Deadline *at decode time*, so the
/// budget starts ticking the moment the frame is parsed and admission-time
/// rejection / the shed-degrade ladder work unchanged over the wire.
struct WireRequest {
  std::string dataset;
  service::QueryKind kind = service::QueryKind::kQ1MeanValue;
  query::Query q;
  uint64_t deadline_budget_nanos = 0;  ///< 0 = no deadline.

  static WireRequest Q1(std::string dataset, query::Query q) {
    return WireRequest{std::move(dataset), service::QueryKind::kQ1MeanValue,
                       std::move(q), 0};
  }
  static WireRequest Q2(std::string dataset, query::Query q) {
    return WireRequest{std::move(dataset), service::QueryKind::kQ2Regression,
                       std::move(q), 0};
  }
};

std::vector<uint8_t> EncodeRequest(const WireRequest& request);
util::Result<WireRequest> DecodeRequest(const uint8_t* data, size_t n);

std::vector<uint8_t> EncodeAnswer(const service::Answer& answer);
util::Result<service::Answer> DecodeAnswer(const uint8_t* data, size_t n);

/// `status` must be non-OK (an OK kError frame is a contradiction).
std::vector<uint8_t> EncodeStatus(const util::Status& status);

// ------------------------------------------------------------ arena encode --

/// \brief Pool of reusable byte buffers for connection-owned frame encoding.
///
/// Acquire() hands out a cleared buffer that keeps its previous capacity, so
/// steady-state response encoding allocates nothing: a buffer travels through
/// the dispatch → encode → flush cycle by value (vector move) and comes home
/// via Release(). The pool bounds both the number of idle buffers and the
/// capacity it will re-pool, so one huge answer cannot pin its footprint
/// forever. Not thread-safe — each of the server's event loops owns one and
/// serializes Acquire/Release on its own thread.
class WireArena {
 public:
  struct Options {
    size_t max_pooled_buffers = 64;
    /// A released buffer whose capacity exceeds this is freed, not pooled.
    size_t max_retained_bytes = 1u << 20;
  };

  WireArena() = default;
  explicit WireArena(Options options) : options_(options) {}

  WireArena(const WireArena&) = delete;
  WireArena& operator=(const WireArena&) = delete;

  /// An empty buffer, reusing pooled capacity when available.
  std::vector<uint8_t> Acquire();

  /// Returns a buffer to the pool (or frees it when over the caps).
  void Release(std::vector<uint8_t> buf);

  size_t pooled() const { return pool_.size(); }
  uint64_t acquired() const { return acquired_; }
  uint64_t reused() const { return reused_; }  ///< Acquires served from pool.

  /// Buffers handed back (pooled *or* freed over the caps). The server's
  /// leak invariant — every acquired buffer comes home no matter how its
  /// connection died — is `acquired() == released()` after shutdown.
  uint64_t released() const { return released_; }

 private:
  Options options_;
  std::vector<std::vector<uint8_t>> pool_;
  uint64_t acquired_ = 0;
  uint64_t reused_ = 0;
  uint64_t released_ = 0;
};

/// In-place frame encoders: append one complete frame — header plus
/// tagged-field payload, with payload_len, nested lengths, and checksum
/// backpatched — directly onto `out`. Bit-for-bit identical to
/// `AppendFrame(out, ..., EncodeAnswer(...))` without the intermediate
/// per-frame payload allocations; this is the arena encode path the server's
/// executors use on reusable connection-owned buffers.
void AppendAnswerFrame(std::vector<uint8_t>* out, uint64_t request_id,
                       const service::Answer& answer);
void AppendStatusFrame(std::vector<uint8_t>* out, uint64_t request_id,
                       const util::Status& status);

/// Decodes a kError payload into `*decoded`. The return value reports the
/// *decode*; `*decoded` is the peer's transported status on success.
util::Status DecodeStatus(const uint8_t* data, size_t n, util::Status* decoded);

}  // namespace net
}  // namespace qreg

#endif  // QREG_NET_WIRE_H_
