// Free functions over std::vector<double> used throughout qreg.
//
// Points, query centers, slopes, and prototypes are all dense double vectors;
// dimensions are small (d <= ~16) so contiguous std::vector wins over any
// fancier representation.

#ifndef QREG_LINALG_VECTOR_OPS_H_
#define QREG_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace qreg {
namespace linalg {

using Vec = std::vector<double>;

/// \brief Dot product; vectors must have equal size.
double Dot(const Vec& a, const Vec& b);

/// \brief Euclidean (L2) norm.
double Norm2(const Vec& a);

/// \brief Squared Euclidean norm.
double Norm2Squared(const Vec& a);

/// \brief L2 distance between `a` and `b`.
double Distance2(const Vec& a, const Vec& b);

/// \brief Squared L2 distance.
double Distance2Squared(const Vec& a, const Vec& b);

/// \brief a + b elementwise.
Vec Add(const Vec& a, const Vec& b);

/// \brief a - b elementwise.
Vec Sub(const Vec& a, const Vec& b);

/// \brief s * a.
Vec Scale(const Vec& a, double s);

/// \brief In-place y += alpha * x.
void AxPy(double alpha, const Vec& x, Vec* y);

/// \brief Arithmetic mean of the entries (0 for empty).
double Mean(const Vec& a);

/// \brief Population variance of the entries (0 for size < 1).
double Variance(const Vec& a);

/// \brief Elementwise min/max over a set of vectors; out params sized to d.
void ElementwiseRange(const std::vector<Vec>& vs, Vec* mins, Vec* maxs);

}  // namespace linalg
}  // namespace qreg

#endif  // QREG_LINALG_VECTOR_OPS_H_
