// Householder QR least-squares solver. Used as the numerically robust
// fallback when normal equations are ill-conditioned, and by the MARS
// baseline where design matrices can be strongly correlated.

#ifndef QREG_LINALG_QR_H_
#define QREG_LINALG_QR_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace qreg {
namespace linalg {

/// \brief Solves min_x ||A x - b||_2 via Householder QR.
///
/// Requires rows >= cols. Rank deficiency (a zero R diagonal within
/// tolerance) maps the free coordinates to zero rather than failing, which is
/// the behaviour regression callers want for collinear designs.
util::Result<std::vector<double>> QrLeastSquares(const Matrix& a,
                                                 const std::vector<double>& b);

}  // namespace linalg
}  // namespace qreg

#endif  // QREG_LINALG_QR_H_
