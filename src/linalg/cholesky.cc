#include "linalg/cholesky.h"

#include <cmath>

#include "util/string_util.h"

namespace qreg {
namespace linalg {

util::Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return util::Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return util::Status::FailedPrecondition(
          util::Format("non-positive pivot %.3e at column %zu", diag, j));
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

util::Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                                const std::vector<double>& b) {
  if (a.rows() != b.size()) {
    return util::Status::InvalidArgument("dimension mismatch in CholeskySolve");
  }
  QREG_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  const size_t n = b.size();
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Backward substitution: L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

util::Result<std::vector<double>> CholeskySolveRegularized(
    const Matrix& a, const std::vector<double>& b, double initial_jitter,
    int max_attempts) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return util::Status::InvalidArgument(
        "dimension mismatch in CholeskySolveRegularized");
  }
  // Scale the jitter by the largest diagonal entry so it is meaningful for
  // both tiny and huge moment matrices.
  double max_diag = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    max_diag = std::max(max_diag, std::fabs(a(i, i)));
  }
  if (max_diag == 0.0) max_diag = 1.0;

  double jitter = 0.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Matrix aj = a;
    if (jitter > 0.0) {
      for (size_t i = 0; i < aj.rows(); ++i) aj(i, i) += jitter * max_diag;
    }
    auto solved = CholeskySolve(aj, b);
    if (solved.ok()) return solved;
    jitter = (jitter == 0.0) ? initial_jitter : jitter * 10.0;
  }
  return util::Status::FailedPrecondition(
      "matrix is not positive definite even after regularization");
}

}  // namespace linalg
}  // namespace qreg
