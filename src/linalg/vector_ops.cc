#include "linalg/vector_ops.h"

#include <cassert>
#include <cmath>

namespace qreg {
namespace linalg {

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2Squared(const Vec& a) { return Dot(a, a); }

double Norm2(const Vec& a) { return std::sqrt(Norm2Squared(a)); }

double Distance2Squared(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double dlt = a[i] - b[i];
    s += dlt * dlt;
  }
  return s;
}

double Distance2(const Vec& a, const Vec& b) {
  return std::sqrt(Distance2Squared(a, b));
}

Vec Add(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Scale(const Vec& a, double s) {
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void AxPy(double alpha, const Vec& x, Vec* y) {
  assert(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

double Mean(const Vec& a) {
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (double v : a) s += v;
  return s / static_cast<double>(a.size());
}

double Variance(const Vec& a) {
  if (a.size() < 1) return 0.0;
  const double m = Mean(a);
  double s = 0.0;
  for (double v : a) s += (v - m) * (v - m);
  return s / static_cast<double>(a.size());
}

void ElementwiseRange(const std::vector<Vec>& vs, Vec* mins, Vec* maxs) {
  if (vs.empty()) {
    mins->clear();
    maxs->clear();
    return;
  }
  const size_t d = vs[0].size();
  mins->assign(d, vs[0][0]);
  maxs->assign(d, vs[0][0]);
  for (size_t j = 0; j < d; ++j) {
    (*mins)[j] = vs[0][j];
    (*maxs)[j] = vs[0][j];
  }
  for (const Vec& v : vs) {
    assert(v.size() == d);
    for (size_t j = 0; j < d; ++j) {
      if (v[j] < (*mins)[j]) (*mins)[j] = v[j];
      if (v[j] > (*maxs)[j]) (*maxs)[j] = v[j];
    }
  }
}

}  // namespace linalg
}  // namespace qreg
