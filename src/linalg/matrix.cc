#include "linalg/matrix.h"

#include <cmath>

#include "util/string_util.h"

namespace qreg {
namespace linalg {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i].size() == m.cols_);
    for (size_t j = 0; j < m.cols_; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

std::vector<double> Matrix::Row(size_t i) const {
  assert(i < rows_);
  return std::vector<double>(RowPtr(i), RowPtr(i) + cols_);
}

std::vector<double> Matrix::Col(size_t j) const {
  assert(j < cols_);
  std::vector<double> out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += row[j] * v[j];
    out[i] = s;
  }
  return out;
}

std::vector<double> Matrix::TransposeMatVec(const std::vector<double>& v) const {
  assert(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    const double vi = v[i];
    for (size_t j = 0; j < cols_; ++j) out[j] += row[j] * vi;
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  for (size_t i = 0; i < rows_; ++i) {
    out += "[";
    for (size_t j = 0; j < cols_; ++j) {
      out += util::Format("%.*g", precision, (*this)(i, j));
      if (j + 1 < cols_) out += ", ";
    }
    out += "]\n";
  }
  return out;
}

}  // namespace linalg
}  // namespace qreg
