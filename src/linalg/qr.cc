#include "linalg/qr.h"

#include <cmath>

namespace qreg {
namespace linalg {

util::Result<std::vector<double>> QrLeastSquares(const Matrix& a,
                                                 const std::vector<double>& b) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (b.size() != m) {
    return util::Status::InvalidArgument("rhs size mismatch in QrLeastSquares");
  }
  if (m < n) {
    return util::Status::InvalidArgument(
        "QrLeastSquares requires rows >= cols (overdetermined system)");
  }

  Matrix r = a;                  // Reduced in place to R.
  std::vector<double> qtb = b;   // Accumulates Q^T b.

  double max_abs = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) max_abs = std::max(max_abs, std::fabs(r(i, j)));
  }
  const double tol = std::max(m, n) * 1e-14 * (max_abs == 0.0 ? 1.0 : max_abs);

  std::vector<double> v(m);
  for (size_t k = 0; k < n; ++k) {
    // Householder vector for column k below (and including) the diagonal.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm <= tol) continue;  // Column already (numerically) zero: skip.

    const double alpha = (r(k, k) >= 0.0) ? -norm : norm;
    double vnorm2 = 0.0;
    for (size_t i = k; i < m; ++i) {
      v[i] = r(i, k);
      if (i == k) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 <= 0.0) continue;

    // Apply H = I - 2 v v^T / (v^T v) to R (columns k..n-1) and to qtb.
    for (size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i] * r(i, j);
      const double f = 2.0 * dot / vnorm2;
      for (size_t i = k; i < m; ++i) r(i, j) -= f * v[i];
    }
    double dotb = 0.0;
    for (size_t i = k; i < m; ++i) dotb += v[i] * qtb[i];
    const double fb = 2.0 * dotb / vnorm2;
    for (size_t i = k; i < m; ++i) qtb[i] -= fb * v[i];
  }

  // Back substitution on the upper-triangular R; zero out rank-deficient
  // coordinates instead of dividing by ~0.
  std::vector<double> x(n, 0.0);
  for (size_t kk = n; kk-- > 0;) {
    const double diag = r(kk, kk);
    if (std::fabs(diag) <= tol) {
      x[kk] = 0.0;
      continue;
    }
    double s = qtb[kk];
    for (size_t j = kk + 1; j < n; ++j) s -= r(kk, j) * x[j];
    x[kk] = s / diag;
  }
  return x;
}

}  // namespace linalg
}  // namespace qreg
