// Dense row-major matrix of doubles, sized for small regression problems
// (normal equations of dimension d+1, MARS design matrices of a few dozen
// columns). Not a general BLAS; operations are written for clarity and
// correctness at these sizes.

#ifndef QREG_LINALG_MATRIX_H_
#define QREG_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace qreg {
namespace linalg {

/// \brief Dense row-major matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Builds an n x d matrix from n row vectors (all must have size d).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Pointer to the start of row i (contiguous `cols()` doubles).
  double* RowPtr(size_t i) { return &data_[i * cols_]; }
  const double* RowPtr(size_t i) const { return &data_[i * cols_]; }

  /// Copies row i into a vector.
  std::vector<double> Row(size_t i) const;

  /// Copies column j into a vector.
  std::vector<double> Col(size_t j) const;

  Matrix Transpose() const;

  /// this * other; inner dimensions must agree.
  Matrix MatMul(const Matrix& other) const;

  /// this * v (v.size() == cols()).
  std::vector<double> MatVec(const std::vector<double>& v) const;

  /// this^T * v (v.size() == rows()).
  std::vector<double> TransposeMatVec(const std::vector<double>& v) const;

  /// Frobenius-norm difference; matrices must be the same shape.
  double MaxAbsDiff(const Matrix& other) const;

  std::string ToString(int precision = 4) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace linalg
}  // namespace qreg

#endif  // QREG_LINALG_MATRIX_H_
