#include "linalg/ols.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "linalg/cholesky.h"
#include "linalg/qr.h"

namespace qreg {
namespace linalg {

double OlsFit::FVU() const {
  if (tss > 0.0) return ssr / tss;
  return ssr > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
}

double OlsFit::CoD() const { return 1.0 - FVU(); }

double OlsFit::Predict(const std::vector<double>& x) const {
  assert(x.size() == slope.size());
  double s = intercept;
  for (size_t i = 0; i < slope.size(); ++i) s += slope[i] * x[i];
  return s;
}

OlsAccumulator::OlsAccumulator(size_t d)
    : d_(d), xtx_(d + 1, d + 1), xtu_(d + 1, 0.0) {}

void OlsAccumulator::Add(const std::vector<double>& x, double u) {
  assert(x.size() == d_);
  Add(x.data(), u);
}

void OlsAccumulator::Add(const double* x, double u) {
  // Augmented feature vector z = [1, x_0, ..., x_{d-1}] accumulated into the
  // upper triangle; the lower triangle is mirrored in Solve().
  ++n_;
  xtx_(0, 0) += 1.0;
  xtu_[0] += u;
  for (size_t i = 0; i < d_; ++i) {
    xtx_(0, i + 1) += x[i];
    xtu_[i + 1] += x[i] * u;
    for (size_t j = i; j < d_; ++j) {
      xtx_(i + 1, j + 1) += x[i] * x[j];
    }
  }
  utu_ += u * u;
  usum_ += u;
}

void OlsAccumulator::AddBlock(const double* xs, const double* us,
                              const int32_t* sel, int32_t count) {
  for (int32_t k = 0; k < count; ++k) {
    const size_t lane = static_cast<size_t>(sel[k]);
    Add(xs + lane * d_, us[lane]);
  }
}

util::Status OlsAccumulator::Merge(const OlsAccumulator& other) {
  if (other.d_ != d_) {
    return util::Status::InvalidArgument("OlsAccumulator dimension mismatch");
  }
  n_ += other.n_;
  utu_ += other.utu_;
  usum_ += other.usum_;
  for (size_t i = 0; i <= d_; ++i) {
    xtu_[i] += other.xtu_[i];
    for (size_t j = i; j <= d_; ++j) {
      xtx_(i, j) += other.xtx_(i, j);
    }
  }
  return util::Status::OK();
}

util::Result<OlsFit> OlsAccumulator::Solve() const {
  if (n_ < 1) {
    return util::Status::FailedPrecondition("OLS over an empty subspace");
  }
  // Mirror the accumulated upper triangle.
  Matrix a(d_ + 1, d_ + 1);
  for (size_t i = 0; i <= d_; ++i) {
    for (size_t j = i; j <= d_; ++j) {
      a(i, j) = xtx_(i, j);
      a(j, i) = xtx_(i, j);
    }
  }
  QREG_ASSIGN_OR_RETURN(std::vector<double> beta,
                        CholeskySolveRegularized(a, xtu_));

  OlsFit fit;
  fit.n = n_;
  fit.intercept = beta[0];
  fit.slope.assign(beta.begin() + 1, beta.end());
  fit.u_mean = usum_ / static_cast<double>(n_);

  // SSR = u'u - 2 b'X'u + b'X'X b, computed from the accumulated moments.
  double bxtxb = 0.0;
  for (size_t i = 0; i <= d_; ++i) {
    for (size_t j = 0; j <= d_; ++j) {
      bxtxb += beta[i] * a(i, j) * beta[j];
    }
  }
  double bxtu = 0.0;
  for (size_t i = 0; i <= d_; ++i) bxtu += beta[i] * xtu_[i];
  fit.ssr = std::max(0.0, utu_ - 2.0 * bxtu + bxtxb);
  fit.tss = std::max(0.0, utu_ - static_cast<double>(n_) * fit.u_mean * fit.u_mean);
  return fit;
}

void OlsAccumulator::Reset() {
  n_ = 0;
  utu_ = 0.0;
  usum_ = 0.0;
  xtx_ = Matrix(d_ + 1, d_ + 1);
  xtu_.assign(d_ + 1, 0.0);
}

util::Result<OlsFit> FitOls(const Matrix& x, const std::vector<double>& u) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (u.size() != n) {
    return util::Status::InvalidArgument("FitOls: |u| != rows(x)");
  }
  if (n == 0) {
    return util::Status::FailedPrecondition("FitOls over an empty design");
  }
  if (n < d + 1) {
    // Fall back to the streaming path, whose regularized normal equations
    // tolerate underdetermined systems.
    OlsAccumulator acc(d);
    for (size_t i = 0; i < n; ++i) acc.Add(x.RowPtr(i), u[i]);
    return acc.Solve();
  }

  Matrix design(n, d + 1);
  for (size_t i = 0; i < n; ++i) {
    design(i, 0) = 1.0;
    const double* row = x.RowPtr(i);
    for (size_t j = 0; j < d; ++j) design(i, j + 1) = row[j];
  }
  QREG_ASSIGN_OR_RETURN(std::vector<double> beta, QrLeastSquares(design, u));

  OlsFit fit;
  fit.n = static_cast<int64_t>(n);
  fit.intercept = beta[0];
  fit.slope.assign(beta.begin() + 1, beta.end());

  double mean = 0.0;
  for (double v : u) mean += v;
  mean /= static_cast<double>(n);
  fit.u_mean = mean;

  double ssr = 0.0;
  double tss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double pred = beta[0];
    const double* row = x.RowPtr(i);
    for (size_t j = 0; j < d; ++j) pred += beta[j + 1] * row[j];
    ssr += (u[i] - pred) * (u[i] - pred);
    tss += (u[i] - mean) * (u[i] - mean);
  }
  fit.ssr = ssr;
  fit.tss = tss;
  return fit;
}

}  // namespace linalg
}  // namespace qreg
