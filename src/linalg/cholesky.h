// Cholesky factorization and SPD solves for normal-equation systems.

#ifndef QREG_LINALG_CHOLESKY_H_
#define QREG_LINALG_CHOLESKY_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace qreg {
namespace linalg {

/// \brief Computes the lower-triangular L with A = L L^T.
///
/// Fails with InvalidArgument for non-square input and FailedPrecondition if a
/// non-positive pivot is met (A not positive definite to working precision).
util::Result<Matrix> CholeskyFactor(const Matrix& a);

/// \brief Solves A x = b for SPD A via Cholesky.
util::Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                                const std::vector<double>& b);

/// \brief Solves (A + jitter*I) x = b, escalating jitter by 10x up to
/// `max_attempts` times when A is numerically semi-definite.
///
/// This is the production path for normal equations built from nearly
/// collinear subspaces (tiny query balls often select collinear points).
util::Result<std::vector<double>> CholeskySolveRegularized(
    const Matrix& a, const std::vector<double>& b, double initial_jitter = 1e-10,
    int max_attempts = 8);

}  // namespace linalg
}  // namespace qreg

#endif  // QREG_LINALG_CHOLESKY_H_
