// Ordinary least squares: the exact multivariate linear regression used by
// the REG baseline (paper section VI) and inside the MARS/PLR baseline.
//
// Two paths are provided:
//  - OlsAccumulator: one-pass streaming accumulation of the moment matrix
//    [1 x]^T [1 x] and moment vector [1 x]^T u. This is how an in-DBMS
//    aggregate would evaluate Q2 without materializing the subspace.
//  - FitOls: batch fit from an explicit design, via QR (robust path).

#ifndef QREG_LINALG_OLS_H_
#define QREG_LINALG_OLS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace qreg {
namespace linalg {

/// \brief A fitted linear model u ≈ intercept + slope · x with fit statistics.
struct OlsFit {
  double intercept = 0.0;
  std::vector<double> slope;

  int64_t n = 0;          ///< Number of observations used.
  double ssr = 0.0;       ///< Sum of squared residuals.
  double tss = 0.0;       ///< Total sum of squares around the mean of u.
  double u_mean = 0.0;    ///< Mean of the dependent variable.

  /// Fraction of Variance Unexplained s = SSR/TSS (paper section VI).
  /// Returns +inf when TSS == 0 and SSR > 0; 0 when both are 0.
  double FVU() const;

  /// Coefficient of determination R^2 = 1 - FVU.
  double CoD() const;

  /// Predicted value at x (x.size() must equal slope.size()).
  double Predict(const std::vector<double>& x) const;
};

/// \brief Streaming accumulator for OLS over d-dimensional inputs.
///
/// Accumulates sufficient statistics so that Solve() costs O(d^3) regardless
/// of how many points were added. Numerically appropriate for the unit-scaled
/// data qreg operates on.
class OlsAccumulator {
 public:
  explicit OlsAccumulator(size_t d);

  /// Adds one observation (x must have size d).
  void Add(const std::vector<double>& x, double u);

  /// Adds one observation from a raw pointer (x points at d doubles).
  void Add(const double* x, double u);

  /// Fused block update: adds the `count` selected lanes of a row-major
  /// candidate block (`xs` strided by dimension(), outputs in `us`, lane
  /// offsets in ascending `sel`). Arithmetic-identical to calling Add() on
  /// each selected lane in order — one indexed loop, no per-row dispatch.
  void AddBlock(const double* xs, const double* us, const int32_t* sel,
                int32_t count);

  /// Merges another accumulator of the same dimension (for partitioned scans).
  util::Status Merge(const OlsAccumulator& other);

  int64_t count() const { return n_; }
  size_t dimension() const { return d_; }

  /// Solves the normal equations; requires count() >= 1.
  ///
  /// With fewer observations than d+1 the system is rank-deficient: the
  /// regularized solver still returns the minimum-norm-ish solution, matching
  /// what an analyst gets from a tiny query ball.
  util::Result<OlsFit> Solve() const;

  void Reset();

 private:
  size_t d_;
  int64_t n_ = 0;
  Matrix xtx_;                // (d+1) x (d+1) moments of [1, x].
  std::vector<double> xtu_;   // (d+1) moments of [1, x]^T u.
  double utu_ = 0.0;          // sum of u^2.
  double usum_ = 0.0;         // sum of u.
};

/// \brief Batch OLS (adds an intercept column) via Householder QR.
util::Result<OlsFit> FitOls(const Matrix& x, const std::vector<double>& u);

}  // namespace linalg
}  // namespace qreg

#endif  // QREG_LINALG_OLS_H_
