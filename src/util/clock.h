// Injectable time source. Production code reads the monotonic system clock;
// tests substitute a FakeClock so deadline behavior is deterministic (no
// sleeps, no real elapsed time — see tests/test_support.h).

#ifndef QREG_UTIL_CLOCK_H_
#define QREG_UTIL_CLOCK_H_

#include <cstdint>

#include "util/timer.h"

namespace qreg {
namespace util {

/// \brief Abstract monotonic time source (nanoseconds since an arbitrary
/// epoch). Implementations must be safe to call from multiple threads.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;
};

/// \brief The real monotonic clock (std::chrono::steady_clock).
class SystemClock : public Clock {
 public:
  int64_t NowNanos() const override { return util::NowNanos(); }

  /// A process-wide instance, used whenever no clock is injected.
  static const SystemClock& Default() {
    static const SystemClock clock;
    return clock;
  }
};

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_CLOCK_H_
