// Request-lifecycle primitives: per-query deadlines and cooperative
// cancellation, checked inside long-running scans so an abandoned or
// over-budget query stops burning cores and returns a typed status
// (kDeadlineExceeded / kCancelled) with partial-work accounting.
//
// Both types are cheap value types designed to be carried inside a request
// struct: a default-constructed Deadline never expires and a
// default-constructed CancellationToken can never be cancelled, so the
// common no-lifecycle path costs two trivially-false branches.

#ifndef QREG_UTIL_CANCELLATION_H_
#define QREG_UTIL_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "util/clock.h"
#include "util/status.h"

namespace qreg {
namespace util {

/// \brief Shared-state cancellation handle. Copies share one flag: any copy
/// can Cancel(), every copy observes it. Thread-safe.
class CancellationToken {
 public:
  /// A token that can never be cancelled (no shared state, no allocation).
  CancellationToken() = default;

  /// A token with live shared state that Cancel() trips.
  static CancellationToken Cancellable() {
    CancellationToken t;
    t.state_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Trips the token (idempotent; no-op on a non-cancellable token).
  void Cancel() const {
    if (state_) state_->store(true, std::memory_order_release);
  }

  bool cancellable() const { return state_ != nullptr; }
  bool cancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// \brief Absolute point on a (possibly injected) monotonic clock after
/// which a request should stop executing. Default-constructed = no deadline.
class Deadline {
 public:
  Deadline() = default;  ///< Never expires.

  static Deadline Infinite() { return Deadline(); }

  /// Expires at the absolute instant `at_nanos` on `clock` (null = the
  /// system clock). The clock is borrowed and must outlive the deadline.
  static Deadline AtNanos(int64_t at_nanos, const Clock* clock = nullptr) {
    Deadline d;
    d.at_nanos_ = at_nanos;
    d.clock_ = clock;
    return d;
  }

  /// Expires `budget_nanos` from now on `clock` (null = the system clock).
  static Deadline AfterNanos(int64_t budget_nanos, const Clock* clock = nullptr) {
    const Clock& c = clock != nullptr ? *clock : SystemClock::Default();
    return AtNanos(c.NowNanos() + budget_nanos, clock);
  }
  static Deadline AfterMillis(int64_t ms, const Clock* clock = nullptr) {
    return AfterNanos(ms * 1000000, clock);
  }

  bool infinite() const { return at_nanos_ == kNoDeadline; }
  bool expired() const { return !infinite() && clock().NowNanos() >= at_nanos_; }

  /// Nanoseconds until expiry (clamped at 0); INT64_MAX when infinite.
  int64_t remaining_nanos() const {
    if (infinite()) return kNoDeadline;
    const int64_t left = at_nanos_ - clock().NowNanos();
    return left > 0 ? left : 0;
  }

 private:
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  const Clock& clock() const {
    return clock_ != nullptr ? *clock_ : SystemClock::Default();
  }

  int64_t at_nanos_ = kNoDeadline;
  const Clock* clock_ = nullptr;  // Borrowed; null = SystemClock::Default().
};

/// \brief The lifecycle bundle a scan checks between units of work.
///
/// Check() is evaluated once per claimed partition chunk (never per row), so
/// the overhead is a handful of atomic loads per ~8K-row chunk and an
/// expired or cancelled query returns within one chunk-claim of the trip.
struct ExecControl {
  Deadline deadline;
  CancellationToken cancel;

  /// Test-only: invoked with the chunk index immediately before that chunk's
  /// lifecycle check. Lets deterministic tests trip the deadline/token at an
  /// exact point in the scan (a gate, a FakeClock advance) without sleeps.
  /// Called concurrently from pool workers when the scan is parallel.
  std::function<void(size_t chunk)> on_chunk_for_testing;

  /// kCancelled if the token tripped, else kDeadlineExceeded if the deadline
  /// passed, else OK. Cancellation wins: an explicit abort is more
  /// actionable to the caller than a timeout that raced with it.
  Status Check() const {
    if (cancel.cancelled()) {
      return Status::Cancelled("query cancelled by caller");
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded("query deadline expired");
    }
    return Status::OK();
  }

  /// True when this control can ever fail a Check(): carrying it through a
  /// scan only pays when so.
  bool active() const {
    return cancel.cancellable() || !deadline.infinite() ||
           static_cast<bool>(on_chunk_for_testing);
  }
};

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_CANCELLATION_H_
