// Aligned console tables for bench output, mirroring the paper's figures as
// printable series (column per curve, row per x-axis point).

#ifndef QREG_UTIL_TABLE_PRINTER_H_
#define QREG_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace qreg {
namespace util {

/// \brief Collects rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; missing cells render empty, extra cells widen the table.
  void AddRow(std::vector<std::string> row);

  /// Convenience for numeric rows; uses "%.*g" with `precision`.
  void AddNumericRow(const std::vector<double>& values, int precision = 5);

  /// Renders with a rule under the header, two-space gutters.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_TABLE_PRINTER_H_
