// Minimal leveled logging to stderr. Benches and the trainer use INFO-level
// progress lines; set QREG_LOG_LEVEL=warn (or error/off) to quieten.

#ifndef QREG_UTIL_LOGGING_H_
#define QREG_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace qreg {
namespace util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// \brief Returns the process-wide minimum level (from QREG_LOG_LEVEL, default
/// info).
LogLevel MinLogLevel();

/// \brief Overrides the minimum level programmatically (tests use this).
void SetMinLogLevel(LogLevel level);

/// \brief Emits one log line "[LEVEL] message" to stderr if enabled.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, ss_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace internal
}  // namespace util
}  // namespace qreg

#define QREG_LOG_DEBUG ::qreg::util::internal::LogStream(::qreg::util::LogLevel::kDebug)
#define QREG_LOG_INFO ::qreg::util::internal::LogStream(::qreg::util::LogLevel::kInfo)
#define QREG_LOG_WARN ::qreg::util::internal::LogStream(::qreg::util::LogLevel::kWarn)
#define QREG_LOG_ERROR ::qreg::util::internal::LogStream(::qreg::util::LogLevel::kError)

#endif  // QREG_UTIL_LOGGING_H_
