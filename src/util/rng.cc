#include "util/rng.h"

namespace qreg {
namespace util {

std::vector<uint64_t> DeriveSeeds(uint64_t master_seed, size_t n) {
  std::vector<uint64_t> seeds;
  seeds.reserve(n);
  uint64_t sm = master_seed ^ 0xA5A5A5A55A5A5A5AULL;
  for (size_t i = 0; i < n; ++i) seeds.push_back(SplitMix64(&sm));
  return seeds;
}

}  // namespace util
}  // namespace qreg
