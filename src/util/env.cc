#include "util/env.h"

#include <cstdlib>

namespace qreg {
namespace util {

int64_t GetEnvInt64(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return (v == nullptr) ? def : std::string(v);
}

bool GetEnvBool(const char* name, bool def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  const std::string s(v);
  return s == "1" || s == "true" || s == "TRUE" || s == "on" || s == "ON";
}

}  // namespace util
}  // namespace qreg
