// Clang thread-safety-analysis attribute macros (DESIGN.md §13).
//
// The QREG_ macros below attach compile-time locking contracts to mutexes,
// the data they guard, and the functions that acquire them. Under clang with
// -Wthread-safety the analysis proves every GUARDED_BY field is only touched
// with its capability held and every REQUIRES contract is honored at each
// call site; under any other compiler they expand to nothing. CI builds the
// library with clang and -Wthread-safety -Werror, so a lock-discipline
// violation is a build break, not a TSan lottery ticket.
//
// Conventions (see util/mutex.h for the annotated primitives):
//   - Every mutex-guarded field carries QREG_GUARDED_BY(mu).
//   - Private helpers that assume a lock is held carry QREG_REQUIRES(mu)
//     instead of re-locking.
//   - Try-lock paths adopt via MutexLock's adopt constructor so the scoped
//     release is still proven.
//   - Deliberate lock-free reads (epoch-published snapshots, racy hints
//     formalized by a comment) are isolated in tiny accessors marked
//     QREG_NO_THREAD_SAFETY_ANALYSIS with the happens-before argument
//     written next to them.

#ifndef QREG_UTIL_THREAD_ANNOTATIONS_H_
#define QREG_UTIL_THREAD_ANNOTATIONS_H_

// NOLINTBEGIN(bugprone-macro-parentheses)

#if defined(__clang__)
#define QREG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QREG_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define QREG_CAPABILITY(x) QREG_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define QREG_SCOPED_CAPABILITY QREG_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written with capability `x` held.
#define QREG_GUARDED_BY(x) QREG_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be touched with capability `x` held.
#define QREG_PT_GUARDED_BY(x) QREG_THREAD_ANNOTATION(pt_guarded_by(x))

/// Documents (and, where the analysis supports it, checks) lock ordering.
#define QREG_ACQUIRED_BEFORE(...) \
  QREG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define QREG_ACQUIRED_AFTER(...) \
  QREG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability; the function does not release it.
#define QREG_REQUIRES(...) \
  QREG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define QREG_ACQUIRE(...) \
  QREG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define QREG_RELEASE(...) \
  QREG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define QREG_TRY_ACQUIRE(result, ...) \
  QREG_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for re-entry).
#define QREG_EXCLUDES(...) \
  QREG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define QREG_ASSERT_CAPABILITY(x) \
  QREG_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define QREG_RETURN_CAPABILITY(x) QREG_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's body is exempt from the analysis. Every use
/// must carry a comment with the happens-before argument that makes the
/// unchecked access sound.
#define QREG_NO_THREAD_SAFETY_ANALYSIS \
  QREG_THREAD_ANNOTATION(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)

#endif  // QREG_UTIL_THREAD_ANNOTATIONS_H_
