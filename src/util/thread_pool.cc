#include "util/thread_pool.h"

#include <utility>

#include "util/mutex.h"

namespace qreg {
namespace util {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    while (queue_.size() >= capacity_ && !stop_) not_full_.Wait(&mu_);
    if (stop_) return;  // Shutting down: drop the task.
    queue_.push_back(std::move(task));
  }
  not_empty_.NotifyOne();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return true;
  }
  {
    MutexLock lock(&mu_);
    if (stop_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.NotifyOne();
  return true;
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !stop_) not_empty_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ && drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.NotifyOne();
    task();
  }
}

}  // namespace util
}  // namespace qreg
