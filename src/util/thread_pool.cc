#include "util/thread_pool.h"

#include <utility>

namespace qreg {
namespace util {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return queue_.size() < capacity_ || stop_; });
    if (stop_) return;  // Shutting down: drop the task.
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (queue_.empty()) return;  // stop_ && drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
  }
}

}  // namespace util
}  // namespace qreg
