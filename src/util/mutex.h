// Annotated mutex primitives (DESIGN.md §13): thin wrappers over
// std::mutex / std::condition_variable that carry the clang thread-safety
// capability annotations from util/thread_annotations.h. All locking in
// src/ goes through these types — tools/lint_invariants.py rejects raw
// std::mutex outside src/util/ — so the -Wthread-safety CI build proves the
// repo's lock discipline instead of documenting it.
//
// The wrappers add no state and no behavior: Mutex is std::mutex, MutexLock
// is a scoped lock (with an adopt constructor for try-lock paths), and
// CondVar waits on a Mutex the caller already holds. Condition waits are
// written as explicit while-loops at the call sites (not predicate lambdas)
// because the analysis cannot see through a lambda's capture list.

#ifndef QREG_UTIL_MUTEX_H_
#define QREG_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

namespace qreg {
namespace util {

class CondVar;

/// \brief An annotated std::mutex. Prefer MutexLock over manual
/// Lock()/Unlock() pairs; the manual API exists for the adopt idiom and for
/// code with non-scoped critical sections.
class QREG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QREG_ACQUIRE() { mu_.lock(); }
  void Unlock() QREG_RELEASE() { mu_.unlock(); }

  /// Returns true (with the lock held) iff the mutex was free. Pair a
  /// successful TryLock with MutexLock's adopt constructor so the release
  /// is still scoped.
  bool TryLock() QREG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII scoped lock over util::Mutex.
class QREG_SCOPED_CAPABILITY MutexLock {
 public:
  /// Tag type selecting the adopt constructor.
  struct Adopt {};

  explicit MutexLock(Mutex* mu) QREG_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  /// Adopts a mutex the caller already holds (e.g. after a successful
  /// TryLock) so the destructor releases it.
  MutexLock(Mutex* mu, Adopt) QREG_REQUIRES(mu) : mu_(mu) {}

  ~MutexLock() QREG_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable paired with util::Mutex. Every wait requires
/// the mutex held; spurious wakeups are expected — call sites loop on their
/// predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks, and reacquires *mu before returning.
  void Wait(Mutex* mu) QREG_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // The caller's scope still owns the mutex.
  }

  /// Like Wait() but gives up after `nanos`. Returns false iff the wait
  /// timed out (the mutex is reacquired either way). Non-positive `nanos`
  /// times out immediately.
  bool WaitFor(Mutex* mu, int64_t nanos) QREG_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lk, std::chrono::nanoseconds(nanos));
    lk.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_MUTEX_H_
