// Environment-variable configuration knobs for benches and examples.
//
// The paper's evaluation uses dataset sizes up to 10^10 rows; inside a
// container we default to laptop-scale sizes and let the operator raise them
// with QREG_* environment variables (see DESIGN.md section 3).

#ifndef QREG_UTIL_ENV_H_
#define QREG_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace qreg {
namespace util {

/// \brief Reads an integer env var, returning `def` if unset or unparsable.
int64_t GetEnvInt64(const char* name, int64_t def);

/// \brief Reads a double env var, returning `def` if unset or unparsable.
double GetEnvDouble(const char* name, double def);

/// \brief Reads a string env var, returning `def` if unset.
std::string GetEnvString(const char* name, const std::string& def);

/// \brief True if the env var is set to a truthy value ("1", "true", "on").
bool GetEnvBool(const char* name, bool def);

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_ENV_H_
