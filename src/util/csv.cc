#include "util/csv.h"

#include "util/string_util.h"

namespace qreg {
namespace util {

Status CsvReader::Open(const std::string& path) {
  if (in_.is_open()) return Status::FailedPrecondition("CsvReader already open");
  in_.open(path, std::ios::in);
  if (!in_.is_open()) return Status::IoError("cannot open for reading: " + path);
  path_ = path;
  line_ = 0;
  return Status::OK();
}

std::vector<std::string> CsvReader::ParseLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

bool CsvReader::ReadRow(std::vector<std::string>* fields) {
  fields->clear();
  if (!in_.is_open()) return false;
  std::string record;
  std::string line;
  // Accumulate physical lines until quotes are balanced (embedded newlines).
  bool have_any = false;
  while (std::getline(in_, line)) {
    ++line_;
    have_any = true;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    record += record.empty() ? line : "\n" + line;
    int quotes = 0;
    for (char c : record) quotes += (c == '"');
    if (quotes % 2 == 0) break;
  }
  if (!have_any) return false;
  *fields = ParseLine(record);
  return true;
}

Status CsvWriter::Open(const std::string& path) {
  if (out_.is_open()) return Status::FailedPrecondition("CsvWriter already open");
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  path_ = path;
  return Status::OK();
}

std::string CsvWriter::EscapeField(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) return Status::FailedPrecondition("CsvWriter not open");
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeField(fields[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IoError("write failed: " + path_);
  return Status::OK();
}

Status CsvWriter::WriteNumericRow(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(Format("%.10g", v));
  return WriteRow(fields);
}

Status CsvWriter::Close() {
  if (!out_.is_open()) return Status::OK();
  out_.close();
  if (out_.fail()) return Status::IoError("close failed: " + path_);
  return Status::OK();
}

}  // namespace util
}  // namespace qreg
