// Status / Result error model, in the style of Apache Arrow and RocksDB.
//
// Library code returns Status (or Result<T>) instead of throwing on expected
// failure modes (bad arguments, singular systems, I/O errors). Logic errors
// in release builds surface as StatusCode::kInternal.

#ifndef QREG_UTIL_STATUS_H_
#define QREG_UTIL_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

namespace qreg {
namespace util {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kResourceExhausted = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
  kUnavailable = 12,
};

/// \brief Human-readable name for a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Single source of truth for "may a client safely retry this?" —
/// shared by the net::Client retry layer and the shed-path tests, so the two
/// sides of the wire never disagree about what a typed rejection means.
///
/// Retryable: kUnavailable (the server is going away / refusing new work),
/// kResourceExhausted (a bounded queue was momentarily full — the shed
/// ladder's signal), and kIoError (a transport failure on a protocol whose
/// requests are all read-only, hence idempotent). Everything else is not:
/// kInvalidArgument (the request itself is wrong), kDeadlineExceeded (the
/// caller's budget is spent — retrying would grant a fresh one), kCancelled
/// (the caller gave up), and the remaining codes, which describe the request
/// or server state rather than a transient condition.
inline bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

/// \brief Result of an operation that can fail without a value payload.
///
/// Cheap to copy in the OK case (no allocation); error states carry a message.
///
/// Class-level [[nodiscard]]: a dropped Status is a swallowed failure, so
/// every by-value return warns unless the caller checks it (or launders it
/// through an explicit cast when discarding really is intended).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A bounded resource (queue, pool) is saturated; the caller may retry.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The request's deadline passed before the work completed.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The caller cancelled the request (util::CancellationToken).
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// The server is going away (drain, eviction) — safe to retry elsewhere.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or a typed error E (Status by default).
///
/// The default `Result<T>` behaves exactly as before: the error alternative
/// is a bare Status. A custom error type carries structured evidence with
/// the failure (e.g. service::ExecError = Status + the partial work done
/// before the failure); it must expose a `util::Status status` member and be
/// implicitly constructible from Status so `return SomeStatus(...)` and
/// QREG_RETURN_NOT_OK / QREG_ASSIGN_OR_RETURN keep working unchanged in
/// functions returning the richer Result.
///
/// Accessing the value of an errored Result aborts in debug builds; callers
/// must check ok() (or use QREG_ASSIGN_OR_RETURN).
template <typename T, typename E = Status>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (the common success path).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; `status` must not be OK.
  Result(Status status) : v_(E(std::move(status))) {  // NOLINT(runtime/explicit)
    assert(!this->status().ok() && "Result constructed from OK status");
  }
  /// Implicit from the typed error (no-op specialization when E == Status).
  template <typename U = E,
            typename = std::enable_if_t<!std::is_same_v<U, Status>>>
  Result(E error) : v_(std::move(error)) {  // NOLINT(runtime/explicit)
    assert(!this->status().ok() && "Result constructed from OK error");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// The Status of the error alternative (OK when this Result holds a value).
  /// For a custom E this is `error().status`, so call sites that only care
  /// about the code/message are insulated from the richer error type.
  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    if constexpr (std::is_same_v<E, Status>) {
      return std::get<E>(v_);
    } else {
      return std::get<E>(v_).status;
    }
  }

  /// The full typed error. Only valid when !ok().
  const E& error() const& {
    assert(!ok());
    return std::get<E>(v_);
  }
  E&& error() && {
    assert(!ok());
    return std::get<E>(std::move(v_));
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  /// Returns the value or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, E> v_;
};

}  // namespace util
}  // namespace qreg

/// Propagates a non-OK Status from the evaluated expression.
#define QREG_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::qreg::util::Status _st = (expr);           \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// assigns the value to `lhs`.
#define QREG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define QREG_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define QREG_ASSIGN_OR_RETURN_NAME(x, y) QREG_ASSIGN_OR_RETURN_CONCAT(x, y)
#define QREG_ASSIGN_OR_RETURN(lhs, rexpr) \
  QREG_ASSIGN_OR_RETURN_IMPL(QREG_ASSIGN_OR_RETURN_NAME(_res_, __LINE__), lhs, rexpr)

#endif  // QREG_UTIL_STATUS_H_
