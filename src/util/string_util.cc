#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace qreg {
namespace util {

std::string Format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (needed < 0) {
    va_end(ap2);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::memcmp(s.data(), prefix.data(), prefix.size()) == 0;
}

std::string HumanCount(double n) {
  if (n < 1e4) return Format("%.0f", n);
  return Format("%.1e", n);
}

}  // namespace util
}  // namespace qreg
