// Deterministic pseudo-random number generation.
//
// Every stochastic component in qreg takes an explicit 64-bit seed so that
// experiments are exactly reproducible run-to-run. The engine is
// xoshiro256** (Blackman & Vigna), seeded via SplitMix64, which is both
// faster and statistically stronger than std::mt19937_64 for our workloads.

#ifndef QREG_UTIL_RNG_H_
#define QREG_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace qreg {
namespace util {

/// \brief SplitMix64 step; used for seeding and cheap hash-like mixing.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Deterministic RNG with uniform / Gaussian / integer helpers.
///
/// Not thread-safe; create one Rng per thread or component.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
    has_gauss_ = false;
  }

  /// Next raw 64-bit value (xoshiro256**).
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n); n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double Gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * Uniform() - 1.0;
      v = 2.0 * Uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * f;
    has_gauss_ = true;
    return u * f;
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

/// \brief Derives `n` independent child seeds from a master seed.
std::vector<uint64_t> DeriveSeeds(uint64_t master_seed, size_t n);

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_RNG_H_
