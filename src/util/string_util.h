// Small string formatting/parsing helpers (no external dependencies).

#ifndef QREG_UTIL_STRING_UTIL_H_
#define QREG_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace qreg {
namespace util {

/// \brief printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \brief Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// \brief Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// \brief Human-readable count, e.g. 12000000 -> "1.2e+07" style short form.
std::string HumanCount(double n);

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_STRING_UTIL_H_
