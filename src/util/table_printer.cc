#include "util/table_printer.h"

#include <algorithm>

#include "util/string_util.h"

namespace qreg {
namespace util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddNumericRow(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(Format("%.*g", precision, v));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());

  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell;
      if (c + 1 < ncols) {
        for (size_t pad = cell.size(); pad < widths[c] + 2; ++pad) os << ' ';
      }
    }
    os << '\n';
  };

  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < ncols; ++c) total += widths[c] + (c + 1 < ncols ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

}  // namespace util
}  // namespace qreg
