// Minimal CSV writer for experiment outputs (bench/out/*.csv).

#ifndef QREG_UTIL_CSV_H_
#define QREG_UTIL_CSV_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace qreg {
namespace util {

/// \brief Reads a CSV file row by row (RFC-4180-style quoting).
class CsvReader {
 public:
  CsvReader() = default;

  /// Opens `path` for reading.
  Status Open(const std::string& path);

  /// Reads the next record into `fields` (cleared first). Returns true if a
  /// record was read, false at end of file. Handles quoted fields containing
  /// commas, escaped quotes (""), and embedded newlines.
  bool ReadRow(std::vector<std::string>* fields);

  /// 1-based line number of the record most recently returned.
  int64_t line_number() const { return line_; }

  bool is_open() const { return in_.is_open(); }

  /// Parses one CSV record from a string (exposed for testing).
  static std::vector<std::string> ParseLine(const std::string& line);

 private:
  std::ifstream in_;
  std::string path_;
  int64_t line_ = 0;
};

/// \brief Streams rows to a CSV file; fields containing separators are quoted.
class CsvWriter {
 public:
  CsvWriter() = default;

  /// Opens `path` for writing (truncates). Creates parent dirs is NOT done;
  /// callers pass paths in existing directories.
  Status Open(const std::string& path);

  /// Writes a header or data row. No-op with error status if not open.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with "%.10g".
  Status WriteNumericRow(const std::vector<double>& values);

  Status Close();

  bool is_open() const { return out_.is_open(); }

  /// Escapes one CSV field (quotes if it contains comma/quote/newline).
  static std::string EscapeField(const std::string& field);

 private:
  std::ofstream out_;
  std::string path_;
};

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_CSV_H_
