// Wall-clock timing helpers used by the exact query engine and benches.

#ifndef QREG_UTIL_TIMER_H_
#define QREG_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace qreg {
namespace util {

/// \brief Monotonic nanoseconds since an arbitrary epoch.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief Simple restartable stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}

  void Restart() { start_ = NowNanos(); }

  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedMicros() const { return static_cast<double>(ElapsedNanos()) / 1e3; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) / 1e6; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) / 1e9; }

 private:
  int64_t start_;
};

/// \brief Accumulates durations across repeated timed sections.
class TimeAccumulator {
 public:
  void Add(int64_t nanos) {
    total_nanos_ += nanos;
    ++count_;
  }

  int64_t total_nanos() const { return total_nanos_; }
  int64_t count() const { return count_; }

  double MeanMillis() const {
    return count_ == 0 ? 0.0 : static_cast<double>(total_nanos_) / 1e6 /
                                   static_cast<double>(count_);
  }
  double TotalMillis() const { return static_cast<double>(total_nanos_) / 1e6; }

  void Reset() {
    total_nanos_ = 0;
    count_ = 0;
  }

 private:
  int64_t total_nanos_ = 0;
  int64_t count_ = 0;
};

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_TIMER_H_
