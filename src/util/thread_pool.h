// Fixed-size worker pool with a bounded MPMC task queue — the execution
// substrate of both the service layer's query router (inter-query
// parallelism) and the exact engine's partitioned scans (intra-query
// parallelism).
//
// Design points (following the in-RDBMS serving architectures the service
// layer is modeled on):
//   - bounded queue: a saturated service applies backpressure at Submit()
//     (or sheds via TrySubmit()) instead of buffering unboundedly;
//   - 0 workers = synchronous mode: Submit() runs the task on the calling
//     thread. This gives benches and tests a single-threaded baseline with
//     identical code paths.

#ifndef QREG_UTIL_THREAD_POOL_H_
#define QREG_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qreg {
namespace util {

/// \brief Blocks until a preset number of events have been counted down.
/// Used to await completion of a batch of pool tasks without futures.
class BlockingCounter {
 public:
  explicit BlockingCounter(int64_t initial_count) : count_(initial_count) {}

  BlockingCounter(const BlockingCounter&) = delete;
  BlockingCounter& operator=(const BlockingCounter&) = delete;

  void DecrementCount() QREG_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (--count_ <= 0) cv_.NotifyAll();
  }

  void Wait() QREG_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (count_ > 0) cv_.Wait(&mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int64_t count_ QREG_GUARDED_BY(mu_);
};

/// \brief Fixed-size worker pool over a bounded MPMC queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 means synchronous mode (tasks run on
  /// the submitting thread). `queue_capacity` bounds the number of queued,
  /// not-yet-running tasks; Submit blocks while the queue is full.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 256);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains already-queued tasks, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task, blocking while the queue is at capacity (backpressure).
  /// In synchronous mode the task runs inline before Submit returns.
  void Submit(std::function<void()> task);

  /// Enqueues without blocking; returns false if the queue is full (or the
  /// pool is shutting down). In synchronous mode runs inline, returns true.
  bool TrySubmit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return capacity_; }

  /// Tasks queued but not yet picked up by a worker (approximate).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<std::function<void()>> queue_ QREG_GUARDED_BY(mu_);
  size_t capacity_;  // Const after construction.
  bool stop_ QREG_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // Const after construction.
};

}  // namespace util
}  // namespace qreg

#endif  // QREG_UTIL_THREAD_POOL_H_
