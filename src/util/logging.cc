#include "util/logging.h"

#include <cstdio>

#include "util/env.h"

namespace qreg {
namespace util {

namespace {

LogLevel ParseLevel(const std::string& s) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off" || s == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel g_min_level = ParseLevel(GetEnvString("QREG_LOG_LEVEL", "info"));

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level; }

void SetMinLogLevel(LogLevel level) { g_min_level = level; }

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_min_level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace util
}  // namespace qreg
