#include "util/status.h"

namespace qreg {
namespace util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace util
}  // namespace qreg
