// Query model: q = [x, θ] (Definition 4), query-space distance
// (Definition 5), the overlap predicate A (Definition 6), and the degree of
// overlapping δ (Equation 9).

#ifndef QREG_QUERY_QUERY_H_
#define QREG_QUERY_QUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "storage/lp_norm.h"

namespace qreg {
namespace query {

/// \brief A dNN analytics query: ball of radius theta around center.
struct Query {
  std::vector<double> center;  ///< x in R^d
  double theta = 0.0;          ///< radius θ > 0

  Query() = default;
  Query(std::vector<double> c, double t) : center(std::move(c)), theta(t) {}

  size_t dimension() const { return center.size(); }

  /// The (d+1)-vector [x, θ] that lives in the query space Q.
  std::vector<double> ToVector() const;

  /// Parses from [x, θ] layout (inverse of ToVector).
  static Query FromVector(const std::vector<double>& v);

  std::string ToString() const;
};

/// Exact equality of [x, θ] vectors — the fast path of the service layer's
/// semantic answer cache (a repeated query is a trivially-admissible hit).
inline bool operator==(const Query& a, const Query& b) {
  return a.theta == b.theta && a.center == b.center;
}
inline bool operator!=(const Query& a, const Query& b) { return !(a == b); }

/// \brief Squared query-space distance ||x - x'||^2 + (θ-θ')^2
/// (Definition 5).
double QueryDistanceSquared(const Query& a, const Query& b);

/// \brief Query-space L2 distance.
double QueryDistance(const Query& a, const Query& b);

/// \brief Overlap predicate A(q, q'): the two balls intersect under `norm`
/// (Definition 6): ||x - x'||_p <= θ + θ'.
bool Overlaps(const Query& a, const Query& b,
              const storage::LpNorm& norm = storage::LpNorm::L2());

/// \brief Degree of overlapping δ(q, q') in [0, 1] (Equation 9):
/// 1 - max(||x - x'||_2, |θ - θ'|) / (θ + θ') when A holds, else 0.
///
/// δ = 1 exactly for identical balls; δ -> 0 as the balls merely touch or as
/// one shrinks to nothing inside the other.
double DegreeOfOverlap(const Query& a, const Query& b,
                       const storage::LpNorm& norm = storage::LpNorm::L2());

/// \brief A (query, answer) training pair streamed to the model (Figure 2).
struct QueryAnswer {
  Query q;
  double y = 0.0;  ///< Exact Q1 answer: average of u over D(x, θ).
};

}  // namespace query
}  // namespace qreg

#endif  // QREG_QUERY_QUERY_H_
