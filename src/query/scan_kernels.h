// Fused per-block accumulators for the exact operators: the BlockKernels
// the ExactEngine drives through SpatialIndex::BlockVisit[Partition].
//
// Each kernel consumes a filtered BlockSpan's selected lanes in one tight
// loop — no per-row virtual or std::function dispatch — and keeps the
// MADlib-style transition state (sum / moments / Gram matrix / id list)
// that partitioned scans later merge in plan order.
//
// Scalar accumulators are Kahan-compensated. Compensation is an accuracy
// measure, not the determinism mechanism: bit-for-bit reproducibility
// across thread counts comes from the fixed partition plan and the fixed
// plan-order merge (each partition's kernel sees exactly the same rows in
// the same order regardless of which worker runs it). Compensation keeps
// those per-partition partials (and the serial whole-scan stream) accurate
// enough that plan-shape changes stay within ~1 ulp of each other.

#ifndef QREG_QUERY_SCAN_KERNELS_H_
#define QREG_QUERY_SCAN_KERNELS_H_

#include <cstdint>
#include <vector>

#include "linalg/ols.h"
#include "storage/spatial_index.h"

namespace qreg {
namespace query {

/// \brief Kahan-compensated running sum: adds carry the rounding residue of
/// the previous add, so a long stream loses O(1) ulps instead of O(n).
struct KahanSum {
  double sum = 0.0;
  double carry = 0.0;

  void Add(double v) {
    const double y = v - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }

  double value() const { return sum; }
};

/// \brief Q1 transition state: compensated Σu and the subspace cardinality.
class SumBlockKernel : public storage::BlockKernel {
 public:
  void OnBlock(const storage::BlockSpan& span) override {
    for (int32_t k = 0; k < span.count; ++k) sum_.Add(span.UAt(k));
    count_ += span.count;
  }

  double sum() const { return sum_.value(); }
  int64_t count() const { return count_; }

 private:
  KahanSum sum_;
  int64_t count_ = 0;
};

/// \brief Q1 moment-extension transition state: compensated Σu and Σu².
class MomentsBlockKernel : public storage::BlockKernel {
 public:
  void OnBlock(const storage::BlockSpan& span) override {
    for (int32_t k = 0; k < span.count; ++k) {
      const double u = span.UAt(k);
      sum_.Add(u);
      sum_sq_.Add(u * u);
    }
    count_ += span.count;
  }

  double sum() const { return sum_.value(); }
  double sum_sq() const { return sum_sq_.value(); }
  int64_t count() const { return count_; }

 private:
  KahanSum sum_;
  KahanSum sum_sq_;
  int64_t count_ = 0;
};

/// \brief Q2 transition state: fused Gram-matrix/moment-vector update over
/// the selected lanes of each block (OlsAccumulator::AddBlock).
class GramBlockKernel : public storage::BlockKernel {
 public:
  explicit GramBlockKernel(linalg::OlsAccumulator* acc) : acc_(acc) {}

  void OnBlock(const storage::BlockSpan& span) override {
    acc_->AddBlock(span.xs, span.us, span.sel, span.count);
  }

 private:
  linalg::OlsAccumulator* acc_;
};

/// \brief Select transition state: the matched row ids in scan order.
class CollectIdsBlockKernel : public storage::BlockKernel {
 public:
  explicit CollectIdsBlockKernel(std::vector<int64_t>* ids) : ids_(ids) {}

  void OnBlock(const storage::BlockSpan& span) override {
    for (int32_t k = 0; k < span.count; ++k) ids_->push_back(span.IdAt(k));
  }

 private:
  std::vector<int64_t>* ids_;
};

}  // namespace query
}  // namespace qreg

#endif  // QREG_QUERY_SCAN_KERNELS_H_
