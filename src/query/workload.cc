#include "query/workload.h"

#include <algorithm>

#include "util/string_util.h"

namespace qreg {
namespace query {

WorkloadConfig WorkloadConfig::Cube(size_t d, double lo, double hi,
                                    double theta_mean, double theta_stddev,
                                    uint64_t seed) {
  WorkloadConfig c;
  c.d = d;
  c.center_lo.assign(d, lo);
  c.center_hi.assign(d, hi);
  c.theta_mean = theta_mean;
  c.theta_stddev = theta_stddev;
  c.seed = seed;
  return c;
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

util::Status WorkloadGenerator::Validate() const {
  if (config_.d == 0) return util::Status::InvalidArgument("d must be positive");
  if (config_.center_lo.size() != config_.d || config_.center_hi.size() != config_.d) {
    return util::Status::InvalidArgument("center bounds must have size d");
  }
  for (size_t i = 0; i < config_.d; ++i) {
    if (config_.center_lo[i] > config_.center_hi[i]) {
      return util::Status::InvalidArgument(
          util::Format("center_lo[%zu] > center_hi[%zu]", i, i));
    }
  }
  if (config_.theta_mean <= 0.0) {
    return util::Status::InvalidArgument("theta_mean must be positive");
  }
  return util::Status::OK();
}

Query WorkloadGenerator::Next() {
  Query q;
  q.center.resize(config_.d);
  for (size_t i = 0; i < config_.d; ++i) {
    q.center[i] = rng_.Uniform(config_.center_lo[i], config_.center_hi[i]);
  }
  q.theta = std::max(config_.theta_min,
                     rng_.Gaussian(config_.theta_mean, config_.theta_stddev));
  return q;
}

std::vector<Query> WorkloadGenerator::Generate(int64_t n) {
  std::vector<Query> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace query
}  // namespace qreg
