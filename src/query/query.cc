#include "query/query.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace qreg {
namespace query {

std::vector<double> Query::ToVector() const {
  std::vector<double> v = center;
  v.push_back(theta);
  return v;
}

Query Query::FromVector(const std::vector<double>& v) {
  assert(!v.empty());
  Query q;
  q.center.assign(v.begin(), v.end() - 1);
  q.theta = v.back();
  return q;
}

std::string Query::ToString() const {
  std::string out = "Q([";
  for (size_t i = 0; i < center.size(); ++i) {
    out += util::Format("%.4g", center[i]);
    if (i + 1 < center.size()) out += ", ";
  }
  out += util::Format("], θ=%.4g)", theta);
  return out;
}

double QueryDistanceSquared(const Query& a, const Query& b) {
  assert(a.dimension() == b.dimension());
  double s = 0.0;
  for (size_t i = 0; i < a.center.size(); ++i) {
    const double t = a.center[i] - b.center[i];
    s += t * t;
  }
  const double dt = a.theta - b.theta;
  return s + dt * dt;
}

double QueryDistance(const Query& a, const Query& b) {
  return std::sqrt(QueryDistanceSquared(a, b));
}

bool Overlaps(const Query& a, const Query& b, const storage::LpNorm& norm) {
  assert(a.dimension() == b.dimension());
  const double theta_sum = a.theta + b.theta;
  if (norm.kind() == storage::LpKind::kL2) {
    // Compare squared distances: the sqrt buys nothing for a threshold test
    // and this is the δ-cache's per-candidate hot path.
    return norm.Distance2(a.center.data(), b.center.data(), a.dimension()) <=
           theta_sum * theta_sum;
  }
  const double dist =
      norm.Distance(a.center.data(), b.center.data(), a.dimension());
  return dist <= theta_sum;
}

double DegreeOfOverlap(const Query& a, const Query& b,
                       const storage::LpNorm& norm) {
  if (!Overlaps(a, b, norm)) return 0.0;
  const double center_dist =
      storage::LpNorm::L2().Distance(a.center.data(), b.center.data(), a.dimension());
  const double theta_sum = a.theta + b.theta;
  if (theta_sum <= 0.0) return 0.0;
  const double ratio =
      std::max(center_dist, std::fabs(a.theta - b.theta)) / theta_sum;
  return std::clamp(1.0 - ratio, 0.0, 1.0);
}

}  // namespace query
}  // namespace qreg
