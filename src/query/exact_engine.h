// Exact query evaluation over the storage engine: the ground truth the
// paper's model is trained from and compared against.
//
//  - Q1 (MeanValue): average of u over D(x, θ)          [Definition 4]
//  - Q2 (Regression): multivariate OLS over D(x, θ)     [the REG baseline]
//
// Both run the selection through a SpatialIndex access path and aggregate in
// one streaming pass (no subspace materialization).

#ifndef QREG_QUERY_EXACT_ENGINE_H_
#define QREG_QUERY_EXACT_ENGINE_H_

#include <cstdint>
#include <vector>

#include "linalg/ols.h"
#include "query/query.h"
#include "storage/spatial_index.h"
#include "storage/table.h"
#include "util/status.h"

namespace qreg {
namespace query {

/// \brief Execution statistics of one exact query.
struct ExecStats {
  int64_t tuples_examined = 0;
  int64_t tuples_matched = 0;
  int64_t nanos = 0;

  double millis() const { return static_cast<double>(nanos) / 1e6; }
};

/// \brief Result of an exact Q1 query.
struct MeanValueResult {
  double mean = 0.0;
  int64_t count = 0;  ///< n_θ(x): cardinality of the selected subspace.
};

/// \brief First two moments of u over a subspace (the high-order-moment
/// extension of Q1 from the paper's future-work list).
struct MomentsResult {
  double mean = 0.0;
  double second_moment = 0.0;  ///< E[u²] over D(x, θ).
  double variance = 0.0;       ///< Population variance (clamped at 0).
  int64_t count = 0;
};

/// \brief Exact Q1/Q2 executor over a table + access path.
class ExactEngine {
 public:
  /// Both referents must outlive the engine.
  ExactEngine(const storage::Table& table, const storage::SpatialIndex& index,
              storage::LpNorm norm = storage::LpNorm::L2())
      : table_(table), index_(index), norm_(norm) {}

  /// Q1: mean of u over D(x, θ). NotFound if the subspace is empty.
  util::Result<MeanValueResult> MeanValue(const Query& q,
                                          ExecStats* stats = nullptr) const;

  /// Q1 moment extension: mean, second moment and variance of u over
  /// D(x, θ) in one streaming pass. NotFound if the subspace is empty.
  util::Result<MomentsResult> Moments(const Query& q,
                                      ExecStats* stats = nullptr) const;

  /// Q2: OLS fit of u on x over D(x, θ) (the REG baseline).
  /// NotFound if the subspace is empty.
  util::Result<linalg::OlsFit> Regression(const Query& q,
                                          ExecStats* stats = nullptr) const;

  /// Row ids inside D(x, θ) (helper for baselines that need raw points).
  std::vector<int64_t> Select(const Query& q, ExecStats* stats = nullptr) const;

  const storage::Table& table() const { return table_; }
  const storage::SpatialIndex& index() const { return index_; }
  const storage::LpNorm& norm() const { return norm_; }

 private:
  const storage::Table& table_;
  const storage::SpatialIndex& index_;
  storage::LpNorm norm_;
};

}  // namespace query
}  // namespace qreg

#endif  // QREG_QUERY_EXACT_ENGINE_H_
