// Exact query evaluation over the storage engine: the ground truth the
// paper's model is trained from and compared against.
//
//  - Q1 (MeanValue): average of u over D(x, θ)          [Definition 4]
//  - Q2 (Regression): multivariate OLS over D(x, θ)     [the REG baseline]
//
// Both run the selection through a SpatialIndex access path and aggregate in
// one streaming pass (no subspace materialization). Execution is
// block-at-a-time: the access path streams filtered candidate blocks into
// fused accumulator kernels (query/scan_kernels.h) — one virtual call per
// block instead of a type-erased std::function call per row, with the Lp
// filter kernel resolved once per scan. Scalar accumulators are
// Kahan-compensated; see scan_kernels.h for why determinism nevertheless
// comes from the plan-order merge, not the compensation.
//
// With a ParallelOptions attached, the selection is split into the access
// path's ScanPartitions, each partition fills its own accumulator (the
// MADlib-style transition state), partitions execute on a ThreadPool, and
// the partials merge in partition order. The partition plan and merge order
// depend only on the data, so answers are bit-for-bit identical across
// thread counts — including the 0-worker inline mode tests use as the
// deterministic baseline.

#ifndef QREG_QUERY_EXACT_ENGINE_H_
#define QREG_QUERY_EXACT_ENGINE_H_

#include <cstdint>
#include <vector>

#include "linalg/ols.h"
#include "query/query.h"
#include "storage/spatial_index.h"
#include "storage/table.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qreg {
namespace query {

/// \brief Intra-query parallelism for the exact engine.
///
/// The answer is a pure function of the partition plan, never of the pool:
/// a null pool (or one with 0 workers) runs the same partitioned reduction
/// inline, bit-for-bit identical to any worker count.
struct ParallelOptions {
  /// Borrowed worker pool; must outlive the engine's use. Null runs
  /// partitions inline on the calling thread.
  util::ThreadPool* pool = nullptr;

  /// Partition-plan size passed to SpatialIndex::MakePartitions. 0 derives
  /// a data-driven default (~1 partition per 8192 rows, capped at 64) —
  /// deliberately independent of pool size so answers do not change when
  /// the service is resized.
  size_t target_partitions = 0;
};

/// \brief Execution statistics of one exact query. On a deadline/cancel
/// abort the tuple counters hold the *partial* work done before the trip,
/// and `chunks_completed < chunks_total` quantifies how far the scan got.
struct ExecStats {
  int64_t tuples_examined = 0;
  int64_t tuples_matched = 0;
  int64_t nanos = 0;
  int64_t chunks_completed = 0;  ///< Partition chunks fully executed.
  int64_t chunks_total = 0;      ///< Chunks in the plan (0 = unpartitioned).

  double millis() const { return static_cast<double>(nanos) / 1e6; }
};

/// \brief Result of an exact Q1 query.
struct MeanValueResult {
  double mean = 0.0;
  int64_t count = 0;  ///< n_θ(x): cardinality of the selected subspace.
};

/// \brief First two moments of u over a subspace (the high-order-moment
/// extension of Q1 from the paper's future-work list).
struct MomentsResult {
  double mean = 0.0;
  double second_moment = 0.0;  ///< E[u²] over D(x, θ).
  double variance = 0.0;       ///< Population variance (clamped at 0).
  int64_t count = 0;
};

/// \brief Exact Q1/Q2 executor over a table + access path.
class ExactEngine {
 public:
  /// Both referents must outlive the engine.
  ExactEngine(const storage::Table& table, const storage::SpatialIndex& index,
              storage::LpNorm norm = storage::LpNorm::L2())
      : table_(table), index_(index), norm_(norm) {}

  /// Q1: mean of u over D(x, θ). NotFound if the subspace is empty.
  ///
  /// With a non-null `control`, the scan honors the request lifecycle: an
  /// already-expired deadline (or tripped token) returns the typed status
  /// without visiting any partition, and a mid-scan trip aborts within one
  /// chunk-claim, returning kDeadlineExceeded / kCancelled with the partial
  /// work recorded in `stats`. A control forces the partitioned-reduction
  /// path (inline when no pool is attached) so checks happen per chunk,
  /// never per row. Same for Moments and Regression below.
  util::Result<MeanValueResult> MeanValue(
      const Query& q, ExecStats* stats = nullptr,
      const util::ExecControl* control = nullptr) const;

  /// Q1 moment extension: mean, second moment and variance of u over
  /// D(x, θ) in one streaming pass. NotFound if the subspace is empty.
  util::Result<MomentsResult> Moments(
      const Query& q, ExecStats* stats = nullptr,
      const util::ExecControl* control = nullptr) const;

  /// Q2: OLS fit of u on x over D(x, θ) (the REG baseline).
  /// NotFound if the subspace is empty.
  util::Result<linalg::OlsFit> Regression(
      const Query& q, ExecStats* stats = nullptr,
      const util::ExecControl* control = nullptr) const;

  /// Row ids inside D(x, θ) (helper for baselines that need raw points).
  /// An empty subspace yields an empty vector, not NotFound. Honors the
  /// request lifecycle exactly like MeanValue: on a deadline/cancel trip the
  /// typed status returns within one chunk-claim with partial work in
  /// `stats` (the partially collected ids are discarded — a truncated
  /// selection is not a usable answer).
  util::Result<std::vector<int64_t>> Select(
      const Query& q, ExecStats* stats = nullptr,
      const util::ExecControl* control = nullptr) const;

  /// Attaches (or, with a default-constructed value, detaches) intra-query
  /// parallelism. Not thread-safe against in-flight queries: configure
  /// before serving traffic. The engine never owns the pool.
  void set_parallel(ParallelOptions options) { parallel_ = options; }
  const ParallelOptions& parallel() const { return parallel_; }

  /// True when queries run the partitioned-reduction path (a parallel
  /// options struct was attached, even one that executes inline).
  bool parallel_enabled() const {
    return parallel_.pool != nullptr || parallel_.target_partitions > 0;
  }

  /// The partition plan queries under the current options would use.
  std::vector<storage::ScanPartition> PartitionPlan() const;

  const storage::Table& table() const { return table_; }
  const storage::SpatialIndex& index() const { return index_; }
  const storage::LpNorm& norm() const { return norm_; }

 private:
  /// Outcome of a chunked run: how many chunks executed their body, and the
  /// lifecycle status that aborted the run (OK when it ran to completion).
  struct ChunkRunResult {
    size_t executed = 0;
    util::Status status;
  };

  /// Runs `body(i)` for every i in [0, chunks). Pool workers help through an
  /// atomic claim counter and the caller always participates, so nesting on
  /// a shared pool degrades to inline execution instead of deadlocking.
  /// With a non-null `control`, its Check() runs before each chunk's body;
  /// on failure the remaining chunks are claimed-and-skipped (a fast drain,
  /// not a hard stop) and the failing status is returned.
  ChunkRunResult RunChunks(size_t chunks,
                           const std::function<void(size_t)>& body,
                           const util::ExecControl* control) const;

  const storage::Table& table_;
  const storage::SpatialIndex& index_;
  storage::LpNorm norm_;
  ParallelOptions parallel_;
};

}  // namespace query
}  // namespace qreg

#endif  // QREG_QUERY_EXACT_ENGINE_H_
