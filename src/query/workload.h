// Workload generation: the evaluation setup of section VI-A — query centers
// uniform over the attribute domain, radii Gaussian θ ~ N(µθ, σθ²) truncated
// to be positive.

#ifndef QREG_QUERY_WORKLOAD_H_
#define QREG_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "util/rng.h"
#include "util/status.h"

namespace qreg {
namespace query {

/// \brief Parameters of a random query workload.
struct WorkloadConfig {
  size_t d = 2;                       ///< Input-space dimension.
  std::vector<double> center_lo;      ///< Per-dim lower bound (size d).
  std::vector<double> center_hi;      ///< Per-dim upper bound (size d).
  double theta_mean = 0.1;            ///< µθ.
  double theta_stddev = 0.1;          ///< σθ.
  double theta_min = 1e-6;            ///< Truncation floor (θ must be > 0).
  uint64_t seed = 1;

  /// Uniform cube [lo, hi]^d with the given radius distribution.
  static WorkloadConfig Cube(size_t d, double lo, double hi, double theta_mean,
                             double theta_stddev, uint64_t seed);
};

/// \brief Deterministic stream of random queries.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  /// Validates bounds/dimensions.
  util::Status Validate() const;

  /// Next random query (uniform center, truncated-Gaussian radius).
  Query Next();

  /// Generates `n` queries.
  std::vector<Query> Generate(int64_t n);

  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  util::Rng rng_;
};

}  // namespace query
}  // namespace qreg

#endif  // QREG_QUERY_WORKLOAD_H_
