#include "query/exact_engine.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "query/scan_kernels.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace qreg {
namespace query {

namespace {

// Data-driven plan size: enough partitions to spread a big scan over many
// cores, few enough that per-partition setup stays negligible. Must not
// depend on the pool, so resizing the service never changes answers.
constexpr int64_t kRowsPerPartition = 8192;
constexpr int64_t kMaxPartitions = 64;

MeanValueResult MakeMeanResult(double sum, int64_t count) {
  MeanValueResult r;
  r.mean = sum / static_cast<double>(count);
  r.count = count;
  return r;
}

// Admission-time lifecycle check shared by the query paths: an already
// expired/cancelled request returns its typed status with zeroed (but
// timed) stats, before any partition is visited.
util::Status CheckAdmission(const util::ExecControl* control, ExecStats* stats,
                            const util::Stopwatch& sw) {
  if (control == nullptr) return util::Status::OK();
  util::Status st = control->Check();
  if (!st.ok() && stats != nullptr) {
    *stats = ExecStats();
    stats->nanos = sw.ElapsedNanos();
  }
  return st;
}

// Per-chunk lifecycle check (test hook first, then the real check) shared
// by the inline loop and the pooled Drain so their ordering never diverges.
util::Status CheckChunk(const util::ExecControl& control, size_t chunk) {
  if (control.on_chunk_for_testing) control.on_chunk_for_testing(chunk);
  return control.Check();
}

}  // namespace

std::vector<storage::ScanPartition> ExactEngine::PartitionPlan() const {
  size_t target = parallel_.target_partitions;
  if (target == 0) {
    target = static_cast<size_t>(std::max<int64_t>(
        1, std::min(kMaxPartitions, table_.num_rows() / kRowsPerPartition)));
  }
  return index_.MakePartitions(target);
}

namespace {

// Heap-shared chunk-claiming state: helper tasks hold a shared_ptr, so one
// that only gets scheduled after the query finished (its chunks all claimed
// by others) just observes an empty counter and exits — it never has to run
// before the caller may return, and never touches the caller's stack.
struct ChunkState {
  std::atomic<size_t> next{0};
  size_t chunks = 0;
  // Only dereferenced for a successfully claimed chunk, and every chunk is
  // claimed and finished before the owning RunChunks call returns.
  const std::function<void(size_t)>* body = nullptr;
  const util::ExecControl* control = nullptr;  // Null = no lifecycle checks.
  // First lifecycle failure wins: the exchange on `aborted` elects a single
  // writer for `abort_status`, and later claimants skip their bodies so the
  // remaining chunks drain in claim-counter time instead of scan time.
  std::atomic<bool> aborted{false};
  util::Status abort_status;
  std::atomic<size_t> executed{0};
  util::Mutex mu;
  util::CondVar cv;
  size_t completed QREG_GUARDED_BY(mu) = 0;

  void Drain() {
    size_t done_here = 0;
    for (size_t i = next.fetch_add(1); i < chunks; i = next.fetch_add(1)) {
      if (control != nullptr && !aborted.load(std::memory_order_acquire)) {
        util::Status st = CheckChunk(*control, i);
        if (!st.ok() && !aborted.exchange(true, std::memory_order_acq_rel)) {
          abort_status = std::move(st);
        }
      }
      if (!aborted.load(std::memory_order_acquire)) {
        (*body)(i);
        executed.fetch_add(1, std::memory_order_relaxed);
      }
      ++done_here;
    }
    if (done_here > 0) {
      util::MutexLock lock(&mu);
      completed += done_here;
      if (completed == chunks) cv.NotifyAll();
    }
  }
};

}  // namespace

ExactEngine::ChunkRunResult ExactEngine::RunChunks(
    size_t chunks, const std::function<void(size_t)>& body,
    const util::ExecControl* control) const {
  ChunkRunResult result;
  util::ThreadPool* pool = parallel_.pool;
  if (pool == nullptr || pool->num_threads() == 0 || chunks <= 1) {
    for (size_t i = 0; i < chunks; ++i) {
      if (control != nullptr) {
        util::Status st = CheckChunk(*control, i);
        if (!st.ok()) {
          result.status = std::move(st);
          return result;
        }
      }
      body(i);
      ++result.executed;
    }
    return result;
  }
  auto state = std::make_shared<ChunkState>();
  state->chunks = chunks;
  state->body = &body;
  state->control = control;
  const size_t helpers = std::min(pool->num_threads(), chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    // TrySubmit, never Submit: when the pool is saturated (e.g. this query
    // is itself running on a pool worker) the caller just keeps more chunks
    // for itself instead of risking a queue-full deadlock.
    if (!pool->TrySubmit([state] { state->Drain(); })) break;
  }
  // The caller always participates and the wait is on *chunk* completion,
  // not helper completion: progress never depends on a queued helper ever
  // being scheduled (it may sit behind other queries' tasks forever).
  state->Drain();
  {
    util::MutexLock lock(&state->mu);
    while (state->completed != state->chunks) state->cv.Wait(&state->mu);
  }
  result.executed = state->executed.load(std::memory_order_relaxed);
  if (state->aborted.load(std::memory_order_acquire)) {
    result.status = state->abort_status;
  }
  return result;
}

util::Result<MeanValueResult> ExactEngine::MeanValue(
    const Query& q, ExecStats* stats, const util::ExecControl* control) const {
  util::Stopwatch sw;
  storage::SelectionStats sel;
  double sum = 0.0;
  int64_t count = 0;
  ChunkRunResult run;
  QREG_RETURN_NOT_OK(CheckAdmission(control, stats, sw));
  if (!parallel_enabled() && control == nullptr) {
    SumBlockKernel kernel;
    index_.BlockVisit(q.center.data(), q.theta, norm_, &kernel, &sel);
    sum = kernel.sum();
    count = kernel.count();
  } else {
    const std::vector<storage::ScanPartition> plan = PartitionPlan();
    struct Part {
      SumBlockKernel kernel;
      storage::SelectionStats sel;
    };
    std::vector<Part> parts(plan.size());
    run = RunChunks(
        plan.size(),
        [this, &q, &plan, &parts](size_t i) {
          Part& p = parts[i];
          index_.BlockVisitPartition(plan[i], q.center.data(), q.theta, norm_,
                                     &p.kernel, &p.sel);
        },
        control);
    for (const Part& p : parts) {  // Deterministic: always plan order.
      sum += p.kernel.sum();
      count += p.kernel.count();
      sel.tuples_examined += p.sel.tuples_examined;
      sel.tuples_matched += p.sel.tuples_matched;
    }
    if (stats != nullptr) {
      stats->chunks_completed = static_cast<int64_t>(run.executed);
      stats->chunks_total = static_cast<int64_t>(plan.size());
    }
  }
  if (stats != nullptr) {
    stats->tuples_examined = sel.tuples_examined;
    stats->tuples_matched = sel.tuples_matched;
    stats->nanos = sw.ElapsedNanos();
  }
  if (!run.status.ok()) return run.status;
  if (count == 0) {
    return util::Status::NotFound("empty data subspace D(x, theta)");
  }
  return MakeMeanResult(sum, count);
}

util::Result<MomentsResult> ExactEngine::Moments(
    const Query& q, ExecStats* stats, const util::ExecControl* control) const {
  util::Stopwatch sw;
  storage::SelectionStats sel;
  double sum = 0.0;
  double sum_sq = 0.0;
  int64_t count = 0;
  ChunkRunResult run;
  QREG_RETURN_NOT_OK(CheckAdmission(control, stats, sw));
  if (!parallel_enabled() && control == nullptr) {
    MomentsBlockKernel kernel;
    index_.BlockVisit(q.center.data(), q.theta, norm_, &kernel, &sel);
    sum = kernel.sum();
    sum_sq = kernel.sum_sq();
    count = kernel.count();
  } else {
    const std::vector<storage::ScanPartition> plan = PartitionPlan();
    struct Part {
      MomentsBlockKernel kernel;
      storage::SelectionStats sel;
    };
    std::vector<Part> parts(plan.size());
    run = RunChunks(
        plan.size(),
        [this, &q, &plan, &parts](size_t i) {
          Part& p = parts[i];
          index_.BlockVisitPartition(plan[i], q.center.data(), q.theta, norm_,
                                     &p.kernel, &p.sel);
        },
        control);
    for (const Part& p : parts) {
      sum += p.kernel.sum();
      sum_sq += p.kernel.sum_sq();
      count += p.kernel.count();
      sel.tuples_examined += p.sel.tuples_examined;
      sel.tuples_matched += p.sel.tuples_matched;
    }
    if (stats != nullptr) {
      stats->chunks_completed = static_cast<int64_t>(run.executed);
      stats->chunks_total = static_cast<int64_t>(plan.size());
    }
  }
  if (stats != nullptr) {
    stats->tuples_examined = sel.tuples_examined;
    stats->tuples_matched = sel.tuples_matched;
    stats->nanos = sw.ElapsedNanos();
  }
  if (!run.status.ok()) return run.status;
  if (count == 0) {
    return util::Status::NotFound("empty data subspace D(x, theta)");
  }
  MomentsResult r;
  r.count = count;
  r.mean = sum / static_cast<double>(count);
  r.second_moment = sum_sq / static_cast<double>(count);
  r.variance = std::max(0.0, r.second_moment - r.mean * r.mean);
  return r;
}

util::Result<linalg::OlsFit> ExactEngine::Regression(
    const Query& q, ExecStats* stats, const util::ExecControl* control) const {
  util::Stopwatch sw;
  storage::SelectionStats sel;
  linalg::OlsAccumulator acc(table_.dimension());
  ChunkRunResult run;
  QREG_RETURN_NOT_OK(CheckAdmission(control, stats, sw));
  if (!parallel_enabled() && control == nullptr) {
    GramBlockKernel kernel(&acc);
    index_.BlockVisit(q.center.data(), q.theta, norm_, &kernel, &sel);
  } else {
    const std::vector<storage::ScanPartition> plan = PartitionPlan();
    struct Part {
      explicit Part(size_t d) : acc(d), kernel(&acc) {}
      linalg::OlsAccumulator acc;
      GramBlockKernel kernel;
      storage::SelectionStats sel;
    };
    std::vector<Part> parts;
    parts.reserve(plan.size());
    for (size_t i = 0; i < plan.size(); ++i) parts.emplace_back(table_.dimension());
    run = RunChunks(
        plan.size(),
        [this, &q, &plan, &parts](size_t i) {
          Part& p = parts[i];
          index_.BlockVisitPartition(plan[i], q.center.data(), q.theta, norm_,
                                     &p.kernel, &p.sel);
        },
        control);
    for (const Part& p : parts) {  // MADlib-style merge, plan order.
      (void)acc.Merge(p.acc);
      sel.tuples_examined += p.sel.tuples_examined;
      sel.tuples_matched += p.sel.tuples_matched;
    }
    if (stats != nullptr) {
      stats->chunks_completed = static_cast<int64_t>(run.executed);
      stats->chunks_total = static_cast<int64_t>(plan.size());
    }
  }
  auto fit = !run.status.ok()
                 ? util::Result<linalg::OlsFit>(run.status)
                 : acc.count() == 0
                       ? util::Result<linalg::OlsFit>(util::Status::NotFound(
                             "empty data subspace D(x, theta)"))
                       : acc.Solve();
  if (stats != nullptr) {
    stats->tuples_examined = sel.tuples_examined;
    stats->tuples_matched = sel.tuples_matched;
    stats->nanos = sw.ElapsedNanos();
  }
  return fit;
}

util::Result<std::vector<int64_t>> ExactEngine::Select(
    const Query& q, ExecStats* stats, const util::ExecControl* control) const {
  util::Stopwatch sw;
  storage::SelectionStats sel;
  std::vector<int64_t> ids;
  ChunkRunResult run;
  QREG_RETURN_NOT_OK(CheckAdmission(control, stats, sw));
  if (!parallel_enabled() && control == nullptr) {
    CollectIdsBlockKernel kernel(&ids);
    index_.BlockVisit(q.center.data(), q.theta, norm_, &kernel, &sel);
  } else {
    const std::vector<storage::ScanPartition> plan = PartitionPlan();
    struct Part {
      Part() : kernel(&ids) {}
      std::vector<int64_t> ids;
      CollectIdsBlockKernel kernel;
      storage::SelectionStats sel;
    };
    std::vector<Part> parts(plan.size());
    run = RunChunks(
        plan.size(),
        [this, &q, &plan, &parts](size_t i) {
          Part& p = parts[i];
          index_.BlockVisitPartition(plan[i], q.center.data(), q.theta, norm_,
                                     &p.kernel, &p.sel);
        },
        control);
    for (Part& p : parts) {  // Plan order == sequential visit order.
      ids.insert(ids.end(), p.ids.begin(), p.ids.end());
      sel.tuples_examined += p.sel.tuples_examined;
      sel.tuples_matched += p.sel.tuples_matched;
    }
    if (stats != nullptr) {
      stats->chunks_completed = static_cast<int64_t>(run.executed);
      stats->chunks_total = static_cast<int64_t>(plan.size());
    }
  }
  if (stats != nullptr) {
    stats->tuples_examined = sel.tuples_examined;
    stats->tuples_matched = sel.tuples_matched;
    stats->nanos = sw.ElapsedNanos();
  }
  if (!run.status.ok()) return run.status;
  return ids;
}

}  // namespace query
}  // namespace qreg
