#include "query/exact_engine.h"

#include <algorithm>

#include "util/timer.h"

namespace qreg {
namespace query {

util::Result<MeanValueResult> ExactEngine::MeanValue(const Query& q,
                                                     ExecStats* stats) const {
  util::Stopwatch sw;
  storage::SelectionStats sel;
  double sum = 0.0;
  int64_t count = 0;
  index_.RadiusVisit(
      q.center.data(), q.theta, norm_,
      [&sum, &count](int64_t, const double*, double u) {
        sum += u;
        ++count;
      },
      &sel);
  if (stats != nullptr) {
    stats->tuples_examined = sel.tuples_examined;
    stats->tuples_matched = sel.tuples_matched;
    stats->nanos = sw.ElapsedNanos();
  }
  if (count == 0) {
    return util::Status::NotFound("empty data subspace D(x, theta)");
  }
  MeanValueResult r;
  r.mean = sum / static_cast<double>(count);
  r.count = count;
  return r;
}

util::Result<MomentsResult> ExactEngine::Moments(const Query& q,
                                                 ExecStats* stats) const {
  util::Stopwatch sw;
  storage::SelectionStats sel;
  double sum = 0.0;
  double sum_sq = 0.0;
  int64_t count = 0;
  index_.RadiusVisit(
      q.center.data(), q.theta, norm_,
      [&sum, &sum_sq, &count](int64_t, const double*, double u) {
        sum += u;
        sum_sq += u * u;
        ++count;
      },
      &sel);
  if (stats != nullptr) {
    stats->tuples_examined = sel.tuples_examined;
    stats->tuples_matched = sel.tuples_matched;
    stats->nanos = sw.ElapsedNanos();
  }
  if (count == 0) {
    return util::Status::NotFound("empty data subspace D(x, theta)");
  }
  MomentsResult r;
  r.count = count;
  r.mean = sum / static_cast<double>(count);
  r.second_moment = sum_sq / static_cast<double>(count);
  r.variance = std::max(0.0, r.second_moment - r.mean * r.mean);
  return r;
}

util::Result<linalg::OlsFit> ExactEngine::Regression(const Query& q,
                                                     ExecStats* stats) const {
  util::Stopwatch sw;
  storage::SelectionStats sel;
  linalg::OlsAccumulator acc(table_.dimension());
  index_.RadiusVisit(
      q.center.data(), q.theta, norm_,
      [&acc](int64_t, const double* x, double u) { acc.Add(x, u); }, &sel);
  auto fit = acc.count() == 0
                 ? util::Result<linalg::OlsFit>(
                       util::Status::NotFound("empty data subspace D(x, theta)"))
                 : acc.Solve();
  if (stats != nullptr) {
    stats->tuples_examined = sel.tuples_examined;
    stats->tuples_matched = sel.tuples_matched;
    stats->nanos = sw.ElapsedNanos();
  }
  return fit;
}

std::vector<int64_t> ExactEngine::Select(const Query& q, ExecStats* stats) const {
  util::Stopwatch sw;
  storage::SelectionStats sel;
  std::vector<int64_t> ids = index_.RadiusSearch(q.center.data(), q.theta, norm_, &sel);
  if (stats != nullptr) {
    stats->tuples_examined = sel.tuples_examined;
    stats->tuples_matched = sel.tuples_matched;
    stats->nanos = sw.ElapsedNanos();
  }
  return ids;
}

}  // namespace query
}  // namespace qreg
