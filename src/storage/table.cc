#include "storage/table.h"

#include "util/string_util.h"

namespace qreg {
namespace storage {

Schema Schema::Default(size_t d) {
  Schema s;
  s.feature_names.reserve(d);
  for (size_t i = 0; i < d; ++i) {
    s.feature_names.push_back(util::Format("x%zu", i + 1));
  }
  s.output_name = "u";
  return s;
}

int64_t Table::SchemaBytes() const {
  // Vector-of-string backbone plus each name's heap allocation. Names at or
  // under the implementation's SSO capacity live inline in the string
  // object; anything longer allocates capacity() + 1 bytes out of line.
  static const size_t kSsoCapacity = std::string().capacity();
  auto string_bytes = [](const std::string& s) {
    int64_t bytes = static_cast<int64_t>(sizeof(std::string));
    if (s.capacity() > kSsoCapacity) {
      bytes += static_cast<int64_t>(s.capacity()) + 1;
    }
    return bytes;
  };
  int64_t total = static_cast<int64_t>(schema_.feature_names.capacity() *
                                       sizeof(std::string));
  for (const std::string& name : schema_.feature_names) {
    total += string_bytes(name) - static_cast<int64_t>(sizeof(std::string));
  }
  total += string_bytes(schema_.output_name);
  return total;
}

util::Status Table::Append(const std::vector<double>& x, double u) {
  if (x.size() != d_) {
    return util::Status::InvalidArgument(
        util::Format("row has %zu features, table expects %zu", x.size(), d_));
  }
  AppendUnchecked(x.data(), u);
  return util::Status::OK();
}

void Table::FeatureRanges(std::vector<double>* mins, std::vector<double>* maxs) const {
  mins->clear();
  maxs->clear();
  if (num_rows() == 0) return;
  mins->assign(d_, 0.0);
  maxs->assign(d_, 0.0);
  for (size_t j = 0; j < d_; ++j) {
    (*mins)[j] = xs_[j];
    (*maxs)[j] = xs_[j];
  }
  const int64_t n = num_rows();
  for (int64_t i = 1; i < n; ++i) {
    const double* row = x(i);
    for (size_t j = 0; j < d_; ++j) {
      if (row[j] < (*mins)[j]) (*mins)[j] = row[j];
      if (row[j] > (*maxs)[j]) (*maxs)[j] = row[j];
    }
  }
}

}  // namespace storage
}  // namespace qreg
