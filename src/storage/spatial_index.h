// Selection-operator interface: visit every row of a Table whose feature
// vector lies within an Lp ball (Definition 3's data subspace D(x, θ)).

#ifndef QREG_STORAGE_SPATIAL_INDEX_H_
#define QREG_STORAGE_SPATIAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/lp_norm.h"
#include "storage/table.h"

namespace qreg {
namespace storage {

/// \brief Callback receiving (row id, features pointer, output value).
using RowVisitor = std::function<void(int64_t id, const double* x, double u)>;

/// \brief Statistics of one selection execution.
struct SelectionStats {
  int64_t tuples_examined = 0;  ///< Rows whose distance was evaluated.
  int64_t tuples_matched = 0;   ///< Rows inside the ball.
};

/// \brief One disjoint unit of parallel selection work, produced by
/// MakePartitions and only meaningful to the index that produced it.
///
/// Scan-style access paths use [begin, end) row ranges; tree-style paths
/// use a subtree root. Visiting every partition of a plan is equivalent to
/// one RadiusVisit: partitions are disjoint and jointly exhaustive, and the
/// partition plan depends only on the indexed data — never on thread
/// counts — so a partitioned reduction is deterministic across pool sizes.
struct ScanPartition {
  int64_t begin = 0;  ///< First row of a range partition (scan paths).
  int64_t end = 0;    ///< One past the last row of a range partition.
  int32_t node = -1;  ///< Subtree root of a tree partition (tree paths).
};

/// \brief Abstract radius-selection access path over a Table.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Invokes `visit` for every row within `radius` of `center` under `norm`.
  /// `stats` may be null.
  virtual void RadiusVisit(const double* center, double radius, const LpNorm& norm,
                           const RowVisitor& visit, SelectionStats* stats) const = 0;

  /// Collects matching row ids (convenience wrapper over RadiusVisit).
  std::vector<int64_t> RadiusSearch(const double* center, double radius,
                                    const LpNorm& norm,
                                    SelectionStats* stats = nullptr) const;

  /// Splits the indexed data into roughly `target` disjoint partitions whose
  /// union is the whole table. Implementations may return fewer (never more
  /// than max(1, rows)) — notably a single partition when the data is too
  /// small to be worth splitting. The plan is a pure function of the indexed
  /// data, so repeated calls with the same `target` return the same plan.
  ///
  /// The default implementation returns one partition covering everything.
  virtual std::vector<ScanPartition> MakePartitions(size_t target) const;

  /// RadiusVisit restricted to one partition of a plan produced by *this*
  /// index's MakePartitions. Visiting all partitions of a plan invokes
  /// `visit` for exactly the rows one RadiusVisit would, with identical
  /// aggregate SelectionStats.
  virtual void RadiusVisitPartition(const ScanPartition& part, const double* center,
                                    double radius, const LpNorm& norm,
                                    const RowVisitor& visit,
                                    SelectionStats* stats) const;

  /// Access-path name for logs and bench tables ("kdtree", "scan").
  virtual std::string name() const = 0;
};

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_SPATIAL_INDEX_H_
