// Selection-operator interface: visit every row of a Table whose feature
// vector lies within an Lp ball (Definition 3's data subspace D(x, θ)).
//
// Two call styles share one contract:
//   - BlockVisit (the native hot path): the index streams contiguous
//     candidate blocks of its row storage through a branch-free Lp filter
//     (storage/block_filter.h) and hands each block's selected lanes to a
//     BlockKernel — one virtual call per ~256 rows instead of one
//     type-erased std::function call per matching row.
//   - RadiusVisit (the classic row-at-a-time API): kept for callers that
//     want a per-row callback; implemented as a thin adapter over BlockVisit
//     in every native index, so both styles always select identical rows in
//     identical order with identical SelectionStats.

#ifndef QREG_STORAGE_SPATIAL_INDEX_H_
#define QREG_STORAGE_SPATIAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/lp_norm.h"
#include "storage/table.h"

namespace qreg {
namespace storage {

/// \brief Callback receiving (row id, features pointer, output value).
using RowVisitor = std::function<void(int64_t id, const double* x, double u)>;

/// \brief Statistics of one selection execution.
struct SelectionStats {
  int64_t tuples_examined = 0;  ///< Rows whose distance was evaluated.
  int64_t tuples_matched = 0;   ///< Rows inside the ball.
};

/// \brief One filtered candidate block: `rows` contiguous row-major feature
/// rows with `count` selected (in-ball) lanes. Lane k of the selection has
/// features at xs + sel[k]*d, output us[sel[k]], and row id
/// ids[sel[k]] (or id_base + sel[k] when ids is null — scan paths, whose
/// ids are consecutive). sel is ascending, so iterating the selection
/// preserves the index's row visit order.
struct BlockSpan {
  const double* xs = nullptr;    ///< Candidate rows, row-major, stride d.
  const double* us = nullptr;    ///< Candidate outputs, one per row.
  const int64_t* ids = nullptr;  ///< Per-row ids; null => id_base + lane.
  int64_t id_base = 0;
  const int32_t* sel = nullptr;  ///< Ascending selected lane offsets.
  int32_t count = 0;             ///< Selected lanes.
  int32_t rows = 0;              ///< Candidate rows in this block.
  size_t d = 0;

  int64_t IdAt(int32_t k) const {
    const int32_t lane = sel[k];
    return ids != nullptr ? ids[lane] : id_base + lane;
  }
  const double* XAt(int32_t k) const {
    return xs + static_cast<size_t>(sel[k]) * d;
  }
  double UAt(int32_t k) const { return us[sel[k]]; }
};

/// \brief Fused filter+accumulate consumer of a block scan. One OnBlock call
/// per candidate block that has at least one selected lane.
class BlockKernel {
 public:
  virtual ~BlockKernel() = default;
  virtual void OnBlock(const BlockSpan& span) = 0;
};

/// \brief The RowVisitor compatibility shim: replays a block's selected
/// lanes through a per-row callback in scan order.
class RowVisitorBlockKernel : public BlockKernel {
 public:
  explicit RowVisitorBlockKernel(const RowVisitor& visit) : visit_(visit) {}

  void OnBlock(const BlockSpan& span) override {
    for (int32_t k = 0; k < span.count; ++k) {
      visit_(span.IdAt(k), span.XAt(k), span.UAt(k));
    }
  }

 private:
  const RowVisitor& visit_;
};

/// \brief One disjoint unit of parallel selection work, produced by
/// MakePartitions and only meaningful to the index that produced it.
///
/// Scan-style access paths use [begin, end) row ranges; tree-style paths
/// use a subtree root. Visiting every partition of a plan is equivalent to
/// one RadiusVisit: partitions are disjoint and jointly exhaustive, and the
/// partition plan depends only on the indexed data — never on thread
/// counts — so a partitioned reduction is deterministic across pool sizes.
struct ScanPartition {
  int64_t begin = 0;  ///< First row of a range partition (scan paths).
  int64_t end = 0;    ///< One past the last row of a range partition.
  int32_t node = -1;  ///< Subtree root of a tree partition (tree paths).
};

/// \brief Abstract radius-selection access path over a Table.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Invokes `visit` for every row within `radius` of `center` under `norm`.
  /// `stats` may be null.
  virtual void RadiusVisit(const double* center, double radius, const LpNorm& norm,
                           const RowVisitor& visit, SelectionStats* stats) const = 0;

  /// Streams every in-ball row to `kernel` block-at-a-time. Selects exactly
  /// the rows RadiusVisit visits, in the same order, with identical stats.
  /// The default implementation adapts over RadiusVisit with one-row spans;
  /// native indexes override it with true blocked execution.
  virtual void BlockVisit(const double* center, double radius, const LpNorm& norm,
                          BlockKernel* kernel, SelectionStats* stats) const;

  /// Collects matching row ids (convenience wrapper over BlockVisit).
  std::vector<int64_t> RadiusSearch(const double* center, double radius,
                                    const LpNorm& norm,
                                    SelectionStats* stats = nullptr) const;

  /// Splits the indexed data into roughly `target` disjoint partitions whose
  /// union is the whole table. Implementations may return fewer (never more
  /// than max(1, rows)) — notably a single partition when the data is too
  /// small to be worth splitting. The plan is a pure function of the indexed
  /// data, so repeated calls with the same `target` return the same plan.
  ///
  /// The default implementation returns one partition covering everything.
  virtual std::vector<ScanPartition> MakePartitions(size_t target) const;

  /// RadiusVisit restricted to one partition of a plan produced by *this*
  /// index's MakePartitions. Visiting all partitions of a plan invokes
  /// `visit` for exactly the rows one RadiusVisit would, with identical
  /// aggregate SelectionStats.
  virtual void RadiusVisitPartition(const ScanPartition& part, const double* center,
                                    double radius, const LpNorm& norm,
                                    const RowVisitor& visit,
                                    SelectionStats* stats) const;

  /// BlockVisit restricted to one partition: the blocked analogue of
  /// RadiusVisitPartition, with the same all-partitions == one-BlockVisit
  /// equivalence.
  virtual void BlockVisitPartition(const ScanPartition& part, const double* center,
                                   double radius, const LpNorm& norm,
                                   BlockKernel* kernel,
                                   SelectionStats* stats) const;

  /// Access-path name for logs and bench tables ("kdtree", "scan").
  virtual std::string name() const = 0;
};

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_SPATIAL_INDEX_H_
