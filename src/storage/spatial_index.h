// Selection-operator interface: visit every row of a Table whose feature
// vector lies within an Lp ball (Definition 3's data subspace D(x, θ)).

#ifndef QREG_STORAGE_SPATIAL_INDEX_H_
#define QREG_STORAGE_SPATIAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/lp_norm.h"
#include "storage/table.h"

namespace qreg {
namespace storage {

/// \brief Callback receiving (row id, features pointer, output value).
using RowVisitor = std::function<void(int64_t id, const double* x, double u)>;

/// \brief Statistics of one selection execution.
struct SelectionStats {
  int64_t tuples_examined = 0;  ///< Rows whose distance was evaluated.
  int64_t tuples_matched = 0;   ///< Rows inside the ball.
};

/// \brief Abstract radius-selection access path over a Table.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Invokes `visit` for every row within `radius` of `center` under `norm`.
  /// `stats` may be null.
  virtual void RadiusVisit(const double* center, double radius, const LpNorm& norm,
                           const RowVisitor& visit, SelectionStats* stats) const = 0;

  /// Collects matching row ids (convenience wrapper over RadiusVisit).
  std::vector<int64_t> RadiusSearch(const double* center, double radius,
                                    const LpNorm& norm,
                                    SelectionStats* stats = nullptr) const;

  /// Access-path name for logs and bench tables ("kdtree", "scan").
  virtual std::string name() const = 0;
};

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_SPATIAL_INDEX_H_
