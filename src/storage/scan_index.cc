#include "storage/scan_index.h"

namespace qreg {
namespace storage {

void ScanIndex::RadiusVisit(const double* center, double radius, const LpNorm& norm,
                            const RowVisitor& visit, SelectionStats* stats) const {
  const int64_t n = table_.num_rows();
  const size_t d = table_.dimension();
  int64_t matched = 0;
  for (int64_t i = 0; i < n; ++i) {
    const double* row = table_.x(i);
    if (norm.Within(row, center, d, radius)) {
      ++matched;
      visit(i, row, table_.u(i));
    }
  }
  if (stats != nullptr) {
    stats->tuples_examined += n;
    stats->tuples_matched += matched;
  }
}

}  // namespace storage
}  // namespace qreg
