#include "storage/scan_index.h"

#include <algorithm>

namespace qreg {
namespace storage {

namespace {

void ScanRange(const Table& table, int64_t begin, int64_t end,
               const double* center, double radius, const LpNorm& norm,
               const RowVisitor& visit, SelectionStats* stats) {
  const size_t d = table.dimension();
  int64_t matched = 0;
  for (int64_t i = begin; i < end; ++i) {
    const double* row = table.x(i);
    if (norm.Within(row, center, d, radius)) {
      ++matched;
      visit(i, row, table.u(i));
    }
  }
  if (stats != nullptr) {
    stats->tuples_examined += end - begin;
    stats->tuples_matched += matched;
  }
}

}  // namespace

void ScanIndex::RadiusVisit(const double* center, double radius, const LpNorm& norm,
                            const RowVisitor& visit, SelectionStats* stats) const {
  ScanRange(table_, 0, table_.num_rows(), center, radius, norm, visit, stats);
}

std::vector<ScanPartition> ScanIndex::MakePartitions(size_t target) const {
  const int64_t n = table_.num_rows();
  const int64_t parts = std::max<int64_t>(
      1, std::min<int64_t>(static_cast<int64_t>(std::max<size_t>(target, 1)), n));
  std::vector<ScanPartition> plan;
  plan.reserve(static_cast<size_t>(parts));
  const int64_t chunk = n / parts;
  int64_t begin = 0;
  for (int64_t i = 0; i < parts; ++i) {
    ScanPartition p;
    p.begin = begin;
    p.end = (i + 1 == parts) ? n : begin + chunk;
    begin = p.end;
    plan.push_back(p);
  }
  return plan;
}

void ScanIndex::RadiusVisitPartition(const ScanPartition& part, const double* center,
                                     double radius, const LpNorm& norm,
                                     const RowVisitor& visit,
                                     SelectionStats* stats) const {
  ScanRange(table_, part.begin, std::min(part.end, table_.num_rows()), center,
            radius, norm, visit, stats);
}

}  // namespace storage
}  // namespace qreg
