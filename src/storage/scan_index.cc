#include "storage/scan_index.h"

#include <algorithm>

#include "storage/block_filter.h"

namespace qreg {
namespace storage {

namespace {

// The blocked scan core: filter kernel resolved once per call, then each
// kScanBlockRows-row block is distance-filtered branch-free and its
// selected lanes handed to the kernel in row order.
void BlockScanRange(const Table& table, int64_t begin, int64_t end,
                    const double* center, double radius, const LpNorm& norm,
                    BlockKernel* kernel, SelectionStats* stats) {
  const size_t d = table.dimension();
  const BlockFilter filter = SelectBlockFilter(norm, d);
  double scratch[kScanBlockRows];
  int32_t sel[kScanBlockRows];
  int64_t matched = 0;
  const double* us = table.u_column().data();
  for (int64_t b = begin; b < end; b += kScanBlockRows) {
    const int32_t rows =
        static_cast<int32_t>(std::min<int64_t>(kScanBlockRows, end - b));
    const double* xs = table.x(b);
    const int32_t count =
        filter.Run(xs, rows, d, center, radius, sel, scratch);
    matched += count;
    if (count > 0) {
      BlockSpan span;
      span.xs = xs;
      span.us = us + b;
      span.ids = nullptr;  // Scan ids are consecutive: id = b + lane.
      span.id_base = b;
      span.sel = sel;
      span.count = count;
      span.rows = rows;
      span.d = d;
      kernel->OnBlock(span);
    }
  }
  if (stats != nullptr) {
    stats->tuples_examined += end - begin;
    stats->tuples_matched += matched;
  }
}

}  // namespace

void ScanIndex::BlockVisit(const double* center, double radius,
                           const LpNorm& norm, BlockKernel* kernel,
                           SelectionStats* stats) const {
  BlockScanRange(table_, 0, table_.num_rows(), center, radius, norm, kernel,
                 stats);
}

void ScanIndex::BlockVisitPartition(const ScanPartition& part,
                                    const double* center, double radius,
                                    const LpNorm& norm, BlockKernel* kernel,
                                    SelectionStats* stats) const {
  BlockScanRange(table_, part.begin, std::min(part.end, table_.num_rows()),
                 center, radius, norm, kernel, stats);
}

void ScanIndex::RadiusVisit(const double* center, double radius, const LpNorm& norm,
                            const RowVisitor& visit, SelectionStats* stats) const {
  RowVisitorBlockKernel adapter(visit);
  BlockVisit(center, radius, norm, &adapter, stats);
}

std::vector<ScanPartition> ScanIndex::MakePartitions(size_t target) const {
  const int64_t n = table_.num_rows();
  const int64_t parts = std::max<int64_t>(
      1, std::min<int64_t>(static_cast<int64_t>(std::max<size_t>(target, 1)), n));
  std::vector<ScanPartition> plan;
  plan.reserve(static_cast<size_t>(parts));
  const int64_t chunk = n / parts;
  int64_t begin = 0;
  for (int64_t i = 0; i < parts; ++i) {
    ScanPartition p;
    p.begin = begin;
    p.end = (i + 1 == parts) ? n : begin + chunk;
    begin = p.end;
    plan.push_back(p);
  }
  return plan;
}

void ScanIndex::RadiusVisitPartition(const ScanPartition& part, const double* center,
                                     double radius, const LpNorm& norm,
                                     const RowVisitor& visit,
                                     SelectionStats* stats) const {
  RowVisitorBlockKernel adapter(visit);
  BlockVisitPartition(part, center, radius, norm, &adapter, stats);
}

}  // namespace storage
}  // namespace qreg
