// Bulk-loaded k-d tree over a Table's feature vectors.
//
// Supports radius (dNN) selection under any Lp norm — the paper's selection
// operator — plus k-nearest-neighbour search used by tests and examples.
// Nodes own contiguous index ranges; leaves hold up to `leaf_size` rows and
// interior nodes keep their bounding boxes for Lp pruning.

#ifndef QREG_STORAGE_KDTREE_H_
#define QREG_STORAGE_KDTREE_H_

#include <cstdint>
#include <vector>

#include "storage/spatial_index.h"
#include "util/status.h"

namespace qreg {
namespace storage {

/// \brief One (distance, row id) hit of a k-NN query, sorted ascending.
struct Neighbor {
  double distance = 0.0;
  int64_t id = -1;
};

/// \brief k-d tree access path (median splits on the widest dimension).
class KdTree : public SpatialIndex {
 public:
  /// Builds over all current rows of `table` (which must outlive the tree).
  /// leaf_size trades pruning power for per-leaf scan cost; 32 is a good
  /// default for d <= 8.
  explicit KdTree(const Table& table, int leaf_size = 32);

  void RadiusVisit(const double* center, double radius, const LpNorm& norm,
                   const RowVisitor& visit, SelectionStats* stats) const override;

  /// A frontier of disjoint subtree roots covering every row, built by
  /// repeatedly splitting the largest frontier node until `target` subtrees
  /// exist (or only leaves remain), then ordered left-to-right so that
  /// visiting partitions in plan order enumerates rows in the same order as
  /// a sequential RadiusVisit.
  std::vector<ScanPartition> MakePartitions(size_t target) const override;

  void RadiusVisitPartition(const ScanPartition& part, const double* center,
                            double radius, const LpNorm& norm,
                            const RowVisitor& visit,
                            SelectionStats* stats) const override;

  /// The k nearest rows to `center` under `norm`, ascending by distance.
  /// Returns fewer than k if the table is smaller.
  std::vector<Neighbor> NearestNeighbors(const double* center, int k,
                                         const LpNorm& norm = LpNorm::L2()) const;

  std::string name() const override { return "kdtree"; }

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_rows() const { return static_cast<int64_t>(ids_.size()); }

 private:
  struct Node {
    int32_t left = -1;    // child node index, -1 for leaf
    int32_t right = -1;
    int32_t begin = 0;    // range in ids_
    int32_t end = 0;
    std::vector<double> box_lo;
    std::vector<double> box_hi;
  };

  int32_t Build(int32_t begin, int32_t end);
  void ComputeBox(Node* node) const;

  void RadiusVisitNode(int32_t node_idx, const double* center, double radius,
                       const LpNorm& norm, const RowVisitor& visit,
                       int64_t* examined, int64_t* matched) const;

  const Table& table_;
  int leaf_size_;
  std::vector<int32_t> ids_;   // permutation of row ids
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_KDTREE_H_
