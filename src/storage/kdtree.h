// Bulk-loaded k-d tree over a Table's feature vectors.
//
// Supports radius (dNN) selection under any Lp norm — the paper's selection
// operator — plus k-nearest-neighbour search used by tests and examples.
// Nodes own contiguous index ranges; leaves hold up to `leaf_size` rows and
// interior nodes keep their bounding boxes for Lp pruning.
//
// Storage is leaf-blocked: after the build permutes the row order, the
// feature rows and outputs are re-laid out into contiguous permuted arrays,
// so every leaf (and every subtree-frontier partition) owns a contiguous
// span of row-major storage. Radius selection streams those spans through
// the branch-free block filter instead of pointer-chasing per-row ids.

#ifndef QREG_STORAGE_KDTREE_H_
#define QREG_STORAGE_KDTREE_H_

#include <cstdint>
#include <vector>

#include "storage/block_filter.h"
#include "storage/spatial_index.h"
#include "util/status.h"

namespace qreg {
namespace storage {

/// \brief One (distance, row id) hit of a k-NN query, sorted ascending.
struct Neighbor {
  double distance = 0.0;
  int64_t id = -1;
};

/// \brief k-d tree access path (median splits on the widest dimension).
class KdTree : public SpatialIndex {
 public:
  /// Builds over all current rows of `table` (which must outlive the tree).
  /// leaf_size trades pruning power for per-leaf scan cost; 32 is a good
  /// default for d <= 8.
  explicit KdTree(const Table& table, int leaf_size = 32);

  void RadiusVisit(const double* center, double radius, const LpNorm& norm,
                   const RowVisitor& visit, SelectionStats* stats) const override;

  void BlockVisit(const double* center, double radius, const LpNorm& norm,
                  BlockKernel* kernel, SelectionStats* stats) const override;

  /// A frontier of disjoint subtree roots covering every row, built by
  /// repeatedly splitting the largest frontier node until `target` subtrees
  /// exist (or only leaves remain), then ordered left-to-right so that
  /// visiting partitions in plan order enumerates rows in the same order as
  /// a sequential RadiusVisit.
  std::vector<ScanPartition> MakePartitions(size_t target) const override;

  void RadiusVisitPartition(const ScanPartition& part, const double* center,
                            double radius, const LpNorm& norm,
                            const RowVisitor& visit,
                            SelectionStats* stats) const override;

  void BlockVisitPartition(const ScanPartition& part, const double* center,
                           double radius, const LpNorm& norm,
                           BlockKernel* kernel,
                           SelectionStats* stats) const override;

  /// The k nearest rows to `center` under `norm`, ascending by distance.
  /// Returns fewer than k if the table is smaller.
  std::vector<Neighbor> NearestNeighbors(const double* center, int k,
                                         const LpNorm& norm = LpNorm::L2()) const;

  std::string name() const override { return "kdtree"; }

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_rows() const { return static_cast<int64_t>(row_ids_.size()); }

 private:
  struct Node {
    int32_t left = -1;    // child node index, -1 for leaf
    int32_t right = -1;
    int32_t begin = 0;    // range in the permuted row storage
    int32_t end = 0;
    std::vector<double> box_lo;
    std::vector<double> box_hi;
  };

  int32_t Build(int32_t begin, int32_t end);
  void ComputeBox(Node* node) const;

  void BlockVisitNode(int32_t node_idx, const double* center, double radius,
                      const LpNorm& norm, const BlockFilter& filter,
                      BlockKernel* kernel, int64_t* examined,
                      int64_t* matched) const;

  /// Features of permuted position i (valid after the build re-layout).
  const double* PermRow(int32_t i) const {
    return &xs_perm_[static_cast<size_t>(i) * table_.dimension()];
  }

  const Table& table_;
  int leaf_size_;
  std::vector<int32_t> ids_;      // permutation of row ids (build order)
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  // Leaf-blocked re-layout of the table in ids_ order: position i holds the
  // features/output/original id of row ids_[i], so node [begin, end) ranges
  // are contiguous row-major spans.
  std::vector<double> xs_perm_;   // n * d
  std::vector<double> us_perm_;   // n
  std::vector<int64_t> row_ids_;  // n
};

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_KDTREE_H_
