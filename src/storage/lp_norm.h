// Lp distance (Definition 2 in the paper) with fast paths for p=1,2,inf.
//
// The selection operator D(x, θ) admits any p >= 1; the query-space
// similarity measure is always L2 (Definition 5).
//
// The p-dispatch is resolved once at construction into an LpKind enum, so
// Distance/Within switch on an integer instead of re-comparing the double p
// on every call, and scan loops can hoist the dispatch entirely by selecting
// a per-kind kernel up front (see storage/block_filter.h).

#ifndef QREG_STORAGE_LP_NORM_H_
#define QREG_STORAGE_LP_NORM_H_

#include <cmath>
#include <cstddef>
#include <limits>

namespace qreg {
namespace storage {

/// \brief The four evaluation kernels an Lp norm can resolve to.
enum class LpKind { kL1, kL2, kLInf, kGeneric };

/// \brief p-norm selector; kInf encodes the Chebyshev norm.
class LpNorm {
 public:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// p must be >= 1 (or kInf); p defaults to Euclidean.
  explicit LpNorm(double p = 2.0) : p_(p), kind_(KindOf(p)) {}

  static LpNorm L1() { return LpNorm(1.0); }
  static LpNorm L2() { return LpNorm(2.0); }
  static LpNorm LInf() { return LpNorm(kInf); }

  double p() const { return p_; }

  /// The kernel this norm dispatches to, resolved once at construction.
  LpKind kind() const { return kind_; }

  /// ||a - b||_p over d coordinates.
  double Distance(const double* a, const double* b, size_t d) const {
    switch (kind_) {
      case LpKind::kL2:
        return std::sqrt(Distance2(a, b, d));
      case LpKind::kL1: {
        double s = 0.0;
        for (size_t i = 0; i < d; ++i) s += std::fabs(a[i] - b[i]);
        return s;
      }
      case LpKind::kLInf: {
        double s = 0.0;
        for (size_t i = 0; i < d; ++i) s = std::max(s, std::fabs(a[i] - b[i]));
        return s;
      }
      case LpKind::kGeneric:
        break;
    }
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) s += std::pow(std::fabs(a[i] - b[i]), p_);
    return std::pow(s, 1.0 / p_);
  }

  /// Squared Euclidean distance ||a - b||_2², independent of p. Callers that
  /// only compare an L2 distance against a radius should test
  /// Distance2() <= radius * radius and skip the sqrt entirely.
  double Distance2(const double* a, const double* b, size_t d) const {
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const double t = a[i] - b[i];
      s += t * t;
    }
    return s;
  }

  /// True iff ||a - b||_p <= radius; avoids the final root where possible.
  bool Within(const double* a, const double* b, size_t d, double radius) const {
    switch (kind_) {
      case LpKind::kL2: {
        double s = 0.0;
        const double r2 = radius * radius;
        for (size_t i = 0; i < d; ++i) {
          const double t = a[i] - b[i];
          s += t * t;
          if (s > r2) return false;
        }
        return true;
      }
      case LpKind::kLInf: {
        for (size_t i = 0; i < d; ++i) {
          if (std::fabs(a[i] - b[i]) > radius) return false;
        }
        return true;
      }
      case LpKind::kL1:
      case LpKind::kGeneric:
        break;
    }
    return Distance(a, b, d) <= radius;
  }

  /// Minimum ||q - y||_p over points y inside the axis-aligned box
  /// [lo, hi]^d. Used by the k-d tree to prune subtrees.
  double MinDistanceToBox(const double* q, const double* lo, const double* hi,
                          size_t d) const {
    if (kind_ == LpKind::kLInf) {
      double m = 0.0;
      for (size_t i = 0; i < d; ++i) {
        double gap = 0.0;
        if (q[i] < lo[i]) gap = lo[i] - q[i];
        else if (q[i] > hi[i]) gap = q[i] - hi[i];
        m = std::max(m, gap);
      }
      return m;
    }
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) {
      double gap = 0.0;
      if (q[i] < lo[i]) gap = lo[i] - q[i];
      else if (q[i] > hi[i]) gap = q[i] - hi[i];
      s += (kind_ == LpKind::kL2) ? gap * gap
                                  : ((kind_ == LpKind::kL1) ? gap
                                                            : std::pow(gap, p_));
    }
    if (kind_ == LpKind::kL2) return std::sqrt(s);
    if (kind_ == LpKind::kL1) return s;
    return std::pow(s, 1.0 / p_);
  }

 private:
  static LpKind KindOf(double p) {
    if (p == 2.0) return LpKind::kL2;
    if (p == 1.0) return LpKind::kL1;
    if (p == kInf) return LpKind::kLInf;
    return LpKind::kGeneric;
  }

  double p_;
  LpKind kind_;
};

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_LP_NORM_H_
