// Lp distance (Definition 2 in the paper) with fast paths for p=1,2,inf.
//
// The selection operator D(x, θ) admits any p >= 1; the query-space
// similarity measure is always L2 (Definition 5).

#ifndef QREG_STORAGE_LP_NORM_H_
#define QREG_STORAGE_LP_NORM_H_

#include <cmath>
#include <cstddef>
#include <limits>

namespace qreg {
namespace storage {

/// \brief p-norm selector; kInf encodes the Chebyshev norm.
class LpNorm {
 public:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// p must be >= 1 (or kInf); p defaults to Euclidean.
  explicit LpNorm(double p = 2.0) : p_(p) {}

  static LpNorm L1() { return LpNorm(1.0); }
  static LpNorm L2() { return LpNorm(2.0); }
  static LpNorm LInf() { return LpNorm(kInf); }

  double p() const { return p_; }

  /// ||a - b||_p over d coordinates.
  double Distance(const double* a, const double* b, size_t d) const {
    if (p_ == 2.0) {
      double s = 0.0;
      for (size_t i = 0; i < d; ++i) {
        const double t = a[i] - b[i];
        s += t * t;
      }
      return std::sqrt(s);
    }
    if (p_ == 1.0) {
      double s = 0.0;
      for (size_t i = 0; i < d; ++i) s += std::fabs(a[i] - b[i]);
      return s;
    }
    if (p_ == kInf) {
      double s = 0.0;
      for (size_t i = 0; i < d; ++i) s = std::max(s, std::fabs(a[i] - b[i]));
      return s;
    }
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) s += std::pow(std::fabs(a[i] - b[i]), p_);
    return std::pow(s, 1.0 / p_);
  }

  /// True iff ||a - b||_p <= radius; avoids the final root where possible.
  bool Within(const double* a, const double* b, size_t d, double radius) const {
    if (p_ == 2.0) {
      double s = 0.0;
      const double r2 = radius * radius;
      for (size_t i = 0; i < d; ++i) {
        const double t = a[i] - b[i];
        s += t * t;
        if (s > r2) return false;
      }
      return true;
    }
    if (p_ == kInf) {
      for (size_t i = 0; i < d; ++i) {
        if (std::fabs(a[i] - b[i]) > radius) return false;
      }
      return true;
    }
    return Distance(a, b, d) <= radius;
  }

  /// Minimum ||q - y||_p over points y inside the axis-aligned box
  /// [lo, hi]^d. Used by the k-d tree to prune subtrees.
  double MinDistanceToBox(const double* q, const double* lo, const double* hi,
                          size_t d) const {
    if (p_ == kInf) {
      double m = 0.0;
      for (size_t i = 0; i < d; ++i) {
        double gap = 0.0;
        if (q[i] < lo[i]) gap = lo[i] - q[i];
        else if (q[i] > hi[i]) gap = q[i] - hi[i];
        m = std::max(m, gap);
      }
      return m;
    }
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) {
      double gap = 0.0;
      if (q[i] < lo[i]) gap = lo[i] - q[i];
      else if (q[i] > hi[i]) gap = q[i] - hi[i];
      s += (p_ == 2.0) ? gap * gap : ((p_ == 1.0) ? gap : std::pow(gap, p_));
    }
    if (p_ == 2.0) return std::sqrt(s);
    if (p_ == 1.0) return s;
    return std::pow(s, 1.0 / p_);
  }

 private:
  double p_;
};

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_LP_NORM_H_
