#include "storage/spatial_index.h"

namespace qreg {
namespace storage {

std::vector<int64_t> SpatialIndex::RadiusSearch(const double* center, double radius,
                                                const LpNorm& norm,
                                                SelectionStats* stats) const {
  std::vector<int64_t> ids;
  RadiusVisit(
      center, radius, norm,
      [&ids](int64_t id, const double*, double) { ids.push_back(id); }, stats);
  return ids;
}

}  // namespace storage
}  // namespace qreg
