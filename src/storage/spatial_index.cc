#include "storage/spatial_index.h"

namespace qreg {
namespace storage {

std::vector<ScanPartition> SpatialIndex::MakePartitions(size_t) const {
  ScanPartition all;
  all.begin = 0;
  all.end = -1;  // Sentinel: "everything"; only RadiusVisitPartition reads it.
  return {all};
}

void SpatialIndex::RadiusVisitPartition(const ScanPartition&, const double* center,
                                        double radius, const LpNorm& norm,
                                        const RowVisitor& visit,
                                        SelectionStats* stats) const {
  RadiusVisit(center, radius, norm, visit, stats);
}

void SpatialIndex::BlockVisit(const double* center, double radius,
                              const LpNorm& norm, BlockKernel* kernel,
                              SelectionStats* stats) const {
  // Fallback for access paths without native blocked storage: wrap each
  // visited row as a one-row span. Native indexes override this.
  RadiusVisit(
      center, radius, norm,
      [kernel](int64_t id, const double* x, double u) {
        static constexpr int32_t kLane0 = 0;
        BlockSpan span;
        span.xs = x;
        span.us = &u;
        span.ids = &id;
        span.sel = &kLane0;
        span.count = 1;
        span.rows = 1;
        // d is unknown here; XAt(0) still returns `x` because sel[0] == 0.
        kernel->OnBlock(span);
      },
      stats);
}

void SpatialIndex::BlockVisitPartition(const ScanPartition& part,
                                       const double* center, double radius,
                                       const LpNorm& norm, BlockKernel* kernel,
                                       SelectionStats* stats) const {
  RadiusVisitPartition(
      part, center, radius, norm,
      [kernel](int64_t id, const double* x, double u) {
        static constexpr int32_t kLane0 = 0;
        BlockSpan span;
        span.xs = x;
        span.us = &u;
        span.ids = &id;
        span.sel = &kLane0;
        span.count = 1;
        span.rows = 1;
        kernel->OnBlock(span);
      },
      stats);
}

std::vector<int64_t> SpatialIndex::RadiusSearch(const double* center, double radius,
                                                const LpNorm& norm,
                                                SelectionStats* stats) const {
  std::vector<int64_t> ids;
  class Collect : public BlockKernel {
   public:
    explicit Collect(std::vector<int64_t>* out) : out_(out) {}
    void OnBlock(const BlockSpan& span) override {
      for (int32_t k = 0; k < span.count; ++k) out_->push_back(span.IdAt(k));
    }
   private:
    std::vector<int64_t>* out_;
  } collect(&ids);
  BlockVisit(center, radius, norm, &collect, stats);
  return ids;
}

}  // namespace storage
}  // namespace qreg
