#include "storage/spatial_index.h"

namespace qreg {
namespace storage {

std::vector<ScanPartition> SpatialIndex::MakePartitions(size_t) const {
  ScanPartition all;
  all.begin = 0;
  all.end = -1;  // Sentinel: "everything"; only RadiusVisitPartition reads it.
  return {all};
}

void SpatialIndex::RadiusVisitPartition(const ScanPartition&, const double* center,
                                        double radius, const LpNorm& norm,
                                        const RowVisitor& visit,
                                        SelectionStats* stats) const {
  RadiusVisit(center, radius, norm, visit, stats);
}

std::vector<int64_t> SpatialIndex::RadiusSearch(const double* center, double radius,
                                                const LpNorm& norm,
                                                SelectionStats* stats) const {
  std::vector<int64_t> ids;
  RadiusVisit(
      center, radius, norm,
      [&ids](int64_t id, const double*, double) { ids.push_back(id); }, stats);
  return ids;
}

}  // namespace storage
}  // namespace qreg
