// In-memory table of (x, u) pairs: the dataset relation B that the exact
// query engine (the "DBMS" of the paper's Figure 2) scans or indexes.
//
// Features are stored row-major and contiguous so radius scans stream
// sequentially; the output attribute u is a separate column.

#ifndef QREG_STORAGE_TABLE_H_
#define QREG_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace qreg {
namespace storage {

/// \brief Attribute names for a (x_1..x_d, u) relation.
struct Schema {
  std::vector<std::string> feature_names;
  std::string output_name = "u";

  /// Default schema x1..xd / u.
  static Schema Default(size_t d);

  size_t dimension() const { return feature_names.size(); }
};

/// \brief Append-only in-memory relation of d input features and one output.
class Table {
 public:
  /// Creates an empty table with the default schema for dimension d.
  explicit Table(size_t d) : schema_(Schema::Default(d)), d_(d) {}
  explicit Table(Schema schema) : schema_(std::move(schema)), d_(schema_.dimension()) {}

  size_t dimension() const { return d_; }
  int64_t num_rows() const { return static_cast<int64_t>(us_.size()); }
  const Schema& schema() const { return schema_; }

  void Reserve(int64_t rows) {
    xs_.reserve(static_cast<size_t>(rows) * d_);
    us_.reserve(static_cast<size_t>(rows));
  }

  /// Appends one row; x.size() must equal dimension().
  util::Status Append(const std::vector<double>& x, double u);

  /// Appends from a raw pointer (d doubles), no validation.
  void AppendUnchecked(const double* x, double u) {
    xs_.insert(xs_.end(), x, x + d_);
    us_.push_back(u);
  }

  /// Pointer to the d features of row id.
  const double* x(int64_t id) const { return &xs_[static_cast<size_t>(id) * d_]; }

  /// Copy of the feature vector of row id.
  std::vector<double> XRow(int64_t id) const {
    const double* p = x(id);
    return std::vector<double>(p, p + d_);
  }

  double u(int64_t id) const { return us_[static_cast<size_t>(id)]; }

  const std::vector<double>& u_column() const { return us_; }

  /// Per-dimension [min,max] over all rows; empty vectors for empty table.
  void FeatureRanges(std::vector<double>* mins, std::vector<double>* maxs) const;

  /// Resident bytes of the row-major feature store xs_ (capacity, not size:
  /// what the allocator actually holds).
  int64_t FeatureBytes() const {
    return static_cast<int64_t>(xs_.capacity() * sizeof(double));
  }

  /// Resident bytes of the output column us_.
  int64_t OutputBytes() const {
    return static_cast<int64_t>(us_.capacity() * sizeof(double));
  }

  /// Resident bytes of the Schema (attribute-name string storage).
  int64_t SchemaBytes() const;

  /// Approximate resident bytes: features + output + schema strings,
  /// reported separately above so benches can track bytes/row per column.
  int64_t MemoryBytes() const {
    return FeatureBytes() + OutputBytes() + SchemaBytes();
  }

 private:
  Schema schema_;
  size_t d_;
  std::vector<double> xs_;  // row-major, n * d
  std::vector<double> us_;  // n
};

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_TABLE_H_
