// Full-table-scan access path: what a DBMS without a spatial index does for
// a dNN selection (sequential filter). Baseline for Figure 12 and the
// correctness oracle for the k-d tree.
//
// Execution is block-at-a-time: the row-major feature array is streamed in
// kScanBlockRows-row blocks through the branch-free Lp filter and the
// selected lanes are handed to the caller's BlockKernel. RadiusVisit is the
// row-callback adapter over the same blocked scan.

#ifndef QREG_STORAGE_SCAN_INDEX_H_
#define QREG_STORAGE_SCAN_INDEX_H_

#include "storage/spatial_index.h"

namespace qreg {
namespace storage {

/// \brief Sequential-scan selection over a Table.
class ScanIndex : public SpatialIndex {
 public:
  /// The table must outlive the index.
  explicit ScanIndex(const Table& table) : table_(table) {}

  void RadiusVisit(const double* center, double radius, const LpNorm& norm,
                   const RowVisitor& visit, SelectionStats* stats) const override;

  void BlockVisit(const double* center, double radius, const LpNorm& norm,
                  BlockKernel* kernel, SelectionStats* stats) const override;

  /// Equal-size contiguous row ranges (the last absorbs the remainder).
  std::vector<ScanPartition> MakePartitions(size_t target) const override;

  void RadiusVisitPartition(const ScanPartition& part, const double* center,
                            double radius, const LpNorm& norm,
                            const RowVisitor& visit,
                            SelectionStats* stats) const override;

  void BlockVisitPartition(const ScanPartition& part, const double* center,
                           double radius, const LpNorm& norm,
                           BlockKernel* kernel,
                           SelectionStats* stats) const override;

  std::string name() const override { return "scan"; }

 private:
  const Table& table_;
};

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_SCAN_INDEX_H_
