#include "storage/kdtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace qreg {
namespace storage {

KdTree::KdTree(const Table& table, int leaf_size)
    : table_(table), leaf_size_(std::max(1, leaf_size)) {
  const int64_t n = table_.num_rows();
  ids_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids_[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  if (n > 0) {
    nodes_.reserve(static_cast<size_t>(2 * n / leaf_size_ + 2));
    root_ = Build(0, static_cast<int32_t>(n));
    // Leaf-blocked re-layout: copy rows into permuted contiguous storage so
    // every subtree's [begin, end) range is one row-major span.
    const size_t d = table_.dimension();
    xs_perm_.resize(static_cast<size_t>(n) * d);
    us_perm_.resize(static_cast<size_t>(n));
    row_ids_.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const int32_t id = ids_[static_cast<size_t>(i)];
      const double* src = table_.x(id);
      std::copy(src, src + d, &xs_perm_[static_cast<size_t>(i) * d]);
      us_perm_[static_cast<size_t>(i)] = table_.u(id);
      row_ids_[static_cast<size_t>(i)] = id;
    }
    // The build permutation is fully captured by row_ids_ now; release the
    // int32 scratch instead of carrying n dead entries for the tree's life.
    std::vector<int32_t>().swap(ids_);
  }
}

void KdTree::ComputeBox(Node* node) const {
  const size_t d = table_.dimension();
  node->box_lo.assign(d, 0.0);
  node->box_hi.assign(d, 0.0);
  const double* first = table_.x(ids_[static_cast<size_t>(node->begin)]);
  for (size_t j = 0; j < d; ++j) {
    node->box_lo[j] = first[j];
    node->box_hi[j] = first[j];
  }
  for (int32_t i = node->begin + 1; i < node->end; ++i) {
    const double* row = table_.x(ids_[static_cast<size_t>(i)]);
    for (size_t j = 0; j < d; ++j) {
      if (row[j] < node->box_lo[j]) node->box_lo[j] = row[j];
      if (row[j] > node->box_hi[j]) node->box_hi[j] = row[j];
    }
  }
}

int32_t KdTree::Build(int32_t begin, int32_t end) {
  const int32_t node_idx = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
  }
  // ComputeBox reads through ids_; safe to call with the node in place.
  ComputeBox(&nodes_[static_cast<size_t>(node_idx)]);

  if (end - begin <= leaf_size_) return node_idx;

  // Split on the widest box dimension at the median.
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  const size_t d = table_.dimension();
  size_t split_dim = 0;
  double widest = -1.0;
  for (size_t j = 0; j < d; ++j) {
    const double w = node.box_hi[j] - node.box_lo[j];
    if (w > widest) {
      widest = w;
      split_dim = j;
    }
  }
  if (widest <= 0.0) return node_idx;  // All points identical: stay a leaf.

  const int32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid, ids_.begin() + end,
                   [this, split_dim](int32_t a, int32_t b) {
                     return table_.x(a)[split_dim] < table_.x(b)[split_dim];
                   });

  const int32_t left = Build(begin, mid);
  const int32_t right = Build(mid, end);
  nodes_[static_cast<size_t>(node_idx)].left = left;
  nodes_[static_cast<size_t>(node_idx)].right = right;
  return node_idx;
}

void KdTree::BlockVisitNode(int32_t node_idx, const double* center,
                            double radius, const LpNorm& norm,
                            const BlockFilter& filter, BlockKernel* kernel,
                            int64_t* examined, int64_t* matched) const {
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  const size_t d = table_.dimension();
  if (norm.MinDistanceToBox(center, node.box_lo.data(), node.box_hi.data(), d) >
      radius) {
    return;  // Ball cannot intersect this subtree.
  }
  if (node.left < 0) {  // Leaf: stream its contiguous span block-at-a-time.
    double scratch[kScanBlockRows];
    int32_t sel[kScanBlockRows];
    for (int32_t b = node.begin; b < node.end; b += kScanBlockRows) {
      const int32_t rows = std::min<int32_t>(kScanBlockRows, node.end - b);
      const double* xs = PermRow(b);
      const int32_t count =
          filter.Run(xs, rows, d, center, radius, sel, scratch);
      *examined += rows;
      *matched += count;
      if (count > 0) {
        BlockSpan span;
        span.xs = xs;
        span.us = &us_perm_[static_cast<size_t>(b)];
        span.ids = &row_ids_[static_cast<size_t>(b)];
        span.sel = sel;
        span.count = count;
        span.rows = rows;
        span.d = d;
        kernel->OnBlock(span);
      }
    }
    return;
  }
  BlockVisitNode(node.left, center, radius, norm, filter, kernel, examined,
                 matched);
  BlockVisitNode(node.right, center, radius, norm, filter, kernel, examined,
                 matched);
}

void KdTree::BlockVisit(const double* center, double radius, const LpNorm& norm,
                        BlockKernel* kernel, SelectionStats* stats) const {
  if (root_ < 0) return;
  const BlockFilter filter = SelectBlockFilter(norm, table_.dimension());
  int64_t examined = 0;
  int64_t matched = 0;
  BlockVisitNode(root_, center, radius, norm, filter, kernel, &examined,
                 &matched);
  if (stats != nullptr) {
    stats->tuples_examined += examined;
    stats->tuples_matched += matched;
  }
}

void KdTree::BlockVisitPartition(const ScanPartition& part, const double* center,
                                 double radius, const LpNorm& norm,
                                 BlockKernel* kernel,
                                 SelectionStats* stats) const {
  if (part.node < 0 || part.node >= static_cast<int32_t>(nodes_.size())) return;
  const BlockFilter filter = SelectBlockFilter(norm, table_.dimension());
  int64_t examined = 0;
  int64_t matched = 0;
  BlockVisitNode(part.node, center, radius, norm, filter, kernel, &examined,
                 &matched);
  if (stats != nullptr) {
    stats->tuples_examined += examined;
    stats->tuples_matched += matched;
  }
}

void KdTree::RadiusVisit(const double* center, double radius, const LpNorm& norm,
                         const RowVisitor& visit, SelectionStats* stats) const {
  RowVisitorBlockKernel adapter(visit);
  BlockVisit(center, radius, norm, &adapter, stats);
}

std::vector<ScanPartition> KdTree::MakePartitions(size_t target) const {
  std::vector<ScanPartition> plan;
  if (root_ < 0) return plan;

  // Grow a frontier of subtree roots: always split the widest (most rows)
  // splittable node next, so partition sizes stay balanced.
  auto rows_of = [this](int32_t idx) {
    const Node& n = nodes_[static_cast<size_t>(idx)];
    return n.end - n.begin;
  };
  auto cmp = [&rows_of](int32_t a, int32_t b) { return rows_of(a) < rows_of(b); };
  std::priority_queue<int32_t, std::vector<int32_t>, decltype(cmp)> frontier(cmp);
  frontier.push(root_);
  std::vector<int32_t> done;  // Leaves reached before `target` subtrees exist.
  while (frontier.size() + done.size() < std::max<size_t>(target, 1) &&
         !frontier.empty()) {
    const int32_t idx = frontier.top();
    frontier.pop();
    const Node& n = nodes_[static_cast<size_t>(idx)];
    if (n.left < 0) {
      done.push_back(idx);
      continue;
    }
    frontier.push(n.left);
    frontier.push(n.right);
  }
  while (!frontier.empty()) {
    done.push_back(frontier.top());
    frontier.pop();
  }
  // Left-to-right (permuted ranges are disjoint and ordered by construction).
  std::sort(done.begin(), done.end(), [this](int32_t a, int32_t b) {
    return nodes_[static_cast<size_t>(a)].begin < nodes_[static_cast<size_t>(b)].begin;
  });
  plan.reserve(done.size());
  for (int32_t idx : done) {
    ScanPartition p;
    const Node& n = nodes_[static_cast<size_t>(idx)];
    p.begin = n.begin;
    p.end = n.end;
    p.node = idx;
    plan.push_back(p);
  }
  return plan;
}

void KdTree::RadiusVisitPartition(const ScanPartition& part, const double* center,
                                  double radius, const LpNorm& norm,
                                  const RowVisitor& visit,
                                  SelectionStats* stats) const {
  RowVisitorBlockKernel adapter(visit);
  BlockVisitPartition(part, center, radius, norm, &adapter, stats);
}

std::vector<Neighbor> KdTree::NearestNeighbors(const double* center, int k,
                                               const LpNorm& norm) const {
  std::vector<Neighbor> result;
  if (root_ < 0 || k <= 0) return result;

  // Max-heap of the best k found so far.
  auto cmp = [](const Neighbor& a, const Neighbor& b) { return a.distance < b.distance; };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cmp)> heap(cmp);
  const size_t d = table_.dimension();

  // Depth-first with box pruning against the current kth distance.
  std::vector<int32_t> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const int32_t node_idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(node_idx)];
    const double bound =
        (heap.size() == static_cast<size_t>(k)) ? heap.top().distance
                                                : LpNorm::kInf;
    if (norm.MinDistanceToBox(center, node.box_lo.data(), node.box_hi.data(), d) >
        bound) {
      continue;
    }
    if (node.left < 0) {
      // Leaf: permuted storage keeps the candidate rows contiguous.
      for (int32_t i = node.begin; i < node.end; ++i) {
        const double dist = norm.Distance(PermRow(i), center, d);
        if (heap.size() < static_cast<size_t>(k)) {
          heap.push({dist, row_ids_[static_cast<size_t>(i)]});
        } else if (dist < heap.top().distance) {
          heap.pop();
          heap.push({dist, row_ids_[static_cast<size_t>(i)]});
        }
      }
      continue;
    }
    // Descend nearer child first so the bound shrinks early.
    const Node& ln = nodes_[static_cast<size_t>(node.left)];
    const Node& rn = nodes_[static_cast<size_t>(node.right)];
    const double dl = norm.MinDistanceToBox(center, ln.box_lo.data(), ln.box_hi.data(), d);
    const double dr = norm.MinDistanceToBox(center, rn.box_lo.data(), rn.box_hi.data(), d);
    if (dl <= dr) {
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }

  result.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    result[i] = heap.top();
    heap.pop();
  }
  return result;
}

}  // namespace storage
}  // namespace qreg
