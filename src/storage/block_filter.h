// Branch-free block-at-a-time Lp radius filters: the hot inner loop of every
// exact operator (Q1/Q2/moments/Select are all radius scans, Definitions
// 2-5).
//
// A filter takes one contiguous candidate block of row-major feature rows,
// computes each row's distance measure against the query center with no
// per-row branches (the MonetDB/X100-style vectorized layout: a straight
// accumulation loop the compiler can unroll and vectorize, then a
// predicated selection-store pass), and emits the ascending lane indices of
// the rows inside the ball.
//
// Kernel selection happens ONCE per scan via SelectBlockFilter — never per
// row and never per block — so the p-dispatch and the compile-time
// dimension specialization are both hoisted out of the hot loop. For the
// common low dimensions the squared-L2/L1/LInf reductions are instantiated
// with a compile-time d, which lets the compiler fully unroll the
// coordinate loop.
//
// Accept decisions are arithmetic-identical to LpNorm::Within for every row
// (same coordinate order, same compare), so block scans select exactly the
// rows a per-row Within scan would.

#ifndef QREG_STORAGE_BLOCK_FILTER_H_
#define QREG_STORAGE_BLOCK_FILTER_H_

#include <cmath>
#include <cstdint>

#include "storage/lp_norm.h"

namespace qreg {
namespace storage {

/// \brief Candidate rows per block: big enough to amortize kernel dispatch
/// and fill the selection pipeline, small enough that the per-block scratch
/// (distances + selected lanes) stays L1-resident.
constexpr int32_t kScanBlockRows = 256;

/// \brief Filters one candidate block. `xs` points at `rows` row-major rows
/// of `d` doubles; `scratch` must hold >= rows doubles; `sel` must hold >=
/// rows lanes. Writes the ascending lane indices of in-ball rows into `sel`
/// and returns how many. `p` is only read by the generic-p kernel.
using BlockFilterFn = int32_t (*)(const double* xs, int32_t rows, size_t d,
                                  const double* center, double radius,
                                  double p, int32_t* sel, double* scratch);

/// \brief A per-scan resolved filter kernel (function pointer + the p the
/// generic kernel closes over).
struct BlockFilter {
  BlockFilterFn fn = nullptr;
  double p = 2.0;

  int32_t Run(const double* xs, int32_t rows, size_t d, const double* center,
              double radius, int32_t* sel, double* scratch) const {
    return fn(xs, rows, d, center, radius, p, sel, scratch);
  }
};

namespace block_filter_internal {

// Predicated selection-store: no data-dependent branch in the loop body, so
// the compiler emits a compare + conditional increment instead of a
// mispredict-prone branch per row.
inline int32_t CompactLeq(const double* measure, int32_t rows, double bound,
                          int32_t* sel) {
  int32_t count = 0;
  for (int32_t i = 0; i < rows; ++i) {
    sel[count] = i;
    count += measure[i] <= bound ? 1 : 0;
  }
  return count;
}

// Squared-L2 per-row reduction. KD > 0 fixes the dimension at compile time
// (fully unrolled); KD == 0 reads the runtime d.
template <int KD>
inline void Dist2Block(const double* xs, int32_t rows, size_t d,
                       const double* center, double* out) {
  const size_t dim = KD > 0 ? static_cast<size_t>(KD) : d;
  for (int32_t i = 0; i < rows; ++i) {
    const double* row = xs + static_cast<size_t>(i) * dim;
    double acc = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      const double t = row[j] - center[j];
      acc += t * t;
    }
    out[i] = acc;
  }
}

template <int KD>
inline void L1Block(const double* xs, int32_t rows, size_t d,
                    const double* center, double* out) {
  const size_t dim = KD > 0 ? static_cast<size_t>(KD) : d;
  for (int32_t i = 0; i < rows; ++i) {
    const double* row = xs + static_cast<size_t>(i) * dim;
    double acc = 0.0;
    for (size_t j = 0; j < dim; ++j) acc += std::fabs(row[j] - center[j]);
    out[i] = acc;
  }
}

template <int KD>
inline void LInfBlock(const double* xs, int32_t rows, size_t d,
                      const double* center, double* out) {
  const size_t dim = KD > 0 ? static_cast<size_t>(KD) : d;
  for (int32_t i = 0; i < rows; ++i) {
    const double* row = xs + static_cast<size_t>(i) * dim;
    double acc = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      acc = std::max(acc, std::fabs(row[j] - center[j]));
    }
    out[i] = acc;
  }
}

template <int KD>
inline int32_t FilterL2(const double* xs, int32_t rows, size_t d,
                        const double* center, double radius, double /*p*/,
                        int32_t* sel, double* scratch) {
  Dist2Block<KD>(xs, rows, d, center, scratch);
  return CompactLeq(scratch, rows, radius * radius, sel);
}

template <int KD>
inline int32_t FilterL1(const double* xs, int32_t rows, size_t d,
                        const double* center, double radius, double /*p*/,
                        int32_t* sel, double* scratch) {
  L1Block<KD>(xs, rows, d, center, scratch);
  return CompactLeq(scratch, rows, radius, sel);
}

template <int KD>
inline int32_t FilterLInf(const double* xs, int32_t rows, size_t d,
                          const double* center, double radius, double /*p*/,
                          int32_t* sel, double* scratch) {
  LInfBlock<KD>(xs, rows, d, center, scratch);
  return CompactLeq(scratch, rows, radius, sel);
}

// Generic p >= 1: same expression as LpNorm::Distance's generic path
// (pow-accumulate then the 1/p root), so the accept set matches Within.
inline int32_t FilterGeneric(const double* xs, int32_t rows, size_t d,
                             const double* center, double radius, double p,
                             int32_t* sel, double* scratch) {
  for (int32_t i = 0; i < rows; ++i) {
    const double* row = xs + static_cast<size_t>(i) * d;
    double acc = 0.0;
    for (size_t j = 0; j < d; ++j) {
      acc += std::pow(std::fabs(row[j] - center[j]), p);
    }
    scratch[i] = std::pow(acc, 1.0 / p);
  }
  return CompactLeq(scratch, rows, radius, sel);
}

// One row of the dispatch table: the KD-specialized instantiations of a
// norm's filter, indexed by min(d, table width).
template <template <int> class F>
inline BlockFilterFn Specialize(size_t d) {
  switch (d) {
    case 1: return F<1>::fn;
    case 2: return F<2>::fn;
    case 3: return F<3>::fn;
    case 4: return F<4>::fn;
    case 5: return F<5>::fn;
    case 6: return F<6>::fn;
    case 7: return F<7>::fn;
    case 8: return F<8>::fn;
    case 10: return F<10>::fn;
    case 12: return F<12>::fn;
    case 16: return F<16>::fn;
    default: return F<0>::fn;
  }
}

template <int KD> struct L2Table { static constexpr BlockFilterFn fn = &FilterL2<KD>; };
template <int KD> struct L1Table { static constexpr BlockFilterFn fn = &FilterL1<KD>; };
template <int KD> struct LInfTable { static constexpr BlockFilterFn fn = &FilterLInf<KD>; };

}  // namespace block_filter_internal

/// \brief Resolves the filter kernel for (norm, d) once per scan.
inline BlockFilter SelectBlockFilter(const LpNorm& norm, size_t d) {
  namespace bi = block_filter_internal;
  BlockFilter f;
  f.p = norm.p();
  switch (norm.kind()) {
    case LpKind::kL2:
      f.fn = bi::Specialize<bi::L2Table>(d);
      break;
    case LpKind::kL1:
      f.fn = bi::Specialize<bi::L1Table>(d);
      break;
    case LpKind::kLInf:
      f.fn = bi::Specialize<bi::LInfTable>(d);
      break;
    case LpKind::kGeneric:
      f.fn = &bi::FilterGeneric;
      break;
  }
  return f;
}

}  // namespace storage
}  // namespace qreg

#endif  // QREG_STORAGE_BLOCK_FILTER_H_
