#include "service/model_catalog.h"

#include <sys/stat.h>

#include <algorithm>
#include <functional>
#include <utility>

#include "core/model_io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace qreg {
namespace service {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return !path.empty() && ::stat(path.c_str(), &st) == 0;
}

}  // namespace

ModelCatalog::ModelCatalog(size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ModelCatalog::Shard& ModelCatalog::ShardFor(const std::string& name) const {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

void ModelCatalog::SetParallelism(query::ParallelOptions options) {
  // parallel_mu_ is held across the whole update, and Register also inserts
  // under it (lock order: parallel_mu_ -> shard.mu in both paths), so an
  // entry either gets the new options applied here or reads them at
  // registration — never a stale pool pointer in between.
  std::lock_guard<std::mutex> parallel_lock(parallel_mu_);
  parallel_ = options;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& kv : shard->entries) kv.second->engine->set_parallel(options);
  }
}

CatalogOptions CatalogOptions::ForCube(size_t d, double lo, double hi,
                                       double theta_mean, double theta_stddev,
                                       double a, int64_t max_pairs,
                                       uint64_t seed) {
  CatalogOptions opts;
  const double x_range = hi - lo;
  // θ spans roughly [0, µθ + 2σθ]; vigilance scales with that range.
  const double theta_range = std::max(theta_mean + 2.0 * theta_stddev, 1e-6);
  opts.llm = core::LlmConfig::ForDomain(d, a, /*gamma=*/0.01, x_range, theta_range);
  opts.trainer.max_pairs = max_pairs;
  opts.trainer.min_pairs = std::min<int64_t>(max_pairs, 500);
  opts.workload = query::WorkloadConfig::Cube(d, lo, hi, theta_mean,
                                              theta_stddev, seed);
  return opts;
}

util::Status ModelCatalog::Register(const std::string& name,
                                    const storage::Table* table,
                                    const storage::SpatialIndex* index,
                                    CatalogOptions opts, storage::LpNorm norm) {
  if (name.empty()) {
    return util::Status::InvalidArgument("dataset name must be non-empty");
  }
  if (table == nullptr || index == nullptr) {
    return util::Status::InvalidArgument("table and index must be non-null");
  }
  if (table->dimension() != opts.workload.d) {
    return util::Status::InvalidArgument(util::Format(
        "workload dimension %zu does not match table dimension %zu",
        opts.workload.d, table->dimension()));
  }
  if (opts.llm.d != table->dimension()) {
    return util::Status::InvalidArgument(util::Format(
        "model dimension %zu does not match table dimension %zu", opts.llm.d,
        table->dimension()));
  }
  QREG_RETURN_NOT_OK(opts.llm.Validate());
  QREG_RETURN_NOT_OK(query::WorkloadGenerator(opts.workload).Validate());

  auto entry = std::make_shared<Entry>();
  entry->name = name;
  entry->table = table;
  entry->index = index;
  entry->opts = std::move(opts);
  entry->engine = std::make_unique<query::ExactEngine>(*table, *index, norm);

  // Configure the engine and publish the entry under one parallel_mu_ hold
  // so a concurrent SetParallelism either sees this entry in the shard map
  // or is read here — never misses it with stale options.
  std::lock_guard<std::mutex> parallel_lock(parallel_mu_);
  entry->engine->set_parallel(parallel_);
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.count(name) > 0) {
    return util::Status::AlreadyExists(
        util::Format("dataset '%s' is already registered", name.c_str()));
  }
  shard.entries.emplace(name, std::move(entry));
  return util::Status::OK();
}

std::shared_ptr<ModelCatalog::Entry> ModelCatalog::FindEntry(
    const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(name);
  return it == shard.entries.end() ? nullptr : it->second;
}

CatalogSnapshot ModelCatalog::MakeSnapshot(
    const Entry& e, std::shared_ptr<const TrainedState> trained) const {
  CatalogSnapshot snap;
  snap.name = e.name;
  snap.engine = e.engine.get();
  if (trained) {
    snap.model = trained->model;
    snap.report = trained->report;
    snap.warm_started = trained->warm_started;
    snap.generation = trained->generation;
    // Safe to read e.monitor here: it is written before the trained-state
    // publication this snapshot observed, never re-pointed afterwards.
    snap.drift_enabled = e.monitor != nullptr;
    if (snap.model) snap.vigilance = snap.model->config().vigilance;
  }
  return snap;
}

util::Result<CatalogSnapshot> ModelCatalog::GetOrTrain(const std::string& name) {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e) {
    return util::Status::NotFound(
        util::Format("dataset '%s' is not registered", name.c_str()));
  }
  // Fast path: training state already published.
  if (auto trained = std::atomic_load(&e->trained)) {
    return MakeSnapshot(*e, std::move(trained));
  }
  std::lock_guard<std::mutex> train_lock(e->train_mu);
  if (auto trained = std::atomic_load(&e->trained)) {  // Lost the race.
    return MakeSnapshot(*e, std::move(trained));
  }
  QREG_RETURN_NOT_OK(TrainEntry(e.get()));
  return MakeSnapshot(*e, std::atomic_load(&e->trained));
}

util::Status ModelCatalog::TrainEntry(Entry* e) {
  // Warm start: a previously persisted parameter set α skips training
  // entirely (Algorithm 1 freezes α, so the file is authoritative).
  if (FileExists(e->opts.warm_start_path)) {
    auto loaded = core::ModelSerializer::LoadFromFile(e->opts.warm_start_path);
    if (loaded.ok() && loaded->config().d == e->table->dimension()) {
      auto model = std::make_shared<core::LlmModel>(std::move(loaded).value());
      model->Freeze();
      auto state = std::make_shared<TrainedState>();
      state->report.num_prototypes = model->num_prototypes();
      state->report.converged = model->HasConverged();
      state->warm_started = true;
      state->generation = 1;
      SetupDrift(e, *model);
      state->model = std::move(model);
      std::atomic_store(&e->trained,
                        std::shared_ptr<const TrainedState>(std::move(state)));
      return util::Status::OK();
    }
    QREG_LOG_WARN << "catalog: warm start from '" << e->opts.warm_start_path
                  << "' failed ("
                  << (loaded.ok() ? std::string("dimension mismatch")
                                  : loaded.status().ToString())
                  << "); retraining";
  }

  auto model = std::make_shared<core::LlmModel>(e->opts.llm);
  query::WorkloadGenerator workload(e->opts.workload);
  core::Trainer trainer(*e->engine, e->opts.trainer);
  auto report = trainer.Train(&workload, model.get());
  if (!report.ok()) return report.status();
  if (!model->frozen()) model->Freeze();
  auto state = std::make_shared<TrainedState>();
  state->report = std::move(report).value();
  state->warm_started = false;
  state->generation = 1;

  if (!e->opts.warm_start_path.empty()) {
    util::Status saved =
        core::ModelSerializer::SaveToFile(*model, e->opts.warm_start_path);
    if (!saved.ok()) {
      QREG_LOG_WARN << "catalog: persisting model for '" << e->name << "' to '"
                    << e->opts.warm_start_path << "' failed: " << saved;
    }
  }
  SetupDrift(e, *model);
  state->model = std::move(model);
  std::atomic_store(&e->trained,
                    std::shared_ptr<const TrainedState>(std::move(state)));
  return util::Status::OK();
}

void ModelCatalog::SetupDrift(Entry* e, const core::LlmModel& model) {
  if (!e->opts.drift.enabled) return;
  query::WorkloadConfig probe_cfg = e->opts.workload;
  probe_cfg.seed = e->opts.drift.probe_seed;
  auto monitor = std::make_unique<core::DriftMonitor>(e->opts.drift.config);
  auto probe_gen = std::make_unique<query::WorkloadGenerator>(probe_cfg);
  util::Status calibrated = monitor->Calibrate(model, *e->engine, probe_gen.get());
  if (!calibrated.ok()) {
    QREG_LOG_WARN << "catalog: drift calibration for '" << e->name
                  << "' failed (" << calibrated
                  << "); freshness maintenance disabled for this dataset";
    return;
  }
  e->monitor = std::move(monitor);
  e->probe_gen = std::move(probe_gen);
}

bool ModelCatalog::ReportObservation(const std::string& name) {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e || !e->opts.drift.enabled) return false;
  // Trained-state publication happens-after monitor setup, so a non-null
  // load here guarantees `monitor` is safely readable.
  if (std::atomic_load(&e->trained) == nullptr || e->monitor == nullptr) {
    return false;
  }
  const int64_t interval = std::max<int64_t>(1, e->opts.drift.report_interval);
  const int64_t n = e->observations.fetch_add(1, std::memory_order_relaxed) + 1;
  return n % interval == 0;
}

util::Result<RetrainOutcome> ModelCatalog::MaybeRetrain(const std::string& name) {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e) {
    return util::Status::NotFound(
        util::Format("dataset '%s' is not registered", name.c_str()));
  }
  auto trained = std::atomic_load(&e->trained);
  if (!trained || !trained->model) {
    return util::Status::FailedPrecondition(
        util::Format("dataset '%s' has no trained model", name.c_str()));
  }
  if (!e->monitor) {
    return util::Status::FailedPrecondition(util::Format(
        "drift maintenance is not enabled for dataset '%s'", name.c_str()));
  }
  std::unique_lock<std::mutex> lock(e->drift_mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // A probe/retrain for this dataset is already running; let it win.
    RetrainOutcome out;
    out.generation = trained->generation;
    return out;
  }
  trained = std::atomic_load(&e->trained);  // Re-read under the lock.

  // A previous post-retrain recalibration may have failed (e.g. an empty
  // probe window); repair the baseline before probing rather than comparing
  // the current model against a baseline measured on a different one.
  if (!e->monitor->calibrated()) {
    QREG_RETURN_NOT_OK(
        e->monitor->Calibrate(*trained->model, *e->engine, e->probe_gen.get()));
  }

  RetrainOutcome out;
  out.generation = trained->generation;
  auto probe = e->monitor->Probe(*trained->model, *e->engine, e->probe_gen.get());
  if (!probe.ok()) return probe.status();
  out.probed = true;
  out.drift = std::move(probe).value();
  if (!out.drift.drifted) return out;

  // Retrain a private copy: in-flight readers keep serving the old frozen
  // model; the swap below is the only publication point.
  auto fresh = std::make_shared<core::LlmModel>(*trained->model);
  query::WorkloadConfig retrain_cfg = e->opts.workload;
  retrain_cfg.seed = e->opts.workload.seed +
                     static_cast<uint64_t>(trained->generation);  // New stream.
  query::WorkloadGenerator retrain_gen(retrain_cfg);
  auto report = e->monitor->Retrain(fresh.get(), *e->engine, &retrain_gen,
                                    e->opts.drift.retrain_max_pairs);
  if (!report.ok()) return report.status();
  if (!fresh->frozen()) fresh->Freeze();

  // Re-baseline so the next probe measures the *new* model against the new
  // data regime instead of re-tripping on the old baseline forever. On
  // failure the monitor is left uncalibrated — the fresh model still
  // publishes (strictly more current than the drifted one), and the next
  // MaybeRetrain repairs the baseline before probing again, so a stale
  // baseline can never drive a probe-retrain thrash loop.
  util::Status recal = e->monitor->Calibrate(*fresh, *e->engine, e->probe_gen.get());
  if (!recal.ok()) {
    QREG_LOG_WARN << "catalog: post-retrain recalibration for '" << e->name
                  << "' failed (" << recal << "); will recalibrate before the "
                  << "next probe";
  }

  if (!e->opts.warm_start_path.empty()) {
    util::Status saved =
        core::ModelSerializer::SaveToFile(*fresh, e->opts.warm_start_path);
    if (!saved.ok()) {
      QREG_LOG_WARN << "catalog: persisting retrained model for '" << e->name
                    << "' failed: " << saved;
    }
  }

  auto state = std::make_shared<TrainedState>();
  state->report = std::move(report).value();
  state->warm_started = false;
  state->generation = trained->generation + 1;
  state->model = std::move(fresh);
  out.report = state->report;
  out.generation = state->generation;
  out.retrained = true;
  std::atomic_store(&e->trained,
                    std::shared_ptr<const TrainedState>(std::move(state)));
  return out;
}

util::Result<CatalogSnapshot> ModelCatalog::Get(const std::string& name) const {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e) {
    return util::Status::NotFound(
        util::Format("dataset '%s' is not registered", name.c_str()));
  }
  return MakeSnapshot(*e, std::atomic_load(&e->trained));
}

util::Status ModelCatalog::TrainAll() {
  for (const std::string& name : Names()) {
    auto snap = GetOrTrain(name);
    if (!snap.ok()) return snap.status();
  }
  return util::Status::OK();
}

util::Status ModelCatalog::SaveModel(const std::string& name,
                                     const std::string& path) {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e) {
    return util::Status::NotFound(
        util::Format("dataset '%s' is not registered", name.c_str()));
  }
  auto trained = std::atomic_load(&e->trained);
  if (!trained || !trained->model) {
    return util::Status::FailedPrecondition(
        util::Format("dataset '%s' has no trained model", name.c_str()));
  }
  return core::ModelSerializer::SaveToFile(*trained->model, path);
}

bool ModelCatalog::Contains(const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.count(name) > 0;
}

std::vector<std::string> ModelCatalog::Names() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& kv : shard->entries) names.push_back(kv.first);
  }
  std::sort(names.begin(), names.end());  // Shard hash order is meaningless.
  return names;
}

size_t ModelCatalog::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace service
}  // namespace qreg
