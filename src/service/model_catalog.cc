#include "service/model_catalog.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "core/model_io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace qreg {
namespace service {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return !path.empty() && ::stat(path.c_str(), &st) == 0;
}

// Wait granularity for a lifecycle-bounded GetOrTrain waiter whose token is
// cancellable: a CancellationToken has no notification channel (any copy
// can trip it from any thread), so such a waiter re-checks its control at
// bounded slices instead of sleeping on the condition variable
// indefinitely. 1ms keeps the poll cost invisible next to a multi-second
// training while bounding how long a tripped waiter lingers. Deadline-only
// waiters sleep their whole remaining budget, capped at
// kTrainWaitMaxSliceNanos so the duration arithmetic inside WaitFor can
// never overflow a steady_clock time_point.
constexpr int64_t kTrainWaitSliceNanos = 1000000;
constexpr int64_t kTrainWaitMaxSliceNanos = 3600LL * 1000000000;  // 1 hour.

}  // namespace

ModelCatalog::ModelCatalog(size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ModelCatalog::Shard& ModelCatalog::ShardFor(const std::string& name) const {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

void ModelCatalog::SetParallelism(query::ParallelOptions options) {
  // parallel_mu_ is held across the whole update, and Register also inserts
  // under it (lock order: parallel_mu_ -> shard.mu in both paths), so an
  // entry either gets the new options applied here or reads them at
  // registration — never a stale pool pointer in between.
  util::MutexLock parallel_lock(&parallel_mu_);
  parallel_ = options;
  for (auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    for (auto& kv : shard->entries) kv.second->engine->set_parallel(options);
  }
}

CatalogOptions CatalogOptions::ForCube(size_t d, double lo, double hi,
                                       double theta_mean, double theta_stddev,
                                       double a, int64_t max_pairs,
                                       uint64_t seed) {
  CatalogOptions opts;
  const double x_range = hi - lo;
  // θ spans roughly [0, µθ + 2σθ]; vigilance scales with that range.
  const double theta_range = std::max(theta_mean + 2.0 * theta_stddev, 1e-6);
  opts.llm = core::LlmConfig::ForDomain(d, a, /*gamma=*/0.01, x_range, theta_range);
  opts.trainer.max_pairs = max_pairs;
  opts.trainer.min_pairs = std::min<int64_t>(max_pairs, 500);
  opts.workload = query::WorkloadConfig::Cube(d, lo, hi, theta_mean,
                                              theta_stddev, seed);
  return opts;
}

util::Status ModelCatalog::Register(const std::string& name,
                                    const storage::Table* table,
                                    const storage::SpatialIndex* index,
                                    CatalogOptions opts, storage::LpNorm norm) {
  if (name.empty()) {
    return util::Status::InvalidArgument("dataset name must be non-empty");
  }
  if (table == nullptr || index == nullptr) {
    return util::Status::InvalidArgument("table and index must be non-null");
  }
  if (table->dimension() != opts.workload.d) {
    return util::Status::InvalidArgument(util::Format(
        "workload dimension %zu does not match table dimension %zu",
        opts.workload.d, table->dimension()));
  }
  if (opts.llm.d != table->dimension()) {
    return util::Status::InvalidArgument(util::Format(
        "model dimension %zu does not match table dimension %zu", opts.llm.d,
        table->dimension()));
  }
  QREG_RETURN_NOT_OK(opts.llm.Validate());
  QREG_RETURN_NOT_OK(query::WorkloadGenerator(opts.workload).Validate());

  auto entry = std::make_shared<Entry>();
  entry->name = name;
  entry->table = table;
  entry->index = index;
  entry->opts = std::move(opts);
  entry->engine = std::make_unique<query::ExactEngine>(*table, *index, norm);

  // Configure the engine and publish the entry under one parallel_mu_ hold
  // so a concurrent SetParallelism either sees this entry in the shard map
  // or is read here — never misses it with stale options.
  util::MutexLock parallel_lock(&parallel_mu_);
  entry->engine->set_parallel(parallel_);
  Shard& shard = ShardFor(name);
  util::MutexLock lock(&shard.mu);
  if (shard.entries.count(name) > 0) {
    return util::Status::AlreadyExists(
        util::Format("dataset '%s' is already registered", name.c_str()));
  }
  shard.entries.emplace(name, std::move(entry));
  return util::Status::OK();
}

std::shared_ptr<ModelCatalog::Entry> ModelCatalog::FindEntry(
    const std::string& name) const {
  Shard& shard = ShardFor(name);
  util::MutexLock lock(&shard.mu);
  auto it = shard.entries.find(name);
  return it == shard.entries.end() ? nullptr : it->second;
}

CatalogSnapshot ModelCatalog::MakeSnapshot(
    const Entry& e, std::shared_ptr<const TrainedState> trained) const {
  CatalogSnapshot snap;
  snap.name = e.name;
  snap.engine = e.engine.get();
  if (trained) {
    snap.model = trained->model;
    snap.report = trained->report;
    snap.warm_started = trained->warm_started;
    snap.generation = trained->generation;
    // drift_live(): `monitor` is written before the trained-state
    // publication this snapshot observed, never re-pointed afterwards.
    snap.drift_enabled = e.drift_live();
    if (snap.model) snap.vigilance = snap.model->config().vigilance;
  }
  return snap;
}

util::Result<CatalogSnapshot> ModelCatalog::GetOrTrain(
    const std::string& name, const util::ExecControl* control) {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e) {
    return util::Status::NotFound(
        util::Format("dataset '%s' is not registered", name.c_str()));
  }
  // Fast path: training state already published. No lifecycle check — the
  // snapshot is a handful of shared_ptr copies, not work worth aborting.
  if (auto trained = std::atomic_load(&e->trained)) {
    return MakeSnapshot(*e, std::move(trained));
  }
  // Untrained: from here on every outcome costs real work (training, or
  // waiting on someone else's), so an expired/cancelled request exits now —
  // before a single training query runs.
  if (control != nullptr) QREG_RETURN_NOT_OK(control->Check());

  {
    util::MutexLock lock(&e->train_mu);
    while (e->training) {
      // A control that can never trip asynchronously waits on the cv alone.
      if (control == nullptr ||
          (control->deadline.infinite() && !control->cancel.cancellable())) {
        e->train_cv.Wait(&e->train_mu);
        continue;
      }
      // Deadline-bounded wait: a request whose control trips abandons the
      // wait with the typed status instead of blocking behind a training it
      // would abandon anyway; the elected trainer keeps going for the
      // waiters that are still live. A deadline-only control sleeps its
      // whole remaining budget in one WaitFor (the publication notify still
      // wakes it early); a cancellable token has no notification channel,
      // so it is re-polled once per slice.
      int64_t slice = std::min(control->deadline.remaining_nanos(),
                               kTrainWaitMaxSliceNanos);
      if (control->cancel.cancellable()) {
        slice = std::min(slice, kTrainWaitSliceNanos);
      }
      e->train_cv.WaitFor(&e->train_mu, std::max<int64_t>(slice, 1));
      util::Status st = control->Check();
      if (!st.ok()) return st;
    }
    if (auto trained = std::atomic_load(&e->trained)) {  // Someone trained.
      return MakeSnapshot(*e, std::move(trained));
    }
    // We are the elected trainer. Training runs outside train_mu so waiters
    // can observe their own deadlines while it is in flight.
    e->training = true;
  }
  util::Status st = TrainEntry(e.get(), control);
  {
    util::MutexLock lock(&e->train_mu);
    e->training = false;
  }
  e->train_cv.NotifyAll();
  // An aborted training leaves the entry untrained, not poisoned: `trained`
  // was never published, so the next GetOrTrain retries from scratch.
  QREG_RETURN_NOT_OK(st);
  return MakeSnapshot(*e, std::atomic_load(&e->trained));
}

util::Status ModelCatalog::TrainEntry(Entry* e, const util::ExecControl* control) {
  // Warm start: a previously persisted parameter set α skips training
  // entirely (Algorithm 1 freezes α, so the file is authoritative).
  if (FileExists(e->opts.warm_start_path)) {
    auto loaded = core::ModelSerializer::LoadFromFile(e->opts.warm_start_path);
    if (loaded.ok() && loaded->config().d == e->table->dimension()) {
      auto model = std::make_shared<core::LlmModel>(std::move(loaded).value());
      model->Freeze();
      auto state = std::make_shared<TrainedState>();
      state->report.num_prototypes = model->num_prototypes();
      state->report.converged = model->HasConverged();
      state->warm_started = true;
      state->generation = 1;
      SetupDrift(e, *model);
      state->model = std::move(model);
      std::atomic_store(&e->trained,
                        std::shared_ptr<const TrainedState>(std::move(state)));
      return util::Status::OK();
    }
    QREG_LOG_WARN << "catalog: warm start from '" << e->opts.warm_start_path
                  << "' failed ("
                  << (loaded.ok() ? std::string("dimension mismatch")
                                  : loaded.status().ToString())
                  << "); retraining";
  }

  auto model = std::make_shared<core::LlmModel>(e->opts.llm);
  query::WorkloadGenerator workload(e->opts.workload);
  core::Trainer trainer(*e->engine, e->opts.trainer);
  core::TrainingReport partial;
  auto report = trainer.Train(&workload, model.get(), control, &partial);
  if (!report.ok()) {
    const util::StatusCode code = report.status().code();
    if (code == util::StatusCode::kDeadlineExceeded ||
        code == util::StatusCode::kCancelled) {
      QREG_LOG_WARN << "catalog: training for '" << e->name << "' aborted ("
                    << report.status() << ") after " << partial.pairs_used
                    << " pairs / " << partial.num_prototypes
                    << " prototypes; entry stays untrained and retryable";
    }
    return report.status();
  }
  if (!model->frozen()) model->Freeze();
  auto state = std::make_shared<TrainedState>();
  state->report = std::move(report).value();
  state->warm_started = false;
  state->generation = 1;

  if (!e->opts.warm_start_path.empty()) {
    util::Status saved =
        core::ModelSerializer::SaveToFile(*model, e->opts.warm_start_path);
    if (!saved.ok()) {
      QREG_LOG_WARN << "catalog: persisting model for '" << e->name << "' to '"
                    << e->opts.warm_start_path << "' failed: " << saved;
    }
  }
  SetupDrift(e, *model);
  state->model = std::move(model);
  std::atomic_store(&e->trained,
                    std::shared_ptr<const TrainedState>(std::move(state)));
  return util::Status::OK();
}

void ModelCatalog::SetupDrift(Entry* e, const core::LlmModel& model) {
  if (!e->opts.drift.enabled) return;
  query::WorkloadConfig probe_cfg = e->opts.workload;
  probe_cfg.seed = e->opts.drift.probe_seed;
  auto monitor = std::make_unique<core::DriftMonitor>(e->opts.drift.config);
  auto probe_gen = std::make_unique<query::WorkloadGenerator>(probe_cfg);
  util::Status calibrated = monitor->Calibrate(model, *e->engine, probe_gen.get());
  if (!calibrated.ok()) {
    QREG_LOG_WARN << "catalog: drift calibration for '" << e->name
                  << "' failed (" << calibrated
                  << "); freshness maintenance disabled for this dataset";
    return;
  }
  // Publish under drift_mu. No probe/retrain can race this assignment today
  // (both require a trained state, which is only published afterwards), but
  // the guarded fields' discipline is "all writes under drift_mu" — the
  // happens-before argument covering the lock-free drift_live() read relies
  // on this being the one and only re-point of the pointers.
  util::MutexLock lock(&e->drift_mu);
  e->monitor = std::move(monitor);
  e->probe_gen = std::move(probe_gen);
}

bool ModelCatalog::ReportObservation(const std::string& name) {
  return ReportObservationImpl(name, nullptr);
}

bool ModelCatalog::ReportObservation(const std::string& name, double residual) {
  return ReportObservationImpl(name, &residual);
}

bool ModelCatalog::ReportObservationImpl(const std::string& name,
                                         const double* residual) {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e || !e->opts.drift.enabled) return false;
  // Trained-state publication happens-after monitor setup, so a non-null
  // load here guarantees drift_live() is a safe lock-free read.
  if (std::atomic_load(&e->trained) == nullptr || !e->drift_live()) {
    return false;
  }
  if (residual != nullptr && std::isfinite(*residual)) {
    util::MutexLock lock(&e->residual_mu);
    e->residual_sse += *residual * *residual;
    ++e->residual_count;
  }
  const int64_t interval = std::max<int64_t>(1, e->opts.drift.report_interval);
  const int64_t n = e->observations.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % interval != 0) return false;
  return ProbeStillWorthRunning(e.get());
}

bool ModelCatalog::ProbeStillWorthRunning(Entry* e) {
  // If drift_mu is taken, a probe/retrain is already in flight: scheduling
  // another is pointless, and the window must stay *unconsumed* — its
  // residuals are evidence for the next boundary, not this one's to burn.
  // (Lock order drift_mu → residual_mu matches MaybeRetrain's reset.)
  if (!e->drift_mu.TryLock()) return false;
  util::MutexLock drift_lock(&e->drift_mu, util::MutexLock::Adopt{});
  double sse = 0.0;
  int64_t count = 0;
  {
    // Consume the window: this boundary judges the residuals so far.
    util::MutexLock lock(&e->residual_mu);
    sse = e->residual_sse;
    count = e->residual_count;
    e->residual_sse = 0.0;
    e->residual_count = 0;
  }
  const int64_t min_metered = e->opts.drift.min_metered_residuals;
  if (min_metered <= 0 || count < min_metered) {
    return true;  // No (or not enough) free evidence: probe as before.
  }
  if (!e->monitor->calibrated()) return true;  // Probe repairs the baseline.
  const double metered_rmse = std::sqrt(sse / static_cast<double>(count));
  const double threshold =
      std::max(e->opts.drift.config.absolute_threshold,
               e->opts.drift.config.degradation_factor * e->monitor->baseline_rmse());
  // Same strictly-greater criterion as DriftMonitor::Probe: residuals at or
  // under the drift threshold are steady state, and the window's probe is
  // skipped — its `probe_queries` exact scans never reach the worker pool.
  return metered_rmse > threshold;
}

util::Result<RetrainOutcome> ModelCatalog::MaybeRetrain(const std::string& name) {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e) {
    return util::Status::NotFound(
        util::Format("dataset '%s' is not registered", name.c_str()));
  }
  auto trained = std::atomic_load(&e->trained);
  if (!trained || !trained->model) {
    return util::Status::FailedPrecondition(
        util::Format("dataset '%s' has no trained model", name.c_str()));
  }
  // drift_live(): sound lock-free read — `monitor` was assigned before the
  // trained publication observed above and is never re-pointed.
  if (!e->drift_live()) {
    return util::Status::FailedPrecondition(util::Format(
        "drift maintenance is not enabled for dataset '%s'", name.c_str()));
  }
  if (!e->drift_mu.TryLock()) {
    // A probe/retrain for this dataset is already running; let it win.
    RetrainOutcome out;
    out.generation = trained->generation;
    return out;
  }
  util::MutexLock lock(&e->drift_mu, util::MutexLock::Adopt{});
  trained = std::atomic_load(&e->trained);  // Re-read under the lock.

  // A previous post-retrain recalibration may have failed (e.g. an empty
  // probe window); repair the baseline before probing rather than comparing
  // the current model against a baseline measured on a different one.
  if (!e->monitor->calibrated()) {
    QREG_RETURN_NOT_OK(
        e->monitor->Calibrate(*trained->model, *e->engine, e->probe_gen.get()));
  }

  RetrainOutcome out;
  out.generation = trained->generation;
  auto probe = e->monitor->Probe(*trained->model, *e->engine, e->probe_gen.get());
  if (!probe.ok()) return probe.status();
  out.probed = true;
  out.drift = std::move(probe).value();
  if (!out.drift.drifted) return out;

  // Retrain a private copy: in-flight readers keep serving the old frozen
  // model; the swap below is the only publication point.
  auto fresh = std::make_shared<core::LlmModel>(*trained->model);
  query::WorkloadConfig retrain_cfg = e->opts.workload;
  retrain_cfg.seed = e->opts.workload.seed +
                     static_cast<uint64_t>(trained->generation);  // New stream.
  query::WorkloadGenerator retrain_gen(retrain_cfg);
  auto report = e->monitor->Retrain(fresh.get(), *e->engine, &retrain_gen,
                                    e->opts.drift.retrain_max_pairs);
  if (!report.ok()) return report.status();
  if (!fresh->frozen()) fresh->Freeze();

  // Re-baseline so the next probe measures the *new* model against the new
  // data regime instead of re-tripping on the old baseline forever. On
  // failure the monitor is left uncalibrated — the fresh model still
  // publishes (strictly more current than the drifted one), and the next
  // MaybeRetrain repairs the baseline before probing again, so a stale
  // baseline can never drive a probe-retrain thrash loop.
  util::Status recal = e->monitor->Calibrate(*fresh, *e->engine, e->probe_gen.get());
  if (!recal.ok()) {
    QREG_LOG_WARN << "catalog: post-retrain recalibration for '" << e->name
                  << "' failed (" << recal << "); will recalibrate before the "
                  << "next probe";
  }

  if (!e->opts.warm_start_path.empty()) {
    util::Status saved =
        core::ModelSerializer::SaveToFile(*fresh, e->opts.warm_start_path);
    if (!saved.ok()) {
      QREG_LOG_WARN << "catalog: persisting retrained model for '" << e->name
                    << "' failed: " << saved;
    }
  }

  auto state = std::make_shared<TrainedState>();
  state->report = std::move(report).value();
  state->warm_started = false;
  state->generation = trained->generation + 1;
  state->model = std::move(fresh);
  out.report = state->report;
  out.generation = state->generation;
  out.retrained = true;
  std::atomic_store(&e->trained,
                    std::shared_ptr<const TrainedState>(std::move(state)));
  {
    // Residuals metered against the old generation say nothing about the
    // fresh model; start the next gating window clean.
    util::MutexLock residual_lock(&e->residual_mu);
    e->residual_sse = 0.0;
    e->residual_count = 0;
  }
  return out;
}

util::Result<CatalogSnapshot> ModelCatalog::Get(const std::string& name) const {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e) {
    return util::Status::NotFound(
        util::Format("dataset '%s' is not registered", name.c_str()));
  }
  return MakeSnapshot(*e, std::atomic_load(&e->trained));
}

util::Status ModelCatalog::TrainAll() {
  for (const std::string& name : Names()) {
    auto snap = GetOrTrain(name);
    if (!snap.ok()) return snap.status();
  }
  return util::Status::OK();
}

util::Status ModelCatalog::SaveModel(const std::string& name,
                                     const std::string& path) {
  std::shared_ptr<Entry> e = FindEntry(name);
  if (!e) {
    return util::Status::NotFound(
        util::Format("dataset '%s' is not registered", name.c_str()));
  }
  auto trained = std::atomic_load(&e->trained);
  if (!trained || !trained->model) {
    return util::Status::FailedPrecondition(
        util::Format("dataset '%s' has no trained model", name.c_str()));
  }
  return core::ModelSerializer::SaveToFile(*trained->model, path);
}

bool ModelCatalog::Contains(const std::string& name) const {
  Shard& shard = ShardFor(name);
  util::MutexLock lock(&shard.mu);
  return shard.entries.count(name) > 0;
}

std::vector<std::string> ModelCatalog::Names() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    for (const auto& kv : shard->entries) names.push_back(kv.first);
  }
  std::sort(names.begin(), names.end());  // Shard hash order is meaningless.
  return names;
}

size_t ModelCatalog::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace service
}  // namespace qreg
