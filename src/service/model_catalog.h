// Dataset → model registry: the service layer's source of truth for which
// relations exist, how to answer queries against them exactly, and which
// trained LLM model (if any) can answer them approximately.
//
// Each registered dataset carries a (Table, SpatialIndex) pair — both
// non-owned, caller-managed, as with ExactEngine — plus the hyper-parameters
// to train its model. Training is *lazy*: the first GetOrTrain() call (or an
// explicit TrainAll()) drives core::Trainer against the exact engine, after
// which the frozen model is shared immutably with any number of concurrent
// readers. Models warm-start from a core::ModelSerializer file when
// `warm_start_path` points at one, and persist back after a fresh train.

#ifndef QREG_SERVICE_MODEL_CATALOG_H_
#define QREG_SERVICE_MODEL_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/llm_model.h"
#include "core/trainer.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "storage/lp_norm.h"
#include "storage/spatial_index.h"
#include "storage/table.h"
#include "util/status.h"

namespace qreg {
namespace service {

/// \brief Per-dataset training recipe.
struct CatalogOptions {
  core::LlmConfig llm;                ///< Model hyper-parameters (ρ, γ, ...).
  core::TrainerConfig trainer;        ///< Pair budget / convergence policy.
  query::WorkloadConfig workload;     ///< Training-query distribution.

  /// When non-empty: load the model from this ModelSerializer file if it
  /// exists (skipping training), and save a freshly trained model back to it.
  std::string warm_start_path;

  /// Convenience: a recipe for data in [lo, hi]^d with the given radius
  /// distribution, ρ derived from coefficient `a` scaled to the domain.
  static CatalogOptions ForCube(size_t d, double lo, double hi,
                                double theta_mean, double theta_stddev,
                                double a = 0.1, int64_t max_pairs = 20000,
                                uint64_t seed = 1);
};

/// \brief Immutable per-dataset view handed out to executors. The engine
/// pointer stays valid while the catalog (and the registered table/index)
/// lives; the model is shared and frozen.
struct CatalogSnapshot {
  std::string name;
  const query::ExactEngine* engine = nullptr;
  std::shared_ptr<const core::LlmModel> model;  ///< Null until trained.
  core::TrainingReport report;                  ///< Zero until trained.
  double vigilance = 0.0;                       ///< ρ of the trained model.
  bool warm_started = false;                    ///< Loaded, not trained.
};

/// \brief Thread-safe registry of datasets and their trained models.
///
/// Entries are distributed over `num_shards` lock shards by name hash, so
/// concurrent lookups of different datasets never serialize on one mutex;
/// a lookup locks only its own shard for the duration of a map find.
class ModelCatalog {
 public:
  /// `num_shards` is clamped to at least 1. The default spreads well for
  /// catalogs of up to a few hundred datasets.
  explicit ModelCatalog(size_t num_shards = 8);

  ModelCatalog(const ModelCatalog&) = delete;
  ModelCatalog& operator=(const ModelCatalog&) = delete;

  /// Registers a dataset. `table` and `index` are borrowed and must outlive
  /// the catalog. Fails with AlreadyExists on duplicate names and
  /// InvalidArgument on dimension mismatches between table and workload.
  util::Status Register(const std::string& name, const storage::Table* table,
                        const storage::SpatialIndex* index, CatalogOptions opts,
                        storage::LpNorm norm = storage::LpNorm::L2());

  /// Snapshot of a registered dataset; trains (or warm-loads) the model on
  /// first call. Concurrent callers for the same dataset serialize on a
  /// per-entry mutex; only one trains. NotFound for unknown names.
  util::Result<CatalogSnapshot> GetOrTrain(const std::string& name);

  /// Snapshot without triggering training (model may be null). NotFound for
  /// unknown names.
  util::Result<CatalogSnapshot> Get(const std::string& name) const;

  /// Eagerly trains every registered dataset (first error aborts).
  util::Status TrainAll();

  /// Persists a trained model with core::ModelSerializer. FailedPrecondition
  /// if the dataset has not been trained yet.
  util::Status SaveModel(const std::string& name, const std::string& path);

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;  ///< Sorted across all shards.
  size_t size() const;

  /// Attaches intra-query parallelism to every registered exact engine
  /// (and to engines registered later). The pool is borrowed: callers must
  /// either keep it alive for the catalog's lifetime or detach it again
  /// (nullptr pool) before destroying it. Not thread-safe against in-flight
  /// queries: configure during setup, as with ExactEngine::set_parallel.
  void SetParallelism(query::ParallelOptions options);

 private:
  // Everything produced by training, published as one immutable block so
  // concurrent readers never observe a half-written report.
  struct TrainedState {
    std::shared_ptr<const core::LlmModel> model;
    core::TrainingReport report;
    bool warm_started = false;
  };

  struct Entry {
    std::string name;
    const storage::Table* table = nullptr;
    const storage::SpatialIndex* index = nullptr;
    CatalogOptions opts;
    std::unique_ptr<query::ExactEngine> engine;

    std::mutex train_mu;  // Serializes the one-time training.
    // Written once with atomic_store / read with atomic_load: readers never
    // block on train_mu, and never see partial training state.
    std::shared_ptr<const TrainedState> trained;
  };

  // One lock shard: the mutex guards this shard's map only, never entry
  // training (that is the per-entry train_mu's job).
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<Entry>> entries;
  };

  CatalogSnapshot MakeSnapshot(const Entry& e,
                               std::shared_ptr<const TrainedState> trained) const;
  util::Status TrainEntry(Entry* e);

  Shard& ShardFor(const std::string& name) const;
  std::shared_ptr<Entry> FindEntry(const std::string& name) const;

  std::vector<std::unique_ptr<Shard>> shards_;  // Fixed size after ctor.
  // Serializes Register against SetParallelism (lock order: parallel_mu_
  // before shard.mu) so no entry is ever published with stale options.
  mutable std::mutex parallel_mu_;
  query::ParallelOptions parallel_;
};

}  // namespace service
}  // namespace qreg

#endif  // QREG_SERVICE_MODEL_CATALOG_H_
