// Dataset → model registry: the service layer's source of truth for which
// relations exist, how to answer queries against them exactly, and which
// trained LLM model (if any) can answer them approximately.
//
// Each registered dataset carries a (Table, SpatialIndex) pair — both
// non-owned, caller-managed, as with ExactEngine — plus the hyper-parameters
// to train its model. Training is *lazy*: the first GetOrTrain() call (or an
// explicit TrainAll()) drives core::Trainer against the exact engine, after
// which the frozen model is shared immutably with any number of concurrent
// readers. Models warm-start from a core::ModelSerializer file when
// `warm_start_path` points at one, and persist back after a fresh train.
// Lazy training is lifecycle-bounded: GetOrTrain threads the requesting
// query's util::ExecControl into the trainer, so an expired or cancelled
// request aborts training at a query boundary and leaves the entry
// untrained (retryable), and waiters never block behind a training their
// own deadline would abandon.
//
// Model freshness: with a DriftPolicy enabled, each trained model carries a
// calibrated core::DriftMonitor and a monotonically increasing *generation*.
// ReportObservation() counts served queries; MaybeRetrain() probes the
// model's RMSE against fresh exact answers and, when the drift threshold
// trips, retrains a private copy of the model and atomically publishes it
// as the next generation — in-flight readers keep their old shared_ptr, new
// snapshots see the fresh model, and generation-tagged cache keys make every
// stale δ-overlap answer unreachable.

#ifndef QREG_SERVICE_MODEL_CATALOG_H_
#define QREG_SERVICE_MODEL_CATALOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/drift.h"
#include "core/llm_model.h"
#include "core/trainer.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "storage/lp_norm.h"
#include "storage/spatial_index.h"
#include "storage/table.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qreg {
namespace service {

/// \brief When and how a dataset's model is refreshed as the data moves.
struct DriftPolicy {
  /// Off by default: probes execute `probe_queries` *exact* queries, so
  /// freshness is opt-in per dataset.
  bool enabled = false;

  /// Probe window and drift threshold (see core::DriftMonitor).
  core::DriftConfig config;

  /// ReportObservation() returns true (a probe is due) every
  /// `report_interval` served queries. Clamped to at least 1.
  int64_t report_interval = 256;

  /// Pair budget for a drift-triggered retrain (Algorithm 1 resumed on the
  /// new data distribution).
  int64_t retrain_max_pairs = 10000;

  /// Seed of the probe-query stream — a workload distinct from the training
  /// stream so probes measure generalization, not memorized pairs.
  uint64_t probe_seed = 101;

  /// Metered-residual probe gating. Served *exact* answers carry a free
  /// drift signal: the residual between the exact answer and the model's
  /// prediction for the same query, reported via
  /// ReportObservation(name, residual). When at least this many residuals
  /// arrived in an interval window, the window's scheduled probe is skipped
  /// unless the metered RMSE already exceeds the drift threshold — the
  /// `probe_queries` exact scans then only run to *confirm* drift on the
  /// calibrated stream, not to discover it. With fewer samples (e.g. a
  /// model-only router that never executes exactly) probes fire every
  /// interval as before. <= 0 disables gating entirely.
  int64_t min_metered_residuals = 16;
};

/// \brief Per-dataset training recipe.
struct CatalogOptions {
  core::LlmConfig llm;                ///< Model hyper-parameters (ρ, γ, ...).
  core::TrainerConfig trainer;        ///< Pair budget / convergence policy.
  query::WorkloadConfig workload;     ///< Training-query distribution.
  DriftPolicy drift;                  ///< Freshness maintenance (opt-in).

  /// When non-empty: load the model from this ModelSerializer file if it
  /// exists (skipping training), and save a freshly trained model back to it.
  std::string warm_start_path;

  /// Convenience: a recipe for data in [lo, hi]^d with the given radius
  /// distribution, ρ derived from coefficient `a` scaled to the domain.
  static CatalogOptions ForCube(size_t d, double lo, double hi,
                                double theta_mean, double theta_stddev,
                                double a = 0.1, int64_t max_pairs = 20000,
                                uint64_t seed = 1);
};

/// \brief Immutable per-dataset view handed out to executors. The engine
/// pointer stays valid while the catalog (and the registered table/index)
/// lives; the model is shared and frozen.
struct CatalogSnapshot {
  std::string name;
  const query::ExactEngine* engine = nullptr;
  std::shared_ptr<const core::LlmModel> model;  ///< Null until trained.
  core::TrainingReport report;                  ///< Zero until trained.
  double vigilance = 0.0;                       ///< ρ of the trained model.
  bool warm_started = false;                    ///< Loaded, not trained.

  /// Model generation: 0 until trained, 1 after the first train / warm
  /// start, +1 per drift retrain. Tags cache keys so a generation swap
  /// implicitly invalidates every answer produced by older models.
  int64_t generation = 0;

  /// True when drift maintenance is live for this dataset (policy enabled
  /// and the monitor calibrated at training time). Lets callers skip
  /// ReportObservation entirely on the common drift-free path.
  bool drift_enabled = false;
};

/// \brief What one MaybeRetrain() call did.
struct RetrainOutcome {
  /// False when another probe/retrain for the dataset was already in flight
  /// (the call was a no-op; the concurrent one does the work).
  bool probed = false;
  bool retrained = false;          ///< A new generation was published.
  core::DriftReport drift;         ///< Probe measurement (when probed).
  core::TrainingReport report;     ///< Retrain report (when retrained).
  int64_t generation = 0;          ///< Current generation after the call.
};

/// \brief Thread-safe registry of datasets and their trained models.
///
/// Entries are distributed over `num_shards` lock shards by name hash, so
/// concurrent lookups of different datasets never serialize on one mutex;
/// a lookup locks only its own shard for the duration of a map find.
class ModelCatalog {
 public:
  /// `num_shards` is clamped to at least 1. The default spreads well for
  /// catalogs of up to a few hundred datasets.
  explicit ModelCatalog(size_t num_shards = 8);

  ModelCatalog(const ModelCatalog&) = delete;
  ModelCatalog& operator=(const ModelCatalog&) = delete;

  /// Registers a dataset. `table` and `index` are borrowed and must outlive
  /// the catalog. Fails with AlreadyExists on duplicate names and
  /// InvalidArgument on dimension mismatches between table and workload.
  util::Status Register(const std::string& name, const storage::Table* table,
                        const storage::SpatialIndex* index, CatalogOptions opts,
                        storage::LpNorm norm = storage::LpNorm::L2());

  /// Snapshot of a registered dataset; trains (or warm-loads) the model on
  /// first call. Concurrent callers for the same dataset elect one trainer;
  /// the rest wait for its publication. NotFound for unknown names.
  ///
  /// With a non-null `control`, the whole call is lifecycle-bounded:
  ///  - an already-trained entry returns its snapshot unconditionally (the
  ///    fast path does no work worth aborting);
  ///  - an untrained entry with an expired/cancelled control returns the
  ///    typed status without running a single training query;
  ///  - a caller that would have to *wait* for another request's training
  ///    waits in deadline-bounded slices and abandons the wait with the
  ///    typed status the moment its control trips — it never blocks behind
  ///    a training it would abandon anyway;
  ///  - the elected trainer threads `control` into core::Trainer::Train, so
  ///    a mid-train trip aborts within one training-query boundary. The
  ///    entry is left *untrained* (never poisoned): the next GetOrTrain
  ///    simply retries, and concurrent waiters with live controls keep
  ///    waiting for whoever trains next.
  util::Result<CatalogSnapshot> GetOrTrain(
      const std::string& name, const util::ExecControl* control = nullptr);

  /// Snapshot without triggering training (model may be null). NotFound for
  /// unknown names.
  util::Result<CatalogSnapshot> Get(const std::string& name) const;

  /// Eagerly trains every registered dataset (first error aborts).
  util::Status TrainAll();

  /// Persists a trained model with core::ModelSerializer. FailedPrecondition
  /// if the dataset has not been trained yet.
  util::Status SaveModel(const std::string& name, const std::string& path);

  /// Counts one served query against the dataset's drift policy. Returns
  /// true when a drift probe is due (every `report_interval` observations on
  /// a drift-enabled, trained dataset, subject to the metered-residual gate
  /// below) — the caller should then schedule MaybeRetrain off the hot
  /// path. False for unknown, untrained or drift-disabled datasets. Off
  /// interval boundaries the cost is one relaxed fetch_add.
  bool ReportObservation(const std::string& name);

  /// Same, but additionally meters `residual` — the signed difference
  /// between a served *exact* answer and the model's prediction for the
  /// same query, a free drift sample the serving path already paid for.
  /// When an interval window accumulated at least
  /// DriftPolicy::min_metered_residuals of these, the boundary returns true
  /// (probe due) only if the window's residual RMSE exceeds the drift
  /// threshold — healthy metered traffic keeps `probe_queries` exact scans
  /// off the worker pool entirely.
  bool ReportObservation(const std::string& name, double residual);

  /// Probes the dataset's model for drift and, if the threshold trips,
  /// retrains a copy off the shared model and atomically publishes it as
  /// the next generation (recalibrating the monitor's baseline on the new
  /// model). At most one probe/retrain runs per dataset at a time;
  /// concurrent calls return immediately with `probed = false`. Errors:
  /// NotFound (unknown dataset), FailedPrecondition (untrained or drift
  /// not enabled), or a probe/training failure.
  util::Result<RetrainOutcome> MaybeRetrain(const std::string& name);

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;  ///< Sorted across all shards.
  size_t size() const;

  /// Attaches intra-query parallelism to every registered exact engine
  /// (and to engines registered later). The pool is borrowed: callers must
  /// either keep it alive for the catalog's lifetime or detach it again
  /// (nullptr pool) before destroying it. Not thread-safe against in-flight
  /// queries: configure during setup, as with ExactEngine::set_parallel.
  void SetParallelism(query::ParallelOptions options);

 private:
  // Everything produced by training, published as one immutable block so
  // concurrent readers never observe a half-written report.
  struct TrainedState {
    std::shared_ptr<const core::LlmModel> model;
    core::TrainingReport report;
    bool warm_started = false;
    int64_t generation = 0;
  };

  struct Entry {
    std::string name;
    const storage::Table* table = nullptr;
    const storage::SpatialIndex* index = nullptr;
    CatalogOptions opts;
    std::unique_ptr<query::ExactEngine> engine;

    // Trainer election. `training` is true while one GetOrTrain call runs
    // the trainer; others wait on train_cv in deadline-bounded slices so an
    // expired waiter abandons the wait instead of blocking on a mutex the
    // trainer holds for seconds.
    util::Mutex train_mu;
    util::CondVar train_cv;
    bool training QREG_GUARDED_BY(train_mu) = false;
    // Written with atomic_store / read with atomic_load: readers never
    // block on train_mu, and never see partial training state. Rewritten
    // (next generation) by MaybeRetrain under drift_mu.
    std::shared_ptr<const TrainedState> trained;

    // Drift maintenance. `monitor` and `probe_gen` are assigned (under
    // drift_mu) before the first `trained` publication, so any reader that
    // observes a trained state also observes them; drift_live() below is
    // the one sanctioned lock-free read.
    // Serializes probe + retrain + generation swap. Lock order: drift_mu
    // before residual_mu, never the reverse.
    util::Mutex drift_mu QREG_ACQUIRED_BEFORE(residual_mu);
    // Null = drift off.
    std::unique_ptr<core::DriftMonitor> monitor QREG_GUARDED_BY(drift_mu);
    std::unique_ptr<query::WorkloadGenerator> probe_gen
        QREG_GUARDED_BY(drift_mu);
    std::atomic<int64_t> observations{0};

    /// Lock-free "is drift maintenance live?" hint. Sound without drift_mu
    /// because `monitor` is assigned exactly once, before the `trained`
    /// publication the caller has already observed via atomic_load (the
    /// release/acquire pair orders the write), and never re-pointed
    /// afterwards — probes and retrains mutate *through* the pointer under
    /// drift_mu, they never swing it.
    bool drift_live() const QREG_NO_THREAD_SAFETY_ANALYSIS {
      return monitor != nullptr;
    }

    // Metered-residual window (see ReportObservation(name, residual)).
    // Held only for a few arithmetic ops, and never while acquiring
    // drift_mu. Reset at every interval boundary and on a generation swap
    // (old-model residuals say nothing about the new).
    util::Mutex residual_mu;
    double residual_sse QREG_GUARDED_BY(residual_mu) = 0.0;
    int64_t residual_count QREG_GUARDED_BY(residual_mu) = 0;
  };

  // One lock shard: the mutex guards this shard's map only, never entry
  // training (that is the per-entry train_mu's job).
  struct Shard {
    mutable util::Mutex mu;
    std::map<std::string, std::shared_ptr<Entry>> entries QREG_GUARDED_BY(mu);
  };

  CatalogSnapshot MakeSnapshot(const Entry& e,
                               std::shared_ptr<const TrainedState> trained) const;
  util::Status TrainEntry(Entry* e, const util::ExecControl* control);

  /// Shared implementation of the two ReportObservation overloads
  /// (`residual` null = unmetered observation).
  bool ReportObservationImpl(const std::string& name, const double* residual);

  /// Interval-boundary decision: should the due probe actually fire?
  /// Consumes (and resets) the entry's metered-residual window.
  bool ProbeStillWorthRunning(Entry* e);

  /// Creates and calibrates the entry's drift monitor against `model`.
  /// Called before the first trained-state publication; a calibration
  /// failure logs a warning and leaves drift maintenance off (the model
  /// still serves).
  void SetupDrift(Entry* e, const core::LlmModel& model);

  Shard& ShardFor(const std::string& name) const;
  std::shared_ptr<Entry> FindEntry(const std::string& name) const;

  std::vector<std::unique_ptr<Shard>> shards_;  // Fixed size after ctor.
  // Serializes Register against SetParallelism (lock order: parallel_mu_
  // before shard.mu) so no entry is ever published with stale options.
  mutable util::Mutex parallel_mu_;
  query::ParallelOptions parallel_ QREG_GUARDED_BY(parallel_mu_);
};

}  // namespace service
}  // namespace qreg

#endif  // QREG_SERVICE_MODEL_CATALOG_H_
