// δ-overlap semantic answer cache: the paper's degree-of-overlapping δ
// (Equation 9) promoted from a prediction weight to a serving-layer
// cache-admission predicate.
//
// A cached (query, answer) pair answers a new query q when the two query
// balls overlap (Definition 6) AND their overlap degree δ(q, q') meets the
// configured δ_min. δ = 1 only for identical balls and decays toward 0 as
// the balls drift apart, so δ_min directly trades answer staleness-in-space
// for hit rate: δ_min = 1 caches only exact repeats; δ_min → 0 admits any
// overlapping neighbour.
//
// Entries are sharded by an opaque key (the router uses "dataset/kind") and
// evicted LRU per shard. All operations are thread-safe.

#ifndef QREG_SERVICE_ANSWER_CACHE_H_
#define QREG_SERVICE_ANSWER_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/prototype.h"
#include "query/query.h"

namespace qreg {
namespace service {

/// \brief Cache sizing and admission parameters.
struct AnswerCacheConfig {
  /// Max cached answers per shard (dataset × query kind). LRU beyond this.
  size_t capacity_per_shard = 512;

  /// Minimum degree of overlapping δ(q, q') (Eq. 9) for a cached answer to
  /// be reused. In [0, 1].
  double delta_min = 0.9;

  /// Max entries probed per lookup, scanning from most- to least-recently
  /// used; 0 probes the whole shard. Bounds worst-case lookup cost.
  size_t max_probe = 0;
};

/// \brief The reusable payload of one cached answer (Q1 scalar and/or the
/// Q2 list S of local linear models).
struct CachedAnswer {
  query::Query q;      ///< The query that produced this answer.
  double mean = 0.0;   ///< Q1 payload.
  std::vector<core::LocalLinearModel> pieces;  ///< Q2 payload.
  double delta = 1.0;  ///< δ(probe, q) of the admitting lookup (output only).
};

/// \brief Monotonic hit/miss/evict counters.
struct AnswerCacheStats {
  int64_t lookups = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;
  int64_t evictions = 0;

  double HitRate() const {
    return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                       : 0.0;
  }
};

/// \brief Thread-safe sharded LRU cache with δ-overlap admission.
class AnswerCache {
 public:
  explicit AnswerCache(AnswerCacheConfig config);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Probes the shard for the cached query with the highest δ(q, ·) ≥ δ_min
  /// among overlapping entries. On a hit fills `*out` (with `out->delta` set
  /// to the achieved overlap degree), touches the entry's LRU position, and
  /// returns true.
  bool Lookup(const std::string& shard, const query::Query& q,
              CachedAnswer* out);

  /// Caches an answer, evicting the shard's LRU entry beyond capacity. A
  /// second insert with an identical query replaces the previous answer.
  void Insert(const std::string& shard, CachedAnswer answer);

  void Clear();

  AnswerCacheStats stats() const;
  size_t size() const;  ///< Total entries across shards.

  const AnswerCacheConfig& config() const { return config_; }

 private:
  struct Shard {
    std::list<CachedAnswer> entries;  // Front = most recently used.
  };

  AnswerCacheConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Shard> shards_;
  AnswerCacheStats stats_;
  size_t size_ = 0;
};

}  // namespace service
}  // namespace qreg

#endif  // QREG_SERVICE_ANSWER_CACHE_H_
