// δ-overlap semantic answer cache: the paper's degree-of-overlapping δ
// (Equation 9) promoted from a prediction weight to a serving-layer
// cache-admission predicate.
//
// A cached (query, answer) pair answers a new query q when the two query
// balls overlap (Definition 6) AND their overlap degree δ(q, q') meets the
// configured δ_min. δ = 1 only for identical balls and decays toward 0 as
// the balls drift apart, so δ_min directly trades answer staleness-in-space
// for hit rate: δ_min = 1 caches only exact repeats; δ_min → 0 admits any
// overlapping neighbour.
//
// Concurrency & lookup cost:
//   - Entries live in per-key *groups* (the router keys by "dataset/kind"),
//     evicted LRU per group; groups are hashed over `num_shards` shards.
//   - Reads are wait-free: each shard epoch-publishes an immutable snapshot
//     of its groups (entries + per-group probe grid). Lookup loads the
//     current snapshot with one atomic acquire, probes it without taking
//     any lock, and records the LRU touch as an atomic ticket stamp on the
//     hit entry. A concurrent writer can only swing the snapshot pointer to
//     a *new* fully-built snapshot, so readers never observe a torn entry —
//     there is nothing to retry and nothing to block on.
//   - Writers (Insert / EraseGroupsWithPrefix / Clear) still serialize on
//     the shard mutex, copy-on-write the touched group (entry handles are
//     shared, so the copy is pointer-sized per entry), and publish the next
//     snapshot generation with one atomic release store. This trades O(group)
//     writer-side copying for zero reader-side coordination — the right side
//     of the bargain for the write-light production workload.
//   - Hit/miss/insert counters are per-shard atomics, so they stay exact
//     under any reader/writer interleaving.
//   - Within a group, cached query centers are bucketed on a uniform grid.
//     Since admission requires ||x - x'|| ≤ (1 - δ_min)(θ + θ'), a lookup
//     only probes the grid cells within that radius — O(neighbouring cells)
//     instead of O(group) — and falls back to the linear probe whenever the
//     cell fan-out would exceed the group size (small groups, high d). Both
//     paths admit exactly the same entries.
//
// All operations are thread-safe.

#ifndef QREG_SERVICE_ANSWER_CACHE_H_
#define QREG_SERVICE_ANSWER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/prototype.h"
#include "query/query.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qreg {
namespace service {

/// \brief Cache sizing and admission parameters.
struct AnswerCacheConfig {
  /// Max cached answers per group (dataset × query kind). LRU beyond this.
  size_t capacity_per_shard = 512;

  /// Minimum degree of overlapping δ(q, q') (Eq. 9) for a cached answer to
  /// be reused. In [0, 1].
  double delta_min = 0.9;

  /// Max entries probed per lookup; 0 probes every candidate. On the linear
  /// path candidates are scanned newest-insert-first; on the grid path the
  /// probe order is cell order. Bounds worst-case lookup cost.
  size_t max_probe = 0;

  /// Lock shards the groups are hashed over. More shards = less contention
  /// between datasets/kinds; clamped to at least 1.
  size_t num_shards = 8;

  /// Spatial grid bucketing of cached query centers inside each group.
  /// Disable to force the linear δ-probe (the correctness baseline).
  bool enable_grid = true;

  /// Grid lookups probing more than this many cells fall back to the linear
  /// probe (the grid only pays off when cells hold few entries each).
  size_t max_grid_cells = 64;

  /// Bench/testing baseline: make Lookup serialize on the shard mutex like
  /// the pre-epoch implementation, so the reader-scaling micro-bench can
  /// measure mutex-vs-wait-free on the same build. Never enable in
  /// production.
  bool mutex_reader_baseline = false;
};

/// \brief The reusable payload of one cached answer (Q1 scalar and/or the
/// Q2 list S of local linear models).
struct CachedAnswer {
  query::Query q;      ///< The query that produced this answer.
  double mean = 0.0;   ///< Q1 payload.
  std::vector<core::LocalLinearModel> pieces;  ///< Q2 payload.
  double delta = 1.0;  ///< δ(probe, q) of the admitting lookup (output only).
};

/// \brief Monotonic hit/miss/evict counters.
struct AnswerCacheStats {
  int64_t lookups = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;
  int64_t evictions = 0;
  int64_t grid_probes = 0;    ///< Lookups served by the grid path.
  int64_t linear_probes = 0;  ///< Lookups served by the linear path.

  double HitRate() const {
    return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                       : 0.0;
  }
};

/// \brief Thread-safe sharded LRU cache with δ-overlap admission and
/// wait-free (mutex-less) reads.
class AnswerCache {
 public:
  explicit AnswerCache(AnswerCacheConfig config);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Probes the group for the cached query with the highest δ(q, ·) ≥ δ_min
  /// among overlapping entries. On a hit fills `*out` (with `out->delta` set
  /// to the achieved overlap degree), touches the entry's LRU stamp, and
  /// returns true. Takes no mutex: reads run against the shard's current
  /// immutable snapshot.
  bool Lookup(const std::string& group, const query::Query& q,
              CachedAnswer* out);

  /// Caches an answer, evicting the group's least-recently-used entry beyond
  /// capacity. A second insert with an identical query replaces the previous
  /// answer.
  void Insert(const std::string& group, CachedAnswer answer);

  void Clear();

  /// Erases every group whose key starts with `group_prefix` and returns the
  /// number of cached entries dropped. The router uses this to invalidate a
  /// dataset's answers after a drift retrain: cache keys carry the model
  /// generation ("dataset/g<N>/kind"), so a generation swap already stops
  /// stale entries from being served — this reclaims their memory. A lookup
  /// concurrent with the erase may still serve the snapshot it already
  /// loaded (the usual epoch-reclamation semantics).
  size_t EraseGroupsWithPrefix(const std::string& group_prefix);

  AnswerCacheStats stats() const;  ///< Aggregated over all shards.
  size_t size() const;             ///< Total entries across groups.

  const AnswerCacheConfig& config() const { return config_; }

 private:
  /// One immutable cached entry plus its mutable LRU ticket. Entries are
  /// shared between consecutive snapshots, so a reader's ticket stamp is
  /// visible to the writer that picks the eviction victim.
  struct Entry {
    CachedAnswer answer;
    mutable std::atomic<uint64_t> last_used;

    Entry(CachedAnswer a, uint64_t stamp)
        : answer(std::move(a)), last_used(stamp) {}
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  /// Immutable per-group state: entries newest-insert-first plus the probe
  /// grid over entry centers (cell-coordinate hash → entry indices; hash
  /// collisions merely merge cells — extra candidates, never missed ones).
  struct GroupSnapshot {
    std::vector<EntryPtr> entries;
    std::unordered_map<uint64_t, std::vector<int32_t>> grid;
    double cell = 0.0;       // Cell edge length; 0 until the first insert.
    double theta_max = 0.0;  // Largest cached θ (bounds the probe radius).
  };
  using GroupPtr = std::shared_ptr<const GroupSnapshot>;

  struct ShardSnapshot {
    std::unordered_map<std::string, GroupPtr> groups;
  };
  using SnapshotPtr = std::shared_ptr<const ShardSnapshot>;

  struct Shard {
    util::Mutex mu;  // Serializes writers only.
    // Epoch-published via std::atomic_load/store: readers probe the current
    // snapshot without `mu` by design (the wait-free read path above), so
    // the pointer is deliberately *not* GUARDED_BY(mu) — writers hold `mu`
    // only to serialize the copy-on-write against other writers.
    SnapshotPtr snap;
    std::atomic<uint64_t> ticket{1};  // LRU clock shared with readers.
    std::atomic<int64_t> size{0};
    std::atomic<int64_t> lookups{0};
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> inserts{0};
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> grid_probes{0};
    std::atomic<int64_t> linear_probes{0};
  };

  Shard& ShardFor(const std::string& group) const;

  uint64_t CellHash(const double* center, size_t d, double cell) const;
  void RebuildGrid(GroupSnapshot* g) const;

  /// Best admissible entry of an immutable group snapshot, or null. Sets
  /// *delta_out and *used_grid (whether the grid path answered). The caller
  /// keeps the snapshot alive for the duration.
  const Entry* FindBest(const GroupSnapshot& g, const query::Query& q,
                        double* delta_out, bool* used_grid) const;
  const Entry* LinearProbe(const GroupSnapshot& g, const query::Query& q,
                           double* delta_out) const;

  /// The snapshot-probing body of Lookup(). Lock-free against `shard`; the
  /// mutex_reader_baseline branch of Lookup() wraps it in the shard mutex.
  bool LookupImpl(Shard& shard, const std::string& group_key,
                  const query::Query& q, CachedAnswer* out);

  AnswerCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;  // Fixed size after ctor.
};

}  // namespace service
}  // namespace qreg

#endif  // QREG_SERVICE_ANSWER_CACHE_H_
