#include "service/service_stats.h"

#include <algorithm>

#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qreg {
namespace service {

ServiceStats::ServiceStats(size_t latency_window)
    : window_(std::max<size_t>(latency_window, 1)) {
  latencies_.reserve(std::min<size_t>(window_, 4096));
}

void ServiceStats::Record(const QueryOutcome& o) {
  util::MutexLock lock(&mu_);
  ++total_;
  if (!o.ok) ++errors_;
  if (o.cache_hit) ++cache_hits_;
  if (o.used_exact) ++exact_;
  if (o.shed) ++shed_;
  if (o.deadline_exceeded) ++deadline_exceeded_;
  if (o.cancelled) ++cancelled_;
  if (o.degraded) ++degraded_;
  if (o.train_aborted) ++train_aborted_;
  if (o.ok && !o.cache_hit && !o.used_exact) ++model_;
  latency_sum_nanos_ += o.latency_nanos;
  if (latencies_.size() < window_) {
    latencies_.push_back(o.latency_nanos);
  } else {
    latencies_[next_] = o.latency_nanos;
    next_ = (next_ + 1) % window_;
  }
}

void ServiceStats::RecordRetrain() {
  util::MutexLock lock(&mu_);
  ++retrains_;
}

void ServiceStats::RecordNet(const NetActivity& delta) {
  util::MutexLock lock(&mu_);
  net_ += delta;
}

void ServiceStats::RecordNet(size_t loop_index, const NetActivity& delta) {
  util::MutexLock lock(&mu_);
  net_ += delta;
  if (net_loops_.size() <= loop_index) net_loops_.resize(loop_index + 1);
  net_loops_[loop_index] += delta;
}

ServiceSnapshot ServiceStats::Snapshot() const {
  util::MutexLock lock(&mu_);
  ServiceSnapshot s;
  s.total_queries = total_;
  s.errors = errors_;
  s.cache_hits = cache_hits_;
  s.exact_fallbacks = exact_;
  s.model_answers = model_;
  s.shed = shed_;
  s.deadline_exceeded = deadline_exceeded_;
  s.cancelled = cancelled_;
  s.degraded = degraded_;
  s.retrains = retrains_;
  s.train_aborted = train_aborted_;
  s.net_connections_accepted = net_.connections_accepted;
  s.net_connections_closed = net_.connections_closed;
  s.net_frames_decoded = net_.frames_decoded;
  s.net_protocol_errors = net_.protocol_errors;
  s.net_bytes_in = net_.bytes_in;
  s.net_bytes_out = net_.bytes_out;
  s.net_idle_closed = net_.idle_closed;
  s.net_read_timeout_closed = net_.read_timeout_closed;
  s.net_backpressure_closed = net_.backpressure_closed;
  s.net_loops = net_loops_;
  s.elapsed_seconds = clock_.ElapsedSeconds();
  s.qps = s.elapsed_seconds > 0.0
              ? static_cast<double>(total_) / s.elapsed_seconds
              : 0.0;
  s.mean_ms = total_ > 0 ? static_cast<double>(latency_sum_nanos_) / 1e6 /
                               static_cast<double>(total_)
                         : 0.0;
  if (!latencies_.empty()) {
    std::vector<double> ms;
    ms.reserve(latencies_.size());
    for (int64_t n : latencies_) ms.push_back(static_cast<double>(n) / 1e6);
    s.p50_ms = eval::Percentile(ms, 50.0);
    s.p99_ms = eval::Percentile(std::move(ms), 99.0);
  }
  return s;
}

void ServiceStats::Reset() {
  util::MutexLock lock(&mu_);
  clock_.Restart();
  latencies_.clear();
  next_ = 0;
  total_ = errors_ = cache_hits_ = exact_ = model_ = shed_ = 0;
  deadline_exceeded_ = cancelled_ = degraded_ = retrains_ = 0;
  train_aborted_ = 0;
  net_ = NetActivity();
  net_loops_.clear();
  latency_sum_nanos_ = 0;
}

void ServiceSnapshot::PrintTo(std::ostream& os) const {
  util::TablePrinter t({"metric", "value"});
  t.AddRow({"queries", util::Format("%lld", static_cast<long long>(total_queries))});
  t.AddRow({"errors", util::Format("%lld", static_cast<long long>(errors))});
  t.AddRow({"shed", util::Format("%lld", static_cast<long long>(shed))});
  t.AddRow({"deadline exceeded",
            util::Format("%lld", static_cast<long long>(deadline_exceeded))});
  t.AddRow({"cancelled", util::Format("%lld", static_cast<long long>(cancelled))});
  t.AddRow({"degraded (fallback)",
            util::Format("%lld", static_cast<long long>(degraded))});
  t.AddRow({"retrains", util::Format("%lld", static_cast<long long>(retrains))});
  t.AddRow({"train aborted",
            util::Format("%lld", static_cast<long long>(train_aborted))});
  t.AddRow({"net connections accepted",
            util::Format("%lld", static_cast<long long>(net_connections_accepted))});
  t.AddRow({"net connections closed",
            util::Format("%lld", static_cast<long long>(net_connections_closed))});
  t.AddRow({"net frames decoded",
            util::Format("%lld", static_cast<long long>(net_frames_decoded))});
  t.AddRow({"net protocol errors",
            util::Format("%lld", static_cast<long long>(net_protocol_errors))});
  t.AddRow({"net bytes in",
            util::Format("%lld", static_cast<long long>(net_bytes_in))});
  t.AddRow({"net bytes out",
            util::Format("%lld", static_cast<long long>(net_bytes_out))});
  t.AddRow({"net idle closed",
            util::Format("%lld", static_cast<long long>(net_idle_closed))});
  t.AddRow({"net read-timeout closed",
            util::Format("%lld",
                         static_cast<long long>(net_read_timeout_closed))});
  t.AddRow({"net backpressure closed",
            util::Format("%lld",
                         static_cast<long long>(net_backpressure_closed))});
  for (size_t i = 0; i < net_loops.size(); ++i) {
    const NetActivity& l = net_loops[i];
    t.AddRow({util::Format("net loop %zu (conns/frames/bytes out)", i),
              util::Format("%lld / %lld / %lld",
                           static_cast<long long>(l.connections_accepted),
                           static_cast<long long>(l.frames_decoded),
                           static_cast<long long>(l.bytes_out))});
  }
  t.AddRow({"qps", util::Format("%.1f", qps)});
  t.AddRow({"mean latency (ms)", util::Format("%.4f", mean_ms)});
  t.AddRow({"p50 latency (ms)", util::Format("%.4f", p50_ms)});
  t.AddRow({"p99 latency (ms)", util::Format("%.4f", p99_ms)});
  t.AddRow({"cache hit rate", util::Format("%.3f", CacheHitRate())});
  t.AddRow({"exact fallback rate", util::Format("%.3f", ExactFallbackRate())});
  t.AddRow({"model answer rate",
            util::Format("%.3f", total_queries > 0
                                     ? static_cast<double>(model_answers) /
                                           static_cast<double>(total_queries)
                                     : 0.0)});
  t.Print(os);
}

}  // namespace service
}  // namespace qreg
