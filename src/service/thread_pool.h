// Compatibility shim: ThreadPool moved to src/util/ so the exact engine
// (query layer) can use it for partitioned scans without depending on the
// service layer. Service code and tests keep the qreg::service spelling.

#ifndef QREG_SERVICE_THREAD_POOL_H_
#define QREG_SERVICE_THREAD_POOL_H_

#include "util/thread_pool.h"

namespace qreg {
namespace service {

using BlockingCounter = util::BlockingCounter;
using ThreadPool = util::ThreadPool;

}  // namespace service
}  // namespace qreg

#endif  // QREG_SERVICE_THREAD_POOL_H_
