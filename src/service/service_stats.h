// Aggregated serving metrics: QPS, latency percentiles, cache hit rate,
// exact-fallback rate and request-lifecycle counters (deadline expiries,
// cancellations, deadline-degraded answers, drift retrains) — the
// operator's view of the analytics service.

#ifndef QREG_SERVICE_SERVICE_STATS_H_
#define QREG_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace qreg {
namespace service {

/// \brief A batch of wire-level activity, accumulated lock-free by a server
/// event loop and folded into ServiceStats in one Record call.
struct NetActivity {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t frames_decoded = 0;
  int64_t protocol_errors = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  // Lifecycle expiries (all also counted in connections_closed): why the
  // server, not the peer, ended a connection.
  int64_t idle_closed = 0;          ///< Idle timeout (no traffic, no work).
  int64_t read_timeout_closed = 0;  ///< Partial frame never completed in time.
  int64_t backpressure_closed = 0;  ///< Pending-write cap exceeded (slow reader).

  bool empty() const {
    return connections_accepted == 0 && connections_closed == 0 &&
           frames_decoded == 0 && protocol_errors == 0 && bytes_in == 0 &&
           bytes_out == 0 && idle_closed == 0 && read_timeout_closed == 0 &&
           backpressure_closed == 0;
  }

  NetActivity& operator+=(const NetActivity& d) {
    connections_accepted += d.connections_accepted;
    connections_closed += d.connections_closed;
    frames_decoded += d.frames_decoded;
    protocol_errors += d.protocol_errors;
    bytes_in += d.bytes_in;
    bytes_out += d.bytes_out;
    idle_closed += d.idle_closed;
    read_timeout_closed += d.read_timeout_closed;
    backpressure_closed += d.backpressure_closed;
    return *this;
  }
};

/// \brief Point-in-time aggregate of the service counters.
struct ServiceSnapshot {
  int64_t total_queries = 0;
  int64_t errors = 0;
  int64_t cache_hits = 0;
  int64_t exact_fallbacks = 0;  ///< Queries answered by the exact engine.
  int64_t model_answers = 0;    ///< Queries answered by the LLM model.
  int64_t shed = 0;  ///< Queries shed under saturation (cache-served or rejected).

  // Request-lifecycle counters.
  int64_t deadline_exceeded = 0;  ///< Returned kDeadlineExceeded to the caller.
  int64_t cancelled = 0;          ///< Returned kCancelled to the caller.
  int64_t degraded = 0;  ///< Answered by the model fallback under deadline
                         ///< pressure (Answer::used_fallback).
  int64_t retrains = 0;  ///< Drift-triggered model retrains (generation swaps).
  int64_t train_aborted = 0;  ///< Requests whose lazy training was cut short
                              ///< by their deadline/cancellation (the failure
                              ///< is also counted in deadline_exceeded or
                              ///< cancelled; this counter locates it in the
                              ///< training path).

  // Wire-level counters, recorded by the net::Server fronting this router
  // (all zero for a purely in-process service). The scalar net_* fields are
  // the rollup across every event loop; `net_loops` holds the per-loop
  // breakdown when the server records with a loop index, so a skewed accept
  // shard or one starving loop is visible in one snapshot.
  int64_t net_connections_accepted = 0;
  int64_t net_connections_closed = 0;
  int64_t net_frames_decoded = 0;   ///< Complete frames (any type) parsed.
  int64_t net_protocol_errors = 0;  ///< Malformed frames / payloads rejected.
  int64_t net_bytes_in = 0;
  int64_t net_bytes_out = 0;
  int64_t net_idle_closed = 0;
  int64_t net_read_timeout_closed = 0;
  int64_t net_backpressure_closed = 0;
  std::vector<NetActivity> net_loops;  ///< Per-event-loop totals (may be empty).

  double elapsed_seconds = 0.0;  ///< Since construction or Reset().
  double qps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double CacheHitRate() const {
    return total_queries > 0
               ? static_cast<double>(cache_hits) / static_cast<double>(total_queries)
               : 0.0;
  }
  double ExactFallbackRate() const {
    return total_queries > 0 ? static_cast<double>(exact_fallbacks) /
                                   static_cast<double>(total_queries)
                             : 0.0;
  }

  /// Renders the snapshot as an aligned util::TablePrinter table.
  void PrintTo(std::ostream& os) const;
};

/// \brief One served (or failed) query, as the router classified it.
/// `cache_hit` and `used_exact` are mutually exclusive answering paths; an
/// ok answer that is neither counts as a model answer.
struct QueryOutcome {
  int64_t latency_nanos = 0;
  bool ok = false;
  bool cache_hit = false;
  bool used_exact = false;
  bool shed = false;               ///< Handled on the saturation path.
  bool deadline_exceeded = false;  ///< Failed with kDeadlineExceeded.
  bool cancelled = false;          ///< Failed with kCancelled.
  bool degraded = false;           ///< Model fallback under deadline pressure.
  bool train_aborted = false;      ///< The lifecycle trip hit the lazy
                                   ///< training path (GetOrTrain), not a scan.
};

/// \brief Thread-safe collector behind the router. Latencies are kept in a
/// fixed ring (most recent `latency_window` samples) so memory stays bounded
/// under sustained traffic; percentiles are over that window.
class ServiceStats {
 public:
  explicit ServiceStats(size_t latency_window = 1 << 16);

  ServiceStats(const ServiceStats&) = delete;
  ServiceStats& operator=(const ServiceStats&) = delete;

  /// Records one query's outcome.
  void Record(const QueryOutcome& outcome);

  /// Records one drift-triggered retrain (a model-generation swap).
  void RecordRetrain();

  /// Folds a batch of wire-level activity into the aggregate net counters.
  void RecordNet(const NetActivity& delta);

  /// Same, attributed to one event loop: the delta lands both in the
  /// aggregate rollup and in the per-loop totals Snapshot() reports as
  /// `net_loops` (grown on demand; loop indices are dense and small).
  void RecordNet(size_t loop_index, const NetActivity& delta);

  ServiceSnapshot Snapshot() const;

  /// Zeroes all counters and restarts the QPS clock.
  void Reset();

 private:
  const size_t window_;
  mutable util::Mutex mu_;
  util::Stopwatch clock_ QREG_GUARDED_BY(mu_);
  std::vector<int64_t> latencies_ QREG_GUARDED_BY(mu_);  // Ring buffer.
  size_t next_ QREG_GUARDED_BY(mu_) = 0;                 // Ring cursor.
  int64_t total_ QREG_GUARDED_BY(mu_) = 0;
  int64_t errors_ QREG_GUARDED_BY(mu_) = 0;
  int64_t cache_hits_ QREG_GUARDED_BY(mu_) = 0;
  int64_t exact_ QREG_GUARDED_BY(mu_) = 0;
  int64_t model_ QREG_GUARDED_BY(mu_) = 0;
  int64_t shed_ QREG_GUARDED_BY(mu_) = 0;
  int64_t deadline_exceeded_ QREG_GUARDED_BY(mu_) = 0;
  int64_t cancelled_ QREG_GUARDED_BY(mu_) = 0;
  int64_t degraded_ QREG_GUARDED_BY(mu_) = 0;
  int64_t retrains_ QREG_GUARDED_BY(mu_) = 0;
  int64_t train_aborted_ QREG_GUARDED_BY(mu_) = 0;
  // Wire-level totals (see RecordNet).
  NetActivity net_ QREG_GUARDED_BY(mu_);
  // Per-loop totals, indexed by loop.
  std::vector<NetActivity> net_loops_ QREG_GUARDED_BY(mu_);
  // Over *all* samples, not just the window.
  int64_t latency_sum_nanos_ QREG_GUARDED_BY(mu_) = 0;
};

}  // namespace service
}  // namespace qreg

#endif  // QREG_SERVICE_SERVICE_STATS_H_
