// Aggregated serving metrics: QPS, latency percentiles, cache hit rate and
// exact-fallback rate — the operator's view of the analytics service.

#ifndef QREG_SERVICE_SERVICE_STATS_H_
#define QREG_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/timer.h"

namespace qreg {
namespace service {

/// \brief Point-in-time aggregate of the service counters.
struct ServiceSnapshot {
  int64_t total_queries = 0;
  int64_t errors = 0;
  int64_t cache_hits = 0;
  int64_t exact_fallbacks = 0;  ///< Queries answered by the exact engine.
  int64_t model_answers = 0;    ///< Queries answered by the LLM model.
  int64_t shed = 0;  ///< Queries shed under saturation (cache-served or rejected).

  double elapsed_seconds = 0.0;  ///< Since construction or Reset().
  double qps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double CacheHitRate() const {
    return total_queries > 0
               ? static_cast<double>(cache_hits) / static_cast<double>(total_queries)
               : 0.0;
  }
  double ExactFallbackRate() const {
    return total_queries > 0 ? static_cast<double>(exact_fallbacks) /
                                   static_cast<double>(total_queries)
                             : 0.0;
  }

  /// Renders the snapshot as an aligned util::TablePrinter table.
  void PrintTo(std::ostream& os) const;
};

/// \brief Thread-safe collector behind the router. Latencies are kept in a
/// fixed ring (most recent `latency_window` samples) so memory stays bounded
/// under sustained traffic; percentiles are over that window.
class ServiceStats {
 public:
  explicit ServiceStats(size_t latency_window = 1 << 16);

  ServiceStats(const ServiceStats&) = delete;
  ServiceStats& operator=(const ServiceStats&) = delete;

  /// Records one served query. `used_exact`/`cache_hit` are mutually
  /// exclusive classifications of the answering path. `shed` marks queries
  /// handled on the saturation path (either cache-served or rejected).
  void Record(int64_t latency_nanos, bool cache_hit, bool used_exact, bool ok,
              bool shed = false);

  ServiceSnapshot Snapshot() const;

  /// Zeroes all counters and restarts the QPS clock.
  void Reset();

 private:
  const size_t window_;
  mutable std::mutex mu_;
  util::Stopwatch clock_;
  std::vector<int64_t> latencies_;  // Ring buffer.
  size_t next_ = 0;                 // Ring cursor.
  int64_t total_ = 0;
  int64_t errors_ = 0;
  int64_t cache_hits_ = 0;
  int64_t exact_ = 0;
  int64_t model_ = 0;
  int64_t shed_ = 0;
  int64_t latency_sum_nanos_ = 0;  // Over *all* samples, not just the window.
};

}  // namespace service
}  // namespace qreg

#endif  // QREG_SERVICE_SERVICE_STATS_H_
