// The service front door: accepts single or batched Q1/Q2 requests, answers
// each from (in order of preference) the δ-overlap semantic cache, the
// trained LLM model, or the exact engine, and aggregates serving metrics.
//
// Routing follows a configurable accuracy policy. The default hybrid policy
// uses the model's own quantization geometry: a query whose nearest
// prototype lies farther than the vigilance ρ (scaled by `rho_scale`) is
// outside the region the model was trained on — the vigilance test of
// Algorithm 1, reused at serving time — and is routed to the exact engine
// instead of extrapolating.
//
// Batches execute in parallel on a fixed ThreadPool. With 0 worker threads
// the router is fully synchronous, which benches use as the single-threaded
// baseline and tests use for bit-for-bit determinism checks.

#ifndef QREG_SERVICE_QUERY_ROUTER_H_
#define QREG_SERVICE_QUERY_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/prototype.h"
#include "query/exact_engine.h"
#include "query/query.h"
#include "service/answer_cache.h"
#include "service/model_catalog.h"
#include "service/service_stats.h"
#include "service/thread_pool.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace qreg {
namespace service {

/// \brief The two regression-query types of the paper (Definition 4).
enum class QueryKind : int {
  kQ1MeanValue = 0,   ///< Average of u over D(x, θ).
  kQ2Regression = 1,  ///< (Piecewise) linear model of u over D(x, θ).
};

const char* QueryKindName(QueryKind kind);  ///< "Q1" / "Q2".

/// \brief Accuracy policy: which execution path answers a query.
enum class RoutePolicy : int {
  /// Model when the query is inside the trained region (nearest-prototype
  /// distance ≤ rho_scale · ρ), exact engine otherwise.
  kHybrid = 0,
  /// Always the model (errors if the dataset's model failed to train).
  kModelOnly = 1,
  /// Always the exact engine (the cache still applies when enabled).
  kExactOnly = 2,
};

/// \brief What ExecuteBatch does when the worker queue is saturated.
enum class OverloadPolicy : int {
  /// Shed load: a request that cannot be enqueued is answered from the
  /// δ-overlap cache if possible, otherwise rejected in-slot with a typed
  /// kResourceExhausted status. The batch call never blocks on a full queue.
  kShed = 0,
  /// Block in Submit until queue space frees (backpressure on the caller).
  kBlock = 1,
};

/// \brief Router configuration.
struct RouterConfig {
  RoutePolicy policy = RoutePolicy::kHybrid;

  /// Multiplier on the vigilance ρ for the hybrid in-region test. > 1 trusts
  /// the model further from its prototypes; < 1 falls back to exact sooner.
  double rho_scale = 1.0;

  bool enable_cache = true;
  AnswerCacheConfig cache;

  /// Worker threads for ExecuteBatch; 0 executes batches synchronously on
  /// the calling thread.
  size_t num_threads = 0;
  size_t queue_capacity = 256;

  /// Saturation behavior of ExecuteBatch (ROADMAP "graceful degradation").
  OverloadPolicy overload = OverloadPolicy::kShed;

  /// Intra-query parallelism for the exact path: worker threads of a second,
  /// router-owned pool that partitioned RadiusVisit scans fan out on. 0
  /// keeps exact queries single-threaded. Applied to the catalog's engines
  /// at construction (and detached at destruction), so configure one router
  /// per catalog when using this.
  size_t exact_threads = 0;

  /// Partition-plan size for parallel exact scans; 0 = data-driven default.
  size_t exact_partitions = 0;

  /// Latency samples retained for p50/p99 (see ServiceStats).
  size_t latency_window = 1 << 16;
};

/// \brief One query against a registered dataset.
///
/// The optional lifecycle fields bound how long the request may run: a
/// request whose `deadline` is already expired (or whose `cancel` token is
/// already tripped) is rejected at admission with the typed status — before
/// the δ-cache lookup and before any lazy training — so a cache hit can
/// never mask kDeadlineExceeded. Past admission, a trip aborts lazy
/// training within one training-query boundary and an exact scan within one
/// partition-chunk claim. On *mid-scan* deadline pressure the router
/// degrades gracefully to a model answer flagged `used_fallback` before
/// failing with the typed kDeadlineExceeded. Cancellation never degrades:
/// the caller asked for no answer at all.
struct Request {
  std::string dataset;
  QueryKind kind = QueryKind::kQ1MeanValue;
  query::Query q;
  util::Deadline deadline;            ///< Default: no deadline.
  util::CancellationToken cancel;     ///< Default: not cancellable.

  /// Test-only: forwarded into the exact scan's
  /// util::ExecControl::on_chunk_for_testing, so deterministic tests can
  /// trip the deadline/token at an exact chunk of a router-driven scan.
  std::function<void(size_t chunk)> on_chunk_for_testing;

  static Request Q1(std::string dataset, query::Query q) {
    return Request{std::move(dataset), QueryKind::kQ1MeanValue, std::move(q),
                   util::Deadline(), util::CancellationToken(), nullptr};
  }
  static Request Q2(std::string dataset, query::Query q) {
    return Request{std::move(dataset), QueryKind::kQ2Regression, std::move(q),
                   util::Deadline(), util::CancellationToken(), nullptr};
  }
};

/// \brief Which path produced an answer.
enum class AnswerSource : int { kModel = 0, kExact = 1, kCache = 2 };

/// \brief Typed failure of Execute: the Status plus the partial work the
/// service did before the failure (tuples examined, chunks completed/total,
/// total serving latency in `partial.nanos`). The evidence travels *inside*
/// the error instead of through an out-param, so `ExecResult` callers that
/// only care about the code keep using `.status()` and callers that want the
/// partial accounting read `.error().partial` — no threading of pointers.
struct ExecError {
  util::Status status;
  query::ExecStats partial;

  /// Implicit from a bare Status (no partial work to report) so plain
  /// `return util::Status::...` and the QREG_* macros work unchanged in
  /// functions returning ExecResult.
  ExecError(util::Status s) : status(std::move(s)) {}  // NOLINT(runtime/explicit)
  ExecError(util::Status s, query::ExecStats p)
      : status(std::move(s)), partial(p) {}
};

/// \brief A served answer plus per-query execution statistics.
struct Answer {
  QueryKind kind = QueryKind::kQ1MeanValue;
  AnswerSource source = AnswerSource::kModel;

  double mean = 0.0;  ///< Q1 payload.
  std::vector<core::LocalLinearModel> pieces;  ///< Q2 payload (the list S).

  /// δ(q, q') of the admitting cache entry when source == kCache.
  double cache_delta = 0.0;

  /// True when the exact path ran out of deadline mid-scan and this answer
  /// is the model's approximation served in its place (source == kModel).
  bool used_fallback = false;

  /// Exact-path selection statistics (zero for model/cache answers) plus
  /// total serving latency in `exec.nanos`. A degraded answer
  /// (`used_fallback`) keeps the *partial* scan work of the exact attempt
  /// the deadline killed — tuples examined, chunks_completed/chunks_total —
  /// so the abandoned effort stays visible. Failed requests surface the
  /// same partial accounting through ExecResult's `.error().partial`.
  query::ExecStats exec;
};

/// \brief What Execute/ExecuteBatch return: an Answer, or an ExecError whose
/// `.status()` is the typed failure and `.error().partial` the partial work.
using ExecResult = util::Result<Answer, ExecError>;

/// \brief Concurrent Q1/Q2 front door over a ModelCatalog.
class QueryRouter {
 public:
  /// `catalog` is borrowed and must outlive the router. With
  /// `exact_threads > 0` the router attaches its exact-scan pool to the
  /// catalog's engines for its own lifetime (detached again in ~QueryRouter).
  explicit QueryRouter(ModelCatalog* catalog, RouterConfig config = RouterConfig());

  ~QueryRouter();

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  /// Serves one request (lazily training the dataset's model on first touch;
  /// the training run is bounded by the request's deadline/cancellation).
  /// On failure the ExecError carries the typed Status *and* the partial
  /// work done before it (the ExecStats of an aborted exact attempt —
  /// tuples examined, chunks_completed/chunks_total, total latency in
  /// `partial.nanos`) instead of that work being silently discarded.
  ExecResult Execute(const Request& request);

  /// Serves a batch in parallel on the worker pool; results are positionally
  /// aligned with `batch`. Per-request failures (e.g. empty subspace on the
  /// exact path) are returned in-slot, never thrown across the batch.
  std::vector<ExecResult> ExecuteBatch(const std::vector<Request>& batch);

  /// Drift maintenance: probes the dataset's model and, when the drift
  /// threshold trips, retrains and publishes the next model generation
  /// (see ModelCatalog::MaybeRetrain). On a generation swap the router
  /// counts a retrain and drops the dataset's cached answers (their
  /// generation-tagged keys are unreachable anyway). Execute() schedules
  /// this automatically on the worker pool every
  /// DriftPolicy::report_interval served queries of a drift-enabled
  /// dataset; call it directly to force a probe.
  util::Result<RetrainOutcome> MaybeRetrain(const std::string& dataset);

  /// Aggregated serving metrics since construction or ResetStats().
  ServiceSnapshot Stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  AnswerCacheStats CacheStats() const { return cache_.stats(); }

  const RouterConfig& config() const { return config_; }
  ModelCatalog* catalog() const { return catalog_; }

  /// The live stats collector. The net::Server fronting this router records
  /// wire-level activity (connections, frames, bytes, protocol errors) and
  /// server-side admission sheds here, so one snapshot covers the whole
  /// serving stack.
  ServiceStats* stats_sink() { return &stats_; }

  /// The batch worker pool — exposed so tests can saturate it on purpose.
  ThreadPool* pool_for_testing() { return pool_.get(); }

 private:
  /// `outcome` collects what the returned ExecError cannot locate on its
  /// own: whether a lifecycle failure happened in the training path. The
  /// partial-work evidence itself rides inside the ExecError.
  ExecResult ExecuteUnrecorded(const Request& request, QueryOutcome* outcome);
  ExecResult ExecuteModel(const Request& request,
                          const core::LlmModel& model) const;
  ExecResult ExecuteExact(const Request& request,
                          const query::ExactEngine& engine,
                          const util::ExecControl* control) const;

  /// Saturation path: answer from the cache or reject with
  /// kResourceExhausted — never touches the engines. Records stats.
  ExecResult ExecuteShed(const Request& request);

  /// Fire-and-forget drift probe on the worker pool (inline when the pool
  /// is synchronous; dropped when the pool is saturated — the next interval
  /// re-triggers it).
  void ScheduleDriftProbe(const std::string& dataset);

  /// Counts a served answer toward the dataset's drift policy and schedules
  /// a probe when one is due. When `answer` is a served *in-region* exact Q1
  /// answer, the residual against the model's prediction rides along as a
  /// free drift sample (see ModelCatalog::ReportObservation(name, residual)).
  /// `in_region` forwards the routing path's vigilance verdict when it
  /// already computed one (null = not computed), so the prototype scan never
  /// runs twice for the same query. No-op unless the snapshot says drift
  /// maintenance is live.
  void MaybeReportObservation(const Request& request,
                              const CatalogSnapshot& snap,
                              const Answer* answer,
                              const bool* in_region);

  /// Cache-group key "dataset/g<generation>/kind": the generation tag makes
  /// every pre-retrain entry unreachable the moment a new model publishes.
  static std::string ShardKey(const Request& request, int64_t generation);

  ModelCatalog* catalog_;
  RouterConfig config_;
  AnswerCache cache_;
  ServiceStats stats_;
  // Owned via pointer so ~QueryRouter can drain in-flight batch tasks and
  // drift probes *before* detaching the exact pool from the catalog.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPool> exact_pool_;  // Only with exact_threads > 0.
};

}  // namespace service
}  // namespace qreg

#endif  // QREG_SERVICE_QUERY_ROUTER_H_
