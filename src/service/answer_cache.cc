#include "service/answer_cache.h"

#include <algorithm>
#include <utility>

namespace qreg {
namespace service {

AnswerCache::AnswerCache(AnswerCacheConfig config) : config_(config) {
  config_.delta_min = std::min(1.0, std::max(0.0, config_.delta_min));
  if (config_.capacity_per_shard == 0) config_.capacity_per_shard = 1;
}

bool AnswerCache::Lookup(const std::string& shard_key, const query::Query& q,
                         CachedAnswer* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = shards_.find(shard_key);
  if (it == shards_.end()) {
    ++stats_.misses;
    return false;
  }
  Shard& shard = it->second;

  auto best = shard.entries.end();
  double best_delta = 0.0;
  size_t probed = 0;
  for (auto e = shard.entries.begin(); e != shard.entries.end(); ++e) {
    if (config_.max_probe > 0 && probed >= config_.max_probe) break;
    ++probed;
    if (e->q.dimension() != q.dimension()) continue;
    if (e->q == q) {  // Exact repeat: δ = 1, nothing can beat it.
      best = e;
      best_delta = 1.0;
      break;
    }
    if (!query::Overlaps(q, e->q)) continue;  // Predicate A (Definition 6).
    const double delta = query::DegreeOfOverlap(q, e->q);  // Equation 9.
    if (delta >= config_.delta_min && delta > best_delta) {
      best = e;
      best_delta = delta;
    }
  }
  if (best == shard.entries.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (out != nullptr) {
    *out = *best;
    out->delta = best_delta;
  }
  shard.entries.splice(shard.entries.begin(), shard.entries, best);  // Touch.
  return true;
}

void AnswerCache::Insert(const std::string& shard_key, CachedAnswer answer) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& shard = shards_[shard_key];
  // Replace an exact-duplicate query in place (keeps the shard canonical).
  for (auto e = shard.entries.begin(); e != shard.entries.end(); ++e) {
    if (e->q == answer.q) {
      *e = std::move(answer);
      shard.entries.splice(shard.entries.begin(), shard.entries, e);
      return;
    }
  }
  shard.entries.push_front(std::move(answer));
  ++size_;
  ++stats_.inserts;
  if (shard.entries.size() > config_.capacity_per_shard) {
    shard.entries.pop_back();
    --size_;
    ++stats_.evictions;
  }
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.clear();
  size_ = 0;
}

AnswerCacheStats AnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

}  // namespace service
}  // namespace qreg
