#include "service/answer_cache.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

namespace qreg {
namespace service {

namespace {

// splitmix64: cheap avalanche for combining quantized cell coordinates.
inline uint64_t Mix(uint64_t h, uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL + h;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

inline int64_t CellCoord(double x, double cell) {
  return static_cast<int64_t>(std::floor(x / cell));
}

}  // namespace

AnswerCache::AnswerCache(AnswerCacheConfig config) : config_(config) {
  config_.delta_min = std::min(1.0, std::max(0.0, config_.delta_min));
  if (config_.capacity_per_shard == 0) config_.capacity_per_shard = 1;
  if (config_.num_shards == 0) config_.num_shards = 1;
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& group) const {
  return *shards_[std::hash<std::string>{}(group) % shards_.size()];
}

uint64_t AnswerCache::CellHash(const double* center, size_t d, double cell) const {
  uint64_t h = 0xcbf29ce484222325ULL ^ d;
  for (size_t j = 0; j < d; ++j) {
    h = Mix(h, static_cast<uint64_t>(CellCoord(center[j], cell)));
  }
  return h;
}

void AnswerCache::RebuildGrid(GroupSnapshot* g) const {
  g->grid.clear();
  if (!config_.enable_grid || g->cell <= 0.0) return;
  for (size_t i = 0; i < g->entries.size(); ++i) {
    const query::Query& q = g->entries[i]->answer.q;
    g->grid[CellHash(q.center.data(), q.dimension(), g->cell)].push_back(
        static_cast<int32_t>(i));
  }
}

const AnswerCache::Entry* AnswerCache::LinearProbe(const GroupSnapshot& g,
                                                   const query::Query& q,
                                                   double* delta_out) const {
  const Entry* best = nullptr;
  double best_delta = 0.0;
  size_t probed = 0;
  for (const EntryPtr& e : g.entries) {
    if (config_.max_probe > 0 && probed >= config_.max_probe) break;
    ++probed;
    const query::Query& eq = e->answer.q;
    if (eq.dimension() != q.dimension()) continue;
    if (eq == q) {  // Exact repeat: δ = 1, nothing can beat it.
      *delta_out = 1.0;
      return e.get();
    }
    if (!query::Overlaps(q, eq)) continue;  // Predicate A (Definition 6).
    const double delta = query::DegreeOfOverlap(q, eq);  // Equation 9.
    if (delta >= config_.delta_min && delta > best_delta) {
      best = e.get();
      best_delta = delta;
    }
  }
  *delta_out = best_delta;
  return best;
}

const AnswerCache::Entry* AnswerCache::FindBest(const GroupSnapshot& g,
                                                const query::Query& q,
                                                double* delta_out,
                                                bool* used_grid) const {
  *used_grid = false;
  const size_t d = q.dimension();
  if (!config_.enable_grid || g.cell <= 0.0 || d == 0) {
    return LinearProbe(g, q, delta_out);
  }

  // Any admissible entry satisfies ||x - x'|| ≤ (1 - δ_min)(θ + θ') — with
  // θ' bounded by the group's θ_max — so only cells within that radius can
  // hold a hit. Count the cell fan-out first; if it beats a straight scan
  // of the group (small groups, large d), the linear probe wins.
  const double radius = (1.0 - config_.delta_min) * (q.theta + g.theta_max);
  std::vector<int64_t> lo(d), hi(d);
  size_t cells = 1;
  for (size_t j = 0; j < d; ++j) {
    lo[j] = CellCoord(q.center[j] - radius, g.cell);
    hi[j] = CellCoord(q.center[j] + radius, g.cell);
    const uint64_t span = static_cast<uint64_t>(hi[j] - lo[j]) + 1;
    if (span > config_.max_grid_cells) return LinearProbe(g, q, delta_out);
    cells *= static_cast<size_t>(span);
    if (cells > config_.max_grid_cells) return LinearProbe(g, q, delta_out);
  }
  if (cells >= g.entries.size()) {
    return LinearProbe(g, q, delta_out);
  }
  *used_grid = true;

  const Entry* best = nullptr;
  double best_delta = 0.0;
  size_t probed = 0;
  std::vector<int64_t> coord = lo;
  for (;;) {
    uint64_t h = 0xcbf29ce484222325ULL ^ d;
    for (size_t j = 0; j < d; ++j) h = Mix(h, static_cast<uint64_t>(coord[j]));
    auto cell_it = g.grid.find(h);
    if (cell_it != g.grid.end()) {
      for (int32_t idx : cell_it->second) {
        if (config_.max_probe > 0 && probed >= config_.max_probe) break;
        ++probed;
        const Entry* e = g.entries[static_cast<size_t>(idx)].get();
        const query::Query& eq = e->answer.q;
        if (eq.dimension() != d) continue;
        if (eq == q) {
          *delta_out = 1.0;
          return e;
        }
        if (!query::Overlaps(q, eq)) continue;
        const double delta = query::DegreeOfOverlap(q, eq);
        if (delta >= config_.delta_min && delta > best_delta) {
          best = e;
          best_delta = delta;
        }
      }
    }
    // Odometer over the cell box.
    size_t j = 0;
    for (; j < d; ++j) {
      if (++coord[j] <= hi[j]) break;
      coord[j] = lo[j];
    }
    if (j == d) break;
  }
  *delta_out = best_delta;
  return best;
}

bool AnswerCache::Lookup(const std::string& group_key, const query::Query& q,
                         CachedAnswer* out) {
  Shard& shard = ShardFor(group_key);
  if (config_.mutex_reader_baseline) {
    // Bench/testing baseline only: serialize readers like the pre-epoch
    // cache. The branch (instead of a conditionally-engaged lock object)
    // keeps the scoped acquire/release provable by the thread-safety
    // analysis.
    util::MutexLock baseline_lock(&shard.mu);
    return LookupImpl(shard, group_key, q, out);
  }
  return LookupImpl(shard, group_key, q, out);
}

bool AnswerCache::LookupImpl(Shard& shard, const std::string& group_key,
                             const query::Query& q, CachedAnswer* out) {
  shard.lookups.fetch_add(1, std::memory_order_relaxed);
  // The whole read runs against this immutable snapshot; holding the
  // shared_ptr keeps every entry alive even if writers publish (or erase)
  // newer generations meanwhile.
  const SnapshotPtr snap =
      std::atomic_load_explicit(&shard.snap, std::memory_order_acquire);
  const GroupSnapshot* g = nullptr;
  if (snap != nullptr) {
    auto it = snap->groups.find(group_key);
    if (it != snap->groups.end()) g = it->second.get();
  }
  if (g == nullptr) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  double best_delta = 0.0;
  bool used_grid = false;
  const Entry* best = FindBest(*g, q, &best_delta, &used_grid);
  (used_grid ? shard.grid_probes : shard.linear_probes)
      .fetch_add(1, std::memory_order_relaxed);
  if (best == nullptr) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  if (out != nullptr) {
    *out = best->answer;
    out->delta = best_delta;
  }
  // LRU touch: a monotone ticket stamp on the (snapshot-shared) entry, so
  // writers pick eviction victims by minimum stamp. Replaces the list
  // splice of the locked design — readers mutate nothing structural.
  best->last_used.store(shard.ticket.fetch_add(1, std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return true;
}

void AnswerCache::Insert(const std::string& group_key, CachedAnswer answer) {
  Shard& shard = ShardFor(group_key);
  util::MutexLock lock(&shard.mu);
  const SnapshotPtr cur =
      std::atomic_load_explicit(&shard.snap, std::memory_order_acquire);

  auto next = std::make_shared<ShardSnapshot>();
  if (cur != nullptr) next->groups = cur->groups;  // Other groups shared.

  auto g = std::make_shared<GroupSnapshot>();
  auto old_it = next->groups.find(group_key);
  if (old_it != next->groups.end()) {
    const GroupSnapshot& old = *old_it->second;
    g->entries = old.entries;  // Pointer-sized copies; entries are shared.
    g->cell = old.cell;
    g->theta_max = old.theta_max;
  }

  if (config_.enable_grid && g->cell <= 0.0) {
    // Cell edge fixed from the first cached ball: matches the typical probe
    // radius (1 - δ_min)·2θ so hits probe O(3^d ∩ max_grid_cells) cells.
    double base = (1.0 - config_.delta_min) * 2.0 * answer.q.theta;
    if (base <= 1e-12) base = answer.q.theta;
    if (base <= 1e-12) base = 1.0;
    g->cell = base;
  }
  g->theta_max = std::max(g->theta_max, answer.q.theta);

  const uint64_t stamp = shard.ticket.fetch_add(1, std::memory_order_relaxed);
  auto entry = std::make_shared<const Entry>(std::move(answer), stamp);

  // Replace an exact-duplicate query in place (keeps the group canonical).
  // Writers own the group copy, so a plain scan over ≤ capacity entries is
  // fine here — the grid only accelerates the reader path.
  bool replaced = false;
  for (size_t i = 0; i < g->entries.size(); ++i) {
    if (g->entries[i]->answer.q == entry->answer.q) {
      g->entries.erase(g->entries.begin() + static_cast<int64_t>(i));
      g->entries.insert(g->entries.begin(), entry);
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    g->entries.insert(g->entries.begin(), entry);
    shard.size.fetch_add(1, std::memory_order_relaxed);
    shard.inserts.fetch_add(1, std::memory_order_relaxed);
    if (g->entries.size() > config_.capacity_per_shard) {
      // Evict the minimum LRU stamp: exact LRU, since every insert and
      // every hit draws a fresh monotone ticket.
      size_t victim = 0;
      uint64_t victim_stamp = g->entries[0]->last_used.load(std::memory_order_relaxed);
      for (size_t i = 1; i < g->entries.size(); ++i) {
        const uint64_t s = g->entries[i]->last_used.load(std::memory_order_relaxed);
        if (s < victim_stamp) {
          victim_stamp = s;
          victim = i;
        }
      }
      const double victim_theta = g->entries[victim]->answer.q.theta;
      g->entries.erase(g->entries.begin() + static_cast<int64_t>(victim));
      shard.size.fetch_sub(1, std::memory_order_relaxed);
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
      // Don't let one evicted large-θ outlier pin the probe radius (and with
      // it the grid fallback) forever: re-derive the maximum when it leaves.
      if (victim_theta >= g->theta_max) {
        g->theta_max = 0.0;
        for (const EntryPtr& e : g->entries) {
          g->theta_max = std::max(g->theta_max, e->answer.q.theta);
        }
      }
    }
  }
  RebuildGrid(g.get());

  next->groups[group_key] = std::move(g);
  std::atomic_store_explicit(&shard.snap, SnapshotPtr(std::move(next)),
                             std::memory_order_release);
}

size_t AnswerCache::EraseGroupsWithPrefix(const std::string& group_prefix) {
  size_t erased = 0;
  for (auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    const SnapshotPtr cur =
        std::atomic_load_explicit(&shard->snap, std::memory_order_acquire);
    if (cur == nullptr) continue;
    size_t erased_here = 0;
    auto next = std::make_shared<ShardSnapshot>();
    for (const auto& kv : cur->groups) {
      if (kv.first.compare(0, group_prefix.size(), group_prefix) == 0) {
        erased_here += kv.second->entries.size();
      } else {
        next->groups.insert(kv);
      }
    }
    if (erased_here == 0) continue;
    shard->size.fetch_sub(static_cast<int64_t>(erased_here),
                          std::memory_order_relaxed);
    erased += erased_here;
    std::atomic_store_explicit(&shard->snap, SnapshotPtr(std::move(next)),
                               std::memory_order_release);
  }
  return erased;
}

void AnswerCache::Clear() {
  for (auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    std::atomic_store_explicit(&shard->snap, SnapshotPtr(),
                               std::memory_order_release);
    shard->size.store(0, std::memory_order_relaxed);
  }
}

AnswerCacheStats AnswerCache::stats() const {
  AnswerCacheStats total;
  for (const auto& shard : shards_) {
    total.lookups += shard->lookups.load(std::memory_order_relaxed);
    total.hits += shard->hits.load(std::memory_order_relaxed);
    total.misses += shard->misses.load(std::memory_order_relaxed);
    total.inserts += shard->inserts.load(std::memory_order_relaxed);
    total.evictions += shard->evictions.load(std::memory_order_relaxed);
    total.grid_probes += shard->grid_probes.load(std::memory_order_relaxed);
    total.linear_probes += shard->linear_probes.load(std::memory_order_relaxed);
  }
  return total;
}

size_t AnswerCache::size() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->size.load(std::memory_order_relaxed);
  }
  return static_cast<size_t>(total);
}

}  // namespace service
}  // namespace qreg
