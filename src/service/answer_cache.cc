#include "service/answer_cache.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

namespace qreg {
namespace service {

namespace {

// splitmix64: cheap avalanche for combining quantized cell coordinates.
inline uint64_t Mix(uint64_t h, uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL + h;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

inline int64_t CellCoord(double x, double cell) {
  return static_cast<int64_t>(std::floor(x / cell));
}

}  // namespace

AnswerCache::AnswerCache(AnswerCacheConfig config) : config_(config) {
  config_.delta_min = std::min(1.0, std::max(0.0, config_.delta_min));
  if (config_.capacity_per_shard == 0) config_.capacity_per_shard = 1;
  if (config_.num_shards == 0) config_.num_shards = 1;
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& group) const {
  return *shards_[std::hash<std::string>{}(group) % shards_.size()];
}

uint64_t AnswerCache::CellHash(const double* center, size_t d, double cell) const {
  uint64_t h = 0xcbf29ce484222325ULL ^ d;
  for (size_t j = 0; j < d; ++j) {
    h = Mix(h, static_cast<uint64_t>(CellCoord(center[j], cell)));
  }
  return h;
}

void AnswerCache::GridInsert(Group* g, EntryList::iterator it) const {
  g->grid[CellHash(it->q.center.data(), it->q.dimension(), g->cell)].push_back(it);
}

void AnswerCache::GridErase(Group* g, EntryList::iterator it) const {
  const uint64_t key = CellHash(it->q.center.data(), it->q.dimension(), g->cell);
  auto cell_it = g->grid.find(key);
  if (cell_it == g->grid.end()) return;
  auto& bucket = cell_it->second;
  bucket.erase(std::remove(bucket.begin(), bucket.end(), it), bucket.end());
  if (bucket.empty()) g->grid.erase(cell_it);
}

AnswerCache::EntryList::iterator AnswerCache::LinearProbe(
    Group* g, const query::Query& q, double* delta_out) const {
  auto best = g->entries.end();
  double best_delta = 0.0;
  size_t probed = 0;
  for (auto e = g->entries.begin(); e != g->entries.end(); ++e) {
    if (config_.max_probe > 0 && probed >= config_.max_probe) break;
    ++probed;
    if (e->q.dimension() != q.dimension()) continue;
    if (e->q == q) {  // Exact repeat: δ = 1, nothing can beat it.
      best = e;
      best_delta = 1.0;
      break;
    }
    if (!query::Overlaps(q, e->q)) continue;  // Predicate A (Definition 6).
    const double delta = query::DegreeOfOverlap(q, e->q);  // Equation 9.
    if (delta >= config_.delta_min && delta > best_delta) {
      best = e;
      best_delta = delta;
    }
  }
  *delta_out = best_delta;
  return best;
}

AnswerCache::EntryList::iterator AnswerCache::FindBest(Group* g,
                                                       const query::Query& q,
                                                       double* delta_out,
                                                       bool* used_grid) const {
  *used_grid = false;
  const size_t d = q.dimension();
  if (!config_.enable_grid || g->cell <= 0.0 || d == 0) {
    return LinearProbe(g, q, delta_out);
  }

  // Any admissible entry satisfies ||x - x'|| ≤ (1 - δ_min)(θ + θ') — with
  // θ' bounded by the group's θ_max — so only cells within that radius can
  // hold a hit. Count the cell fan-out first; if it beats a straight scan
  // of the group (small groups, large d), the linear probe wins.
  const double radius = (1.0 - config_.delta_min) * (q.theta + g->theta_max);
  std::vector<int64_t> lo(d), hi(d);
  size_t cells = 1;
  for (size_t j = 0; j < d; ++j) {
    lo[j] = CellCoord(q.center[j] - radius, g->cell);
    hi[j] = CellCoord(q.center[j] + radius, g->cell);
    const uint64_t span = static_cast<uint64_t>(hi[j] - lo[j]) + 1;
    if (span > config_.max_grid_cells) return LinearProbe(g, q, delta_out);
    cells *= static_cast<size_t>(span);
    if (cells > config_.max_grid_cells) return LinearProbe(g, q, delta_out);
  }
  if (cells >= g->entries.size()) {
    return LinearProbe(g, q, delta_out);
  }
  *used_grid = true;

  auto best = g->entries.end();
  double best_delta = 0.0;
  size_t probed = 0;
  std::vector<int64_t> coord = lo;
  for (;;) {
    uint64_t h = 0xcbf29ce484222325ULL ^ d;
    for (size_t j = 0; j < d; ++j) h = Mix(h, static_cast<uint64_t>(coord[j]));
    auto cell_it = g->grid.find(h);
    if (cell_it != g->grid.end()) {
      for (EntryList::iterator e : cell_it->second) {
        if (config_.max_probe > 0 && probed >= config_.max_probe) break;
        ++probed;
        if (e->q.dimension() != d) continue;
        if (e->q == q) {
          *delta_out = 1.0;
          return e;
        }
        if (!query::Overlaps(q, e->q)) continue;
        const double delta = query::DegreeOfOverlap(q, e->q);
        if (delta >= config_.delta_min && delta > best_delta) {
          best = e;
          best_delta = delta;
        }
      }
    }
    // Odometer over the cell box.
    size_t j = 0;
    for (; j < d; ++j) {
      if (++coord[j] <= hi[j]) break;
      coord[j] = lo[j];
    }
    if (j == d) break;
  }
  *delta_out = best_delta;
  return best;
}

bool AnswerCache::Lookup(const std::string& group_key, const query::Query& q,
                         CachedAnswer* out) {
  Shard& shard = ShardFor(group_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.stats.lookups;
  auto it = shard.groups.find(group_key);
  if (it == shard.groups.end()) {
    ++shard.stats.misses;
    return false;
  }
  Group& g = it->second;

  double best_delta = 0.0;
  bool used_grid = false;
  auto best = FindBest(&g, q, &best_delta, &used_grid);
  if (used_grid) {
    ++shard.stats.grid_probes;
  } else {
    ++shard.stats.linear_probes;
  }
  if (best == g.entries.end()) {
    ++shard.stats.misses;
    return false;
  }
  ++shard.stats.hits;
  if (out != nullptr) {
    *out = *best;
    out->delta = best_delta;
  }
  // Touch: splice preserves iterators, so the grid stays valid.
  g.entries.splice(g.entries.begin(), g.entries, best);
  return true;
}

void AnswerCache::Insert(const std::string& group_key, CachedAnswer answer) {
  Shard& shard = ShardFor(group_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Group& g = shard.groups[group_key];
  if (config_.enable_grid && g.cell <= 0.0) {
    // Cell edge fixed from the first cached ball: matches the typical probe
    // radius (1 - δ_min)·2θ so hits probe O(3^d ∩ max_grid_cells) cells.
    double base = (1.0 - config_.delta_min) * 2.0 * answer.q.theta;
    if (base <= 1e-12) base = answer.q.theta;
    if (base <= 1e-12) base = 1.0;
    g.cell = base;
  }
  g.theta_max = std::max(g.theta_max, answer.q.theta);

  // Replace an exact-duplicate query in place (keeps the group canonical).
  // Every entry is grid-registered, so the duplicate — same center, same
  // cell — is found by probing one bucket instead of scanning the group.
  if (config_.enable_grid) {
    auto cell_it = g.grid.find(
        CellHash(answer.q.center.data(), answer.q.dimension(), g.cell));
    if (cell_it != g.grid.end()) {
      for (EntryList::iterator e : cell_it->second) {
        if (e->q == answer.q) {
          *e = std::move(answer);  // Same center ⇒ same grid cell.
          g.entries.splice(g.entries.begin(), g.entries, e);
          return;
        }
      }
    }
  } else {
    for (auto e = g.entries.begin(); e != g.entries.end(); ++e) {
      if (e->q == answer.q) {
        *e = std::move(answer);
        g.entries.splice(g.entries.begin(), g.entries, e);
        return;
      }
    }
  }
  g.entries.push_front(std::move(answer));
  if (config_.enable_grid) GridInsert(&g, g.entries.begin());
  ++shard.size;
  ++shard.stats.inserts;
  if (g.entries.size() > config_.capacity_per_shard) {
    auto victim = std::prev(g.entries.end());
    const double victim_theta = victim->q.theta;
    if (config_.enable_grid) GridErase(&g, victim);
    g.entries.pop_back();
    --shard.size;
    ++shard.stats.evictions;
    // Don't let one evicted large-θ outlier pin the probe radius (and with
    // it the grid fallback) forever: re-derive the maximum when it leaves.
    if (victim_theta >= g.theta_max) {
      g.theta_max = 0.0;
      for (const CachedAnswer& e : g.entries) {
        g.theta_max = std::max(g.theta_max, e.q.theta);
      }
    }
  }
}

size_t AnswerCache::EraseGroupsWithPrefix(const std::string& group_prefix) {
  size_t erased = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->groups.begin(); it != shard->groups.end();) {
      if (it->first.compare(0, group_prefix.size(), group_prefix) == 0) {
        erased += it->second.entries.size();
        shard->size -= it->second.entries.size();
        it = shard->groups.erase(it);
      } else {
        ++it;
      }
    }
  }
  return erased;
}

void AnswerCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->groups.clear();
    shard->size = 0;
  }
}

AnswerCacheStats AnswerCache::stats() const {
  AnswerCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.lookups += shard->stats.lookups;
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.inserts += shard->stats.inserts;
    total.evictions += shard->stats.evictions;
    total.grid_probes += shard->stats.grid_probes;
    total.linear_probes += shard->stats.linear_probes;
  }
  return total;
}

size_t AnswerCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->size;
  }
  return total;
}

}  // namespace service
}  // namespace qreg
