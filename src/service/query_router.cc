#include "service/query_router.h"

#include <cmath>
#include <limits>
#include <utility>

#include "util/string_util.h"
#include "util/timer.h"

namespace qreg {
namespace service {

const char* QueryKindName(QueryKind kind) {
  return kind == QueryKind::kQ1MeanValue ? "Q1" : "Q2";
}

namespace {

// One definition of "a cache hit becomes an Answer" shared by the normal
// lookup path and the shed path, so they can never drift apart.
Answer AnswerFromCache(QueryKind kind, CachedAnswer cached) {
  Answer a;
  a.kind = kind;
  a.source = AnswerSource::kCache;
  a.mean = cached.mean;
  a.pieces = std::move(cached.pieces);
  a.cache_delta = cached.delta;
  return a;
}

}  // namespace

QueryRouter::QueryRouter(ModelCatalog* catalog, RouterConfig config)
    : catalog_(catalog),
      config_(config),
      cache_(config.cache),
      stats_(config.latency_window),
      pool_(config.num_threads, config.queue_capacity) {
  if (config_.exact_threads > 0) {
    exact_pool_ = std::make_unique<ThreadPool>(config_.exact_threads);
    query::ParallelOptions par;
    par.pool = exact_pool_.get();
    par.target_partitions = config_.exact_partitions;
    catalog_->SetParallelism(par);
  }
}

QueryRouter::~QueryRouter() {
  // Detach the exact-scan pool before it dies so the catalog's engines
  // never hold a dangling pool pointer.
  if (exact_pool_) catalog_->SetParallelism(query::ParallelOptions());
}

std::string QueryRouter::ShardKey(const Request& request) {
  return request.dataset + "/" + QueryKindName(request.kind);
}

util::Result<Answer> QueryRouter::Execute(const Request& request) {
  util::Stopwatch watch;
  util::Result<Answer> result = ExecuteUnrecorded(request);
  const int64_t nanos = watch.ElapsedNanos();
  if (result.ok()) {
    result->exec.nanos = nanos;
    stats_.Record(nanos, result->source == AnswerSource::kCache,
                  result->source == AnswerSource::kExact, /*ok=*/true);
  } else {
    stats_.Record(nanos, /*cache_hit=*/false, /*used_exact=*/false, /*ok=*/false);
  }
  return result;
}

util::Result<Answer> QueryRouter::ExecuteUnrecorded(const Request& request) {
  // kExactOnly never consults the model: use Get() so an exact-only router
  // neither blocks on lazy training nor fails when training is impossible.
  CatalogSnapshot snap;
  if (config_.policy == RoutePolicy::kExactOnly) {
    QREG_ASSIGN_OR_RETURN(snap, catalog_->Get(request.dataset));
  } else {
    QREG_ASSIGN_OR_RETURN(snap, catalog_->GetOrTrain(request.dataset));
  }
  if (request.q.dimension() != snap.engine->table().dimension()) {
    return util::Status::InvalidArgument(util::Format(
        "query dimension %zu does not match dataset '%s' dimension %zu",
        request.q.dimension(), request.dataset.c_str(),
        snap.engine->table().dimension()));
  }

  const std::string shard = ShardKey(request);
  if (config_.enable_cache) {
    CachedAnswer cached;
    if (cache_.Lookup(shard, request.q, &cached)) {
      return AnswerFromCache(request.kind, std::move(cached));
    }
  }

  // Accuracy policy: pick the answering path.
  bool use_model = false;
  switch (config_.policy) {
    case RoutePolicy::kModelOnly:
      if (!snap.model) {
        return util::Status::FailedPrecondition(
            "policy is model-only but the dataset has no trained model");
      }
      use_model = true;
      break;
    case RoutePolicy::kExactOnly:
      use_model = false;
      break;
    case RoutePolicy::kHybrid: {
      // In-region test: the vigilance criterion of Algorithm 1 applied at
      // serving time. ρ ≤ 0 (fixed-K ablation models) disables the test.
      use_model = snap.model != nullptr && snap.model->num_prototypes() > 0;
      if (use_model && snap.vigilance > 0.0) {
        const double dist = snap.model->NearestPrototypeDistance(request.q);
        use_model = dist <= config_.rho_scale * snap.vigilance;
      }
      break;
    }
  }

  util::Result<Answer> result =
      use_model ? ExecuteModel(request, *snap.model)
                : ExecuteExact(request, *snap.engine);
  if (!result.ok()) return result;

  if (config_.enable_cache) {
    CachedAnswer to_cache;
    to_cache.q = request.q;
    to_cache.mean = result->mean;
    to_cache.pieces = result->pieces;
    cache_.Insert(shard, std::move(to_cache));
  }
  return result;
}

util::Result<Answer> QueryRouter::ExecuteModel(
    const Request& request, const core::LlmModel& model) const {
  Answer a;
  a.kind = request.kind;
  a.source = AnswerSource::kModel;
  if (request.kind == QueryKind::kQ1MeanValue) {
    QREG_ASSIGN_OR_RETURN(a.mean, model.PredictMean(request.q));
  } else {
    QREG_ASSIGN_OR_RETURN(a.pieces, model.RegressionQuery(request.q));
  }
  return a;
}

util::Result<Answer> QueryRouter::ExecuteExact(
    const Request& request, const query::ExactEngine& engine) const {
  Answer a;
  a.kind = request.kind;
  a.source = AnswerSource::kExact;
  if (request.kind == QueryKind::kQ1MeanValue) {
    QREG_ASSIGN_OR_RETURN(query::MeanValueResult r,
                          engine.MeanValue(request.q, &a.exec));
    a.mean = r.mean;
  } else {
    QREG_ASSIGN_OR_RETURN(linalg::OlsFit fit,
                          engine.Regression(request.q, &a.exec));
    // The exact Q2 answer is a single global plane over D(x, θ): the REG
    // baseline expressed in the same list-S shape as the model's answer.
    core::LocalLinearModel m;
    m.intercept = fit.intercept;
    m.slope = std::move(fit.slope);
    m.prototype_id = -1;
    m.weight = 1.0;
    a.pieces.push_back(std::move(m));
  }
  return a;
}

util::Result<Answer> QueryRouter::ExecuteShed(const Request& request) {
  util::Stopwatch watch;
  if (config_.enable_cache) {
    CachedAnswer cached;
    if (cache_.Lookup(ShardKey(request), request.q, &cached)) {
      Answer a = AnswerFromCache(request.kind, std::move(cached));
      a.exec.nanos = watch.ElapsedNanos();
      stats_.Record(a.exec.nanos, /*cache_hit=*/true, /*used_exact=*/false,
                    /*ok=*/true, /*shed=*/true);
      return a;
    }
  }
  stats_.Record(watch.ElapsedNanos(), /*cache_hit=*/false, /*used_exact=*/false,
                /*ok=*/false, /*shed=*/true);
  return util::Status::ResourceExhausted(
      "router worker queue is saturated and the answer is not cached");
}

std::vector<util::Result<Answer>> QueryRouter::ExecuteBatch(
    const std::vector<Request>& batch) {
  std::vector<util::Result<Answer>> results(
      batch.size(),
      util::Result<Answer>(util::Status::Internal("request not executed")));
  if (pool_.num_threads() == 0) {
    for (size_t i = 0; i < batch.size(); ++i) results[i] = Execute(batch[i]);
    return results;
  }
  BlockingCounter done(static_cast<int64_t>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    auto task = [this, &batch, &results, &done, i] {
      results[i] = Execute(batch[i]);
      done.DecrementCount();
    };
    if (config_.overload == OverloadPolicy::kBlock) {
      pool_.Submit(task);
    } else if (!pool_.TrySubmit(task)) {
      // Graceful degradation: serve stale-but-bounded answers from the
      // δ-cache, or fail fast with a typed status — never block the batch.
      results[i] = ExecuteShed(batch[i]);
      done.DecrementCount();
    }
  }
  done.Wait();
  return results;
}

}  // namespace service
}  // namespace qreg
