#include "service/query_router.h"

#include <cmath>
#include <limits>
#include <utility>

#include "util/string_util.h"
#include "util/timer.h"

namespace qreg {
namespace service {

const char* QueryKindName(QueryKind kind) {
  return kind == QueryKind::kQ1MeanValue ? "Q1" : "Q2";
}

namespace {

// One definition of "a cache hit becomes an Answer" shared by the normal
// lookup path and the shed path, so they can never drift apart.
Answer AnswerFromCache(QueryKind kind, CachedAnswer cached) {
  Answer a;
  a.kind = kind;
  a.source = AnswerSource::kCache;
  a.mean = cached.mean;
  a.pieces = std::move(cached.pieces);
  a.cache_delta = cached.delta;
  return a;
}

}  // namespace

QueryRouter::QueryRouter(ModelCatalog* catalog, RouterConfig config)
    : catalog_(catalog),
      config_(config),
      cache_(config.cache),
      stats_(config.latency_window),
      pool_(std::make_unique<ThreadPool>(config.num_threads,
                                         config.queue_capacity)) {
  if (config_.exact_threads > 0) {
    exact_pool_ = std::make_unique<ThreadPool>(config_.exact_threads);
    query::ParallelOptions par;
    par.pool = exact_pool_.get();
    par.target_partitions = config_.exact_partitions;
    catalog_->SetParallelism(par);
  }
}

QueryRouter::~QueryRouter() {
  // Drain the batch pool first (queued drift probes may still touch the
  // catalog's engines), then detach the exact-scan pool so the engines
  // never hold a dangling pool pointer.
  pool_.reset();
  if (exact_pool_) catalog_->SetParallelism(query::ParallelOptions());
}

std::string QueryRouter::ShardKey(const Request& request, int64_t generation) {
  return request.dataset + "/g" + std::to_string(generation) + "/" +
         QueryKindName(request.kind);
}

ExecResult QueryRouter::Execute(const Request& request) {
  util::Stopwatch watch;
  QueryOutcome o;
  ExecResult result = ExecuteUnrecorded(request, &o);
  const int64_t nanos = watch.ElapsedNanos();
  o.latency_nanos = nanos;
  o.ok = result.ok();
  if (result.ok()) {
    result->exec.nanos = nanos;
    o.cache_hit = result->source == AnswerSource::kCache;
    o.used_exact = result->source == AnswerSource::kExact;
    o.degraded = result->used_fallback;
  } else {
    o.deadline_exceeded =
        result.status().code() == util::StatusCode::kDeadlineExceeded;
    o.cancelled = result.status().code() == util::StatusCode::kCancelled;
    // Partial-work evidence travels with the error instead of vanishing
    // with the discarded Answer; stamp the total serving latency on it.
    ExecError error = std::move(result).error();
    error.partial.nanos = nanos;
    result = std::move(error);
  }
  stats_.Record(o);
  return result;
}

ExecResult QueryRouter::ExecuteUnrecorded(const Request& request,
                                          QueryOutcome* outcome) {
  // Admission: a request already cancelled or past its deadline does no
  // work at all — not even a δ-cache lookup. A cache hit for an expired
  // request would make its outcome depend on what other queries ran before
  // it, inconsistent with the exact path's typed rejection.
  if (request.cancel.cancelled()) {
    return util::Status::Cancelled("request cancelled before execution");
  }
  if (request.deadline.expired()) {
    return util::Status::DeadlineExceeded(
        "request deadline expired before execution");
  }
  util::ExecControl control;
  control.deadline = request.deadline;
  control.cancel = request.cancel;
  control.on_chunk_for_testing = request.on_chunk_for_testing;
  const util::ExecControl* ctl = control.active() ? &control : nullptr;

  // kExactOnly never consults the model: use Get() so an exact-only router
  // neither blocks on lazy training nor fails when training is impossible.
  CatalogSnapshot snap;
  if (config_.policy == RoutePolicy::kExactOnly) {
    QREG_ASSIGN_OR_RETURN(snap, catalog_->Get(request.dataset));
  } else {
    // Lazy training is lifecycle-bounded: the control threads through
    // Trainer::Train, and a waiter behind another request's training
    // abandons the wait when its own control trips. Admission was checked
    // above, so a lifecycle failure here means the trip happened *in* the
    // training path — record it as a train abort.
    auto trained = catalog_->GetOrTrain(request.dataset, ctl);
    if (!trained.ok()) {
      const util::StatusCode code = trained.status().code();
      if (outcome != nullptr &&
          (code == util::StatusCode::kDeadlineExceeded ||
           code == util::StatusCode::kCancelled)) {
        outcome->train_aborted = true;
      }
      return trained.status();
    }
    snap = std::move(trained).value();
  }
  if (request.q.dimension() != snap.engine->table().dimension()) {
    return util::Status::InvalidArgument(util::Format(
        "query dimension %zu does not match dataset '%s' dimension %zu",
        request.q.dimension(), request.dataset.c_str(),
        snap.engine->table().dimension()));
  }

  const std::string shard = ShardKey(request, snap.generation);
  if (config_.enable_cache) {
    CachedAnswer cached;
    if (cache_.Lookup(shard, request.q, &cached)) {
      Answer a = AnswerFromCache(request.kind, std::move(cached));
      MaybeReportObservation(request, snap, &a, /*in_region=*/nullptr);
      return a;
    }
  }

  // Accuracy policy: pick the answering path. When the hybrid policy runs
  // the vigilance test, its verdict is remembered for the drift-metering
  // decision below (same query, same test — never scan prototypes twice).
  bool use_model = false;
  bool in_region = false;
  bool in_region_known = false;
  switch (config_.policy) {
    case RoutePolicy::kModelOnly:
      if (!snap.model) {
        return util::Status::FailedPrecondition(
            "policy is model-only but the dataset has no trained model");
      }
      use_model = true;
      break;
    case RoutePolicy::kExactOnly:
      use_model = false;
      break;
    case RoutePolicy::kHybrid: {
      // In-region test: the vigilance criterion of Algorithm 1 applied at
      // serving time. ρ ≤ 0 (fixed-K ablation models) disables the test.
      use_model = snap.model != nullptr && snap.model->num_prototypes() > 0;
      if (use_model && snap.vigilance > 0.0) {
        const double dist = snap.model->NearestPrototypeDistance(request.q);
        use_model = dist <= config_.rho_scale * snap.vigilance;
        in_region = use_model;
        in_region_known = true;
      }
      break;
    }
  }

  ExecResult result = use_model ? ExecuteModel(request, *snap.model)
                                : ExecuteExact(request, *snap.engine, ctl);

  // Deadline pressure on the exact path degrades to the model's microsecond
  // answer (flagged) when the policy permits one; cancellation never does.
  if (!result.ok() &&
      result.status().code() == util::StatusCode::kDeadlineExceeded &&
      config_.policy != RoutePolicy::kExactOnly && snap.model != nullptr &&
      snap.model->num_prototypes() > 0) {
    ExecResult fallback = ExecuteModel(request, *snap.model);
    if (fallback.ok()) {
      fallback->used_fallback = true;
      // Keep the killed exact attempt's partial scan work visible on the
      // degraded answer (Execute overwrites only exec.nanos).
      fallback->exec = result.error().partial;
      result = std::move(fallback);
    }
  }
  if (!result.ok()) return result;

  // Fallback answers are possibly out-of-region extrapolations served under
  // duress — don't let them seed the cache for healthy requests. On a
  // drift-enabled dataset, also skip the insert when a retrain published a
  // new generation while this request was in flight: the old-generation
  // group was just erased and its keys are unreachable. (The residual
  // check-then-insert race is harmless — a resurrected entry can never be
  // served and group capacity is per-group, so it steals nothing from the
  // live generation.)
  if (config_.enable_cache && !result->used_fallback) {
    bool stale_generation = false;
    if (snap.drift_enabled) {
      auto now = catalog_->Get(request.dataset);
      stale_generation = !now.ok() || now->generation != snap.generation;
    }
    if (!stale_generation) {
      CachedAnswer to_cache;
      to_cache.q = request.q;
      to_cache.mean = result->mean;
      to_cache.pieces = result->pieces;
      cache_.Insert(shard, std::move(to_cache));
    }
  }
  MaybeReportObservation(request, snap, &result.value(),
                         in_region_known ? &in_region : nullptr);
  return result;
}

void QueryRouter::MaybeReportObservation(const Request& request,
                                         const CatalogSnapshot& snap,
                                         const Answer* answer,
                                         const bool* in_region) {
  // Freshness maintenance, off the serving path: every report_interval
  // successful answers of a drift-enabled dataset, probe it on the pool.
  // The snapshot flag keeps the common drift-free path free of a second
  // catalog lookup per query.
  if (!snap.drift_enabled) return;
  bool due = false;
  // A served exact Q1 answer is a free drift sample: the scan already paid
  // for the ground truth, so one microsecond model prediction turns it into
  // a residual that lets the catalog skip probes while traffic looks
  // healthy. Fallback answers are excluded (their exact attempt died), and
  // so are out-of-region queries: the drift threshold was calibrated on an
  // in-distribution probe stream, and extrapolation error past the
  // vigilance radius would read as perpetual "drift" under a hybrid policy
  // (which routes exactly *because* the query is out of region). Under
  // kHybrid this leaves metering to the rare in-region exact answer, so
  // such datasets simply keep the unmetered every-interval probes.
  if (answer != nullptr && answer->source == AnswerSource::kExact &&
      !answer->used_fallback && request.kind == QueryKind::kQ1MeanValue &&
      snap.model != nullptr && snap.model->num_prototypes() > 0 &&
      (in_region != nullptr
           ? *in_region
           : snap.vigilance <= 0.0 ||
                 snap.model->NearestPrototypeDistance(request.q) <=
                     config_.rho_scale * snap.vigilance)) {
    auto predicted = snap.model->PredictMean(request.q);
    due = predicted.ok()
              ? catalog_->ReportObservation(request.dataset,
                                            answer->mean - *predicted)
              : catalog_->ReportObservation(request.dataset);
  } else {
    due = catalog_->ReportObservation(request.dataset);
  }
  if (due) ScheduleDriftProbe(request.dataset);
}

ExecResult QueryRouter::ExecuteModel(const Request& request,
                                     const core::LlmModel& model) const {
  Answer a;
  a.kind = request.kind;
  a.source = AnswerSource::kModel;
  if (request.kind == QueryKind::kQ1MeanValue) {
    QREG_ASSIGN_OR_RETURN(a.mean, model.PredictMean(request.q));
  } else {
    QREG_ASSIGN_OR_RETURN(a.pieces, model.RegressionQuery(request.q));
  }
  return a;
}

ExecResult QueryRouter::ExecuteExact(const Request& request,
                                     const query::ExactEngine& engine,
                                     const util::ExecControl* control) const {
  Answer a;
  a.kind = request.kind;
  a.source = AnswerSource::kExact;
  // `control` is null on the lifecycle-free path, which keeps the engine's
  // classic (unpartitioned) execution and its bit-for-bit answers.
  if (request.kind == QueryKind::kQ1MeanValue) {
    auto r = engine.MeanValue(request.q, &a.exec, control);
    if (!r.ok()) {
      // The engine recorded the partial scan work in a.exec; it rides inside
      // the typed error instead of being dropped with the Answer.
      return ExecError(r.status(), a.exec);
    }
    a.mean = r->mean;
  } else {
    auto fit = engine.Regression(request.q, &a.exec, control);
    if (!fit.ok()) {
      return ExecError(fit.status(), a.exec);
    }
    // The exact Q2 answer is a single global plane over D(x, θ): the REG
    // baseline expressed in the same list-S shape as the model's answer.
    core::LocalLinearModel m;
    m.intercept = fit->intercept;
    m.slope = std::move(fit->slope);
    m.prototype_id = -1;
    m.weight = 1.0;
    a.pieces.push_back(std::move(m));
  }
  return a;
}

ExecResult QueryRouter::ExecuteShed(const Request& request) {
  util::Stopwatch watch;
  QueryOutcome o;
  o.shed = true;
  // Same invariants as the normal path: a cancelled or already-expired
  // request gets no answer, cached or otherwise — its outcome must not
  // depend on pool load.
  if (request.cancel.cancelled()) {
    o.latency_nanos = watch.ElapsedNanos();
    o.cancelled = true;
    stats_.Record(o);
    return util::Status::Cancelled("request cancelled before execution");
  }
  if (request.deadline.expired()) {
    o.latency_nanos = watch.ElapsedNanos();
    o.deadline_exceeded = true;
    stats_.Record(o);
    return util::Status::DeadlineExceeded(
        "request deadline expired before execution");
  }
  if (config_.enable_cache) {
    // Generation lookup via Get(): cheap (no training), and a shed request
    // must never read a stale generation's answers either.
    auto snap = catalog_->Get(request.dataset);
    CachedAnswer cached;
    if (snap.ok() &&
        cache_.Lookup(ShardKey(request, snap->generation), request.q, &cached)) {
      Answer a = AnswerFromCache(request.kind, std::move(cached));
      a.exec.nanos = watch.ElapsedNanos();
      o.latency_nanos = a.exec.nanos;
      o.ok = true;
      o.cache_hit = true;
      stats_.Record(o);
      return a;
    }
  }
  o.latency_nanos = watch.ElapsedNanos();
  stats_.Record(o);
  return util::Status::ResourceExhausted(
      "router worker queue is saturated and the answer is not cached");
}

util::Result<RetrainOutcome> QueryRouter::MaybeRetrain(const std::string& dataset) {
  util::Result<RetrainOutcome> out = catalog_->MaybeRetrain(dataset);
  if (out.ok() && out->retrained) {
    stats_.RecordRetrain();
    // The new generation's keys can never admit the old entries; drop the
    // dead groups so their memory follows the old model out.
    if (config_.enable_cache) cache_.EraseGroupsWithPrefix(dataset + "/");
  }
  return out;
}

void QueryRouter::ScheduleDriftProbe(const std::string& dataset) {
  // TrySubmit, never Submit: a saturated pool just skips this probe — the
  // observation counter makes another one due an interval later. With a
  // synchronous pool the probe runs inline (deterministic, test-friendly).
  (void)pool_->TrySubmit([this, dataset] { (void)MaybeRetrain(dataset); });
}

std::vector<ExecResult> QueryRouter::ExecuteBatch(
    const std::vector<Request>& batch) {
  std::vector<ExecResult> results(
      batch.size(), ExecResult(util::Status::Internal("request not executed")));
  if (pool_->num_threads() == 0) {
    for (size_t i = 0; i < batch.size(); ++i) results[i] = Execute(batch[i]);
    return results;
  }
  BlockingCounter done(static_cast<int64_t>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    auto task = [this, &batch, &results, &done, i] {
      results[i] = Execute(batch[i]);
      done.DecrementCount();
    };
    if (config_.overload == OverloadPolicy::kBlock) {
      pool_->Submit(task);
    } else if (!pool_->TrySubmit(task)) {
      // Graceful degradation: serve stale-but-bounded answers from the
      // δ-cache, or fail fast with a typed status — never block the batch.
      results[i] = ExecuteShed(batch[i]);
      done.DecrementCount();
    }
  }
  done.Wait();
  return results;
}

}  // namespace service
}  // namespace qreg
