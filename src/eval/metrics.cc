#include "eval/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace qreg {
namespace eval {

double RmseAccumulator::Mse() const {
  return n_ > 0 ? sse_ / static_cast<double>(n_) : 0.0;
}

double RmseAccumulator::Rmse() const { return std::sqrt(Mse()); }

double FvuAccumulator::Tss() const {
  if (n_ == 0) return 0.0;
  const double mean = sum_ / static_cast<double>(n_);
  return std::max(0.0, sum_sq_ - static_cast<double>(n_) * mean * mean);
}

double FvuAccumulator::Fvu() const {
  const double tss = Tss();
  if (tss > 0.0) return ssr_ / tss;
  return ssr_ > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
}

double Rmse(const std::vector<double>& actual, const std::vector<double>& predicted) {
  assert(actual.size() == predicted.size());
  RmseAccumulator acc;
  for (size_t i = 0; i < actual.size(); ++i) acc.Add(actual[i], predicted[i]);
  return acc.Rmse();
}

double MeanAbsoluteError(const std::vector<double>& actual,
                         const std::vector<double>& predicted) {
  assert(actual.size() == predicted.size());
  if (actual.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) s += std::fabs(actual[i] - predicted[i]);
  return s / static_cast<double>(actual.size());
}

double Fvu(const std::vector<double>& actual, const std::vector<double>& predicted) {
  assert(actual.size() == predicted.size());
  FvuAccumulator acc;
  for (size_t i = 0; i < actual.size(); ++i) acc.Add(actual[i], predicted[i]);
  return acc.Fvu();
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Percentile(std::vector<double> v, double pct) {
  if (v.empty()) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  std::sort(v.begin(), v.end());
  const double rank = pct / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace eval
}  // namespace qreg
