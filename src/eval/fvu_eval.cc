#include "eval/fvu_eval.h"

#include <cmath>
#include <limits>

#include "eval/metrics.h"

namespace qreg {
namespace eval {

util::Result<PiecewiseFvuResult> EvaluatePiecewiseFvuAt(
    const std::vector<core::LocalLinearModel>& pieces,
    const std::vector<std::vector<double>>& anchors, const storage::Table& table,
    const std::vector<int64_t>& ids) {
  if (pieces.empty()) {
    return util::Status::InvalidArgument("no local models to evaluate");
  }
  if (pieces.size() != anchors.size()) {
    return util::Status::InvalidArgument("pieces/anchors size mismatch");
  }
  if (ids.empty()) {
    return util::Status::InvalidArgument("empty data subspace");
  }
  const size_t d = table.dimension();

  // Ball-wide mean of u: the common TSS baseline for all pieces, REG, PLR.
  double u_mean = 0.0;
  for (int64_t id : ids) u_mean += table.u(id);
  u_mean /= static_cast<double>(ids.size());

  std::vector<double> piece_ssr(pieces.size(), 0.0);
  std::vector<double> piece_tss(pieces.size(), 0.0);
  std::vector<int64_t> piece_n(pieces.size(), 0);

  for (int64_t id : ids) {
    const double* x = table.x(id);
    // Assign to the nearest anchor (Voronoi over the local models).
    size_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < anchors.size(); ++k) {
      double d2 = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double t = x[j] - anchors[k][j];
        d2 += t * t;
      }
      if (d2 < best_d2) {
        best_d2 = d2;
        best = k;
      }
    }
    double pred = pieces[best].intercept;
    for (size_t j = 0; j < d; ++j) pred += pieces[best].slope[j] * x[j];
    const double u = table.u(id);
    piece_ssr[best] += (u - pred) * (u - pred);
    piece_tss[best] += (u - u_mean) * (u - u_mean);
    ++piece_n[best];
  }

  PiecewiseFvuResult out;
  out.pieces_total = static_cast<int32_t>(pieces.size());
  out.points = static_cast<int64_t>(ids.size());

  double ssr_total = 0.0, tss_total = 0.0, fvu_sum = 0.0;
  int32_t scored = 0;
  for (size_t k = 0; k < pieces.size(); ++k) {
    ssr_total += piece_ssr[k];
    tss_total += piece_tss[k];
    if (piece_n[k] < 1 || piece_tss[k] <= 0.0) continue;
    fvu_sum += piece_ssr[k] / piece_tss[k];
    ++scored;
  }
  out.pooled_fvu = tss_total > 0.0
                       ? ssr_total / tss_total
                       : (ssr_total > 0.0 ? std::numeric_limits<double>::infinity()
                                          : 0.0);
  out.pieces_scored = scored;
  // All pieces degenerate (e.g. constant u in the ball): fall back to pooled.
  out.mean_fvu = scored > 0 ? fvu_sum / scored : out.pooled_fvu;
  out.mean_cod = 1.0 - out.mean_fvu;
  return out;
}

util::Result<PiecewiseFvuResult> EvaluatePiecewiseFvu(
    const core::LlmModel& model, const query::Query& q,
    const storage::Table& table, const std::vector<int64_t>& ids) {
  QREG_ASSIGN_OR_RETURN(std::vector<core::LocalLinearModel> pieces,
                        model.RegressionQuery(q));
  std::vector<std::vector<double>> anchors;
  anchors.reserve(pieces.size());
  for (const core::LocalLinearModel& m : pieces) {
    anchors.push_back(
        model.prototypes()[static_cast<size_t>(m.prototype_id)].w.center);
  }
  return EvaluatePiecewiseFvuAt(pieces, anchors, table, ids);
}

}  // namespace eval
}  // namespace qreg
