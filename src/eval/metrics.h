// Evaluation metrics of Section VI: RMSE (predictability, A1/A2), Fraction
// of Variance Unexplained and Coefficient of Determination (goodness of
// fit).

#ifndef QREG_EVAL_METRICS_H_
#define QREG_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace qreg {
namespace eval {

/// \brief Streaming RMSE accumulator.
class RmseAccumulator {
 public:
  void Add(double actual, double predicted) {
    const double e = actual - predicted;
    sse_ += e * e;
    ++n_;
  }

  int64_t count() const { return n_; }
  double Rmse() const;
  double Mse() const;

  void Reset() {
    sse_ = 0.0;
    n_ = 0;
  }

 private:
  double sse_ = 0.0;
  int64_t n_ = 0;
};

/// \brief Streaming FVU/CoD accumulator over (actual, predicted) pairs.
///
/// FVU s = SSR / TSS with TSS around the mean of the actuals; CoD = 1 - s.
/// A second pass is avoided by accumulating raw moments.
class FvuAccumulator {
 public:
  void Add(double actual, double predicted) {
    const double e = actual - predicted;
    ssr_ += e * e;
    sum_ += actual;
    sum_sq_ += actual * actual;
    ++n_;
  }

  int64_t count() const { return n_; }
  double Ssr() const { return ssr_; }
  double Tss() const;
  /// +inf if TSS == 0 with SSR > 0; 0 if both are 0.
  double Fvu() const;
  double CoD() const { return 1.0 - Fvu(); }

  void Reset() {
    ssr_ = sum_ = sum_sq_ = 0.0;
    n_ = 0;
  }

 private:
  double ssr_ = 0.0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  int64_t n_ = 0;
};

/// \brief RMSE over paired vectors (sizes must match).
double Rmse(const std::vector<double>& actual, const std::vector<double>& predicted);

/// \brief Mean absolute error over paired vectors.
double MeanAbsoluteError(const std::vector<double>& actual,
                         const std::vector<double>& predicted);

/// \brief FVU over paired vectors.
double Fvu(const std::vector<double>& actual, const std::vector<double>& predicted);

/// \brief Arithmetic mean.
double Mean(const std::vector<double>& v);

/// \brief Sample percentile in [0,100] (linear interpolation, copies input).
double Percentile(std::vector<double> v, double pct);

}  // namespace eval
}  // namespace qreg

#endif  // QREG_EVAL_METRICS_H_
