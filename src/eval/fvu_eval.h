// Goodness-of-fit evaluation of a Q2 answer (the list S of local linear
// models) against the data inside D(x, θ), per Section VI:
//
//   s = (1/|S|) Σ_ℓ s_ℓ,  the average of the per-local-model FVUs.
//
// Each point of the selected subspace is assigned to the nearest local
// model's prototype (Voronoi in the input space), every local model is
// scored on its own region, and the FVUs are averaged. A pooled variant
// (one FVU for the combined piecewise predictor) is also reported.

#ifndef QREG_EVAL_FVU_EVAL_H_
#define QREG_EVAL_FVU_EVAL_H_

#include <cstdint>
#include <vector>

#include "core/llm_model.h"
#include "query/query.h"
#include "storage/table.h"
#include "util/status.h"

namespace qreg {
namespace eval {

/// \brief Result of scoring a Q2 answer against the selected data.
struct PiecewiseFvuResult {
  double mean_fvu = 0.0;    ///< Average of per-piece FVUs (the paper's s).
  double mean_cod = 0.0;    ///< 1 - mean_fvu.
  double pooled_fvu = 0.0;  ///< FVU of the combined piecewise predictor.
  int32_t pieces_scored = 0;    ///< Pieces with enough points to score.
  int32_t pieces_total = 0;     ///< |S|.
  int64_t points = 0;           ///< Points inside D(x, θ).
};

/// \brief Scores `model`'s Algorithm-3 answer for `q` on the rows `ids` of
/// `table` (the rows inside D(x, θ), typically from ExactEngine::Select).
///
/// Every piece's FVU uses the *subspace-wide* TSS baseline (deviations of
/// its points from the ball's mean of u), making s_ℓ directly comparable to
/// the REG/PLR FVUs over the same D(x, θ) and crediting the piecewise answer
/// for explaining between-piece level differences. Pieces with no assigned
/// points are skipped. Fails if ids is empty or the model has no prototypes.
util::Result<PiecewiseFvuResult> EvaluatePiecewiseFvu(
    const core::LlmModel& model, const query::Query& q,
    const storage::Table& table, const std::vector<int64_t>& ids);

/// \brief Scores an explicit list of local linear models with given anchor
/// points (exposed for testing and for non-LLM piecewise baselines).
util::Result<PiecewiseFvuResult> EvaluatePiecewiseFvuAt(
    const std::vector<core::LocalLinearModel>& pieces,
    const std::vector<std::vector<double>>& anchors, const storage::Table& table,
    const std::vector<int64_t>& ids);

}  // namespace eval
}  // namespace qreg

#endif  // QREG_EVAL_FVU_EVAL_H_
