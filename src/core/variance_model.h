// Variance (high-order moment) queries — the first item on the paper's
// future-work list (Section VII): predict not just the mean of u over
// D(x, θ) but also its variance, again without data access.
//
// Construction: two LLM models over the same query space, one trained on
// the exact subspace mean E[u | D] and one on the exact second moment
// E[u² | D]; the predicted variance is the moment difference, clamped at 0.

#ifndef QREG_CORE_VARIANCE_MODEL_H_
#define QREG_CORE_VARIANCE_MODEL_H_

#include <iosfwd>

#include "core/llm_model.h"
#include "query/query.h"
#include "util/status.h"

namespace qreg {
namespace core {

/// \brief Predicted first/second moments of u over a data subspace.
struct MomentPrediction {
  double mean = 0.0;
  double second_moment = 0.0;
  double variance = 0.0;  ///< max(0, second_moment − mean²).
  double stddev = 0.0;
};

/// \brief Joint mean + second-moment model for variance queries.
class VarianceModel {
 public:
  /// Both sub-models share the configuration (quantization geometry).
  explicit VarianceModel(const LlmConfig& config)
      : mean_model_(config), m2_model_(config) {}

  /// Processes one training observation: the exact subspace mean and second
  /// moment for query q (from ExactEngine::Moments).
  util::Status Observe(const query::Query& q, double mean, double second_moment);

  /// Predicts mean, second moment, variance, and stddev for an unseen query.
  util::Result<MomentPrediction> Predict(const query::Query& q) const;

  /// True once both sub-models' Γ fell below γ.
  bool HasConverged() const {
    return mean_model_.HasConverged() && m2_model_.HasConverged();
  }

  void Freeze() {
    mean_model_.Freeze();
    m2_model_.Freeze();
  }

  const LlmModel& mean_model() const { return mean_model_; }
  const LlmModel& second_moment_model() const { return m2_model_; }

  /// Serialization: two concatenated LlmModel sections.
  util::Status Save(std::ostream* os) const;
  static util::Result<VarianceModel> Load(std::istream* is);

 private:
  VarianceModel(LlmModel mean_model, LlmModel m2_model)
      : mean_model_(std::move(mean_model)), m2_model_(std::move(m2_model)) {}

  LlmModel mean_model_;
  LlmModel m2_model_;
};

}  // namespace core
}  // namespace qreg

#endif  // QREG_CORE_VARIANCE_MODEL_H_
