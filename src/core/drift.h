// Adaptation to data updates — the paper's closing future-work item.
//
// A trained (frozen) model silently goes stale when the underlying relation
// changes (appends, upserts, regime shifts). DriftMonitor probes the model
// against fresh exact answers, reports the current prediction error, and —
// when the error exceeds a calibrated threshold — re-opens the model so the
// trainer can continue Algorithm 1 on the new data distribution.

#ifndef QREG_CORE_DRIFT_H_
#define QREG_CORE_DRIFT_H_

#include <cstdint>

#include "core/llm_model.h"
#include "core/trainer.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "util/status.h"

namespace qreg {
namespace core {

/// \brief Drift-probe parameters.
struct DriftConfig {
  /// Fresh queries to execute exactly per probe.
  int64_t probe_queries = 200;
  /// Drift is declared when the probe RMSE exceeds
  /// max(absolute_threshold, degradation_factor * baseline_rmse).
  double absolute_threshold = 0.0;
  double degradation_factor = 2.0;
};

/// \brief Outcome of one drift probe.
struct DriftReport {
  double rmse = 0.0;           ///< Probe RMSE of the model vs exact answers.
  double baseline_rmse = 0.0;  ///< RMSE recorded at calibration time.
  bool drifted = false;
  int64_t queries_used = 0;
};

/// \brief Probes a model against the (possibly changed) exact engine.
class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config) : config_(config) {}

  /// Establishes the baseline RMSE right after training (on the engine the
  /// model was trained against).
  util::Status Calibrate(const LlmModel& model, const query::ExactEngine& engine,
                         query::WorkloadGenerator* workload);

  /// Measures the current RMSE and compares it with the calibrated baseline.
  util::Result<DriftReport> Probe(const LlmModel& model,
                                  const query::ExactEngine& engine,
                                  query::WorkloadGenerator* workload) const;

  /// Convenience recovery path: unfreezes the model and resumes Algorithm 1
  /// against the (updated) engine until re-convergence or `max_pairs`.
  /// Returns the retraining report.
  util::Result<TrainingReport> Retrain(LlmModel* model,
                                       const query::ExactEngine& engine,
                                       query::WorkloadGenerator* workload,
                                       int64_t max_pairs) const;

  double baseline_rmse() const { return baseline_rmse_; }
  bool calibrated() const { return calibrated_; }

 private:
  util::Result<double> MeasureRmse(const LlmModel& model,
                                   const query::ExactEngine& engine,
                                   query::WorkloadGenerator* workload,
                                   int64_t* used) const;

  DriftConfig config_;
  double baseline_rmse_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace core
}  // namespace qreg

#endif  // QREG_CORE_DRIFT_H_
