// A query-space prototype w_k = [x_k, θ_k] together with its Local Linear
// Mapping (LLM) coefficients (y_k, b_k) — the per-subspace model of
// Section III-A:
//
//   f_k(x, θ) ≈ y_k + b_{X,k} (x − x_k)ᵀ + b_{Θ,k} (θ − θ_k)        (Eq. 5)
//
// and, via Theorem 3, the induced local model of the data function g over
// the data subspace D_k:
//
//   g(x) ≈ f_k(x, θ_k) = y_k + b_{X,k} (x − x_k)ᵀ
//        = (y_k − b_{X,k} x_kᵀ)  +  b_{X,k} xᵀ.

#ifndef QREG_CORE_PROTOTYPE_H_
#define QREG_CORE_PROTOTYPE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "query/query.h"

namespace qreg {
namespace core {

/// \brief One local linear model of g over a data subspace (an entry of the
/// Q2 answer list S).
struct LocalLinearModel {
  double intercept = 0.0;          ///< u-intercept: y_k − b_{X,k} x_kᵀ.
  std::vector<double> slope;       ///< u-slope: b_{X,k} (size d).
  int32_t prototype_id = -1;       ///< Which prototype produced this model.
  double weight = 0.0;             ///< Normalized overlap δ̃ (0 for fallback).

  /// Predicted data value at x.
  double Predict(const std::vector<double>& x) const {
    assert(x.size() == slope.size());
    double s = intercept;
    for (size_t i = 0; i < slope.size(); ++i) s += slope[i] * x[i];
    return s;
  }
};

/// \brief Prototype + LLM coefficients (the parameter triplet α_k).
struct Prototype {
  query::Query w;                  ///< [x_k, θ_k]: the local expectation query.
  double y = 0.0;                  ///< y_k: local expectation of the answer.
  std::vector<double> b_x;         ///< b_{X,k}: slope w.r.t. the center (size d).
  double b_theta = 0.0;            ///< b_{Θ,k}: slope w.r.t. the radius.
  int64_t wins = 0;                ///< Times this prototype won a training pair.

  /// Accumulated squared inputs Σ (q_i − w_i)² per coordinate (centers, then
  /// θ), used to precondition the coefficient SGD step (diagonal NLMS; see
  /// LlmConfig::normalize_coef_step). Training state only — prediction never
  /// reads these.
  std::vector<double> input_sq_x;
  double input_sq_theta = 0.0;

  Prototype() = default;
  Prototype(const query::Query& q, double y0)
      : w(q), y(y0), b_x(q.dimension(), 0.0), input_sq_x(q.dimension(), 0.0) {}

  size_t dimension() const { return w.dimension(); }

  /// LLM output f_k(x, θ) for an arbitrary query (Eq. 12). `slope_scale`
  /// multiplies the learned slopes (1.0 = the raw LLM; LlmModel passes a
  /// wins-based shrinkage factor for under-trained prototypes).
  double PredictQuery(const query::Query& q, double slope_scale = 1.0) const {
    assert(q.dimension() == dimension());
    double s = y + slope_scale * b_theta * (q.theta - w.theta);
    for (size_t i = 0; i < b_x.size(); ++i) {
      s += slope_scale * b_x[i] * (q.center[i] - w.center[i]);
    }
    return s;
  }

  /// LLM output with θ pinned at θ_k: the data-function approximation
  /// f_k(x, θ_k) of Theorem 3 / Eq. 13.
  double PredictData(const std::vector<double>& x, double slope_scale = 1.0) const {
    assert(x.size() == dimension());
    double s = y;
    for (size_t i = 0; i < b_x.size(); ++i) {
      s += slope_scale * b_x[i] * (x[i] - w.center[i]);
    }
    return s;
  }

  /// The induced local linear model of g over D_k (Theorem 3).
  LocalLinearModel ToDataModel(int32_t id, double weight,
                               double slope_scale = 1.0) const {
    LocalLinearModel m;
    m.prototype_id = id;
    m.weight = weight;
    m.slope = b_x;
    double dot = 0.0;
    for (size_t i = 0; i < b_x.size(); ++i) {
      m.slope[i] *= slope_scale;
      dot += m.slope[i] * w.center[i];
    }
    m.intercept = y - dot;
    return m;
  }
};

}  // namespace core
}  // namespace qreg

#endif  // QREG_CORE_PROTOTYPE_H_
