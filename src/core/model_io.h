// Versioned text serialization of a trained LlmModel. After training
// converges the parameter set α is immutable (Algorithm 1), so models can be
// saved once and shipped to prediction-only services.

#ifndef QREG_CORE_MODEL_IO_H_
#define QREG_CORE_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "core/llm_model.h"
#include "util/status.h"

namespace qreg {
namespace core {

/// \brief Save/load of LlmModel parameter sets.
class ModelSerializer {
 public:
  /// Writes the model (config + all prototypes) to `os`.
  static util::Status Save(const LlmModel& model, std::ostream* os);

  /// Writes to a file path.
  static util::Status SaveToFile(const LlmModel& model, const std::string& path);

  /// Reads a model previously written by Save. The stream format carries a
  /// version header; unknown versions fail with NotImplemented.
  static util::Result<LlmModel> Load(std::istream* is);

  /// Reads from a file path.
  static util::Result<LlmModel> LoadFromFile(const std::string& path);
};

}  // namespace core
}  // namespace qreg

#endif  // QREG_CORE_MODEL_IO_H_
