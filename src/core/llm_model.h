// The paper's model: a conditionally-growing Adaptive Vector Quantization of
// the query space, each cell carrying SGD-trained Local Linear Mapping
// coefficients. Implements:
//
//   - Algorithm 1 (training): vigilance test ρ, Theorem-4 SGD updates,
//     Γ = max(Γ^J, Γ^H) convergence tracking;
//   - Algorithm 2 (Q1): overlap-weighted nearest-neighbours regression
//     prediction of the mean value (Eqs. 9–12);
//   - Algorithm 3 (Q2): the list S of local linear models of g (Theorem 3);
//   - Eq. 14: data-value prediction û.
//
// Ablation knobs (see DESIGN.md §7): fixed-K quantization instead of
// vigilance growth, nearest-only prediction instead of δ-weighting,
// constant / global-hyperbolic / per-prototype-hyperbolic learning rates,
// and coefficient seeding at spawn.

#ifndef QREG_CORE_LLM_MODEL_H_
#define QREG_CORE_LLM_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/prototype.h"
#include "query/query.h"
#include "util/status.h"

namespace qreg {
namespace core {

/// \brief Vigilance radius ρ = a (√d + 1) (Section IV) for unit-range data.
///
/// `a` is the fraction of the per-dimension value range; d is the
/// input-space dimension (the query space has d+1 dimensions).
double VigilanceFromCoefficient(double a, size_t d);

/// \brief Vigilance for non-unit attribute ranges: the paper expresses ρ
/// "through a set of percentages a_i of the value ranges of each dimension",
/// i.e. ρ = ||[a·R_x, ..., a·R_x]||₂ + a·R_θ = a (√d · R_x + R_θ).
double VigilanceForRanges(double a, size_t d, double x_range, double theta_range);

/// \brief Learning-rate schedules for the Theorem-4 SGD updates.
enum class LearningRateSchedule : int {
  /// η = 1/(1 + t_k) with t_k the *winner's* update count. Robust when
  /// prototypes spawn late (a late prototype still starts plastic).
  kPerPrototypeHyperbolic = 0,
  /// η = 1/(1 + t) with t the global step count (the schedule as literally
  /// written in Section II-B).
  kGlobalHyperbolic = 1,
  /// Constant η (ablation).
  kConstant = 2,
};

/// \brief How unseen queries are answered (Algorithm 2).
enum class PredictionMode : int {
  /// δ̃-weighted aggregation over the overlap set W(q); nearest prototype
  /// when W(q) is empty (the paper's Algorithm 2).
  kOverlapWeighted = 0,
  /// Always the single nearest prototype (ablation).
  kNearestOnly = 1,
};

/// \brief Model hyper-parameters.
struct LlmConfig {
  size_t d = 2;              ///< Input-space dimension.
  double vigilance = 0.0;    ///< ρ. Set directly or via coefficient `a`.
  double a = 0.25;           ///< Quantization-resolution coefficient.
  double gamma = 0.01;       ///< Convergence threshold γ for Γ.

  LearningRateSchedule schedule = LearningRateSchedule::kPerPrototypeHyperbolic;
  double constant_eta = 0.05;  ///< Used when schedule == kConstant.

  /// Exponent of the hyperbolic decay for the *coefficient* updates (y_k,
  /// b_k): η_coef = (1 + n)^(-coef_power). 1.0 is Theorem 4's literal
  /// schedule; the default 0.6 still satisfies the Robbins-Monro conditions
  /// while avoiding the classic 2cλ_min > 1 threshold that freezes slope
  /// learning when a cell's input covariance is small (see DESIGN.md).
  /// Prototype positions always use the exact 1/(1+n) running-mean rate.
  double coef_power = 0.6;

  /// Precondition each coefficient-step coordinate by the running mean
  /// square of that input coordinate (diagonal NLMS). Within a quantization
  /// cell the inputs (q − w_j) have tiny variance compared to the intercept
  /// direction, so an unpreconditioned step leaves the slope b_j orders of
  /// magnitude behind the intercept y_j; this equalizes the rates and also
  /// keeps updates stable on wide domains such as R2's [-10,10]^d. Disable
  /// to recover the literal Theorem-4 step.
  bool normalize_coef_step = true;

  PredictionMode prediction = PredictionMode::kOverlapWeighted;

  /// 0 keeps the paper's vigilance growth; > 0 freezes the prototype count
  /// at K (the first K distinct queries seed the codebook) for the
  /// fixed-K-quantization ablation.
  int32_t fixed_k = 0;

  /// Seed a spawned prototype's y_K with the observed answer instead of the
  /// paper's 0-init. Without seeding, fine quantizations (large K, few wins
  /// per prototype) answer near 0 until each cell has re-learned its level;
  /// the ablation bench quantifies the difference. Default on.
  bool seed_y_with_answer = true;

  /// Window (in training pairs) over which Γ is averaged before comparing to
  /// γ; 1 reproduces the paper's instantaneous test. The default smooths the
  /// stochastic Γ trajectory so one lucky tiny step cannot end training.
  int32_t convergence_window = 25;

  /// Prediction-time slope shrinkage: slopes of a prototype with n wins are
  /// scaled by n / (n + slope_shrinkage). Converged prototypes are barely
  /// affected; barely-trained ones fall back toward their constant level
  /// y_k instead of extrapolating noise. 0 disables.
  double slope_shrinkage = 3.0;

  /// Returns a config with ρ derived from `a` and `d` (unit-range data).
  static LlmConfig ForDimension(size_t d, double a = 0.25, double gamma = 0.01);

  /// Returns a config with ρ scaled to the given attribute ranges (e.g. the
  /// R2 dataset spans [-10,10]^d, so x_range = 20).
  static LlmConfig ForDomain(size_t d, double a, double gamma, double x_range,
                             double theta_range);

  util::Status Validate() const;
};

/// \brief Outcome of one training observation.
struct TrainStep {
  int32_t winner = -1;        ///< Index of the updated (or spawned) prototype.
  bool spawned = false;       ///< True if a new prototype was created.
  double gamma_j = 0.0;       ///< Γ^J contribution: prototype displacement.
  double gamma_h = 0.0;       ///< Γ^H contribution: coefficient displacement.
};

/// \brief The trained model (Figure 2's "Model" box).
class LlmModel {
 public:
  explicit LlmModel(LlmConfig config);

  const LlmConfig& config() const { return config_; }

  // --- Training (Algorithm 1) ------------------------------------------

  /// Processes one (query, answer) pair: vigilance test, Theorem-4 update or
  /// spawn, Γ bookkeeping. Invalid-dimension queries return an error.
  util::Result<TrainStep> Observe(const query::Query& q, double y);

  /// max(Γ^J, Γ^H) averaged over the configured window; +inf before any
  /// observation.
  double CurrentGamma() const;

  /// True once CurrentGamma() <= γ (and at least one pair was seen).
  bool HasConverged() const;

  /// Freezes the model: further Observe() calls return FailedPrecondition.
  /// (After Algorithm 1 terminates "no further modification is performed".)
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Re-opens a frozen model for continued training — the hook for the
  /// paper's "adaptation to data space updates" future work (see
  /// core/drift.h). Clears the Γ history so stale convergence evidence does
  /// not end retraining immediately.
  void Unfreeze() {
    frozen_ = false;
    gamma_history_.clear();
  }

  /// Restores plasticity after a data-distribution change: caps every
  /// prototype's win count at `max_wins` (scaling the preconditioner moments
  /// accordingly) so the hyperbolic learning rates become large enough to
  /// track the new regime. The ART "stability-plasticity" dial the paper
  /// alludes to in Section IV, turned back toward plasticity.
  void ResetPlasticity(int64_t max_wins = 10);

  // --- Prediction (Algorithms 2 & 3) -----------------------------------

  /// Q1: predicted mean value ŷ for an unseen query (Algorithm 2).
  /// Fails if the model has no prototypes.
  util::Result<double> PredictMean(const query::Query& q) const;

  /// Q2: the list S of local linear models of g over D(x, θ) (Algorithm 3).
  /// Overlapping prototypes contribute one model each, with δ̃ weights; if
  /// none overlap, the single nearest prototype is extrapolated (weight 0 by
  /// convention, matching "Case 3").
  util::Result<std::vector<LocalLinearModel>> RegressionQuery(
      const query::Query& q) const;

  /// Data-value prediction û(x) given the neighbourhood of q (Eq. 14).
  util::Result<double> PredictValue(const query::Query& q,
                                    const std::vector<double>& x) const;

  /// Overlap set W(q): indexes of prototypes with δ(q, w_k) > 0 (Eq. 10).
  std::vector<int32_t> OverlapSet(const query::Query& q) const;

  /// Index of the L2-nearest prototype in query space; -1 if none.
  int32_t NearestPrototype(const query::Query& q) const;

  /// L2 query-space distance from q to its nearest prototype; +inf when the
  /// model has no prototypes. The service router's accuracy policy compares
  /// this against the vigilance ρ to decide model vs. exact execution.
  double NearestPrototypeDistance(const query::Query& q) const;

  // --- Introspection ----------------------------------------------------

  int32_t num_prototypes() const { return static_cast<int32_t>(prototypes_.size()); }
  const std::vector<Prototype>& prototypes() const { return prototypes_; }
  int64_t observations() const { return t_; }

  /// Total memory of the parameter set α (Section V: O(dK)).
  int64_t ParameterBytes() const;

  std::string Summary() const;

 private:
  friend class ModelSerializer;

  double PrototypeRate(const Prototype& p) const;
  double CoefficientRate(const Prototype& p) const;
  double SlopeScale(const Prototype& p) const;
  double WeightedPrediction(const query::Query& q,
                            const std::vector<int32_t>& overlap,
                            bool pin_theta, const std::vector<double>* x) const;

  LlmConfig config_;
  std::vector<Prototype> prototypes_;
  int64_t t_ = 0;           // Global observation counter.
  bool frozen_ = false;
  std::vector<double> gamma_history_;  // Ring buffer of recent Γ values.
};

}  // namespace core
}  // namespace qreg

#endif  // QREG_CORE_LLM_MODEL_H_
