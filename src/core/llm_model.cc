#include "core/llm_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace qreg {
namespace core {

double VigilanceFromCoefficient(double a, size_t d) {
  return a * (std::sqrt(static_cast<double>(d)) + 1.0);
}

double VigilanceForRanges(double a, size_t d, double x_range, double theta_range) {
  return a * (std::sqrt(static_cast<double>(d)) * x_range + theta_range);
}

LlmConfig LlmConfig::ForDimension(size_t d, double a, double gamma) {
  LlmConfig c;
  c.d = d;
  c.a = a;
  c.vigilance = VigilanceFromCoefficient(a, d);
  c.gamma = gamma;
  return c;
}

LlmConfig LlmConfig::ForDomain(size_t d, double a, double gamma, double x_range,
                               double theta_range) {
  LlmConfig c;
  c.d = d;
  c.a = a;
  c.vigilance = VigilanceForRanges(a, d, x_range, theta_range);
  c.gamma = gamma;
  return c;
}

util::Status LlmConfig::Validate() const {
  if (d == 0) return util::Status::InvalidArgument("d must be positive");
  if (vigilance <= 0.0 && fixed_k <= 0) {
    return util::Status::InvalidArgument(
        "vigilance must be positive (or fixed_k set)");
  }
  if (gamma <= 0.0) return util::Status::InvalidArgument("gamma must be positive");
  if (schedule == LearningRateSchedule::kConstant &&
      (constant_eta <= 0.0 || constant_eta >= 1.0)) {
    return util::Status::InvalidArgument("constant_eta must be in (0, 1)");
  }
  if (convergence_window < 1) {
    return util::Status::InvalidArgument("convergence_window must be >= 1");
  }
  if (coef_power <= 0.5 || coef_power > 1.0) {
    return util::Status::InvalidArgument(
        "coef_power must lie in (0.5, 1] for Robbins-Monro convergence");
  }
  if (slope_shrinkage < 0.0) {
    return util::Status::InvalidArgument("slope_shrinkage must be >= 0");
  }
  return util::Status::OK();
}

LlmModel::LlmModel(LlmConfig config) : config_(std::move(config)) {
  if (config_.vigilance <= 0.0 && config_.fixed_k <= 0) {
    config_.vigilance = VigilanceFromCoefficient(config_.a, config_.d);
  }
}

double LlmModel::PrototypeRate(const Prototype& p) const {
  switch (config_.schedule) {
    case LearningRateSchedule::kPerPrototypeHyperbolic:
      return 1.0 / (1.0 + static_cast<double>(p.wins));
    case LearningRateSchedule::kGlobalHyperbolic:
      return 1.0 / (1.0 + static_cast<double>(t_));
    case LearningRateSchedule::kConstant:
      return config_.constant_eta;
  }
  return 0.5;
}

double LlmModel::SlopeScale(const Prototype& p) const {
  if (config_.slope_shrinkage <= 0.0) return 1.0;
  const double n = static_cast<double>(p.wins);
  return n / (n + config_.slope_shrinkage);
}

double LlmModel::CoefficientRate(const Prototype& p) const {
  switch (config_.schedule) {
    case LearningRateSchedule::kPerPrototypeHyperbolic:
      return std::pow(1.0 + static_cast<double>(p.wins), -config_.coef_power);
    case LearningRateSchedule::kGlobalHyperbolic:
      return std::pow(1.0 + static_cast<double>(t_), -config_.coef_power);
    case LearningRateSchedule::kConstant:
      return config_.constant_eta;
  }
  return 0.5;
}

int32_t LlmModel::NearestPrototype(const query::Query& q) const {
  int32_t best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < prototypes_.size(); ++k) {
    const double d2 = query::QueryDistanceSquared(q, prototypes_[k].w);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int32_t>(k);
    }
  }
  return best;
}

double LlmModel::NearestPrototypeDistance(const query::Query& q) const {
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const Prototype& p : prototypes_) {
    best_d2 = std::min(best_d2, query::QueryDistanceSquared(q, p.w));
  }
  return std::sqrt(best_d2);  // inf when there are no prototypes.
}

util::Result<TrainStep> LlmModel::Observe(const query::Query& q, double y) {
  if (frozen_) {
    return util::Status::FailedPrecondition("model is frozen after convergence");
  }
  if (q.dimension() != config_.d) {
    return util::Status::InvalidArgument(
        util::Format("query dimension %zu != model dimension %zu", q.dimension(),
                     config_.d));
  }
  ++t_;
  TrainStep step;

  const bool growing = config_.fixed_k <= 0;
  const bool codebook_full =
      !growing && num_prototypes() >= config_.fixed_k;

  if (prototypes_.empty() || (growing && [&] {
        const int32_t j = NearestPrototype(q);
        return query::QueryDistance(q, prototypes_[static_cast<size_t>(j)].w) >
               config_.vigilance;
      }()) || (!growing && !codebook_full)) {
    // Spawn: the query becomes a new prototype (Algorithm 1's else-branch).
    Prototype p(q, config_.seed_y_with_answer ? y : 0.0);
    prototypes_.push_back(std::move(p));
    step.winner = num_prototypes() - 1;
    step.spawned = true;
    // A spawn changes the quantization by (at most) the vigilance radius;
    // record that so convergence is not declared on a spawning step.
    step.gamma_j = (config_.vigilance > 0.0)
                       ? config_.vigilance
                       : 1.0;
    step.gamma_h = config_.seed_y_with_answer ? std::fabs(y) : 0.0;
  } else {
    const int32_t j = NearestPrototype(q);
    Prototype& p = prototypes_[static_cast<size_t>(j)];
    step.winner = j;

    const double eta_w = PrototypeRate(p);
    double eta_c = CoefficientRate(p);
    // Residual of the current LLM at q: e = y - y_j - b_j (q - w_j)^T.
    const double residual = y - p.PredictQuery(q);

    // Theorem 4 updates. Order matters: all three use the *pre-update* w_j.
    double dw_norm2 = 0.0;
    double db_norm2 = 0.0;

    // Coefficient update. The literal Theorem-4 step is
    //   Δy = η_c e,  Δb = η_c e (q − w_j).
    // With normalize_coef_step (default) we instead take the same gradient
    // direction preconditioned by the diagonal of the per-cell input second
    // moments M = diag(1, E[z²]) and normalized by the preconditioned
    // curvature (NLMS): Δ[y,b] = η_c e M⁻¹ z̃ / (z̃ᵀ M⁻¹ z̃), where
    // z̃ = [1, q − w_j]. This equalizes convergence rates between the
    // intercept direction (input variance 1) and the slope directions
    // (within-cell input variance « 1) and bounds each combined correction
    // by η_c·e; see DESIGN.md §7.
    constexpr double kEps = 1e-12;
    const double dtheta = q.theta - p.w.theta;
    double dy;
    std::vector<double> db(config_.d + 1, 0.0);  // center slopes, then θ.
    if (config_.normalize_coef_step) {
      // A vigilance-scaled pseudo-sample regularizes the second-moment
      // estimates so the first few preconditioned steps cannot blow up when
      // the current |q − w| happens to be tiny in some coordinate.
      const double prior =
          (config_.vigilance > 0.0 ? config_.vigilance * config_.vigilance : 1.0) /
          static_cast<double>(config_.d + 1);
      const double n_obs = static_cast<double>(p.wins + 2);  // +1 pseudo-sample
      double curvature = 1.0;  // intercept coordinate: input 1, moment 1.
      std::vector<double> precond(config_.d + 1, 0.0);
      for (size_t i = 0; i < config_.d; ++i) {
        const double z = q.center[i] - p.w.center[i];
        p.input_sq_x[i] += z * z;
        const double mean_sq = (prior + p.input_sq_x[i]) / n_obs;
        precond[i] = z / (mean_sq + kEps);
        curvature += z * precond[i];
      }
      p.input_sq_theta += dtheta * dtheta;
      const double mean_sq_theta = (prior + p.input_sq_theta) / n_obs;
      precond[config_.d] = dtheta / (mean_sq_theta + kEps);
      curvature += dtheta * precond[config_.d];

      const double scale = eta_c * residual / curvature;
      dy = scale;
      for (size_t i = 0; i <= config_.d; ++i) db[i] = scale * precond[i];
    } else {
      dy = eta_c * residual;
      for (size_t i = 0; i < config_.d; ++i) {
        db[i] = eta_c * residual * (q.center[i] - p.w.center[i]);
      }
      db[config_.d] = eta_c * residual * dtheta;
    }
    for (size_t i = 0; i < config_.d; ++i) {
      p.b_x[i] += db[i];
      db_norm2 += db[i] * db[i];
    }
    p.b_theta += db[config_.d];
    db_norm2 += db[config_.d] * db[config_.d];
    p.y += dy;

    // Δw_j = η_w (q - w_j): the prototype tracks its cell's running mean.
    for (size_t i = 0; i < config_.d; ++i) {
      const double dw = eta_w * (q.center[i] - p.w.center[i]);
      p.w.center[i] += dw;
      dw_norm2 += dw * dw;
    }
    const double dw_theta = eta_w * dtheta;
    p.w.theta += dw_theta;
    dw_norm2 += dw_theta * dw_theta;

    ++p.wins;
    step.gamma_j = std::sqrt(dw_norm2);
    step.gamma_h = std::sqrt(db_norm2) + std::fabs(dy);
  }

  const double gamma_t = std::max(step.gamma_j, step.gamma_h);
  gamma_history_.push_back(gamma_t);
  const size_t window = static_cast<size_t>(config_.convergence_window);
  if (gamma_history_.size() > window) {
    gamma_history_.erase(gamma_history_.begin(),
                         gamma_history_.end() - static_cast<long>(window));
  }
  return step;
}

double LlmModel::CurrentGamma() const {
  if (gamma_history_.empty()) return std::numeric_limits<double>::infinity();
  double s = 0.0;
  for (double g : gamma_history_) s += g;
  return s / static_cast<double>(gamma_history_.size());
}

bool LlmModel::HasConverged() const {
  return !gamma_history_.empty() && CurrentGamma() <= config_.gamma;
}

void LlmModel::ResetPlasticity(int64_t max_wins) {
  if (max_wins < 0) max_wins = 0;
  for (Prototype& p : prototypes_) {
    if (p.wins <= max_wins) continue;
    const double scale =
        static_cast<double>(max_wins) / static_cast<double>(p.wins);
    for (double& v : p.input_sq_x) v *= scale;
    p.input_sq_theta *= scale;
    p.wins = max_wins;
  }
  gamma_history_.clear();
}

std::vector<int32_t> LlmModel::OverlapSet(const query::Query& q) const {
  std::vector<int32_t> overlap;
  for (size_t k = 0; k < prototypes_.size(); ++k) {
    if (query::DegreeOfOverlap(q, prototypes_[k].w) > 0.0) {
      overlap.push_back(static_cast<int32_t>(k));
    }
  }
  return overlap;
}

double LlmModel::WeightedPrediction(const query::Query& q,
                                    const std::vector<int32_t>& overlap,
                                    bool pin_theta,
                                    const std::vector<double>* x) const {
  // Normalized degrees of overlap δ̃ (Algorithm 2 / Eq. 11 and Eq. 14).
  double delta_sum = 0.0;
  std::vector<double> deltas(overlap.size(), 0.0);
  for (size_t i = 0; i < overlap.size(); ++i) {
    deltas[i] =
        query::DegreeOfOverlap(q, prototypes_[static_cast<size_t>(overlap[i])].w);
    delta_sum += deltas[i];
  }
  double out = 0.0;
  for (size_t i = 0; i < overlap.size(); ++i) {
    const Prototype& p = prototypes_[static_cast<size_t>(overlap[i])];
    const double f = pin_theta
                         ? p.PredictData(x != nullptr ? *x : q.center, SlopeScale(p))
                         : p.PredictQuery(q, SlopeScale(p));
    out += (deltas[i] / delta_sum) * f;
  }
  return out;
}

util::Result<double> LlmModel::PredictMean(const query::Query& q) const {
  if (prototypes_.empty()) {
    return util::Status::FailedPrecondition("model has no prototypes");
  }
  if (q.dimension() != config_.d) {
    return util::Status::InvalidArgument("query dimension mismatch");
  }
  if (config_.prediction == PredictionMode::kNearestOnly) {
    const Prototype& p = prototypes_[static_cast<size_t>(NearestPrototype(q))];
    return p.PredictQuery(q, SlopeScale(p));
  }
  const std::vector<int32_t> overlap = OverlapSet(q);
  if (overlap.empty()) {
    // Case W(q) = ∅: extrapolate from the closest prototype (Algorithm 2).
    const Prototype& p = prototypes_[static_cast<size_t>(NearestPrototype(q))];
    return p.PredictQuery(q, SlopeScale(p));
  }
  return WeightedPrediction(q, overlap, /*pin_theta=*/false, nullptr);
}

util::Result<std::vector<LocalLinearModel>> LlmModel::RegressionQuery(
    const query::Query& q) const {
  if (prototypes_.empty()) {
    return util::Status::FailedPrecondition("model has no prototypes");
  }
  if (q.dimension() != config_.d) {
    return util::Status::InvalidArgument("query dimension mismatch");
  }
  std::vector<LocalLinearModel> s;
  const std::vector<int32_t> overlap = OverlapSet(q);
  if (overlap.empty() || config_.prediction == PredictionMode::kNearestOnly) {
    // Case 3: extrapolate the linearity trend of the nearest subspace.
    const int32_t j = NearestPrototype(q);
    const Prototype& p = prototypes_[static_cast<size_t>(j)];
    s.push_back(p.ToDataModel(j, 0.0, SlopeScale(p)));
    return s;
  }
  double delta_sum = 0.0;
  std::vector<double> deltas(overlap.size(), 0.0);
  for (size_t i = 0; i < overlap.size(); ++i) {
    deltas[i] =
        query::DegreeOfOverlap(q, prototypes_[static_cast<size_t>(overlap[i])].w);
    delta_sum += deltas[i];
  }
  s.reserve(overlap.size());
  for (size_t i = 0; i < overlap.size(); ++i) {
    const Prototype& p = prototypes_[static_cast<size_t>(overlap[i])];
    s.push_back(p.ToDataModel(overlap[i], deltas[i] / delta_sum, SlopeScale(p)));
  }
  return s;
}

util::Result<double> LlmModel::PredictValue(const query::Query& q,
                                            const std::vector<double>& x) const {
  if (prototypes_.empty()) {
    return util::Status::FailedPrecondition("model has no prototypes");
  }
  if (q.dimension() != config_.d || x.size() != config_.d) {
    return util::Status::InvalidArgument("dimension mismatch");
  }
  if (config_.prediction == PredictionMode::kNearestOnly) {
    const Prototype& p = prototypes_[static_cast<size_t>(NearestPrototype(q))];
    return p.PredictData(x, SlopeScale(p));
  }
  const std::vector<int32_t> overlap = OverlapSet(q);
  if (overlap.empty()) {
    const Prototype& p = prototypes_[static_cast<size_t>(NearestPrototype(q))];
    return p.PredictData(x, SlopeScale(p));
  }
  return WeightedPrediction(q, overlap, /*pin_theta=*/true, &x);
}

int64_t LlmModel::ParameterBytes() const {
  // Per prototype: center (d) + θ + y + b_x (d) + b_θ doubles.
  const int64_t per = static_cast<int64_t>((2 * config_.d + 3) * sizeof(double));
  return per * num_prototypes();
}

std::string LlmModel::Summary() const {
  return util::Format(
      "LlmModel{d=%zu, K=%d, a=%.3f, rho=%.4f, gamma=%.4g, observations=%lld, "
      "frozen=%s, params=%lld bytes}",
      config_.d, num_prototypes(), config_.a, config_.vigilance, config_.gamma,
      static_cast<long long>(t_), frozen_ ? "yes" : "no",
      static_cast<long long>(ParameterBytes()));
}

}  // namespace core
}  // namespace qreg
