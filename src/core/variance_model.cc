#include "core/variance_model.h"

#include <algorithm>
#include <cmath>

#include "core/model_io.h"

namespace qreg {
namespace core {

util::Status VarianceModel::Observe(const query::Query& q, double mean,
                                    double second_moment) {
  QREG_ASSIGN_OR_RETURN(TrainStep mean_step, mean_model_.Observe(q, mean));
  (void)mean_step;
  QREG_ASSIGN_OR_RETURN(TrainStep m2_step, m2_model_.Observe(q, second_moment));
  (void)m2_step;
  return util::Status::OK();
}

util::Result<MomentPrediction> VarianceModel::Predict(const query::Query& q) const {
  QREG_ASSIGN_OR_RETURN(double mean, mean_model_.PredictMean(q));
  QREG_ASSIGN_OR_RETURN(double m2, m2_model_.PredictMean(q));
  MomentPrediction out;
  out.mean = mean;
  out.second_moment = m2;
  out.variance = std::max(0.0, m2 - mean * mean);
  out.stddev = std::sqrt(out.variance);
  return out;
}

util::Status VarianceModel::Save(std::ostream* os) const {
  QREG_RETURN_NOT_OK(ModelSerializer::Save(mean_model_, os));
  return ModelSerializer::Save(m2_model_, os);
}

util::Result<VarianceModel> VarianceModel::Load(std::istream* is) {
  QREG_ASSIGN_OR_RETURN(LlmModel mean_model, ModelSerializer::Load(is));
  QREG_ASSIGN_OR_RETURN(LlmModel m2_model, ModelSerializer::Load(is));
  return VarianceModel(std::move(mean_model), std::move(m2_model));
}

}  // namespace core
}  // namespace qreg
