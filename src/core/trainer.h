// The training loop of Figure 2: stream random queries, execute them
// *exactly* against the DBMS substrate to obtain answers y, feed the
// (q, y) pairs to the model until Γ ≤ γ (or a pair budget runs out).
//
// The trainer instruments where wall time goes (query execution vs model
// update), reproducing the paper's claim that ~99.6% of training cost is the
// unavoidable exact query execution. Because that cost is a stream of exact
// scans, Train() honors an optional util::ExecControl: the lifecycle is
// checked once per training query (and inside each scan via the engine's
// chunk-claim loop), so an expired or cancelled request stops training
// within one query boundary and reports the partial work done so far.

#ifndef QREG_CORE_TRAINER_H_
#define QREG_CORE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/llm_model.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace qreg {
namespace core {

/// \brief Training-loop limits and instrumentation options.
struct TrainerConfig {
  int64_t max_pairs = 100000;    ///< Hard budget of (q, y) pairs.
  int64_t min_pairs = 50;        ///< Do not test convergence before this.
  /// Record Γ every `trace_every` pairs into TrainingReport::gamma_trace
  /// (0 disables tracing).
  int64_t trace_every = 0;
  /// Freeze the model once converged (Algorithm 1 semantics).
  bool freeze_on_convergence = true;

  /// Test-only: invoked with the pairs completed so far immediately before
  /// each training query's lifecycle check. Lets deterministic tests trip a
  /// deadline/token at an exact point in the training stream (a gate, a
  /// FakeClock advance) without sleeps.
  std::function<void(int64_t pairs_done)> on_pair_for_testing;
};

/// \brief Outcome of a training run.
struct TrainingReport {
  int64_t pairs_used = 0;        ///< |T|: executed (q, y) pairs fed to the model.
  int64_t pairs_skipped = 0;     ///< Queries whose subspace was empty.
  bool converged = false;
  double final_gamma = 0.0;
  int32_t num_prototypes = 0;

  int64_t query_exec_nanos = 0;  ///< Time in the exact engine.
  int64_t model_update_nanos = 0;

  /// (pair index, Γ) samples when trace_every > 0.
  std::vector<std::pair<int64_t, double>> gamma_trace;

  /// Fraction of training time spent executing queries (paper: 99.62%).
  double QueryExecFraction() const {
    const double total =
        static_cast<double>(query_exec_nanos + model_update_nanos);
    return total > 0.0 ? static_cast<double>(query_exec_nanos) / total : 0.0;
  }
};

/// \brief Drives Algorithm 1 against an exact engine and a workload.
class Trainer {
 public:
  Trainer(const query::ExactEngine& engine, TrainerConfig config)
      : engine_(engine), config_(config) {}

  /// Streams queries from `workload` into `model` until convergence or the
  /// pair budget. The model is mutated in place.
  ///
  /// With a non-null `control`, the request lifecycle is checked once per
  /// training query (and inside each exact scan, per partition chunk): a
  /// trip returns the typed kDeadlineExceeded / kCancelled status within one
  /// query boundary, and — when `partial` is non-null — fills `*partial`
  /// with the work completed before the abort (pairs fed, prototypes grown,
  /// where the wall time went). The model keeps the pairs it has already
  /// absorbed, so an aborted run is resumable, never corrupt.
  util::Result<TrainingReport> Train(query::WorkloadGenerator* workload,
                                     LlmModel* model,
                                     const util::ExecControl* control = nullptr,
                                     TrainingReport* partial = nullptr) const;

  /// Trains from pre-computed pairs (used by benches that reuse workloads).
  util::Result<TrainingReport> TrainFromPairs(
      const std::vector<query::QueryAnswer>& pairs, LlmModel* model) const;

 private:
  const query::ExactEngine& engine_;
  TrainerConfig config_;
};

}  // namespace core
}  // namespace qreg

#endif  // QREG_CORE_TRAINER_H_
