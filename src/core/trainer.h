// The training loop of Figure 2: stream random queries, execute them
// *exactly* against the DBMS substrate to obtain answers y, feed the
// (q, y) pairs to the model until Γ ≤ γ (or a pair budget runs out).
//
// The trainer instruments where wall time goes (query execution vs model
// update), reproducing the paper's claim that ~99.6% of training cost is the
// unavoidable exact query execution.

#ifndef QREG_CORE_TRAINER_H_
#define QREG_CORE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "core/llm_model.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "util/status.h"

namespace qreg {
namespace core {

/// \brief Training-loop limits and instrumentation options.
struct TrainerConfig {
  int64_t max_pairs = 100000;    ///< Hard budget of (q, y) pairs.
  int64_t min_pairs = 50;        ///< Do not test convergence before this.
  /// Record Γ every `trace_every` pairs into TrainingReport::gamma_trace
  /// (0 disables tracing).
  int64_t trace_every = 0;
  /// Freeze the model once converged (Algorithm 1 semantics).
  bool freeze_on_convergence = true;
};

/// \brief Outcome of a training run.
struct TrainingReport {
  int64_t pairs_used = 0;        ///< |T|: executed (q, y) pairs fed to the model.
  int64_t pairs_skipped = 0;     ///< Queries whose subspace was empty.
  bool converged = false;
  double final_gamma = 0.0;
  int32_t num_prototypes = 0;

  int64_t query_exec_nanos = 0;  ///< Time in the exact engine.
  int64_t model_update_nanos = 0;

  /// (pair index, Γ) samples when trace_every > 0.
  std::vector<std::pair<int64_t, double>> gamma_trace;

  /// Fraction of training time spent executing queries (paper: 99.62%).
  double QueryExecFraction() const {
    const double total =
        static_cast<double>(query_exec_nanos + model_update_nanos);
    return total > 0.0 ? static_cast<double>(query_exec_nanos) / total : 0.0;
  }
};

/// \brief Drives Algorithm 1 against an exact engine and a workload.
class Trainer {
 public:
  Trainer(const query::ExactEngine& engine, TrainerConfig config)
      : engine_(engine), config_(config) {}

  /// Streams queries from `workload` into `model` until convergence or the
  /// pair budget. The model is mutated in place.
  util::Result<TrainingReport> Train(query::WorkloadGenerator* workload,
                                     LlmModel* model) const;

  /// Trains from pre-computed pairs (used by benches that reuse workloads).
  util::Result<TrainingReport> TrainFromPairs(
      const std::vector<query::QueryAnswer>& pairs, LlmModel* model) const;

 private:
  const query::ExactEngine& engine_;
  TrainerConfig config_;
};

}  // namespace core
}  // namespace qreg

#endif  // QREG_CORE_TRAINER_H_
