#include "core/trainer.h"

#include "util/timer.h"

namespace qreg {
namespace core {

namespace {

// Snapshots the abort-time model state into the partial report so the caller
// sees exactly how far training got (pairs fed, prototypes grown) before the
// lifecycle trip.
util::Status AbortTraining(util::Status status, const LlmModel& model,
                           TrainingReport* report, TrainingReport* partial) {
  report->final_gamma = model.CurrentGamma();
  report->num_prototypes = model.num_prototypes();
  if (partial != nullptr) *partial = std::move(*report);
  return status;
}

}  // namespace

util::Result<TrainingReport> Trainer::Train(query::WorkloadGenerator* workload,
                                            LlmModel* model,
                                            const util::ExecControl* control,
                                            TrainingReport* partial) const {
  if (workload == nullptr || model == nullptr) {
    return util::Status::InvalidArgument("null workload or model");
  }
  TrainingReport report;
  util::Stopwatch sw;

  while (report.pairs_used < config_.max_pairs) {
    // Per-query lifecycle boundary: an expired or cancelled request stops
    // streaming pairs before the next exact scan starts.
    if (config_.on_pair_for_testing) config_.on_pair_for_testing(report.pairs_used);
    if (control != nullptr) {
      util::Status st = control->Check();
      if (!st.ok()) return AbortTraining(std::move(st), *model, &report, partial);
    }
    const query::Query q = workload->Next();

    sw.Restart();
    query::ExecStats stats;
    auto mean = engine_.MeanValue(q, &stats, control);
    report.query_exec_nanos += sw.ElapsedNanos();

    if (!mean.ok()) {
      const util::StatusCode code = mean.status().code();
      if (code == util::StatusCode::kDeadlineExceeded ||
          code == util::StatusCode::kCancelled) {
        // The trip happened mid-scan; the partial scan taught us nothing.
        return AbortTraining(mean.status(), *model, &report, partial);
      }
      // Empty subspace: the DBMS returns NULL; nothing to learn from.
      ++report.pairs_skipped;
      continue;
    }

    sw.Restart();
    QREG_ASSIGN_OR_RETURN(TrainStep step, model->Observe(q, mean->mean));
    (void)step;
    report.model_update_nanos += sw.ElapsedNanos();
    ++report.pairs_used;

    if (config_.trace_every > 0 && report.pairs_used % config_.trace_every == 0) {
      report.gamma_trace.emplace_back(report.pairs_used, model->CurrentGamma());
    }
    if (report.pairs_used >= config_.min_pairs && model->HasConverged()) {
      report.converged = true;
      break;
    }
  }

  report.final_gamma = model->CurrentGamma();
  report.num_prototypes = model->num_prototypes();
  if (report.converged && config_.freeze_on_convergence) model->Freeze();
  return report;
}

util::Result<TrainingReport> Trainer::TrainFromPairs(
    const std::vector<query::QueryAnswer>& pairs, LlmModel* model) const {
  if (model == nullptr) return util::Status::InvalidArgument("null model");
  TrainingReport report;
  util::Stopwatch sw;
  for (const query::QueryAnswer& pair : pairs) {
    if (report.pairs_used >= config_.max_pairs) break;
    sw.Restart();
    QREG_ASSIGN_OR_RETURN(TrainStep step, model->Observe(pair.q, pair.y));
    (void)step;
    report.model_update_nanos += sw.ElapsedNanos();
    ++report.pairs_used;
    if (config_.trace_every > 0 && report.pairs_used % config_.trace_every == 0) {
      report.gamma_trace.emplace_back(report.pairs_used, model->CurrentGamma());
    }
    if (report.pairs_used >= config_.min_pairs && model->HasConverged()) {
      report.converged = true;
      break;
    }
  }
  report.final_gamma = model->CurrentGamma();
  report.num_prototypes = model->num_prototypes();
  if (report.converged && config_.freeze_on_convergence) model->Freeze();
  return report;
}

}  // namespace core
}  // namespace qreg
