#include "core/trainer.h"

#include "util/timer.h"

namespace qreg {
namespace core {

util::Result<TrainingReport> Trainer::Train(query::WorkloadGenerator* workload,
                                            LlmModel* model) const {
  if (workload == nullptr || model == nullptr) {
    return util::Status::InvalidArgument("null workload or model");
  }
  TrainingReport report;
  util::Stopwatch sw;

  while (report.pairs_used < config_.max_pairs) {
    const query::Query q = workload->Next();

    sw.Restart();
    query::ExecStats stats;
    auto mean = engine_.MeanValue(q, &stats);
    report.query_exec_nanos += sw.ElapsedNanos();

    if (!mean.ok()) {
      // Empty subspace: the DBMS returns NULL; nothing to learn from.
      ++report.pairs_skipped;
      continue;
    }

    sw.Restart();
    QREG_ASSIGN_OR_RETURN(TrainStep step, model->Observe(q, mean->mean));
    (void)step;
    report.model_update_nanos += sw.ElapsedNanos();
    ++report.pairs_used;

    if (config_.trace_every > 0 && report.pairs_used % config_.trace_every == 0) {
      report.gamma_trace.emplace_back(report.pairs_used, model->CurrentGamma());
    }
    if (report.pairs_used >= config_.min_pairs && model->HasConverged()) {
      report.converged = true;
      break;
    }
  }

  report.final_gamma = model->CurrentGamma();
  report.num_prototypes = model->num_prototypes();
  if (report.converged && config_.freeze_on_convergence) model->Freeze();
  return report;
}

util::Result<TrainingReport> Trainer::TrainFromPairs(
    const std::vector<query::QueryAnswer>& pairs, LlmModel* model) const {
  if (model == nullptr) return util::Status::InvalidArgument("null model");
  TrainingReport report;
  util::Stopwatch sw;
  for (const query::QueryAnswer& pair : pairs) {
    if (report.pairs_used >= config_.max_pairs) break;
    sw.Restart();
    QREG_ASSIGN_OR_RETURN(TrainStep step, model->Observe(pair.q, pair.y));
    (void)step;
    report.model_update_nanos += sw.ElapsedNanos();
    ++report.pairs_used;
    if (config_.trace_every > 0 && report.pairs_used % config_.trace_every == 0) {
      report.gamma_trace.emplace_back(report.pairs_used, model->CurrentGamma());
    }
    if (report.pairs_used >= config_.min_pairs && model->HasConverged()) {
      report.converged = true;
      break;
    }
  }
  report.final_gamma = model->CurrentGamma();
  report.num_prototypes = model->num_prototypes();
  if (report.converged && config_.freeze_on_convergence) model->Freeze();
  return report;
}

}  // namespace core
}  // namespace qreg
