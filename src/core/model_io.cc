#include "core/model_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace qreg {
namespace core {

namespace {
constexpr const char* kMagic = "qreg-llm-model";
constexpr int kVersion = 1;
}  // namespace

util::Status ModelSerializer::Save(const LlmModel& model, std::ostream* os) {
  if (os == nullptr) return util::Status::InvalidArgument("null stream");
  const LlmConfig& c = model.config();
  *os << kMagic << ' ' << kVersion << '\n';
  *os << std::setprecision(17);
  *os << "d " << c.d << '\n';
  *os << "vigilance " << c.vigilance << '\n';
  *os << "a " << c.a << '\n';
  *os << "gamma " << c.gamma << '\n';
  *os << "schedule " << static_cast<int>(c.schedule) << '\n';
  *os << "constant_eta " << c.constant_eta << '\n';
  *os << "coef_power " << c.coef_power << '\n';
  *os << "slope_shrinkage " << c.slope_shrinkage << '\n';
  *os << "normalize " << (c.normalize_coef_step ? 1 : 0) << '\n';
  *os << "prediction " << static_cast<int>(c.prediction) << '\n';
  *os << "fixed_k " << c.fixed_k << '\n';
  *os << "seed_y " << (c.seed_y_with_answer ? 1 : 0) << '\n';
  *os << "window " << c.convergence_window << '\n';
  *os << "observations " << model.observations() << '\n';
  *os << "frozen " << (model.frozen() ? 1 : 0) << '\n';
  *os << "prototypes " << model.num_prototypes() << '\n';
  for (const Prototype& p : model.prototypes()) {
    *os << "p";
    for (double v : p.w.center) *os << ' ' << v;
    *os << ' ' << p.w.theta << ' ' << p.y;
    for (double v : p.b_x) *os << ' ' << v;
    *os << ' ' << p.b_theta << ' ' << p.wins << '\n';
  }
  if (!os->good()) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

util::Status ModelSerializer::SaveToFile(const LlmModel& model,
                                         const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  QREG_RETURN_NOT_OK(Save(model, &out));
  out.close();
  if (out.fail()) return util::Status::IoError("close failed: " + path);
  return util::Status::OK();
}

util::Result<LlmModel> ModelSerializer::Load(std::istream* is) {
  if (is == nullptr) return util::Status::InvalidArgument("null stream");
  std::string magic;
  int version = 0;
  *is >> magic >> version;
  if (magic != kMagic) {
    return util::Status::InvalidArgument("not a qreg model stream");
  }
  if (version != kVersion) {
    return util::Status::NotImplemented(
        util::Format("unsupported model version %d", version));
  }

  LlmConfig c;
  int schedule = 0;
  int prediction = 0;
  int seed_y = 0;
  int frozen = 0;
  int64_t observations = 0;
  int32_t num_prototypes = 0;
  std::string key;

  auto expect = [&](const char* want) -> util::Status {
    if (key != want) {
      return util::Status::InvalidArgument(
          util::Format("expected field '%s', found '%s'", want, key.c_str()));
    }
    return util::Status::OK();
  };

  *is >> key >> c.d;
  QREG_RETURN_NOT_OK(expect("d"));
  *is >> key >> c.vigilance;
  QREG_RETURN_NOT_OK(expect("vigilance"));
  *is >> key >> c.a;
  QREG_RETURN_NOT_OK(expect("a"));
  *is >> key >> c.gamma;
  QREG_RETURN_NOT_OK(expect("gamma"));
  *is >> key >> schedule;
  QREG_RETURN_NOT_OK(expect("schedule"));
  *is >> key >> c.constant_eta;
  QREG_RETURN_NOT_OK(expect("constant_eta"));
  *is >> key >> c.coef_power;
  QREG_RETURN_NOT_OK(expect("coef_power"));
  *is >> key >> c.slope_shrinkage;
  QREG_RETURN_NOT_OK(expect("slope_shrinkage"));
  int normalize = 0;
  *is >> key >> normalize;
  QREG_RETURN_NOT_OK(expect("normalize"));
  c.normalize_coef_step = normalize != 0;
  *is >> key >> prediction;
  QREG_RETURN_NOT_OK(expect("prediction"));
  *is >> key >> c.fixed_k;
  QREG_RETURN_NOT_OK(expect("fixed_k"));
  *is >> key >> seed_y;
  QREG_RETURN_NOT_OK(expect("seed_y"));
  *is >> key >> c.convergence_window;
  QREG_RETURN_NOT_OK(expect("window"));
  *is >> key >> observations;
  QREG_RETURN_NOT_OK(expect("observations"));
  *is >> key >> frozen;
  QREG_RETURN_NOT_OK(expect("frozen"));
  *is >> key >> num_prototypes;
  QREG_RETURN_NOT_OK(expect("prototypes"));
  if (!is->good()) return util::Status::IoError("truncated model header");

  c.schedule = static_cast<LearningRateSchedule>(schedule);
  c.prediction = static_cast<PredictionMode>(prediction);
  c.seed_y_with_answer = seed_y != 0;
  QREG_RETURN_NOT_OK(c.Validate());

  LlmModel model(c);
  model.t_ = observations;
  model.prototypes_.reserve(static_cast<size_t>(num_prototypes));
  for (int32_t i = 0; i < num_prototypes; ++i) {
    *is >> key;
    QREG_RETURN_NOT_OK(expect("p"));
    Prototype p;
    p.w.center.resize(c.d);
    p.b_x.resize(c.d);
    // The preconditioner's second-moment accumulators are training state;
    // they are not persisted and re-warm if training resumes.
    p.input_sq_x.assign(c.d, 0.0);
    for (size_t j = 0; j < c.d; ++j) *is >> p.w.center[j];
    *is >> p.w.theta >> p.y;
    for (size_t j = 0; j < c.d; ++j) *is >> p.b_x[j];
    *is >> p.b_theta >> p.wins;
    if (!is->good()) {
      return util::Status::IoError(
          util::Format("truncated prototype %d of %d", i, num_prototypes));
    }
    model.prototypes_.push_back(std::move(p));
  }
  if (frozen != 0) model.Freeze();
  return model;
}

util::Result<LlmModel> ModelSerializer::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  return Load(&in);
}

}  // namespace core
}  // namespace qreg
