#include "core/drift.h"

#include <cmath>

namespace qreg {
namespace core {

util::Result<double> DriftMonitor::MeasureRmse(const LlmModel& model,
                                               const query::ExactEngine& engine,
                                               query::WorkloadGenerator* workload,
                                               int64_t* used) const {
  if (workload == nullptr) return util::Status::InvalidArgument("null workload");
  if (config_.probe_queries <= 0) {
    return util::Status::InvalidArgument(
        "drift probe window is empty (probe_queries must be > 0)");
  }
  double sse = 0.0;
  int64_t n = 0;
  int64_t attempts = 0;
  while (n < config_.probe_queries && attempts < 50 * config_.probe_queries) {
    ++attempts;
    const query::Query q = workload->Next();
    auto exact = engine.MeanValue(q);
    if (!exact.ok()) continue;  // empty subspace: nothing to compare
    QREG_ASSIGN_OR_RETURN(double pred, model.PredictMean(q));
    sse += (exact->mean - pred) * (exact->mean - pred);
    ++n;
  }
  if (n == 0) {
    return util::Status::FailedPrecondition(
        "no probe query selected a non-empty subspace");
  }
  if (used != nullptr) *used = n;
  return std::sqrt(sse / static_cast<double>(n));
}

util::Status DriftMonitor::Calibrate(const LlmModel& model,
                                     const query::ExactEngine& engine,
                                     query::WorkloadGenerator* workload) {
  // A failed (re)calibration leaves no baseline at all: probing against a
  // baseline measured on a different model would either mask real drift or
  // re-trip forever, so callers must recalibrate before the next Probe().
  calibrated_ = false;
  int64_t used = 0;
  QREG_ASSIGN_OR_RETURN(baseline_rmse_, MeasureRmse(model, engine, workload, &used));
  calibrated_ = true;
  return util::Status::OK();
}

util::Result<DriftReport> DriftMonitor::Probe(
    const LlmModel& model, const query::ExactEngine& engine,
    query::WorkloadGenerator* workload) const {
  if (!calibrated_) {
    return util::Status::FailedPrecondition("Calibrate() before Probe()");
  }
  DriftReport report;
  QREG_ASSIGN_OR_RETURN(
      report.rmse, MeasureRmse(model, engine, workload, &report.queries_used));
  report.baseline_rmse = baseline_rmse_;
  const double threshold = std::max(config_.absolute_threshold,
                                    config_.degradation_factor * baseline_rmse_);
  // Strictly greater: a probe whose RMSE lands exactly on the threshold
  // (e.g. an identical probe stream against unchanged data with
  // degradation_factor = 1) is steady state, not drift.
  report.drifted = report.rmse > threshold;
  return report;
}

util::Result<TrainingReport> DriftMonitor::Retrain(
    LlmModel* model, const query::ExactEngine& engine,
    query::WorkloadGenerator* workload, int64_t max_pairs) const {
  if (model == nullptr) return util::Status::InvalidArgument("null model");
  model->Unfreeze();
  // Stale prototypes carry near-zero learning rates; restore plasticity so
  // Algorithm 1 can actually track the new regime.
  model->ResetPlasticity();
  TrainerConfig tc;
  tc.max_pairs = max_pairs;
  tc.min_pairs = std::min<int64_t>(max_pairs, 200);
  Trainer trainer(engine, tc);
  return trainer.Train(workload, model);
}

}  // namespace core
}  // namespace qreg
