// Hinge basis functions for Multivariate Adaptive Regression Splines
// (Friedman, Annals of Statistics 19(1), 1991) — the paper's PLR baseline
// (built with the ARESLab toolbox in the original evaluation).

#ifndef QREG_PLR_BASIS_H_
#define QREG_PLR_BASIS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qreg {
namespace plr {

/// \brief One hinge factor h(x) = max(0, sign * (x[dim] - knot)).
struct HingeTerm {
  uint32_t dim = 0;
  double knot = 0.0;
  int8_t sign = 1;  ///< +1 or -1.

  double Eval(const double* x) const {
    const double v = static_cast<double>(sign) * (x[dim] - knot);
    return v > 0.0 ? v : 0.0;
  }

  bool operator==(const HingeTerm& o) const {
    return dim == o.dim && knot == o.knot && sign == o.sign;
  }
};

/// \brief Product of hinge factors; an empty product is the intercept term.
struct BasisFunction {
  std::vector<HingeTerm> terms;

  double Eval(const double* x) const {
    double v = 1.0;
    for (const HingeTerm& t : terms) {
      v *= t.Eval(x);
      if (v == 0.0) return 0.0;
    }
    return v;
  }

  bool is_intercept() const { return terms.empty(); }
  size_t interaction_order() const { return terms.size(); }

  /// True if the basis already hinges on `dim` (MARS forbids reusing a
  /// variable within one product).
  bool UsesDim(uint32_t dim) const {
    for (const HingeTerm& t : terms) {
      if (t.dim == dim) return true;
    }
    return false;
  }

  std::string ToString(const std::vector<std::string>& feature_names) const;
};

}  // namespace plr
}  // namespace qreg

#endif  // QREG_PLR_BASIS_H_
