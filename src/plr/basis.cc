#include "plr/basis.h"

#include "util/string_util.h"

namespace qreg {
namespace plr {

std::string BasisFunction::ToString(
    const std::vector<std::string>& feature_names) const {
  if (terms.empty()) return "1";
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    const HingeTerm& t = terms[i];
    const std::string var = t.dim < feature_names.size()
                                ? feature_names[t.dim]
                                : util::Format("x%u", t.dim + 1);
    if (i > 0) out += " * ";
    if (t.sign > 0) {
      out += util::Format("max(0, %s - %.4g)", var.c_str(), t.knot);
    } else {
      out += util::Format("max(0, %.4g - %s)", t.knot, var.c_str());
    }
  }
  return out;
}

}  // namespace plr
}  // namespace qreg
