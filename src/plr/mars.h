// MARS: forward stagewise selection of hinge-pair basis functions, backward
// pruning, and Generalized Cross-Validation model selection — the PLR
// baseline of the paper's Section VI (ARESLab with GCV knot penalty 3 and
// the maximum number of discovered linear models tied to K).

#ifndef QREG_PLR_MARS_H_
#define QREG_PLR_MARS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "plr/basis.h"
#include "util/status.h"

namespace qreg {
namespace plr {

/// \brief MARS hyper-parameters (ARESLab-compatible defaults).
struct MarsConfig {
  /// Maximum basis functions (including the intercept) grown in the forward
  /// phase ("max number of discovered linear models" in the paper).
  int32_t max_terms = 21;
  /// GCV penalty per knot (the paper uses 3, per Friedman's recommendation).
  double gcv_penalty = 3.0;
  /// Candidate knots per dimension (quantiles of the training sample).
  int32_t max_knots_per_dim = 20;
  /// 1 = additive (piecewise-linear) model; 2 allows pairwise products.
  int32_t max_interaction = 1;
  /// Training rows are uniformly subsampled down to this bound (ARESLab-style
  /// practicality guard; 0 disables).
  int64_t max_fit_rows = 20000;
  uint64_t subsample_seed = 99;
  /// Forward phase stops early once relative SSR improvement drops below this.
  double min_rel_improvement = 1e-9;

  util::Status Validate() const;
};

/// \brief A fitted MARS model.
class MarsModel {
 public:
  MarsModel() = default;

  double Predict(const double* x) const;
  double Predict(const std::vector<double>& x) const { return Predict(x.data()); }

  const std::vector<BasisFunction>& bases() const { return bases_; }
  const std::vector<double>& coefficients() const { return coeffs_; }

  /// Number of basis functions including the intercept.
  int32_t num_terms() const { return static_cast<int32_t>(bases_.size()); }
  /// Number of non-intercept hinge bases (the "linear pieces" count the
  /// paper compares against K).
  int32_t num_hinges() const { return num_terms() - 1; }

  double ssr() const { return ssr_; }
  double tss() const { return tss_; }
  double gcv() const { return gcv_; }
  int64_t fit_rows() const { return n_; }
  size_t dimension() const { return d_; }

  double Fvu() const;
  double CoD() const { return 1.0 - Fvu(); }

  std::string ToString(const std::vector<std::string>& feature_names = {}) const;

 private:
  friend class MarsFitter;

  std::vector<BasisFunction> bases_;  // bases_[0] is the intercept.
  std::vector<double> coeffs_;
  double ssr_ = 0.0;
  double tss_ = 0.0;
  double gcv_ = 0.0;
  int64_t n_ = 0;
  size_t d_ = 0;
};

/// \brief Fits a MARS model to (x rows, u). Needs at least 2 rows.
util::Result<MarsModel> FitMars(const linalg::Matrix& x,
                                const std::vector<double>& u,
                                const MarsConfig& config = MarsConfig());

/// \brief Convenience overload from row vectors.
util::Result<MarsModel> FitMars(const std::vector<std::vector<double>>& rows,
                                const std::vector<double>& u,
                                const MarsConfig& config = MarsConfig());

}  // namespace plr
}  // namespace qreg

#endif  // QREG_PLR_MARS_H_
