#include "plr/mars.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "linalg/cholesky.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace qreg {
namespace plr {

namespace {

/// Effective number of parameters for GCV: terms + penalty * distinct knots
/// (Friedman '91, section 3.6 with the knot-count form used by ARESLab).
double EffectiveParams(const std::vector<BasisFunction>& bases, double penalty) {
  std::set<std::pair<uint32_t, double>> knots;
  for (const BasisFunction& b : bases) {
    for (const HingeTerm& t : b.terms) knots.insert({t.dim, t.knot});
  }
  return static_cast<double>(bases.size()) +
         penalty * static_cast<double>(knots.size());
}

double Gcv(double ssr, int64_t n, double c_eff) {
  const double nn = static_cast<double>(n);
  const double denom = 1.0 - c_eff / nn;
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return (ssr / nn) / (denom * denom);
}

}  // namespace

util::Status MarsConfig::Validate() const {
  if (max_terms < 1) return util::Status::InvalidArgument("max_terms must be >= 1");
  if (gcv_penalty < 0.0) {
    return util::Status::InvalidArgument("gcv_penalty must be non-negative");
  }
  if (max_knots_per_dim < 1) {
    return util::Status::InvalidArgument("max_knots_per_dim must be >= 1");
  }
  if (max_interaction < 1) {
    return util::Status::InvalidArgument("max_interaction must be >= 1");
  }
  return util::Status::OK();
}

double MarsModel::Predict(const double* x) const {
  double s = 0.0;
  for (size_t i = 0; i < bases_.size(); ++i) s += coeffs_[i] * bases_[i].Eval(x);
  return s;
}

double MarsModel::Fvu() const {
  if (tss_ > 0.0) return ssr_ / tss_;
  return ssr_ > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
}

std::string MarsModel::ToString(const std::vector<std::string>& feature_names) const {
  std::string out = util::Format("MARS(terms=%d, ssr=%.4g, gcv=%.4g)\n",
                                 num_terms(), ssr_, gcv_);
  for (size_t i = 0; i < bases_.size(); ++i) {
    out += util::Format("  %+.5g * %s\n", coeffs_[i],
                        bases_[i].ToString(feature_names).c_str());
  }
  return out;
}

/// Internal fitting engine: keeps the design columns plus cached moments
/// G = D'D and D'u so candidate evaluation and pruning cost O(m^3) after a
/// single O(n m) column pass.
class MarsFitter {
 public:
  MarsFitter(const linalg::Matrix& x, const std::vector<double>& u,
             const MarsConfig& config)
      : x_(x), u_(u), config_(config) {}

  util::Result<MarsModel> Fit();

 private:
  struct SolvedModel {
    std::vector<double> beta;
    double ssr = 0.0;
  };

  void Subsample();
  void BuildKnotCandidates();
  std::vector<double> EvalBasisColumn(const BasisFunction& b) const;

  /// Solves OLS from the moment matrices of the given column subset.
  util::Result<SolvedModel> SolveFromMoments(
      const std::vector<std::vector<double>>& cols) const;

  util::Status ForwardPass();
  util::Status BackwardPass(MarsModel* out);

  const linalg::Matrix& x_;
  const std::vector<double>& u_;
  MarsConfig config_;

  std::vector<int64_t> rows_;                  // active (possibly subsampled) rows
  std::vector<std::vector<double>> knots_;     // per-dim candidate knots
  std::vector<BasisFunction> bases_;
  std::vector<std::vector<double>> cols_;      // design columns over rows_
  double utu_ = 0.0;
  double usum_ = 0.0;
};

void MarsFitter::Subsample() {
  const int64_t n = static_cast<int64_t>(x_.rows());
  rows_.clear();
  if (config_.max_fit_rows > 0 && n > config_.max_fit_rows) {
    util::Rng rng(config_.subsample_seed);
    // Reservoir-free uniform pick without replacement: shuffle a prefix.
    std::vector<int64_t> all(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
    rng.Shuffle(&all);
    all.resize(static_cast<size_t>(config_.max_fit_rows));
    std::sort(all.begin(), all.end());
    rows_ = std::move(all);
  } else {
    rows_.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) rows_[static_cast<size_t>(i)] = i;
  }
  utu_ = 0.0;
  usum_ = 0.0;
  for (int64_t r : rows_) {
    const double uu = u_[static_cast<size_t>(r)];
    utu_ += uu * uu;
    usum_ += uu;
  }
}

void MarsFitter::BuildKnotCandidates() {
  const size_t d = x_.cols();
  knots_.assign(d, {});
  const size_t n = rows_.size();
  std::vector<double> vals(n);
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = 0; i < n; ++i) {
      vals[i] = x_(static_cast<size_t>(rows_[i]), j);
    }
    std::sort(vals.begin(), vals.end());
    // Interior quantile knots (endpoints produce degenerate hinges).
    const int32_t kq = config_.max_knots_per_dim;
    std::vector<double>& out = knots_[j];
    for (int32_t q = 1; q <= kq; ++q) {
      const double frac = static_cast<double>(q) / static_cast<double>(kq + 1);
      const double v = vals[static_cast<size_t>(frac * static_cast<double>(n - 1))];
      if (out.empty() || v > out.back()) out.push_back(v);
    }
  }
}

std::vector<double> MarsFitter::EvalBasisColumn(const BasisFunction& b) const {
  std::vector<double> col(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    col[i] = b.Eval(x_.RowPtr(static_cast<size_t>(rows_[i])));
  }
  return col;
}

util::Result<MarsFitter::SolvedModel> MarsFitter::SolveFromMoments(
    const std::vector<std::vector<double>>& cols) const {
  const size_t m = cols.size();
  const size_t n = rows_.size();
  linalg::Matrix g(m, m);
  std::vector<double> rhs(m, 0.0);
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a; b < m; ++b) {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) s += cols[a][i] * cols[b][i];
      g(a, b) = s;
      g(b, a) = s;
    }
    double su = 0.0;
    for (size_t i = 0; i < n; ++i) su += cols[a][i] * u_[static_cast<size_t>(rows_[i])];
    rhs[a] = su;
  }
  QREG_ASSIGN_OR_RETURN(std::vector<double> beta,
                        linalg::CholeskySolveRegularized(g, rhs));
  double bgb = 0.0;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) bgb += beta[a] * g(a, b) * beta[b];
  }
  double bru = 0.0;
  for (size_t a = 0; a < m; ++a) bru += beta[a] * rhs[a];
  SolvedModel sm;
  sm.beta = std::move(beta);
  sm.ssr = std::max(0.0, utu_ - 2.0 * bru + bgb);
  return sm;
}

util::Status MarsFitter::ForwardPass() {
  bases_.clear();
  cols_.clear();
  bases_.push_back(BasisFunction{});  // Intercept.
  cols_.push_back(std::vector<double>(rows_.size(), 1.0));

  QREG_ASSIGN_OR_RETURN(SolvedModel current, SolveFromMoments(cols_));
  double current_ssr = current.ssr;

  const size_t d = x_.cols();
  while (static_cast<int32_t>(bases_.size()) + 2 <= config_.max_terms) {
    double best_ssr = current_ssr;
    BasisFunction best_pos, best_neg;
    std::vector<double> best_col_pos, best_col_neg;
    bool found = false;

    for (size_t parent = 0; parent < bases_.size(); ++parent) {
      const BasisFunction& pb = bases_[parent];
      if (static_cast<int32_t>(pb.interaction_order()) + 1 > config_.max_interaction) {
        continue;
      }
      for (uint32_t j = 0; j < d; ++j) {
        if (pb.UsesDim(j)) continue;
        for (double knot : knots_[j]) {
          BasisFunction cand_pos = pb;
          cand_pos.terms.push_back({j, knot, +1});
          BasisFunction cand_neg = pb;
          cand_neg.terms.push_back({j, knot, -1});

          std::vector<double> col_pos = EvalBasisColumn(cand_pos);
          std::vector<double> col_neg = EvalBasisColumn(cand_neg);

          cols_.push_back(std::move(col_pos));
          cols_.push_back(std::move(col_neg));
          auto solved = SolveFromMoments(cols_);
          std::vector<double> cn = std::move(cols_.back());
          cols_.pop_back();
          std::vector<double> cp = std::move(cols_.back());
          cols_.pop_back();

          if (!solved.ok()) continue;
          if (solved->ssr < best_ssr) {
            best_ssr = solved->ssr;
            best_pos = cand_pos;
            best_neg = cand_neg;
            best_col_pos = std::move(cp);
            best_col_neg = std::move(cn);
            found = true;
          }
        }
      }
    }

    if (!found) break;
    const double rel_gain =
        (current_ssr > 0.0) ? (current_ssr - best_ssr) / current_ssr : 0.0;
    bases_.push_back(std::move(best_pos));
    cols_.push_back(std::move(best_col_pos));
    bases_.push_back(std::move(best_neg));
    cols_.push_back(std::move(best_col_neg));
    current_ssr = best_ssr;
    if (rel_gain < config_.min_rel_improvement || current_ssr <= 1e-14 * utu_) break;
  }
  return util::Status::OK();
}

util::Status MarsFitter::BackwardPass(MarsModel* out) {
  // Sequence of nested models; keep the one with the best GCV.
  std::vector<BasisFunction> work_bases = bases_;
  std::vector<std::vector<double>> work_cols = cols_;

  QREG_ASSIGN_OR_RETURN(SolvedModel solved, SolveFromMoments(work_cols));
  double best_gcv = Gcv(solved.ssr, static_cast<int64_t>(rows_.size()),
                        EffectiveParams(work_bases, config_.gcv_penalty));
  std::vector<BasisFunction> best_bases = work_bases;
  std::vector<double> best_beta = solved.beta;
  double best_ssr = solved.ssr;

  while (work_bases.size() > 1) {
    double level_best_gcv = std::numeric_limits<double>::infinity();
    size_t level_best_idx = 0;
    SolvedModel level_best_solved;

    for (size_t drop = 1; drop < work_bases.size(); ++drop) {  // Keep intercept.
      std::vector<std::vector<double>> cols;
      std::vector<BasisFunction> bases;
      cols.reserve(work_cols.size() - 1);
      bases.reserve(work_bases.size() - 1);
      for (size_t i = 0; i < work_bases.size(); ++i) {
        if (i == drop) continue;
        cols.push_back(work_cols[i]);
        bases.push_back(work_bases[i]);
      }
      auto s = SolveFromMoments(cols);
      if (!s.ok()) continue;
      const double g = Gcv(s->ssr, static_cast<int64_t>(rows_.size()),
                           EffectiveParams(bases, config_.gcv_penalty));
      if (g < level_best_gcv) {
        level_best_gcv = g;
        level_best_idx = drop;
        level_best_solved = std::move(*s);
      }
    }
    if (level_best_idx == 0) break;  // No removable term solved.

    work_bases.erase(work_bases.begin() + static_cast<long>(level_best_idx));
    work_cols.erase(work_cols.begin() + static_cast<long>(level_best_idx));
    if (level_best_gcv < best_gcv) {
      best_gcv = level_best_gcv;
      best_bases = work_bases;
      best_beta = level_best_solved.beta;
      best_ssr = level_best_solved.ssr;
    }
  }

  out->bases_ = std::move(best_bases);
  out->coeffs_ = std::move(best_beta);
  out->ssr_ = best_ssr;
  out->gcv_ = best_gcv;
  out->n_ = static_cast<int64_t>(rows_.size());
  out->d_ = x_.cols();
  const double mean = usum_ / static_cast<double>(rows_.size());
  out->tss_ =
      std::max(0.0, utu_ - static_cast<double>(rows_.size()) * mean * mean);
  return util::Status::OK();
}

util::Result<MarsModel> MarsFitter::Fit() {
  QREG_RETURN_NOT_OK(config_.Validate());
  if (x_.rows() < 2) {
    return util::Status::InvalidArgument("MARS needs at least 2 rows");
  }
  if (u_.size() != x_.rows()) {
    return util::Status::InvalidArgument("|u| != rows(x)");
  }
  Subsample();
  BuildKnotCandidates();
  QREG_RETURN_NOT_OK(ForwardPass());
  MarsModel model;
  QREG_RETURN_NOT_OK(BackwardPass(&model));
  return model;
}

util::Result<MarsModel> FitMars(const linalg::Matrix& x,
                                const std::vector<double>& u,
                                const MarsConfig& config) {
  MarsFitter fitter(x, u, config);
  return fitter.Fit();
}

util::Result<MarsModel> FitMars(const std::vector<std::vector<double>>& rows,
                                const std::vector<double>& u,
                                const MarsConfig& config) {
  return FitMars(linalg::Matrix::FromRows(rows), u, config);
}

}  // namespace plr
}  // namespace qreg
