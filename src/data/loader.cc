#include "data/loader.h"

#include <cstdlib>

#include "util/csv.h"
#include "util/string_util.h"

namespace qreg {
namespace data {

namespace {

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

/// Resolves the effective feature/output column indexes for a row width.
util::Status ResolveColumns(const CsvLoadOptions& options, size_t width,
                            std::vector<int32_t>* features, int32_t* output) {
  *output = options.output_column >= 0 ? options.output_column
                                       : static_cast<int32_t>(width) - 1;
  if (*output < 0 || *output >= static_cast<int32_t>(width)) {
    return util::Status::InvalidArgument(
        util::Format("output column %d out of range (width %zu)", *output, width));
  }
  features->clear();
  if (!options.feature_columns.empty()) {
    for (int32_t c : options.feature_columns) {
      if (c < 0 || c >= static_cast<int32_t>(width)) {
        return util::Status::InvalidArgument(
            util::Format("feature column %d out of range (width %zu)", c, width));
      }
      if (c == *output) {
        return util::Status::InvalidArgument(
            "output column listed among feature columns");
      }
      features->push_back(c);
    }
  } else {
    for (int32_t c = 0; c < static_cast<int32_t>(width); ++c) {
      if (c != *output) features->push_back(c);
    }
  }
  if (features->empty()) {
    return util::Status::InvalidArgument("no feature columns");
  }
  return util::Status::OK();
}

}  // namespace

util::Status LoadTableFromCsv(const std::string& path, const CsvLoadOptions& options,
                              storage::Table* table, CsvLoadReport* report) {
  if (table == nullptr) return util::Status::InvalidArgument("null table");
  if (table->num_rows() != 0) {
    return util::Status::FailedPrecondition("target table is not empty");
  }
  util::CsvReader reader;
  QREG_RETURN_NOT_OK(reader.Open(path));

  std::vector<std::string> fields;
  CsvLoadReport local_report;

  if (options.has_header) {
    if (!reader.ReadRow(&fields)) {
      return util::Status::InvalidArgument("empty CSV file: " + path);
    }
    local_report.column_names = fields;
  }

  std::vector<int32_t> features;
  int32_t output = -1;
  bool columns_resolved = false;
  std::vector<double> x;

  while (reader.ReadRow(&fields)) {
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (!columns_resolved) {
      QREG_RETURN_NOT_OK(ResolveColumns(options, fields.size(), &features, &output));
      if (features.size() != table->dimension()) {
        return util::Status::InvalidArgument(
            util::Format("CSV has %zu feature columns, table expects %zu",
                         features.size(), table->dimension()));
      }
      columns_resolved = true;
      x.resize(features.size());
    }
    if (fields.size() <= static_cast<size_t>(output)) {
      if (options.skip_bad_rows) {
        ++local_report.rows_skipped;
        continue;
      }
      return util::Status::InvalidArgument(
          util::Format("short row at line %lld",
                       static_cast<long long>(reader.line_number())));
    }
    bool ok = true;
    for (size_t j = 0; j < features.size() && ok; ++j) {
      ok = ParseDouble(fields[static_cast<size_t>(features[j])], &x[j]);
    }
    double u = 0.0;
    ok = ok && ParseDouble(fields[static_cast<size_t>(output)], &u);
    if (!ok) {
      if (options.skip_bad_rows) {
        ++local_report.rows_skipped;
        continue;
      }
      return util::Status::InvalidArgument(
          util::Format("unparsable numeric at line %lld",
                       static_cast<long long>(reader.line_number())));
    }
    table->AppendUnchecked(x.data(), u);
    ++local_report.rows_loaded;
  }
  if (report != nullptr) *report = std::move(local_report);
  return util::Status::OK();
}

util::Result<storage::Table> LoadCsv(const std::string& path,
                                     const CsvLoadOptions& options,
                                     CsvLoadReport* report) {
  // Peek the width to size the table.
  util::CsvReader reader;
  QREG_RETURN_NOT_OK(reader.Open(path));
  std::vector<std::string> fields;
  if (!reader.ReadRow(&fields)) {
    return util::Status::InvalidArgument("empty CSV file: " + path);
  }
  const size_t width = fields.size();
  std::vector<int32_t> features;
  int32_t output = -1;
  QREG_RETURN_NOT_OK(ResolveColumns(options, width, &features, &output));

  storage::Table table(features.size());
  QREG_RETURN_NOT_OK(LoadTableFromCsv(path, options, &table, report));
  return table;
}

util::Status SaveTableToCsv(const storage::Table& table, const std::string& path) {
  util::CsvWriter writer;
  QREG_RETURN_NOT_OK(writer.Open(path));
  std::vector<std::string> header = table.schema().feature_names;
  header.push_back(table.schema().output_name);
  QREG_RETURN_NOT_OK(writer.WriteRow(header));
  std::vector<double> row(table.dimension() + 1);
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    const double* x = table.x(i);
    for (size_t j = 0; j < table.dimension(); ++j) row[j] = x[j];
    row[table.dimension()] = table.u(i);
    QREG_RETURN_NOT_OK(writer.WriteNumericRow(row));
  }
  return writer.Close();
}

}  // namespace data
}  // namespace qreg
