#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/string_util.h"

namespace qreg {
namespace data {

double Dataset::GroundTruth(const std::vector<double>& x_scaled) const {
  std::vector<double> x_raw = x_scaled;
  if (scaling.features_scaled) {
    for (size_t j = 0; j < x_raw.size(); ++j) {
      x_raw[j] = scaling.x_min[j] + x_scaled[j] * (scaling.x_max[j] - scaling.x_min[j]);
    }
  }
  double u = function->Eval(x_raw.data());
  if (scaling.output_scaled) {
    const double range = scaling.u_max - scaling.u_min;
    u = range > 0.0 ? (u - scaling.u_min) / range : 0.0;
  }
  return u;
}

util::Result<Dataset> GenerateDataset(std::shared_ptr<const DataFunction> function,
                                      const DatasetConfig& config) {
  if (function == nullptr) {
    return util::Status::InvalidArgument("null data function");
  }
  if (config.n <= 0) {
    return util::Status::InvalidArgument("dataset size must be positive");
  }
  const size_t d = function->dimension();
  util::Rng rng(config.seed);

  Dataset ds(d);
  ds.function = function;
  ds.table.Reserve(config.n);

  const double lo = function->domain_lo();
  const double hi = function->domain_hi();

  std::vector<double> x(d);
  std::vector<double> us;
  us.reserve(static_cast<size_t>(config.n));
  std::vector<double> xs;
  xs.reserve(static_cast<size_t>(config.n) * d);

  double u_min = 0.0, u_max = 0.0;
  for (int64_t i = 0; i < config.n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double xj = rng.Uniform(lo, hi);
      if (config.feature_noise_stddev > 0.0) {
        xj = std::clamp(xj + rng.Gaussian(0.0, config.feature_noise_stddev), lo, hi);
      }
      x[j] = xj;
    }
    double u = function->Eval(x.data());
    if (config.noise_stddev > 0.0) u += rng.Gaussian(0.0, config.noise_stddev);
    if (i == 0) {
      u_min = u;
      u_max = u;
    } else {
      u_min = std::min(u_min, u);
      u_max = std::max(u_max, u);
    }
    xs.insert(xs.end(), x.begin(), x.end());
    us.push_back(u);
  }

  // Scaling.
  ds.scaling.features_scaled = config.scale_features_unit;
  ds.scaling.output_scaled = config.scale_output_unit;
  if (config.scale_features_unit) {
    ds.scaling.x_min.assign(d, lo);
    ds.scaling.x_max.assign(d, hi);
  }
  if (config.scale_output_unit) {
    ds.scaling.u_min = u_min;
    ds.scaling.u_max = u_max;
  }
  const double u_range = (u_max > u_min) ? (u_max - u_min) : 1.0;
  const double x_range = hi - lo;

  std::vector<double> row(d);
  for (int64_t i = 0; i < config.n; ++i) {
    const double* xp = &xs[static_cast<size_t>(i) * d];
    for (size_t j = 0; j < d; ++j) {
      row[j] = config.scale_features_unit ? (xp[j] - lo) / x_range : xp[j];
    }
    const double u = config.scale_output_unit
                         ? (us[static_cast<size_t>(i)] - u_min) / u_range
                         : us[static_cast<size_t>(i)];
    ds.table.AppendUnchecked(row.data(), u);
  }
  return ds;
}

util::Result<Dataset> MakeR1(size_t d, int64_t n, uint64_t seed) {
  DatasetConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  // Substantial observation noise (~7% of the output range after scaling):
  // the real dataset is an extended noisy sensor-array recording, and the
  // paper's per-subspace FVU comparisons presuppose that a meaningful share
  // of within-subspace variance is unexplainable by x.
  cfg.noise_stddev = 0.4;
  cfg.scale_features_unit = true;
  cfg.scale_output_unit = true;
  return GenerateDataset(std::make_shared<GasSensorFunction>(d), cfg);
}

util::Result<Dataset> MakeR2(size_t d, int64_t n, uint64_t seed) {
  DatasetConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.noise_stddev = 0.0;
  cfg.feature_noise_stddev = 1.0;  // "adding noise N(0,1) to each feature".
  cfg.scale_features_unit = false;
  cfg.scale_output_unit = true;    // Keeps RMSE on the paper's ~1e-2 scale.
  return GenerateDataset(std::make_shared<RosenbrockFunction>(d), cfg);
}

}  // namespace data
}  // namespace qreg
