#include "data/functions.h"

#include <cmath>

#include "util/rng.h"

namespace qreg {
namespace data {

double RosenbrockFunction::Eval(const double* x) const {
  double s = 0.0;
  for (size_t i = 0; i + 1 < d_; ++i) {
    const double a = x[i + 1] - x[i] * x[i];
    const double b = 1.0 - x[i];
    s += 100.0 * a * a + b * b;
  }
  return s;
}

GasSensorFunction::GasSensorFunction(size_t d, uint64_t seed) : d_(d) {
  // Deterministic per-channel response parameters drawn once from the seed;
  // ranges chosen so every term contributes at the same order of magnitude.
  util::Rng rng(seed);
  amp_.resize(d_);
  km_.resize(d_);
  decay_.resize(d_);
  phase_.resize(d_);
  for (size_t j = 0; j < d_; ++j) {
    amp_[j] = rng.Uniform(0.5, 2.0);
    km_[j] = rng.Uniform(0.05, 0.4);
    decay_[j] = rng.Uniform(1.0, 4.0);
    phase_[j] = rng.Uniform(0.0, 2.0 * M_PI);
  }
}

double GasSensorFunction::Eval(const double* x) const {
  // Saturating single-channel responses.
  double s = 0.0;
  for (size_t j = 0; j < d_; ++j) {
    s += amp_[j] * x[j] / (km_[j] + x[j]);
  }
  // Exponential quenching by the *previous* channel (cross-sensitivity).
  for (size_t j = 0; j + 1 < d_; ++j) {
    s -= 0.6 * amp_[j] * x[j + 1] * std::exp(-decay_[j] * x[j]);
  }
  // Pairwise interference between adjacent channels.
  for (size_t j = 0; j + 1 < d_; ++j) {
    s += 0.8 * std::sin(2.0 * M_PI * x[j] * x[j + 1] + phase_[j]);
  }
  return s;
}

double Curve1DFunction::Eval(const double* x) const {
  const double t = x[0];
  const double sigmoid = 1.0 / (1.0 + std::exp(-12.0 * (t - 0.5)));
  return 0.1 + 0.7 * sigmoid + 0.12 * std::sin(3.0 * M_PI * t);
}

double Friedman1Function::Eval(const double* x) const {
  return 10.0 * std::sin(M_PI * x[0] * x[1]) + 20.0 * (x[2] - 0.5) * (x[2] - 0.5) +
         10.0 * x[3] + 5.0 * x[4];
}

std::unique_ptr<DataFunction> MakeFunction(const std::string& name, size_t d) {
  if (name == "rosenbrock") return std::make_unique<RosenbrockFunction>(d);
  if (name == "gas_sensor") return std::make_unique<GasSensorFunction>(d);
  if (name == "saddle_demo") return std::make_unique<SaddleDemoFunction>();
  if (name == "curve1d") return std::make_unique<Curve1DFunction>();
  if (name == "friedman1") return std::make_unique<Friedman1Function>(d);
  return nullptr;
}

}  // namespace data
}  // namespace qreg
