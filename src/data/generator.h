// Dataset synthesis: samples a DataFunction over its domain, adds Gaussian
// observation noise, and (optionally) min-max scales features/output to
// [0,1] as the paper does for R1 ("all real-valued vectors are scaled in
// [0,1]").

#ifndef QREG_DATA_GENERATOR_H_
#define QREG_DATA_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "data/functions.h"
#include "storage/table.h"
#include "util/status.h"

namespace qreg {
namespace data {

/// \brief Synthesis parameters.
struct DatasetConfig {
  int64_t n = 100000;          ///< Rows to generate.
  double noise_stddev = 0.0;   ///< Gaussian noise added to u.
  double feature_noise_stddev = 0.0;  ///< Gaussian noise added to each x_j.
  bool scale_features_unit = false;   ///< Min-max scale x to [0,1]^d.
  bool scale_output_unit = true;      ///< Min-max scale u to [0,1].
  uint64_t seed = 42;
};

/// \brief Description of the applied scaling, to map queries between the raw
/// and scaled coordinate systems.
struct ScalingInfo {
  std::vector<double> x_min, x_max;  ///< Empty when features not scaled.
  double u_min = 0.0, u_max = 1.0;   ///< Identity when output not scaled.
  bool features_scaled = false;
  bool output_scaled = false;
};

/// \brief A generated dataset plus its ground-truth function and scaling.
struct Dataset {
  storage::Table table;
  ScalingInfo scaling;
  std::shared_ptr<const DataFunction> function;

  explicit Dataset(size_t d) : table(d) {}

  /// Evaluates the ground-truth function at a *scaled* point (undoing the
  /// feature scaling, applying the output scaling). Noise-free.
  double GroundTruth(const std::vector<double>& x_scaled) const;
};

/// \brief Samples `config.n` uniform points from the function's domain.
util::Result<Dataset> GenerateDataset(std::shared_ptr<const DataFunction> function,
                                      const DatasetConfig& config);

/// \brief The paper's R1 stand-in: gas-sensor-like surface, d features,
/// everything scaled to [0,1], u-noise σ=0.01 of the output range.
util::Result<Dataset> MakeR1(size_t d, int64_t n, uint64_t seed);

/// \brief The paper's R2: Rosenbrock on [-10,10]^d with unit-scaled output
/// and N(0,1)-noised features (Section VI-A), output noise from the same
/// spec.
util::Result<Dataset> MakeR2(size_t d, int64_t n, uint64_t seed);

}  // namespace data
}  // namespace qreg

#endif  // QREG_DATA_GENERATOR_H_
