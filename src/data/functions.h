// Data functions u = g(x) used to synthesize evaluation datasets.
//
//  - RosenbrockFunction: the paper's R2 benchmark function (Section VI-A).
//  - GasSensorFunction: our substitute for the paper's real dataset R1
//    (a gas-sensor-array calibration set [18] that is not redistributable):
//    a fixed, strongly non-linear 6-attribute response surface whose global
//    linear fit leaves FVU >> 1, matching the property the paper relies on.
//  - Demo functions used by the paper's figures (Fig. 4's x1(x2+1), a 1-D
//    curve for Fig. 5) and the classic Friedman-1 MARS test function.

#ifndef QREG_DATA_FUNCTIONS_H_
#define QREG_DATA_FUNCTIONS_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace qreg {
namespace data {

/// \brief A deterministic scalar field over a hyper-rectangular domain.
class DataFunction {
 public:
  virtual ~DataFunction() = default;

  virtual double Eval(const double* x) const = 0;
  virtual size_t dimension() const = 0;

  /// Per-dimension domain bounds (uniform across dimensions).
  virtual double domain_lo() const = 0;
  virtual double domain_hi() const = 0;

  virtual std::string name() const = 0;

  double Eval(const std::vector<double>& x) const { return Eval(x.data()); }
};

/// \brief Rosenbrock: Σ 100(x_{i+1} − x_i²)² + (1 − x_i)², |x_i| ≤ 10.
class RosenbrockFunction : public DataFunction {
 public:
  explicit RosenbrockFunction(size_t d) : d_(d) {}

  double Eval(const double* x) const override;
  size_t dimension() const override { return d_; }
  double domain_lo() const override { return -10.0; }
  double domain_hi() const override { return 10.0; }
  std::string name() const override { return "rosenbrock"; }

 private:
  size_t d_;
};

/// \brief Synthetic sensor-array response on [0,1]^d: saturating
/// Michaelis–Menten terms, exponential quenching, cross-sensitivity
/// interactions and a periodic drift — strongly non-linear everywhere.
class GasSensorFunction : public DataFunction {
 public:
  /// `seed` fixes the (deterministic) per-channel response coefficients.
  explicit GasSensorFunction(size_t d, uint64_t seed = 7);

  double Eval(const double* x) const override;
  size_t dimension() const override { return d_; }
  double domain_lo() const override { return 0.0; }
  double domain_hi() const override { return 1.0; }
  std::string name() const override { return "gas_sensor"; }

 private:
  size_t d_;
  std::vector<double> amp_;     // per-channel amplitude
  std::vector<double> km_;      // saturation constant
  std::vector<double> decay_;   // quenching rate
  std::vector<double> phase_;   // drift phase
};

/// \brief Fig. 4's example surface u = x1 (x2 + 1) on [-1.5, 1.5]^2.
class SaddleDemoFunction : public DataFunction {
 public:
  double Eval(const double* x) const override { return x[0] * (x[1] + 1.0); }
  size_t dimension() const override { return 2; }
  double domain_lo() const override { return -1.5; }
  double domain_hi() const override { return 1.5; }
  std::string name() const override { return "saddle_demo"; }
};

/// \brief 1-D S-curve with bumps on [0,1] (the Fig. 5 shape): a smooth
/// sigmoid trend with superposed oscillation, so a global line fits badly
/// but ~4-6 local lines fit well.
class Curve1DFunction : public DataFunction {
 public:
  double Eval(const double* x) const override;
  size_t dimension() const override { return 1; }
  double domain_lo() const override { return 0.0; }
  double domain_hi() const override { return 1.0; }
  std::string name() const override { return "curve1d"; }
};

/// \brief Friedman-1 (MARS benchmark): 10 sin(π x1 x2) + 20 (x3 − .5)² +
/// 10 x4 + 5 x5 on [0,1]^d (d ≥ 5; extra dimensions are inert noise inputs).
class Friedman1Function : public DataFunction {
 public:
  explicit Friedman1Function(size_t d = 5) : d_(d < 5 ? 5 : d) {}

  double Eval(const double* x) const override;
  size_t dimension() const override { return d_; }
  double domain_lo() const override { return 0.0; }
  double domain_hi() const override { return 1.0; }
  std::string name() const override { return "friedman1"; }

 private:
  size_t d_;
};

/// \brief Factory by name ("rosenbrock", "gas_sensor", "saddle_demo",
/// "curve1d", "friedman1"); returns nullptr for unknown names.
std::unique_ptr<DataFunction> MakeFunction(const std::string& name, size_t d);

}  // namespace data
}  // namespace qreg

#endif  // QREG_DATA_FUNCTIONS_H_
