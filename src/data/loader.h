// Loading external datasets into the storage engine ("bring your own
// relation"): CSV files with d feature columns and one output column, plus
// Table export for round-tripping.

#ifndef QREG_DATA_LOADER_H_
#define QREG_DATA_LOADER_H_

#include <string>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace qreg {
namespace data {

/// \brief CSV ingestion options.
struct CsvLoadOptions {
  bool has_header = true;
  /// 0-based column indexes of the features, in table order. Empty means
  /// "all columns except `output_column`", in file order.
  std::vector<int32_t> feature_columns;
  /// 0-based column of the output u; -1 means the last column.
  int32_t output_column = -1;
  /// Rows with unparsable numerics are skipped (counted) when true,
  /// otherwise loading fails on the first bad row.
  bool skip_bad_rows = false;
};

/// \brief Result of a CSV load.
struct CsvLoadReport {
  int64_t rows_loaded = 0;
  int64_t rows_skipped = 0;
  std::vector<std::string> column_names;  ///< Header names if present.
};

/// \brief Loads `path` into `table` (which must be empty and sized to the
/// feature count). `report` may be null.
util::Status LoadTableFromCsv(const std::string& path, const CsvLoadOptions& options,
                              storage::Table* table, CsvLoadReport* report);

/// \brief Convenience: infer dimensionality from the file and build the
/// table in one call.
util::Result<storage::Table> LoadCsv(const std::string& path,
                                     const CsvLoadOptions& options = CsvLoadOptions(),
                                     CsvLoadReport* report = nullptr);

/// \brief Writes a table to CSV (header: feature names + output name).
util::Status SaveTableToCsv(const storage::Table& table, const std::string& path);

}  // namespace data
}  // namespace qreg

#endif  // QREG_DATA_LOADER_H_
