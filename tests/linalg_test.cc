// Unit + property tests for src/linalg: vector ops, Matrix, Cholesky,
// Householder QR, and both OLS paths (streaming accumulator and batch QR).

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/ols.h"
#include "linalg/qr.h"
#include "linalg/vector_ops.h"
#include "util/rng.h"

namespace qreg {
namespace linalg {
namespace {

// ---------- vector_ops ----------

TEST(VectorOpsTest, DotAndNorms) {
  Vec a{1.0, 2.0, 3.0};
  Vec b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm2Squared(a), 14.0);
  EXPECT_DOUBLE_EQ(Norm2(a), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(Distance2Squared(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Distance2(a, b), std::sqrt(9.0 + 49.0 + 9.0));
}

TEST(VectorOpsTest, ArithmeticAndAxpy) {
  Vec a{1.0, 2.0};
  Vec b{3.0, 4.0};
  EXPECT_EQ(Add(a, b), (Vec{4.0, 6.0}));
  EXPECT_EQ(Sub(b, a), (Vec{2.0, 2.0}));
  EXPECT_EQ(Scale(a, 2.0), (Vec{2.0, 4.0}));
  Vec y{1.0, 1.0};
  AxPy(0.5, b, &y);
  EXPECT_EQ(y, (Vec{2.5, 3.0}));
}

TEST(VectorOpsTest, MeanVariance) {
  Vec v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VectorOpsTest, ElementwiseRange) {
  std::vector<Vec> vs{{1.0, 5.0}, {3.0, -1.0}, {2.0, 2.0}};
  Vec lo, hi;
  ElementwiseRange(vs, &lo, &hi);
  EXPECT_EQ(lo, (Vec{1.0, -1.0}));
  EXPECT_EQ(hi, (Vec{3.0, 5.0}));
}

// ---------- Matrix ----------

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, IdentityAndMatMul) {
  Matrix i3 = Matrix::Identity(3);
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 10}});
  EXPECT_DOUBLE_EQ(m.MatMul(i3).MaxAbsDiff(m), 0.0);
  EXPECT_DOUBLE_EQ(i3.MatMul(m).MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, MatMulKnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t.Transpose().MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, MatVecAndTransposeMatVec) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  auto y = m.MatVec({1.0, -1.0});
  EXPECT_EQ(y, (std::vector<double>{-1.0, -1.0, -1.0}));
  auto z = m.TransposeMatVec({1.0, 1.0, 1.0});
  EXPECT_EQ(z, (std::vector<double>{9.0, 12.0}));
}

TEST(MatrixTest, RowColAccessors) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1.0, 3.0}));
}

// ---------- Cholesky ----------

TEST(CholeskyTest, FactorsKnownSpdMatrix) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  // L L^T == A
  Matrix rec = l->MatMul(l->Transpose());
  EXPECT_LT(rec.MaxAbsDiff(a), 1e-12);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(CholeskyFactor(a).status().code(), util::StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_EQ(CholeskyFactor(a).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Matrix a = Matrix::FromRows({{4, 2, 0}, {2, 5, 1}, {0, 1, 3}});
  const std::vector<double> x_true{1.0, -2.0, 0.5};
  const std::vector<double> b = a.MatVec(x_true);
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-12);
}

TEST(CholeskyTest, RegularizedSolveHandlesSingular) {
  // Rank-1 matrix: plain Cholesky fails, regularized succeeds.
  Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  EXPECT_FALSE(CholeskySolve(a, {1.0, 1.0}).ok());
  auto x = CholeskySolveRegularized(a, {1.0, 1.0});
  ASSERT_TRUE(x.ok());
  // The regularized solution still nearly satisfies the (consistent) system.
  EXPECT_NEAR((*x)[0] + (*x)[1], 1.0, 1e-3);
}

TEST(CholeskyTest, RandomSpdRoundTrip) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(6));
    Matrix g(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) g(i, j) = rng.Gaussian();
    }
    // A = G G^T + I is SPD.
    Matrix a = g.MatMul(g.Transpose());
    for (size_t i = 0; i < n; ++i) a(i, i) += 1.0;
    std::vector<double> x_true(n);
    for (size_t i = 0; i < n; ++i) x_true[i] = rng.Gaussian();
    auto x = CholeskySolve(a, a.MatVec(x_true));
    ASSERT_TRUE(x.ok());
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-9);
  }
}

// ---------- QR ----------

TEST(QrTest, ExactSolveSquareSystem) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  const std::vector<double> x_true{3.0, -1.0};
  auto x = QrLeastSquares(a, a.MatVec(x_true));
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], -1.0, 1e-12);
}

TEST(QrTest, OverdeterminedLeastSquares) {
  // y = 2x + 1 with exact data: residual must be ~0.
  Matrix a = Matrix::FromRows({{1, 0}, {1, 1}, {1, 2}, {1, 3}});
  std::vector<double> b{1, 3, 5, 7};
  auto x = QrLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(QrTest, MinimizesResidualOnNoisyData) {
  util::Rng rng(31);
  const size_t n = 200;
  Matrix a(n, 3);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = rng.Uniform(-1, 1);
    a(i, 2) = rng.Uniform(-1, 1);
    b[i] = 0.5 - 2.0 * a(i, 1) + 0.25 * a(i, 2) + rng.Gaussian(0.0, 0.01);
  }
  auto x = QrLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 0.5, 0.01);
  EXPECT_NEAR((*x)[1], -2.0, 0.01);
  EXPECT_NEAR((*x)[2], 0.25, 0.01);
}

TEST(QrTest, RankDeficientMapsFreeCoordinatesToZero) {
  // Second column duplicates the first: one coefficient family; solver
  // should return a finite solution with the redundant coordinate zeroed.
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  std::vector<double> b{2, 4, 6};
  auto x = QrLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  const double pred = (*x)[0] + (*x)[1];  // effective slope on the shared column
  EXPECT_NEAR(pred, 2.0, 1e-9);
}

TEST(QrTest, UnderdeterminedRejected) {
  Matrix a(1, 3);
  EXPECT_FALSE(QrLeastSquares(a, {1.0}).ok());
}

TEST(QrTest, RhsSizeMismatchRejected) {
  Matrix a(3, 2);
  EXPECT_EQ(QrLeastSquares(a, {1.0}).status().code(),
            util::StatusCode::kInvalidArgument);
}

// ---------- OLS ----------

TEST(OlsTest, FitRecoversExactLinearModel) {
  util::Rng rng(41);
  const size_t n = 100, d = 3;
  Matrix x(n, d);
  std::vector<double> u(n);
  const std::vector<double> slope{1.5, -0.5, 2.0};
  const double intercept = 0.75;
  for (size_t i = 0; i < n; ++i) {
    double s = intercept;
    for (size_t j = 0; j < d; ++j) {
      x(i, j) = rng.Uniform(0, 1);
      s += slope[j] * x(i, j);
    }
    u[i] = s;
  }
  auto fit = FitOls(x, u);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->intercept, intercept, 1e-10);
  for (size_t j = 0; j < d; ++j) EXPECT_NEAR(fit->slope[j], slope[j], 1e-10);
  EXPECT_NEAR(fit->FVU(), 0.0, 1e-12);
  EXPECT_NEAR(fit->CoD(), 1.0, 1e-12);
}

TEST(OlsTest, AccumulatorMatchesBatchFit) {
  util::Rng rng(43);
  const size_t n = 500, d = 4;
  Matrix x(n, d);
  std::vector<double> u(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) x(i, j) = rng.Uniform(0, 1);
    u[i] = rng.Gaussian(0.0, 1.0) + 2.0 * x(i, 0) - x(i, 2);
  }
  auto batch = FitOls(x, u);
  ASSERT_TRUE(batch.ok());

  OlsAccumulator acc(d);
  for (size_t i = 0; i < n; ++i) acc.Add(x.RowPtr(i), u[i]);
  auto stream = acc.Solve();
  ASSERT_TRUE(stream.ok());

  EXPECT_NEAR(stream->intercept, batch->intercept, 1e-8);
  for (size_t j = 0; j < d; ++j) EXPECT_NEAR(stream->slope[j], batch->slope[j], 1e-8);
  EXPECT_NEAR(stream->ssr, batch->ssr, 1e-6 * (1.0 + batch->ssr));
  EXPECT_NEAR(stream->tss, batch->tss, 1e-6 * (1.0 + batch->tss));
}

TEST(OlsTest, MergeEqualsSinglePass) {
  util::Rng rng(47);
  const size_t d = 2;
  OlsAccumulator whole(d), part1(d), part2(d);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const double u = 1.0 + x[0] - 3.0 * x[1] + rng.Gaussian(0, 0.1);
    whole.Add(x, u);
    (i % 2 == 0 ? part1 : part2).Add(x, u);
  }
  ASSERT_TRUE(part1.Merge(part2).ok());
  auto a = whole.Solve();
  auto b = part1.Solve();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->intercept, b->intercept, 1e-10);
  EXPECT_NEAR(a->slope[0], b->slope[0], 1e-10);
  EXPECT_NEAR(a->ssr, b->ssr, 1e-8);
}

TEST(OlsTest, MergeDimensionMismatchRejected) {
  OlsAccumulator a(2), b(3);
  EXPECT_EQ(a.Merge(b).code(), util::StatusCode::kInvalidArgument);
}

TEST(OlsTest, EmptyAccumulatorFails) {
  OlsAccumulator acc(2);
  EXPECT_EQ(acc.Solve().status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(OlsTest, SinglePointDegenerateButFinite) {
  OlsAccumulator acc(2);
  acc.Add({0.5, 0.5}, 3.0);
  auto fit = acc.Solve();
  ASSERT_TRUE(fit.ok());
  // With one observation the fit should pass (approximately) through it.
  EXPECT_NEAR(fit->Predict({0.5, 0.5}), 3.0, 1e-3);
}

TEST(OlsTest, PredictUsesInterceptAndSlope) {
  OlsFit fit;
  fit.intercept = 1.0;
  fit.slope = {2.0, -1.0};
  EXPECT_DOUBLE_EQ(fit.Predict({1.0, 1.0}), 2.0);
}

TEST(OlsTest, FvuGreaterThanOneForBadFit) {
  // A constant-zero "fit" on data with non-zero mean has SSR > TSS.
  OlsFit fit;
  fit.ssr = 10.0;
  fit.tss = 4.0;
  EXPECT_GT(fit.FVU(), 1.0);
  EXPECT_LT(fit.CoD(), 0.0);
}

TEST(OlsTest, ResetClearsState) {
  OlsAccumulator acc(1);
  acc.Add({1.0}, 2.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0);
  EXPECT_FALSE(acc.Solve().ok());
}

// Parameterized property: the accumulator recovers planted linear models at
// several dimensions and sample sizes.
class OlsRecoveryTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OlsRecoveryTest, RecoversPlantedCoefficients) {
  const int d = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  util::Rng rng(1000 + static_cast<uint64_t>(d * 31 + n));
  std::vector<double> slope(static_cast<size_t>(d));
  for (auto& s : slope) s = rng.Uniform(-2, 2);
  const double intercept = rng.Uniform(-1, 1);

  OlsAccumulator acc(static_cast<size_t>(d));
  std::vector<double> x(static_cast<size_t>(d));
  for (int i = 0; i < n; ++i) {
    double u = intercept;
    for (int j = 0; j < d; ++j) {
      x[static_cast<size_t>(j)] = rng.Uniform(0, 1);
      u += slope[static_cast<size_t>(j)] * x[static_cast<size_t>(j)];
    }
    acc.Add(x, u);
  }
  auto fit = acc.Solve();
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->intercept, intercept, 1e-7);
  for (int j = 0; j < d; ++j) {
    EXPECT_NEAR(fit->slope[static_cast<size_t>(j)], slope[static_cast<size_t>(j)],
                1e-7);
  }
  EXPECT_NEAR(fit->CoD(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSizes, OlsRecoveryTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(50, 200, 1000)));

}  // namespace
}  // namespace linalg
}  // namespace qreg
