// Unit + property tests for src/plr: hinge bases and the MARS fitter (the
// PLR baseline).

#include <gtest/gtest.h>

#include <cmath>

#include "data/functions.h"
#include "linalg/ols.h"
#include "plr/mars.h"
#include "util/rng.h"

namespace qreg {
namespace plr {
namespace {

// ---------- Basis ----------

TEST(HingeTest, EvaluatesBothSigns) {
  HingeTerm pos{0, 0.5, +1};
  HingeTerm neg{0, 0.5, -1};
  const double lo[] = {0.2};
  const double hi[] = {0.8};
  EXPECT_DOUBLE_EQ(pos.Eval(lo), 0.0);
  EXPECT_NEAR(pos.Eval(hi), 0.3, 1e-15);
  EXPECT_NEAR(neg.Eval(lo), 0.3, 1e-15);
  EXPECT_DOUBLE_EQ(neg.Eval(hi), 0.0);
}

TEST(BasisTest, InterceptIsOne) {
  BasisFunction b;
  const double x[] = {123.0};
  EXPECT_DOUBLE_EQ(b.Eval(x), 1.0);
  EXPECT_TRUE(b.is_intercept());
}

TEST(BasisTest, ProductOfHinges) {
  BasisFunction b;
  b.terms.push_back({0, 0.0, +1});
  b.terms.push_back({1, 1.0, -1});
  const double x[] = {2.0, 0.25};
  EXPECT_DOUBLE_EQ(b.Eval(x), 2.0 * 0.75);
  const double y[] = {-1.0, 0.25};  // first hinge zero
  EXPECT_DOUBLE_EQ(b.Eval(y), 0.0);
}

TEST(BasisTest, UsesDim) {
  BasisFunction b;
  b.terms.push_back({2, 0.5, +1});
  EXPECT_TRUE(b.UsesDim(2));
  EXPECT_FALSE(b.UsesDim(0));
}

TEST(BasisTest, ToStringReadable) {
  BasisFunction b;
  b.terms.push_back({0, 0.5, +1});
  const std::string s = b.ToString({"x1"});
  EXPECT_NE(s.find("max(0, x1 - 0.5)"), std::string::npos);
  BasisFunction intercept;
  EXPECT_EQ(intercept.ToString({}), "1");
}

// ---------- MARS config ----------

TEST(MarsConfigTest, Validation) {
  MarsConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.max_terms = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = MarsConfig();
  c.gcv_penalty = -1;
  EXPECT_FALSE(c.Validate().ok());
  c = MarsConfig();
  c.max_knots_per_dim = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(MarsTest, RejectsDegenerateInput) {
  linalg::Matrix x(1, 1);
  EXPECT_FALSE(FitMars(x, {1.0}).ok());
  linalg::Matrix x2(5, 1);
  EXPECT_FALSE(FitMars(x2, {1.0, 2.0}).ok());  // size mismatch
}

// ---------- MARS fitting behaviour ----------

TEST(MarsTest, LinearDataFitsExactly) {
  // MARS must reproduce a purely linear trend (a single pair of hinges on
  // any knot reconstructs a line).
  util::Rng rng(3);
  const size_t n = 400;
  std::vector<std::vector<double>> rows;
  std::vector<double> u;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1);
    rows.push_back({x});
    u.push_back(2.0 - 3.0 * x);
  }
  auto model = FitMars(rows, u);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->Fvu(), 1e-6);
  for (double x : {0.1, 0.33, 0.77}) {
    EXPECT_NEAR(model->Predict({x}), 2.0 - 3.0 * x, 1e-4);
  }
}

TEST(MarsTest, RecoversSingleKneePiecewiseLine) {
  // u = |x - 0.5| has one knee; MARS should drive FVU to ~0 with few terms.
  util::Rng rng(5);
  std::vector<std::vector<double>> rows;
  std::vector<double> u;
  for (int i = 0; i < 600; ++i) {
    const double x = rng.Uniform(0, 1);
    rows.push_back({x});
    u.push_back(std::fabs(x - 0.5));
  }
  auto model = FitMars(rows, u);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->Fvu(), 0.01);
  EXPECT_NEAR(model->Predict({0.1}), 0.4, 0.03);
  EXPECT_NEAR(model->Predict({0.9}), 0.4, 0.03);
  EXPECT_NEAR(model->Predict({0.5}), 0.0, 0.03);
}

TEST(MarsTest, PredictionIsContinuousAcrossKnots) {
  util::Rng rng(7);
  std::vector<std::vector<double>> rows;
  std::vector<double> u;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0, 1);
    rows.push_back({x});
    u.push_back(std::sin(3.0 * x));
  }
  auto model = FitMars(rows, u);
  ASSERT_TRUE(model.ok());
  // Hinge models are continuous: left/right limits agree at every knot.
  for (const BasisFunction& b : model->bases()) {
    for (const HingeTerm& t : b.terms) {
      const double eps = 1e-9;
      const double left = model->Predict({t.knot - eps});
      const double right = model->Predict({t.knot + eps});
      EXPECT_NEAR(left, right, 1e-6);
    }
  }
}

TEST(MarsTest, BeatsGlobalOlsOnNonlinearData) {
  // Friedman-1: the canonical MARS benchmark. Additive MARS must explain
  // far more variance than a global linear fit.
  data::Friedman1Function f(5);
  util::Rng rng(11);
  const size_t n = 1500;
  linalg::Matrix x(n, 5);
  std::vector<double> u(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(5);
    for (size_t j = 0; j < 5; ++j) {
      row[j] = rng.Uniform(0, 1);
      x(i, j) = row[j];
    }
    u[i] = f.Eval(row.data());
  }
  auto ols = linalg::FitOls(x, u);
  ASSERT_TRUE(ols.ok());
  MarsConfig cfg;
  cfg.max_terms = 21;
  auto mars = FitMars(x, u, cfg);
  ASSERT_TRUE(mars.ok());
  EXPECT_LT(mars->Fvu(), 0.5 * ols->FVU());
  EXPECT_LT(mars->Fvu(), 0.15);
}

TEST(MarsTest, MaxTermsRespected) {
  util::Rng rng(13);
  std::vector<std::vector<double>> rows;
  std::vector<double> u;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(0, 1);
    rows.push_back({x});
    u.push_back(std::sin(8.0 * x));
  }
  MarsConfig cfg;
  cfg.max_terms = 5;
  auto model = FitMars(rows, u, cfg);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->num_terms(), 5);
}

TEST(MarsTest, AdditiveModeKeepsInteractionOrderOne)
{
  util::Rng rng(17);
  std::vector<std::vector<double>> rows;
  std::vector<double> u;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    u.push_back(x[0] * x[1]);  // pure interaction
    rows.push_back(std::move(x));
  }
  MarsConfig cfg;
  cfg.max_interaction = 1;
  auto model = FitMars(rows, u, cfg);
  ASSERT_TRUE(model.ok());
  for (const BasisFunction& b : model->bases()) {
    EXPECT_LE(b.interaction_order(), 1u);
  }
}

TEST(MarsTest, InteractionModeCapturesProducts) {
  util::Rng rng(19);
  std::vector<std::vector<double>> rows;
  std::vector<double> u;
  for (int i = 0; i < 800; ++i) {
    std::vector<double> x{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    u.push_back(4.0 * x[0] * x[1]);
    rows.push_back(std::move(x));
  }
  MarsConfig additive;
  additive.max_interaction = 1;
  MarsConfig inter;
  inter.max_interaction = 2;
  auto m1 = FitMars(rows, u, additive);
  auto m2 = FitMars(rows, u, inter);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_LT(m2->Fvu(), m1->Fvu());
  bool has_product = false;
  for (const BasisFunction& b : m2->bases()) {
    has_product |= b.interaction_order() == 2u;
  }
  EXPECT_TRUE(has_product);
}

TEST(MarsTest, SubsampleCapRespected) {
  util::Rng rng(23);
  std::vector<std::vector<double>> rows;
  std::vector<double> u;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.Uniform(0, 1);
    rows.push_back({x});
    u.push_back(x * x);
  }
  MarsConfig cfg;
  cfg.max_fit_rows = 500;
  auto model = FitMars(rows, u, cfg);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->fit_rows(), 500);
  EXPECT_LT(model->Fvu(), 0.01);  // subsample is plenty for x^2
}

TEST(MarsTest, GcvPenaltyControlsModelSize) {
  // Heavier penalty must never give a larger model.
  util::Rng rng(29);
  std::vector<std::vector<double>> rows;
  std::vector<double> u;
  for (int i = 0; i < 600; ++i) {
    const double x = rng.Uniform(0, 1);
    rows.push_back({x});
    u.push_back(std::sin(6.0 * x) + rng.Gaussian(0, 0.05));
  }
  MarsConfig light;
  light.gcv_penalty = 0.0;
  MarsConfig heavy;
  heavy.gcv_penalty = 20.0;
  auto ml = FitMars(rows, u, light);
  auto mh = FitMars(rows, u, heavy);
  ASSERT_TRUE(ml.ok());
  ASSERT_TRUE(mh.ok());
  EXPECT_LE(mh->num_terms(), ml->num_terms());
}

// Parameterized sweep: MARS FVU is low across several 1-D target shapes.
class MarsShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(MarsShapeTest, LowFvuOnSmoothTargets) {
  const int shape = GetParam();
  auto target = [shape](double x) {
    switch (shape) {
      case 0:
        return std::sin(4.0 * x);
      case 1:
        return std::exp(-3.0 * x);
      case 2:
        return std::fabs(x - 0.3) + 0.5 * std::fabs(x - 0.7);
      default:
        return x * x * x;
    }
  };
  util::Rng rng(100 + static_cast<uint64_t>(shape));
  std::vector<std::vector<double>> rows;
  std::vector<double> u;
  for (int i = 0; i < 800; ++i) {
    const double x = rng.Uniform(0, 1);
    rows.push_back({x});
    u.push_back(target(x));
  }
  auto model = FitMars(rows, u);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->Fvu(), 0.02) << "shape " << shape;
}

INSTANTIATE_TEST_SUITE_P(Shapes, MarsShapeTest, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace plr
}  // namespace qreg
