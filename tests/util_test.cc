// Unit tests for src/util: Status/Result, Rng, string utilities, CSV,
// TablePrinter, env knobs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace qreg {
namespace util {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dimension");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dimension");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad dimension");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 12; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, IsRetryableClassifiesTransientFailuresOnly) {
  // The one shared answer to "is re-issuing this request safe and useful?"
  // — the wire client's retry layer and the server's shed/goodbye paths
  // must agree on it, so it lives here, next to the codes themselves.
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));        // Going away.
  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));  // Shed.
  EXPECT_TRUE(IsRetryable(StatusCode::kIoError));            // Transport.

  // A retry cannot fix a bad request, and must never grant an expired
  // deadline (or an explicit cancel) a second life.
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kOutOfRange));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryable(StatusCode::kAlreadyExists));
  EXPECT_FALSE(IsRetryable(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotImplemented));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryable(StatusCode::kCancelled));
}

TEST(StatusTest, UnavailableFactoryCarriesCode) {
  const Status s = Status::Unavailable("going away");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "going away");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailingOp() { return Status::IoError("disk"); }

Status UsesReturnNotOk() {
  QREG_RETURN_NOT_OK(FailingOp());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kIoError);
}

Result<int> GivesSeven() { return 7; }

Result<int> UsesAssignOrReturn() {
  QREG_ASSIGN_OR_RETURN(int v, GivesSeven());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto r = UsesAssignOrReturn();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 8);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    counts[static_cast<size_t>(v)]++;
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, DeriveSeedsDistinct) {
  auto seeds = DeriveSeeds(42, 16);
  ASSERT_EQ(seeds.size(), 16u);
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (size_t j = i + 1; j < seeds.size(); ++j) EXPECT_NE(seeds[i], seeds[j]);
  }
}

// ---------- string_util ----------

TEST(StringUtilTest, FormatBasics) {
  EXPECT_EQ(Format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(Format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(Format("empty"), "empty");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(StartsWith("x", ""));
}

// ---------- CSV ----------

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::EscapeField("plain"), "plain");
  EXPECT_EQ(CsvWriter::EscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::EscapeField("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WritesRowsToFile) {
  const std::string path = testing::TempDir() + "/qreg_csv_test.csv";
  CsvWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.WriteRow({"a", "b,c"}).ok());
  ASSERT_TRUE(w.WriteNumericRow({1.5, 2.25}).ok());
  ASSERT_TRUE(w.Close().ok());

  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\"");
  EXPECT_EQ(line2, "1.5,2.25");
}

TEST(CsvTest, WriteWithoutOpenFails) {
  CsvWriter w;
  EXPECT_EQ(w.WriteRow({"x"}).code(), StatusCode::kFailedPrecondition);
}

TEST(CsvTest, OpenInvalidPathFails) {
  CsvWriter w;
  EXPECT_EQ(w.Open("/nonexistent_dir_qreg/x.csv").code(), StatusCode::kIoError);
}

// ---------- TablePrinter ----------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header columns are aligned: "value" appears at the same offset in both
  // data rows' columns.
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter t({"x"});
  t.AddNumericRow({0.123456789}, 3);
  EXPECT_EQ(t.rows()[0][0], "0.123");
}

// ---------- env ----------

TEST(EnvTest, Int64ParseAndDefault) {
  ::setenv("QREG_TEST_INT", "123", 1);
  EXPECT_EQ(GetEnvInt64("QREG_TEST_INT", 5), 123);
  ::unsetenv("QREG_TEST_INT");
  EXPECT_EQ(GetEnvInt64("QREG_TEST_INT", 5), 5);
  ::setenv("QREG_TEST_INT", "garbage", 1);
  EXPECT_EQ(GetEnvInt64("QREG_TEST_INT", 5), 5);
  ::unsetenv("QREG_TEST_INT");
}

TEST(EnvTest, DoubleParseAndDefault) {
  ::setenv("QREG_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("QREG_TEST_DBL", 1.0), 2.5);
  ::unsetenv("QREG_TEST_DBL");
  EXPECT_DOUBLE_EQ(GetEnvDouble("QREG_TEST_DBL", 1.0), 1.0);
}

TEST(EnvTest, BoolTruthyValues) {
  ::setenv("QREG_TEST_BOOL", "1", 1);
  EXPECT_TRUE(GetEnvBool("QREG_TEST_BOOL", false));
  ::setenv("QREG_TEST_BOOL", "true", 1);
  EXPECT_TRUE(GetEnvBool("QREG_TEST_BOOL", false));
  ::setenv("QREG_TEST_BOOL", "0", 1);
  EXPECT_FALSE(GetEnvBool("QREG_TEST_BOOL", true));
  ::unsetenv("QREG_TEST_BOOL");
  EXPECT_TRUE(GetEnvBool("QREG_TEST_BOOL", true));
}

// ---------- timer ----------

TEST(TimerTest, StopwatchMeasuresNonNegative) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.ElapsedNanos(), 0);
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

TEST(TimerTest, AccumulatorAveragesCorrectly) {
  TimeAccumulator acc;
  acc.Add(1000000);  // 1 ms
  acc.Add(3000000);  // 3 ms
  EXPECT_EQ(acc.count(), 2);
  EXPECT_DOUBLE_EQ(acc.MeanMillis(), 2.0);
  EXPECT_DOUBLE_EQ(acc.TotalMillis(), 4.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0);
}

// ---------- logging ----------

TEST(LoggingTest, LevelFilteringIsMonotonic) {
  const LogLevel prev = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  // Nothing to assert on stderr output here; exercise the path.
  QREG_LOG_INFO << "suppressed";
  QREG_LOG_ERROR << "emitted";
  SetMinLogLevel(prev);
  SUCCEED();
}

}  // namespace
}  // namespace util
}  // namespace qreg
