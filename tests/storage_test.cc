// Unit + property tests for src/storage: Table, LpNorm, ScanIndex, KdTree.
// The key property: the k-d tree returns exactly the same row sets as the
// brute-force scan for random workloads across dimensions and norms.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "storage/kdtree.h"
#include "storage/lp_norm.h"
#include "storage/scan_index.h"
#include "storage/table.h"
#include "util/rng.h"

namespace qreg {
namespace storage {
namespace {

Table MakeRandomTable(size_t d, int64_t n, uint64_t seed, double lo = 0.0,
                      double hi = 1.0) {
  util::Rng rng(seed);
  Table t(d);
  t.Reserve(n);
  std::vector<double> x(d);
  for (int64_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) x[j] = rng.Uniform(lo, hi);
    t.AppendUnchecked(x.data(), rng.Uniform(-1, 1));
  }
  return t;
}

// ---------- Schema / Table ----------

TEST(SchemaTest, DefaultNames) {
  Schema s = Schema::Default(3);
  ASSERT_EQ(s.dimension(), 3u);
  EXPECT_EQ(s.feature_names[0], "x1");
  EXPECT_EQ(s.feature_names[2], "x3");
  EXPECT_EQ(s.output_name, "u");
}

TEST(TableTest, AppendAndAccess) {
  Table t(2);
  ASSERT_TRUE(t.Append({0.1, 0.2}, 5.0).ok());
  ASSERT_TRUE(t.Append({0.3, 0.4}, 6.0).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_DOUBLE_EQ(t.x(1)[0], 0.3);
  EXPECT_DOUBLE_EQ(t.u(0), 5.0);
  EXPECT_EQ(t.XRow(1), (std::vector<double>{0.3, 0.4}));
}

TEST(TableTest, AppendWrongDimensionRejected) {
  Table t(2);
  EXPECT_EQ(t.Append({0.1}, 5.0).code(), util::StatusCode::kInvalidArgument);
}

TEST(TableTest, FeatureRanges) {
  Table t(2);
  ASSERT_TRUE(t.Append({0.0, 5.0}, 0).ok());
  ASSERT_TRUE(t.Append({2.0, -1.0}, 0).ok());
  std::vector<double> lo, hi;
  t.FeatureRanges(&lo, &hi);
  EXPECT_EQ(lo, (std::vector<double>{0.0, -1.0}));
  EXPECT_EQ(hi, (std::vector<double>{2.0, 5.0}));
}

TEST(TableTest, EmptyTableRangesEmpty) {
  Table t(3);
  std::vector<double> lo, hi;
  t.FeatureRanges(&lo, &hi);
  EXPECT_TRUE(lo.empty());
  EXPECT_TRUE(hi.empty());
}

TEST(TableTest, MemoryBytesGrows) {
  Table t(4);
  const int64_t before = t.MemoryBytes();
  for (int i = 0; i < 1000; ++i) t.AppendUnchecked(std::vector<double>(4, 0.5).data(), 1.0);
  EXPECT_GT(t.MemoryBytes(), before);
}

TEST(TableTest, MemoryBytesBreakdown) {
  Table t(3);
  // An empty table still holds its schema strings.
  EXPECT_EQ(t.FeatureBytes(), 0);
  EXPECT_EQ(t.OutputBytes(), 0);
  EXPECT_GT(t.SchemaBytes(), 0);
  EXPECT_EQ(t.MemoryBytes(), t.SchemaBytes());

  for (int i = 0; i < 500; ++i) {
    t.AppendUnchecked(std::vector<double>(3, 0.5).data(), 1.0);
  }
  // Features dominate the output column d:1, both are capacity-accounted,
  // and the total is exactly the sum of the parts.
  EXPECT_GE(t.FeatureBytes(), t.num_rows() * 3 * static_cast<int64_t>(sizeof(double)));
  EXPECT_GE(t.OutputBytes(), t.num_rows() * static_cast<int64_t>(sizeof(double)));
  EXPECT_EQ(t.MemoryBytes(), t.FeatureBytes() + t.OutputBytes() + t.SchemaBytes());
}

TEST(TableTest, SchemaBytesCountsLongNames) {
  Schema small = Schema::Default(2);
  Table t_small(small);

  Schema big;
  big.feature_names = {
      std::string(200, 'a'),
      std::string(200, 'b'),
  };
  big.output_name = std::string(300, 'u');
  Table t_big(big);
  // Heap-allocated long names must show up in the accounting.
  EXPECT_GT(t_big.SchemaBytes(), t_small.SchemaBytes() + 500);

  // A name just past the SSO capacity heap-allocates and must be counted
  // too (the band a sizeof-based threshold would miss).
  const size_t sso = std::string().capacity();
  Schema mid;
  mid.feature_names = {std::string(sso + 1, 'm')};
  Table t_mid(mid);
  Schema inline_only;
  inline_only.feature_names = {std::string(1, 'i')};
  Table t_inline(inline_only);
  EXPECT_GT(t_mid.SchemaBytes(), t_inline.SchemaBytes());
}

// ---------- LpNorm ----------

TEST(LpNormTest, L2Distance) {
  const double a[] = {0.0, 0.0};
  const double b[] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(LpNorm::L2().Distance(a, b, 2), 5.0);
  EXPECT_TRUE(LpNorm::L2().Within(a, b, 2, 5.0));
  EXPECT_FALSE(LpNorm::L2().Within(a, b, 2, 4.999));
}

TEST(LpNormTest, L1Distance) {
  const double a[] = {0.0, 0.0};
  const double b[] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(LpNorm::L1().Distance(a, b, 2), 7.0);
}

TEST(LpNormTest, LInfDistance) {
  const double a[] = {0.0, 0.0};
  const double b[] = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(LpNorm::LInf().Distance(a, b, 2), 4.0);
  EXPECT_TRUE(LpNorm::LInf().Within(a, b, 2, 4.0));
}

TEST(LpNormTest, GeneralPBetweenL1AndLInf) {
  const double a[] = {0.0, 0.0, 0.0};
  const double b[] = {1.0, 1.0, 1.0};
  const double d1 = LpNorm::L1().Distance(a, b, 3);
  const double d3 = LpNorm(3.0).Distance(a, b, 3);
  const double dinf = LpNorm::LInf().Distance(a, b, 3);
  EXPECT_GT(d1, d3);
  EXPECT_GT(d3, dinf);
  EXPECT_NEAR(d3, std::pow(3.0, 1.0 / 3.0), 1e-12);
}

TEST(LpNormTest, KindResolvedOnceAtConstruction) {
  EXPECT_EQ(LpNorm::L1().kind(), LpKind::kL1);
  EXPECT_EQ(LpNorm::L2().kind(), LpKind::kL2);
  EXPECT_EQ(LpNorm::LInf().kind(), LpKind::kLInf);
  EXPECT_EQ(LpNorm(3.0).kind(), LpKind::kGeneric);
}

TEST(LpNormTest, Distance2IsSquaredEuclidean) {
  const double a[] = {0.0, 0.0};
  const double b[] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(LpNorm::L2().Distance2(a, b, 2), 25.0);
  // Distance2 is the L2 helper regardless of the norm's own p: callers use
  // it to compare a Euclidean distance against a radius without the sqrt.
  EXPECT_DOUBLE_EQ(LpNorm::L1().Distance2(a, b, 2), 25.0);
  // Radius comparison without the root agrees with Within on both sides of
  // the boundary.
  EXPECT_TRUE(LpNorm::L2().Distance2(a, b, 2) <= 5.0 * 5.0);
  EXPECT_FALSE(LpNorm::L2().Distance2(a, b, 2) <= 4.999 * 4.999);
}

TEST(LpNormTest, MinDistanceToBoxInsideIsZero) {
  const double q[] = {0.5, 0.5};
  const double lo[] = {0.0, 0.0};
  const double hi[] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(LpNorm::L2().MinDistanceToBox(q, lo, hi, 2), 0.0);
}

TEST(LpNormTest, MinDistanceToBoxOutside) {
  const double q[] = {2.0, 0.5};
  const double lo[] = {0.0, 0.0};
  const double hi[] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(LpNorm::L2().MinDistanceToBox(q, lo, hi, 2), 1.0);
  const double q2[] = {2.0, 2.0};
  EXPECT_DOUBLE_EQ(LpNorm::L2().MinDistanceToBox(q2, lo, hi, 2), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(LpNorm::LInf().MinDistanceToBox(q2, lo, hi, 2), 1.0);
}

// Lower bound property: box distance never exceeds distance to any point in
// the box.
TEST(LpNormTest, BoxDistanceIsLowerBound) {
  util::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t d = 1 + rng.UniformInt(4);
    std::vector<double> lo(d), hi(d), q(d), p(d);
    for (size_t j = 0; j < d; ++j) {
      const double a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
      q[j] = rng.Uniform(-3, 3);
      p[j] = rng.Uniform(lo[j], hi[j]);  // point inside the box
    }
    for (double pp : {1.0, 2.0, LpNorm::kInf}) {
      LpNorm norm(pp);
      EXPECT_LE(norm.MinDistanceToBox(q.data(), lo.data(), hi.data(), d),
                norm.Distance(q.data(), p.data(), d) + 1e-12);
    }
  }
}

// ---------- ScanIndex ----------

TEST(ScanIndexTest, FindsAllWithinRadius) {
  Table t(1);
  for (double v : {0.1, 0.2, 0.5, 0.9}) ASSERT_TRUE(t.Append({v}, v).ok());
  ScanIndex scan(t);
  const double c[] = {0.15};
  SelectionStats stats;
  auto ids = scan.RadiusSearch(c, 0.1, LpNorm::L2(), &stats);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(stats.tuples_examined, 4);
  EXPECT_EQ(stats.tuples_matched, 2);
}

TEST(ScanIndexTest, EmptyResultForDistantQuery) {
  Table t = MakeRandomTable(2, 100, 3);
  ScanIndex scan(t);
  const double c[] = {100.0, 100.0};
  EXPECT_TRUE(scan.RadiusSearch(c, 0.5, LpNorm::L2()).empty());
}

// ---------- KdTree ----------

TEST(KdTreeTest, EmptyTable) {
  Table t(2);
  KdTree tree(t);
  const double c[] = {0.5, 0.5};
  EXPECT_TRUE(tree.RadiusSearch(c, 10.0, LpNorm::L2()).empty());
  EXPECT_TRUE(tree.NearestNeighbors(c, 3).empty());
}

TEST(KdTreeTest, SingleRow) {
  Table t(2);
  ASSERT_TRUE(t.Append({0.5, 0.5}, 1.0).ok());
  KdTree tree(t);
  const double c[] = {0.4, 0.5};
  auto ids = tree.RadiusSearch(c, 0.2, LpNorm::L2());
  EXPECT_EQ(ids, (std::vector<int64_t>{0}));
  auto nn = tree.NearestNeighbors(c, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 0);
  EXPECT_NEAR(nn[0].distance, 0.1, 1e-12);
}

TEST(KdTreeTest, DuplicatePointsAllReturned) {
  Table t(2);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(t.Append({0.5, 0.5}, i).ok());
  KdTree tree(t, 8);
  const double c[] = {0.5, 0.5};
  EXPECT_EQ(tree.RadiusSearch(c, 0.01, LpNorm::L2()).size(), 50u);
}

// Property: kd-tree selection == scan selection for random tables, queries,
// dimensions, leaf sizes, and norms.
class KdTreeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(KdTreeEquivalenceTest, MatchesScan) {
  const int d = std::get<0>(GetParam());
  const int leaf = std::get<1>(GetParam());
  const double p = std::get<2>(GetParam());
  Table t = MakeRandomTable(static_cast<size_t>(d), 2000,
                            static_cast<uint64_t>(d * 100 + leaf));
  ScanIndex scan(t);
  KdTree tree(t, leaf);
  LpNorm norm(p);
  util::Rng rng(static_cast<uint64_t>(d * 7 + leaf));
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> c(static_cast<size_t>(d));
    for (auto& v : c) v = rng.Uniform(-0.2, 1.2);
    const double radius = rng.Uniform(0.01, 0.5);
    auto a = scan.RadiusSearch(c.data(), radius, norm);
    auto b = tree.RadiusSearch(c.data(), radius, norm);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "d=" << d << " leaf=" << leaf << " p=" << p
                    << " radius=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(1, 8, 64),
                       ::testing::Values(1.0, 2.0, LpNorm::kInf)));

TEST(KdTreeTest, ExaminesFewerTuplesThanScan) {
  Table t = MakeRandomTable(2, 20000, 11);
  ScanIndex scan(t);
  KdTree tree(t);
  const double c[] = {0.5, 0.5};
  SelectionStats ss, ts;
  scan.RadiusSearch(c, 0.05, LpNorm::L2(), &ss);
  tree.RadiusSearch(c, 0.05, LpNorm::L2(), &ts);
  EXPECT_EQ(ss.tuples_matched, ts.tuples_matched);
  EXPECT_LT(ts.tuples_examined, ss.tuples_examined / 4)
      << "kd-tree should prune most of the table for a small ball";
}

TEST(KdTreeTest, KnnMatchesBruteForce) {
  const size_t d = 3;
  Table t = MakeRandomTable(d, 500, 21);
  KdTree tree(t, 16);
  util::Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> c(d);
    for (auto& v : c) v = rng.Uniform(0, 1);
    const int k = 1 + static_cast<int>(rng.UniformInt(10));

    // Brute force.
    std::vector<Neighbor> brute;
    for (int64_t i = 0; i < t.num_rows(); ++i) {
      brute.push_back({LpNorm::L2().Distance(t.x(i), c.data(), d), i});
    }
    std::sort(brute.begin(), brute.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance < b.distance;
              });
    brute.resize(static_cast<size_t>(k));

    auto fast = tree.NearestNeighbors(c.data(), k);
    ASSERT_EQ(fast.size(), static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(fast[static_cast<size_t>(i)].distance,
                  brute[static_cast<size_t>(i)].distance, 1e-12);
    }
  }
}

TEST(KdTreeTest, KnnLargerKThanTable) {
  Table t = MakeRandomTable(2, 5, 31);
  KdTree tree(t);
  const double c[] = {0.5, 0.5};
  EXPECT_EQ(tree.NearestNeighbors(c, 50).size(), 5u);
}

}  // namespace
}  // namespace storage
}  // namespace qreg
