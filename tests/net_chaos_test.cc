// Deterministic chaos battery for the server's self-defense machinery
// (DESIGN.md §12.7): connection lifecycle timeouts and write backpressure,
// driven entirely in virtual time. Every scenario runs on the SimBackend
// with a FakeClock injected through ServerConfig::clock — the test advances
// the clock, calls SimTransport::Poke() so the loop re-reads it, and the
// timer wheel fires exactly the deadline that should fire. No real sleeps
// decide anything.
//
// The invariants under attack:
//   - a slow-loris dripping header bytes cannot outlive the read-progress
//     window (it anchors at frame *start*, not at the last byte),
//   - a silent connection is idle-closed exactly once, with the idle counter
//     (never the read-timeout counter) taking the blame,
//   - a reader that stops reading is evicted at the pending-write cap with a
//     typed kUnavailable goodbye, and its eviction never perturbs a healthy
//     sibling's answers (bit-for-bit vs the in-process reference),
//   - every teardown path — timeout, eviction, grace expiry, reset storm —
//     returns every arena buffer (acquired() == released() after Shutdown).
//
// CI runs this file across ASan and TSan with --gtest_repeat=3: a scenario
// that is not deterministic fails there.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "net/backend_sim.h"
#include "net/server.h"
#include "net/wire.h"
#include "test_support.h"

namespace qreg {
namespace net {
namespace {

using testsupport::FakeClock;
using testsupport::MixedWorkload;
using testsupport::SharedCatalog;

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

service::RouterConfig RouterCfg(size_t threads) {
  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.enable_cache = false;  // Cache hits would change AnswerSource.
  cfg.num_threads = threads;
  return cfg;
}

constexpr int64_t kMillis = 1000000;  // Nanos per millisecond.

// One loop, one executor, virtual clock. Individual tests tighten the
// specific limit they attack; everything else stays far away.
ServerConfig ChaosConfig(SimTransport* transport, const FakeClock* clock) {
  ServerConfig cfg;
  cfg.backend = BackendKind::kSim;
  cfg.sim = transport;
  cfg.event_loops = 1;
  cfg.executor_threads = 1;
  cfg.clock = clock;
  cfg.idle_timeout_millis = 60000;
  cfg.read_progress_timeout_millis = 10000;
  return cfg;
}

WireRequest ToWire(const service::Request& request) {
  WireRequest wire;
  wire.dataset = request.dataset;
  wire.kind = request.kind;
  wire.q = request.q;
  return wire;
}

std::vector<uint8_t> RequestFrame(const WireRequest& wire, uint64_t id) {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kRequest, id, EncodeRequest(wire));
  return out;
}

// Spins until `cond` holds or ~2s (real) pass. Real time only ever bounds
// *observation* of work the server does eagerly; expiries themselves are
// pure virtual-time.
template <typename Cond>
bool WaitFor(Cond cond) {
  for (int i = 0; i < 2000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

// Drains the server's output on `conn` into `decoder` until `want` frames
// decode or ~5s pass.
bool CollectFrames(SimConn* conn, FrameDecoder* decoder, size_t want,
                   std::vector<Frame>* frames) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    Frame frame;
    while (frames->size() < want &&
           decoder->Next(&frame) == FrameDecoder::Event::kFrame) {
      frames->push_back(std::move(frame));
      frame = Frame();
    }
    if (frames->size() >= want) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    conn->WaitForFromServer(1, 50);
    const std::vector<uint8_t> bytes = conn->TakeFromServer();
    decoder->Feed(bytes.data(), bytes.size());
  }
}

// Decodes a kAnswer frame's payload and asserts it is bit-for-bit the
// reference router's answer for `request`.
void ExpectAnswerMatchesReference(const Frame& frame,
                                  const service::Request& request,
                                  service::QueryRouter* ref) {
  ASSERT_EQ(frame.header.type, FrameType::kAnswer);
  const util::Result<service::Answer> got =
      DecodeAnswer(frame.payload.data(), frame.payload.size());
  ASSERT_TRUE(got.ok()) << got.status();
  const service::ExecResult want = ref->Execute(request);
  ASSERT_TRUE(want.ok()) << want.status();
  EXPECT_EQ(got->kind, want->kind);
  EXPECT_EQ(got->source, want->source);
  EXPECT_TRUE(BitEq(got->mean, want->mean));
  EXPECT_EQ(got->exec.tuples_matched, want->exec.tuples_matched);
}

// Round-trips `request` on a fresh healthy connection and asserts the answer
// matches the reference — the "chaos never hurt the innocent" probe.
void ProbeHealthy(SimTransport* transport, const service::Request& request,
                  service::QueryRouter* ref, uint64_t id) {
  SimConn* conn = transport->Connect();
  ASSERT_NE(conn, nullptr);
  conn->SendToServer(RequestFrame(ToWire(request), id));
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(CollectFrames(conn, &decoder, 1, &frames));
  EXPECT_EQ(frames[0].header.request_id, id);
  ExpectAnswerMatchesReference(frames[0], request, ref);
  conn->CloseWrite();  // Finish cleanly so drain never waits on us.
  ASSERT_TRUE(conn->WaitForServerClose());
}

TEST(NetChaosTest, SlowLorisDiesAtFrameStartAnchoredReadTimeout) {
  FakeClock clock(1000 * kMillis);
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));
  Server server(&router, ChaosConfig(&transport, &clock));
  ASSERT_TRUE(server.Start().ok());

  const std::vector<service::Request> requests = MixedWorkload(2, /*seed=*/71);
  ProbeHealthy(&transport, requests[0], &ref, 1);

  // The attack: drip one header byte every 4 virtual seconds. Every
  // inter-byte gap is comfortably under the 10s read-progress window — a
  // last-byte-anchored timeout would never fire. The window anchors at the
  // *first* byte of the frame, so the third gap crosses it.
  SimConn* victim = transport.Connect();
  ASSERT_NE(victim, nullptr);
  const std::vector<uint8_t> frame = RequestFrame(ToWire(requests[1]), 2);
  const int64_t base_in = router.Stats().net_bytes_in;
  for (int i = 0; i < 3; ++i) {
    victim->SendToServer(frame.data() + i, 1);
    // The drip byte must be *read* (anchoring/holding the window) before
    // virtual time moves, or the anchor itself would drift.
    ASSERT_TRUE(WaitFor([&] {
      return router.Stats().net_bytes_in == base_in + i + 1;
    }));
    clock.AdvanceNanos(4000 * kMillis);
    transport.Poke();
  }
  // 12 virtual seconds since the frame started: the wheel fires.
  ASSERT_TRUE(victim->WaitForServerClose());

  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_read_timeout_closed == 1; }));
  const service::ServiceSnapshot snap = router.Stats();
  EXPECT_EQ(snap.net_read_timeout_closed, 1);
  EXPECT_EQ(snap.net_idle_closed, 0);
  EXPECT_EQ(snap.net_backpressure_closed, 0);
  EXPECT_EQ(snap.net_protocol_errors, 0);  // Slow is not malformed.

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetChaosTest, HalfOpenStallDiesAtReadTimeoutNotIdle) {
  FakeClock clock(1000 * kMillis);
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));
  Server server(&router, ChaosConfig(&transport, &clock));
  ASSERT_TRUE(server.Start().ok());

  const std::vector<service::Request> requests = MixedWorkload(2, /*seed=*/73);

  // A half-open peer: 10 bytes of a valid frame, then silence forever — no
  // EOF, no reset. The mid-frame read-progress window (10s) must reap it
  // long before the idle window (60s) would.
  SimConn* victim = transport.Connect();
  ASSERT_NE(victim, nullptr);
  const std::vector<uint8_t> frame = RequestFrame(ToWire(requests[1]), 2);
  victim->SendToServer(frame.data(), 10);
  ASSERT_TRUE(WaitFor([&] { return router.Stats().net_bytes_in == 10; }));

  clock.AdvanceNanos(10001 * kMillis);
  transport.Poke();
  ASSERT_TRUE(victim->WaitForServerClose());
  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_read_timeout_closed == 1; }));
  EXPECT_EQ(router.Stats().net_idle_closed, 0);

  // The server is unharmed: a healthy probe still answers bit-for-bit.
  ProbeHealthy(&transport, requests[0], &ref, 1);

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetChaosTest, SilentConnectionIsIdleClosedExactlyOnce) {
  FakeClock clock(1000 * kMillis);
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));
  ServerConfig cfg = ChaosConfig(&transport, &clock);
  cfg.idle_timeout_millis = 30000;
  Server server(&router, cfg);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<service::Request> requests = MixedWorkload(1, /*seed=*/79);

  // The victim connects and never sends a byte. A healthy probe completes
  // and closes first, so when virtual time jumps the idle window only the
  // victim is left to expire.
  SimConn* victim = transport.Connect();
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(
      WaitFor([&] { return router.Stats().net_connections_accepted == 1; }));
  ProbeHealthy(&transport, requests[0], &ref, 1);
  ASSERT_TRUE(
      WaitFor([&] { return router.Stats().net_connections_closed == 1; }));

  clock.AdvanceNanos(30001 * kMillis);
  transport.Poke();
  ASSERT_TRUE(victim->WaitForServerClose());

  EXPECT_TRUE(WaitFor([&] { return router.Stats().net_idle_closed == 1; }));
  const service::ServiceSnapshot snap = router.Stats();
  EXPECT_EQ(snap.net_idle_closed, 1);
  EXPECT_EQ(snap.net_read_timeout_closed, 0);  // Not mid-frame: idle's kill.
  EXPECT_EQ(snap.net_connections_closed, 2);

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

// The per-request answer frame the server will produce for `request`, sized
// with exec.nanos == 0 — a *lower bound* on the real frame (exec.nanos rides
// a varint, so the live value can only widen it). Cap math built on this
// bound is deterministic whatever the serving latency.
size_t MinAnswerFrameBytes(const service::Request& request,
                           service::QueryRouter* ref) {
  service::ExecResult result = ref->Execute(request);
  EXPECT_TRUE(result.ok()) << result.status();
  service::Answer answer = *result;
  answer.exec.nanos = 0;
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kAnswer, 1, EncodeAnswer(answer));
  return out.size();
}

TEST(NetChaosTest, StalledReaderEvictedAtConnCapWithUnavailableGoodbye) {
  FakeClock clock(1000 * kMillis);
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));

  const std::vector<service::Request> requests = MixedWorkload(3, /*seed=*/83);
  const size_t answer_bytes = MinAnswerFrameBytes(requests[1], &ref);

  ServerConfig cfg = ChaosConfig(&transport, &clock);
  // One pipelined answer already busts the per-connection cap.
  cfg.max_conn_pending_write_bytes = answer_bytes / 2;
  Server server(&router, cfg);
  ASSERT_TRUE(server.Start().ok());

  // The victim pipelines two requests and stops reading: every flush parks
  // on EAGAIN, pending bytes cross the cap, and the server must evict —
  // releasing the queued answers to the arena and staging one typed
  // kUnavailable goodbye.
  FaultSchedule stalled;
  stalled.stall_writes = true;
  SimConn* victim = transport.Connect(stalled);
  ASSERT_NE(victim, nullptr);
  std::vector<uint8_t> burst = RequestFrame(ToWire(requests[1]), 11);
  const std::vector<uint8_t> second = RequestFrame(ToWire(requests[2]), 12);
  burst.insert(burst.end(), second.begin(), second.end());
  victim->SendToServer(burst);

  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_backpressure_closed == 1; }));

  // A healthy sibling on the same loop is untouched by the eviction.
  ProbeHealthy(&transport, requests[0], &ref, 1);

  // The victim resumes reading in time (virtual time never moved, so the
  // goodbye grace never expired) and learns *why* it was dropped: one
  // stream-level kError frame carrying kUnavailable, then close.
  victim->ResumeWrites();
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(CollectFrames(victim, &decoder, 1, &frames));
  ASSERT_EQ(frames[0].header.type, FrameType::kError);
  EXPECT_EQ(frames[0].header.request_id, 0u);  // Stream-level, not per-request.
  util::Status transported;
  ASSERT_TRUE(DecodeStatus(frames[0].payload.data(), frames[0].payload.size(),
                           &transported)
                  .ok());
  EXPECT_EQ(transported.code(), util::StatusCode::kUnavailable);
  ASSERT_TRUE(victim->WaitForServerClose());

  EXPECT_EQ(router.Stats().net_backpressure_closed, 1);
  EXPECT_EQ(router.Stats().net_idle_closed, 0);
  EXPECT_EQ(router.Stats().net_read_timeout_closed, 0);

  server.Shutdown();
  // Eviction's whole point: the undeliverable answers went home to the
  // arena immediately, and the goodbye path leaks nothing either.
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetChaosTest, AggregateCapEvictsHeaviestWriterOnly) {
  FakeClock clock(1000 * kMillis);
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));

  const std::vector<service::Request> requests = MixedWorkload(2, /*seed=*/89);
  const size_t answer_bytes = MinAnswerFrameBytes(requests[1], &ref);

  ServerConfig cfg = ChaosConfig(&transport, &clock);
  cfg.max_conn_pending_write_bytes = 0;  // Per-conn cap off: aggregate only.
  cfg.max_loop_pending_write_bytes = answer_bytes * 4;
  Server server(&router, cfg);
  ASSERT_TRUE(server.Start().ok());

  // The heavy writer pipelines six copies of the same request and stalls:
  // ≥ 6 × answer_bytes pending against a 4 × answer_bytes loop cap. The
  // aggregate limit must pick *it* — the heaviest writer — and leave the
  // healthy sibling alone.
  FaultSchedule stalled;
  stalled.stall_writes = true;
  SimConn* heavy = transport.Connect(stalled);
  ASSERT_NE(heavy, nullptr);
  std::vector<uint8_t> burst;
  for (uint64_t id = 1; id <= 6; ++id) {
    const std::vector<uint8_t> f = RequestFrame(ToWire(requests[1]), id);
    burst.insert(burst.end(), f.begin(), f.end());
  }
  heavy->SendToServer(burst);

  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_backpressure_closed == 1; }));
  ProbeHealthy(&transport, requests[0], &ref, 100);
  EXPECT_EQ(router.Stats().net_backpressure_closed, 1);  // Exactly one victim.

  heavy->ResumeWrites();  // Take the goodbye so drain never waits on us.
  ASSERT_TRUE(heavy->WaitForServerClose());

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetChaosTest, ResetStormLeavesHealthyTrafficBitForBit) {
  FakeClock clock(1000 * kMillis);
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));
  Server server(&router, ChaosConfig(&transport, &clock));
  ASSERT_TRUE(server.Start().ok());

  const std::vector<service::Request> requests = MixedWorkload(8, /*seed=*/97);

  // Five victims connect, send a full request (some dripped byte-at-a-time
  // for good measure), and slam the door with an RST at arbitrary points.
  // The storm and the healthy probes interleave; every probe must still
  // answer bit-for-bit, and every victim teardown must come home clean.
  std::vector<SimConn*> victims;
  for (int v = 0; v < 5; ++v) {
    FaultSchedule sched;
    if (v % 2 == 0) sched.default_read_cap = 1;
    SimConn* conn = transport.Connect(sched);
    ASSERT_NE(conn, nullptr);
    conn->SendToServer(RequestFrame(ToWire(requests[3 + v % 3]),
                                    static_cast<uint64_t>(200 + v)));
    victims.push_back(conn);
  }
  victims[0]->Reset();  // Two die instantly, mid-decode or pre-decode.
  victims[1]->Reset();

  ProbeHealthy(&transport, requests[0], &ref, 1);
  victims[2]->Reset();
  ProbeHealthy(&transport, requests[1], &ref, 2);
  victims[3]->Reset();
  victims[4]->Reset();
  ProbeHealthy(&transport, requests[2], &ref, 3);

  for (SimConn* victim : victims) {
    ASSERT_TRUE(victim->WaitForServerClose());
  }
  // 5 victims + 3 probes, all accounted closed; resets are transport
  // deaths, not protocol violations.
  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_connections_closed == 8; }));
  EXPECT_EQ(router.Stats().net_protocol_errors, 0);

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

// The full soak: one server, every attack at once, virtual time marching
// forward. Each victim must die by exactly its own counter — and the grace
// path (an evicted reader that *never* resumes) is exercised here, where the
// clock jump expires the goodbye window.
TEST(NetChaosTest, ChaosSoakKillsEachVictimByItsOwnCounter) {
  FakeClock clock(1000 * kMillis);
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));

  const std::vector<service::Request> requests = MixedWorkload(6, /*seed=*/31);
  const size_t answer_bytes = MinAnswerFrameBytes(requests[4], &ref);

  ServerConfig cfg = ChaosConfig(&transport, &clock);
  cfg.idle_timeout_millis = 60000;
  cfg.read_progress_timeout_millis = 10000;
  cfg.max_conn_pending_write_bytes = answer_bytes / 2;
  Server server(&router, cfg);
  ASSERT_TRUE(server.Start().ok());

  // Cast: a silent idler, a slow loris, a stalled reader (who will never
  // resume — the grace timer must reap it), two reset victims, and healthy
  // probes woven through.
  SimConn* idler = transport.Connect();
  ASSERT_NE(idler, nullptr);

  FaultSchedule stalled;
  stalled.stall_writes = true;
  SimConn* deaf = transport.Connect(stalled);
  ASSERT_NE(deaf, nullptr);
  deaf->SendToServer(RequestFrame(ToWire(requests[4]), 41));

  SimConn* loris = transport.Connect();
  ASSERT_NE(loris, nullptr);
  const std::vector<uint8_t> loris_frame =
      RequestFrame(ToWire(requests[5]), 51);

  SimConn* rst_a = transport.Connect();
  SimConn* rst_b = transport.Connect();
  ASSERT_NE(rst_a, nullptr);
  ASSERT_NE(rst_b, nullptr);
  rst_a->SendToServer(RequestFrame(ToWire(requests[3]), 61));

  ProbeHealthy(&transport, requests[0], &ref, 1);
  rst_a->Reset();
  rst_b->Reset();

  // The eviction lands in real time (no clock motion needed)...
  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_backpressure_closed == 1; }));

  // ...then the loris drips under a frame-start-anchored window.
  const int64_t base_in = router.Stats().net_bytes_in;
  for (int i = 0; i < 3; ++i) {
    loris->SendToServer(loris_frame.data() + i, 1);
    ASSERT_TRUE(WaitFor([&] {
      return router.Stats().net_bytes_in == base_in + i + 1;
    }));
    clock.AdvanceNanos(4000 * kMillis);
    transport.Poke();
  }
  // 12 virtual seconds in: the loris (frame started 12s ago) and the deaf
  // reader (goodbye grace was 10s) are both gone. The idler (60s) survives.
  ASSERT_TRUE(loris->WaitForServerClose());
  ASSERT_TRUE(deaf->WaitForServerClose());

  ProbeHealthy(&transport, requests[1], &ref, 2);

  // March virtual time past the idle window; only the idler is left to die.
  clock.AdvanceNanos(60000 * kMillis);
  transport.Poke();
  ASSERT_TRUE(idler->WaitForServerClose());

  ProbeHealthy(&transport, requests[2], &ref, 3);

  EXPECT_TRUE(WaitFor([&] { return router.Stats().net_idle_closed == 1; }));
  const service::ServiceSnapshot snap = router.Stats();
  EXPECT_EQ(snap.net_idle_closed, 1);           // The idler.
  EXPECT_EQ(snap.net_read_timeout_closed, 1);   // The loris.
  EXPECT_EQ(snap.net_backpressure_closed, 1);   // The deaf reader.
  EXPECT_EQ(snap.net_protocol_errors, 0);
  EXPECT_EQ(snap.net_connections_accepted, 8);  // 5 victims + 3 probes.

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

}  // namespace
}  // namespace net
}  // namespace qreg
