// Tests for the block-at-a-time scan pipeline (ISSUE-5 tentpole):
//   - BlockVisit selects bit-for-bit the same (id, x, u) sequence as the
//     RowVisitor API, for all norms × both access paths × whole/partitioned
//     execution, with identical SelectionStats;
//   - the engine's block-kernel answers stay bit-for-bit identical across
//     thread counts and survive a mid-scan ExecControl trip with consistent
//     partial-work accounting;
//   - KahanSum compensates where a naive stream loses precision;
//   - the branch-free filters agree with LpNorm::Within row-by-row.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "query/exact_engine.h"
#include "query/scan_kernels.h"
#include "storage/block_filter.h"
#include "storage/kdtree.h"
#include "storage/scan_index.h"
#include "storage/table.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace qreg {
namespace query {
namespace {

storage::Table MakeTable(size_t d, int64_t n, uint64_t seed) {
  util::Rng rng(seed);
  storage::Table t(d);
  t.Reserve(n);
  std::vector<double> x(d);
  for (int64_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) x[j] = rng.Uniform(0, 1);
    t.AppendUnchecked(x.data(), rng.Uniform(-2, 2));
  }
  return t;
}

// One visited row, captured exactly.
struct Row {
  int64_t id;
  std::vector<double> x;
  double u;

  bool operator==(const Row& o) const {
    return id == o.id && u == o.u && x == o.x;
  }
};

class CollectRowsKernel : public storage::BlockKernel {
 public:
  CollectRowsKernel(std::vector<Row>* out, size_t d) : out_(out), d_(d) {}
  void OnBlock(const storage::BlockSpan& span) override {
    for (int32_t k = 0; k < span.count; ++k) {
      const double* x = span.XAt(k);
      out_->push_back({span.IdAt(k), std::vector<double>(x, x + d_), span.UAt(k)});
    }
  }

 private:
  std::vector<Row>* out_;
  size_t d_;
};

// ---------- BlockVisit ≡ RowVisit, all norms × paths × whole/partitioned ----

class BlockRowEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BlockRowEquivalenceTest, SameRowsSameOrderSameStats) {
  const size_t d = static_cast<size_t>(std::get<0>(GetParam()));
  const storage::LpNorm norm(std::get<1>(GetParam()));
  storage::Table table = MakeTable(d, 5000, 91 + d);
  storage::ScanIndex scan(table);
  storage::KdTree tree(table, 16);

  util::Rng rng(7 * d + 1);
  for (const storage::SpatialIndex* index :
       {static_cast<const storage::SpatialIndex*>(&scan),
        static_cast<const storage::SpatialIndex*>(&tree)}) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<double> c(d);
      for (auto& v : c) v = rng.Uniform(-0.1, 1.1);
      const double radius = rng.Uniform(0.05, 0.6);

      // Row path (the adapter).
      std::vector<Row> row_rows;
      storage::SelectionStats row_stats;
      index->RadiusVisit(
          c.data(), radius, norm,
          [&row_rows, d](int64_t id, const double* x, double u) {
            row_rows.push_back({id, std::vector<double>(x, x + d), u});
          },
          &row_stats);

      // Block path, whole scan.
      std::vector<Row> block_rows;
      storage::SelectionStats block_stats;
      CollectRowsKernel kernel(&block_rows, d);
      index->BlockVisit(c.data(), radius, norm, &kernel, &block_stats);

      EXPECT_EQ(block_rows, row_rows) << index->name() << " p=" << norm.p();
      EXPECT_EQ(block_stats.tuples_examined, row_stats.tuples_examined);
      EXPECT_EQ(block_stats.tuples_matched, row_stats.tuples_matched);

      // Block path, partitioned: plan order reproduces the whole-scan order.
      std::vector<Row> part_rows;
      storage::SelectionStats part_stats;
      CollectRowsKernel part_kernel(&part_rows, d);
      for (const auto& part : index->MakePartitions(7)) {
        index->BlockVisitPartition(part, c.data(), radius, norm, &part_kernel,
                                   &part_stats);
      }
      EXPECT_EQ(part_rows, row_rows) << index->name() << " p=" << norm.p();
      EXPECT_EQ(part_stats.tuples_examined, row_stats.tuples_examined);
      EXPECT_EQ(part_stats.tuples_matched, row_stats.tuples_matched);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockRowEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 6, 12),
                       ::testing::Values(1.0, 2.0, 3.0, storage::LpNorm::kInf)));

// ---------- Branch-free filter agrees with Within, row by row ----------

TEST(BlockFilterTest, MatchesWithinPerRow) {
  util::Rng rng(133);
  for (size_t d : {1u, 2u, 5u, 9u, 13u}) {
    storage::Table table = MakeTable(d, 700, 17 * d);
    for (double p : {1.0, 2.0, 2.5, storage::LpNorm::kInf}) {
      const storage::LpNorm norm(p);
      const storage::BlockFilter filter = storage::SelectBlockFilter(norm, d);
      std::vector<double> c(d);
      for (auto& v : c) v = rng.Uniform(0, 1);
      const double radius = rng.Uniform(0.1, 0.8);

      double scratch[storage::kScanBlockRows];
      int32_t sel[storage::kScanBlockRows];
      const int64_t n = table.num_rows();
      for (int64_t b = 0; b < n; b += storage::kScanBlockRows) {
        const int32_t rows = static_cast<int32_t>(
            std::min<int64_t>(storage::kScanBlockRows, n - b));
        const int32_t count =
            filter.Run(table.x(b), rows, d, c.data(), radius, sel, scratch);
        std::vector<bool> selected(static_cast<size_t>(rows), false);
        for (int32_t k = 0; k < count; ++k) {
          ASSERT_GE(sel[k], 0);
          ASSERT_LT(sel[k], rows);
          if (k > 0) EXPECT_LT(sel[k - 1], sel[k]);  // Ascending lanes.
          selected[static_cast<size_t>(sel[k])] = true;
        }
        for (int32_t lane = 0; lane < rows; ++lane) {
          EXPECT_EQ(selected[static_cast<size_t>(lane)],
                    norm.Within(table.x(b + lane), c.data(), d, radius))
              << "d=" << d << " p=" << p << " row=" << b + lane;
        }
      }
    }
  }
}

// ---------- Engine block kernels: determinism across thread counts ----------

TEST(BlockKernelEngineTest, BitForBitAcrossThreadCountsAndSerial) {
  storage::Table table = MakeTable(3, 12000, 5);
  storage::ScanIndex scan(table);
  storage::KdTree tree(table, 32);

  for (const storage::SpatialIndex* index :
       {static_cast<const storage::SpatialIndex*>(&scan),
        static_cast<const storage::SpatialIndex*>(&tree)}) {
    ExactEngine inline_engine(table, *index);
    ParallelOptions inline_par;
    inline_par.target_partitions = 12;
    inline_engine.set_parallel(inline_par);

    const Query q({0.4, 0.6, 0.5}, 0.35);
    const auto want_mean = inline_engine.MeanValue(q);
    const auto want_mom = inline_engine.Moments(q);
    const auto want_fit = inline_engine.Regression(q);
    const auto want_ids = inline_engine.Select(q).value();
    ASSERT_TRUE(want_mean.ok());

    for (size_t threads : {1u, 2u, 8u}) {
      util::ThreadPool pool(threads);
      ExactEngine engine(table, *index);
      ParallelOptions par;
      par.pool = &pool;
      par.target_partitions = 12;
      engine.set_parallel(par);

      EXPECT_EQ(engine.MeanValue(q)->mean, want_mean->mean) << index->name();
      EXPECT_EQ(engine.MeanValue(q)->count, want_mean->count);
      EXPECT_EQ(engine.Moments(q)->second_moment, want_mom->second_moment);
      EXPECT_EQ(engine.Moments(q)->variance, want_mom->variance);
      EXPECT_EQ(engine.Regression(q)->intercept, want_fit->intercept);
      EXPECT_EQ(engine.Regression(q)->slope, want_fit->slope);
      EXPECT_EQ(engine.Select(q).value(), want_ids);
    }

    // The serial whole-scan path (no parallel options) runs one continuous
    // compensated stream instead of the partitioned merge: equal within
    // reassociation tolerance, with exact integer counts.
    ExactEngine serial(table, *index);
    const auto serial_mean = serial.MeanValue(q);
    ASSERT_TRUE(serial_mean.ok());
    EXPECT_EQ(serial_mean->count, want_mean->count);
    EXPECT_NEAR(serial_mean->mean, want_mean->mean,
                1e-12 * std::max(1.0, std::fabs(want_mean->mean)));
    EXPECT_EQ(serial.Select(q).value(), want_ids);
  }
}

// ---------- Mid-scan ExecControl trip over block kernels ----------

TEST(BlockKernelEngineTest, MidScanTripLeavesConsistentChunkAccounting) {
  storage::Table table = MakeTable(2, 8000, 29);
  storage::ScanIndex scan(table);
  ExactEngine engine(table, scan);
  ParallelOptions par;
  par.target_partitions = 8;
  engine.set_parallel(par);

  const Query q({0.5, 0.5}, 10.0);  // All-covering: every chunk has work.

  util::CancellationToken token = util::CancellationToken::Cancellable();
  util::ExecControl control;
  control.cancel = token;
  control.on_chunk_for_testing = [&token](size_t chunk) {
    if (chunk == 3) token.Cancel();
  };

  ExecStats stats;
  const auto r = engine.MeanValue(q, &stats, &control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(stats.chunks_total, 8);
  EXPECT_LT(stats.chunks_completed, stats.chunks_total);
  EXPECT_EQ(stats.chunks_completed, 3);  // Chunks 0..2 ran; 3 tripped.
  // Partial tuple counters reflect exactly the completed chunks' blocks.
  EXPECT_GT(stats.tuples_examined, 0);
  EXPECT_EQ(stats.tuples_examined, stats.tuples_matched);  // θ covers all.

  // Same trip through Select: partial ids are discarded, stats consistent.
  util::CancellationToken token2 = util::CancellationToken::Cancellable();
  util::ExecControl control2;
  control2.cancel = token2;
  control2.on_chunk_for_testing = [&token2](size_t chunk) {
    if (chunk == 2) token2.Cancel();
  };
  ExecStats sel_stats;
  const auto ids = engine.Select(q, &sel_stats, &control2);
  ASSERT_FALSE(ids.ok());
  EXPECT_EQ(ids.status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(sel_stats.chunks_completed, 2);
  EXPECT_EQ(sel_stats.chunks_total, 8);
}

// ---------- KahanSum ----------

TEST(KahanSumTest, CompensatesWhereNaiveSumLoses) {
  // 1e16 + 1.0 is absorbed by a naive double sum; Kahan carries it.
  KahanSum kahan;
  double naive = 0.0;
  kahan.Add(1e16);
  naive += 1e16;
  for (int i = 0; i < 10; ++i) {
    kahan.Add(1.0);
    naive += 1.0;
  }
  kahan.Add(-1e16);
  naive += -1e16;
  EXPECT_EQ(kahan.value(), 10.0);
  EXPECT_NE(naive, 10.0);  // The naive stream lost the units.
}

}  // namespace
}  // namespace query
}  // namespace qreg
