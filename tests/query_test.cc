// Unit + property tests for src/query: Query geometry (Defs. 5-6, Eq. 9),
// workload generation, and the exact Q1/Q2 engine (REG ground truth).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "query/exact_engine.h"
#include "query/query.h"
#include "query/workload.h"
#include "storage/kdtree.h"
#include "storage/scan_index.h"
#include "util/rng.h"

namespace qreg {
namespace query {
namespace {

// ---------- Query geometry ----------

TEST(QueryTest, VectorRoundTrip) {
  Query q({0.1, 0.2, 0.3}, 0.5);
  const auto v = q.ToVector();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[3], 0.5);
  Query back = Query::FromVector(v);
  EXPECT_EQ(back.center, q.center);
  EXPECT_DOUBLE_EQ(back.theta, q.theta);
}

TEST(QueryTest, DistanceCombinesCenterAndTheta) {
  Query a({0.0, 0.0}, 0.1);
  Query b({3.0, 4.0}, 0.2);
  EXPECT_DOUBLE_EQ(QueryDistanceSquared(a, b), 25.0 + 0.01);
  EXPECT_DOUBLE_EQ(QueryDistance(a, a), 0.0);
}

TEST(OverlapTest, TouchingBallsOverlap) {
  Query a({0.0}, 0.5);
  Query b({1.0}, 0.5);  // centers 1 apart; radii sum exactly 1
  EXPECT_TRUE(Overlaps(a, b));
  EXPECT_DOUBLE_EQ(DegreeOfOverlap(a, b), 0.0);  // "just meet" => δ = 0
}

TEST(OverlapTest, DisjointBallsDoNotOverlap) {
  Query a({0.0}, 0.4);
  Query b({1.0}, 0.5);
  EXPECT_FALSE(Overlaps(a, b));
  EXPECT_DOUBLE_EQ(DegreeOfOverlap(a, b), 0.0);
}

TEST(OverlapTest, IdenticalQueriesHaveFullOverlap) {
  Query a({0.3, 0.7}, 0.25);
  EXPECT_DOUBLE_EQ(DegreeOfOverlap(a, a), 1.0);
}

TEST(OverlapTest, ConcentricContainmentPenalizedByRadiusGap) {
  Query big({0.0, 0.0}, 1.0);
  Query small({0.0, 0.0}, 0.1);
  // max(0, |θ-θ'|)/(θ+θ') = 0.9/1.1
  EXPECT_NEAR(DegreeOfOverlap(big, small), 1.0 - 0.9 / 1.1, 1e-12);
}

TEST(OverlapTest, SymmetryProperty) {
  util::Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    const size_t d = 1 + rng.UniformInt(4);
    Query a, b;
    a.center.resize(d);
    b.center.resize(d);
    for (size_t j = 0; j < d; ++j) {
      a.center[j] = rng.Uniform(-1, 1);
      b.center[j] = rng.Uniform(-1, 1);
    }
    a.theta = rng.Uniform(0.01, 1.0);
    b.theta = rng.Uniform(0.01, 1.0);
    EXPECT_DOUBLE_EQ(DegreeOfOverlap(a, b), DegreeOfOverlap(b, a));
    EXPECT_EQ(Overlaps(a, b), Overlaps(b, a));
  }
}

TEST(OverlapTest, DegreeAlwaysInUnitInterval) {
  util::Rng rng(6);
  for (int t = 0; t < 500; ++t) {
    Query a, b;
    a.center = {rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    b.center = {rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    a.theta = rng.Uniform(1e-4, 2.0);
    b.theta = rng.Uniform(1e-4, 2.0);
    const double delta = DegreeOfOverlap(a, b);
    EXPECT_GE(delta, 0.0);
    EXPECT_LE(delta, 1.0);
    if (delta > 0.0) {
      EXPECT_TRUE(Overlaps(a, b));
    }
  }
}

TEST(OverlapTest, DeltaDecreasesWithCenterDistance) {
  Query base({0.0, 0.0}, 0.5);
  double prev = 1.1;
  for (double shift : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    Query moved({shift, 0.0}, 0.5);
    const double delta = DegreeOfOverlap(base, moved);
    EXPECT_LT(delta, prev);
    prev = delta;
  }
}

// ---------- Workload ----------

TEST(WorkloadTest, ValidatesConfig) {
  WorkloadConfig bad = WorkloadConfig::Cube(2, 0.0, 1.0, 0.1, 0.01, 1);
  bad.center_lo = {1.0};  // wrong size
  EXPECT_FALSE(WorkloadGenerator(bad).Validate().ok());

  WorkloadConfig neg = WorkloadConfig::Cube(2, 0.0, 1.0, -0.1, 0.01, 1);
  EXPECT_FALSE(WorkloadGenerator(neg).Validate().ok());

  WorkloadConfig good = WorkloadConfig::Cube(2, 0.0, 1.0, 0.1, 0.01, 1);
  EXPECT_TRUE(WorkloadGenerator(good).Validate().ok());
}

TEST(WorkloadTest, DeterministicForSeed) {
  auto cfg = WorkloadConfig::Cube(3, -1.0, 1.0, 0.2, 0.05, 99);
  WorkloadGenerator g1(cfg), g2(cfg);
  for (int i = 0; i < 50; ++i) {
    const Query a = g1.Next();
    const Query b = g2.Next();
    EXPECT_EQ(a.center, b.center);
    EXPECT_DOUBLE_EQ(a.theta, b.theta);
  }
}

TEST(WorkloadTest, CentersWithinBoundsThetaPositive) {
  auto cfg = WorkloadConfig::Cube(2, -10.0, 10.0, 1.0, 0.5, 7);
  WorkloadGenerator gen(cfg);
  for (const Query& q : gen.Generate(2000)) {
    for (double c : q.center) {
      EXPECT_GE(c, -10.0);
      EXPECT_LE(c, 10.0);
    }
    EXPECT_GT(q.theta, 0.0);
  }
}

TEST(WorkloadTest, ThetaMeanApproximatesMu) {
  auto cfg = WorkloadConfig::Cube(2, 0.0, 1.0, 0.3, 0.01, 13);
  WorkloadGenerator gen(cfg);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += gen.Next().theta;
  EXPECT_NEAR(sum / n, 0.3, 0.005);
}

// ---------- ExactEngine ----------

class ExactEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<storage::Table>(2);
    util::Rng rng(17);
    // Plant an exactly linear function so Q2 is analytically known.
    for (int i = 0; i < 5000; ++i) {
      std::vector<double> x{rng.Uniform(0, 1), rng.Uniform(0, 1)};
      ASSERT_TRUE(table_->Append(x, 2.0 + 3.0 * x[0] - 1.0 * x[1]).ok());
    }
    scan_ = std::make_unique<storage::ScanIndex>(*table_);
    tree_ = std::make_unique<storage::KdTree>(*table_);
  }

  std::unique_ptr<storage::Table> table_;
  std::unique_ptr<storage::ScanIndex> scan_;
  std::unique_ptr<storage::KdTree> tree_;
};

TEST_F(ExactEngineTest, MeanValueMatchesManualAverage) {
  ExactEngine engine(*table_, *scan_);
  Query q({0.5, 0.5}, 0.2);
  ExecStats stats;
  auto r = engine.MeanValue(q, &stats);
  ASSERT_TRUE(r.ok());

  // Manual computation with a naive running sum. The engine's accumulator
  // is Kahan-compensated, so the two can legitimately differ by a few ulps
  // of drift that the *naive* loop accumulated — compare with a tight
  // relative tolerance instead of bit equality.
  double sum = 0.0;
  int64_t cnt = 0;
  for (int64_t i = 0; i < table_->num_rows(); ++i) {
    if (storage::LpNorm::L2().Within(table_->x(i), q.center.data(), 2, q.theta)) {
      sum += table_->u(i);
      ++cnt;
    }
  }
  ASSERT_GT(cnt, 0);
  const double manual = sum / static_cast<double>(cnt);
  EXPECT_NEAR(r->mean, manual, 1e-12 * std::max(1.0, std::fabs(manual)));
  EXPECT_EQ(r->count, cnt);
  EXPECT_EQ(stats.tuples_matched, cnt);
  EXPECT_GT(stats.nanos, 0);
}

TEST_F(ExactEngineTest, MeanValueSameForScanAndKdTree) {
  ExactEngine scan_engine(*table_, *scan_);
  ExactEngine tree_engine(*table_, *tree_);
  util::Rng rng(23);
  for (int t = 0; t < 20; ++t) {
    Query q({rng.Uniform(0, 1), rng.Uniform(0, 1)}, rng.Uniform(0.05, 0.3));
    auto a = scan_engine.MeanValue(q);
    auto b = tree_engine.MeanValue(q);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_NEAR(a->mean, b->mean, 1e-12);
      EXPECT_EQ(a->count, b->count);
    }
  }
}

TEST_F(ExactEngineTest, RegressionRecoversPlantedPlane) {
  ExactEngine engine(*table_, *tree_);
  Query q({0.5, 0.5}, 0.3);
  auto fit = engine.Regression(q);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->intercept, 2.0, 1e-8);
  EXPECT_NEAR(fit->slope[0], 3.0, 1e-8);
  EXPECT_NEAR(fit->slope[1], -1.0, 1e-8);
  EXPECT_NEAR(fit->CoD(), 1.0, 1e-10);
}

TEST_F(ExactEngineTest, EmptySubspaceIsNotFound) {
  ExactEngine engine(*table_, *tree_);
  Query q({50.0, 50.0}, 0.1);
  EXPECT_EQ(engine.MeanValue(q).status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(engine.Regression(q).status().code(), util::StatusCode::kNotFound);
}

TEST_F(ExactEngineTest, SelectReturnsMatchingIds) {
  ExactEngine engine(*table_, *tree_);
  Query q({0.5, 0.5}, 0.1);
  ExecStats stats;
  auto ids = engine.Select(q, &stats).value();
  EXPECT_EQ(static_cast<int64_t>(ids.size()), stats.tuples_matched);
  for (int64_t id : ids) {
    EXPECT_TRUE(
        storage::LpNorm::L2().Within(table_->x(id), q.center.data(), 2, q.theta));
  }
}

TEST_F(ExactEngineTest, L1NormSelectsDifferentSubspace) {
  ExactEngine l2(*table_, *scan_, storage::LpNorm::L2());
  ExactEngine l1(*table_, *scan_, storage::LpNorm::L1());
  Query q({0.5, 0.5}, 0.2);
  auto a = l2.MeanValue(q);
  auto b = l1.MeanValue(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // L1 ball is strictly inside the L2 ball of the same radius.
  EXPECT_LT(b->count, a->count);
}

}  // namespace
}  // namespace query
}  // namespace qreg
