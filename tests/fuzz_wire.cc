// libFuzzer harness for net::FrameDecoder (build with -DQREG_FUZZ=ON, clang
// only). Seeded from tests/corpus/wire/ — the checked-in frame corpus the
// deterministic battery replays — and run as a 60-second smoke in CI.
//
// The harness stresses the *incremental* decode path: the input is fed in
// pseudo-random chunk sizes derived from the first byte, so every header
// boundary, early-poison prefix (bad magic at 4 bytes, bad version at 6),
// and partial-payload resume gets exercised, not just whole-buffer decodes.
// ASan (bundled with -fsanitize=fuzzer,address) catches the interesting
// failures: out-of-bounds header reads, checksum scans past the payload,
// or unbounded buffering after a poison.

#include <cstddef>
#include <cstdint>

#include "net/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using qreg::net::Frame;
  using qreg::net::FrameDecoder;

  FrameDecoder decoder(/*max_payload_bytes=*/1 << 20);

  // Chunk-size schedule: a tiny LCG seeded from the input so the split
  // points are fuzz-controlled but deterministic per input.
  uint32_t rng = 1u;
  if (size > 0) rng = static_cast<uint32_t>(data[0]) * 2654435761u + 1u;
  size_t offset = 0;
  while (offset < size) {
    rng = rng * 1664525u + 1013904223u;
    const size_t chunk = static_cast<size_t>(rng % 37u) + 1u;
    const size_t n = chunk < size - offset ? chunk : size - offset;
    decoder.Feed(data + offset, n);
    offset += n;

    Frame frame;
    while (decoder.Next(&frame) == FrameDecoder::Event::kFrame) {
    }
    if (decoder.poisoned()) break;  // Poison is terminal; feeding is a no-op.
  }
  return 0;
}
