// Tests for the service layer: thread pool, model catalog (lazy training +
// warm start), δ-overlap answer cache (admission, LRU, accuracy bound), and
// the query router (policy agreement with the standalone engines, batch
// parallelism determinism).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eval/metrics.h"
#include "query/workload.h"
#include "service/answer_cache.h"
#include "service/model_catalog.h"
#include "service/query_router.h"
#include "service/service_stats.h"
#include "service/thread_pool.h"
#include "test_support.h"
#include "util/rng.h"

namespace qreg {
namespace service {
namespace {

// Fixtures, catalog recipe and workload builders live in test_support.h,
// shared with parallel_exact_test.cc and lifecycle_test.cc.
using testsupport::DefaultCatalogOptions;
using testsupport::MixedWorkload;
using testsupport::RandomQueries;
using testsupport::SharedCatalog;
using TestData = testsupport::EngineFixture;

TestData* SharedData() { return testsupport::SharedServiceFixture(); }

CatalogOptions TestOptions() { return DefaultCatalogOptions(); }

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4, /*queue_capacity=*/16);
  std::atomic<int> count{0};
  BlockingCounter done(1000);
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count, &done] {
      count.fetch_add(1, std::memory_order_relaxed);
      done.DecrementCount();
    });
  }
  done.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::thread::id task_thread;
  pool.Submit([&task_thread] { task_thread = std::this_thread::get_id(); });
  EXPECT_EQ(task_thread, std::this_thread::get_id());
}

TEST(ThreadPoolTest, TrySubmitAppliesBackpressure) {
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::mutex gate;
  gate.lock();
  pool.Submit([&gate] { gate.lock(); gate.unlock(); });  // Blocks the worker.
  // Wait until the worker has dequeued the blocker.
  while (pool.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pool.TrySubmit([] {}));   // Fills the 1-slot queue.
  EXPECT_FALSE(pool.TrySubmit([] {}));  // Queue full -> rejected.
  gate.unlock();
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2, 64);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // Destructor joins after draining.
  EXPECT_EQ(count.load(), 50);
}

// ---------- ModelCatalog ----------

TEST(ModelCatalogTest, RegistrationValidation) {
  TestData* d = SharedData();
  ModelCatalog catalog;
  EXPECT_TRUE(
      catalog.Register("a", &d->dataset->table, d->kdtree.get(), TestOptions()).ok());
  // Duplicate name.
  auto dup = catalog.Register("a", &d->dataset->table, d->kdtree.get(), TestOptions());
  EXPECT_EQ(dup.code(), util::StatusCode::kAlreadyExists);
  // Dimension mismatch between workload and table.
  CatalogOptions bad = CatalogOptions::ForCube(3, 0.0, 1.0, 0.1, 0.02);
  auto mismatch = catalog.Register("b", &d->dataset->table, d->kdtree.get(), bad);
  EXPECT_EQ(mismatch.code(), util::StatusCode::kInvalidArgument);
  // Unknown dataset.
  EXPECT_EQ(catalog.GetOrTrain("nope").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_TRUE(catalog.Contains("a"));
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(ModelCatalogTest, LazyTrainingHappensExactlyOnce) {
  TestData* d = SharedData();
  ModelCatalog catalog;
  ASSERT_TRUE(
      catalog.Register("ds", &d->dataset->table, d->kdtree.get(), TestOptions()).ok());

  // Before training: snapshot has no model.
  auto before = catalog.Get("ds");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->model, nullptr);

  auto first = catalog.GetOrTrain("ds");
  ASSERT_TRUE(first.ok());
  ASSERT_NE(first->model, nullptr);
  EXPECT_GT(first->model->num_prototypes(), 0);
  EXPECT_TRUE(first->model->frozen());
  EXPECT_GT(first->report.pairs_used, 0);
  EXPECT_GT(first->vigilance, 0.0);

  auto second = catalog.GetOrTrain("ds");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->model.get(), second->model.get());  // Same trained model.
}

TEST(ModelCatalogTest, ConcurrentGetOrTrainYieldsOneModel) {
  TestData* d = SharedData();
  ModelCatalog catalog;
  CatalogOptions opts = TestOptions();
  opts.trainer.max_pairs = 600;  // Keep the race window short.
  ASSERT_TRUE(
      catalog.Register("ds", &d->dataset->table, d->kdtree.get(), opts).ok());

  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const core::LlmModel>> models(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&catalog, &models, i] {
      auto snap = catalog.GetOrTrain("ds");
      ASSERT_TRUE(snap.ok());
      models[static_cast<size_t>(i)] = snap->model;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(models[0].get(), models[static_cast<size_t>(i)].get());
  }
}

TEST(ModelCatalogTest, WarmStartSkipsTrainingAndMatchesPredictions) {
  TestData* d = SharedData();
  const std::string path = testing::TempDir() + "/qreg_warm_start_model.txt";
  std::remove(path.c_str());

  CatalogOptions opts = TestOptions();
  opts.warm_start_path = path;

  ModelCatalog cold;
  ASSERT_TRUE(cold.Register("ds", &d->dataset->table, d->kdtree.get(), opts).ok());
  auto trained = cold.GetOrTrain("ds");
  ASSERT_TRUE(trained.ok());
  EXPECT_FALSE(trained->warm_started);
  EXPECT_GT(trained->report.pairs_used, 0);

  ModelCatalog warm;
  ASSERT_TRUE(warm.Register("ds", &d->dataset->table, d->kdtree.get(), opts).ok());
  auto loaded = warm.GetOrTrain("ds");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->warm_started);
  EXPECT_EQ(loaded->report.pairs_used, 0);
  ASSERT_NE(loaded->model, nullptr);
  EXPECT_EQ(loaded->model->num_prototypes(), trained->model->num_prototypes());

  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(2, 0.1, 0.9, 0.12, 0.02, 11));
  for (int i = 0; i < 20; ++i) {
    query::Query q = gen.Next();
    auto a = trained->model->PredictMean(q);
    auto b = loaded->model->PredictMean(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(*a, *b);
  }
  std::remove(path.c_str());
}

// ---------- AnswerCache ----------

TEST(AnswerCacheTest, ExactRepeatAlwaysHits) {
  AnswerCacheConfig cfg;
  cfg.delta_min = 1.0;  // Only identical balls admissible.
  AnswerCache cache(cfg);
  CachedAnswer a;
  a.q = query::Query({0.5, 0.5}, 0.1);
  a.mean = 42.0;
  cache.Insert("ds/Q1", a);

  CachedAnswer out;
  EXPECT_TRUE(cache.Lookup("ds/Q1", query::Query({0.5, 0.5}, 0.1), &out));
  EXPECT_DOUBLE_EQ(out.mean, 42.0);
  EXPECT_DOUBLE_EQ(out.delta, 1.0);
  // Same query, different shard: miss.
  EXPECT_FALSE(cache.Lookup("ds/Q2", query::Query({0.5, 0.5}, 0.1), nullptr));
}

TEST(AnswerCacheTest, DeltaAdmissionThreshold) {
  // δ(q, q') = 1 - max(||x - x'||, |θ - θ'|) / (θ + θ')   (Eq. 9).
  // With θ = θ' = 1: center offset e gives δ = 1 - e/2.
  AnswerCacheConfig cfg;
  cfg.delta_min = 0.9;
  AnswerCache cache(cfg);
  CachedAnswer a;
  a.q = query::Query({0.0, 0.0}, 1.0);
  a.mean = 7.0;
  cache.Insert("ds/Q1", a);

  CachedAnswer out;
  // e = 0.1 -> δ = 0.95 ≥ 0.9: hit.
  ASSERT_TRUE(cache.Lookup("ds/Q1", query::Query({0.1, 0.0}, 1.0), &out));
  EXPECT_NEAR(out.delta, 0.95, 1e-12);
  // e = 0.3 -> δ = 0.85 < 0.9: miss despite overlapping.
  EXPECT_FALSE(cache.Lookup("ds/Q1", query::Query({0.3, 0.0}, 1.0), nullptr));
  // Disjoint balls: miss regardless of δ_min.
  EXPECT_FALSE(cache.Lookup("ds/Q1", query::Query({5.0, 0.0}, 1.0), nullptr));

  AnswerCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 3);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
}

TEST(AnswerCacheTest, PrefersHighestOverlapEntry) {
  AnswerCacheConfig cfg;
  cfg.delta_min = 0.5;
  AnswerCache cache(cfg);
  CachedAnswer far;
  far.q = query::Query({0.4, 0.0}, 1.0);  // δ vs probe = 0.8
  far.mean = 1.0;
  CachedAnswer near;
  near.q = query::Query({0.1, 0.0}, 1.0);  // δ vs probe = 0.95
  near.mean = 2.0;
  cache.Insert("s", far);
  cache.Insert("s", near);

  CachedAnswer out;
  ASSERT_TRUE(cache.Lookup("s", query::Query({0.0, 0.0}, 1.0), &out));
  EXPECT_DOUBLE_EQ(out.mean, 2.0);
  EXPECT_NEAR(out.delta, 0.95, 1e-12);
}

TEST(AnswerCacheTest, LruEvictionAtCapacity) {
  AnswerCacheConfig cfg;
  cfg.capacity_per_shard = 2;
  cfg.delta_min = 1.0;
  AnswerCache cache(cfg);
  for (int i = 0; i < 3; ++i) {
    CachedAnswer a;
    a.q = query::Query({static_cast<double>(i), 0.0}, 0.1);
    a.mean = i;
    cache.Insert("s", a);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  // Entry 0 (least recently used) was evicted; 1 and 2 remain.
  EXPECT_FALSE(cache.Lookup("s", query::Query({0.0, 0.0}, 0.1), nullptr));
  EXPECT_TRUE(cache.Lookup("s", query::Query({1.0, 0.0}, 0.1), nullptr));
  EXPECT_TRUE(cache.Lookup("s", query::Query({2.0, 0.0}, 0.1), nullptr));
}

TEST(AnswerCacheTest, LookupTouchesLruOrder) {
  AnswerCacheConfig cfg;
  cfg.capacity_per_shard = 2;
  cfg.delta_min = 1.0;
  AnswerCache cache(cfg);
  CachedAnswer a;
  a.q = query::Query({0.0, 0.0}, 0.1);
  cache.Insert("s", a);
  CachedAnswer b;
  b.q = query::Query({1.0, 0.0}, 0.1);
  cache.Insert("s", b);
  // Touch a, then insert c: b (now LRU) should be evicted, a retained.
  ASSERT_TRUE(cache.Lookup("s", a.q, nullptr));
  CachedAnswer c;
  c.q = query::Query({2.0, 0.0}, 0.1);
  cache.Insert("s", c);
  EXPECT_TRUE(cache.Lookup("s", a.q, nullptr));
  EXPECT_FALSE(cache.Lookup("s", b.q, nullptr));
}

// ---------- AnswerCache: sharding + grid δ-lookup equivalence ----------
// (Random query stream comes from testsupport::RandomQueries.)

TEST(AnswerCacheShardingTest, ShardCountDoesNotChangeBehavior) {
  // Hit/miss/eviction per group only depends on that group's op sequence,
  // so any shard count must reproduce the single-shard baseline exactly.
  AnswerCacheConfig base;
  base.delta_min = 0.8;
  base.capacity_per_shard = 16;
  base.num_shards = 1;
  AnswerCacheConfig sharded = base;
  sharded.num_shards = 8;
  AnswerCache a(base), b(sharded);

  const std::vector<std::string> groups = {"ds1/Q1", "ds1/Q2", "ds2/Q1"};
  const std::vector<query::Query> qs = RandomQueries(300, 71);
  for (size_t i = 0; i < qs.size(); ++i) {
    const std::string& g = groups[i % groups.size()];
    CachedAnswer out_a, out_b;
    const bool hit_a = a.Lookup(g, qs[i], &out_a);
    const bool hit_b = b.Lookup(g, qs[i], &out_b);
    ASSERT_EQ(hit_a, hit_b) << "query " << i;
    if (hit_a) {
      EXPECT_EQ(out_a.mean, out_b.mean) << "query " << i;
      EXPECT_EQ(out_a.delta, out_b.delta) << "query " << i;
    } else {
      CachedAnswer ins;
      ins.q = qs[i];
      ins.mean = static_cast<double>(i);
      a.Insert(g, ins);
      b.Insert(g, ins);
    }
  }
  EXPECT_EQ(a.size(), b.size());
  const AnswerCacheStats sa = a.stats(), sb = b.stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.inserts, sb.inserts);
  EXPECT_EQ(sa.evictions, sb.evictions);
}

// Regression for the Lookup() → LookupImpl() split (the mutex_reader_baseline
// branch now wraps the shared probe body in the shard mutex instead of
// conditionally engaging a lock around it): both reader modes must produce
// identical hits, payloads, and stats on an identical op sequence.
TEST(AnswerCacheShardingTest, MutexReaderBaselineMatchesLockFreeReader) {
  AnswerCacheConfig lock_free;
  lock_free.delta_min = 0.8;
  lock_free.capacity_per_shard = 16;
  lock_free.num_shards = 4;
  AnswerCacheConfig baseline = lock_free;
  baseline.mutex_reader_baseline = true;
  AnswerCache a(lock_free), b(baseline);

  const std::vector<std::string> groups = {"ds1/Q1", "ds1/Q2", "ds2/Q1"};
  const std::vector<query::Query> qs = RandomQueries(300, 97);
  for (size_t i = 0; i < qs.size(); ++i) {
    const std::string& g = groups[i % groups.size()];
    CachedAnswer out_a, out_b;
    const bool hit_a = a.Lookup(g, qs[i], &out_a);
    const bool hit_b = b.Lookup(g, qs[i], &out_b);
    ASSERT_EQ(hit_a, hit_b) << "query " << i;
    if (hit_a) {
      EXPECT_EQ(out_a.mean, out_b.mean) << "query " << i;
      EXPECT_EQ(out_a.delta, out_b.delta) << "query " << i;
    } else {
      CachedAnswer ins;
      ins.q = qs[i];
      ins.mean = static_cast<double>(i);
      a.Insert(g, ins);
      b.Insert(g, ins);
    }
  }
  EXPECT_EQ(a.size(), b.size());
  const AnswerCacheStats sa = a.stats(), sb = b.stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.inserts, sb.inserts);
  EXPECT_EQ(sa.evictions, sb.evictions);
}

TEST(AnswerCacheGridTest, GridLookupMatchesLinearProbeAdmissions) {
  // The satellite contract: the spatial-grid δ-lookup admits exactly the
  // entries the linear probe admits, with the same best-δ choice.
  AnswerCacheConfig linear_cfg;
  linear_cfg.delta_min = 0.85;
  linear_cfg.capacity_per_shard = 4096;  // No evictions: pure probe test.
  linear_cfg.enable_grid = false;
  AnswerCacheConfig grid_cfg = linear_cfg;
  grid_cfg.enable_grid = true;
  AnswerCache linear(linear_cfg), grid(grid_cfg);

  for (const query::Query& q : RandomQueries(500, 83)) {
    CachedAnswer ins;
    ins.q = q;
    ins.mean = q.center[0] + 10.0 * q.center[1];
    linear.Insert("g", ins);
    grid.Insert("g", ins);
  }
  int64_t hits = 0;
  for (const query::Query& probe : RandomQueries(800, 97)) {
    CachedAnswer want, got;
    const bool hit_linear = linear.Lookup("g", probe, &want);
    const bool hit_grid = grid.Lookup("g", probe, &got);
    ASSERT_EQ(hit_linear, hit_grid) << probe.ToString();
    if (hit_linear) {
      ++hits;
      EXPECT_EQ(want.mean, got.mean) << probe.ToString();
      EXPECT_EQ(want.delta, got.delta) << probe.ToString();
    }
  }
  EXPECT_GT(hits, 20) << "probe workload produced too few hits to be meaningful";
  // The big group (500 entries) must actually exercise the grid path.
  EXPECT_GT(grid.stats().grid_probes, 0);
  EXPECT_EQ(linear.stats().grid_probes, 0);
}

TEST(AnswerCacheGridTest, EvictionKeepsGridConsistent) {
  AnswerCacheConfig cfg;
  cfg.delta_min = 1.0;  // Exact repeats only: hits pinpoint single entries.
  cfg.capacity_per_shard = 8;
  cfg.enable_grid = true;
  AnswerCache cache(cfg);
  const std::vector<query::Query> qs = RandomQueries(64, 131);
  for (const auto& q : qs) {
    CachedAnswer ins;
    ins.q = q;
    cache.Insert("g", ins);
  }
  EXPECT_EQ(cache.size(), 8u);
  // The 8 most recent remain findable; evicted ones must not resurface
  // through stale grid references.
  for (size_t i = 0; i < qs.size(); ++i) {
    const bool expect_hit = i + 8 >= qs.size();
    EXPECT_EQ(cache.Lookup("g", qs[i], nullptr), expect_hit) << i;
  }
}

TEST(AnswerCacheGridTest, EvictedOutlierThetaDoesNotPinProbeRadius) {
  AnswerCacheConfig cfg;
  cfg.delta_min = 0.9;
  cfg.capacity_per_shard = 16;
  cfg.enable_grid = true;
  AnswerCache cache(cfg);

  // A normal first insert fixes a small cell edge; a huge-θ outlier then
  // inflates θ_max so every probe's cell fan-out exceeds max_grid_cells.
  CachedAnswer normal0;
  normal0.q = query::Query({0.5, 0.5}, 0.1);
  cache.Insert("g", normal0);
  CachedAnswer outlier;
  outlier.q = query::Query({0.5, 0.5}, 50.0);
  cache.Insert("g", outlier);
  // 16 more inserts evict both of them (LRU from the back).
  for (int i = 0; i < 16; ++i) {
    CachedAnswer a;
    a.q = query::Query({0.1 + 0.04 * i, 0.5}, 0.1);
    cache.Insert("g", a);
  }
  EXPECT_EQ(cache.size(), 16u);
  // With θ_max re-derived after the outlier's eviction, lookups take the
  // grid path again instead of falling back to the linear probe forever.
  CachedAnswer out;
  ASSERT_TRUE(cache.Lookup("g", query::Query({0.3, 0.5}, 0.1), &out));
  EXPECT_GT(cache.stats().grid_probes, 0);
}

// ---------- AnswerCache: wait-free reads under concurrent writes ----------

// Readers hammer Lookup (no mutex on that path: one atomic snapshot load)
// while a writer interleaves Insert and EraseGroupsWithPrefix. Every hit
// must return an internally consistent entry — the payload invariant ties
// mean, pieces and the query center together, so a torn read would trip it
// — and the monotone counters must stay exact. Run under TSan by the CI
// concurrency job (suite name matches its ^AnswerCache filter).
TEST(AnswerCacheConcurrencyTest, LookupsNeverTornDuringInsertAndErase) {
  AnswerCacheConfig cfg;
  cfg.delta_min = 0.95;
  cfg.capacity_per_shard = 64;
  cfg.num_shards = 4;
  AnswerCache cache(cfg);

  // Payload invariant: mean encodes the center, pieces' size and intercept
  // re-encode the mean.
  auto make_answer = [](double cx, int pieces) {
    CachedAnswer a;
    a.q = query::Query({cx, 0.5}, 0.1);
    a.mean = cx * 1000.0 + pieces;
    a.pieces.resize(static_cast<size_t>(pieces));
    for (auto& piece : a.pieces) piece.intercept = a.mean;
    return a;
  };
  auto check_consistent = [](const CachedAnswer& a) {
    const double want_mean =
        a.q.center[0] * 1000.0 + static_cast<double>(a.pieces.size());
    if (a.mean != want_mean) return false;
    for (const auto& piece : a.pieces) {
      if (piece.intercept != a.mean) return false;
    }
    return true;
  };

  // Seed both groups so readers have hits from the start.
  for (int i = 0; i < 32; ++i) {
    cache.Insert("ds/g0/Q1", make_answer(0.01 * i, 1 + (i % 4)));
    cache.Insert("ds/g0/Q2", make_answer(0.01 * i, 1 + (i % 4)));
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reader_hits{0};
  std::atomic<int64_t> reader_lookups{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&cache, &stop, &reader_hits, &reader_lookups, &torn,
                          &check_consistent, r] {
      util::Rng rng(static_cast<uint64_t>(1000 + r));
      while (!stop.load(std::memory_order_acquire)) {
        const std::string group = (r % 2 == 0) ? "ds/g0/Q1" : "ds/g0/Q2";
        const query::Query probe({0.01 * rng.UniformInt(32), 0.5}, 0.1);
        CachedAnswer out;
        reader_lookups.fetch_add(1, std::memory_order_relaxed);
        if (cache.Lookup(group, probe, &out)) {
          reader_hits.fetch_add(1, std::memory_order_relaxed);
          if (!check_consistent(out)) torn.store(true, std::memory_order_release);
        }
      }
    });
  }

  // Writer: replacement inserts, fresh inserts (forcing evictions), and
  // periodic prefix erases racing the readers.
  for (int round = 0; round < 60; ++round) {
    for (int i = 0; i < 32; ++i) {
      cache.Insert("ds/g0/Q1", make_answer(0.01 * i, 1 + ((i + round) % 4)));
    }
    for (int i = 0; i < 80; ++i) {
      cache.Insert("ds/g0/Q2", make_answer(0.01 * (i % 40) + round * 1e-4,
                                           1 + ((i + round) % 3)));
    }
    if (round % 10 == 9) {
      cache.EraseGroupsWithPrefix("ds/g0/Q2");
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(torn.load()) << "a lookup observed a torn cache entry";
  EXPECT_GT(reader_hits.load(), 0);

  // Counters are exact: every lookup is classified as exactly one hit or
  // miss, with no drops under the concurrent interleaving.
  const AnswerCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_GE(stats.lookups, reader_lookups.load());
  EXPECT_EQ(stats.hits, reader_hits.load());
}

// ---------- ModelCatalog sharding ----------

TEST(ModelCatalogShardingTest, ManyDatasetsAcrossShards) {
  TestData* d = SharedData();
  ModelCatalog catalog(/*num_shards=*/4);
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) names.push_back("ds" + std::to_string(i));
  for (const std::string& n : names) {
    ASSERT_TRUE(
        catalog.Register(n, &d->dataset->table, d->kdtree.get(), TestOptions()).ok());
  }
  EXPECT_EQ(catalog.size(), names.size());
  std::vector<std::string> sorted_names = names;
  std::sort(sorted_names.begin(), sorted_names.end());
  EXPECT_EQ(catalog.Names(), sorted_names);  // Sorted, shard layout invisible.
  for (const std::string& n : names) EXPECT_TRUE(catalog.Contains(n));
  EXPECT_FALSE(catalog.Contains("ds12"));
  // Get without training works across shards.
  for (const std::string& n : names) {
    auto snap = catalog.Get(n);
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(snap->model, nullptr);
    EXPECT_NE(snap->engine, nullptr);
  }
}

// ---------- QueryRouter: agreement with standalone layers ----------

TEST(QueryRouterTest, ExactPolicyMatchesExactEngineBitForBit) {
  TestData* d = SharedData();
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kExactOnly;
  cfg.enable_cache = false;
  QueryRouter router(SharedCatalog(), cfg);

  for (const Request& r : MixedWorkload(60, 21)) {
    auto got = router.Execute(r);
    if (r.kind == QueryKind::kQ1MeanValue) {
      auto want = d->engine->MeanValue(r.q);
      ASSERT_EQ(got.ok(), want.ok());
      if (!got.ok()) continue;  // Empty subspace propagates as NotFound.
      EXPECT_EQ(got->source, AnswerSource::kExact);
      EXPECT_EQ(got->mean, want->mean);  // Bit-for-bit.
    } else {
      auto want = d->engine->Regression(r.q);
      ASSERT_EQ(got.ok(), want.ok());
      if (!got.ok()) continue;
      ASSERT_EQ(got->pieces.size(), 1u);
      EXPECT_EQ(got->pieces[0].intercept, want->intercept);
      EXPECT_EQ(got->pieces[0].slope, want->slope);
    }
  }
}

TEST(QueryRouterTest, ModelPolicyMatchesLlmModelBitForBit) {
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kModelOnly;
  cfg.enable_cache = false;
  QueryRouter router(SharedCatalog(), cfg);
  auto snap = SharedCatalog()->GetOrTrain("r1");
  ASSERT_TRUE(snap.ok());

  for (const Request& r : MixedWorkload(60, 22)) {
    auto got = router.Execute(r);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->source, AnswerSource::kModel);
    if (r.kind == QueryKind::kQ1MeanValue) {
      auto want = snap->model->PredictMean(r.q);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(got->mean, *want);  // Bit-for-bit.
    } else {
      auto want = snap->model->RegressionQuery(r.q);
      ASSERT_TRUE(want.ok());
      ASSERT_EQ(got->pieces.size(), want->size());
      for (size_t i = 0; i < want->size(); ++i) {
        EXPECT_EQ(got->pieces[i].intercept, (*want)[i].intercept);
        EXPECT_EQ(got->pieces[i].slope, (*want)[i].slope);
        EXPECT_EQ(got->pieces[i].weight, (*want)[i].weight);
        EXPECT_EQ(got->pieces[i].prototype_id, (*want)[i].prototype_id);
      }
    }
  }
}

TEST(QueryRouterTest, ExactOnlyPolicyNeverTriggersTraining) {
  TestData* d = SharedData();
  ModelCatalog catalog;
  ASSERT_TRUE(
      catalog.Register("ds", &d->dataset->table, d->kdtree.get(), TestOptions()).ok());
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kExactOnly;
  cfg.enable_cache = false;
  QueryRouter router(&catalog, cfg);

  auto got = router.Execute(Request::Q1("ds", query::Query({0.5, 0.5}, 0.12)));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->source, AnswerSource::kExact);
  // The catalog was never asked to train.
  auto snap = catalog.Get("ds");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->model, nullptr);
}

TEST(QueryRouterTest, WrongDimensionQueryIsRejected) {
  QueryRouter router(SharedCatalog(), RouterConfig());
  auto got = router.Execute(
      Request::Q1("r1", query::Query({0.5, 0.5, 0.5}, 0.1)));  // 3-d vs 2-d.
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(router.Stats().errors, 1);
}

TEST(QueryRouterTest, HybridRoutesByTrainedRegion) {
  TestData* d = SharedData();
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kHybrid;
  cfg.enable_cache = false;
  QueryRouter router(SharedCatalog(), cfg);

  // Inside the trained region: answered by the model.
  auto in = router.Execute(Request::Q1("r1", query::Query({0.5, 0.5}, 0.12)));
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->source, AnswerSource::kModel);

  // Far outside [0,1]^2 but with a ball that still reaches data: the
  // vigilance test fails and the router falls back to the exact engine.
  query::Query far({1.5, 1.5}, 1.0);
  auto out = router.Execute(Request::Q1("r1", far));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->source, AnswerSource::kExact);
  EXPECT_EQ(out->mean, d->engine->MeanValue(far)->mean);

  ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.total_queries, 2);
  EXPECT_EQ(stats.model_answers, 1);
  EXPECT_EQ(stats.exact_fallbacks, 1);
}

TEST(QueryRouterTest, CacheHitOnRepeatedQuery) {
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kModelOnly;
  cfg.enable_cache = true;
  cfg.cache.delta_min = 0.95;
  QueryRouter router(SharedCatalog(), cfg);

  Request r = Request::Q1("r1", query::Query({0.4, 0.6}, 0.1));
  auto first = router.Execute(r);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->source, AnswerSource::kModel);
  auto second = router.Execute(r);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->source, AnswerSource::kCache);
  EXPECT_EQ(second->mean, first->mean);
  EXPECT_DOUBLE_EQ(second->cache_delta, 1.0);

  AnswerCacheStats cache_stats = router.CacheStats();
  EXPECT_EQ(cache_stats.hits, 1);
  EXPECT_EQ(router.Stats().cache_hits, 1);
}

// ---------- Overload shedding (graceful degradation) ----------

TEST(OverloadSheddingTest, SaturatedBatchShedsToCacheOrRejects) {
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kModelOnly;
  cfg.enable_cache = true;
  cfg.cache.delta_min = 1.0;  // Only exact repeats hit: deterministic.
  cfg.num_threads = 1;
  cfg.queue_capacity = 1;
  cfg.overload = OverloadPolicy::kShed;
  QueryRouter router(SharedCatalog(), cfg);

  // Warm the cache inline (single Execute never touches the pool).
  Request warm = Request::Q1("r1", query::Query({0.5, 0.5}, 0.1));
  ASSERT_TRUE(router.Execute(warm).ok());

  // Saturate: gate the lone worker, then fill the 1-slot queue.
  std::mutex gate;
  gate.lock();
  ThreadPool* pool = router.pool_for_testing();
  pool->Submit([&gate] { gate.lock(); gate.unlock(); });
  while (pool->queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pool->TrySubmit([] {}));

  // Every batch slot now fails TrySubmit: the cached query is served from
  // the δ-cache, the cold one is rejected with the typed status.
  Request cold = Request::Q1("r1", query::Query({0.2, 0.8}, 0.1));
  auto results = router.ExecuteBatch({warm, cold});
  gate.unlock();

  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(results[0]->source, AnswerSource::kCache);
  EXPECT_EQ(results[0]->mean, router.Execute(warm)->mean);
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), util::StatusCode::kResourceExhausted);
  // The shed status is the contract the wire client's retry layer keys on:
  // overload is transient, so a backoff-and-retry is the right response —
  // unlike a bad query or an expired deadline, which must never be retried.
  EXPECT_TRUE(util::IsRetryable(results[1].status().code()));
  EXPECT_FALSE(util::IsRetryable(util::StatusCode::kInvalidArgument));
  EXPECT_FALSE(util::IsRetryable(util::StatusCode::kDeadlineExceeded));

  ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.shed, 2);
  EXPECT_EQ(stats.errors, 1);
}

TEST(OverloadSheddingTest, UnsaturatedBatchNeverSheds) {
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kModelOnly;
  cfg.enable_cache = false;
  cfg.num_threads = 2;
  cfg.queue_capacity = 256;
  cfg.overload = OverloadPolicy::kShed;
  QueryRouter router(SharedCatalog(), cfg);

  auto results = router.ExecuteBatch(MixedWorkload(100, 41));
  for (const auto& r : results) ASSERT_TRUE(r.ok());
  EXPECT_EQ(router.Stats().shed, 0);
}

// ---------- Router-driven parallel exact scans ----------

TEST(QueryRouterTest, ExactParallelismMatchesStandaloneEngine) {
  TestData* d = SharedData();
  ModelCatalog catalog;
  ASSERT_TRUE(
      catalog.Register("ds", &d->dataset->table, d->kdtree.get(), TestOptions()).ok());
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kExactOnly;
  cfg.enable_cache = false;
  cfg.exact_threads = 4;  // Partitioned RadiusVisit on a router-owned pool.
  QueryRouter router(&catalog, cfg);

  int64_t answered = 0;
  for (const Request& r : MixedWorkload(40, 67)) {
    Request req = r;
    req.dataset = "ds";
    auto got = router.Execute(req);
    if (req.kind == QueryKind::kQ1MeanValue) {
      auto want = d->engine->MeanValue(req.q);
      ASSERT_EQ(got.ok(), want.ok());
      if (!got.ok()) continue;
      ++answered;
      EXPECT_EQ(got->source, AnswerSource::kExact);
      // Partitioned merge reassociates the sum: equal up to float tolerance,
      // with exact tuple counts.
      EXPECT_NEAR(got->mean, want->mean,
                  1e-9 * std::max(1.0, std::fabs(want->mean)));
    } else {
      auto want = d->engine->Regression(req.q);
      ASSERT_EQ(got.ok(), want.ok());
      if (!got.ok()) continue;
      ++answered;
      ASSERT_EQ(got->pieces.size(), 1u);
      EXPECT_NEAR(got->pieces[0].intercept, want->intercept,
                  1e-8 * std::max(1.0, std::fabs(want->intercept)));
    }
  }
  EXPECT_GT(answered, 20);
}

// ---------- Concurrency: batched == sequential, bit for bit ----------

TEST(QueryRouterTest, ParallelBatchMatchesSequentialBitForBit) {
  RouterConfig seq_cfg;
  seq_cfg.policy = RoutePolicy::kHybrid;
  seq_cfg.enable_cache = false;  // Cache admission is order-dependent.
  seq_cfg.num_threads = 0;
  QueryRouter sequential(SharedCatalog(), seq_cfg);

  RouterConfig par_cfg = seq_cfg;
  par_cfg.num_threads = 4;
  par_cfg.queue_capacity = 32;
  // Block on the full queue: every request must really execute for the
  // bit-for-bit comparison (shedding is covered by OverloadShedding tests).
  par_cfg.overload = OverloadPolicy::kBlock;
  QueryRouter parallel(SharedCatalog(), par_cfg);

  const std::vector<Request> batch = MixedWorkload(200, 31, 0.05, 0.95);
  std::vector<ExecResult> want;
  want.reserve(batch.size());
  for (const Request& r : batch) want.push_back(sequential.Execute(r));
  const std::vector<ExecResult> got = parallel.ExecuteBatch(batch);

  ASSERT_EQ(got.size(), want.size());
  int64_t q1 = 0, q2 = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].ok(), want[i].ok()) << "request " << i;
    if (!got[i].ok()) {
      EXPECT_EQ(got[i].status().code(), want[i].status().code());
      continue;
    }
    EXPECT_EQ(got[i]->source, want[i]->source) << "request " << i;
    if (batch[i].kind == QueryKind::kQ1MeanValue) {
      ++q1;
      EXPECT_EQ(got[i]->mean, want[i]->mean) << "request " << i;
    } else {
      ++q2;
      ASSERT_EQ(got[i]->pieces.size(), want[i]->pieces.size()) << "request " << i;
      for (size_t p = 0; p < got[i]->pieces.size(); ++p) {
        EXPECT_EQ(got[i]->pieces[p].intercept, want[i]->pieces[p].intercept);
        EXPECT_EQ(got[i]->pieces[p].slope, want[i]->pieces[p].slope);
        EXPECT_EQ(got[i]->pieces[p].weight, want[i]->pieces[p].weight);
      }
    }
  }
  EXPECT_GT(q1, 0);
  EXPECT_GT(q2, 0);
  EXPECT_EQ(parallel.Stats().total_queries, static_cast<int64_t>(batch.size()));
}

// ---------- Cache accuracy: δ-admission respects the error bound ----------

TEST(AnswerCacheAccuracyTest, DeltaAdmissionKeepsFvuWithinBound) {
  // Serve a clustered workload with exact execution + caching. Every answer
  // the cache substitutes (δ ≥ δ_min) is compared against the true exact
  // answer for *that* query; the FVU of the substituted answers must stay
  // within the configured bound.
  constexpr double kDeltaMin = 0.95;
  constexpr double kFvuBound = 0.05;

  TestData* d = SharedData();
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kExactOnly;  // Isolate cache-induced error.
  cfg.enable_cache = true;
  cfg.cache.delta_min = kDeltaMin;
  cfg.cache.capacity_per_shard = 2048;
  QueryRouter router(SharedCatalog(), cfg);

  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(2, 0.40, 0.60, 0.12, 0.01, 17));
  eval::FvuAccumulator fvu;
  int64_t hits = 0;
  for (int i = 0; i < 600; ++i) {
    query::Query q = gen.Next();
    auto got = router.Execute(Request::Q1("r1", q));
    if (!got.ok()) continue;
    if (got->source != AnswerSource::kCache) continue;
    ++hits;
    EXPECT_GE(got->cache_delta, kDeltaMin);
    auto exact = d->engine->MeanValue(q);
    ASSERT_TRUE(exact.ok());
    fvu.Add(exact->mean, got->mean);
  }
  ASSERT_GT(hits, 10) << "clustered workload produced too few cache hits";
  EXPECT_LE(fvu.Fvu(), kFvuBound)
      << "δ-admitted answers drifted beyond the accuracy bound; hits=" << hits;
}

// ---------- ServiceStats ----------

TEST(ServiceStatsTest, SnapshotAggregatesCounters) {
  ServiceStats stats(/*latency_window=*/8);
  for (int i = 0; i < 10; ++i) {
    QueryOutcome o;
    o.latency_nanos = 1000000;
    o.ok = true;
    o.cache_hit = i % 2 == 0;
    o.used_exact = i % 2 == 1;
    stats.Record(o);
  }
  ServiceSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.total_queries, 10);
  EXPECT_EQ(s.cache_hits, 5);
  EXPECT_EQ(s.exact_fallbacks, 5);
  EXPECT_EQ(s.errors, 0);
  EXPECT_DOUBLE_EQ(s.CacheHitRate(), 0.5);
  EXPECT_DOUBLE_EQ(s.ExactFallbackRate(), 0.5);
  EXPECT_NEAR(s.p50_ms, 1.0, 1e-9);
  EXPECT_GT(s.qps, 0.0);

  stats.Reset();
  EXPECT_EQ(stats.Snapshot().total_queries, 0);
}

TEST(ServiceStatsTest, LifecycleCountersRoundTripThroughSnapshot) {
  ServiceStats stats;

  QueryOutcome deadline;
  deadline.ok = false;
  deadline.deadline_exceeded = true;
  deadline.train_aborted = true;  // The trip hit the lazy-training path.
  stats.Record(deadline);

  QueryOutcome cancelled;
  cancelled.ok = false;
  cancelled.cancelled = true;
  stats.Record(cancelled);

  QueryOutcome degraded;  // Model fallback under deadline pressure: still ok.
  degraded.ok = true;
  degraded.degraded = true;
  stats.Record(degraded);

  stats.RecordRetrain();
  stats.RecordRetrain();

  ServiceSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.total_queries, 3);
  EXPECT_EQ(s.errors, 2);
  EXPECT_EQ(s.deadline_exceeded, 1);
  EXPECT_EQ(s.cancelled, 1);
  EXPECT_EQ(s.degraded, 1);
  EXPECT_EQ(s.model_answers, 1);  // The degraded answer came from the model.
  EXPECT_EQ(s.retrains, 2);
  EXPECT_EQ(s.train_aborted, 1);

  stats.Reset();
  ServiceSnapshot zero = stats.Snapshot();
  EXPECT_EQ(zero.deadline_exceeded, 0);
  EXPECT_EQ(zero.cancelled, 0);
  EXPECT_EQ(zero.degraded, 0);
  EXPECT_EQ(zero.retrains, 0);
  EXPECT_EQ(zero.train_aborted, 0);
}

}  // namespace
}  // namespace service
}  // namespace qreg
