// Golden wire-corpus regression test (DESIGN.md §12). tests/corpus/wire/
// holds one binary file per valid message kind and one per malformed class;
// this test pins (a) the encoders — each valid file must be bit-for-bit what
// today's encoder produces for its canonical message — and (b) the decoder —
// every file, fed whole *and* byte-at-a-time, must yield the same pinned
// outcome (frame / kNeedMore / typed poison). An unintentional wire format
// change fails (a); a decoder behavior change fails (b).
//
// Regenerate after an *intentional* format change:
//   ./net_corpus_test --regen
// which rewrites every corpus file from the current encoders and then runs
// the battery against the fresh files (so a bad regen still fails loudly).

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/status.h"

namespace qreg {
namespace net {
namespace {

// Set by main() from --regen.
bool g_regen = false;

#ifndef QREG_CORPUS_DIR
#error "QREG_CORPUS_DIR must point at tests/corpus/wire"
#endif

std::string CorpusPath(const std::string& name) {
  return std::string(QREG_CORPUS_DIR) + "/" + name;
}

// ------------------------------------------------------- canonical messages --

WireRequest CanonicalQ1() {
  return WireRequest::Q1("r1", query::Query({0.4, 0.6}, 0.12));
}

WireRequest CanonicalQ2WithDeadline() {
  WireRequest wire = WireRequest::Q2("r1", query::Query({0.25, 0.75}, 0.2));
  wire.deadline_budget_nanos = 500'000'000;  // 500ms budget.
  return wire;
}

service::Answer CanonicalFullAnswer() {
  service::Answer answer;
  answer.kind = service::QueryKind::kQ2Regression;
  answer.source = service::AnswerSource::kModel;
  answer.mean = 3.25;
  core::LocalLinearModel p0;
  p0.intercept = 1.5;
  p0.slope = {0.25, -0.125};
  p0.prototype_id = 7;
  p0.weight = 0.75;
  core::LocalLinearModel p1;
  p1.intercept = -2.0;
  p1.slope = {0.0625, 8.0};
  p1.prototype_id = 11;
  p1.weight = 0.25;
  answer.pieces = {p0, p1};
  answer.cache_delta = 0.015625;
  answer.used_fallback = true;
  answer.exec.tuples_examined = 4096;
  answer.exec.tuples_matched = 512;
  answer.exec.nanos = 12345;  // Fixed: corpus answers are frozen, not timed.
  answer.exec.chunks_completed = 7;
  answer.exec.chunks_total = 8;
  return answer;
}

util::Status CanonicalErrorStatus() {
  return util::Status::ResourceExhausted("router saturated: queue full");
}

// ------------------------------------------------------------ corpus table --

/// What the decoder must do with a corpus file.
enum class Outcome {
  kFrame,        ///< One complete frame, then kNeedMore on an empty buffer.
  kNeedMore,     ///< Truncated input: no frame, no poison, bytes stay buffered.
  kPoisonArg,    ///< Poisoned with kInvalidArgument (garbage / corruption).
  kPoisonVer,    ///< Poisoned with kNotImplemented (version mismatch).
  kPoisonRange,  ///< Poisoned with kOutOfRange (hostile payload_len).
};

struct CorpusEntry {
  const char* file;
  Outcome outcome;
  std::vector<uint8_t> (*build)();
};

std::vector<uint8_t> BuildRequestQ1() {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kRequest, 1, EncodeRequest(CanonicalQ1()));
  return out;
}

std::vector<uint8_t> BuildRequestQ2Deadline() {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kRequest, 2,
              EncodeRequest(CanonicalQ2WithDeadline()));
  return out;
}

std::vector<uint8_t> BuildAnswerFull() {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kAnswer, 3, EncodeAnswer(CanonicalFullAnswer()));
  return out;
}

std::vector<uint8_t> BuildAnswerMinimal() {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kAnswer, 4, EncodeAnswer(service::Answer()));
  return out;
}

std::vector<uint8_t> BuildErrorStatus() {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kError, 5, EncodeStatus(CanonicalErrorStatus()));
  return out;
}

std::vector<uint8_t> BuildPing() {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kPing, 6, nullptr, 0);
  return out;
}

std::vector<uint8_t> BuildPong() {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kPong, 7, nullptr, 0);
  return out;
}

// --- malformed classes, each derived deterministically from a valid frame ---

std::vector<uint8_t> BuildTruncatedHeader() {
  std::vector<uint8_t> out = BuildRequestQ1();
  out.resize(10);  // Mid-header (valid magic + version prefix).
  return out;
}

std::vector<uint8_t> BuildTruncatedPayload() {
  std::vector<uint8_t> out = BuildRequestQ1();
  out.resize(kHeaderBytes + (out.size() - kHeaderBytes) / 2);
  return out;
}

std::vector<uint8_t> BuildBadMagic() {
  std::vector<uint8_t> out = BuildRequestQ1();
  out[0] ^= 0xFF;
  return out;
}

std::vector<uint8_t> BuildBadVersion() {
  std::vector<uint8_t> out = BuildRequestQ1();
  out[4] = 2;  // Version 2 of a version-1 protocol; rejected pre-checksum.
  return out;
}

std::vector<uint8_t> BuildOversizedPayload() {
  std::vector<uint8_t> out = BuildRequestQ1();
  const uint32_t hostile = kMaxPayloadBytes + 1;
  // payload_len lives at header bytes 16..19 (little-endian). The header
  // alone must trigger rejection — before checksumming, before buffering.
  for (int i = 0; i < 4; ++i) {
    out[16 + i] = static_cast<uint8_t>(hostile >> (8 * i));
  }
  return out;
}

std::vector<uint8_t> BuildChecksumFlip() {
  std::vector<uint8_t> out = BuildRequestQ1();
  out.back() ^= 0x01;  // One payload bit: FNV-1a must catch it.
  return out;
}

std::vector<uint8_t> BuildBadFieldOverrun() {
  // Frame-layer valid (checksum intact); the *payload*'s first field header
  // claims 100 bytes with only 4 present. The frame decodes; DecodeRequest
  // must reject it as typed kInvalidArgument.
  std::vector<uint8_t> payload = {0x01, 0x00,               // tag 1
                                  0x64, 0x00, 0x00, 0x00,   // len 100
                                  0xDE, 0xAD, 0xBE, 0xEF};  // ...4 bytes
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kRequest, 14, payload);
  return out;
}

std::vector<uint8_t> BuildUnknownKind() {
  // Type 9 does not exist. The frame layer is forward-compatible by design —
  // the frame decodes — and rejection happens at dispatch (the server
  // answers a protocol error and closes; net_socket_test pins that).
  std::vector<uint8_t> out;
  AppendFrame(&out, static_cast<FrameType>(9), 15, nullptr, 0);
  return out;
}

const CorpusEntry kCorpus[] = {
    {"request_q1.bin", Outcome::kFrame, BuildRequestQ1},
    {"request_q2_deadline.bin", Outcome::kFrame, BuildRequestQ2Deadline},
    {"answer_full.bin", Outcome::kFrame, BuildAnswerFull},
    {"answer_minimal.bin", Outcome::kFrame, BuildAnswerMinimal},
    {"error_status.bin", Outcome::kFrame, BuildErrorStatus},
    {"ping.bin", Outcome::kFrame, BuildPing},
    {"pong.bin", Outcome::kFrame, BuildPong},
    {"truncated_header.bin", Outcome::kNeedMore, BuildTruncatedHeader},
    {"truncated_payload.bin", Outcome::kNeedMore, BuildTruncatedPayload},
    {"bad_magic.bin", Outcome::kPoisonArg, BuildBadMagic},
    {"bad_version.bin", Outcome::kPoisonVer, BuildBadVersion},
    {"oversized_payload.bin", Outcome::kPoisonRange, BuildOversizedPayload},
    {"checksum_flip.bin", Outcome::kPoisonArg, BuildChecksumFlip},
    {"bad_field_overrun.bin", Outcome::kFrame, BuildBadFieldOverrun},
    {"unknown_kind.bin", Outcome::kFrame, BuildUnknownKind},
};

// ---------------------------------------------------------------- file I/O --

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  return out.good();
}

std::vector<uint8_t> MustLoad(const char* file) {
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(ReadFileBytes(CorpusPath(file), &bytes))
      << "missing corpus file " << CorpusPath(file)
      << " — run ./net_corpus_test --regen";
  return bytes;
}

// Runs the decoder over `bytes` delivered in `chunk`-byte slices and reports
// the terminal observation.
struct DecodeRun {
  FrameDecoder::Event last = FrameDecoder::Event::kNeedMore;
  std::vector<Frame> frames;
  util::Status error;
  size_t buffered = 0;
};

DecodeRun RunDecoder(const std::vector<uint8_t>& bytes, size_t chunk) {
  FrameDecoder decoder;
  DecodeRun run;
  for (size_t off = 0; off < bytes.size(); off += chunk) {
    decoder.Feed(bytes.data() + off, std::min(chunk, bytes.size() - off));
    Frame frame;
    for (;;) {
      run.last = decoder.Next(&frame);
      if (run.last != FrameDecoder::Event::kFrame) break;
      run.frames.push_back(std::move(frame));
      frame = Frame();
    }
    if (run.last == FrameDecoder::Event::kError) break;
  }
  if (bytes.empty()) run.last = decoder.Next(nullptr);
  run.error = decoder.error();
  run.buffered = decoder.buffered_bytes();
  return run;
}

void ExpectOutcome(const CorpusEntry& entry, const std::vector<uint8_t>& bytes,
                   size_t chunk) {
  SCOPED_TRACE(std::string(entry.file) + " chunk=" + std::to_string(chunk));
  const DecodeRun run = RunDecoder(bytes, chunk);
  switch (entry.outcome) {
    case Outcome::kFrame:
      EXPECT_EQ(run.last, FrameDecoder::Event::kNeedMore);
      ASSERT_EQ(run.frames.size(), 1u);
      EXPECT_TRUE(run.error.ok());
      EXPECT_EQ(run.buffered, 0u);  // A whole frame consumes its bytes.
      break;
    case Outcome::kNeedMore:
      EXPECT_EQ(run.last, FrameDecoder::Event::kNeedMore);
      EXPECT_EQ(run.frames.size(), 0u);
      EXPECT_TRUE(run.error.ok());
      EXPECT_EQ(run.buffered, bytes.size());  // Held for resumption.
      break;
    case Outcome::kPoisonArg:
      EXPECT_EQ(run.last, FrameDecoder::Event::kError);
      EXPECT_EQ(run.error.code(), util::StatusCode::kInvalidArgument);
      break;
    case Outcome::kPoisonVer:
      EXPECT_EQ(run.last, FrameDecoder::Event::kError);
      EXPECT_EQ(run.error.code(), util::StatusCode::kNotImplemented);
      break;
    case Outcome::kPoisonRange:
      EXPECT_EQ(run.last, FrameDecoder::Event::kError);
      EXPECT_EQ(run.error.code(), util::StatusCode::kOutOfRange);
      break;
  }
}

// ------------------------------------------------------------------- tests --

TEST(NetCorpusTest, GoldenFilesMatchCurrentEncoders) {
  // Bit-for-bit: an encoder change (field order, tags, varint width,
  // checksum) shows up as a byte diff against the committed corpus.
  for (const CorpusEntry& entry : kCorpus) {
    SCOPED_TRACE(entry.file);
    const std::vector<uint8_t> want = entry.build();
    std::vector<uint8_t> got;
    ASSERT_TRUE(ReadFileBytes(CorpusPath(entry.file), &got))
        << "missing corpus file " << CorpusPath(entry.file)
        << " — run ./net_corpus_test --regen";
    EXPECT_EQ(got, want) << "wire bytes drifted from the committed golden — "
                            "if the format change is intentional, rerun with "
                            "--regen and commit the diff";
  }
}

TEST(NetCorpusTest, DecoderOutcomesArePinnedWholeAndByteAtATime) {
  for (const CorpusEntry& entry : kCorpus) {
    const std::vector<uint8_t> bytes = MustLoad(entry.file);
    if (bytes.empty()) continue;  // MustLoad already failed the test.
    ExpectOutcome(entry, bytes, bytes.size());  // One shot.
    ExpectOutcome(entry, bytes, 1);             // Byte at a time.
    ExpectOutcome(entry, bytes, 7);             // Awkward stride.
  }
}

TEST(NetCorpusTest, ValidPayloadsRoundTrip) {
  {
    const std::vector<uint8_t> bytes = MustLoad("request_q1.bin");
    const DecodeRun run = RunDecoder(bytes, bytes.size());
    ASSERT_EQ(run.frames.size(), 1u);
    EXPECT_EQ(run.frames[0].header.type, FrameType::kRequest);
    EXPECT_EQ(run.frames[0].header.request_id, 1u);
    const util::Result<WireRequest> req = DecodeRequest(
        run.frames[0].payload.data(), run.frames[0].payload.size());
    ASSERT_TRUE(req.ok()) << req.status();
    EXPECT_EQ(req->dataset, "r1");
    EXPECT_EQ(req->kind, service::QueryKind::kQ1MeanValue);
    EXPECT_EQ(EncodeRequest(*req), run.frames[0].payload);  // Re-encode pins.
  }
  {
    const std::vector<uint8_t> bytes = MustLoad("request_q2_deadline.bin");
    const DecodeRun run = RunDecoder(bytes, bytes.size());
    ASSERT_EQ(run.frames.size(), 1u);
    const util::Result<WireRequest> req = DecodeRequest(
        run.frames[0].payload.data(), run.frames[0].payload.size());
    ASSERT_TRUE(req.ok()) << req.status();
    EXPECT_EQ(req->kind, service::QueryKind::kQ2Regression);
    EXPECT_EQ(req->deadline_budget_nanos, 500'000'000u);
    EXPECT_EQ(EncodeRequest(*req), run.frames[0].payload);
  }
  {
    const std::vector<uint8_t> bytes = MustLoad("answer_full.bin");
    const DecodeRun run = RunDecoder(bytes, bytes.size());
    ASSERT_EQ(run.frames.size(), 1u);
    const util::Result<service::Answer> ans = DecodeAnswer(
        run.frames[0].payload.data(), run.frames[0].payload.size());
    ASSERT_TRUE(ans.ok()) << ans.status();
    EXPECT_EQ(ans->pieces.size(), 2u);
    EXPECT_TRUE(ans->used_fallback);
    EXPECT_EQ(ans->exec.tuples_matched, 512);
    EXPECT_EQ(EncodeAnswer(*ans), run.frames[0].payload);
  }
  {
    const std::vector<uint8_t> bytes = MustLoad("error_status.bin");
    const DecodeRun run = RunDecoder(bytes, bytes.size());
    ASSERT_EQ(run.frames.size(), 1u);
    util::Status transported;
    ASSERT_TRUE(DecodeStatus(run.frames[0].payload.data(),
                             run.frames[0].payload.size(), &transported)
                    .ok());
    EXPECT_EQ(transported.code(), util::StatusCode::kResourceExhausted);
    EXPECT_EQ(transported.message(), CanonicalErrorStatus().message());
  }
}

TEST(NetCorpusTest, MalformedPayloadInsideValidFrameIsTypedAtDecodeRequest) {
  const std::vector<uint8_t> bytes = MustLoad("bad_field_overrun.bin");
  const DecodeRun run = RunDecoder(bytes, bytes.size());
  ASSERT_EQ(run.frames.size(), 1u);  // Frame layer: intact.
  const util::Result<WireRequest> req = DecodeRequest(
      run.frames[0].payload.data(), run.frames[0].payload.size());
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(NetCorpusTest, UnknownFrameKindPassesFrameLayer) {
  const std::vector<uint8_t> bytes = MustLoad("unknown_kind.bin");
  const DecodeRun run = RunDecoder(bytes, bytes.size());
  ASSERT_EQ(run.frames.size(), 1u);
  EXPECT_EQ(static_cast<uint16_t>(run.frames[0].header.type), 9u);
  EXPECT_EQ(run.frames[0].payload.size(), 0u);
}

TEST(NetCorpusTest, RegenRewritesEveryFile) {
  if (!g_regen) GTEST_SKIP() << "pass --regen to rewrite the corpus";
  for (const CorpusEntry& entry : kCorpus) {
    ASSERT_TRUE(WriteFileBytes(CorpusPath(entry.file), entry.build()))
        << "cannot write " << CorpusPath(entry.file);
  }
}

}  // namespace
}  // namespace net
}  // namespace qreg

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--regen") == 0) {
      qreg::net::g_regen = true;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  if (qreg::net::g_regen) {
    // Regenerate first, then run the full battery against the fresh files:
    // a regen that produces a self-inconsistent corpus still fails.
    for (const qreg::net::CorpusEntry& entry : qreg::net::kCorpus) {
      if (!qreg::net::WriteFileBytes(qreg::net::CorpusPath(entry.file),
                                     entry.build())) {
        fprintf(stderr, "cannot write %s\n",
                qreg::net::CorpusPath(entry.file).c_str());
        return 1;
      }
    }
    printf("regenerated %zu corpus files under %s\n",
           sizeof(qreg::net::kCorpus) / sizeof(qreg::net::kCorpus[0]),
           QREG_CORPUS_DIR);
  }
  return RUN_ALL_TESTS();
}
