// Fault-injection battery for net::Server on the deterministic SimBackend
// (DESIGN.md §12.6). Every scheduled fault — byte-at-a-time delivery, EAGAIN
// mid-header, ECONNRESET mid-pipelined-batch, short-write flushes, EOF
// mid-frame, reordered readiness — must leave the server in its *defined*
// state: decoders resume bit-for-bit, dispatched batches still execute,
// every arena buffer comes home (acquired() == released() after Shutdown),
// frame order survives partial flushes, and the net_* counters are exact,
// not approximate. CI runs this file across ASan and TSan with
// --gtest_repeat=3: a schedule that is not deterministic fails there.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/backend_sim.h"
#include "net/server.h"
#include "net/wire.h"
#include "test_support.h"

namespace qreg {
namespace net {
namespace {

using testsupport::MixedWorkload;
using testsupport::SharedCatalog;

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

service::RouterConfig RouterCfg(size_t threads) {
  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.enable_cache = false;  // Cache hits would change AnswerSource.
  cfg.num_threads = threads;
  return cfg;
}

ServerConfig SimConfig(SimTransport* transport) {
  ServerConfig cfg;
  cfg.backend = BackendKind::kSim;
  cfg.sim = transport;
  cfg.event_loops = 1;
  cfg.executor_threads = 1;
  return cfg;
}

WireRequest ToWire(const service::Request& request) {
  WireRequest wire;
  wire.dataset = request.dataset;
  wire.kind = request.kind;
  wire.q = request.q;
  return wire;
}

std::vector<uint8_t> RequestFrame(const WireRequest& wire, uint64_t id) {
  std::vector<uint8_t> out;
  AppendFrame(&out, FrameType::kRequest, id, EncodeRequest(wire));
  return out;
}

// Spins until `cond` holds or ~2s pass (counter flushes race the test
// thread; observe them with a bounded wait, never a bare sleep).
template <typename Cond>
bool WaitFor(Cond cond) {
  for (int i = 0; i < 2000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

// Drains the server's output stream on `conn` into `decoder` until `want`
// frames have been decoded (appended to *frames) or ~5s pass. Also sums the
// raw bytes taken into *bytes_taken when provided (exact-counter asserts).
bool CollectFrames(SimConn* conn, FrameDecoder* decoder, size_t want,
                   std::vector<Frame>* frames, size_t* bytes_taken = nullptr) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    Frame frame;
    while (frames->size() < want &&
           decoder->Next(&frame) == FrameDecoder::Event::kFrame) {
      frames->push_back(std::move(frame));
      frame = Frame();
    }
    if (frames->size() >= want) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    conn->WaitForFromServer(1, 50);
    const std::vector<uint8_t> bytes = conn->TakeFromServer();
    if (bytes_taken != nullptr) *bytes_taken += bytes.size();
    decoder->Feed(bytes.data(), bytes.size());
  }
}

// Decodes a kAnswer frame's payload and asserts it is bit-for-bit the
// reference router's answer for `request`.
void ExpectAnswerMatchesReference(const Frame& frame,
                                  const service::Request& request,
                                  service::QueryRouter* ref) {
  ASSERT_EQ(frame.header.type, FrameType::kAnswer);
  const util::Result<service::Answer> got =
      DecodeAnswer(frame.payload.data(), frame.payload.size());
  ASSERT_TRUE(got.ok()) << got.status();
  const service::ExecResult want = ref->Execute(request);
  ASSERT_TRUE(want.ok()) << want.status();
  EXPECT_EQ(got->kind, want->kind);
  EXPECT_EQ(got->source, want->source);
  EXPECT_TRUE(BitEq(got->mean, want->mean));
  EXPECT_EQ(got->exec.tuples_matched, want->exec.tuples_matched);
  ASSERT_EQ(got->pieces.size(), want->pieces.size());
  for (size_t p = 0; p < want->pieces.size(); ++p) {
    EXPECT_TRUE(BitEq(got->pieces[p].intercept, want->pieces[p].intercept));
    ASSERT_EQ(got->pieces[p].slope.size(), want->pieces[p].slope.size());
    for (size_t s = 0; s < want->pieces[p].slope.size(); ++s) {
      EXPECT_TRUE(BitEq(got->pieces[p].slope[s], want->pieces[p].slope[s]));
    }
  }
}

TEST(NetFaultTest, ByteAtATimeDeliveryDecodesBitForBit) {
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));
  Server server(&router, SimConfig(&transport));
  ASSERT_TRUE(server.Start().ok());

  // Every server-side read delivers exactly one byte, forever: the decoder
  // crosses every possible partial-header and partial-payload boundary.
  FaultSchedule schedule;
  schedule.default_read_cap = 1;
  SimConn* conn = transport.Connect(schedule);
  ASSERT_NE(conn, nullptr);

  const std::vector<service::Request> requests = MixedWorkload(6, /*seed=*/41);
  size_t sent_bytes = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::vector<uint8_t> frame = RequestFrame(ToWire(requests[i]), i + 1);
    sent_bytes += frame.size();
    conn->SendToServer(frame);
  }

  FrameDecoder decoder;
  std::vector<Frame> frames;
  size_t received_bytes = 0;
  ASSERT_TRUE(CollectFrames(conn, &decoder, requests.size(), &frames,
                            &received_bytes));
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(frames[i].header.request_id, i + 1);  // Pipeline order holds.
    ExpectAnswerMatchesReference(frames[i], requests[i], &ref);
  }

  // Counters are exact under the schedule, not merely monotone: the loop
  // read the stream one byte per call but bytes_in still totals precisely
  // what the client sent, and frames_decoded counts each frame once.
  EXPECT_TRUE(WaitFor([&] {
    const service::ServiceSnapshot snap = router.Stats();
    return snap.net_bytes_in == static_cast<int64_t>(sent_bytes) &&
           snap.net_frames_decoded ==
               static_cast<int64_t>(requests.size()) &&
           snap.net_bytes_out == static_cast<int64_t>(received_bytes);
  })) << "bytes_in=" << router.Stats().net_bytes_in << " want=" << sent_bytes;
  EXPECT_EQ(router.Stats().net_protocol_errors, 0);

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetFaultTest, EagainMidHeaderLeavesDecoderResumable) {
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));
  Server server(&router, SimConfig(&transport));
  ASSERT_TRUE(server.Start().ok());

  // 10 bytes land (mid-header: the header is 24), then the connection goes
  // spuriously ready twice — both reads EAGAIN with the partial header
  // buffered. The decoder must hold its 10 bytes and resume cleanly when
  // the rest arrives.
  FaultSchedule schedule;
  schedule.reads = {FaultSchedule::Deliver(10), FaultSchedule::WouldBlock(),
                    FaultSchedule::WouldBlock()};
  SimConn* conn = transport.Connect(schedule);
  ASSERT_NE(conn, nullptr);

  const std::vector<service::Request> requests = MixedWorkload(1, /*seed=*/43);
  conn->SendToServer(RequestFrame(ToWire(requests[0]), 7));

  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(CollectFrames(conn, &decoder, 1, &frames));
  EXPECT_EQ(frames[0].header.request_id, 7u);
  ExpectAnswerMatchesReference(frames[0], requests[0], &ref);
  EXPECT_EQ(router.Stats().net_protocol_errors, 0);
  EXPECT_EQ(router.Stats().net_frames_decoded, 1);

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetFaultTest, ResetMidBatchCompletesDispatchedRequestsAndReleasesArena) {
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  Server server(&router, SimConfig(&transport));
  ASSERT_TRUE(server.Start().ok());

  // The whole pipelined batch decodes and dispatches; the very first
  // response write hits ECONNRESET. The batch must still execute to
  // completion (the router is not entangled with the connection's fate) and
  // the response buffer must return to the arena even though its bytes are
  // undeliverable.
  FaultSchedule schedule;
  schedule.writes = {FaultSchedule::Reset()};
  SimConn* conn = transport.Connect(schedule);
  ASSERT_NE(conn, nullptr);

  const std::vector<service::Request> requests = MixedWorkload(4, /*seed=*/47);
  std::vector<uint8_t> wire;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::vector<uint8_t> frame = RequestFrame(ToWire(requests[i]), i + 1);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  conn->SendToServer(wire);  // One atomic burst → one dispatched batch.

  // The reset tears the connection down server-side...
  ASSERT_TRUE(conn->WaitForServerClose());
  // ...but every dispatched request was executed first.
  EXPECT_TRUE(WaitFor([&] {
    return router.Stats().total_queries ==
           static_cast<int64_t>(requests.size());
  })) << "executed " << router.Stats().total_queries;
  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_connections_closed == 1; }));
  EXPECT_EQ(router.Stats().net_frames_decoded,
            static_cast<int64_t>(requests.size()));

  server.Shutdown();
  // The leak invariant survives a mid-batch reset: the buffer the executor
  // filled came home via CloseConnection, not the allocator.
  EXPECT_GE(server.loop_arena(0).acquired(), 1u);
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetFaultTest, ShortWriteFlushRetriesPreserveFrameOrder) {
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  service::QueryRouter ref(SharedCatalog(), RouterCfg(0));
  Server server(&router, SimConfig(&transport));
  ASSERT_TRUE(server.Start().ok());

  // Every flush is mangled: a 5-byte sliver, a spurious EAGAIN (parking the
  // connection until the next writability), a 7-byte sliver, another EAGAIN,
  // then 9-byte slivers forever. The client must still observe one
  // contiguous, in-order byte stream.
  FaultSchedule schedule;
  schedule.writes = {FaultSchedule::Deliver(5), FaultSchedule::WouldBlock(),
                     FaultSchedule::Deliver(7), FaultSchedule::WouldBlock()};
  schedule.default_write_cap = 9;
  SimConn* conn = transport.Connect(schedule);
  ASSERT_NE(conn, nullptr);

  const std::vector<service::Request> requests = MixedWorkload(3, /*seed=*/53);
  std::vector<uint8_t> wire;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::vector<uint8_t> frame = RequestFrame(ToWire(requests[i]), i + 1);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  conn->SendToServer(wire);

  FrameDecoder decoder;
  std::vector<Frame> frames;
  size_t received_bytes = 0;
  ASSERT_TRUE(CollectFrames(conn, &decoder, requests.size(), &frames,
                            &received_bytes));
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(frames[i].header.request_id, i + 1) << "frame order broke";
    ExpectAnswerMatchesReference(frames[i], requests[i], &ref);
  }
  EXPECT_TRUE(WaitFor([&] {
    return router.Stats().net_bytes_out ==
           static_cast<int64_t>(received_bytes);
  }));

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetFaultTest, EofMidFrameTearsDownWithoutProtocolError) {
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  Server server(&router, SimConfig(&transport));
  ASSERT_TRUE(server.Start().ok());

  SimConn* conn = transport.Connect();
  ASSERT_NE(conn, nullptr);

  // A valid frame prefix (magic + version intact), truncated mid-header,
  // then EOF. That is an orderly disconnect, not a protocol violation: no
  // error frame, no protocol_errors, just a clean close.
  const std::vector<uint8_t> frame =
      RequestFrame(WireRequest::Q1("r1", query::Query({0.4, 0.6}, 0.12)), 1);
  conn->SendToServer(frame.data(), 10);
  conn->CloseWrite();

  ASSERT_TRUE(conn->WaitForServerClose());
  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_connections_closed == 1; }));
  const service::ServiceSnapshot snap = router.Stats();
  EXPECT_EQ(snap.net_protocol_errors, 0);
  EXPECT_EQ(snap.net_frames_decoded, 0);
  EXPECT_EQ(snap.net_bytes_in, 10);
  EXPECT_EQ(conn->from_server_bytes(), 0u);  // EOF answers nothing.

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetFaultTest, GarbageStreamGetsTypedErrorFrameThenClose) {
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  Server server(&router, SimConfig(&transport));
  ASSERT_TRUE(server.Start().ok());

  // Deliver the garbage one byte per read for good measure: the hardened
  // decoder poisons the stream as soon as the 4 magic bytes are buffered —
  // it never waits for a full header's worth of garbage.
  FaultSchedule schedule;
  schedule.default_read_cap = 1;
  SimConn* conn = transport.Connect(schedule);
  ASSERT_NE(conn, nullptr);

  const char garbage[] = "this is definitely not a QREG frame header";
  conn->SendToServer(reinterpret_cast<const uint8_t*>(garbage),
                     sizeof(garbage));

  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(CollectFrames(conn, &decoder, 1, &frames));
  ASSERT_EQ(frames[0].header.type, FrameType::kError);
  EXPECT_EQ(frames[0].header.request_id, 0u);  // Stream-level, not per-request.
  util::Status transported;
  ASSERT_TRUE(DecodeStatus(frames[0].payload.data(), frames[0].payload.size(),
                           &transported)
                  .ok());
  EXPECT_EQ(transported.code(), util::StatusCode::kInvalidArgument);

  ASSERT_TRUE(conn->WaitForServerClose());
  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_protocol_errors == 1; }));

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

TEST(NetFaultTest, OversizedFramePoisonPersistsAcrossLaterValidFrames) {
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  Server server(&router, SimConfig(&transport));
  ASSERT_TRUE(server.Start().ok());

  SimConn* conn = transport.Connect();
  ASSERT_NE(conn, nullptr);

  // A frame whose header announces a payload over the 16 MiB ceiling — the
  // decoder poisons from the header alone, before buffering a byte of it.
  const std::vector<service::Request> requests = MixedWorkload(1, /*seed=*/67);
  std::vector<uint8_t> oversized = RequestFrame(ToWire(requests[0]), 1);
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(oversized.data() + 16, &huge, sizeof(huge));  // payload_len.

  // The poison must *persist*: a perfectly well-formed frame follows in the
  // same burst, and the server must not decode it — one typed error frame,
  // one protocol_errors tick, then close. A decoder that resynchronizes
  // after garbage would answer the second frame and fail this test.
  std::vector<uint8_t> burst = oversized;
  const std::vector<uint8_t> valid = RequestFrame(ToWire(requests[0]), 2);
  burst.insert(burst.end(), valid.begin(), valid.end());
  conn->SendToServer(burst);

  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(CollectFrames(conn, &decoder, 1, &frames));
  ASSERT_EQ(frames[0].header.type, FrameType::kError);
  EXPECT_EQ(frames[0].header.request_id, 0u);
  util::Status transported;
  ASSERT_TRUE(DecodeStatus(frames[0].payload.data(), frames[0].payload.size(),
                           &transported)
                  .ok());
  EXPECT_EQ(transported.code(), util::StatusCode::kOutOfRange);

  ASSERT_TRUE(conn->WaitForServerClose());
  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().net_protocol_errors == 1; }));
  const service::ServiceSnapshot snap = router.Stats();
  EXPECT_EQ(snap.net_protocol_errors, 1);  // Exactly one, not one per frame.
  EXPECT_EQ(snap.net_frames_decoded, 0);   // The valid frame died unparsed.
  EXPECT_EQ(snap.total_queries, 0);

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

// Flattens a response frame sequence into comparable bytes, zeroing the one
// legitimately nondeterministic field (exec.nanos, the wall-clock serving
// latency encoded in every answer). Everything else — frame order, ids,
// types, full answer payloads — must be identical run to run.
std::vector<uint8_t> NormalizedStream(const std::vector<Frame>& frames) {
  std::vector<uint8_t> out;
  for (const Frame& f : frames) {
    if (f.header.type == FrameType::kAnswer) {
      util::Result<service::Answer> ans =
          DecodeAnswer(f.payload.data(), f.payload.size());
      EXPECT_TRUE(ans.ok()) << ans.status();
      if (ans.ok()) {
        ans->exec.nanos = 0;
        AppendFrame(&out, f.header.type, f.header.request_id,
                    EncodeAnswer(*ans));
        continue;
      }
    }
    AppendFrame(&out, f.header.type, f.header.request_id, f.payload);
  }
  return out;
}

TEST(NetFaultTest, ReorderedReadinessIsDeterministicAcrossRuns) {
  // Two connections, readiness ranks inverted relative to arrival order, a
  // fault-laced schedule on each. The entire scenario runs three times; the
  // per-connection response streams (normalized only for the encoded
  // wall-clock latency) must be identical run to run — that is the
  // determinism CI's --gtest_repeat leans on.
  std::vector<std::vector<uint8_t>> golden_a, golden_b;
  for (int run = 0; run < 3; ++run) {
    SimTransport transport;
    service::QueryRouter router(SharedCatalog(), RouterCfg(1));
    Server server(&router, SimConfig(&transport));
    ASSERT_TRUE(server.Start().ok());

    // First-connected gets the *larger* rank: Wait() must serve B first
    // whenever both are ready — scripted readiness reordering.
    FaultSchedule sched_a;
    sched_a.readiness_rank = 2;
    sched_a.default_read_cap = 3;
    FaultSchedule sched_b;
    sched_b.readiness_rank = 1;
    sched_b.reads = {FaultSchedule::Deliver(10), FaultSchedule::WouldBlock()};
    SimConn* conn_a = transport.Connect(sched_a);
    SimConn* conn_b = transport.Connect(sched_b);
    ASSERT_NE(conn_a, nullptr);
    ASSERT_NE(conn_b, nullptr);

    const std::vector<service::Request> requests =
        MixedWorkload(2, /*seed=*/61);
    std::vector<uint8_t> wire_a = RequestFrame(ToWire(requests[0]), 11);
    {
      std::vector<uint8_t> ping;
      AppendFrame(&ping, FrameType::kPing, 12, nullptr, 0);
      wire_a.insert(wire_a.end(), ping.begin(), ping.end());
    }
    const std::vector<uint8_t> wire_b = RequestFrame(ToWire(requests[1]), 21);
    conn_a->SendToServer(wire_a);
    conn_b->SendToServer(wire_b);

    FrameDecoder dec_a, dec_b;
    std::vector<Frame> frames_a, frames_b;
    ASSERT_TRUE(CollectFrames(conn_a, &dec_a, 2, &frames_a));
    ASSERT_TRUE(CollectFrames(conn_b, &dec_b, 1, &frames_b));
    // The pong legitimately overtakes the answer: pings are answered inline
    // by the loop, requests round-trip through the executor pool. What must
    // hold is that *this* interleaving is the same every run.
    EXPECT_EQ(frames_a[0].header.request_id, 12u);
    EXPECT_EQ(frames_a[0].header.type, FrameType::kPong);
    EXPECT_EQ(frames_a[1].header.request_id, 11u);
    EXPECT_EQ(frames_a[1].header.type, FrameType::kAnswer);
    EXPECT_EQ(frames_b[0].header.request_id, 21u);
    EXPECT_EQ(frames_b[0].header.type, FrameType::kAnswer);

    golden_a.push_back(NormalizedStream(frames_a));
    golden_b.push_back(NormalizedStream(frames_b));
    server.Shutdown();
    EXPECT_EQ(server.loop_arena(0).acquired(),
              server.loop_arena(0).released());
  }
  EXPECT_EQ(golden_a[0], golden_a[1]);
  EXPECT_EQ(golden_a[0], golden_a[2]);
  EXPECT_EQ(golden_b[0], golden_b[1]);
  EXPECT_EQ(golden_b[0], golden_b[2]);
}

TEST(NetFaultTest, ExpiredDeadlineBudgetRejectedOverSim) {
  SimTransport transport;
  service::QueryRouter router(SharedCatalog(), RouterCfg(1));
  Server server(&router, SimConfig(&transport));
  ASSERT_TRUE(server.Start().ok());

  // Deliver the doomed request byte-at-a-time for good measure: the budget
  // maps to a deadline when the *frame* decodes, not per read call.
  FaultSchedule schedule;
  schedule.default_read_cap = 1;
  SimConn* conn = transport.Connect(schedule);
  ASSERT_NE(conn, nullptr);

  // A 1ns budget is expired by the time admission runs (same guarantee the
  // socket-path deadline test leans on): typed kDeadlineExceeded frame.
  WireRequest wire = WireRequest::Q1("r1", query::Query({0.4, 0.6}, 0.12));
  wire.deadline_budget_nanos = 1;
  conn->SendToServer(RequestFrame(wire, 99));

  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(CollectFrames(conn, &decoder, 1, &frames));
  ASSERT_EQ(frames[0].header.type, FrameType::kError);
  EXPECT_EQ(frames[0].header.request_id, 99u);
  util::Status transported;
  ASSERT_TRUE(DecodeStatus(frames[0].payload.data(), frames[0].payload.size(),
                           &transported)
                  .ok());
  EXPECT_EQ(transported.code(), util::StatusCode::kDeadlineExceeded);

  server.Shutdown();
  EXPECT_EQ(server.loop_arena(0).acquired(), server.loop_arena(0).released());
}

}  // namespace
}  // namespace net
}  // namespace qreg
