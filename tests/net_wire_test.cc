// Wire-protocol robustness: serialization round-trips for every
// Request/Answer/Status variant, and malformed-frame handling — truncated
// headers, oversized lengths, bad checksums, unknown versions, corrupted and
// random byte streams — must end in a typed protocol error with the decoder
// in a defined (poisoned) state, never a crash, hang, or allocation blowup.
// Runs under the ASan/UBSan CI legs like every other test binary.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/rng.h"

namespace qreg {
namespace net {
namespace {

std::vector<uint8_t> OneFrame(FrameType type, uint64_t id,
                              const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> bytes;
  AppendFrame(&bytes, type, id, payload);
  return bytes;
}

// Decodes exactly one frame from a complete byte string.
FrameDecoder::Event DecodeAll(const std::vector<uint8_t>& bytes, Frame* frame,
                              FrameDecoder* decoder) {
  decoder->Feed(bytes.data(), bytes.size());
  return decoder->Next(frame);
}

// ---------------------------------------------------------------- framing --

TEST(WireFrameTest, RoundTripEmptyAndNonEmptyPayloads) {
  for (const std::vector<uint8_t>& payload :
       {std::vector<uint8_t>{}, std::vector<uint8_t>{1, 2, 3, 0xFF, 0}}) {
    const std::vector<uint8_t> bytes =
        OneFrame(FrameType::kRequest, 42, payload);
    ASSERT_EQ(bytes.size(), kHeaderBytes + payload.size());

    FrameDecoder decoder;
    Frame frame;
    ASSERT_EQ(DecodeAll(bytes, &frame, &decoder), FrameDecoder::Event::kFrame);
    EXPECT_EQ(frame.header.type, FrameType::kRequest);
    EXPECT_EQ(frame.header.request_id, 42u);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Event::kNeedMore);
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(WireFrameTest, ByteAtATimeFeedStillDecodes) {
  const std::vector<uint8_t> bytes =
      OneFrame(FrameType::kPing, 7, {9, 8, 7, 6});
  FrameDecoder decoder;
  Frame frame;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Event::kNeedMore)
        << "complete frame after only " << i + 1 << " bytes";
  }
  decoder.Feed(&bytes.back(), 1);
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Event::kFrame);
  EXPECT_EQ(frame.header.request_id, 7u);
}

TEST(WireFrameTest, MultipleFramesInOneFeed) {
  std::vector<uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kRequest, 1, {0xAA});
  AppendFrame(&bytes, FrameType::kPing, 2, nullptr, 0);
  AppendFrame(&bytes, FrameType::kRequest, 3, {0xBB, 0xCC});

  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  for (uint64_t want = 1; want <= 3; ++want) {
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Event::kFrame);
    EXPECT_EQ(frame.header.request_id, want);
  }
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Event::kNeedMore);
}

TEST(WireFrameTest, TruncatedHeaderIsNeedMoreNotError) {
  const std::vector<uint8_t> bytes = OneFrame(FrameType::kRequest, 5, {1, 2});
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), kHeaderBytes - 3);
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Event::kNeedMore);
  EXPECT_FALSE(decoder.poisoned());  // A short read is not a protocol error.
}

TEST(WireFrameTest, BadMagicPoisonsWithTypedError) {
  std::vector<uint8_t> bytes = OneFrame(FrameType::kRequest, 5, {1, 2});
  bytes[0] ^= 0xFF;
  FrameDecoder decoder;
  Frame frame;
  ASSERT_EQ(DecodeAll(bytes, &frame, &decoder), FrameDecoder::Event::kError);
  EXPECT_EQ(decoder.error().code(), util::StatusCode::kInvalidArgument);
  // Defined state: stays poisoned, later input is discarded.
  EXPECT_TRUE(decoder.poisoned());
  decoder.Feed(bytes.data(), bytes.size());
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Event::kError);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireFrameTest, UnknownVersionIsTypedError) {
  std::vector<uint8_t> bytes = OneFrame(FrameType::kRequest, 5, {1, 2});
  bytes[4] = 99;  // version low byte
  FrameDecoder decoder;
  Frame frame;
  ASSERT_EQ(DecodeAll(bytes, &frame, &decoder), FrameDecoder::Event::kError);
  EXPECT_EQ(decoder.error().code(), util::StatusCode::kNotImplemented);
}

TEST(WireFrameTest, OversizedLengthRejectedFromHeaderAlone) {
  std::vector<uint8_t> bytes = OneFrame(FrameType::kRequest, 5, {1, 2});
  const uint32_t huge = 0x7FFFFFFFu;
  std::memcpy(&bytes[16], &huge, sizeof(huge));  // payload_len (little-endian host)
  FrameDecoder decoder;
  Frame frame;
  // Only the header is available — the decoder must reject without waiting
  // for (or allocating) 2 GiB of payload.
  decoder.Feed(bytes.data(), kHeaderBytes);
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Event::kError);
  EXPECT_EQ(decoder.error().code(), util::StatusCode::kOutOfRange);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireFrameTest, CorruptedPayloadFailsChecksum) {
  std::vector<uint8_t> bytes = OneFrame(FrameType::kRequest, 5, {1, 2, 3, 4});
  bytes[kHeaderBytes + 2] ^= 0x01;
  FrameDecoder decoder;
  Frame frame;
  ASSERT_EQ(DecodeAll(bytes, &frame, &decoder), FrameDecoder::Event::kError);
  EXPECT_EQ(decoder.error().code(), util::StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, EveryFlippedBitIsCaughtOrHarmless) {
  // Flip each byte of a valid frame in turn: the decoder must never crash,
  // and must never hand back a frame whose content silently changed.
  const std::vector<uint8_t> good = OneFrame(FrameType::kRequest, 77, {5, 6, 7});
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<uint8_t> bytes = good;
    bytes[i] ^= 0x10;
    FrameDecoder decoder;
    Frame frame;
    const FrameDecoder::Event event = DecodeAll(bytes, &frame, &decoder);
    if (event == FrameDecoder::Event::kFrame) {
      // Only reachable for flips the checksum cannot see — there are none,
      // since every header and payload byte is covered.
      ADD_FAILURE() << "undetected corruption at byte " << i;
    }
  }
}

TEST(WireFrameTest, RandomGarbageNeverCrashes) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = static_cast<size_t>(rng.NextU64() % 512);
    std::vector<uint8_t> junk(n);
    for (uint8_t& b : junk) b = static_cast<uint8_t>(rng.NextU64());
    FrameDecoder decoder;
    decoder.Feed(junk.data(), junk.size());
    Frame frame;
    // Drain until the decoder settles; must terminate and stay defined.
    for (int step = 0; step < 64; ++step) {
      const FrameDecoder::Event event = decoder.Next(&frame);
      if (event != FrameDecoder::Event::kFrame) break;
    }
    EXPECT_LE(decoder.buffered_bytes(), junk.size());
  }
}

// --------------------------------------------------------------- messages --

TEST(WireCodecTest, RequestRoundTripBothKindsAndBudget) {
  for (service::QueryKind kind : {service::QueryKind::kQ1MeanValue,
                                  service::QueryKind::kQ2Regression}) {
    WireRequest req;
    req.dataset = "sensors";
    req.kind = kind;
    req.q = query::Query({0.25, -1.5, 3.75}, 0.125);
    req.deadline_budget_nanos = 750000000;

    const std::vector<uint8_t> bytes = EncodeRequest(req);
    auto decoded = DecodeRequest(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->dataset, req.dataset);
    EXPECT_EQ(decoded->kind, kind);
    EXPECT_EQ(decoded->q.center, req.q.center);
    EXPECT_EQ(decoded->q.theta, req.q.theta);
    EXPECT_EQ(decoded->deadline_budget_nanos, req.deadline_budget_nanos);
  }
}

TEST(WireCodecTest, RequestWithoutBudgetDecodesToNoDeadline) {
  const WireRequest req = WireRequest::Q1("r1", query::Query({0.5, 0.5}, 0.1));
  const std::vector<uint8_t> bytes = EncodeRequest(req);
  auto decoded = DecodeRequest(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->deadline_budget_nanos, 0u);
}

TEST(WireCodecTest, AnswerRoundTripIsBitForBit) {
  service::Answer answer;
  answer.kind = service::QueryKind::kQ2Regression;
  answer.source = service::AnswerSource::kExact;
  answer.mean = 0.1 + 0.2;  // A value with untidy low bits.
  answer.cache_delta = 0.987654321;
  answer.used_fallback = true;
  answer.exec.tuples_examined = 123456789;
  answer.exec.tuples_matched = 321;
  answer.exec.nanos = 987654321;
  answer.exec.chunks_completed = 7;
  answer.exec.chunks_total = 9;
  for (int i = 0; i < 3; ++i) {
    core::LocalLinearModel piece;
    piece.intercept = 1.0 / (3.0 + i);
    piece.slope = {0.1 * i, -2.5, 1e-17};
    piece.prototype_id = 40 + i;
    piece.weight = 1.0 / 3.0;
    answer.pieces.push_back(piece);
  }

  const std::vector<uint8_t> bytes = EncodeAnswer(answer);
  auto decoded = DecodeAnswer(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->kind, answer.kind);
  EXPECT_EQ(decoded->source, answer.source);
  EXPECT_EQ(std::memcmp(&decoded->mean, &answer.mean, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&decoded->cache_delta, &answer.cache_delta,
                        sizeof(double)),
            0);
  EXPECT_EQ(decoded->used_fallback, answer.used_fallback);
  EXPECT_EQ(decoded->exec.tuples_examined, answer.exec.tuples_examined);
  EXPECT_EQ(decoded->exec.tuples_matched, answer.exec.tuples_matched);
  EXPECT_EQ(decoded->exec.nanos, answer.exec.nanos);
  EXPECT_EQ(decoded->exec.chunks_completed, answer.exec.chunks_completed);
  EXPECT_EQ(decoded->exec.chunks_total, answer.exec.chunks_total);
  ASSERT_EQ(decoded->pieces.size(), answer.pieces.size());
  for (size_t i = 0; i < answer.pieces.size(); ++i) {
    const auto& got = decoded->pieces[i];
    const auto& want = answer.pieces[i];
    EXPECT_EQ(std::memcmp(&got.intercept, &want.intercept, sizeof(double)), 0);
    ASSERT_EQ(got.slope.size(), want.slope.size());
    EXPECT_EQ(std::memcmp(got.slope.data(), want.slope.data(),
                          want.slope.size() * sizeof(double)),
              0);
    EXPECT_EQ(got.prototype_id, want.prototype_id);
    EXPECT_EQ(std::memcmp(&got.weight, &want.weight, sizeof(double)), 0);
  }
}

TEST(WireCodecTest, AnswerRoundTripEverySourceVariant) {
  for (service::AnswerSource source :
       {service::AnswerSource::kModel, service::AnswerSource::kExact,
        service::AnswerSource::kCache}) {
    service::Answer answer;
    answer.source = source;
    answer.mean = 1.5;
    const std::vector<uint8_t> bytes = EncodeAnswer(answer);
    auto decoded = DecodeAnswer(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->source, source);
  }
}

TEST(WireCodecTest, StatusRoundTripEveryCode) {
  for (int code = 1; code <= static_cast<int>(util::StatusCode::kCancelled);
       ++code) {
    const util::Status status(static_cast<util::StatusCode>(code),
                              "message for code " + std::to_string(code));
    const std::vector<uint8_t> bytes = EncodeStatus(status);
    util::Status decoded;
    const util::Status ok = DecodeStatus(bytes.data(), bytes.size(), &decoded);
    ASSERT_TRUE(ok.ok()) << ok;
    EXPECT_EQ(decoded, status);
  }
}

TEST(WireCodecTest, UnknownFieldTagsAreSkipped) {
  // A future peer appends a field this decoder has never heard of; the known
  // fields must still decode (forward compatibility).
  std::vector<uint8_t> bytes =
      EncodeRequest(WireRequest::Q1("r1", query::Query({0.5}, 0.1)));
  const uint8_t unknown_field[] = {0xEE, 0x7F,              // tag 0x7FEE
                                   3,    0,    0,   0,      // len 3
                                   0xDE, 0xAD, 0xBE};
  bytes.insert(bytes.end(), unknown_field, unknown_field + sizeof(unknown_field));
  auto decoded = DecodeRequest(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->dataset, "r1");
  EXPECT_EQ(decoded->q.theta, 0.1);
}

TEST(WireCodecTest, FieldOverrunningPayloadIsTypedError) {
  std::vector<uint8_t> bytes =
      EncodeRequest(WireRequest::Q1("r1", query::Query({0.5}, 0.1)));
  bytes.resize(bytes.size() - 1);  // Truncate the last field's bytes.
  auto decoded = DecodeRequest(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, MissingDatasetIsTypedError) {
  auto decoded = DecodeRequest(nullptr, 0);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, UnknownEnumValuesAreTypedErrors) {
  WireRequest req = WireRequest::Q1("r1", query::Query({0.5}, 0.1));
  std::vector<uint8_t> bytes = EncodeRequest(req);
  // Tag 2 (kind) is the second field; corrupt its value to 200. Rather than
  // hunt for the offset, rebuild: tag=2 len=4 value=200.
  std::vector<uint8_t> evil;
  const uint8_t kind_field[] = {2, 0, 4, 0, 0, 0, 200, 0, 0, 0};
  // dataset field first so the decoder accepts the rest.
  const uint8_t dataset_field[] = {1, 0, 2, 0, 0, 0, 'r', '1'};
  evil.insert(evil.end(), dataset_field, dataset_field + sizeof(dataset_field));
  evil.insert(evil.end(), kind_field, kind_field + sizeof(kind_field));
  auto decoded = DecodeRequest(evil.data(), evil.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
  (void)bytes;
}

TEST(WireCodecTest, RandomPayloadFuzzNeverCrashes) {
  util::Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t n = static_cast<size_t>(rng.NextU64() % 256);
    std::vector<uint8_t> junk(n);
    for (uint8_t& b : junk) b = static_cast<uint8_t>(rng.NextU64());
    // All three decoders must return (ok or typed error), never crash/hang.
    (void)DecodeRequest(junk.data(), junk.size());
    (void)DecodeAnswer(junk.data(), junk.size());
    util::Status transported;
    (void)DecodeStatus(junk.data(), junk.size(), &transported);
  }
}

TEST(WireCodecTest, MutatedValidPayloadFuzzNeverCrashes) {
  service::Answer answer;
  answer.mean = 3.25;
  core::LocalLinearModel piece;
  piece.intercept = 1.0;
  piece.slope = {0.5, 0.25};
  answer.pieces.push_back(piece);
  const std::vector<uint8_t> good = EncodeAnswer(answer);

  util::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes = good;
    const size_t at = static_cast<size_t>(rng.NextU64() % bytes.size());
    bytes[at] = static_cast<uint8_t>(rng.NextU64());
    (void)DecodeAnswer(bytes.data(), bytes.size());  // Must not crash.
  }
}

// ------------------------------------------------------- in-place encoding --

// The executor-side in-place encoders must be byte-for-byte what the
// allocate-then-wrap path produces — the socket tests compare decoded
// answers, this pins the raw frames themselves.

service::Answer FullyPopulatedAnswer() {
  service::Answer answer;
  answer.kind = service::QueryKind::kQ2Regression;
  answer.source = service::AnswerSource::kModel;
  answer.mean = 0.1 + 0.2;
  answer.cache_delta = -0.25;
  answer.used_fallback = true;
  answer.exec.tuples_examined = 123456789;
  answer.exec.tuples_matched = 321;
  answer.exec.nanos = 987654321;
  answer.exec.chunks_completed = 7;
  answer.exec.chunks_total = 9;
  for (int i = 0; i < 3; ++i) {
    core::LocalLinearModel piece;
    piece.intercept = 1.0 / (3.0 + i);
    piece.slope = {0.1 * i, -2.5, 1e-17};
    piece.prototype_id = 40 + i;
    piece.weight = 1.0 / 3.0;
    answer.pieces.push_back(piece);
  }
  return answer;
}

TEST(InplaceEncodeTest, AnswerFrameMatchesEncodeAnswerBitForBit) {
  const service::Answer answer = FullyPopulatedAnswer();

  std::vector<uint8_t> inplace;
  AppendAnswerFrame(&inplace, /*request_id=*/42, answer);

  std::vector<uint8_t> reference;
  AppendFrame(&reference, FrameType::kAnswer, 42, EncodeAnswer(answer));

  EXPECT_EQ(inplace, reference);
}

TEST(InplaceEncodeTest, MinimalAnswerFrameMatchesToo) {
  service::Answer answer;  // Defaults: no pieces, zero stats.
  std::vector<uint8_t> inplace;
  AppendAnswerFrame(&inplace, 1, answer);
  std::vector<uint8_t> reference;
  AppendFrame(&reference, FrameType::kAnswer, 1, EncodeAnswer(answer));
  EXPECT_EQ(inplace, reference);
}

TEST(InplaceEncodeTest, StatusFrameMatchesEncodeStatusBitForBit) {
  const util::Status status =
      util::Status::ResourceExhausted("queue full: shed");
  std::vector<uint8_t> inplace;
  AppendStatusFrame(&inplace, /*request_id=*/7, status);
  std::vector<uint8_t> reference;
  AppendFrame(&reference, FrameType::kError, 7, EncodeStatus(status));
  EXPECT_EQ(inplace, reference);
}

TEST(InplaceEncodeTest, AppendsAfterExistingBytesAndStillDecodes) {
  // A batch buffer carries many frames back-to-back; each in-place frame
  // must leave earlier bytes untouched and decode from mid-buffer.
  const service::Answer answer = FullyPopulatedAnswer();
  std::vector<uint8_t> buf;
  AppendAnswerFrame(&buf, 1, answer);
  AppendStatusFrame(&buf, 2, util::Status::NotFound("no such dataset"));
  AppendAnswerFrame(&buf, 3, answer);

  FrameDecoder decoder;
  decoder.Feed(buf.data(), buf.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Event::kFrame);
  EXPECT_EQ(frame.header.request_id, 1u);
  EXPECT_EQ(frame.header.type, FrameType::kAnswer);
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Event::kFrame);
  EXPECT_EQ(frame.header.request_id, 2u);
  EXPECT_EQ(frame.header.type, FrameType::kError);
  util::Status transported;
  ASSERT_TRUE(
      DecodeStatus(frame.payload.data(), frame.payload.size(), &transported)
          .ok());
  EXPECT_EQ(transported.code(), util::StatusCode::kNotFound);
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Event::kFrame);
  EXPECT_EQ(frame.header.request_id, 3u);
  auto decoded = DecodeAnswer(frame.payload.data(), frame.payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->pieces.size(), answer.pieces.size());
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Event::kNeedMore);
}

// ------------------------------------------------------------- wire arena --

TEST(WireArenaTest, ReusesReleasedBuffers) {
  WireArena arena;
  std::vector<uint8_t> buf = arena.Acquire();
  EXPECT_EQ(arena.acquired(), 1);
  EXPECT_EQ(arena.reused(), 0);

  buf.assign(512, 0xAB);
  const size_t cap = buf.capacity();
  arena.Release(std::move(buf));
  EXPECT_EQ(arena.pooled(), 1u);

  std::vector<uint8_t> again = arena.Acquire();
  EXPECT_EQ(arena.acquired(), 2);
  EXPECT_EQ(arena.reused(), 1);  // Came from the pool...
  EXPECT_TRUE(again.empty());    // ...cleared...
  EXPECT_GE(again.capacity(), cap);  // ...with its allocation retained.
  EXPECT_EQ(arena.pooled(), 0u);
}

TEST(WireArenaTest, OversizedBuffersAreNotRetained) {
  WireArena::Options opts;
  opts.max_retained_bytes = 1024;
  WireArena arena(opts);

  std::vector<uint8_t> huge = arena.Acquire();
  huge.resize(4096);  // Capacity now exceeds the retention bound.
  arena.Release(std::move(huge));
  EXPECT_EQ(arena.pooled(), 0u);  // Dropped, not pooled.

  std::vector<uint8_t> small = arena.Acquire();
  small.resize(100);
  arena.Release(std::move(small));
  EXPECT_EQ(arena.pooled(), 1u);
}

TEST(WireArenaTest, PoolIsBounded) {
  WireArena::Options opts;
  opts.max_pooled_buffers = 2;
  WireArena arena(opts);
  for (int i = 0; i < 5; ++i) {
    std::vector<uint8_t> buf = arena.Acquire();
    buf.resize(16);
    arena.Release(std::move(buf));
  }
  // Release is called once per loop with an empty pool slot available only
  // twice... but each Acquire drains one, so the pool never exceeds the cap.
  EXPECT_LE(arena.pooled(), 2u);

  // Fill without draining: release three distinct buffers in a row.
  std::vector<uint8_t> a = arena.Acquire();
  std::vector<uint8_t> b = arena.Acquire();
  std::vector<uint8_t> c = arena.Acquire();
  a.resize(8);
  b.resize(8);
  c.resize(8);
  arena.Release(std::move(a));
  arena.Release(std::move(b));
  arena.Release(std::move(c));
  EXPECT_EQ(arena.pooled(), 2u);  // Third one dropped at the cap.
}

}  // namespace
}  // namespace net
}  // namespace qreg
