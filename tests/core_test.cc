// Unit + property tests for src/core: vigilance AVQ growth, Theorem-4 SGD
// updates, Γ convergence, Algorithms 2 & 3 prediction paths, model
// serialization, trainer behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/llm_model.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "storage/kdtree.h"
#include "storage/scan_index.h"
#include "util/rng.h"

namespace qreg {
namespace core {
namespace {

using query::Query;

// ---------- Vigilance / config ----------

TEST(VigilanceTest, FormulaMatchesPaper) {
  // ρ = a (√d + 1)
  EXPECT_DOUBLE_EQ(VigilanceFromCoefficient(0.25, 4), 0.25 * 3.0);
  EXPECT_DOUBLE_EQ(VigilanceFromCoefficient(1.0, 1), 2.0);
}

TEST(LlmConfigTest, ForDimensionDerivesRho) {
  LlmConfig c = LlmConfig::ForDimension(2, 0.25);
  EXPECT_NEAR(c.vigilance, 0.25 * (std::sqrt(2.0) + 1.0), 1e-12);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(LlmConfigTest, ValidationRejectsBadValues) {
  LlmConfig c = LlmConfig::ForDimension(2);
  c.gamma = 0.0;
  EXPECT_FALSE(c.Validate().ok());

  c = LlmConfig::ForDimension(0);
  EXPECT_FALSE(c.Validate().ok());

  c = LlmConfig::ForDimension(2);
  c.schedule = LearningRateSchedule::kConstant;
  c.constant_eta = 1.5;
  EXPECT_FALSE(c.Validate().ok());

  c = LlmConfig::ForDimension(2);
  c.convergence_window = 0;
  EXPECT_FALSE(c.Validate().ok());

  c = LlmConfig::ForDimension(2);
  c.coef_power = 0.3;  // violates Robbins-Monro square-summability guard
  EXPECT_FALSE(c.Validate().ok());
}

// ---------- Growth / vigilance test ----------

TEST(LlmModelTest, FirstObservationSpawnsPrototypeAtQuery) {
  LlmConfig cfg = LlmConfig::ForDimension(2, 0.25);
  cfg.seed_y_with_answer = false;  // the paper's literal 0-init
  LlmModel model(cfg);
  Query q({0.5, 0.5}, 0.1);
  auto step = model.Observe(q, 3.0);
  ASSERT_TRUE(step.ok());
  EXPECT_TRUE(step->spawned);
  EXPECT_EQ(step->winner, 0);
  ASSERT_EQ(model.num_prototypes(), 1);
  EXPECT_EQ(model.prototypes()[0].w.center, q.center);
  EXPECT_DOUBLE_EQ(model.prototypes()[0].w.theta, q.theta);
  EXPECT_DOUBLE_EQ(model.prototypes()[0].y, 0.0);
}

TEST(LlmModelTest, SeedYWithAnswerIsDefault) {
  LlmModel model(LlmConfig::ForDimension(2, 0.25));
  ASSERT_TRUE(model.Observe(Query({0.5, 0.5}, 0.1), 3.0).ok());
  EXPECT_DOUBLE_EQ(model.prototypes()[0].y, 3.0);
}

TEST(LlmModelTest, NearbyQueryUpdatesFarQuerySpawns) {
  LlmModel model(LlmConfig::ForDimension(1, 0.25));  // rho = 0.5
  ASSERT_TRUE(model.Observe(Query({0.0}, 0.1), 1.0).ok());

  // Distance sqrt(0.2^2 + 0^2) = 0.2 < 0.5: update, not spawn.
  auto near = model.Observe(Query({0.2}, 0.1), 1.0);
  ASSERT_TRUE(near.ok());
  EXPECT_FALSE(near->spawned);
  EXPECT_EQ(model.num_prototypes(), 1);

  // Distance 5 > 0.5: spawn.
  auto far = model.Observe(Query({5.0}, 0.1), 1.0);
  ASSERT_TRUE(far.ok());
  EXPECT_TRUE(far->spawned);
  EXPECT_EQ(model.num_prototypes(), 2);
}

TEST(LlmModelTest, Theorem4UpdateArithmetic) {
  LlmConfig c = LlmConfig::ForDimension(1, /*a=*/2.0);  // rho = 4: no spawning
  c.schedule = LearningRateSchedule::kConstant;
  c.constant_eta = 0.5;
  c.normalize_coef_step = false;  // test the literal Theorem-4 arithmetic
  c.seed_y_with_answer = false;   // the paper's 0-init, so y starts at 0
  LlmModel model(c);
  ASSERT_TRUE(model.Observe(Query({0.0}, 1.0), 1.0).ok());  // spawn at q1

  auto step = model.Observe(Query({0.4}, 1.0), 2.0);
  ASSERT_TRUE(step.ok());
  EXPECT_FALSE(step->spawned);
  const Prototype& p = model.prototypes()[0];
  // residual e = 2 - (0 + 0) = 2
  // Δb_x = 0.5 * 2 * 0.4 = 0.4 ; Δb_θ = 0 ; Δy = 1 ; Δw = 0.5*0.4 = 0.2
  EXPECT_NEAR(p.b_x[0], 0.4, 1e-12);
  EXPECT_NEAR(p.b_theta, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
  EXPECT_NEAR(p.w.center[0], 0.2, 1e-12);
  EXPECT_NEAR(p.w.theta, 1.0, 1e-12);
  EXPECT_NEAR(step->gamma_j, 0.2, 1e-12);
  EXPECT_NEAR(step->gamma_h, 0.4 + 1.0, 1e-12);
}

TEST(LlmModelTest, DimensionMismatchRejected) {
  LlmModel model(LlmConfig::ForDimension(2));
  EXPECT_EQ(model.Observe(Query({0.1}, 0.1), 1.0).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(LlmModelTest, FrozenModelRejectsObserve) {
  LlmModel model(LlmConfig::ForDimension(2));
  ASSERT_TRUE(model.Observe(Query({0.1, 0.1}, 0.1), 1.0).ok());
  model.Freeze();
  EXPECT_EQ(model.Observe(Query({0.1, 0.1}, 0.1), 1.0).status().code(),
            util::StatusCode::kFailedPrecondition);
}

// Property: smaller a (finer quantization) gives at least as many prototypes.
class GrowthMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(GrowthMonotonicityTest, FinerVigilanceMoreProtos) {
  const int d = GetParam();
  auto run = [d](double a) {
    LlmModel model(LlmConfig::ForDimension(static_cast<size_t>(d), a));
    auto cfg = query::WorkloadConfig::Cube(static_cast<size_t>(d), 0.0, 1.0, 0.1,
                                           0.02, 77);
    query::WorkloadGenerator gen(cfg);
    util::Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE(model.Observe(gen.Next(), rng.Uniform()).ok());
    }
    return model.num_prototypes();
  };
  const int k_coarse = run(0.8);
  const int k_mid = run(0.4);
  const int k_fine = run(0.1);
  EXPECT_LE(k_coarse, k_mid);
  EXPECT_LE(k_mid, k_fine);
  EXPECT_GE(k_fine, 4);  // fine quantization must produce several cells
}

INSTANTIATE_TEST_SUITE_P(Dims, GrowthMonotonicityTest, ::testing::Values(1, 2, 3, 5));

TEST(LlmModelTest, FixedKModeCapsPrototypes) {
  LlmConfig c = LlmConfig::ForDimension(2, 0.05);  // would grow many
  c.fixed_k = 7;
  LlmModel model(c);
  auto cfg = query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.1, 0.02, 3);
  query::WorkloadGenerator gen(cfg);
  util::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(model.Observe(gen.Next(), rng.Uniform()).ok());
  }
  EXPECT_EQ(model.num_prototypes(), 7);
}

// ---------- Convergence on a globally linear f ----------

TEST(LlmModelTest, ConvergesToLinearFunction) {
  // f(x, θ) = 2 + 3 x1 − x2 + 0.5 θ is globally linear: a handful of LLMs
  // should reproduce it almost exactly.
  LlmModel model(LlmConfig::ForDimension(2, 0.5));
  auto cfg = query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.15, 0.05, 11);
  query::WorkloadGenerator gen(cfg);
  auto f = [](const Query& q) {
    return 2.0 + 3.0 * q.center[0] - q.center[1] + 0.5 * q.theta;
  };
  for (int i = 0; i < 30000; ++i) {
    const Query q = gen.Next();
    ASSERT_TRUE(model.Observe(q, f(q)).ok());
  }
  // Unseen queries.
  query::WorkloadGenerator test(
      query::WorkloadConfig::Cube(2, 0.05, 0.95, 0.15, 0.05, 999));
  double sse = 0.0;
  const int m = 500;
  for (int i = 0; i < m; ++i) {
    const Query q = test.Next();
    auto pred = model.PredictMean(q);
    ASSERT_TRUE(pred.ok());
    sse += (pred.value() - f(q)) * (pred.value() - f(q));
  }
  const double rmse = std::sqrt(sse / m);
  EXPECT_LT(rmse, 0.05) << "K=" << model.num_prototypes();
}

TEST(LlmModelTest, GammaDecreasesOverTraining) {
  LlmModel model(LlmConfig::ForDimension(2, 0.4));
  auto cfg = query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.1, 0.02, 21);
  query::WorkloadGenerator gen(cfg);
  util::Rng rng(8);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Query q = gen.Next();
    ASSERT_TRUE(model.Observe(q, 0.3 * q.center[0] + rng.Gaussian(0, 0.01)).ok());
    if (i == 100) early = model.CurrentGamma();
  }
  late = model.CurrentGamma();
  EXPECT_LT(late, early);
}

// ---------- Prediction paths (Algorithms 2 & 3) ----------

class PredictionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LlmConfig c = LlmConfig::ForDimension(1, 0.3);
    model_ = std::make_unique<LlmModel>(c);
    // Train two well-separated prototypes on two different local lines:
    //   left  (x≈0.2): y = 1 + 2 (x − 0.2)
    //   right (x≈2.0): y = 5 − 1 (x − 2.0)
    util::Rng rng(31);
    for (int i = 0; i < 8000; ++i) {
      const double xl = 0.2 + rng.Uniform(-0.1, 0.1);
      ASSERT_TRUE(
          model_->Observe(Query({xl}, 0.1 + rng.Uniform(-0.02, 0.02)),
                          1.0 + 2.0 * (xl - 0.2))
              .ok());
      const double xr = 2.0 + rng.Uniform(-0.1, 0.1);
      ASSERT_TRUE(
          model_->Observe(Query({xr}, 0.1 + rng.Uniform(-0.02, 0.02)),
                          5.0 - 1.0 * (xr - 2.0))
              .ok());
    }
    ASSERT_EQ(model_->num_prototypes(), 2);
  }

  std::unique_ptr<LlmModel> model_;
};

TEST_F(PredictionTest, OverlapSetFindsNearbyPrototype) {
  auto w = model_->OverlapSet(Query({0.2}, 0.1));
  ASSERT_EQ(w.size(), 1u);
  // Far query overlapping nothing.
  EXPECT_TRUE(model_->OverlapSet(Query({10.0}, 0.1)).empty());
  // Huge ball overlaps both.
  EXPECT_EQ(model_->OverlapSet(Query({1.0}, 5.0)).size(), 2u);
}

TEST_F(PredictionTest, PredictMeanNearPrototypeIsLocalValue) {
  auto y = model_->PredictMean(Query({0.25}, 0.1));
  ASSERT_TRUE(y.ok());
  EXPECT_NEAR(*y, 1.0 + 2.0 * 0.05, 0.05);
}

TEST_F(PredictionTest, PredictMeanFallsBackToNearestWhenNoOverlap) {
  // x = 3.0 overlaps nothing (prototypes near 0.2 and 2.0 with θ≈0.1);
  // nearest is the right prototype: extrapolate its line.
  auto y = model_->PredictMean(Query({3.0}, 0.05));
  ASSERT_TRUE(y.ok());
  EXPECT_NEAR(*y, 5.0 - 1.0 * 1.0, 0.25);
}

TEST_F(PredictionTest, RegressionQueryReturnsLocalLines) {
  auto s = model_->RegressionQuery(Query({0.2}, 0.1));
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 1u);
  const LocalLinearModel& m = (*s)[0];
  // Local line: slope 2, intercept 1 − 2*0.2 = 0.6 (in absolute coords).
  EXPECT_NEAR(m.slope[0], 2.0, 0.15);
  EXPECT_NEAR(m.intercept, 0.6, 0.1);
  EXPECT_NEAR(m.weight, 1.0, 1e-9);  // single member => δ̃ = 1
}

TEST_F(PredictionTest, RegressionQueryBigBallReturnsBothPieces) {
  auto s = model_->RegressionQuery(Query({1.0}, 5.0));
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 2u);
  double wsum = 0.0;
  for (const auto& m : *s) wsum += m.weight;
  EXPECT_NEAR(wsum, 1.0, 1e-9);
  // One piece has slope ≈ 2, the other ≈ −1.
  const double s0 = (*s)[0].slope[0];
  const double s1 = (*s)[1].slope[0];
  EXPECT_NEAR(std::max(s0, s1), 2.0, 0.2);
  EXPECT_NEAR(std::min(s0, s1), -1.0, 0.2);
}

TEST_F(PredictionTest, RegressionQueryCase3Extrapolates) {
  auto s = model_->RegressionQuery(Query({10.0}, 0.01));
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 1u);
  EXPECT_DOUBLE_EQ((*s)[0].weight, 0.0);  // extrapolation marker
  EXPECT_NEAR((*s)[0].slope[0], -1.0, 0.15);
}

TEST_F(PredictionTest, PredictValueMatchesLocalLine) {
  auto u = model_->PredictValue(Query({0.2}, 0.1), {0.3});
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(*u, 1.0 + 2.0 * 0.1, 0.06);
}

TEST_F(PredictionTest, NearestOnlyModeUsesSinglePrototype) {
  // Same trained prototypes, different prediction policy via a round trip
  // through the serializer (configs are immutable on the model).
  std::ostringstream ss;
  ASSERT_TRUE(ModelSerializer::Save(*model_, &ss).ok());
  std::istringstream in(ss.str());
  auto loaded = ModelSerializer::Load(&in);
  ASSERT_TRUE(loaded.ok());
  auto y = loaded->PredictMean(Query({0.25}, 0.1));
  ASSERT_TRUE(y.ok());
  EXPECT_NEAR(*y, 1.0 + 2.0 * 0.05, 0.05);
}

TEST(LlmModelTest, EmptyModelPredictionFails) {
  LlmModel model(LlmConfig::ForDimension(2));
  EXPECT_EQ(model.PredictMean(Query({0.1, 0.1}, 0.1)).status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(model.RegressionQuery(Query({0.1, 0.1}, 0.1)).ok());
  EXPECT_FALSE(model.PredictValue(Query({0.1, 0.1}, 0.1), {0.1, 0.1}).ok());
}

TEST(LlmModelTest, ParameterBytesScaleWithK) {
  LlmModel model(LlmConfig::ForDimension(2, 0.1));
  EXPECT_EQ(model.ParameterBytes(), 0);
  ASSERT_TRUE(model.Observe(Query({0.1, 0.1}, 0.1), 1.0).ok());
  const int64_t one = model.ParameterBytes();
  ASSERT_TRUE(model.Observe(Query({5.0, 5.0}, 0.1), 1.0).ok());
  EXPECT_EQ(model.ParameterBytes(), 2 * one);
}

// ---------- Serialization ----------

TEST(ModelIoTest, RoundTripPreservesEverything) {
  LlmConfig c = LlmConfig::ForDimension(3, 0.3, 0.02);
  c.seed_y_with_answer = true;
  LlmModel model(c);
  auto cfg = query::WorkloadConfig::Cube(3, -1.0, 1.0, 0.2, 0.05, 55);
  query::WorkloadGenerator gen(cfg);
  util::Rng rng(56);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(model.Observe(gen.Next(), rng.Gaussian()).ok());
  }
  model.Freeze();

  std::ostringstream ss;
  ASSERT_TRUE(ModelSerializer::Save(model, &ss).ok());
  std::istringstream in(ss.str());
  auto loaded = ModelSerializer::Load(&in);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->num_prototypes(), model.num_prototypes());
  EXPECT_EQ(loaded->observations(), model.observations());
  EXPECT_TRUE(loaded->frozen());
  EXPECT_EQ(loaded->config().d, model.config().d);
  EXPECT_DOUBLE_EQ(loaded->config().vigilance, model.config().vigilance);

  // Bit-exact prototypes and identical predictions.
  for (int k = 0; k < model.num_prototypes(); ++k) {
    const auto& a = model.prototypes()[static_cast<size_t>(k)];
    const auto& b = loaded->prototypes()[static_cast<size_t>(k)];
    EXPECT_EQ(a.w.center, b.w.center);
    EXPECT_EQ(a.w.theta, b.w.theta);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.b_x, b.b_x);
    EXPECT_EQ(a.b_theta, b.b_theta);
    EXPECT_EQ(a.wins, b.wins);
  }
  for (int i = 0; i < 50; ++i) {
    const Query q = gen.Next();
    EXPECT_DOUBLE_EQ(*model.PredictMean(q), *loaded->PredictMean(q));
  }
}

TEST(ModelIoTest, GarbageStreamRejected) {
  std::istringstream in("definitely not a model");
  EXPECT_FALSE(ModelSerializer::Load(&in).ok());
}

TEST(ModelIoTest, WrongVersionRejected) {
  std::istringstream in("qreg-llm-model 999\n");
  EXPECT_EQ(ModelSerializer::Load(&in).status().code(),
            util::StatusCode::kNotImplemented);
}

TEST(ModelIoTest, TruncatedStreamRejected) {
  LlmModel model(LlmConfig::ForDimension(2));
  ASSERT_TRUE(model.Observe(Query({0.1, 0.1}, 0.1), 1.0).ok());
  std::ostringstream ss;
  ASSERT_TRUE(ModelSerializer::Save(model, &ss).ok());
  const std::string full = ss.str();
  std::istringstream in(full.substr(0, full.size() / 2));
  EXPECT_FALSE(ModelSerializer::Load(&in).ok());
}

TEST(ModelIoTest, FileRoundTrip) {
  LlmModel model(LlmConfig::ForDimension(2));
  ASSERT_TRUE(model.Observe(Query({0.1, 0.1}, 0.1), 1.0).ok());
  const std::string path = testing::TempDir() + "/qreg_model_test.txt";
  ASSERT_TRUE(ModelSerializer::SaveToFile(model, path).ok());
  auto loaded = ModelSerializer::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_prototypes(), 1);
  EXPECT_FALSE(ModelSerializer::LoadFromFile("/no/such/file.txt").ok());
}

// ---------- Trainer ----------

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<storage::Table>(2);
    util::Rng rng(61);
    for (int i = 0; i < 20000; ++i) {
      std::vector<double> x{rng.Uniform(0, 1), rng.Uniform(0, 1)};
      ASSERT_TRUE(table_->Append(x, 0.5 + 0.3 * x[0] - 0.2 * x[1]).ok());
    }
    index_ = std::make_unique<storage::KdTree>(*table_);
    engine_ = std::make_unique<query::ExactEngine>(*table_, *index_);
  }

  std::unique_ptr<storage::Table> table_;
  std::unique_ptr<storage::KdTree> index_;
  std::unique_ptr<query::ExactEngine> engine_;
};

TEST_F(TrainerTest, ConvergesAndFreezes) {
  LlmModel model(LlmConfig::ForDimension(2, 0.25));
  TrainerConfig tc;
  tc.max_pairs = 50000;
  tc.min_pairs = 200;
  Trainer trainer(*engine_, tc);
  auto cfg = query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.15, 0.03, 71);
  query::WorkloadGenerator gen(cfg);
  auto report = trainer.Train(&gen, &model);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_LE(report->final_gamma, model.config().gamma);
  EXPECT_GT(report->pairs_used, 0);
  EXPECT_GT(report->num_prototypes, 0);
  EXPECT_TRUE(model.frozen());
  // Most of the training time goes to exact query execution (paper: 99.62%).
  EXPECT_GT(report->QueryExecFraction(), 0.5);
}

TEST_F(TrainerTest, SkipsEmptySubspaces) {
  LlmModel model(LlmConfig::ForDimension(2, 0.25));
  TrainerConfig tc;
  tc.max_pairs = 100;
  tc.min_pairs = 100000;  // never converge
  Trainer trainer(*engine_, tc);
  // Half the query volume lies far outside the data cube.
  auto cfg = query::WorkloadConfig::Cube(2, 0.0, 3.0, 0.05, 0.001, 73);
  query::WorkloadGenerator gen(cfg);
  auto report = trainer.Train(&gen, &model);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->pairs_skipped, 0);
  EXPECT_EQ(report->pairs_used, 100);
}

TEST_F(TrainerTest, GammaTraceRecorded) {
  LlmModel model(LlmConfig::ForDimension(2, 0.25));
  TrainerConfig tc;
  tc.max_pairs = 500;
  tc.min_pairs = 1000;  // don't converge; exercise tracing
  tc.trace_every = 100;
  Trainer trainer(*engine_, tc);
  auto cfg = query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.15, 0.03, 79);
  query::WorkloadGenerator gen(cfg);
  auto report = trainer.Train(&gen, &model);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->gamma_trace.size(), 5u);
  EXPECT_EQ(report->gamma_trace[0].first, 100);
  EXPECT_EQ(report->gamma_trace[4].first, 500);
}

TEST_F(TrainerTest, TrainFromPairsMatchesOnlineTraining) {
  auto cfg = query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.15, 0.03, 83);
  query::WorkloadGenerator gen(cfg);
  std::vector<query::QueryAnswer> pairs;
  for (int i = 0; i < 2000; ++i) {
    const Query q = gen.Next();
    auto mean = engine_->MeanValue(q);
    if (mean.ok()) pairs.push_back({q, mean->mean});
  }

  TrainerConfig tc;
  tc.max_pairs = 100000;
  tc.min_pairs = static_cast<int64_t>(pairs.size()) + 1;  // no early stop
  Trainer trainer(*engine_, tc);

  LlmModel m1(LlmConfig::ForDimension(2, 0.25));
  auto r1 = trainer.TrainFromPairs(pairs, &m1);
  ASSERT_TRUE(r1.ok());

  LlmModel m2(LlmConfig::ForDimension(2, 0.25));
  for (const auto& p : pairs) ASSERT_TRUE(m2.Observe(p.q, p.y).ok());

  ASSERT_EQ(m1.num_prototypes(), m2.num_prototypes());
  for (int k = 0; k < m1.num_prototypes(); ++k) {
    EXPECT_EQ(m1.prototypes()[static_cast<size_t>(k)].y,
              m2.prototypes()[static_cast<size_t>(k)].y);
  }
}

}  // namespace
}  // namespace core
}  // namespace qreg
