// Tests for the future-work extensions (paper Section VII): variance /
// high-order moment queries and adaptation to data updates (drift).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/drift.h"
#include "core/llm_model.h"
#include "core/trainer.h"
#include "core/variance_model.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "storage/kdtree.h"
#include "util/rng.h"

namespace qreg {
namespace core {
namespace {

using query::Query;

// ---------- Moments on the exact engine ----------

TEST(MomentsTest, MatchesManualComputation) {
  storage::Table table(1);
  for (double u : {1.0, 2.0, 3.0, 4.0}) {
    ASSERT_TRUE(table.Append({0.5}, u).ok());
  }
  storage::KdTree index(table);
  query::ExactEngine engine(table, index);
  auto m = engine.Moments(Query({0.5}, 0.1));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->count, 4);
  EXPECT_DOUBLE_EQ(m->mean, 2.5);
  EXPECT_DOUBLE_EQ(m->second_moment, (1.0 + 4.0 + 9.0 + 16.0) / 4.0);
  EXPECT_DOUBLE_EQ(m->variance, m->second_moment - 2.5 * 2.5);
}

TEST(MomentsTest, EmptySubspaceIsNotFound) {
  storage::Table table(1);
  ASSERT_TRUE(table.Append({0.5}, 1.0).ok());
  storage::KdTree index(table);
  query::ExactEngine engine(table, index);
  EXPECT_EQ(engine.Moments(Query({9.0}, 0.1)).status().code(),
            util::StatusCode::kNotFound);
}

TEST(MomentsTest, ConstantDataHasZeroVariance) {
  storage::Table table(1);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(table.Append({0.5}, 7.0).ok());
  storage::KdTree index(table);
  query::ExactEngine engine(table, index);
  auto m = engine.Moments(Query({0.5}, 0.1));
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->variance, 0.0);
}

TEST(MomentsTest, AgreesWithMeanValue) {
  storage::Table table(2);
  util::Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        table.Append({rng.Uniform(), rng.Uniform()}, rng.Gaussian(1.0, 0.3)).ok());
  }
  storage::KdTree index(table);
  query::ExactEngine engine(table, index);
  Query q({0.5, 0.5}, 0.3);
  auto mean = engine.MeanValue(q);
  auto moments = engine.Moments(q);
  ASSERT_TRUE(mean.ok());
  ASSERT_TRUE(moments.ok());
  EXPECT_DOUBLE_EQ(mean->mean, moments->mean);
  EXPECT_EQ(mean->count, moments->count);
}

// ---------- VarianceModel ----------

class VarianceModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // u has mean 2 + x and stddev 0.1 + 0.4 x: both moments vary with x.
    table_ = std::make_unique<storage::Table>(1);
    util::Rng rng(17);
    for (int i = 0; i < 60000; ++i) {
      const double x = rng.Uniform();
      const double u = 2.0 + x + rng.Gaussian(0.0, 0.1 + 0.4 * x);
      ASSERT_TRUE(table_->Append({x}, u).ok());
    }
    index_ = std::make_unique<storage::KdTree>(*table_);
    engine_ = std::make_unique<query::ExactEngine>(*table_, *index_);

    model_ = std::make_unique<VarianceModel>(LlmConfig::ForDimension(1, 0.08));
    query::WorkloadGenerator gen(
        query::WorkloadConfig::Cube(1, 0.0, 1.0, 0.1, 0.03, 19));
    for (int i = 0; i < 15000; ++i) {
      const Query q = gen.Next();
      auto m = engine_->Moments(q);
      if (!m.ok()) continue;
      ASSERT_TRUE(model_->Observe(q, m->mean, m->second_moment).ok());
    }
  }

  std::unique_ptr<storage::Table> table_;
  std::unique_ptr<storage::KdTree> index_;
  std::unique_ptr<query::ExactEngine> engine_;
  std::unique_ptr<VarianceModel> model_;
};

TEST_F(VarianceModelTest, PredictsHeteroscedasticVariance) {
  // At x = 0.2: stddev ≈ 0.18; at x = 0.85: stddev ≈ 0.44.
  auto low = model_->Predict(Query({0.2}, 0.1));
  auto high = model_->Predict(Query({0.85}, 0.1));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_NEAR(low->mean, 2.2, 0.15);
  EXPECT_NEAR(high->mean, 2.85, 0.15);
  EXPECT_GT(high->stddev, low->stddev)
      << "variance model must track the heteroscedastic trend";
  EXPECT_NEAR(low->stddev, 0.18, 0.12);
  EXPECT_NEAR(high->stddev, 0.44, 0.15);
}

TEST_F(VarianceModelTest, VarianceIsNeverNegative) {
  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(1, -0.5, 1.5, 0.1, 0.1, 23));
  for (int i = 0; i < 500; ++i) {
    auto p = model_->Predict(gen.Next());
    ASSERT_TRUE(p.ok());
    EXPECT_GE(p->variance, 0.0);
    EXPECT_DOUBLE_EQ(p->stddev, std::sqrt(p->variance));
  }
}

TEST_F(VarianceModelTest, SaveLoadRoundTrip) {
  std::ostringstream ss;
  ASSERT_TRUE(model_->Save(&ss).ok());
  std::istringstream in(ss.str());
  auto loaded = VarianceModel::Load(&in);
  ASSERT_TRUE(loaded.ok());
  const Query q({0.5}, 0.1);
  auto a = model_->Predict(q);
  auto b = loaded->Predict(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->mean, b->mean);
  EXPECT_DOUBLE_EQ(a->variance, b->variance);
}

TEST_F(VarianceModelTest, FreezePropagatesToBothSubModels) {
  model_->Freeze();
  EXPECT_TRUE(model_->mean_model().frozen());
  EXPECT_TRUE(model_->second_moment_model().frozen());
  EXPECT_FALSE(model_->Observe(Query({0.5}, 0.1), 1.0, 2.0).ok());
}

TEST(VarianceModelEdgeTest, PredictOnEmptyModelFails) {
  VarianceModel model(LlmConfig::ForDimension(1, 0.2));
  EXPECT_FALSE(model.Predict(Query({0.5}, 0.1)).ok());
}

// ---------- Drift detection & retraining ----------

class DriftTest : public ::testing::Test {
 protected:
  static storage::Table MakeTable(double level, uint64_t seed) {
    storage::Table table(1);
    util::Rng rng(seed);
    for (int i = 0; i < 20000; ++i) {
      const double x = rng.Uniform();
      table.Append({x}, level + 0.5 * x + rng.Gaussian(0.0, 0.02)).ok();
    }
    return table;
  }
};

TEST_F(DriftTest, ProbeRequiresCalibration) {
  storage::Table table = MakeTable(1.0, 5);
  storage::KdTree index(table);
  query::ExactEngine engine(table, index);
  LlmModel model(LlmConfig::ForDimension(1, 0.2));
  ASSERT_TRUE(model.Observe(Query({0.5}, 0.1), 1.0).ok());

  DriftMonitor monitor(DriftConfig{});
  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(1, 0.0, 1.0, 0.1, 0.03, 7));
  EXPECT_EQ(monitor.Probe(model, engine, &gen).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(DriftTest, DetectsRegimeShiftAndRecovers) {
  // Train on the original regime.
  storage::Table original = MakeTable(1.0, 11);
  storage::KdTree original_index(original);
  query::ExactEngine original_engine(original, original_index);

  LlmModel model(LlmConfig::ForDimension(1, 0.15));
  TrainerConfig tc;
  tc.max_pairs = 10000;
  tc.min_pairs = 1000;
  Trainer trainer(original_engine, tc);
  query::WorkloadGenerator train_gen(
      query::WorkloadConfig::Cube(1, 0.0, 1.0, 0.1, 0.03, 13));
  ASSERT_TRUE(trainer.Train(&train_gen, &model).ok());

  DriftConfig dcfg;
  dcfg.probe_queries = 150;
  dcfg.degradation_factor = 3.0;
  dcfg.absolute_threshold = 0.05;
  DriftMonitor monitor(dcfg);
  query::WorkloadGenerator probe_gen(
      query::WorkloadConfig::Cube(1, 0.0, 1.0, 0.1, 0.03, 17));
  ASSERT_TRUE(monitor.Calibrate(model, original_engine, &probe_gen).ok());

  // No drift on the unchanged data.
  auto steady = monitor.Probe(model, original_engine, &probe_gen);
  ASSERT_TRUE(steady.ok());
  EXPECT_FALSE(steady->drifted);

  // The relation is replaced by a shifted regime (level 1.0 -> 3.0).
  storage::Table shifted = MakeTable(3.0, 19);
  storage::KdTree shifted_index(shifted);
  query::ExactEngine shifted_engine(shifted, shifted_index);

  auto drifted = monitor.Probe(model, shifted_engine, &probe_gen);
  ASSERT_TRUE(drifted.ok());
  EXPECT_TRUE(drifted->drifted);
  EXPECT_GT(drifted->rmse, 10.0 * drifted->baseline_rmse);

  // Retrain against the new engine; the probe goes quiet again.
  auto retrain = monitor.Retrain(&model, shifted_engine, &train_gen, 15000);
  ASSERT_TRUE(retrain.ok());
  EXPECT_GT(retrain->pairs_used, 0);

  auto recovered = monitor.Probe(model, shifted_engine, &probe_gen);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->drifted)
      << "rmse=" << recovered->rmse << " baseline=" << recovered->baseline_rmse;
}

TEST_F(DriftTest, ResetPlasticityCapsWinsAndScalesMoments) {
  LlmModel model(LlmConfig::ForDimension(1, 0.5));
  util::Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        model.Observe(Query({rng.Uniform(0.4, 0.6)}, 0.1), rng.Uniform()).ok());
  }
  ASSERT_EQ(model.num_prototypes(), 1);
  const Prototype& before = model.prototypes()[0];
  ASSERT_GT(before.wins, 10);
  const double moment_per_win =
      before.input_sq_x[0] / static_cast<double>(before.wins);

  model.ResetPlasticity(10);
  const Prototype& after = model.prototypes()[0];
  EXPECT_EQ(after.wins, 10);
  // Moments scale with the win cap so the preconditioner's *mean* square
  // stays consistent.
  EXPECT_NEAR(after.input_sq_x[0] / 10.0, moment_per_win,
              0.05 * moment_per_win);
  // The model is plastic again: the next update moves y at rate ~1/11^0.6.
  const double y_before = after.y;
  ASSERT_TRUE(model.Observe(Query({0.5}, 0.1), y_before + 1.0).ok());
  EXPECT_GT(std::fabs(model.prototypes()[0].y - y_before), 0.02);
}

TEST_F(DriftTest, UnfreezeClearsConvergenceEvidence) {
  LlmModel model(LlmConfig::ForDimension(1, 0.2));
  ASSERT_TRUE(model.Observe(Query({0.5}, 0.1), 1.0).ok());
  model.Freeze();
  ASSERT_TRUE(model.frozen());
  model.Unfreeze();
  EXPECT_FALSE(model.frozen());
  EXPECT_FALSE(model.HasConverged());  // Γ history cleared
  EXPECT_TRUE(model.Observe(Query({0.5}, 0.1), 1.0).ok());
}

}  // namespace
}  // namespace core
}  // namespace qreg
