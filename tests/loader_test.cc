// Tests for CSV ingestion: CsvReader parsing, table loading (column
// selection, bad-row policy), and writer/loader round trips.

#include <gtest/gtest.h>

#include <fstream>

#include "data/loader.h"
#include "util/csv.h"
#include "util/rng.h"

namespace qreg {
namespace data {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return path;
}

// ---------- CsvReader ----------

TEST(CsvReaderTest, ParsesPlainFields) {
  auto f = util::CsvReader::ParseLine("a,b,c");
  EXPECT_EQ(f, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvReaderTest, ParsesQuotedFields) {
  auto f = util::CsvReader::ParseLine("\"a,b\",c,\"say \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
  EXPECT_EQ(f[2], "say \"hi\"");
}

TEST(CsvReaderTest, EmptyFieldsPreserved) {
  auto f = util::CsvReader::ParseLine(",x,");
  EXPECT_EQ(f, (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvReaderTest, ReadsRowsAndHandlesCrlf) {
  const std::string path = WriteTemp("reader_crlf.csv", "a,b\r\n1,2\r\n");
  util::CsvReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.ReadRow(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(reader.ReadRow(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"1", "2"}));
  EXPECT_FALSE(reader.ReadRow(&fields));
}

TEST(CsvReaderTest, EmbeddedNewlineInQuotedField) {
  const std::string path =
      WriteTemp("reader_nl.csv", "\"line1\nline2\",x\nnext,y\n");
  util::CsvReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.ReadRow(&fields));
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "line1\nline2");
  ASSERT_TRUE(reader.ReadRow(&fields));
  EXPECT_EQ(fields[0], "next");
}

TEST(CsvReaderTest, MissingFileFails) {
  util::CsvReader reader;
  EXPECT_EQ(reader.Open("/no/such/file.csv").code(), util::StatusCode::kIoError);
}

// ---------- LoadCsv ----------

TEST(LoaderTest, LoadsWithHeaderDefaultColumns) {
  const std::string path =
      WriteTemp("load1.csv", "x1,x2,u\n0.1,0.2,1.5\n0.3,0.4,2.5\n");
  CsvLoadReport report;
  auto table = LoadCsv(path, CsvLoadOptions(), &report);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->dimension(), 2u);
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_DOUBLE_EQ(table->x(0)[0], 0.1);
  EXPECT_DOUBLE_EQ(table->u(1), 2.5);
  EXPECT_EQ(report.rows_loaded, 2);
  EXPECT_EQ(report.column_names, (std::vector<std::string>{"x1", "x2", "u"}));
}

TEST(LoaderTest, LoadsHeaderlessWithExplicitColumns) {
  const std::string path = WriteTemp("load2.csv", "9,0.1,0.2\n8,0.3,0.4\n");
  CsvLoadOptions opts;
  opts.has_header = false;
  opts.feature_columns = {1, 2};
  opts.output_column = 0;  // u is the first column
  auto table = LoadCsv(path, opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_DOUBLE_EQ(table->u(0), 9.0);
  EXPECT_DOUBLE_EQ(table->x(1)[1], 0.4);
}

TEST(LoaderTest, BadRowFailsByDefault) {
  const std::string path = WriteTemp("load3.csv", "x,u\n0.1,1\nnot_a_number,2\n");
  EXPECT_EQ(LoadCsv(path).status().code(), util::StatusCode::kInvalidArgument);
}

TEST(LoaderTest, BadRowsSkippedWhenRequested) {
  const std::string path =
      WriteTemp("load4.csv", "x,u\n0.1,1\nbad,2\n0.3,3\n,\n");
  CsvLoadOptions opts;
  opts.skip_bad_rows = true;
  CsvLoadReport report;
  auto table = LoadCsv(path, opts, &report);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(report.rows_loaded, 2);
  EXPECT_EQ(report.rows_skipped, 2);
}

TEST(LoaderTest, RejectsBadColumnSpecs) {
  const std::string path = WriteTemp("load5.csv", "a,b\n1,2\n");
  CsvLoadOptions out_of_range;
  out_of_range.output_column = 7;
  EXPECT_FALSE(LoadCsv(path, out_of_range).ok());

  CsvLoadOptions overlap;
  overlap.feature_columns = {0, 1};
  overlap.output_column = 1;
  EXPECT_FALSE(LoadCsv(path, overlap).ok());
}

TEST(LoaderTest, EmptyFileRejected) {
  const std::string path = WriteTemp("load6.csv", "");
  EXPECT_FALSE(LoadCsv(path).ok());
}

TEST(LoaderTest, SaveLoadRoundTrip) {
  storage::Table original(3);
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(original
                    .Append({rng.Uniform(), rng.Uniform(), rng.Uniform()},
                            rng.Gaussian())
                    .ok());
  }
  const std::string path = testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(SaveTableToCsv(original, path).ok());

  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  ASSERT_EQ(loaded->dimension(), original.dimension());
  for (int64_t i = 0; i < original.num_rows(); ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(loaded->x(i)[j], original.x(i)[j], 1e-9);
    }
    EXPECT_NEAR(loaded->u(i), original.u(i), 1e-9);
  }
}

TEST(LoaderTest, LoadIntoPreSizedTableValidatesDimension) {
  const std::string path = WriteTemp("load7.csv", "x1,x2,u\n0.1,0.2,1\n");
  storage::Table wrong_dim(3);
  CsvLoadReport report;
  EXPECT_FALSE(
      LoadTableFromCsv(path, CsvLoadOptions(), &wrong_dim, &report).ok());

  storage::Table non_empty(2);
  ASSERT_TRUE(non_empty.Append({0.0, 0.0}, 0.0).ok());
  EXPECT_EQ(LoadTableFromCsv(path, CsvLoadOptions(), &non_empty, &report).code(),
            util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace data
}  // namespace qreg
