// Tests for the partitioned parallel exact engine (ISSUE-2 tentpole):
//   - partition plans are disjoint, exhaustive, and visit-equivalent to a
//     full RadiusVisit on both access paths;
//   - parallel Q1/Q2/moments/select answers are bit-for-bit identical
//     across every thread count (including the 0-worker inline mode);
//   - parallel answers agree with the classic one-pass sequential engine
//     up to floating-point reassociation, with exact integer counts;
//   - nested use on an already-busy shared pool completes (no deadlock).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "query/exact_engine.h"
#include "query/workload.h"
#include "storage/kdtree.h"
#include "storage/scan_index.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace qreg {
namespace query {
namespace {

constexpr int64_t kRows = 20000;  // Row count of SharedParallelFixture.

// Fixture and query stream live in test_support.h, shared with
// service_test.cc and lifecycle_test.cc.
using Fixture = testsupport::EngineFixture;

Fixture* SharedFixture() { return testsupport::SharedParallelFixture(); }

std::vector<Query> TestQueries(int64_t n, uint64_t seed) {
  return testsupport::ParallelTestQueries(n, seed);
}

std::vector<const storage::SpatialIndex*> BothIndexes() {
  Fixture* f = SharedFixture();
  return {f->scan.get(), f->kdtree.get()};
}

// ---------- Partition plans ----------

TEST(PartitionPlanTest, CoversAllRowsDisjointly) {
  for (const storage::SpatialIndex* index : BothIndexes()) {
    for (size_t target : {1u, 3u, 8u, 64u}) {
      const auto plan = index->MakePartitions(target);
      ASSERT_GE(plan.size(), 1u) << index->name();
      EXPECT_LE(plan.size(), static_cast<size_t>(kRows));
      // Visiting every partition with an all-covering ball yields each row
      // exactly once.
      const double center[2] = {0.5, 0.5};
      std::vector<int64_t> seen;
      storage::SelectionStats stats;
      for (const auto& part : plan) {
        index->RadiusVisitPartition(
            part, center, /*radius=*/100.0, storage::LpNorm::L2(),
            [&seen](int64_t id, const double*, double) { seen.push_back(id); },
            &stats);
      }
      ASSERT_EQ(seen.size(), static_cast<size_t>(kRows))
          << index->name() << " target=" << target;
      std::sort(seen.begin(), seen.end());
      for (int64_t i = 0; i < kRows; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
      EXPECT_EQ(stats.tuples_matched, kRows);
    }
  }
}

TEST(PartitionPlanTest, IsDeterministic) {
  for (const storage::SpatialIndex* index : BothIndexes()) {
    const auto a = index->MakePartitions(16);
    const auto b = index->MakePartitions(16);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].begin, b[i].begin);
      EXPECT_EQ(a[i].end, b[i].end);
      EXPECT_EQ(a[i].node, b[i].node);
    }
  }
}

TEST(PartitionPlanTest, PartitionedVisitMatchesRadiusVisit) {
  for (const storage::SpatialIndex* index : BothIndexes()) {
    for (const Query& q : TestQueries(20, 31)) {
      storage::SelectionStats full_stats;
      std::vector<int64_t> full =
          index->RadiusSearch(q.center.data(), q.theta, storage::LpNorm::L2(),
                              &full_stats);

      storage::SelectionStats part_stats;
      std::vector<int64_t> parted;
      for (const auto& part : index->MakePartitions(16)) {
        index->RadiusVisitPartition(
            part, q.center.data(), q.theta, storage::LpNorm::L2(),
            [&parted](int64_t id, const double*, double) {
              parted.push_back(id);
            },
            &part_stats);
      }
      EXPECT_EQ(parted, full) << index->name();  // Order included.
      EXPECT_EQ(part_stats.tuples_examined, full_stats.tuples_examined);
      EXPECT_EQ(part_stats.tuples_matched, full_stats.tuples_matched);
    }
  }
}

// ---------- Bit-for-bit determinism across thread counts ----------

struct AllAnswers {
  std::vector<util::Result<MeanValueResult>> q1;
  std::vector<util::Result<MomentsResult>> moments;
  std::vector<util::Result<linalg::OlsFit>> q2;
  std::vector<std::vector<int64_t>> select;
};

AllAnswers Collect(const ExactEngine& engine, const std::vector<Query>& qs) {
  AllAnswers out;
  for (const Query& q : qs) {
    out.q1.push_back(engine.MeanValue(q));
    out.moments.push_back(engine.Moments(q));
    out.q2.push_back(engine.Regression(q));
    out.select.push_back(engine.Select(q).value());
  }
  return out;
}

void ExpectBitwiseEqual(const AllAnswers& a, const AllAnswers& b) {
  ASSERT_EQ(a.q1.size(), b.q1.size());
  for (size_t i = 0; i < a.q1.size(); ++i) {
    ASSERT_EQ(a.q1[i].ok(), b.q1[i].ok()) << "q1 " << i;
    if (a.q1[i].ok()) {
      EXPECT_EQ(a.q1[i]->mean, b.q1[i]->mean) << "q1 " << i;
      EXPECT_EQ(a.q1[i]->count, b.q1[i]->count) << "q1 " << i;
    }
    ASSERT_EQ(a.moments[i].ok(), b.moments[i].ok()) << "moments " << i;
    if (a.moments[i].ok()) {
      EXPECT_EQ(a.moments[i]->mean, b.moments[i]->mean);
      EXPECT_EQ(a.moments[i]->second_moment, b.moments[i]->second_moment);
      EXPECT_EQ(a.moments[i]->variance, b.moments[i]->variance);
    }
    ASSERT_EQ(a.q2[i].ok(), b.q2[i].ok()) << "q2 " << i;
    if (a.q2[i].ok()) {
      EXPECT_EQ(a.q2[i]->intercept, b.q2[i]->intercept) << "q2 " << i;
      EXPECT_EQ(a.q2[i]->slope, b.q2[i]->slope) << "q2 " << i;
    }
    EXPECT_EQ(a.select[i], b.select[i]) << "select " << i;
  }
}

TEST(ParallelExactTest, BitForBitIdenticalAcrossThreadCounts) {
  Fixture* f = SharedFixture();
  const std::vector<Query> qs = TestQueries(25, 47);

  for (const storage::SpatialIndex* index :
       {static_cast<const storage::SpatialIndex*>(f->scan.get()),
        static_cast<const storage::SpatialIndex*>(f->kdtree.get())}) {
    // Baseline: the partitioned reduction run inline (no pool at all).
    ExactEngine inline_engine(f->dataset->table, *index);
    ParallelOptions inline_par;
    inline_par.target_partitions = 16;
    inline_engine.set_parallel(inline_par);
    const AllAnswers want = Collect(inline_engine, qs);

    for (size_t threads : {1u, 2u, 4u, 8u}) {
      util::ThreadPool pool(threads);
      ExactEngine engine(f->dataset->table, *index);
      ParallelOptions par;
      par.pool = &pool;
      par.target_partitions = 16;
      engine.set_parallel(par);
      ExpectBitwiseEqual(want, Collect(engine, qs));
    }
  }
}

// ---------- Agreement with the classic sequential engine ----------

TEST(ParallelExactTest, MatchesSequentialEngine) {
  Fixture* f = SharedFixture();
  util::ThreadPool pool(4);

  ExactEngine sequential(f->dataset->table, *f->kdtree);
  ExactEngine parallel(f->dataset->table, *f->kdtree);
  ParallelOptions par;
  par.pool = &pool;
  parallel.set_parallel(par);

  int64_t nonempty = 0;
  for (const Query& q : TestQueries(40, 53)) {
    ExecStats seq_stats, par_stats;
    auto want = sequential.MeanValue(q, &seq_stats);
    auto got = parallel.MeanValue(q, &par_stats);
    ASSERT_EQ(want.ok(), got.ok());
    EXPECT_EQ(seq_stats.tuples_examined, par_stats.tuples_examined);
    EXPECT_EQ(seq_stats.tuples_matched, par_stats.tuples_matched);
    if (!want.ok()) continue;
    ++nonempty;
    EXPECT_EQ(want->count, got->count);  // Integer: exact.
    EXPECT_NEAR(want->mean, got->mean,
                1e-9 * std::max(1.0, std::fabs(want->mean)));

    auto want_fit = sequential.Regression(q);
    auto got_fit = parallel.Regression(q);
    ASSERT_EQ(want_fit.ok(), got_fit.ok());
    if (!want_fit.ok()) continue;
    EXPECT_NEAR(want_fit->intercept, got_fit->intercept,
                1e-8 * std::max(1.0, std::fabs(want_fit->intercept)));
    ASSERT_EQ(want_fit->slope.size(), got_fit->slope.size());
    for (size_t j = 0; j < want_fit->slope.size(); ++j) {
      EXPECT_NEAR(want_fit->slope[j], got_fit->slope[j],
                  1e-8 * std::max(1.0, std::fabs(want_fit->slope[j])));
    }
    // Select: the plan order reproduces the sequential visit order exactly.
    EXPECT_EQ(sequential.Select(q).value(), parallel.Select(q).value());
  }
  EXPECT_GT(nonempty, 10);
}

TEST(ParallelExactTest, EmptySubspaceIsNotFound) {
  Fixture* f = SharedFixture();
  util::ThreadPool pool(2);
  ExactEngine engine(f->dataset->table, *f->kdtree);
  ParallelOptions par;
  par.pool = &pool;
  engine.set_parallel(par);

  const Query far_away({50.0, 50.0}, 0.01);
  EXPECT_EQ(engine.MeanValue(far_away).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(engine.Moments(far_away).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(engine.Regression(far_away).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_TRUE(engine.Select(far_away).value().empty());
}

// ---------- Shared-pool nesting ----------

TEST(ParallelExactTest, NestedOnSharedPoolCompletes) {
  // Queries running *on* the pool they also fan chunks out to: TrySubmit
  // falls back to caller-runs-chunks, so this must terminate and agree with
  // the inline baseline.
  Fixture* f = SharedFixture();
  const std::vector<Query> qs = TestQueries(12, 61);

  ExactEngine inline_engine(f->dataset->table, *f->scan);
  ParallelOptions inline_par;
  inline_par.target_partitions = 8;
  inline_engine.set_parallel(inline_par);

  util::ThreadPool pool(2, /*queue_capacity=*/4);
  ExactEngine engine(f->dataset->table, *f->scan);
  ParallelOptions par;
  par.pool = &pool;
  par.target_partitions = 8;
  engine.set_parallel(par);

  std::vector<double> means(qs.size(), 0.0);
  util::BlockingCounter done(static_cast<int64_t>(qs.size()));
  for (size_t i = 0; i < qs.size(); ++i) {
    pool.Submit([&engine, &qs, &means, &done, i] {
      auto r = engine.MeanValue(qs[i]);
      means[i] = r.ok() ? r->mean : std::nan("");
      done.DecrementCount();
    });
  }
  done.Wait();
  for (size_t i = 0; i < qs.size(); ++i) {
    auto want = inline_engine.MeanValue(qs[i]);
    if (want.ok()) {
      EXPECT_EQ(means[i], want->mean) << i;  // Bit-for-bit, even nested.
    } else {
      EXPECT_TRUE(std::isnan(means[i])) << i;
    }
  }
}

}  // namespace
}  // namespace query
}  // namespace qreg
