// Deterministic fault-injection tests for the request lifecycle (deadlines,
// cancellation, graceful degradation) and drift-driven retraining:
//
//   - an already-expired deadline returns kDeadlineExceeded without visiting
//     any partition; a mid-scan trip aborts within one chunk-claim with
//     partial-work accounting (FakeClock + blocking gates, no sleeps);
//   - the router degrades exact → model answer (used_fallback) under
//     deadline pressure, prefers the δ-cache over both, and sheds with the
//     typed status when no fallback exists; cancellation never degrades;
//   - MaybeRetrain probes drift after an injected distribution shift, swaps
//     the model generation, and generation-tagged cache keys stop every
//     pre-retrain answer from being served;
//   - core/drift.cc edge cases: empty probe window, probe RMSE exactly on
//     the threshold, repeated probes after a retrain reset.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/drift.h"
#include "core/llm_model.h"
#include "core/trainer.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "service/model_catalog.h"
#include "service/query_router.h"
#include "storage/scan_index.h"
#include "storage/table.h"
#include "test_support.h"
#include "util/cancellation.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qreg {
namespace {

using service::AnswerSource;
using service::CatalogOptions;
using service::ModelCatalog;
using service::QueryRouter;
using service::Request;
using service::RouterConfig;
using service::RoutePolicy;
using testsupport::EngineFixture;
using testsupport::FakeClock;
using testsupport::Gate;

// ---------- CancellationToken / Deadline / ExecControl ----------

TEST(LifecycleControlTest, DefaultTokenIsNeverCancelled) {
  util::CancellationToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
  token.Cancel();  // No-op, not a crash.
  EXPECT_FALSE(token.cancelled());
}

TEST(LifecycleControlTest, CopiesShareCancellationState) {
  util::CancellationToken token = util::CancellationToken::Cancellable();
  util::CancellationToken copy = token;
  EXPECT_TRUE(copy.cancellable());
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(token.cancelled());
}

TEST(LifecycleControlTest, DeadlineExpiresOnInjectedClock) {
  FakeClock clock(1000);
  util::Deadline none;
  EXPECT_TRUE(none.infinite());
  EXPECT_FALSE(none.expired());

  util::Deadline d = util::Deadline::AfterNanos(500, &clock);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_nanos(), 500);
  clock.AdvanceNanos(499);
  EXPECT_FALSE(d.expired());
  clock.AdvanceNanos(1);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_nanos(), 0);
}

TEST(LifecycleControlTest, CheckPrefersCancellationOverDeadline) {
  FakeClock clock(100);
  util::ExecControl ctl;
  EXPECT_FALSE(ctl.active());
  ctl.deadline = util::Deadline::AtNanos(50, &clock);  // Already expired.
  ctl.cancel = util::CancellationToken::Cancellable();
  EXPECT_TRUE(ctl.active());
  EXPECT_EQ(ctl.Check().code(), util::StatusCode::kDeadlineExceeded);
  ctl.cancel.Cancel();
  EXPECT_EQ(ctl.Check().code(), util::StatusCode::kCancelled);
}

TEST(LifecycleControlTest, NewStatusCodesRoundTrip) {
  util::Status d = util::Status::DeadlineExceeded("late");
  EXPECT_EQ(d.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "Deadline exceeded: late");
  util::Status c = util::Status::Cancelled("stop");
  EXPECT_EQ(c.code(), util::StatusCode::kCancelled);
  EXPECT_EQ(c.ToString(), "Cancelled: stop");
}

// ---------- Engine-level lifecycle: the partitioned scan ----------

// A scan-index engine over the shared 20000-row dataset, partitioned into 8
// inline chunks (no pool) so chunk order is deterministic: 0, 1, 2, ...
std::unique_ptr<query::ExactEngine> PartitionedScanEngine(size_t partitions = 8) {
  EngineFixture* f = testsupport::SharedParallelFixture();
  auto engine = std::make_unique<query::ExactEngine>(f->dataset->table, *f->scan);
  query::ParallelOptions par;
  par.target_partitions = partitions;
  engine->set_parallel(par);
  return engine;
}

// A ball covering the whole table: every partition has rows to visit.
query::Query CoveringQuery() { return query::Query({0.5, 0.5}, 100.0); }

TEST(LifecycleEngineTest, ExpiredDeadlineReturnsWithoutVisitingAnyPartition) {
  auto engine = PartitionedScanEngine();
  FakeClock clock(100);
  std::atomic<int64_t> chunks_seen{0};
  util::ExecControl ctl;
  ctl.deadline = util::Deadline::AtNanos(50, &clock);  // Expired at admission.
  ctl.on_chunk_for_testing = [&chunks_seen](size_t) { ++chunks_seen; };

  query::ExecStats stats;
  auto mean = engine->MeanValue(CoveringQuery(), &stats, &ctl);
  EXPECT_EQ(mean.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(chunks_seen.load(), 0);  // No partition was even claimed.
  EXPECT_EQ(stats.tuples_examined, 0);
  EXPECT_EQ(stats.chunks_completed, 0);

  EXPECT_EQ(engine->Moments(CoveringQuery(), nullptr, &ctl).status().code(),
            util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine->Regression(CoveringQuery(), nullptr, &ctl).status().code(),
            util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(chunks_seen.load(), 0);
}

TEST(LifecycleEngineTest, DeadlineTripMidScanKeepsPartialWork) {
  auto engine = PartitionedScanEngine(/*partitions=*/8);
  FakeClock clock(0);
  util::ExecControl ctl;
  ctl.deadline = util::Deadline::AtNanos(1000, &clock);
  // The fault injection: the clock jumps past the deadline just before the
  // third chunk's lifecycle check. No sleeps, no timing dependence.
  ctl.on_chunk_for_testing = [&clock](size_t chunk) {
    if (chunk == 2) clock.SetNanos(2000);
  };

  query::ExecStats stats;
  auto mean = engine->MeanValue(CoveringQuery(), &stats, &ctl);
  EXPECT_EQ(mean.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.chunks_completed, 2);  // Chunks 0 and 1 ran; 2 aborted.
  EXPECT_EQ(stats.chunks_total, 8);
  // Partial-work accounting: exactly the first two partitions were scanned.
  EXPECT_GT(stats.tuples_examined, 0);
  EXPECT_LT(stats.tuples_examined, 20000);
}

TEST(LifecycleEngineTest, CancellationFromAnotherThreadStopsWithinOneChunk) {
  auto engine = PartitionedScanEngine(/*partitions=*/8);
  util::CancellationToken token = util::CancellationToken::Cancellable();
  Gate scan_reached_second_chunk;
  Gate token_tripped;

  util::ExecControl ctl;
  ctl.cancel = token;
  ctl.on_chunk_for_testing = [&](size_t chunk) {
    if (chunk == 1) {
      // Hand control to the canceller and block until the token has
      // *actually* tripped — the subsequent Check() must observe it.
      scan_reached_second_chunk.Open();
      token_tripped.Wait();
    }
  };

  std::thread canceller([&] {
    scan_reached_second_chunk.Wait();
    token.Cancel();
    token_tripped.Open();
  });

  query::ExecStats stats;
  auto mean = engine->MeanValue(CoveringQuery(), &stats, &ctl);
  canceller.join();

  EXPECT_EQ(mean.status().code(), util::StatusCode::kCancelled);
  // Within one chunk-claim of the trip: chunk 0 completed before the trip,
  // and not a single chunk body ran after it.
  EXPECT_EQ(stats.chunks_completed, 1);
  EXPECT_EQ(stats.chunks_total, 8);
}

TEST(LifecycleEngineTest, PooledScanDrainsWithoutExecutingAfterTrip) {
  // Pool workers and the caller all claim chunks concurrently; the hook
  // trips the token at every claim, so no chunk body may execute and the
  // scan must still terminate (claimed-and-skipped fast drain).
  EngineFixture* f = testsupport::SharedParallelFixture();
  util::ThreadPool pool(4);
  query::ExactEngine engine(f->dataset->table, *f->scan);
  query::ParallelOptions par;
  par.pool = &pool;
  par.target_partitions = 16;
  engine.set_parallel(par);

  util::CancellationToken token = util::CancellationToken::Cancellable();
  util::ExecControl ctl;
  ctl.cancel = token;
  ctl.on_chunk_for_testing = [&token](size_t) { token.Cancel(); };

  query::ExecStats stats;
  auto mean = engine.MeanValue(CoveringQuery(), &stats, &ctl);
  EXPECT_EQ(mean.status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(stats.chunks_completed, 0);
  EXPECT_EQ(stats.tuples_examined, 0);
}

TEST(LifecycleEngineTest, BenignControlKeepsAnswersBitForBit) {
  auto engine = PartitionedScanEngine(/*partitions=*/16);
  FakeClock clock(0);
  util::ExecControl ctl;
  ctl.deadline = util::Deadline::AtNanos(1LL << 60, &clock);  // Never trips.
  ctl.cancel = util::CancellationToken::Cancellable();        // Never tripped.
  ASSERT_TRUE(ctl.active());

  for (const query::Query& q : testsupport::ParallelTestQueries(15, 91)) {
    auto plain = engine->MeanValue(q);
    auto guarded = engine->MeanValue(q, nullptr, &ctl);
    ASSERT_EQ(plain.ok(), guarded.ok());
    if (plain.ok()) {
      EXPECT_EQ(plain->mean, guarded->mean);
      EXPECT_EQ(plain->count, guarded->count);
    }
    auto plain_fit = engine->Regression(q);
    auto guarded_fit = engine->Regression(q, nullptr, &ctl);
    ASSERT_EQ(plain_fit.ok(), guarded_fit.ok());
    if (plain_fit.ok()) {
      EXPECT_EQ(plain_fit->intercept, guarded_fit->intercept);
      EXPECT_EQ(plain_fit->slope, guarded_fit->slope);
    }
  }
}

// ---------- Select: the last unbounded engine entry point ----------

TEST(LifecycleEngineTest, SelectExpiredDeadlineReturnsWithoutVisiting) {
  auto engine = PartitionedScanEngine();
  FakeClock clock(100);
  std::atomic<int64_t> chunks_seen{0};
  util::ExecControl ctl;
  ctl.deadline = util::Deadline::AtNanos(50, &clock);  // Expired at admission.
  ctl.on_chunk_for_testing = [&chunks_seen](size_t) { ++chunks_seen; };

  query::ExecStats stats;
  auto ids = engine->Select(CoveringQuery(), &stats, &ctl);
  EXPECT_EQ(ids.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(chunks_seen.load(), 0);
  EXPECT_EQ(stats.tuples_examined, 0);
  EXPECT_EQ(stats.chunks_completed, 0);
}

TEST(LifecycleEngineTest, SelectCancellationFromAnotherThreadTripsWithinOneChunk) {
  // Regression for the parallel Select that used to pass /*control=*/nullptr
  // into RunChunks: a selection scan must trip within one chunk-claim of a
  // cross-thread cancel, exactly like the aggregation scans.
  auto engine = PartitionedScanEngine(/*partitions=*/8);
  util::CancellationToken token = util::CancellationToken::Cancellable();
  Gate scan_reached_second_chunk;
  Gate token_tripped;

  util::ExecControl ctl;
  ctl.cancel = token;
  ctl.on_chunk_for_testing = [&](size_t chunk) {
    if (chunk == 1) {
      scan_reached_second_chunk.Open();
      token_tripped.Wait();
    }
  };

  std::thread canceller([&] {
    scan_reached_second_chunk.Wait();
    token.Cancel();
    token_tripped.Open();
  });

  query::ExecStats stats;
  auto ids = engine->Select(CoveringQuery(), &stats, &ctl);
  canceller.join();

  EXPECT_EQ(ids.status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(stats.chunks_completed, 1);  // Chunk 0 ran; chunk 1 aborted.
  EXPECT_EQ(stats.chunks_total, 8);
}

TEST(LifecycleEngineTest, SelectBenignControlKeepsIdsBitForBit) {
  auto engine = PartitionedScanEngine(/*partitions=*/16);
  util::ExecControl ctl;
  ctl.cancel = util::CancellationToken::Cancellable();  // Never tripped.
  ASSERT_TRUE(ctl.active());
  for (const query::Query& q : testsupport::ParallelTestQueries(10, 97)) {
    auto plain = engine->Select(q);
    auto guarded = engine->Select(q, nullptr, &ctl);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(guarded.ok());
    EXPECT_EQ(plain.value(), guarded.value());  // Order included.
  }
}

// ---------- Training lifecycle: Trainer + GetOrTrain ----------

// A small, fast-training recipe over the shared service fixture, with the
// trainer's per-pair hook exposed for fault injection.
service::CatalogOptions AbortableCatalogOptions(
    std::function<void(int64_t)> on_pair) {
  service::CatalogOptions opts = testsupport::DefaultCatalogOptions();
  opts.trainer.max_pairs = 400;
  opts.trainer.min_pairs = 50;
  opts.trainer.on_pair_for_testing = std::move(on_pair);
  return opts;
}

TEST(LifecycleTrainTest, TrainerAbortsBeforeFirstQueryOnExpiredControl) {
  EngineFixture* f = testsupport::SharedServiceFixture();
  core::LlmModel model(testsupport::DefaultCatalogOptions().llm);
  std::atomic<int64_t> queries_attempted{0};
  core::TrainerConfig tc;
  tc.max_pairs = 400;
  tc.on_pair_for_testing = [&queries_attempted](int64_t) { ++queries_attempted; };
  core::Trainer trainer(*f->engine, tc);
  query::WorkloadGenerator gen(testsupport::DefaultCatalogOptions().workload);

  FakeClock clock(100);
  util::ExecControl ctl;
  ctl.deadline = util::Deadline::AtNanos(50, &clock);  // Already expired.
  core::TrainingReport partial;
  partial.pairs_used = -1;  // Sentinel: must be overwritten.
  auto report = trainer.Train(&gen, &model, &ctl, &partial);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(partial.pairs_used, 0);
  EXPECT_EQ(queries_attempted.load(), 1);  // The hook fires before the check.
  EXPECT_EQ(model.num_prototypes(), 0);    // Not a single pair was fed.
}

TEST(LifecycleTrainTest, MidTrainDeadlineKeepsPartialReport) {
  EngineFixture* f = testsupport::SharedServiceFixture();
  core::LlmModel model(testsupport::DefaultCatalogOptions().llm);
  FakeClock clock(0);
  core::TrainerConfig tc;
  tc.max_pairs = 400;
  // The fault injection: the clock jumps past the deadline at the boundary
  // before the 6th pair's training query.
  tc.on_pair_for_testing = [&clock](int64_t pairs_done) {
    if (pairs_done == 5) clock.SetNanos(2000);
  };
  core::Trainer trainer(*f->engine, tc);
  query::WorkloadGenerator gen(testsupport::DefaultCatalogOptions().workload);

  util::ExecControl ctl;
  ctl.deadline = util::Deadline::AtNanos(1000, &clock);
  core::TrainingReport partial;
  auto report = trainer.Train(&gen, &model, &ctl, &partial);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(partial.pairs_used, 5);  // Exactly the pairs fed before the trip.
  EXPECT_EQ(partial.num_prototypes, model.num_prototypes());
  EXPECT_GT(partial.query_exec_nanos, 0);  // Where the aborted time went.
  EXPECT_FALSE(partial.converged);
}

TEST(LifecycleTrainTest, GetOrTrainExpiredControlRunsZeroTrainingQueries) {
  EngineFixture* f = testsupport::SharedServiceFixture();
  service::ModelCatalog catalog;
  std::atomic<int64_t> queries_attempted{0};
  ASSERT_TRUE(catalog
                  .Register("lazy", &f->dataset->table, f->kdtree.get(),
                            AbortableCatalogOptions([&queries_attempted](
                                int64_t) { ++queries_attempted; }))
                  .ok());

  FakeClock clock(1000);
  util::ExecControl ctl;
  ctl.deadline = util::Deadline::AtNanos(500, &clock);  // Already expired.
  auto snap = catalog.GetOrTrain("lazy", &ctl);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(queries_attempted.load(), 0);  // Trainer was never entered.

  // The entry is untrained, not poisoned: a lifecycle-free caller trains it.
  auto untrained = catalog.Get("lazy");
  ASSERT_TRUE(untrained.ok());
  EXPECT_EQ(untrained->model, nullptr);
  auto retried = catalog.GetOrTrain("lazy");
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_NE(retried->model, nullptr);
  EXPECT_EQ(retried->generation, 1);
  EXPECT_GT(queries_attempted.load(), 0);
}

TEST(LifecycleTrainTest, GatedMidTrainCancelLeavesEntryRetrainable) {
  EngineFixture* f = testsupport::SharedServiceFixture();
  service::ModelCatalog catalog;
  util::CancellationToken token = util::CancellationToken::Cancellable();
  Gate training_reached_pair_four;
  Gate token_tripped;
  std::atomic<bool> gates_armed{true};
  ASSERT_TRUE(catalog
                  .Register("lazy", &f->dataset->table, f->kdtree.get(),
                            AbortableCatalogOptions([&](int64_t pairs_done) {
                              if (pairs_done == 4 &&
                                  gates_armed.exchange(false)) {
                                // Hand control to the canceller and block
                                // until the token has actually tripped: the
                                // next lifecycle check must observe it.
                                training_reached_pair_four.Open();
                                token_tripped.Wait();
                              }
                            }))
                  .ok());

  std::thread canceller([&] {
    training_reached_pair_four.Wait();
    token.Cancel();
    token_tripped.Open();
  });

  util::ExecControl ctl;
  ctl.cancel = token;
  auto snap = catalog.GetOrTrain("lazy", &ctl);
  canceller.join();
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), util::StatusCode::kCancelled);

  // Mid-train abort leaves the entry retryable; the retry trains to
  // completion (its control is absent, the gates are disarmed).
  auto retried = catalog.GetOrTrain("lazy");
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_NE(retried->model, nullptr);
  EXPECT_EQ(retried->generation, 1);
}

TEST(LifecycleTrainTest, ConcurrentWaiterWithLiveDeadlineGetsModel) {
  EngineFixture* f = testsupport::SharedServiceFixture();
  service::ModelCatalog catalog;
  Gate training_started;
  Gate release_training;
  std::atomic<bool> gates_armed{true};
  ASSERT_TRUE(catalog
                  .Register("lazy", &f->dataset->table, f->kdtree.get(),
                            AbortableCatalogOptions([&](int64_t pairs_done) {
                              if (pairs_done == 0 && gates_armed.exchange(false)) {
                                training_started.Open();
                                release_training.Wait();
                              }
                            }))
                  .ok());

  // Trainer thread: elected, then gated inside the first pair.
  std::thread trainer_thread([&] {
    auto snap = catalog.GetOrTrain("lazy");
    EXPECT_TRUE(snap.ok()) << snap.status();
  });
  training_started.Wait();

  // Waiter with a generous live deadline: it must not be poisoned by the
  // in-flight training and must receive the model once training finishes.
  FakeClock clock(0);
  util::ExecControl live;
  live.deadline = util::Deadline::AtNanos(1LL << 60, &clock);
  std::thread waiter([&] {
    auto snap = catalog.GetOrTrain("lazy", &live);
    EXPECT_TRUE(snap.ok()) << snap.status();
    if (snap.ok()) {
      EXPECT_NE(snap->model, nullptr);
      EXPECT_EQ(snap->generation, 1);
    }
  });

  release_training.Open();
  trainer_thread.join();
  waiter.join();
}

TEST(LifecycleTrainTest, ExpiredWaiterDoesNotBlockBehindLiveTraining) {
  EngineFixture* f = testsupport::SharedServiceFixture();
  service::ModelCatalog catalog;
  Gate training_started;
  Gate release_training;
  std::atomic<bool> gates_armed{true};
  ASSERT_TRUE(catalog
                  .Register("lazy", &f->dataset->table, f->kdtree.get(),
                            AbortableCatalogOptions([&](int64_t pairs_done) {
                              if (pairs_done == 0 && gates_armed.exchange(false)) {
                                training_started.Open();
                                release_training.Wait();
                              }
                            }))
                  .ok());

  std::thread trainer_thread([&] {
    auto snap = catalog.GetOrTrain("lazy");
    EXPECT_TRUE(snap.ok()) << snap.status();
  });
  training_started.Wait();

  // While the trainer is gated (training will not finish), a second request
  // whose deadline is already gone returns the typed status instead of
  // queueing behind a training it would abandon anyway.
  FakeClock clock(1000);
  util::ExecControl expired;
  expired.deadline = util::Deadline::AtNanos(500, &clock);
  auto snap = catalog.GetOrTrain("lazy", &expired);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(release_training.opened());  // It returned while training ran.

  release_training.Open();
  trainer_thread.join();
}

// ---------- Router-level lifecycle: degrade-to-model vs shed ----------

TEST(LifecycleRouterTest, CancelledRequestReturnsCancelledAndNeverDegrades) {
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kHybrid;
  cfg.enable_cache = false;
  QueryRouter router(testsupport::SharedCatalog(), cfg);

  Request r = Request::Q1("r1", query::Query({0.5, 0.5}, 0.12));
  r.cancel = util::CancellationToken::Cancellable();
  r.cancel.Cancel();
  auto got = router.Execute(r);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kCancelled);

  service::ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.degraded, 0);
}

TEST(LifecycleRouterTest, DeadlinePressureDegradesExactToModelAnswer) {
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kHybrid;
  cfg.enable_cache = false;
  QueryRouter router(testsupport::SharedCatalog(), cfg);

  // Far outside the trained region: hybrid routing picks the exact engine.
  // The deadline is live at admission and trips mid-scan (the chunk hook
  // jumps the clock), so the router degrades to the model's answer.
  FakeClock clock(0);
  Request r = Request::Q1("r1", query::Query({1.5, 1.5}, 1.0));
  r.deadline = util::Deadline::AtNanos(1000, &clock);
  r.on_chunk_for_testing = [&clock](size_t) { clock.SetNanos(2000); };

  auto got = router.Execute(r);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->source, AnswerSource::kModel);
  EXPECT_TRUE(got->used_fallback);
  // The killed exact attempt's partial accounting rides on the degraded
  // answer instead of vanishing: the scan was planned but cut short.
  EXPECT_GT(got->exec.chunks_total, 0);
  EXPECT_LT(got->exec.chunks_completed, got->exec.chunks_total);

  service::ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.degraded, 1);
  EXPECT_EQ(stats.deadline_exceeded, 0);  // Degraded, not failed.
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.model_answers, 1);
}

TEST(LifecycleRouterTest, ExactOnlyDeadlineShedsWithTypedStatus) {
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kExactOnly;  // No model to degrade to.
  cfg.enable_cache = false;
  QueryRouter router(testsupport::SharedCatalog(), cfg);

  FakeClock clock(1000);
  Request r = Request::Q1("r1", query::Query({0.5, 0.5}, 0.12));
  r.deadline = util::Deadline::AtNanos(500, &clock);

  auto got = router.Execute(r);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kDeadlineExceeded);

  service::ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.degraded, 0);
  EXPECT_EQ(stats.errors, 1);
}

TEST(LifecycleRouterTest, LiveDeadlineStillGetsCachedAnswer) {
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kExactOnly;
  cfg.enable_cache = true;
  cfg.cache.delta_min = 1.0;  // Exact repeats only: deterministic hits.
  QueryRouter router(testsupport::SharedCatalog(), cfg);

  // Warm the cache without any deadline.
  Request warm = Request::Q1("r1", query::Query({0.5, 0.5}, 0.12));
  auto first = router.Execute(warm);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->source, AnswerSource::kExact);

  // Same query with budget remaining: the δ-cache answers before the exact
  // engine is ever consulted.
  FakeClock clock(0);
  Request repeat = warm;
  repeat.deadline = util::Deadline::AtNanos(1000, &clock);
  auto cached = router.Execute(repeat);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->source, AnswerSource::kCache);
  EXPECT_FALSE(cached->used_fallback);
  EXPECT_EQ(cached->mean, first->mean);
}

TEST(LifecycleRouterTest, ExpiredDeadlineRejectedBeforeCacheLookup) {
  // A cache hit must not mask kDeadlineExceeded: an already-expired request
  // is rejected at admission, before the δ-cache is consulted, so its
  // outcome never depends on what other queries happened to cache.
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kExactOnly;
  cfg.enable_cache = true;
  cfg.cache.delta_min = 1.0;
  QueryRouter router(testsupport::SharedCatalog(), cfg);

  Request warm = Request::Q1("r1", query::Query({0.5, 0.5}, 0.12));
  ASSERT_TRUE(router.Execute(warm).ok());

  FakeClock clock(1000);
  Request repeat = warm;  // Identical query: the cache has it.
  repeat.deadline = util::Deadline::AtNanos(500, &clock);  // Expired.
  auto got = router.Execute(repeat);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(router.CacheStats().hits, 0);  // Lookup never happened.

  service::ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.degraded, 0);  // Admission rejection, not degrade.
}

TEST(LifecycleRouterTest, CancelledRequestOnShedPathStaysCancelled) {
  // The outcome of a cancelled request must not depend on pool load: even
  // when the saturated-batch path could answer it from the δ-cache, it
  // returns kCancelled like the normal path would.
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kModelOnly;
  cfg.enable_cache = true;
  cfg.cache.delta_min = 1.0;
  cfg.num_threads = 1;
  cfg.queue_capacity = 1;
  cfg.overload = service::OverloadPolicy::kShed;
  QueryRouter router(testsupport::SharedCatalog(), cfg);

  // Warm the cache inline, then saturate: gate the lone worker and fill
  // the 1-slot queue (gate handshake, no sleeps).
  Request warm = Request::Q1("r1", query::Query({0.5, 0.5}, 0.1));
  ASSERT_TRUE(router.Execute(warm).ok());
  Gate worker_started, release_worker;
  service::ThreadPool* pool = router.pool_for_testing();
  pool->Submit([&] {
    worker_started.Open();
    release_worker.Wait();
  });
  worker_started.Wait();                // Worker dequeued the blocker...
  ASSERT_TRUE(pool->TrySubmit([] {}));  // ...and the queue slot is full.

  Request cancelled_repeat = warm;  // Identical query: the cache has it.
  cancelled_repeat.cancel = util::CancellationToken::Cancellable();
  cancelled_repeat.cancel.Cancel();
  auto results = router.ExecuteBatch({cancelled_repeat});
  release_worker.Open();

  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), util::StatusCode::kCancelled);
  service::ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.cancelled, 1);
}

TEST(LifecycleRouterTest, ExpiredDeadlineOnShedPathStaysTypedReject) {
  // Mirror of the cancelled-on-shed invariant: an already-expired request
  // must not be answered from the δ-cache just because the pool was full.
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kModelOnly;
  cfg.enable_cache = true;
  cfg.cache.delta_min = 1.0;
  cfg.num_threads = 1;
  cfg.queue_capacity = 1;
  cfg.overload = service::OverloadPolicy::kShed;
  QueryRouter router(testsupport::SharedCatalog(), cfg);

  Request warm = Request::Q1("r1", query::Query({0.5, 0.5}, 0.1));
  ASSERT_TRUE(router.Execute(warm).ok());
  Gate worker_started, release_worker;
  service::ThreadPool* pool = router.pool_for_testing();
  pool->Submit([&] {
    worker_started.Open();
    release_worker.Wait();
  });
  worker_started.Wait();
  ASSERT_TRUE(pool->TrySubmit([] {}));  // Queue slot now full.

  FakeClock clock(1000);
  Request expired_repeat = warm;  // Identical query: the cache has it.
  expired_repeat.deadline = util::Deadline::AtNanos(500, &clock);
  auto results = router.ExecuteBatch({expired_repeat});
  release_worker.Open();

  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), util::StatusCode::kDeadlineExceeded);
  service::ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.shed, 1);
}

TEST(LifecycleRouterTest, TrainAbortedIsCountedAndTyped) {
  // A request whose deadline dies *inside* lazy training surfaces as
  // kDeadlineExceeded and is located by the train_aborted counter.
  EngineFixture* f = testsupport::SharedServiceFixture();
  service::ModelCatalog catalog;
  FakeClock clock(0);
  service::CatalogOptions opts = testsupport::DefaultCatalogOptions();
  opts.trainer.max_pairs = 400;
  opts.trainer.min_pairs = 50;
  opts.trainer.on_pair_for_testing = [&clock](int64_t pairs_done) {
    if (pairs_done == 3) clock.SetNanos(2000);
  };
  ASSERT_TRUE(
      catalog.Register("lazy", &f->dataset->table, f->kdtree.get(), opts).ok());

  RouterConfig cfg;
  cfg.policy = RoutePolicy::kHybrid;
  cfg.enable_cache = false;
  QueryRouter router(&catalog, cfg);

  Request r = Request::Q1("lazy", query::Query({0.5, 0.5}, 0.12));
  r.deadline = util::Deadline::AtNanos(1000, &clock);  // Live at admission.
  auto got = router.Execute(r);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kDeadlineExceeded);

  service::ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.train_aborted, 1);
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.degraded, 0);  // No model exists to degrade to.

  // The dataset is retryable: a deadline-free request trains and answers.
  clock.SetNanos(0);
  Request retry = Request::Q1("lazy", query::Query({0.5, 0.5}, 0.12));
  auto answered = router.Execute(retry);
  ASSERT_TRUE(answered.ok()) << answered.status();
  EXPECT_EQ(router.Stats().train_aborted, 1);  // Unchanged.
}

TEST(LifecycleRouterTest, ErrorPathCarriesPartialExecStats) {
  // A kDeadlineExceeded reply no longer discards the work the engine did:
  // the typed ExecError carries the partial chunk accounting.
  EngineFixture* f = testsupport::SharedParallelFixture();
  service::ModelCatalog catalog;
  ASSERT_TRUE(catalog
                  .Register("scan", &f->dataset->table, f->scan.get(),
                            testsupport::DefaultCatalogOptions())
                  .ok());
  query::ParallelOptions par;
  par.target_partitions = 8;  // Inline, deterministic chunk order 0, 1, ...
  catalog.SetParallelism(par);

  RouterConfig cfg;
  cfg.policy = RoutePolicy::kExactOnly;  // No model: the error is terminal.
  cfg.enable_cache = false;
  QueryRouter router(&catalog, cfg);

  FakeClock clock(0);
  Request r = Request::Q1("scan", query::Query({0.5, 0.5}, 100.0));
  r.deadline = util::Deadline::AtNanos(1000, &clock);
  r.on_chunk_for_testing = [&clock](size_t chunk) {
    if (chunk == 2) clock.SetNanos(2000);  // Trip before the third chunk.
  };

  auto got = router.Execute(r);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kDeadlineExceeded);
  const query::ExecStats& err = got.error().partial;
  EXPECT_EQ(err.chunks_completed, 2);  // Chunks 0 and 1 ran; 2 aborted.
  EXPECT_EQ(err.chunks_total, 8);
  EXPECT_GT(err.tuples_examined, 0);  // The partial scan work, preserved.
  EXPECT_GT(err.nanos, 0);            // Total serving latency.

  service::ServiceSnapshot stats = router.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.train_aborted, 0);  // The trip hit the scan, not training.
}

// ---------- Drift-driven retraining & generation-tagged cache ----------

// A 1-d relation u = level + 0.5·x + ε over a ScanIndex. The scan path
// reads the table per query, so appending a shifted regime later is a real,
// deterministic distribution-shift injection visible to the exact engine.
struct DriftFixture {
  storage::Table table{1};
  std::unique_ptr<storage::ScanIndex> index;
  ModelCatalog catalog;

  explicit DriftFixture(int64_t drift_interval = 1 << 20,
                        int64_t min_metered_residuals = 16) {
    util::Rng rng(11);
    for (int i = 0; i < 4000; ++i) {
      const double x = rng.Uniform();
      ExpectOk(table.Append({x}, 1.0 + 0.5 * x + rng.Gaussian(0.0, 0.02)));
    }
    index = std::make_unique<storage::ScanIndex>(table);

    CatalogOptions opts = CatalogOptions::ForCube(
        /*d=*/1, /*lo=*/0.0, /*hi=*/1.0, /*theta_mean=*/0.1,
        /*theta_stddev=*/0.03, /*a=*/0.15, /*max_pairs=*/2000, /*seed=*/13);
    // Thresholds sized for determinism: steady-state probe RMSE on this
    // relation is well under the 0.3 floor, while the +3.0 level shift
    // drives it past 1.0 — no flaky middle ground.
    opts.drift.enabled = true;
    opts.drift.config.probe_queries = 60;
    opts.drift.config.degradation_factor = 4.0;
    opts.drift.config.absolute_threshold = 0.3;
    opts.drift.report_interval = drift_interval;
    opts.drift.retrain_max_pairs = 4000;
    opts.drift.min_metered_residuals = min_metered_residuals;
    ExpectOk(catalog.Register("ds", &table, index.get(), opts));
  }

  // The injected shift: a second regime at level 4.0 (same count as the
  // original), deterministic contents.
  void ShiftDistribution() {
    util::Rng rng(17);
    for (int i = 0; i < 4000; ++i) {
      const double x = rng.Uniform();
      ExpectOk(table.Append({x}, 4.0 + 0.5 * x + rng.Gaussian(0.0, 0.02)));
    }
  }

 private:
  static void ExpectOk(const util::Status& s) { EXPECT_TRUE(s.ok()) << s; }
};

TEST(DriftRetrainTest, SteadyDataProbesQuietAndKeepsGeneration) {
  DriftFixture fx;
  ASSERT_TRUE(fx.catalog.TrainAll().ok());
  auto before = fx.catalog.Get("ds");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->generation, 1);

  auto out = fx.catalog.MaybeRetrain("ds");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->probed);
  EXPECT_FALSE(out->drift.drifted);
  EXPECT_FALSE(out->retrained);
  EXPECT_EQ(out->generation, 1);

  auto after = fx.catalog.Get("ds");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->generation, 1);
  EXPECT_EQ(after->model.get(), before->model.get());  // Same frozen model.
}

// Regression for the drift-state publication fix: `monitor`/`probe_gen` are
// assigned under drift_mu before `trained` is published. While a training is
// held mid-flight, the maintenance surface (ReportObservation, MaybeRetrain)
// must stay inert — typed refusals, no deadlock, no torn drift state — and
// must light up the moment the publication lands.
TEST(DriftRetrainTest, MaintenanceApisAreInertDuringInFlightTraining) {
  storage::Table table{1};
  util::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Uniform();
    ASSERT_TRUE(
        table.Append({x}, 1.0 + 0.5 * x + rng.Gaussian(0.0, 0.02)).ok());
  }
  storage::ScanIndex index(table);

  ModelCatalog catalog;
  Gate training_started;
  Gate release_training;
  std::atomic<bool> gates_armed{true};
  CatalogOptions opts = CatalogOptions::ForCube(
      /*d=*/1, /*lo=*/0.0, /*hi=*/1.0, /*theta_mean=*/0.1,
      /*theta_stddev=*/0.03, /*a=*/0.15, /*max_pairs=*/1000, /*seed=*/13);
  opts.drift.enabled = true;
  opts.drift.config.probe_queries = 20;
  opts.drift.config.absolute_threshold = 0.3;
  opts.drift.report_interval = 1;  // Every observation is a boundary.
  opts.trainer.on_pair_for_testing = [&](int64_t pairs_done) {
    if (pairs_done == 0 && gates_armed.exchange(false)) {
      training_started.Open();
      release_training.Wait();
    }
  };
  ASSERT_TRUE(catalog.Register("ds", &table, &index, opts).ok());

  std::thread trainer([&] {
    auto snap = catalog.GetOrTrain("ds");
    EXPECT_TRUE(snap.ok()) << snap.status();
  });
  training_started.Wait();

  // Mid-training: no model, hence no drift monitor, hence every
  // maintenance entry point refuses without blocking on the trainer.
  EXPECT_FALSE(catalog.ReportObservation("ds"));
  EXPECT_FALSE(catalog.ReportObservation("ds", 0.25));
  auto early = catalog.MaybeRetrain("ds");
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), util::StatusCode::kFailedPrecondition);

  release_training.Open();
  trainer.join();

  // Publication happened; the same calls now see live drift state.
  auto snap = catalog.Get("ds");
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap->drift_enabled);
  EXPECT_EQ(snap->generation, 1);
  EXPECT_TRUE(catalog.ReportObservation("ds"));
  auto out = catalog.MaybeRetrain("ds");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->probed);
  EXPECT_FALSE(out->drift.drifted);  // Steady data: probe quiet, no swap.
  EXPECT_FALSE(out->retrained);
  EXPECT_EQ(out->generation, 1);
}

TEST(DriftRetrainTest, InjectedShiftSwapsGenerationAndInvalidatesCache) {
  DriftFixture fx;
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kModelOnly;
  cfg.enable_cache = true;
  cfg.cache.delta_min = 1.0;
  QueryRouter router(&fx.catalog, cfg);

  // Serve and cache a model answer under generation 1.
  Request r = Request::Q1("ds", query::Query({0.5}, 0.1));
  auto first = router.Execute(r);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->source, AnswerSource::kModel);
  auto second = router.Execute(r);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->source, AnswerSource::kCache);
  EXPECT_EQ(second->mean, first->mean);

  // Inject the shift and force a maintenance pass.
  fx.ShiftDistribution();
  auto out = router.MaybeRetrain("ds");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->probed);
  EXPECT_TRUE(out->drift.drifted);
  EXPECT_GT(out->drift.rmse, out->drift.baseline_rmse);
  EXPECT_TRUE(out->retrained);
  EXPECT_EQ(out->generation, 2);
  EXPECT_GT(out->report.pairs_used, 0);
  EXPECT_EQ(router.Stats().retrains, 1);

  auto snap = fx.catalog.Get("ds");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->generation, 2);

  // The generation-1 cached answer must not be served: new generation, new
  // cache key, and the old group was dropped outright.
  EXPECT_EQ(router.CacheStats().hits, 1);  // Only the pre-retrain hit.
  auto third = router.Execute(r);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->source, AnswerSource::kModel);  // Cache miss on gen 2.
  EXPECT_EQ(router.CacheStats().hits, 1);
  // The fresh model has learned the shifted regime: its answer moved.
  EXPECT_GT(std::fabs(third->mean - first->mean), 0.1);

  // Probing again right after the retrain is quiet (baseline was reset).
  auto again = router.MaybeRetrain("ds");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->probed);
  EXPECT_FALSE(again->retrained);
  EXPECT_EQ(again->generation, 2);
}

TEST(DriftRetrainTest, ReportObservationFiresEveryInterval) {
  DriftFixture fx(/*drift_interval=*/3);
  // Untrained: observations never schedule probes.
  EXPECT_FALSE(fx.catalog.ReportObservation("ds"));
  ASSERT_TRUE(fx.catalog.TrainAll().ok());
  std::vector<bool> due;
  for (int i = 0; i < 6; ++i) due.push_back(fx.catalog.ReportObservation("ds"));
  EXPECT_EQ(due, std::vector<bool>({false, false, true, false, false, true}));
  EXPECT_FALSE(fx.catalog.ReportObservation("unknown"));
}

TEST(DriftRetrainTest, RouterAutoProbeRetrainsInlineOnSyncPool) {
  // report_interval = 1 and a synchronous pool: every served answer runs
  // the maintenance pass inline — fully deterministic end-to-end.
  DriftFixture fx(/*drift_interval=*/1);
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kModelOnly;
  cfg.enable_cache = false;
  cfg.num_threads = 0;
  QueryRouter router(&fx.catalog, cfg);

  Request r = Request::Q1("ds", query::Query({0.5}, 0.1));
  ASSERT_TRUE(router.Execute(r).ok());        // Steady data: probe is quiet.
  EXPECT_EQ(router.Stats().retrains, 0);

  fx.ShiftDistribution();
  ASSERT_TRUE(router.Execute(r).ok());        // Shifted: probe retrains.
  EXPECT_EQ(router.Stats().retrains, 1);
  auto snap = fx.catalog.Get("ds");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->generation, 2);
}

TEST(DriftRetrainTest, MeteredHealthyResidualsGateScheduledProbes) {
  // Residuals piggybacked from served exact answers are a free drift
  // pre-filter: a window whose metered RMSE sits under the drift threshold
  // skips its scheduled probe; a bad window (or one with too few samples)
  // still fires it.
  DriftFixture fx(/*drift_interval=*/4, /*min_metered_residuals=*/3);
  ASSERT_TRUE(fx.catalog.TrainAll().ok());

  // Healthy window: 4 small residuals, boundary on the 4th → probe skipped
  // (RMSE 0.01 is far under the 0.3 absolute threshold).
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(fx.catalog.ReportObservation("ds", 0.01));
  }
  EXPECT_FALSE(fx.catalog.ReportObservation("ds", 0.01));

  // Bad window: residuals past the threshold → the boundary fires.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(fx.catalog.ReportObservation("ds", 5.0));
  }
  EXPECT_TRUE(fx.catalog.ReportObservation("ds", 5.0));

  // Unmetered window (e.g. a model-only router): no free evidence, so the
  // boundary fires exactly as before the gating existed.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(fx.catalog.ReportObservation("ds"));
  }
  EXPECT_TRUE(fx.catalog.ReportObservation("ds"));

  // Under-sampled window: healthy residuals, but fewer than the minimum —
  // two samples cannot clear a 3-sample gate, so the probe fires.
  EXPECT_FALSE(fx.catalog.ReportObservation("ds", 0.01));
  EXPECT_FALSE(fx.catalog.ReportObservation("ds", 0.01));
  EXPECT_FALSE(fx.catalog.ReportObservation("ds"));
  EXPECT_TRUE(fx.catalog.ReportObservation("ds"));
}

TEST(DriftRetrainTest, RouterPipesExactResidualsIntoProbeGating) {
  // End-to-end: an exact-only router serves ground truth anyway; the router
  // meters the model's residual on each answer, and the probe only runs
  // (and retrains) once those free residuals actually look bad.
  DriftFixture fx(/*drift_interval=*/1, /*min_metered_residuals=*/1);
  ASSERT_TRUE(fx.catalog.TrainAll().ok());
  RouterConfig cfg;
  cfg.policy = RoutePolicy::kExactOnly;
  cfg.enable_cache = false;
  cfg.num_threads = 0;  // Probes (when due) run inline: deterministic.
  QueryRouter router(&fx.catalog, cfg);

  // The probe query must be in-region: the router only meters residuals of
  // in-region exact answers (out-of-region extrapolation error would read
  // as perpetual drift against the in-distribution baseline).
  Request r = Request::Q1("ds", query::Query({0.5}, 0.1));
  auto trained_snap = fx.catalog.Get("ds");
  ASSERT_TRUE(trained_snap.ok());
  ASSERT_NE(trained_snap->model, nullptr);
  ASSERT_LE(trained_snap->model->NearestPrototypeDistance(r.q),
            cfg.rho_scale * trained_snap->vigilance);

  // Steady data: every query is an interval boundary (interval = 1), but
  // the metered residuals are healthy, so no probe ever runs — and the
  // generation stays put.
  for (int i = 0; i < 3; ++i) {
    auto got = router.Execute(r);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->source, AnswerSource::kExact);
  }
  EXPECT_EQ(router.Stats().retrains, 0);

  // Shift the data: exact answers move away from the stale model, the
  // metered residual blows past the threshold, the gated probe fires
  // inline, confirms drift, and publishes generation 2.
  fx.ShiftDistribution();
  auto got = router.Execute(r);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(router.Stats().retrains, 1);
  auto snap = fx.catalog.Get("ds");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->generation, 2);
}

TEST(DriftRetrainTest, MaybeRetrainErrorsAreTyped) {
  DriftFixture fx;
  EXPECT_EQ(fx.catalog.MaybeRetrain("unknown").status().code(),
            util::StatusCode::kNotFound);
  // Registered but untrained.
  EXPECT_EQ(fx.catalog.MaybeRetrain("ds").status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(DriftRetrainTest, DriftDisabledDatasetRefusesMaintenance) {
  EngineFixture* f = testsupport::SharedServiceFixture();
  ModelCatalog catalog;
  ASSERT_TRUE(catalog
                  .Register("plain", &f->dataset->table, f->kdtree.get(),
                            testsupport::DefaultCatalogOptions())
                  .ok());
  ASSERT_TRUE(catalog.TrainAll().ok());
  EXPECT_FALSE(catalog.ReportObservation("plain"));
  EXPECT_EQ(catalog.MaybeRetrain("plain").status().code(),
            util::StatusCode::kFailedPrecondition);
}

// ---------- core/drift.cc edge cases ----------

// A tiny 1-d relation and a one-prototype model: enough for the monitor to
// measure something without a full training run.
struct DriftEdgeFixture {
  storage::Table table{1};
  std::unique_ptr<storage::ScanIndex> index;
  std::unique_ptr<query::ExactEngine> engine;
  core::LlmModel model{core::LlmConfig::ForDimension(1, 0.3)};

  DriftEdgeFixture() {
    util::Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
      const double x = rng.Uniform();
      EXPECT_TRUE(table.Append({x}, 2.0 * x + rng.Gaussian(0.0, 0.05)).ok());
    }
    index = std::make_unique<storage::ScanIndex>(table);
    engine = std::make_unique<query::ExactEngine>(table, *index);
    EXPECT_TRUE(model.Observe(query::Query({0.5}, 0.1), 1.0).ok());
  }

  query::WorkloadGenerator Gen(uint64_t seed) const {
    return query::WorkloadGenerator(
        query::WorkloadConfig::Cube(1, 0.1, 0.9, 0.1, 0.02, seed));
  }
};

TEST(DriftEdgeTest, EmptyProbeWindowIsInvalidArgument) {
  DriftEdgeFixture fx;
  core::DriftConfig cfg;
  cfg.probe_queries = 0;  // Empty probe window.
  core::DriftMonitor monitor(cfg);
  auto gen = fx.Gen(31);
  EXPECT_EQ(monitor.Calibrate(fx.model, *fx.engine, &gen).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(monitor.calibrated());
}

TEST(DriftEdgeTest, FailedRecalibrationClearsPreviousBaseline) {
  // A monitor whose recalibration fails must not keep probing against the
  // old model's baseline (the probe-retrain thrash scenario): the failed
  // Calibrate clears the state and Probe refuses until it is repaired.
  DriftEdgeFixture fx;
  core::DriftConfig cfg;
  cfg.probe_queries = 5;
  core::DriftMonitor monitor(cfg);
  auto good_gen = fx.Gen(61);
  ASSERT_TRUE(monitor.Calibrate(fx.model, *fx.engine, &good_gen).ok());
  EXPECT_TRUE(monitor.calibrated());

  // Every probe ball misses the data entirely: calibration cannot measure.
  query::WorkloadGenerator empty_gen(
      query::WorkloadConfig::Cube(1, 10.0, 11.0, 0.01, 0.001, 67));
  EXPECT_EQ(monitor.Calibrate(fx.model, *fx.engine, &empty_gen).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(monitor.calibrated());
  EXPECT_EQ(monitor.Probe(fx.model, *fx.engine, &good_gen).status().code(),
            util::StatusCode::kFailedPrecondition);

  // Repairing the baseline re-enables probing.
  ASSERT_TRUE(monitor.Calibrate(fx.model, *fx.engine, &good_gen).ok());
  EXPECT_TRUE(monitor.Probe(fx.model, *fx.engine, &good_gen).ok());
}

TEST(DriftEdgeTest, RmseExactlyOnThresholdIsSteadyState) {
  // degradation_factor = 1 and an identical probe stream reproduce the
  // calibration RMSE bit-for-bit: rmse == threshold must NOT be drift.
  DriftEdgeFixture fx;
  core::DriftConfig cfg;
  cfg.probe_queries = 40;
  cfg.degradation_factor = 1.0;
  cfg.absolute_threshold = 0.0;
  core::DriftMonitor monitor(cfg);
  auto calibrate_gen = fx.Gen(37);
  ASSERT_TRUE(monitor.Calibrate(fx.model, *fx.engine, &calibrate_gen).ok());
  ASSERT_GT(monitor.baseline_rmse(), 0.0);

  auto probe_gen = fx.Gen(37);  // Same seed: the identical query stream.
  auto report = monitor.Probe(fx.model, *fx.engine, &probe_gen);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rmse, report->baseline_rmse);  // Bit-for-bit equal.
  EXPECT_FALSE(report->drifted);
}

TEST(DriftEdgeTest, RepeatedProbesAfterRetrainResetStayQuiet) {
  DriftEdgeFixture fx;
  core::DriftConfig cfg;
  cfg.probe_queries = 50;
  cfg.degradation_factor = 3.0;
  cfg.absolute_threshold = 0.3;
  core::DriftMonitor monitor(cfg);
  auto gen = fx.Gen(41);
  // Train the one-prototype model properly first so the baseline is sane.
  core::TrainerConfig tc;
  tc.max_pairs = 1500;
  tc.min_pairs = 300;
  core::Trainer trainer(*fx.engine, tc);
  auto train_gen = fx.Gen(43);
  ASSERT_TRUE(trainer.Train(&train_gen, &fx.model).ok());
  ASSERT_TRUE(monitor.Calibrate(fx.model, *fx.engine, &gen).ok());
  const double old_baseline = monitor.baseline_rmse();

  // Shift the relation, confirm drift, retrain, recalibrate.
  util::Rng rng(47);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Uniform();
    ASSERT_TRUE(fx.table.Append({x}, 6.0 + 2.0 * x).ok());
  }
  auto drifted = monitor.Probe(fx.model, *fx.engine, &gen);
  ASSERT_TRUE(drifted.ok());
  EXPECT_TRUE(drifted->drifted);

  auto retrain_gen = fx.Gen(53);
  auto report = monitor.Retrain(&fx.model, *fx.engine, &retrain_gen, 4000);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(monitor.Calibrate(fx.model, *fx.engine, &gen).ok());
  EXPECT_NE(monitor.baseline_rmse(), old_baseline);

  // Repeated probes against the reset baseline stay quiet.
  for (int i = 0; i < 3; ++i) {
    auto quiet = monitor.Probe(fx.model, *fx.engine, &gen);
    ASSERT_TRUE(quiet.ok()) << quiet.status();
    EXPECT_FALSE(quiet->drifted)
        << "probe " << i << ": rmse=" << quiet->rmse
        << " baseline=" << quiet->baseline_rmse;
  }
}

}  // namespace
}  // namespace qreg
