// Unit tests for src/data: function values, dataset generation, scaling,
// and the non-linearity property the paper requires of R1/R2.

#include <gtest/gtest.h>

#include <cmath>

#include "data/functions.h"
#include "data/generator.h"
#include "linalg/ols.h"
#include "util/rng.h"

namespace qreg {
namespace data {
namespace {

// ---------- functions ----------

TEST(RosenbrockTest, KnownValues) {
  RosenbrockFunction f2(2);
  const double min2[] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(f2.Eval(min2), 0.0);
  const double origin[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(f2.Eval(origin), 1.0);

  RosenbrockFunction f5(5);
  const double min5[] = {1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(f5.Eval(min5), 0.0);
  const double x5[] = {0.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(f5.Eval(x5), 4.0);  // four (1-0)^2 terms
}

TEST(RosenbrockTest, GlobalMinimumIsMinimal) {
  RosenbrockFunction f(3);
  util::Rng rng(5);
  const double min3[] = {1.0, 1.0, 1.0};
  const double fmin = f.Eval(min3);
  for (int i = 0; i < 500; ++i) {
    double x[3];
    for (double& v : x) v = rng.Uniform(-10, 10);
    EXPECT_GE(f.Eval(x), fmin);
  }
}

TEST(GasSensorTest, DeterministicPerSeed) {
  GasSensorFunction a(6, 7), b(6, 7), c(6, 8);
  const double x[] = {0.1, 0.5, 0.9, 0.3, 0.7, 0.2};
  EXPECT_DOUBLE_EQ(a.Eval(x), b.Eval(x));
  EXPECT_NE(a.Eval(x), c.Eval(x));
}

TEST(GasSensorTest, GloballyNonLinear) {
  // The property R1 is chosen for: a global linear fit leaves high FVU.
  GasSensorFunction f(6);
  util::Rng rng(9);
  const size_t n = 4000;
  linalg::Matrix x(n, 6);
  std::vector<double> u(n);
  std::vector<double> row(6);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      row[j] = rng.Uniform(0, 1);
      x(i, j) = row[j];
    }
    u[i] = f.Eval(row.data());
  }
  auto fit = linalg::FitOls(x, u);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->FVU(), 0.3) << "substitute dataset must be strongly non-linear";
}

TEST(SaddleDemoTest, MatchesPaperExample) {
  SaddleDemoFunction f;
  const double x[] = {0.5, 1.0};
  EXPECT_DOUBLE_EQ(f.Eval(x), 0.5 * 2.0);
  EXPECT_EQ(f.dimension(), 2u);
}

TEST(Curve1DTest, StaysRoughlyInUnitRange) {
  Curve1DFunction f;
  for (double t = 0.0; t <= 1.0; t += 0.01) {
    const double u = f.Eval(&t);
    EXPECT_GT(u, -0.2);
    EXPECT_LT(u, 1.2);
  }
}

TEST(Friedman1Test, KnownValue) {
  Friedman1Function f(5);
  const double x[] = {0.5, 0.5, 0.5, 0.5, 0.5};
  // 10 sin(π/4) + 0 + 5 + 2.5
  EXPECT_NEAR(f.Eval(x), 10.0 * std::sin(M_PI * 0.25) + 7.5, 1e-12);
  Friedman1Function f3(3);
  EXPECT_EQ(f3.dimension(), 5u);  // clamped up to 5
}

TEST(FactoryTest, MakesAllKnownFunctions) {
  for (const char* name :
       {"rosenbrock", "gas_sensor", "saddle_demo", "curve1d", "friedman1"}) {
    auto f = MakeFunction(name, 5);
    ASSERT_NE(f, nullptr) << name;
    EXPECT_EQ(f->name(), name);
  }
  EXPECT_EQ(MakeFunction("nope", 2), nullptr);
}

// ---------- generator ----------

TEST(GeneratorTest, ProducesRequestedRows) {
  DatasetConfig cfg;
  cfg.n = 1234;
  cfg.seed = 1;
  auto ds = GenerateDataset(std::make_shared<Curve1DFunction>(), cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->table.num_rows(), 1234);
  EXPECT_EQ(ds->table.dimension(), 1u);
}

TEST(GeneratorTest, RejectsBadInput) {
  DatasetConfig cfg;
  cfg.n = 0;
  EXPECT_FALSE(GenerateDataset(std::make_shared<Curve1DFunction>(), cfg).ok());
  EXPECT_FALSE(GenerateDataset(nullptr, DatasetConfig()).ok());
}

TEST(GeneratorTest, OutputScaledToUnitInterval) {
  DatasetConfig cfg;
  cfg.n = 5000;
  cfg.scale_output_unit = true;
  cfg.seed = 3;
  auto ds = GenerateDataset(std::make_shared<RosenbrockFunction>(2), cfg);
  ASSERT_TRUE(ds.ok());
  double lo = 1e300, hi = -1e300;
  for (int64_t i = 0; i < ds->table.num_rows(); ++i) {
    lo = std::min(lo, ds->table.u(i));
    hi = std::max(hi, ds->table.u(i));
  }
  EXPECT_NEAR(lo, 0.0, 1e-12);
  EXPECT_NEAR(hi, 1.0, 1e-12);
}

TEST(GeneratorTest, FeatureScalingMapsDomainToUnitCube) {
  DatasetConfig cfg;
  cfg.n = 2000;
  cfg.scale_features_unit = true;
  cfg.seed = 5;
  auto ds = GenerateDataset(std::make_shared<RosenbrockFunction>(2), cfg);
  ASSERT_TRUE(ds.ok());
  std::vector<double> lo, hi;
  ds->table.FeatureRanges(&lo, &hi);
  for (double v : lo) EXPECT_GE(v, 0.0);
  for (double v : hi) EXPECT_LE(v, 1.0);
}

TEST(GeneratorTest, GroundTruthConsistentWithTable) {
  // Without noise, the stored u equals the scaled ground-truth function at
  // the stored (scaled) x.
  DatasetConfig cfg;
  cfg.n = 500;
  cfg.noise_stddev = 0.0;
  cfg.scale_features_unit = true;
  cfg.scale_output_unit = true;
  cfg.seed = 7;
  auto ds = GenerateDataset(std::make_shared<GasSensorFunction>(3), cfg);
  ASSERT_TRUE(ds.ok());
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(ds->GroundTruth(ds->table.XRow(i)), ds->table.u(i), 1e-9);
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  DatasetConfig cfg;
  cfg.n = 100;
  cfg.seed = 11;
  auto a = GenerateDataset(std::make_shared<Curve1DFunction>(), cfg);
  auto b = GenerateDataset(std::make_shared<Curve1DFunction>(), cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a->table.u(i), b->table.u(i));
    EXPECT_DOUBLE_EQ(a->table.x(i)[0], b->table.x(i)[0]);
  }
}

TEST(GeneratorTest, NoiseIncreasesVariance) {
  DatasetConfig clean;
  clean.n = 4000;
  clean.seed = 13;
  clean.scale_output_unit = false;
  DatasetConfig noisy = clean;
  noisy.noise_stddev = 0.5;
  auto a = GenerateDataset(std::make_shared<Curve1DFunction>(), clean);
  auto b = GenerateDataset(std::make_shared<Curve1DFunction>(), noisy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto variance = [](const storage::Table& t) {
    double s = 0, sq = 0;
    for (int64_t i = 0; i < t.num_rows(); ++i) {
      s += t.u(i);
      sq += t.u(i) * t.u(i);
    }
    const double m = s / static_cast<double>(t.num_rows());
    return sq / static_cast<double>(t.num_rows()) - m * m;
  };
  EXPECT_GT(variance(b->table), variance(a->table) + 0.1);
}

TEST(GeneratorTest, MakeR1HasPaperProperties) {
  auto ds = MakeR1(6, 20000, 17);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->table.dimension(), 6u);
  EXPECT_EQ(ds->table.num_rows(), 20000);
  std::vector<double> lo, hi;
  ds->table.FeatureRanges(&lo, &hi);
  for (double v : lo) EXPECT_GE(v, 0.0);
  for (double v : hi) EXPECT_LE(v, 1.0);

  // Global linear fit must be poor (the paper reports FVU=4.68 on R1).
  linalg::OlsAccumulator acc(6);
  for (int64_t i = 0; i < ds->table.num_rows(); ++i) {
    acc.Add(ds->table.x(i), ds->table.u(i));
  }
  auto fit = acc.Solve();
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->FVU(), 0.3);
}

TEST(GeneratorTest, MakeR2IsRosenbrockShaped) {
  auto ds = MakeR2(2, 10000, 19);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->table.dimension(), 2u);
  std::vector<double> lo, hi;
  ds->table.FeatureRanges(&lo, &hi);
  EXPECT_LT(lo[0], -5.0);
  EXPECT_GT(hi[0], 5.0);
  // Output scaled to [0,1].
  double umin = 1e300, umax = -1e300;
  for (int64_t i = 0; i < ds->table.num_rows(); ++i) {
    umin = std::min(umin, ds->table.u(i));
    umax = std::max(umax, ds->table.u(i));
  }
  EXPECT_NEAR(umin, 0.0, 1e-9);
  EXPECT_NEAR(umax, 1.0, 1e-9);
}

}  // namespace
}  // namespace data
}  // namespace qreg
