// End-to-end socket tests: a real net::Server on a loopback port, driven by
// net::Client. Pipelined batches must come back positionally aligned and
// bit-for-bit equal to in-process QueryRouter::Execute; expired client
// deadlines are rejected at admission without touching the δ-cache; a
// saturated server sheds with typed kResourceExhausted frames (never a
// dropped connection); shutdown drains everything already decoded; malformed
// streams get a typed error frame and a clean close.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "net/backend.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "test_support.h"

namespace qreg {
namespace net {
namespace {

using testsupport::MixedWorkload;
using testsupport::SharedCatalog;

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Spins until `cond` holds or ~2s pass (server-side counters are updated by
// the event loop; tests observe them with a bounded wait, never a bare sleep).
template <typename Cond>
bool WaitFor(Cond cond) {
  for (int i = 0; i < 2000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

// The backend every server in this file runs on. CI's net-fault-gate sweeps
// QREG_NET_BACKEND over {poll, epoll}; unset means poll. The wire bytes must
// be identical either way — that is the whole point of the seam.
BackendKind TestBackend() {
  const char* env = std::getenv("QREG_NET_BACKEND");
  BackendKind kind = BackendKind::kPoll;
  if (env != nullptr && *env != '\0') {
    EXPECT_TRUE(ParseBackendKind(env, &kind))
        << "bad QREG_NET_BACKEND: " << env;
  }
  return kind;
}

ServerConfig BaseConfig() {
  ServerConfig cfg;
  cfg.backend = TestBackend();
  return cfg;
}

WireRequest ToWire(const service::Request& request) {
  WireRequest wire;
  wire.dataset = request.dataset;
  wire.kind = request.kind;
  wire.q = request.q;
  return wire;
}

// Core determinism check, shared by the single-loop, multi-loop, and
// shared-listener-fallback tests: a pipelined batch striped across
// `client_conns` connections must come back positionally aligned and
// bit-for-bit equal to the synchronous in-process reference, whatever the
// server's loop topology.
void RunBitForBitOverWire(ServerConfig server_cfg, size_t client_conns) {
  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.enable_cache = false;  // Cache hits would change AnswerSource.
  cfg.num_threads = 2;
  service::QueryRouter wire_router(SharedCatalog(), cfg);

  service::RouterConfig sync_cfg = cfg;
  sync_cfg.num_threads = 0;  // Fully synchronous reference.
  service::QueryRouter ref_router(SharedCatalog(), sync_cfg);

  Server server(&wire_router, server_cfg);
  const util::Result<Endpoint> ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();
  ASSERT_EQ(server.num_loops(), server_cfg.event_loops);
  if (server_cfg.force_shared_listener) {
    EXPECT_TRUE(server.using_shared_listener());
  }

  ClientPool pool;
  ASSERT_TRUE(pool.Connect(ep->address, ep->port, client_conns).ok());

  const std::vector<service::Request> requests =
      MixedWorkload(120, /*seed=*/101);
  std::vector<WireRequest> wire_batch;
  for (const service::Request& r : requests) wire_batch.push_back(ToWire(r));

  const auto over_wire = pool.ExecuteBatch(wire_batch);
  ASSERT_EQ(over_wire.size(), requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    const auto in_process = ref_router.Execute(requests[i]);
    ASSERT_EQ(over_wire[i].ok(), in_process.ok()) << "slot " << i;
    if (!in_process.ok()) {
      EXPECT_EQ(over_wire[i].status().code(), in_process.status().code());
      continue;
    }
    const service::Answer& got = *over_wire[i];
    const service::Answer& want = *in_process;
    EXPECT_EQ(got.kind, want.kind) << "slot " << i;
    EXPECT_EQ(got.source, want.source) << "slot " << i;
    EXPECT_TRUE(BitEq(got.mean, want.mean)) << "slot " << i;
    EXPECT_TRUE(BitEq(got.cache_delta, want.cache_delta)) << "slot " << i;
    EXPECT_EQ(got.used_fallback, want.used_fallback) << "slot " << i;
    EXPECT_EQ(got.exec.tuples_matched, want.exec.tuples_matched) << "slot " << i;
    ASSERT_EQ(got.pieces.size(), want.pieces.size()) << "slot " << i;
    for (size_t p = 0; p < want.pieces.size(); ++p) {
      EXPECT_TRUE(BitEq(got.pieces[p].intercept, want.pieces[p].intercept));
      EXPECT_EQ(got.pieces[p].prototype_id, want.pieces[p].prototype_id);
      EXPECT_TRUE(BitEq(got.pieces[p].weight, want.pieces[p].weight));
      ASSERT_EQ(got.pieces[p].slope.size(), want.pieces[p].slope.size());
      for (size_t s = 0; s < want.pieces[p].slope.size(); ++s) {
        EXPECT_TRUE(BitEq(got.pieces[p].slope[s], want.pieces[p].slope[s]));
      }
    }
  }

  // Wire-level counters reach the router's service snapshot. The event loops
  // flush their activity batches after the client may already have read the
  // bytes, hence the bounded wait rather than an immediate snapshot.
  EXPECT_TRUE(WaitFor([&] {
    const service::ServiceSnapshot snap = wire_router.Stats();
    return snap.net_connections_accepted >=
               static_cast<int64_t>(client_conns) &&
           snap.net_frames_decoded >= static_cast<int64_t>(requests.size()) &&
           snap.net_bytes_in > 0 && snap.net_bytes_out > 0;
  }));

  // Per-loop attribution must roll up to exactly the aggregate counters.
  {
    const service::ServiceSnapshot snap = wire_router.Stats();
    ASSERT_FALSE(snap.net_loops.empty());
    EXPECT_LE(snap.net_loops.size(), server.num_loops());
    service::NetActivity sum;
    for (const service::NetActivity& l : snap.net_loops) sum += l;
    EXPECT_EQ(sum.frames_decoded, snap.net_frames_decoded);
    EXPECT_EQ(sum.connections_accepted, snap.net_connections_accepted);
    EXPECT_EQ(sum.bytes_in, snap.net_bytes_in);
    EXPECT_EQ(sum.bytes_out, snap.net_bytes_out);
  }

  pool.Close();
  server.Shutdown();
}

TEST(NetServerTest, PipelinedBatchMatchesInProcessBitForBit) {
  RunBitForBitOverWire(BaseConfig(), /*client_conns=*/1);
}

TEST(NetServerTest, MultiLoopPipelinedBatchesMatchInProcessBitForBit) {
  ServerConfig cfg = BaseConfig();
  cfg.event_loops = 4;
  RunBitForBitOverWire(cfg, /*client_conns=*/8);
}

TEST(NetServerTest, SharedListenerFallbackMatchesInProcessBitForBit) {
  // Pretend the platform lacks SO_REUSEPORT: the round-robin fd-handoff
  // path must be exactly as correct as kernel accept sharding.
  ServerConfig cfg = BaseConfig();
  cfg.event_loops = 4;
  cfg.force_shared_listener = true;
  RunBitForBitOverWire(cfg, /*client_conns=*/8);
}

TEST(NetServerTest, ConfigValidateRejectsBadConfigsBeforeAnySocket) {
  service::RouterConfig rcfg;
  rcfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), rcfg);

  {
    ServerConfig cfg;
    cfg.executor_threads = 0;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
    Server server(&router, cfg);
    const auto ep = server.Start();
    ASSERT_FALSE(ep.ok());
    EXPECT_EQ(ep.status().code(), util::StatusCode::kInvalidArgument);
  }
  {
    ServerConfig cfg;
    cfg.event_loops = 0;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    ServerConfig cfg;
    cfg.event_loops = kMaxEventLoops + 1;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    ServerConfig cfg;
    cfg.bind_address = "not-an-address";
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
    Server server(&router, cfg);
    EXPECT_EQ(server.Start().status().code(),
              util::StatusCode::kInvalidArgument);
  }
  {
    ServerConfig cfg;
    cfg.max_connections = 0;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    // A negative drain timeout would turn every Shutdown() into an instant
    // force-close; reject it as the typo it is.
    ServerConfig cfg;
    cfg.drain_timeout_millis = -1;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
    Server server(&router, cfg);
    EXPECT_EQ(server.Start().status().code(),
              util::StatusCode::kInvalidArgument);
  }
  {
    // Zero-buffer arena pooling would silently disable the arena encode
    // path (every Acquire a fresh allocation, every Release a free).
    ServerConfig cfg;
    cfg.arena.max_pooled_buffers = 0;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    ServerConfig cfg;
    cfg.arena.max_retained_bytes = 0;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    // kSim without a transport has nothing to simulate on.
    ServerConfig cfg;
    cfg.backend = BackendKind::kSim;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
    Server server(&router, cfg);
    EXPECT_EQ(server.Start().status().code(),
              util::StatusCode::kInvalidArgument);
  }
  {
    // Negative lifecycle timeouts are typos, not choices (0 = disabled).
    ServerConfig cfg;
    cfg.idle_timeout_millis = -1;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    ServerConfig cfg;
    cfg.read_progress_timeout_millis = -5;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    // A per-connection write cap above the per-loop aggregate could never
    // fire — one connection would always trip the loop cap first. Reject
    // the inverted pair outright.
    ServerConfig cfg;
    cfg.max_conn_pending_write_bytes = 1024;
    cfg.max_loop_pending_write_bytes = 512;
    EXPECT_EQ(cfg.Validate().code(), util::StatusCode::kInvalidArgument);
    Server server(&router, cfg);
    EXPECT_EQ(server.Start().status().code(),
              util::StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(ServerConfig().Validate().ok());
  {
    // drain_timeout_millis == 0 is legal: "force-close immediately" is a
    // choice, not a typo.
    ServerConfig cfg;
    cfg.drain_timeout_millis = 0;
    EXPECT_TRUE(cfg.Validate().ok());
  }
  {
    // Disabling one or both write caps is legal, as is conn-cap-only.
    ServerConfig cfg;
    cfg.idle_timeout_millis = 0;
    cfg.read_progress_timeout_millis = 0;
    cfg.max_conn_pending_write_bytes = 1024;
    cfg.max_loop_pending_write_bytes = 0;
    EXPECT_TRUE(cfg.Validate().ok());
  }
}

TEST(NetServerTest, ParseBackendKindRoundTripsAndRejectsGarbage) {
  BackendKind kind = BackendKind::kSim;
  ASSERT_TRUE(ParseBackendKind("poll", &kind));
  EXPECT_EQ(kind, BackendKind::kPoll);
  ASSERT_TRUE(ParseBackendKind("epoll", &kind));
  EXPECT_EQ(kind, BackendKind::kEpoll);
  ASSERT_TRUE(ParseBackendKind("sim", &kind));
  EXPECT_EQ(kind, BackendKind::kSim);
  for (BackendKind k :
       {BackendKind::kPoll, BackendKind::kEpoll, BackendKind::kSim}) {
    BackendKind parsed = BackendKind::kPoll;
    ASSERT_TRUE(ParseBackendKind(BackendKindName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  kind = BackendKind::kEpoll;
  EXPECT_FALSE(ParseBackendKind("", &kind));
  EXPECT_FALSE(ParseBackendKind("Epoll", &kind));
  EXPECT_FALSE(ParseBackendKind("io_uring", &kind));
  EXPECT_EQ(kind, BackendKind::kEpoll);  // Untouched on failure.
}

// The PR 8 acceptance pin: the epoll backend must be bit-for-bit identical
// to poll over the wire — same frames, same payload bytes, same per-loop
// counter rollup — at one loop and at four, pipelined batches striped over
// several connections. (RunBitForBitOverWire compares against the in-process
// reference, which the poll runs above also match; equality to the same
// reference is equality to each other.)
TEST(NetServerTest, EpollSingleLoopMatchesInProcessBitForBit) {
  ServerConfig cfg;
  cfg.backend = BackendKind::kEpoll;
  RunBitForBitOverWire(cfg, /*client_conns=*/1);
}

TEST(NetServerTest, EpollFourLoopsMatchInProcessBitForBit) {
  ServerConfig cfg;
  cfg.backend = BackendKind::kEpoll;
  cfg.event_loops = 4;
  RunBitForBitOverWire(cfg, /*client_conns=*/8);
}

TEST(NetServerTest, StartReturnsBoundEndpoint) {
  service::RouterConfig rcfg;
  rcfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), rcfg);

  ServerConfig cfg = BaseConfig();
  cfg.event_loops = 2;
  Server server(&router, cfg);
  const util::Result<Endpoint> ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();
  EXPECT_EQ(ep->address, "127.0.0.1");
  EXPECT_GT(ep->port, 0);  // Ephemeral bind resolved to a concrete port.
  EXPECT_EQ(ep->ToString(), "127.0.0.1:" + std::to_string(ep->port));
  EXPECT_EQ(server.num_loops(), 2u);

  // The endpoint is connectable as reported.
  Client client;
  ASSERT_TRUE(client.Connect(ep->address, ep->port).ok());
  EXPECT_TRUE(client.Ping().ok());
  client.Close();
  server.Shutdown();
}

TEST(NetServerTest, MultiLoopShutdownDrainsEveryLoopsDecodedRequests) {
  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.enable_cache = false;
  cfg.num_threads = 2;
  service::QueryRouter router(SharedCatalog(), cfg);

  ServerConfig server_cfg = BaseConfig();
  server_cfg.event_loops = 4;
  Server server(&router, server_cfg);
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();

  // Several connections (landing on different loops) each pipeline requests
  // without reading a single response.
  constexpr size_t kConns = 6;
  constexpr int kPerConn = 20;
  ClientPool pool;
  ASSERT_TRUE(pool.Connect(ep->address, ep->port, kConns).ok());
  const std::vector<service::Request> requests =
      MixedWorkload(kPerConn, /*seed=*/77);
  for (size_t c = 0; c < kConns; ++c) {
    for (int i = 0; i < kPerConn; ++i) {
      WireRequest wire = ToWire(requests[static_cast<size_t>(i)]);
      wire.kind = service::QueryKind::kQ1MeanValue;  // Small answer frames.
      ASSERT_TRUE(
          pool.client(c)->SendRequest(wire, static_cast<uint64_t>(i) + 1).ok());
    }
  }

  // Wait until every loop has decoded its share, then shut down: drain
  // semantics require every decoded request on every loop to be answered
  // and flushed before its connection closes.
  ASSERT_TRUE(WaitFor([&] {
    return router.Stats().net_frames_decoded >=
           static_cast<int64_t>(kConns) * kPerConn;
  }));
  server.Shutdown();

  for (size_t c = 0; c < kConns; ++c) {
    int answered = 0;
    for (;;) {
      uint64_t id = 0;
      auto response = pool.client(c)->ReadResponse(&id);
      if (!response.ok() &&
          response.status().code() == util::StatusCode::kIoError) {
        break;  // Clean EOF after the drained responses.
      }
      ASSERT_TRUE(response.ok()) << "conn " << c << ": " << response.status();
      ++answered;
      if (answered == kPerConn) break;
    }
    EXPECT_EQ(answered, kPerConn) << "conn " << c;
  }

  const service::ServiceSnapshot snap = router.Stats();
  EXPECT_EQ(snap.net_protocol_errors, 0);
  EXPECT_EQ(snap.net_connections_closed, static_cast<int64_t>(kConns));
}

TEST(NetServerTest, GlobalConnectionCapHoldsAcrossLoops) {
  service::RouterConfig rcfg;
  rcfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), rcfg);

  ServerConfig cfg = BaseConfig();
  cfg.event_loops = 4;
  cfg.max_connections = 6;  // Global cap, NOT per loop.
  Server server(&router, cfg);
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();

  // 24 concurrent connects spread across 4 accept-sharded loops. If the cap
  // were per-loop state, up to 4×6 could survive; the shared atomic must
  // hold the global line at 6.
  constexpr size_t kAttempts = 24;
  std::vector<std::unique_ptr<Client>> clients(kAttempts);
  std::vector<int> alive(kAttempts, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kAttempts);
    for (size_t i = 0; i < kAttempts; ++i) {
      threads.emplace_back([&, i] {
        clients[i] = std::make_unique<Client>();
        if (!clients[i]->Connect(ep->address, ep->port).ok()) return;
        // An over-cap connection is closed right after accept: the ping
        // sees EOF. A surviving one pongs.
        alive[i] = clients[i]->Ping().ok() ? 1 : 0;
      });
    }
    for (std::thread& t : threads) t.join();
  }
  int survivors = 0;
  for (int a : alive) survivors += a;
  EXPECT_LE(survivors, 6);
  EXPECT_GE(survivors, 1);

  // Freed capacity is reusable: after closing everything, a fresh
  // connection works (the shared count was decremented on every close).
  for (auto& c : clients) c->Close();
  Client fresh;
  ASSERT_TRUE(WaitFor([&] {
    fresh.Close();
    return fresh.Connect(ep->address, ep->port).ok() && fresh.Ping().ok();
  }));
  fresh.Close();
  server.Shutdown();
}

TEST(NetServerTest, ExpiredClientDeadlineRejectedAtAdmissionWithoutCacheTouch) {
  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.enable_cache = true;
  cfg.cache.delta_min = 0.9;
  cfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), cfg);

  Server server(&router, BaseConfig());
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();
  Client client;
  ASSERT_TRUE(client.Connect(ep->address, ep->port).ok());

  // Warm the service (and the cache) with an unbounded request.
  WireRequest warm = WireRequest::Q1("r1", query::Query({0.4, 0.6}, 0.12));
  auto warm_answer = client.Execute(warm);
  ASSERT_TRUE(warm_answer.ok()) << warm_answer.status();

  const int64_t lookups_before = router.CacheStats().lookups;

  // A 1ns budget is expired by the time admission runs: typed rejection, and
  // the δ-cache must not even be consulted (a hit may never mask the status).
  WireRequest expired = warm;
  expired.deadline_budget_nanos = 1;
  auto rejected = client.Execute(expired);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(router.CacheStats().lookups, lookups_before);

  const service::ServiceSnapshot snap = router.Stats();
  EXPECT_GE(snap.deadline_exceeded, 1);

  client.Close();
  server.Shutdown();
}

TEST(NetServerTest, SaturatedRouterShedsWithTypedFramesNotConnectionDrops) {
  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.enable_cache = false;  // Shed must reject, not answer from cache.
  cfg.num_threads = 1;
  cfg.queue_capacity = 4;
  cfg.overload = service::OverloadPolicy::kShed;
  service::QueryRouter router(SharedCatalog(), cfg);

  Server server(&router, BaseConfig());
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();
  Client client;
  ASSERT_TRUE(client.Connect(ep->address, ep->port).ok());

  const std::vector<service::Request> requests = MixedWorkload(200, /*seed=*/33);
  std::vector<WireRequest> batch;
  for (const service::Request& r : requests) batch.push_back(ToWire(r));

  const auto results = client.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());

  int64_t ok = 0, shed = 0, other = 0;
  for (const auto& r : results) {
    if (r.ok()) {
      ++ok;
    } else if (r.status().code() == util::StatusCode::kResourceExhausted) {
      ++shed;
    } else {
      ++other;
      ADD_FAILURE() << "unexpected failure: " << r.status();
    }
  }
  // Every request got a typed response — the overload story is frames, not
  // resets. The tiny queue guarantees the shed path actually engaged.
  EXPECT_EQ(ok + shed, static_cast<int64_t>(batch.size()));
  EXPECT_GT(shed, 0);
  EXPECT_GT(ok, 0);
  EXPECT_GE(router.Stats().shed, shed);

  // The connection survived saturation: one more request round-trips.
  auto after = client.Execute(ToWire(requests[0]));
  EXPECT_TRUE(after.ok() ||
              after.status().code() == util::StatusCode::kResourceExhausted);

  client.Close();
  server.Shutdown();
}

TEST(NetServerTest, ServerPipelineCapShedsAtAdmission) {
  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.enable_cache = false;
  cfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), cfg);

  ServerConfig server_cfg = BaseConfig();
  server_cfg.max_pipeline = 8;  // Tiny per-connection backlog bound.
  Server server(&router, server_cfg);
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();
  Client client;
  ASSERT_TRUE(client.Connect(ep->address, ep->port).ok());

  const std::vector<service::Request> requests = MixedWorkload(64, /*seed=*/55);
  std::vector<WireRequest> batch;
  for (const service::Request& r : requests) batch.push_back(ToWire(r));
  const auto results = client.ExecuteBatch(batch);

  int64_t ok = 0, shed = 0;
  for (const auto& r : results) {
    if (r.ok()) ++ok;
    if (!r.ok() && r.status().code() == util::StatusCode::kResourceExhausted) ++shed;
  }
  EXPECT_EQ(ok + shed, static_cast<int64_t>(batch.size()));
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);  // 64 frames into an 8-deep pipeline must shed.

  client.Close();
  server.Shutdown();
}

TEST(NetServerTest, ShutdownDrainsDecodedRequestsThenCloses) {
  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.enable_cache = false;
  cfg.num_threads = 2;
  service::QueryRouter router(SharedCatalog(), cfg);

  Server server(&router, BaseConfig());
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();
  Client client;
  ASSERT_TRUE(client.Connect(ep->address, ep->port).ok());

  // Pipeline 50 small Q1s without reading a single response.
  constexpr int kRequests = 50;
  const std::vector<service::Request> requests =
      MixedWorkload(kRequests, /*seed=*/77);
  for (int i = 0; i < kRequests; ++i) {
    WireRequest wire = ToWire(requests[static_cast<size_t>(i)]);
    wire.kind = service::QueryKind::kQ1MeanValue;  // Small answer frames.
    ASSERT_TRUE(client.SendRequest(wire, static_cast<uint64_t>(i) + 1).ok());
  }

  // Wait until the server has *decoded* all 50, then shut down: drain
  // semantics require every decoded request to be answered and flushed.
  ASSERT_TRUE(WaitFor(
      [&] { return router.Stats().net_frames_decoded >= kRequests; }));
  server.Shutdown();

  int answered = 0;
  for (;;) {
    uint64_t id = 0;
    auto response = client.ReadResponse(&id);
    if (!response.ok() &&
        response.status().code() == util::StatusCode::kIoError) {
      break;  // Clean EOF after the drained responses.
    }
    ASSERT_TRUE(response.ok()) << response.status();
    ++answered;
    if (answered == kRequests) break;
  }
  EXPECT_EQ(answered, kRequests);

  // And the drained server refused nothing mid-flight: no protocol errors,
  // connection accounted closed.
  const service::ServiceSnapshot snap = router.Stats();
  EXPECT_EQ(snap.net_protocol_errors, 0);
  EXPECT_TRUE(WaitFor([&] {
    return router.Stats().net_connections_closed >= 1;
  }));
}

TEST(NetServerTest, MalformedStreamGetsTypedErrorFrameAndCleanClose) {
  service::RouterConfig cfg;
  cfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), cfg);
  Server server(&router, BaseConfig());
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();

  // Raw socket: send garbage that cannot be a frame header.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep->port);
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char garbage[64] = "this is definitely not a QREG frame header......";
  ASSERT_EQ(::write(fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));

  // The server answers with one typed kError frame (request_id 0), then EOF.
  FrameDecoder decoder;
  Frame frame;
  bool got_error_frame = false;
  bool got_eof = false;
  uint8_t buf[4096];
  for (int i = 0; i < 2000 && !got_eof; ++i) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      decoder.Feed(buf, static_cast<size_t>(n));
      while (decoder.Next(&frame) == FrameDecoder::Event::kFrame) {
        ASSERT_EQ(frame.header.type, FrameType::kError);
        EXPECT_EQ(frame.header.request_id, 0u);
        util::Status transported;
        ASSERT_TRUE(DecodeStatus(frame.payload.data(), frame.payload.size(),
                                 &transported)
                        .ok());
        EXPECT_EQ(transported.code(), util::StatusCode::kInvalidArgument);
        got_error_frame = true;
      }
    } else if (n == 0) {
      got_eof = true;
    } else {
      break;
    }
  }
  ::close(fd);
  EXPECT_TRUE(got_error_frame);
  EXPECT_TRUE(got_eof);
  EXPECT_TRUE(WaitFor([&] { return router.Stats().net_protocol_errors >= 1; }));

  // The poisoned connection took nothing else down: a fresh client works.
  Client client;
  ASSERT_TRUE(client.Connect(ep->address, ep->port).ok());
  ASSERT_TRUE(client.Ping().ok());
  auto answer = client.Execute(
      WireRequest::Q1("r1", query::Query({0.4, 0.6}, 0.12)));
  EXPECT_TRUE(answer.ok()) << answer.status();

  client.Close();
  server.Shutdown();
}

TEST(NetServerTest, OversizedFramePoisonPersistsOverSocket) {
  service::RouterConfig cfg;
  cfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), cfg);
  Server server(&router, BaseConfig());
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();

  // One burst: a frame whose header announces a payload over the 16 MiB
  // ceiling, followed by a perfectly well-formed request. The poison must
  // persist — exactly one typed kError frame (kOutOfRange, request_id 0),
  // then EOF; the valid frame is never decoded, let alone answered.
  std::vector<uint8_t> burst;
  AppendFrame(&burst, FrameType::kRequest, 1,
              EncodeRequest(WireRequest::Q1("r1", query::Query({0.4, 0.6},
                                                               0.12))));
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(burst.data() + 16, &huge, sizeof(huge));  // payload_len field.
  AppendFrame(&burst, FrameType::kRequest, 2,
              EncodeRequest(WireRequest::Q1("r1", query::Query({0.4, 0.6},
                                                               0.12))));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep->port);
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::write(fd, burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));

  FrameDecoder decoder;
  Frame frame;
  int error_frames = 0;
  bool got_eof = false;
  uint8_t buf[4096];
  for (int i = 0; i < 2000 && !got_eof; ++i) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      decoder.Feed(buf, static_cast<size_t>(n));
      while (decoder.Next(&frame) == FrameDecoder::Event::kFrame) {
        ASSERT_EQ(frame.header.type, FrameType::kError);
        EXPECT_EQ(frame.header.request_id, 0u);
        util::Status transported;
        ASSERT_TRUE(DecodeStatus(frame.payload.data(), frame.payload.size(),
                                 &transported)
                        .ok());
        EXPECT_EQ(transported.code(), util::StatusCode::kOutOfRange);
        ++error_frames;
      }
    } else if (n == 0) {
      got_eof = true;
    } else {
      break;
    }
  }
  ::close(fd);
  EXPECT_EQ(error_frames, 1);
  EXPECT_TRUE(got_eof);
  EXPECT_TRUE(WaitFor([&] { return router.Stats().net_protocol_errors == 1; }));
  EXPECT_EQ(router.Stats().net_frames_decoded, 0);
  EXPECT_EQ(router.Stats().total_queries, 0);

  server.Shutdown();
}

TEST(NetClientTest, RecvTimeoutReturnsTypedDeadlineExceededOnStalledServer) {
  // A listener that never accepts: the TCP handshake still completes via
  // the backlog, so the client connects and sends — and before the
  // poll-with-timeout receive path, ReadResponse would park in read()
  // forever. Now the silence comes back as a typed kDeadlineExceeded.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);

  Client client;
  client.set_recv_timeout_millis(50);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  const auto result =
      client.Execute(WireRequest::Q1("r1", query::Query({0.4, 0.6}, 0.12)));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  // The timed-out stream is desynced (the answer could still arrive later),
  // so the client closes it — and the failure is deliberately *not*
  // retryable: re-issuing a request whose wait expired would silently grant
  // it a fresh window.
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(util::IsRetryable(result.status().code()));
  ::close(lfd);
}

TEST(NetServerTest, UnknownDatasetComesBackAsTypedNotFound) {
  service::RouterConfig cfg;
  cfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), cfg);
  Server server(&router, BaseConfig());
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();
  Client client;
  ASSERT_TRUE(client.Connect(ep->address, ep->port).ok());

  auto answer = client.Execute(
      WireRequest::Q1("no-such-dataset", query::Query({0.5, 0.5}, 0.1)));
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), util::StatusCode::kNotFound);

  client.Close();
  server.Shutdown();
}

TEST(NetServerTest, PingPongAndServerIsSingleUse) {
  service::RouterConfig cfg;
  cfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), cfg);
  Server server(&router, BaseConfig());
  const auto ep = server.Start();
  ASSERT_TRUE(ep.ok()) << ep.status();
  EXPECT_TRUE(server.running());

  Client client;
  ASSERT_TRUE(client.Connect(ep->address, ep->port).ok());
  EXPECT_TRUE(client.Ping().ok());
  client.Close();
  server.Shutdown();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.Start().status().code(),
            util::StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------- ClientPool --

// A pool server + reference router pair for the ClientPool tests.
struct PoolFixture {
  service::QueryRouter router;
  service::QueryRouter ref;
  Server server;
  Endpoint ep;

  static service::RouterConfig RouterCfg(size_t threads) {
    service::RouterConfig cfg;
    cfg.policy = service::RoutePolicy::kHybrid;
    cfg.enable_cache = false;
    cfg.num_threads = threads;
    return cfg;
  }

  PoolFixture()
      : router(SharedCatalog(), RouterCfg(2)),
        ref(SharedCatalog(), RouterCfg(0)),
        server(&router, BaseConfig()) {
    const util::Result<Endpoint> started = server.Start();
    EXPECT_TRUE(started.ok()) << started.status();
    if (started.ok()) ep = *started;
  }
};

TEST(ClientPoolTest, ScatterBackIsPositionalAcrossStripes) {
  PoolFixture fx;
  ClientPool pool;
  ASSERT_TRUE(pool.Connect(fx.ep.address, fx.ep.port, 3).ok());
  ASSERT_EQ(pool.size(), 3u);

  // 20 requests over 3 connections: stripes of 7/7/6, interleaved i % 3. A
  // scatter-back bug (stripe-major instead of positional) would pair slot i
  // with the wrong reference answer — the per-slot means differ by design.
  const std::vector<service::Request> requests = MixedWorkload(20, /*seed=*/9);
  std::vector<WireRequest> batch;
  for (const service::Request& r : requests) batch.push_back(ToWire(r));
  const auto results = pool.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto want = fx.ref.Execute(requests[i]);
    ASSERT_EQ(results[i].ok(), want.ok()) << "slot " << i;
    if (!want.ok()) continue;
    EXPECT_TRUE(BitEq(results[i]->mean, want->mean)) << "slot " << i;
    EXPECT_EQ(results[i]->exec.tuples_matched, want->exec.tuples_matched)
        << "slot " << i;
  }
  pool.Close();
}

TEST(ClientPoolTest, DeadStripeIsRedialedLazilyAndNeverPoisonsSiblings) {
  PoolFixture fx;
  ClientPool pool;
  ASSERT_TRUE(pool.Connect(fx.ep.address, fx.ep.port, 3).ok());

  // Kill connection 1 out from under the pool. The server is still up, so
  // the next batch must lazily redial that stripe and answer every slot —
  // one dead connection never poisons its siblings' results, and with a
  // reachable server it costs nothing but the reconnect.
  pool.client(1)->Close();
  ASSERT_FALSE(pool.client(1)->connected());

  const std::vector<service::Request> requests = MixedWorkload(12, /*seed=*/13);
  std::vector<WireRequest> batch;
  for (const service::Request& r : requests) batch.push_back(ToWire(r));
  const auto results = pool.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const auto want = fx.ref.Execute(requests[i]);
    ASSERT_EQ(results[i].ok(), want.ok())
        << "slot " << i << ": " << results[i].status();
    if (want.ok()) {
      EXPECT_TRUE(BitEq(results[i]->mean, want->mean)) << "slot " << i;
    }
  }
  EXPECT_TRUE(pool.client(1)->connected());  // The redial actually happened.
  pool.Close();
}

TEST(RetryPolicyTest, BackoffScheduleIsDeterministicSeededJitteredAndCapped) {
  RetryPolicy policy;
  policy.base_backoff_nanos = 1000000;    // 1 ms
  policy.max_backoff_nanos = 8000000;     // 8 ms cap
  policy.jitter_seed = 42;

  // Same seed → the exact same schedule, call after call: the determinism
  // the chaos/retry tests (and any bug report with a seed in it) lean on.
  RetryPolicy same = policy;
  for (int k = 1; k <= 10; ++k) {
    EXPECT_EQ(policy.BackoffNanos(k), same.BackoffNanos(k)) << "retry " << k;
  }

  // Every value sits in [nominal/2, nominal] where nominal doubles per
  // retry until the cap: jittered, never wilder than exponential.
  for (int k = 1; k <= 10; ++k) {
    int64_t nominal = policy.base_backoff_nanos;
    for (int i = 1; i < k && nominal < policy.max_backoff_nanos; ++i) {
      nominal *= 2;
    }
    nominal = std::min(nominal, policy.max_backoff_nanos);
    const int64_t got = policy.BackoffNanos(k);
    EXPECT_GE(got, nominal - nominal / 2) << "retry " << k;
    EXPECT_LE(got, nominal) << "retry " << k;
  }
  EXPECT_LE(policy.BackoffNanos(63), policy.max_backoff_nanos);

  // A different seed actually moves the jitter somewhere in the schedule.
  RetryPolicy other = policy;
  other.jitter_seed = 43;
  bool differs = false;
  for (int k = 1; k <= 10 && !differs; ++k) {
    differs = other.BackoffNanos(k) != policy.BackoffNanos(k);
  }
  EXPECT_TRUE(differs);
}

TEST(ClientPoolTest, RetryRecoversBatchAfterResetFirstAttempt) {
  // Port handoff: a throwaway listener owns an ephemeral port first; the
  // pool's connection lands in its backlog. The listener RSTs that
  // connection (SO_LINGER{1,0} close) and vacates the port, a real server
  // takes it over, and the retrying pool must finish the scripted
  // reset-first-attempt scenario at 100% success.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);

  ClientPool pool;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_nanos = 1000000;  // Keep the test fast.
  policy.jitter_seed = 7;
  pool.set_retry_policy(policy);
  ASSERT_TRUE(pool.Connect("127.0.0.1", port, 1).ok());

  // RST the pooled connection and vacate the port.
  const int accepted = ::accept(lfd, nullptr, nullptr);
  ASSERT_GE(accepted, 0);
  struct linger hard_reset = {1, 0};
  ::setsockopt(accepted, SOL_SOCKET, SO_LINGER, &hard_reset,
               sizeof(hard_reset));
  ::close(accepted);  // RST, not FIN: the first attempt dies as kIoError.
  ::close(lfd);

  // The real server inherits the exact endpoint the pool remembers.
  service::RouterConfig rcfg;
  rcfg.policy = service::RoutePolicy::kHybrid;
  rcfg.enable_cache = false;
  rcfg.num_threads = 2;
  service::QueryRouter router(SharedCatalog(), rcfg);
  service::RouterConfig refcfg = rcfg;
  refcfg.num_threads = 0;
  service::QueryRouter ref(SharedCatalog(), refcfg);
  ServerConfig scfg = BaseConfig();
  scfg.port = port;
  Server server(&router, scfg);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<service::Request> requests = MixedWorkload(8, /*seed=*/17);
  std::vector<WireRequest> batch;
  for (const service::Request& r : requests) batch.push_back(ToWire(r));
  const auto results = pool.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const auto want = ref.Execute(requests[i]);
    ASSERT_TRUE(results[i].ok())
        << "slot " << i << ": " << results[i].status();
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(BitEq(results[i]->mean, want->mean)) << "slot " << i;
  }
  pool.Close();
  server.Shutdown();
}

TEST(ClientPoolTest, DeadlineCarryingRequestsAreNeverRetried) {
  // Same reset-first-attempt handoff, but one request carries a client
  // deadline budget. Retrying it would silently grant the query a fresh
  // budget, so the pool must leave it failed even though a retry against
  // the healthy server would trivially succeed — that success on the
  // budget-free sibling slot is the proof the retry machinery ran.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);

  ClientPool pool;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_nanos = 1000000;
  pool.set_retry_policy(policy);
  ASSERT_TRUE(pool.Connect("127.0.0.1", port, 1).ok());

  const int accepted = ::accept(lfd, nullptr, nullptr);
  ASSERT_GE(accepted, 0);
  struct linger hard_reset = {1, 0};
  ::setsockopt(accepted, SOL_SOCKET, SO_LINGER, &hard_reset,
               sizeof(hard_reset));
  ::close(accepted);
  ::close(lfd);

  service::RouterConfig rcfg;
  rcfg.num_threads = 1;
  service::QueryRouter router(SharedCatalog(), rcfg);
  ServerConfig scfg = BaseConfig();
  scfg.port = port;
  Server server(&router, scfg);
  ASSERT_TRUE(server.Start().ok());

  WireRequest plain = WireRequest::Q1("r1", query::Query({0.4, 0.6}, 0.12));
  WireRequest budgeted = plain;
  budgeted.deadline_budget_nanos = 30ll * 1000000000;  // Generous: 30s.
  const auto results = pool.ExecuteBatch({plain, budgeted});
  ASSERT_EQ(results.size(), 2u);

  // The budget-free request rode the retry to success...
  ASSERT_TRUE(results[0].ok()) << results[0].status();
  // ...the deadline-carrying one was provably never re-issued: the only
  // attempt it ever got was the reset one, and that failure stands.
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), util::StatusCode::kIoError);

  pool.Close();
  server.Shutdown();
}

TEST(ClientPoolTest, RoutesAroundPermanentlyDeadStripe) {
  PoolFixture fx;
  ClientPool pool;
  ASSERT_TRUE(pool.Connect(fx.ep.address, fx.ep.port, 2).ok());

  // Find a port that is genuinely dead (bind, look, close — nothing listens
  // there afterwards), and point stripe 1's endpoint at it. Every redial of
  // that stripe now fails with ECONNREFUSED.
  uint16_t dead_port = 0;
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    dead_port = ntohs(addr.sin_port);
    ::close(fd);
  }
  pool.client(1)->Close();
  EXPECT_FALSE(pool.client(1)->Connect("127.0.0.1", dead_port).ok());

  // The batch routes entirely around the dead stripe: every slot answers
  // bit-for-bit over stripe 0 alone, and the dead stripe stays dead.
  const std::vector<service::Request> requests = MixedWorkload(10, /*seed=*/23);
  std::vector<WireRequest> batch;
  for (const service::Request& r : requests) batch.push_back(ToWire(r));
  const auto results = pool.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const auto want = fx.ref.Execute(requests[i]);
    ASSERT_TRUE(results[i].ok())
        << "slot " << i << ": " << results[i].status();
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(BitEq(results[i]->mean, want->mean)) << "slot " << i;
  }
  EXPECT_FALSE(pool.client(1)->connected());
  pool.Close();
}

TEST(ClientPoolTest, EmptyBatchAndEdgeConfigs) {
  PoolFixture fx;
  {
    // Zero connections is a typed config error, not a crash later.
    ClientPool pool;
    EXPECT_EQ(pool.Connect(fx.ep.address, fx.ep.port, 0).code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_FALSE(pool.connected());
  }
  {
    // An empty batch round-trips as an empty result set on a live pool.
    ClientPool pool;
    ASSERT_TRUE(pool.Connect(fx.ep.address, fx.ep.port, 2).ok());
    EXPECT_TRUE(pool.ExecuteBatch({}).empty());
    // Fewer requests than connections: the extra connection just idles.
    const std::vector<service::Request> requests =
        MixedWorkload(1, /*seed=*/21);
    const auto results = pool.ExecuteBatch({ToWire(requests[0])});
    ASSERT_EQ(results.size(), 1u);
    const auto want = fx.ref.Execute(requests[0]);
    ASSERT_EQ(results[0].ok(), want.ok());
    if (want.ok()) {
      EXPECT_TRUE(BitEq(results[0]->mean, want->mean));
    }
    pool.Close();
  }
  {
    // ExecuteBatch on a never-connected pool: typed per-slot errors.
    ClientPool pool;
    const auto results =
        pool.ExecuteBatch({WireRequest::Q1("r1", query::Query({0.5}, 0.1))});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status().code(),
              util::StatusCode::kFailedPrecondition);
  }
}

}  // namespace
}  // namespace net
}  // namespace qreg
