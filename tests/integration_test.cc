// End-to-end integration tests across all modules: dataset synthesis ->
// exact engine -> query-driven training -> prediction, checked against the
// paper's qualitative claims on small deterministic instances:
//
//  1. Q1 predictions approximate exact answers after convergence.
//  2. Q2 local models recover planted piecewise-linear structure.
//  3. On non-linear data, LLM's per-query FVU beats the global REG fit.
//  4. Data-value prediction (Eq. 14) tracks the underlying function.
//  5. Trained models survive serialization with identical behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "core/llm_model.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "eval/fvu_eval.h"
#include "eval/metrics.h"
#include "plr/mars.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "storage/kdtree.h"
#include "util/rng.h"

namespace qreg {
namespace {

using core::LlmConfig;
using core::LlmModel;
using core::Trainer;
using core::TrainerConfig;
using query::Query;

// Shared fixture: R1-style gas-sensor data, d=2, trained model.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto ds = data::MakeR1(2, 30000, 101);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    index_ = new storage::KdTree(dataset_->table);
    engine_ = new query::ExactEngine(dataset_->table, *index_);

    model_ = new LlmModel(LlmConfig::ForDimension(2, 0.1, /*gamma=*/0.005));
    TrainerConfig tc;
    tc.max_pairs = 20000;
    tc.min_pairs = 4000;
    Trainer trainer(*engine_, tc);
    auto workload = query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.1, 0.1, 211);
    query::WorkloadGenerator gen(workload);
    auto report = trainer.Train(&gen, model_);
    ASSERT_TRUE(report.ok());
    report_ = new core::TrainingReport(std::move(report).value());
  }

  static void TearDownTestSuite() {
    delete report_;
    delete model_;
    delete engine_;
    delete index_;
    delete dataset_;
    report_ = nullptr;
    model_ = nullptr;
    engine_ = nullptr;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static storage::KdTree* index_;
  static query::ExactEngine* engine_;
  static LlmModel* model_;
  static core::TrainingReport* report_;
};

data::Dataset* PipelineTest::dataset_ = nullptr;
storage::KdTree* PipelineTest::index_ = nullptr;
query::ExactEngine* PipelineTest::engine_ = nullptr;
LlmModel* PipelineTest::model_ = nullptr;
core::TrainingReport* PipelineTest::report_ = nullptr;

TEST_F(PipelineTest, TrainingConvergedWithReasonableK) {
  EXPECT_TRUE(report_->converged);
  EXPECT_GT(report_->num_prototypes, 3);
  EXPECT_LT(report_->num_prototypes, 2000);
  EXPECT_GT(report_->QueryExecFraction(), 0.5);
}

TEST_F(PipelineTest, Q1PredictionTracksExactAnswers) {
  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.1, 0.1, 999));
  eval::RmseAccumulator rmse;
  int evaluated = 0;
  while (evaluated < 400) {
    const Query q = gen.Next();
    auto exact = engine_->MeanValue(q);
    if (!exact.ok()) continue;
    auto pred = model_->PredictMean(q);
    ASSERT_TRUE(pred.ok());
    rmse.Add(exact->mean, *pred);
    ++evaluated;
  }
  // u is scaled to [0,1]; the paper reports RMSE ~0.02-0.06 in this setup.
  EXPECT_LT(rmse.Rmse(), 0.12);
}

TEST(RosenbrockQ2Test, PiecewiseFvuBeatsGlobalRegOnCurvedData) {
  // The paper's D2/D3 claim: over strongly non-linear subspaces the list of
  // local linear models explains the data better than one global REG plane.
  // Rosenbrock's valley provides the curvature; balls of radius ~4 on
  // [-10,10]^2 are far from locally linear.
  auto ds = data::MakeR2(2, 40000, 515);
  ASSERT_TRUE(ds.ok());
  storage::KdTree index(ds->table);
  query::ExactEngine engine(ds->table, index);

  LlmConfig cfg = LlmConfig::ForDomain(2, 0.05, /*gamma=*/0.05,
                                       /*x_range=*/20.0, /*theta_range=*/2.0);
  LlmModel model(cfg);
  TrainerConfig tc;
  tc.max_pairs = 40000;
  tc.min_pairs = 15000;
  Trainer trainer(engine, tc);
  query::WorkloadGenerator train_gen(
      query::WorkloadConfig::Cube(2, -10.0, 10.0, 1.0, 0.2, 516));
  auto report = trainer.Train(&train_gen, &model);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(model.num_prototypes(), 3);

  query::WorkloadGenerator eval_gen(
      query::WorkloadConfig::Cube(2, -5.0, 5.0, 5.0, 0.5, 517));
  double llm_fvu_sum = 0.0, reg_fvu_sum = 0.0;
  int evaluated = 0;
  while (evaluated < 25) {
    const Query q = eval_gen.Next();
    auto ids = engine.Select(q).value();
    if (ids.size() < 500) continue;
    auto reg = engine.Regression(q);
    ASSERT_TRUE(reg.ok());
    auto pw = eval::EvaluatePiecewiseFvu(model, q, ds->table, ids);
    ASSERT_TRUE(pw.ok());
    llm_fvu_sum += pw->mean_fvu;
    reg_fvu_sum += reg->FVU();
    ++evaluated;
  }
  const double llm_mean = llm_fvu_sum / evaluated;
  const double reg_mean = reg_fvu_sum / evaluated;
  // Piecewise local models must explain the curved subspaces better than
  // the single exact plane (the paper's Figure 9 relationship).
  EXPECT_LT(llm_mean, reg_mean) << "llm=" << llm_mean << " reg=" << reg_mean;
}

TEST_F(PipelineTest, DataValuePredictionBeatsMeanBaseline) {
  // Predicting u(x) from the model should beat predicting the global mean.
  util::Rng rng(77);
  eval::FvuAccumulator fvu;
  for (int i = 0; i < 1000; ++i) {
    const int64_t id =
        static_cast<int64_t>(rng.UniformInt(
            static_cast<uint64_t>(dataset_->table.num_rows())));
    const std::vector<double> x = dataset_->table.XRow(id);
    const Query q(x, 0.1);
    auto pred = model_->PredictValue(q, x);
    ASSERT_TRUE(pred.ok());
    fvu.Add(dataset_->table.u(id), *pred);
  }
  EXPECT_LT(fvu.Fvu(), 1.0);  // better than the mean predictor
}

TEST_F(PipelineTest, SerializedModelBehavesIdentically) {
  std::ostringstream ss;
  ASSERT_TRUE(core::ModelSerializer::Save(*model_, &ss).ok());
  std::istringstream in(ss.str());
  auto loaded = core::ModelSerializer::Load(&in);
  ASSERT_TRUE(loaded.ok());
  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.1, 0.1, 31337));
  for (int i = 0; i < 100; ++i) {
    const Query q = gen.Next();
    EXPECT_DOUBLE_EQ(*model_->PredictMean(q), *loaded->PredictMean(q));
  }
}

// ---------- Planted piecewise-linear ground truth ----------

TEST(PiecewiseIntegrationTest, LlmRecoversPlantedLocalSlopes) {
  // u(x) = 2x for x < 0.5, u(x) = 1 - 3(x - 0.5) for x >= 0.5 on [0,1].
  storage::Table table(1);
  util::Rng rng(404);
  for (int i = 0; i < 30000; ++i) {
    const double x = rng.Uniform(0, 1);
    const double u = x < 0.5 ? 2.0 * x : 1.0 - 3.0 * (x - 0.5);
    ASSERT_TRUE(table.Append({x}, u).ok());
  }
  storage::KdTree index(table);
  query::ExactEngine engine(table, index);

  LlmConfig cfg = LlmConfig::ForDimension(1, 0.05);  // fine quantization
  LlmModel model(cfg);
  TrainerConfig tc;
  tc.max_pairs = 25000;
  tc.min_pairs = 2000;
  Trainer trainer(engine, tc);
  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(1, 0.0, 1.0, 0.05, 0.015, 405));
  auto report = trainer.Train(&gen, &model);
  ASSERT_TRUE(report.ok());

  // Query deep inside each linear piece and check the local slope.
  auto left = model.RegressionQuery(Query({0.2}, 0.05));
  ASSERT_TRUE(left.ok());
  double left_slope_best = 1e9;
  for (const auto& m : *left) {
    if (std::fabs(m.slope[0] - 2.0) < std::fabs(left_slope_best - 2.0)) {
      left_slope_best = m.slope[0];
    }
  }
  EXPECT_NEAR(left_slope_best, 2.0, 0.5);

  auto right = model.RegressionQuery(Query({0.8}, 0.05));
  ASSERT_TRUE(right.ok());
  double right_slope_best = 1e9;
  for (const auto& m : *right) {
    if (std::fabs(m.slope[0] + 3.0) < std::fabs(right_slope_best + 3.0)) {
      right_slope_best = m.slope[0];
    }
  }
  EXPECT_NEAR(right_slope_best, -3.0, 0.6);
}

TEST(PiecewiseIntegrationTest, MarsAndLlmBothExplainPiecewiseData) {
  storage::Table table(1);
  util::Rng rng(505);
  std::vector<std::vector<double>> rows;
  std::vector<double> us;
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.Uniform(0, 1);
    const double u = std::fabs(x - 0.4) + 0.3 * x;
    ASSERT_TRUE(table.Append({x}, u).ok());
    rows.push_back({x});
    us.push_back(u);
  }
  auto mars = plr::FitMars(rows, us);
  ASSERT_TRUE(mars.ok());
  EXPECT_LT(mars->Fvu(), 0.01);

  // Global OLS on the same data is clearly worse.
  linalg::OlsAccumulator acc(1);
  for (size_t i = 0; i < rows.size(); ++i) acc.Add(rows[i], us[i]);
  auto reg = acc.Solve();
  ASSERT_TRUE(reg.ok());
  EXPECT_GT(reg->FVU(), 5.0 * mars->Fvu());
}

// ---------- Scalability sanity: prediction cost independent of data size ----

TEST(ScalabilityIntegrationTest, PredictionCostIndependentOfDataSize) {
  // Train once on a small table; predicting must not touch data at all, so
  // the model works even after the backing table is gone.
  auto model_ptr = [] {
    storage::Table table(2);
    util::Rng rng(606);
    for (int i = 0; i < 5000; ++i) {
      std::vector<double> x{rng.Uniform(0, 1), rng.Uniform(0, 1)};
      table.Append(x, x[0] + x[1]).ok();
    }
    storage::KdTree index(table);
    query::ExactEngine engine(table, index);
    auto model = std::make_unique<LlmModel>(LlmConfig::ForDimension(2, 0.3));
    TrainerConfig tc;
    tc.max_pairs = 8000;
    tc.min_pairs = 500;
    Trainer trainer(engine, tc);
    query::WorkloadGenerator gen(
        query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.1, 0.03, 607));
    trainer.Train(&gen, model.get()).ok();
    return model;
  }();
  // Table and engine destroyed; the model answers queries standalone.
  auto y = model_ptr->PredictMean(Query({0.5, 0.5}, 0.1));
  ASSERT_TRUE(y.ok());
  EXPECT_NEAR(*y, 1.0, 0.2);
}

}  // namespace
}  // namespace qreg
