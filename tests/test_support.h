// Shared test infrastructure for the service/query/lifecycle suites:
// dataset + engine fixtures (built once per process), catalog recipes,
// workload builders, a FakeClock for deterministic deadline tests, and
// blocking-gate helpers so concurrency tests synchronize on events instead
// of sleeps.

#ifndef QREG_TESTS_TEST_SUPPORT_H_
#define QREG_TESTS_TEST_SUPPORT_H_

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "data/generator.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "service/model_catalog.h"
#include "service/query_router.h"
#include "storage/kdtree.h"
#include "storage/scan_index.h"
#include "util/clock.h"
#include "util/rng.h"

namespace qreg {
namespace testsupport {

// ---------- Deterministic time ----------

/// A manually-advanced util::Clock. Deadline tests inject it so expiry is a
/// test action (AdvanceNanos) rather than elapsed wall time.
class FakeClock : public util::Clock {
 public:
  explicit FakeClock(int64_t now_nanos = 0) : now_(now_nanos) {}

  int64_t NowNanos() const override {
    return now_.load(std::memory_order_acquire);
  }
  void AdvanceNanos(int64_t delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void SetNanos(int64_t now_nanos) {
    now_.store(now_nanos, std::memory_order_release);
  }

 private:
  std::atomic<int64_t> now_;
};

// ---------- Blocking gates ----------

/// One-shot gate: Wait() blocks until some thread calls Open(). The
/// deterministic replacement for sleep-and-hope synchronization.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

  bool opened() const {
    std::lock_guard<std::mutex> lock(mu_);
    return open_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

// ---------- Dataset + engine fixtures ----------

/// A generated dataset with both access paths and a kd-tree-backed engine.
struct EngineFixture {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<storage::KdTree> kdtree;
  std::unique_ptr<storage::ScanIndex> scan;
  std::unique_ptr<query::ExactEngine> engine;  // kd-tree access path.

  storage::Table& table() { return dataset->table; }
};

inline std::unique_ptr<EngineFixture> MakeEngineFixture(size_t d, int64_t rows,
                                                        uint64_t seed) {
  auto f = std::make_unique<EngineFixture>();
  auto ds = data::MakeR1(d, rows, seed);
  EXPECT_TRUE(ds.ok());
  f->dataset = std::make_unique<data::Dataset>(std::move(ds).value());
  f->kdtree = std::make_unique<storage::KdTree>(f->dataset->table);
  f->scan = std::make_unique<storage::ScanIndex>(f->dataset->table);
  f->engine =
      std::make_unique<query::ExactEngine>(f->dataset->table, *f->kdtree);
  return f;
}

/// The service suites' shared dataset: R1, d=2, 6000 rows, seed 3. Built
/// once per process; never mutate it.
inline EngineFixture* SharedServiceFixture() {
  static EngineFixture* f =
      MakeEngineFixture(/*d=*/2, /*rows=*/6000, /*seed=*/3).release();
  return f;
}

/// The parallel-exact suites' shared dataset: R1, d=2, 20000 rows, seed 19.
/// Big enough that 16-partition plans have real work per chunk.
inline EngineFixture* SharedParallelFixture() {
  static EngineFixture* f =
      MakeEngineFixture(/*d=*/2, /*rows=*/20000, /*seed=*/19).release();
  return f;
}

// ---------- Catalog recipes ----------

/// The service suites' standard training recipe for SharedServiceFixture.
inline service::CatalogOptions DefaultCatalogOptions() {
  return service::CatalogOptions::ForCube(
      /*d=*/2, /*lo=*/0.0, /*hi=*/1.0, /*theta_mean=*/0.12,
      /*theta_stddev=*/0.02, /*a=*/0.15, /*max_pairs=*/2500, /*seed=*/7);
}

/// A catalog with SharedServiceFixture registered as "r1" and trained once
/// per process.
inline service::ModelCatalog* SharedCatalog() {
  static service::ModelCatalog* catalog = [] {
    auto* c = new service::ModelCatalog();
    EngineFixture* f = SharedServiceFixture();
    EXPECT_TRUE(c->Register("r1", &f->dataset->table, f->kdtree.get(),
                            DefaultCatalogOptions())
                    .ok());
    EXPECT_TRUE(c->TrainAll().ok());
    return c;
  }();
  return catalog;
}

// ---------- Workload builders ----------

/// Alternating Q1/Q2 requests against `dataset`, centers uniform in
/// [lo, hi]^2 with the service suites' radius distribution.
inline std::vector<service::Request> MixedWorkload(int64_t n, uint64_t seed,
                                                   double lo = 0.1,
                                                   double hi = 0.9,
                                                   std::string dataset = "r1") {
  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(2, lo, hi, 0.12, 0.02, seed));
  std::vector<service::Request> reqs;
  reqs.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    query::Query q = gen.Next();
    reqs.push_back(i % 2 == 0 ? service::Request::Q1(dataset, std::move(q))
                              : service::Request::Q2(dataset, std::move(q)));
  }
  return reqs;
}

/// Uncorrelated random 2-d queries over [0,1]^2, θ in [0.05, 0.2] — the
/// cache-equivalence suites' probe stream.
inline std::vector<query::Query> RandomQueries(int64_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<query::Query> qs;
  qs.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    qs.emplace_back(
        std::vector<double>{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)},
        rng.Uniform(0.05, 0.2));
  }
  return qs;
}

/// The parallel-exact suites' query stream over SharedParallelFixture.
inline std::vector<query::Query> ParallelTestQueries(int64_t n, uint64_t seed) {
  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(2, 0.05, 0.95, 0.15, 0.05, seed));
  return gen.Generate(n);
}

}  // namespace testsupport
}  // namespace qreg

#endif  // QREG_TESTS_TEST_SUPPORT_H_
