// Unit tests for src/eval metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "eval/metrics.h"

namespace qreg {
namespace eval {
namespace {

TEST(RmseTest, PerfectPredictionIsZero) {
  EXPECT_DOUBLE_EQ(Rmse({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(RmseTest, KnownValue) {
  // errors: 1, -1 -> mse 1 -> rmse 1
  EXPECT_DOUBLE_EQ(Rmse({1, 2}, {0, 3}), 1.0);
  // errors: 3, 4 -> mse 12.5
  EXPECT_DOUBLE_EQ(Rmse({3, 4}, {0, 0}), std::sqrt(12.5));
}

TEST(RmseTest, AccumulatorMatchesBatch) {
  RmseAccumulator acc;
  acc.Add(1, 0);
  acc.Add(2, 3);
  acc.Add(5, 5);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_DOUBLE_EQ(acc.Rmse(), Rmse({1, 2, 5}, {0, 3, 5}));
  acc.Reset();
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.Rmse(), 0.0);
}

TEST(MaeTest, KnownValue) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {2, 0, 3}), (1.0 + 2.0 + 0.0) / 3.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({}, {}), 0.0);
}

TEST(FvuTest, PerfectFitIsZeroUnexplained) {
  EXPECT_DOUBLE_EQ(Fvu({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(FvuTest, MeanPredictorHasFvuOne) {
  // Predicting the mean of the actuals leaves exactly TSS unexplained.
  std::vector<double> actual{1, 2, 3, 4};
  std::vector<double> mean_pred(4, 2.5);
  EXPECT_DOUBLE_EQ(Fvu(actual, mean_pred), 1.0);
}

TEST(FvuTest, WorseThanMeanExceedsOne) {
  std::vector<double> actual{1, 2, 3, 4};
  std::vector<double> bad(4, 100.0);
  EXPECT_GT(Fvu(actual, bad), 1.0);
}

TEST(FvuTest, ConstantActualsEdgeCases) {
  // TSS = 0 with SSR = 0: define FVU = 0 (perfect).
  EXPECT_DOUBLE_EQ(Fvu({2, 2}, {2, 2}), 0.0);
  // TSS = 0 with SSR > 0: +inf.
  EXPECT_TRUE(std::isinf(Fvu({2, 2}, {3, 3})));
}

TEST(FvuTest, AccumulatorMatchesBatch) {
  FvuAccumulator acc;
  std::vector<double> a{1, 5, 2, 8};
  std::vector<double> p{2, 4, 2, 7};
  for (size_t i = 0; i < a.size(); ++i) acc.Add(a[i], p[i]);
  EXPECT_NEAR(acc.Fvu(), Fvu(a, p), 1e-12);
  EXPECT_NEAR(acc.CoD(), 1.0 - Fvu(a, p), 1e-12);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(PercentileTest, KnownQuantiles) {
  std::vector<double> v{4, 1, 3, 2, 5};  // sorted: 1 2 3 4 5
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 75), 7.5);
}

}  // namespace
}  // namespace eval
}  // namespace qreg
