// Quickstart: the full qreg loop in ~80 lines.
//
//   1. load a relation of (x, u) rows into the storage engine;
//   2. run exact mean-value (Q1) and regression (Q2) queries against it;
//   3. train the query-driven LLM model from executed queries;
//   4. answer the same query types from the model alone — no data access.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/llm_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "query/exact_engine.h"
#include "query/workload.h"
#include "storage/kdtree.h"

using namespace qreg;

int main() {
  // 1. A 2-attribute dataset with a non-linear dependency u = g(x1, x2).
  auto dataset = data::MakeR1(/*d=*/2, /*n=*/50000, /*seed=*/1);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  storage::KdTree index(dataset->table);          // dNN selection access path
  query::ExactEngine engine(dataset->table, index);

  // 2. One exact analytics query: mean of u within radius 0.15 of (0.4, 0.6).
  query::Query q({0.4, 0.6}, 0.15);
  auto exact = engine.MeanValue(q);
  auto exact_fit = engine.Regression(q);
  if (!exact.ok() || !exact_fit.ok()) {
    std::fprintf(stderr, "exact query failed\n");
    return 1;
  }
  std::printf("exact Q1  : mean(u | D) = %.4f over %lld tuples\n", exact->mean,
              static_cast<long long>(exact->count));
  std::printf("exact Q2  : u ~ %.3f + %.3f x1 + %.3f x2  (CoD %.3f)\n",
              exact_fit->intercept, exact_fit->slope[0], exact_fit->slope[1],
              exact_fit->CoD());

  // 3. Train the model from (query, answer) streams (Figure 2 of the paper).
  core::LlmModel model(core::LlmConfig::ForDimension(2, /*a=*/0.1));
  core::TrainerConfig tcfg;
  tcfg.max_pairs = 20000;
  core::Trainer trainer(engine, tcfg);
  query::WorkloadGenerator workload(
      query::WorkloadConfig::Cube(2, 0.0, 1.0, 0.1, 0.05, /*seed=*/7));
  auto report = trainer.Train(&workload, &model);
  if (!report.ok()) {
    std::fprintf(stderr, "training: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntrained   : %s\n", model.Summary().c_str());
  std::printf("            %lld pairs, converged=%s, %.1f%% of time in the DBMS\n",
              static_cast<long long>(report->pairs_used),
              report->converged ? "yes" : "no",
              100.0 * report->QueryExecFraction());

  // 4. Answer the same queries from the model — no table access at all.
  auto predicted = model.PredictMean(q);
  std::printf("\nmodel Q1  : %.4f (exact %.4f)\n", predicted.value_or(0.0),
              exact->mean);

  auto pieces = model.RegressionQuery(q);
  if (pieces.ok()) {
    std::printf("model Q2  : %zu local linear model(s) over D(x, theta):\n",
                pieces->size());
    for (const core::LocalLinearModel& m : *pieces) {
      std::printf("            u ~ %.3f + %.3f x1 + %.3f x2   (weight %.2f)\n",
                  m.intercept, m.slope[0], m.slope[1], m.weight);
    }
  }
  return 0;
}
