// The in-process analytics service in action: register datasets in a model
// catalog, stand up a concurrent query router with a δ-overlap semantic
// cache, and serve Q1/Q2 traffic with per-service metrics.
//
// The 5-line service API:
//
//   service::ModelCatalog catalog;
//   catalog.Register("sensors", &table, &index, service::CatalogOptions::ForCube(2, 0, 1, 0.1, 0.05));
//   service::QueryRouter router(&catalog);
//   auto answer = router.Execute(service::Request::Q1("sensors", {{0.4, 0.6}, 0.15}));
//   router.Stats().PrintTo(std::cout);
//
// Build & run:  ./build/examples/analytics_service
//
// The same service over the wire (DESIGN.md §12):
//
//   ./build/examples/analytics_service --serve 7077 --loops=4 --backend=epoll
//   ./build/examples/analytics_service --connect 127.0.0.1:7077
//
// --serve stands the catalog up behind the framed-binary TCP front-end
// (net::Server; --loops=N spreads connections across N event loops via
// SO_REUSEPORT accept sharding, --backend=poll|epoll picks the event
// demultiplexer — DESIGN.md §12.6) and drains on Ctrl-C; --connect issues
// one Q1 and one pipelined Q2 batch through net::Client, plus an
// already-expired deadline budget to show the typed rejection path.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "data/generator.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "query/workload.h"
#include "service/model_catalog.h"
#include "service/query_router.h"
#include "storage/kdtree.h"

using namespace qreg;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

/// --serve <port> [--loops=N] [--backend=poll|epoll]: the demo catalog
/// behind the wire front-end.
int Serve(uint16_t port, size_t loops, net::BackendKind backend) {
  auto sensors = data::MakeR1(/*d=*/2, /*n=*/50000, /*seed=*/1);
  if (!sensors.ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    return 1;
  }
  storage::KdTree sensors_index(sensors->table);
  service::ModelCatalog catalog;
  auto reg = catalog.Register(
      "sensors", &sensors->table, &sensors_index,
      service::CatalogOptions::ForCube(2, 0.0, 1.0, 0.1, 0.05, /*a=*/0.1,
                                       /*max_pairs=*/15000, /*seed=*/7));
  if (!reg.ok()) {
    std::fprintf(stderr, "register failed: %s\n", reg.ToString().c_str());
    return 1;
  }
  std::printf("training 'sensors'...\n");
  auto trained = catalog.TrainAll();
  if (!trained.ok()) {
    std::fprintf(stderr, "train failed: %s\n", trained.ToString().c_str());
    return 1;
  }

  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.cache.delta_min = 0.9;
  cfg.num_threads = 2;
  service::QueryRouter router(&catalog, cfg);

  net::ServerConfig server_cfg;
  server_cfg.port = port;
  server_cfg.bind_address = "127.0.0.1";
  server_cfg.event_loops = loops;
  server_cfg.backend = backend;
  net::Server server(&router, server_cfg);
  const util::Result<net::Endpoint> endpoint = server.Start();
  if (!endpoint.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 endpoint.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "serving 'sensors' on %s with %zu event loop(s), backend=%s%s  "
      "(Ctrl-C drains and exits)\n",
      endpoint->ToString().c_str(), server.num_loops(),
      net::BackendKindName(backend),
      server.using_shared_listener() ? " [shared listener]" : "");

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("\ndraining...\n");
  server.Shutdown();
  std::printf("final service metrics:\n");
  router.Stats().PrintTo(std::cout);
  return 0;
}

/// --connect <host>:<port>: one Q1, one pipelined Q2 batch, one typed error.
int ConnectTo(const std::string& host, uint16_t port) {
  net::Client client;
  const util::Status connected = client.Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", connected.ToString().c_str());
    return 1;
  }

  auto q1 = client.Execute(
      net::WireRequest::Q1("sensors", query::Query({0.4, 0.6}, 0.15)));
  if (!q1.ok()) {
    std::fprintf(stderr, "Q1 failed: %s\n", q1.status().ToString().c_str());
    return 1;
  }
  std::printf("sensors Q1: mean = %.4f  [%s, %lld us server-side]\n", q1->mean,
              q1->source == service::AnswerSource::kModel ? "model" : "exact",
              static_cast<long long>(q1->exec.nanos / 1000));

  // A pipelined Q2 batch: every frame goes out before the first answer is
  // read; the server coalesces what it finds in flight into one
  // ExecuteBatch. Answers come back positionally aligned.
  std::vector<net::WireRequest> batch;
  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(2, 0.3, 0.7, 0.12, 0.02, /*seed=*/5));
  for (int i = 0; i < 8; ++i) {
    batch.push_back(net::WireRequest::Q2("sensors", gen.Next()));
  }
  const auto answers = client.ExecuteBatch(batch);
  std::printf("pipelined Q2 batch:\n");
  for (size_t i = 0; i < answers.size(); ++i) {
    if (answers[i].ok()) {
      std::printf("  [%zu] %zu local linear model(s)\n", i,
                  answers[i]->pieces.size());
    } else {
      std::printf("  [%zu] %s\n", i,
                  answers[i].status().ToString().c_str());
    }
  }

  // Deadline budgets ride the wire: this one is expired on arrival and is
  // rejected at admission with the typed status — the connection survives.
  net::WireRequest expired =
      net::WireRequest::Q1("sensors", query::Query({0.4, 0.6}, 0.15));
  expired.deadline_budget_nanos = 1;
  auto rejected = client.Execute(expired);
  std::printf("expired 1ns budget: %s\n",
              rejected.ok() ? "unexpectedly ok"
                            : rejected.status().ToString().c_str());
  return 0;
}

int Demo();

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--serve") == 0) {
    long port = 7077;
    long loops = 1;
    net::BackendKind backend = net::BackendKind::kPoll;
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--loops=", 8) == 0) {
        loops = std::strtol(argv[i] + 8, nullptr, 10);
      } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
        if (!net::ParseBackendKind(argv[i] + 10, &backend) ||
            backend == net::BackendKind::kSim) {
          std::fprintf(stderr, "--backend wants poll or epoll, got '%s'\n",
                       argv[i] + 10);
          return 2;
        }
      } else {
        port = std::strtol(argv[i], nullptr, 10);
      }
    }
    if (loops < 1) loops = 1;
    return Serve(static_cast<uint16_t>(port), static_cast<size_t>(loops),
                 backend);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--connect") == 0) {
    std::string target = argv[2];
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "usage: %s --connect <host>:<port>\n", argv[0]);
      return 2;
    }
    const std::string host = target.substr(0, colon);
    const long port = std::strtol(target.c_str() + colon + 1, nullptr, 10);
    return ConnectTo(host, static_cast<uint16_t>(port));
  }
  if (argc >= 2) {
    std::fprintf(
        stderr,
        "usage: %s [--serve [port] [--loops=N] [--backend=poll|epoll] | "
        "--connect <host>:<port>]\n",
        argv[0]);
    return 2;
  }
  return Demo();
}

namespace {

int Demo() {
  // Two relations with different shapes, served from one catalog.
  auto sensors = data::MakeR1(/*d=*/2, /*n=*/50000, /*seed=*/1);
  auto rosen = data::MakeR2(/*d=*/3, /*n=*/50000, /*seed=*/2);
  if (!sensors.ok() || !rosen.ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    return 1;
  }
  storage::KdTree sensors_index(sensors->table);
  storage::KdTree rosen_index(rosen->table);

  service::ModelCatalog catalog;
  auto s1 = catalog.Register(
      "sensors", &sensors->table, &sensors_index,
      service::CatalogOptions::ForCube(2, 0.0, 1.0, 0.1, 0.05, /*a=*/0.1,
                                       /*max_pairs=*/15000, /*seed=*/7));
  auto s2 = catalog.Register(
      "rosenbrock", &rosen->table, &rosen_index,
      service::CatalogOptions::ForCube(3, -10.0, 10.0, 2.0, 0.4, /*a=*/0.1,
                                       /*max_pairs=*/15000, /*seed=*/8));
  if (!s1.ok() || !s2.ok()) {
    std::fprintf(stderr, "register failed: %s / %s\n", s1.ToString().c_str(),
                 s2.ToString().c_str());
    return 1;
  }

  // A hybrid router: in-region queries answered by the model, out-of-region
  // by the exact engine; overlapping repeats served from the δ-cache.
  service::RouterConfig cfg;
  cfg.policy = service::RoutePolicy::kHybrid;
  cfg.cache.delta_min = 0.9;
  cfg.num_threads = 4;
  // The queue holds the whole demo burst: with the default shed-on-overload
  // policy, a smaller queue would (correctly) shed part of the burst to the
  // cache or reject it with kResourceExhausted — see the "shed" stats row.
  cfg.queue_capacity = 2048;
  service::QueryRouter router(&catalog, cfg);

  // Single queries against both datasets (first touch lazily trains).
  auto q1 = router.Execute(
      service::Request::Q1("sensors", query::Query({0.4, 0.6}, 0.15)));
  if (q1.ok()) {
    std::printf("sensors    Q1: mean = %.4f  [%s]\n", q1->mean,
                q1->source == service::AnswerSource::kModel ? "model" : "exact");
  }
  auto q2 = router.Execute(
      service::Request::Q2("rosenbrock", query::Query({1.0, -2.0, 3.0}, 2.5)));
  if (q2.ok()) {
    std::printf("rosenbrock Q2: %zu local linear model(s)\n", q2->pieces.size());
    for (const core::LocalLinearModel& m : q2->pieces) {
      std::printf("               u ~ %.3f + %.3f x1 + %.3f x2 + %.3f x3  (w %.2f)\n",
                  m.intercept, m.slope[0], m.slope[1], m.slope[2], m.weight);
    }
  }

  // A burst of clustered traffic, executed in parallel on the pool. The
  // tight cluster makes δ-overlap cache hits frequent.
  query::WorkloadGenerator gen(
      query::WorkloadConfig::Cube(2, 0.45, 0.55, 0.1, 0.01, /*seed=*/21));
  std::vector<service::Request> burst;
  for (int i = 0; i < 2000; ++i) {
    burst.push_back(i % 2 == 0
                        ? service::Request::Q1("sensors", gen.Next())
                        : service::Request::Q2("sensors", gen.Next()));
  }
  auto answers = router.ExecuteBatch(burst);
  int64_t ok = 0;
  for (const auto& a : answers) ok += a.ok() ? 1 : 0;
  std::printf("\nburst: %lld/%zu answered\n", static_cast<long long>(ok),
              answers.size());

  // Request lifecycle: a deadline bounds everything — lazy training, the
  // exact scan, even the wait behind another request's training. A request
  // that is already expired is rejected at admission with the typed status
  // (a cache hit never masks it), and the partial work the service did
  // anyway rides inside the typed ExecError.
  service::Request bounded =
      service::Request::Q1("sensors", query::Query({1.4, 1.4}, 1.0));
  bounded.deadline = util::Deadline::AfterNanos(0);  // Already expired.
  auto bounded_answer = router.Execute(bounded);
  if (!bounded_answer.ok()) {
    const query::ExecStats& partial = bounded_answer.error().partial;
    std::printf("\ndeadline-bounded Q1: %s (partial work: %lld/%lld chunks, "
                "%lld tuples)\n",
                bounded_answer.status().ToString().c_str(),
                static_cast<long long>(partial.chunks_completed),
                static_cast<long long>(partial.chunks_total),
                static_cast<long long>(partial.tuples_examined));
  }

  // With budget remaining, a mid-scan expiry on an out-of-region query
  // degrades to the model's microsecond answer (flagged used_fallback)
  // instead of burning cores on the rest of the scan.
  service::Request tight =
      service::Request::Q1("sensors", query::Query({1.4, 1.4}, 1.0));
  tight.deadline = util::Deadline::AfterMillis(2);
  auto degraded = router.Execute(tight);
  if (degraded.ok()) {
    std::printf("deadline-bounded Q1: mean = %.4f  [%s%s]\n", degraded->mean,
                degraded->source == service::AnswerSource::kModel ? "model"
                                                                  : "exact",
                degraded->used_fallback ? ", deadline fallback" : "");
  }

  std::printf("\nservice metrics:\n");
  router.Stats().PrintTo(std::cout);
  std::printf("\ncache: hit rate %.3f over %lld lookups\n",
              router.CacheStats().HitRate(),
              static_cast<long long>(router.CacheStats().lookups));
  return 0;
}

}  // namespace
